package tokentm

import (
	"bytes"
	"strings"
	"testing"

	"tokentm/internal/workload"
)

func TestVariants(t *testing.T) {
	vs := Variants()
	if len(vs) != 5 {
		t.Fatalf("want 5 variants, got %d", len(vs))
	}
	for _, v := range vs {
		sys := New(Config{Variant: v, Cores: 2})
		if sys.HTM.Name() != string(v) {
			t.Errorf("variant %q reports name %q", v, sys.HTM.Name())
		}
	}
}

func TestDefaultVariant(t *testing.T) {
	sys := New(Config{Cores: 1})
	if sys.HTM.Name() != "TokenTM" {
		t.Fatalf("default variant: %s", sys.HTM.Name())
	}
	if sys.TokenTM() == nil {
		t.Fatal("TokenTM accessor")
	}
	perf := New(Config{Variant: VariantLogTMSEPerf, Cores: 1})
	if perf.TokenTM() != nil {
		t.Fatal("TokenTM accessor should be nil for LogTM-SE")
	}
}

func TestUnknownVariantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Variant: "bogus"})
}

func TestFacadeEndToEnd(t *testing.T) {
	sys := New(Config{Cores: 2, Seed: 3})
	sys.StoreWord(0x1000, 40)
	sys.Spawn(func(tc *Ctx) {
		tc.Atomic(func(tx *Tx) {
			tx.Store(0x1000, tx.Load(0x1000)+2)
		})
	})
	cycles := sys.Run()
	if cycles == 0 {
		t.Fatal("no time passed")
	}
	if got := sys.Load(0x1000); got != 42 {
		t.Fatalf("value: %d", got)
	}
	if err := sys.TokenTM().CheckBookkeeping(); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkloadAllVariants(t *testing.T) {
	spec, _ := workload.ByName("Cholesky")
	for _, v := range Variants() {
		d := RunWorkload(spec, v, 0.002, 1)
		if d.Cycles == 0 || len(d.Commits) == 0 {
			t.Fatalf("%s: empty run", v)
		}
		if d.Workload != "Cholesky" || d.Variant != v {
			t.Fatalf("%s: labels %+v", v, d)
		}
	}
}

func TestTable5Harness(t *testing.T) {
	rows := Table5(0.002, 1)
	if len(rows) != 8 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.NumXacts == 0 || r.AvgRead <= 0 {
			t.Fatalf("empty row: %+v", r)
		}
	}
	var buf bytes.Buffer
	WriteTable5(&buf, rows)
	out := buf.String()
	for _, name := range []string{"Barnes", "Delaunay", "Vacation-High"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 5 output missing %s:\n%s", name, out)
		}
	}
}

func TestTable6Harness(t *testing.T) {
	rows := Table6(0.002, 1)
	if len(rows) != 8 {
		t.Fatalf("rows: %d", len(rows))
	}
	var buf bytes.Buffer
	WriteTable6(&buf, rows)
	if !strings.Contains(buf.String(), "% Fast Xacts") {
		t.Fatal("Table 6 header missing")
	}
	// Small SPLASH transactions should be overwhelmingly fast-release.
	for _, r := range rows {
		if r.Benchmark == "Cholesky" && r.FastPct < 90 {
			t.Fatalf("Cholesky fast release: %.1f%%", r.FastPct)
		}
	}
}

func TestFigure1Harness(t *testing.T) {
	rows := Figure1(0.002, []int64{1})
	if len(rows) != 4 {
		t.Fatalf("Figure 1 covers the 4 STAMP workloads, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup[VariantLogTMSEPerf] != 1.0 {
			t.Fatalf("%s: Perf must normalize to 1.0", r.Workload)
		}
		if r.Speedup[VariantLogTMSE2xH3] <= 0 {
			t.Fatalf("%s: missing 2xH3 speedup", r.Workload)
		}
	}
	var buf bytes.Buffer
	WriteSpeedups(&buf, rows, []Variant{VariantLogTMSEPerf, VariantLogTMSE2xH3, VariantLogTMSE4xH3})
	if !strings.Contains(buf.String(), "Delaunay") {
		t.Fatal("Figure 1 output missing Delaunay")
	}
}

func TestTable1Harness(t *testing.T) {
	rows := Table1(1)
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	var buf bytes.Buffer
	WriteTable1(&buf, rows)
	for _, name := range []string{"AOLServer", "Apache", "BerkeleyDB", "BIND"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("Table 1 missing %s", name)
		}
	}
}

// TestProtocolTableWriters pins the regenerated Tables 2/3/4 to the paper's
// content.
func TestProtocolTableWriters(t *testing.T) {
	var buf bytes.Buffer
	WriteTable2(&buf)
	out := buf.String()
	for _, want := range []string{"Transaction Load", "(1,X1)", "(T,X1)", "Conflicting Store"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	WriteTable3(&buf)
	out = buf.String()
	for _, want := range []string{"Fission", "Fusion", "error", "(u=5,-)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 3 missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	WriteTable4(&buf)
	out = buf.String()
	for _, want := range []string{"In-Memory", "In-Cache", "R+", "Attr"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 4 missing %q:\n%s", want, out)
		}
	}
}

// TestFigure5SmokeTest runs the full five-variant sweep on a tiny scale and
// checks the qualitative shape: TokenTM close to Perf, 2xH3 the worst on
// Delaunay.
func TestFigure5SmokeTest(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows := Figure5(0.01, []int64{1})
	if len(rows) != 8 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.Workload != "Delaunay" {
			continue
		}
		tok := r.Speedup[VariantTokenTM]
		h2 := r.Speedup[VariantLogTMSE2xH3]
		if tok < 0.5 {
			t.Errorf("TokenTM on Delaunay should be near Perf: %.3f", tok)
		}
		if h2 > 0.8*tok {
			t.Errorf("2xH3 should trail TokenTM clearly on Delaunay: tok=%.3f 2xH3=%.3f", tok, h2)
		}
	}
}
