package tokentm

import (
	"io"

	"tokentm/internal/explore"
)

// ExploreSweep runs the standard schedule-exploration sweep — every
// exploration program under every variant, exhaustively within the default
// CI budget, plus the seeded-mutation smoke checks — writing the summary
// table to out. The returned slice lists everything wrong (protocol
// violations, incomplete enumerations, missed mutations); empty means the
// model checker proved all invariants over the bounded schedule space.
func ExploreSweep(out io.Writer) []string {
	sw := explore.StandardSweep(explore.DefaultBudget())
	explore.WriteTable(out, sw)
	return sw.Failures()
}
