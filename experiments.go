package tokentm

import (
	"fmt"
	"io"
	"text/tabwriter"

	"tokentm/internal/attr"
	"tokentm/internal/harness"
	"tokentm/internal/htm"
	"tokentm/internal/lcs"
	"tokentm/internal/plot"
	"tokentm/internal/stats"
	"tokentm/internal/workload"
)

// Threads used by the TM experiments: one per core, 32 cores (§6.1).
const evalCores = 32

// RunDetail is the outcome of one workload run on one variant.
type RunDetail struct {
	Workload string
	Variant  Variant
	Cycles   Cycle
	Commits  []htm.CommitRecord
	Metrics  htm.Metrics
	// FastCommits/SlowCommits are TokenTM-specific (0 for LogTM-SE).
	FastCommits, SlowCommits uint64
	// Breakdown is the machine-wide cycle attribution (Figures 7–9): every
	// core-clock cycle charged to one attr.Bucket.
	Breakdown attr.Breakdown
	// CoreTimes is each core's final clock, indexed by core id; the
	// breakdown's total equals their sum when conservation holds.
	CoreTimes []Cycle
	// AbortRecs is the abort-lifecycle stream: one record per aborted
	// attempt, with enemy TID, conflicting block and conflict kind.
	AbortRecs []htm.AbortRecord
}

// RunWorkload executes spec on a fresh 32-core machine with the given
// variant. scale shrinks transaction counts for quick runs; seed perturbs
// backoffs and generators.
func RunWorkload(spec workload.Spec, v Variant, scale float64, seed int64) RunDetail {
	d, _ := runWorkload(spec, v, scale, seed)
	return d
}

// runWorkload is RunWorkload keeping the machine around for post-run
// invariant checks.
func runWorkload(spec workload.Spec, v Variant, scale float64, seed int64) (RunDetail, *System) {
	sys := New(Config{Variant: v, Cores: evalCores, Seed: seed})
	spec.Build(sys.M, evalCores, scale, seed)
	cycles := sys.Run()
	d := RunDetail{
		Workload:  spec.Name,
		Variant:   v,
		Cycles:    cycles,
		Commits:   sys.M.Commits,
		Metrics:   *sys.HTM.Stats(),
		Breakdown: sys.M.BreakdownTotal(),
		CoreTimes: sys.M.CoreTimes(),
		AbortRecs: sys.M.AbortRecs,
	}
	if tok := sys.TokenTM(); tok != nil {
		d.FastCommits = tok.FastCommits
		d.SlowCommits = tok.SlowCommits
	}
	return d, sys
}

// ExperimentRun is the harness.RunFunc behind every sweep: it executes one
// grid cell on a fresh machine and distills the Outcome the tables,
// figures and BENCH files consume. For TokenTM variants it additionally
// audits the double-entry token bookkeeping after the run, so every
// harness job doubles as a correctness gate.
func ExperimentRun(j harness.Job) (harness.Outcome, error) {
	spec, ok := workload.ByName(j.Workload)
	if !ok {
		return harness.Outcome{}, fmt.Errorf("unknown workload %q", j.Workload)
	}
	v := Variant(j.Variant)
	known := false
	for _, kv := range Variants() {
		if kv == v {
			known = true
		}
	}
	if !known {
		return harness.Outcome{}, fmt.Errorf("unknown variant %q", j.Variant)
	}
	d, sys := runWorkload(spec, v, j.Scale, j.Seed)
	var coreSum uint64
	for _, t := range d.CoreTimes {
		coreSum += uint64(t)
	}
	out := harness.Outcome{
		Cycles:       uint64(d.Cycles),
		Commits:      uint64(len(d.Commits)),
		Aborts:       d.Metrics.Aborts,
		FastCommits:  d.FastCommits,
		SlowCommits:  d.SlowCommits,
		Breakdown:    d.Breakdown.Map(),
		CoreCycleSum: coreSum,
		Extra: map[string]float64{
			"conflicts":         float64(d.Metrics.Conflicts),
			"false_conflicts":   float64(d.Metrics.FalseConflicts),
			"stalls":            float64(d.Metrics.Stalls),
			"hard_case_lookups": float64(d.Metrics.HardCaseLookups),
		},
	}
	// Cycle conservation is checked per core here, so any unattributed
	// advance fails the job (and with it harness.Verify and the sweeps).
	if err := sys.M.CheckConservation(); err != nil {
		return out, fmt.Errorf("cycle attribution after run: %w", err)
	}
	if tok := sys.TokenTM(); tok != nil {
		if err := tok.CheckBookkeeping(); err != nil {
			return out, fmt.Errorf("token bookkeeping after run: %w", err)
		}
	}
	return out, nil
}

// SweepOptions configures a harness runner over the experiment grid.
type SweepOptions struct {
	// Parallel is the worker count (0 = GOMAXPROCS).
	Parallel int
	// CacheDir enables the on-disk result cache when non-empty.
	CacheDir string
	// Progress receives per-job progress lines when non-nil.
	Progress io.Writer
	// KeepHistory retains every result for a combined JSON report.
	KeepHistory bool
}

// NewRunner builds a harness runner executing ExperimentRun.
func NewRunner(o SweepOptions) *harness.Runner {
	r := &harness.Runner{
		Run:         ExperimentRun,
		Parallel:    o.Parallel,
		Progress:    o.Progress,
		KeepHistory: o.KeepHistory,
	}
	if o.CacheDir != "" {
		r.Cache = &harness.Cache{Dir: o.CacheDir, Version: harness.CodeVersion()}
	}
	return r
}

// SpeedupRow is one workload's bars in Figure 1 or Figure 5: speedup of
// each variant normalized to LogTM-SE_Perf, with 95% confidence half-widths
// from the perturbed runs.
type SpeedupRow struct {
	Workload string
	Speedup  map[Variant]float64
	CI       map[Variant]float64
}

// speedups runs the given workloads on the given variants over several
// perturbation seeds through the harness and normalizes to LogTM-SE_Perf.
// The grid is swept in parallel (runner's worker count); aggregation walks
// results in job order, so the rows are identical at any parallelism.
func speedups(r *harness.Runner, specs []workload.Spec, variants []Variant, scale float64, seeds []int64) ([]SpeedupRow, error) {
	all := []Variant{VariantLogTMSEPerf}
	for _, v := range variants {
		if v != VariantLogTMSEPerf {
			all = append(all, v)
		}
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	vnames := make([]string, len(all))
	for i, v := range all {
		vnames[i] = string(v)
	}
	results := r.Sweep(harness.Grid(names, vnames, scale, seeds))

	samples := make(map[string]map[Variant]*stats.Sample, len(specs))
	for _, res := range results {
		if !res.OK() {
			return nil, fmt.Errorf("job %s failed: %s", res.Job, res.Err)
		}
		byV := samples[res.Job.Workload]
		if byV == nil {
			byV = make(map[Variant]*stats.Sample, len(all))
			samples[res.Job.Workload] = byV
		}
		s := byV[Variant(res.Job.Variant)]
		if s == nil {
			s = &stats.Sample{}
			byV[Variant(res.Job.Variant)] = s
		}
		s.Add(float64(res.Outcome.Cycles))
	}

	var rows []SpeedupRow
	for _, spec := range specs {
		byV := samples[spec.Name]
		perf := byV[VariantLogTMSEPerf].Mean()
		row := SpeedupRow{
			Workload: spec.Name,
			Speedup:  make(map[Variant]float64),
			CI:       make(map[Variant]float64),
		}
		for v, s := range byV {
			row.Speedup[v] = perf / s.Mean()
			// First-order error propagation for the ratio.
			if s.Mean() > 0 {
				row.CI[v] = perf / s.Mean() * s.CI95() / s.Mean()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// defaultRunner serves the legacy figure entry points: full parallelism,
// no cache, no progress.
func defaultRunner() *harness.Runner {
	return &harness.Runner{Run: ExperimentRun}
}

// figure1Specs are the STAMP workloads of Figure 1.
func figure1Specs() []workload.Spec {
	var specs []workload.Spec
	for _, s := range workload.Specs() {
		if s.Suite == "STAMP" {
			specs = append(specs, s)
		}
	}
	return specs
}

// Figure1With reproduces the paper's Figure 1 on the given runner: the
// effect of signature false positives. The four STAMP workloads run on
// LogTM-SE with 2xH3 and 4xH3 Bloom signatures, normalized to
// unimplementable perfect signatures.
func Figure1With(r *harness.Runner, scale float64, seeds []int64) ([]SpeedupRow, error) {
	return speedups(r, figure1Specs(), []Variant{VariantLogTMSE2xH3, VariantLogTMSE4xH3}, scale, seeds)
}

// Figure1 is Figure1With on a default parallel runner; it panics if a
// simulation fails (matching the historical serial behaviour).
func Figure1(scale float64, seeds []int64) []SpeedupRow {
	rows, err := Figure1With(defaultRunner(), scale, seeds)
	if err != nil {
		panic(err)
	}
	return rows
}

// Figure5With reproduces the paper's Figure 5 on the given runner: all
// eight workloads on all five HTM variants, speedup normalized to
// LogTM-SE_Perf.
func Figure5With(r *harness.Runner, scale float64, seeds []int64) ([]SpeedupRow, error) {
	return speedups(r, workload.Specs(), Variants(), scale, seeds)
}

// Figure5 is Figure5With on a default parallel runner; it panics if a
// simulation fails.
func Figure5(scale float64, seeds []int64) []SpeedupRow {
	rows, err := Figure5With(defaultRunner(), scale, seeds)
	if err != nil {
		panic(err)
	}
	return rows
}

// VerifyGrid runs harness.Verify over one job per workload × variant cell
// (each at seeds seedA/seedB) and returns one error per failing cell. It
// is the cheap pre-sweep correctness gate behind `experiments -run verify`.
func VerifyGrid(r *harness.Runner, scale float64, seedA, seedB int64) []error {
	var errs []error
	for _, spec := range workload.Specs() {
		for _, v := range Variants() {
			j := harness.Job{Workload: spec.Name, Variant: string(v), Scale: scale}
			if err := r.Verify(j, seedA, seedB); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errs
}

// Table5Row is one row of the regenerated Table 5 (measured workload
// parameters, validating the generators' calibration).
type Table5Row struct {
	Benchmark string
	Input     string
	NumXacts  int
	AvgRead   float64
	AvgWrite  float64
	MaxRead   int
	MaxWrite  int
}

// Table5 measures the dynamic transaction characteristics of each workload
// (running on TokenTM, as footprints are variant-independent).
func Table5(scale float64, seed int64) []Table5Row {
	var rows []Table5Row
	for _, spec := range workload.Specs() {
		d := RunWorkload(spec, VariantTokenTM, scale, seed)
		row := Table5Row{Benchmark: spec.Name, Input: spec.Input, NumXacts: len(d.Commits)}
		for _, c := range d.Commits {
			row.AvgRead += float64(c.ReadBlocks)
			row.AvgWrite += float64(c.WriteBlocks)
			if c.ReadBlocks > row.MaxRead {
				row.MaxRead = c.ReadBlocks
			}
			if c.WriteBlocks > row.MaxWrite {
				row.MaxWrite = c.WriteBlocks
			}
		}
		if n := float64(len(d.Commits)); n > 0 {
			row.AvgRead /= n
			row.AvgWrite /= n
		}
		rows = append(rows, row)
	}
	return rows
}

// Table6Row is one row of the regenerated Table 6: TokenTM-specific
// overheads.
type Table6Row struct {
	Benchmark string
	// FastPct is the percentage of transactions committing via fast
	// token release.
	FastPct float64
	// Fast-release transaction characteristics.
	FastAvgRead, FastAvgWrite float64
	FastAvgDuration           float64
	// Software-release transaction characteristics.
	SwAvgRead, SwAvgWrite float64
	SwAvgDuration         float64
	// SwReleaseCycles is the average software token-release time.
	SwReleaseCycles float64
	// LogStallPct is log-write stall time as % of total execution time.
	LogStallPct float64
	// HardCaseLookups counts §5.2's log-walk conflict resolutions.
	HardCaseLookups uint64
}

// Table6 measures TokenTM's overheads on every workload.
func Table6(scale float64, seed int64) []Table6Row {
	var rows []Table6Row
	for _, spec := range workload.Specs() {
		d := RunWorkload(spec, VariantTokenTM, scale, seed)
		row := Table6Row{Benchmark: spec.Name, HardCaseLookups: d.Metrics.HardCaseLookups}
		var nFast, nSw float64
		var logStall float64
		for _, c := range d.Commits {
			logStall += float64(c.LogStall)
			if c.Fast {
				nFast++
				row.FastAvgRead += float64(c.ReadBlocks)
				row.FastAvgWrite += float64(c.WriteBlocks)
				row.FastAvgDuration += float64(c.Duration)
			} else {
				nSw++
				row.SwAvgRead += float64(c.ReadBlocks)
				row.SwAvgWrite += float64(c.WriteBlocks)
				row.SwAvgDuration += float64(c.Duration)
				row.SwReleaseCycles += float64(c.ReleaseCycles)
			}
		}
		if nFast > 0 {
			row.FastAvgRead /= nFast
			row.FastAvgWrite /= nFast
			row.FastAvgDuration /= nFast
		}
		if nSw > 0 {
			row.SwAvgRead /= nSw
			row.SwAvgWrite /= nSw
			row.SwAvgDuration /= nSw
			row.SwReleaseCycles /= nSw
		}
		if nFast+nSw > 0 {
			row.FastPct = 100 * nFast / (nFast + nSw)
		}
		if d.Cycles > 0 {
			row.LogStallPct = 100 * logStall / (float64(d.Cycles) * evalCores)
		}
		rows = append(rows, row)
	}
	return rows
}

// Table1 reproduces the paper's Table 1 via the lock-based server models.
func Table1(seed int64) []lcs.Report { return lcs.Table1(seed) }

// --- Text renderers (the harness "prints the same rows the paper reports").

// WriteTable1 renders Table 1.
func WriteTable1(w io.Writer, rows []lcs.Report) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tAvg LCS\tMax LCS\t% of Total Exec Time\tLCS Events")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f ms\t%.1f ms\t%.2f\t%d\n", r.Name, r.AvgMs, r.MaxMs, r.PctTime, r.Events)
	}
	tw.Flush()
}

// WriteSpeedups renders a Figure 1/5-style table of speedups normalized to
// LogTM-SE_Perf.
func WriteSpeedups(w io.Writer, rows []SpeedupRow, variants []Variant) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Benchmark")
	for _, v := range variants {
		fmt.Fprintf(tw, "\t%s", v)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		fmt.Fprint(tw, r.Workload)
		for _, v := range variants {
			if ci := r.CI[v]; ci > 0.0005 {
				fmt.Fprintf(tw, "\t%.3f±%.3f", r.Speedup[v], ci)
			} else {
				fmt.Fprintf(tw, "\t%.3f", r.Speedup[v])
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// WriteSpeedupChart renders a Figure 1/5-style grouped bar chart with 95%
// confidence whiskers and a guide at the LogTM-SE_Perf baseline.
func WriteSpeedupChart(w io.Writer, title string, rows []SpeedupRow, variants []Variant) {
	c := plot.BarChart{
		Title:     title,
		YLabel:    "speedup normalized to LogTM-SE_Perf",
		Width:     44,
		Reference: 1.0,
	}
	for _, v := range variants {
		c.Series = append(c.Series, plot.Series{Name: string(v)})
	}
	for _, r := range rows {
		c.Groups = append(c.Groups, r.Workload)
		var bars []plot.Bar
		for _, v := range variants {
			bars = append(bars, plot.Bar{Value: r.Speedup[v], CI: r.CI[v]})
		}
		c.Bars = append(c.Bars, bars)
	}
	c.Render(w)
}

// WriteTable5 renders the measured workload parameters.
func WriteTable5(w io.Writer, rows []Table5Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tInput\tNum Xacts\tAvg Read-Set\tAvg Write-Set\tMax Read-Set\tMax Write-Set")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%.1f\t%d\t%d\n",
			r.Benchmark, r.Input, r.NumXacts, r.AvgRead, r.AvgWrite, r.MaxRead, r.MaxWrite)
	}
	tw.Flush()
}

// WriteTable6 renders TokenTM's overheads.
func WriteTable6(w io.Writer, rows []Table6Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\t% Fast Xacts\tFast RS\tFast WS\tFast Dur\tSw RS\tSw WS\tSw Dur\tSw Release\tLog Stall %")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.0f\t%.1f\t%.1f\t%.0f\t%.0f\t%.2f\n",
			r.Benchmark, r.FastPct,
			r.FastAvgRead, r.FastAvgWrite, r.FastAvgDuration,
			r.SwAvgRead, r.SwAvgWrite, r.SwAvgDuration, r.SwReleaseCycles, r.LogStallPct)
	}
	tw.Flush()
}
