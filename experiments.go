package tokentm

import (
	"fmt"
	"io"
	"text/tabwriter"

	"tokentm/internal/htm"
	"tokentm/internal/lcs"
	"tokentm/internal/plot"
	"tokentm/internal/stats"
	"tokentm/internal/workload"
)

// Threads used by the TM experiments: one per core, 32 cores (§6.1).
const evalCores = 32

// RunDetail is the outcome of one workload run on one variant.
type RunDetail struct {
	Workload string
	Variant  Variant
	Cycles   Cycle
	Commits  []htm.CommitRecord
	Metrics  htm.Metrics
	// FastCommits/SlowCommits are TokenTM-specific (0 for LogTM-SE).
	FastCommits, SlowCommits uint64
}

// RunWorkload executes spec on a fresh 32-core machine with the given
// variant. scale shrinks transaction counts for quick runs; seed perturbs
// backoffs and generators.
func RunWorkload(spec workload.Spec, v Variant, scale float64, seed int64) RunDetail {
	sys := New(Config{Variant: v, Cores: evalCores, Seed: seed})
	spec.Build(sys.M, evalCores, scale, seed)
	cycles := sys.Run()
	d := RunDetail{
		Workload: spec.Name,
		Variant:  v,
		Cycles:   cycles,
		Commits:  sys.M.Commits,
		Metrics:  *sys.HTM.Stats(),
	}
	if tok := sys.TokenTM(); tok != nil {
		d.FastCommits = tok.FastCommits
		d.SlowCommits = tok.SlowCommits
	}
	return d
}

// SpeedupRow is one workload's bars in Figure 1 or Figure 5: speedup of
// each variant normalized to LogTM-SE_Perf, with 95% confidence half-widths
// from the perturbed runs.
type SpeedupRow struct {
	Workload string
	Speedup  map[Variant]float64
	CI       map[Variant]float64
}

// speedups runs the given workloads on the given variants over several
// perturbation seeds and normalizes to LogTM-SE_Perf.
func speedups(specs []workload.Spec, variants []Variant, scale float64, seeds []int64) []SpeedupRow {
	var rows []SpeedupRow
	for _, spec := range specs {
		samples := make(map[Variant]*stats.Sample)
		all := append([]Variant{VariantLogTMSEPerf}, variants...)
		for _, v := range all {
			if _, ok := samples[v]; ok {
				continue
			}
			s := &stats.Sample{}
			for _, seed := range seeds {
				d := RunWorkload(spec, v, scale, seed)
				s.Add(float64(d.Cycles))
			}
			samples[v] = s
		}
		perf := samples[VariantLogTMSEPerf].Mean()
		row := SpeedupRow{
			Workload: spec.Name,
			Speedup:  make(map[Variant]float64),
			CI:       make(map[Variant]float64),
		}
		for v, s := range samples {
			row.Speedup[v] = perf / s.Mean()
			// First-order error propagation for the ratio.
			if s.Mean() > 0 {
				row.CI[v] = perf / s.Mean() * s.CI95() / s.Mean()
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Figure1 reproduces the paper's Figure 1: the effect of signature false
// positives. The four STAMP workloads run on LogTM-SE with 2xH3 and 4xH3
// Bloom signatures, normalized to unimplementable perfect signatures.
func Figure1(scale float64, seeds []int64) []SpeedupRow {
	var specs []workload.Spec
	for _, s := range workload.Specs() {
		if s.Suite == "STAMP" {
			specs = append(specs, s)
		}
	}
	return speedups(specs, []Variant{VariantLogTMSE2xH3, VariantLogTMSE4xH3}, scale, seeds)
}

// Figure5 reproduces the paper's Figure 5: all eight workloads on all five
// HTM variants, speedup normalized to LogTM-SE_Perf.
func Figure5(scale float64, seeds []int64) []SpeedupRow {
	return speedups(workload.Specs(), Variants(), scale, seeds)
}

// Table5Row is one row of the regenerated Table 5 (measured workload
// parameters, validating the generators' calibration).
type Table5Row struct {
	Benchmark string
	Input     string
	NumXacts  int
	AvgRead   float64
	AvgWrite  float64
	MaxRead   int
	MaxWrite  int
}

// Table5 measures the dynamic transaction characteristics of each workload
// (running on TokenTM, as footprints are variant-independent).
func Table5(scale float64, seed int64) []Table5Row {
	var rows []Table5Row
	for _, spec := range workload.Specs() {
		d := RunWorkload(spec, VariantTokenTM, scale, seed)
		row := Table5Row{Benchmark: spec.Name, Input: spec.Input, NumXacts: len(d.Commits)}
		for _, c := range d.Commits {
			row.AvgRead += float64(c.ReadBlocks)
			row.AvgWrite += float64(c.WriteBlocks)
			if c.ReadBlocks > row.MaxRead {
				row.MaxRead = c.ReadBlocks
			}
			if c.WriteBlocks > row.MaxWrite {
				row.MaxWrite = c.WriteBlocks
			}
		}
		if n := float64(len(d.Commits)); n > 0 {
			row.AvgRead /= n
			row.AvgWrite /= n
		}
		rows = append(rows, row)
	}
	return rows
}

// Table6Row is one row of the regenerated Table 6: TokenTM-specific
// overheads.
type Table6Row struct {
	Benchmark string
	// FastPct is the percentage of transactions committing via fast
	// token release.
	FastPct float64
	// Fast-release transaction characteristics.
	FastAvgRead, FastAvgWrite float64
	FastAvgDuration           float64
	// Software-release transaction characteristics.
	SwAvgRead, SwAvgWrite float64
	SwAvgDuration         float64
	// SwReleaseCycles is the average software token-release time.
	SwReleaseCycles float64
	// LogStallPct is log-write stall time as % of total execution time.
	LogStallPct float64
	// HardCaseLookups counts §5.2's log-walk conflict resolutions.
	HardCaseLookups uint64
}

// Table6 measures TokenTM's overheads on every workload.
func Table6(scale float64, seed int64) []Table6Row {
	var rows []Table6Row
	for _, spec := range workload.Specs() {
		d := RunWorkload(spec, VariantTokenTM, scale, seed)
		row := Table6Row{Benchmark: spec.Name, HardCaseLookups: d.Metrics.HardCaseLookups}
		var nFast, nSw float64
		var logStall float64
		for _, c := range d.Commits {
			logStall += float64(c.LogStall)
			if c.Fast {
				nFast++
				row.FastAvgRead += float64(c.ReadBlocks)
				row.FastAvgWrite += float64(c.WriteBlocks)
				row.FastAvgDuration += float64(c.Duration)
			} else {
				nSw++
				row.SwAvgRead += float64(c.ReadBlocks)
				row.SwAvgWrite += float64(c.WriteBlocks)
				row.SwAvgDuration += float64(c.Duration)
				row.SwReleaseCycles += float64(c.ReleaseCycles)
			}
		}
		if nFast > 0 {
			row.FastAvgRead /= nFast
			row.FastAvgWrite /= nFast
			row.FastAvgDuration /= nFast
		}
		if nSw > 0 {
			row.SwAvgRead /= nSw
			row.SwAvgWrite /= nSw
			row.SwAvgDuration /= nSw
			row.SwReleaseCycles /= nSw
		}
		if nFast+nSw > 0 {
			row.FastPct = 100 * nFast / (nFast + nSw)
		}
		if d.Cycles > 0 {
			row.LogStallPct = 100 * logStall / (float64(d.Cycles) * evalCores)
		}
		rows = append(rows, row)
	}
	return rows
}

// Table1 reproduces the paper's Table 1 via the lock-based server models.
func Table1(seed int64) []lcs.Report { return lcs.Table1(seed) }

// --- Text renderers (the harness "prints the same rows the paper reports").

// WriteTable1 renders Table 1.
func WriteTable1(w io.Writer, rows []lcs.Report) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tAvg LCS\tMax LCS\t% of Total Exec Time\tLCS Events")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f ms\t%.1f ms\t%.2f\t%d\n", r.Name, r.AvgMs, r.MaxMs, r.PctTime, r.Events)
	}
	tw.Flush()
}

// WriteSpeedups renders a Figure 1/5-style table of speedups normalized to
// LogTM-SE_Perf.
func WriteSpeedups(w io.Writer, rows []SpeedupRow, variants []Variant) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Benchmark")
	for _, v := range variants {
		fmt.Fprintf(tw, "\t%s", v)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		fmt.Fprint(tw, r.Workload)
		for _, v := range variants {
			if ci := r.CI[v]; ci > 0.0005 {
				fmt.Fprintf(tw, "\t%.3f±%.3f", r.Speedup[v], ci)
			} else {
				fmt.Fprintf(tw, "\t%.3f", r.Speedup[v])
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// WriteSpeedupChart renders a Figure 1/5-style grouped bar chart with 95%
// confidence whiskers and a guide at the LogTM-SE_Perf baseline.
func WriteSpeedupChart(w io.Writer, title string, rows []SpeedupRow, variants []Variant) {
	c := plot.BarChart{
		Title:     title,
		YLabel:    "speedup normalized to LogTM-SE_Perf",
		Width:     44,
		Reference: 1.0,
	}
	for _, v := range variants {
		c.Series = append(c.Series, plot.Series{Name: string(v)})
	}
	for _, r := range rows {
		c.Groups = append(c.Groups, r.Workload)
		var bars []plot.Bar
		for _, v := range variants {
			bars = append(bars, plot.Bar{Value: r.Speedup[v], CI: r.CI[v]})
		}
		c.Bars = append(c.Bars, bars)
	}
	c.Render(w)
}

// WriteTable5 renders the measured workload parameters.
func WriteTable5(w io.Writer, rows []Table5Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tInput\tNum Xacts\tAvg Read-Set\tAvg Write-Set\tMax Read-Set\tMax Write-Set")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%.1f\t%d\t%d\n",
			r.Benchmark, r.Input, r.NumXacts, r.AvgRead, r.AvgWrite, r.MaxRead, r.MaxWrite)
	}
	tw.Flush()
}

// WriteTable6 renders TokenTM's overheads.
func WriteTable6(w io.Writer, rows []Table6Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\t% Fast Xacts\tFast RS\tFast WS\tFast Dur\tSw RS\tSw WS\tSw Dur\tSw Release\tLog Stall %")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.0f\t%.1f\t%.1f\t%.0f\t%.0f\t%.2f\n",
			r.Benchmark, r.FastPct,
			r.FastAvgRead, r.FastAvgWrite, r.FastAvgDuration,
			r.SwAvgRead, r.SwAvgWrite, r.SwAvgDuration, r.SwReleaseCycles, r.LogStallPct)
	}
	tw.Flush()
}
