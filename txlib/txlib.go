// Package txlib provides transactional data structures built on the public
// tokentm API — the kind of library code the paper argues unbounded HTM
// should make easy to write. Every structure lives in simulated memory and
// is manipulated inside the caller's transaction (methods take a *tokentm.Tx),
// so composite operations across several structures are atomic by
// construction, read/write sets can grow without bound, and TokenTM's
// precise conflict detection keeps non-conflicting operations parallel.
//
// Layout conventions: every independently-updated word is placed in its own
// 64-byte block to avoid false sharing at the conflict-detection
// granularity, exactly as a performance-conscious TM programmer would lay
// out memory.
package txlib

import (
	"fmt"

	"tokentm"
)

// blockAligned returns the i-th block-aligned slot after base.
func blockAligned(base tokentm.Addr, i int) tokentm.Addr {
	return base + tokentm.Addr(i)*tokentm.BlockBytes
}

// Allocator is a transactional bump allocator over a region of simulated
// memory. Alloc is performed as an *open-nested* transaction: the bump of
// the allocation pointer commits immediately, so two transactions
// allocating concurrently do not conflict with each other even while their
// parents run on — the textbook use of open nesting. The allocation leaks
// if the parent aborts (no compensation is registered), which is the
// standard safe-but-lossy policy for TM allocators.
type Allocator struct {
	next  tokentm.Addr // block holding the bump pointer
	base  tokentm.Addr // first allocatable address
	limit tokentm.Addr
}

// NewAllocator carves an allocator over [base+1 block, base+blocks*64).
func NewAllocator(sys *tokentm.System, base tokentm.Addr, blocks int) *Allocator {
	a := &Allocator{
		next:  base,
		base:  base + tokentm.BlockBytes,
		limit: base + tokentm.Addr(blocks)*tokentm.BlockBytes,
	}
	sys.StoreWord(base, uint64(a.base))
	return a
}

// Alloc returns a fresh 64-byte block. It must be called inside a
// transaction; the bump itself commits open-nested.
func (a *Allocator) Alloc(tx *tokentm.Tx) tokentm.Addr {
	var out tokentm.Addr
	tx.Open(func(in *tokentm.Tx) {
		p := in.Load(a.next)
		if tokentm.Addr(p)+tokentm.BlockBytes > a.limit {
			panic(fmt.Sprintf("txlib: allocator exhausted at %#x", p))
		}
		in.Store(a.next, p+tokentm.BlockBytes)
		out = tokentm.Addr(p)
	}, nil)
	return out
}

// Map is a fixed-capacity open-addressing hash map from non-zero uint64
// keys to uint64 values, using linear probing. Each slot occupies one block
// (key in word 0, value in word 1), so independent keys conflict only when
// they probe through each other.
type Map struct {
	base  tokentm.Addr
	slots int
}

// NewMap lays out a map with the given number of slots (rounded up to a
// power of two) at base.
func NewMap(base tokentm.Addr, slots int) *Map {
	n := 1
	for n < slots {
		n <<= 1
	}
	return &Map{base: base, slots: n}
}

// Blocks returns the number of blocks the map occupies.
func (m *Map) Blocks() int { return m.slots }

func (m *Map) slot(i int) tokentm.Addr { return blockAligned(m.base, i&(m.slots-1)) }

func hash64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Put inserts or updates key (non-zero) within tx. It returns false when
// the table is full.
func (m *Map) Put(tx *tokentm.Tx, key, val uint64) bool {
	if key == 0 {
		panic("txlib: zero key is reserved")
	}
	h := int(hash64(key))
	for i := 0; i < m.slots; i++ {
		s := m.slot(h + i)
		k := tx.Load(s)
		if k == 0 || k == key {
			tx.Store(s, key)
			tx.Store(s+8, val)
			return true
		}
	}
	return false
}

// Get looks key up within tx.
func (m *Map) Get(tx *tokentm.Tx, key uint64) (uint64, bool) {
	h := int(hash64(key))
	for i := 0; i < m.slots; i++ {
		s := m.slot(h + i)
		k := tx.Load(s)
		if k == 0 {
			return 0, false
		}
		if k == key {
			return tx.Load(s + 8), true
		}
	}
	return 0, false
}

// Queue is a bounded MPMC FIFO ring. Head and tail counters live in their
// own blocks; each element occupies one block.
type Queue struct {
	head, tail tokentm.Addr
	ring       tokentm.Addr
	capacity   int
}

// NewQueue lays out a queue with the given capacity at base
// (capacity+2 blocks).
func NewQueue(base tokentm.Addr, capacity int) *Queue {
	return &Queue{
		head:     blockAligned(base, 0),
		tail:     blockAligned(base, 1),
		ring:     blockAligned(base, 2),
		capacity: capacity,
	}
}

// Blocks returns the number of blocks the queue occupies.
func (q *Queue) Blocks() int { return q.capacity + 2 }

// Push enqueues v within tx; it returns false if the queue is full.
func (q *Queue) Push(tx *tokentm.Tx, v uint64) bool {
	h, t := tx.Load(q.head), tx.Load(q.tail)
	if t-h >= uint64(q.capacity) {
		return false
	}
	tx.Store(blockAligned(q.ring, int(t)%q.capacity), v)
	tx.Store(q.tail, t+1)
	return true
}

// Pop dequeues within tx; ok is false when the queue is empty.
func (q *Queue) Pop(tx *tokentm.Tx) (v uint64, ok bool) {
	h, t := tx.Load(q.head), tx.Load(q.tail)
	if h == t {
		return 0, false
	}
	v = tx.Load(blockAligned(q.ring, int(h)%q.capacity))
	tx.Store(q.head, h+1)
	return v, true
}

// Len returns the number of queued elements within tx.
func (q *Queue) Len(tx *tokentm.Tx) int {
	return int(tx.Load(q.tail) - tx.Load(q.head))
}

// List is a sorted singly-linked list of non-zero uint64 keys — the classic
// TM microbenchmark. Nodes come from an Allocator (one block per node: key
// in word 0, next pointer in word 1); a sentinel head node anchors the
// list. Traversals read long prefixes, so lists exercise large read sets
// with small write sets.
type List struct {
	head  tokentm.Addr
	alloc *Allocator
}

// NewList builds an empty list with nodes drawn from alloc. Call inside a
// transaction (or before spawning threads via a setup transaction).
func NewList(tx *tokentm.Tx, alloc *Allocator) *List {
	head := alloc.Alloc(tx)
	tx.Store(head, 0)   // sentinel key
	tx.Store(head+8, 0) // next = nil
	return &List{head: head, alloc: alloc}
}

// Insert adds key (idempotently) within tx, keeping the list sorted.
func (l *List) Insert(tx *tokentm.Tx, key uint64) {
	if key == 0 {
		panic("txlib: zero key is reserved")
	}
	prev := l.head
	for {
		next := tokentm.Addr(tx.Load(prev + 8))
		if next == 0 || tx.Load(next) >= key {
			if next != 0 && tx.Load(next) == key {
				return
			}
			n := l.alloc.Alloc(tx)
			tx.Store(n, key)
			tx.Store(n+8, uint64(next))
			tx.Store(prev+8, uint64(n))
			return
		}
		prev = next
	}
}

// Contains reports membership within tx.
func (l *List) Contains(tx *tokentm.Tx, key uint64) bool {
	n := tokentm.Addr(tx.Load(l.head + 8))
	for n != 0 {
		k := tx.Load(n)
		if k == key {
			return true
		}
		if k > key {
			return false
		}
		n = tokentm.Addr(tx.Load(n + 8))
	}
	return false
}

// Remove deletes key within tx, reporting whether it was present.
func (l *List) Remove(tx *tokentm.Tx, key uint64) bool {
	prev := l.head
	for {
		next := tokentm.Addr(tx.Load(prev + 8))
		if next == 0 {
			return false
		}
		k := tx.Load(next)
		if k == key {
			tx.Store(prev+8, tx.Load(next+8))
			return true
		}
		if k > key {
			return false
		}
		prev = next
	}
}

// Keys returns the list contents in order within tx.
func (l *List) Keys(tx *tokentm.Tx) []uint64 {
	var out []uint64
	n := tokentm.Addr(tx.Load(l.head + 8))
	for n != 0 {
		out = append(out, tx.Load(n))
		n = tokentm.Addr(tx.Load(n + 8))
	}
	return out
}

// Counter is a sharded counter: increments touch a per-thread shard (no
// conflicts); Sum reads all shards transactionally.
type Counter struct {
	base   tokentm.Addr
	shards int
}

// NewCounter lays out a counter with the given shard count at base.
func NewCounter(base tokentm.Addr, shards int) *Counter {
	return &Counter{base: base, shards: shards}
}

// Add increments shard (e.g. the thread id) by delta within tx.
func (c *Counter) Add(tx *tokentm.Tx, shard int, delta uint64) {
	a := blockAligned(c.base, shard%c.shards)
	tx.Store(a, tx.Load(a)+delta)
}

// Sum folds all shards within tx.
func (c *Counter) Sum(tx *tokentm.Tx) uint64 {
	var total uint64
	for i := 0; i < c.shards; i++ {
		total += tx.Load(blockAligned(c.base, i))
	}
	return total
}
