package txlib

import (
	"math/rand"
	"sort"
	"testing"

	"tokentm"
)

var variants = tokentm.Variants()

func newSys(v tokentm.Variant, cores int, seed int64) *tokentm.System {
	return tokentm.New(tokentm.Config{Variant: v, Cores: cores, Seed: seed})
}

func TestMapBasics(t *testing.T) {
	sys := newSys(tokentm.VariantTokenTM, 1, 1)
	m := NewMap(0x100000, 64)
	sys.Spawn(func(tc *tokentm.Ctx) {
		tc.Atomic(func(tx *tokentm.Tx) {
			if _, ok := m.Get(tx, 7); ok {
				t.Error("empty map")
			}
			if !m.Put(tx, 7, 70) || !m.Put(tx, 9, 90) {
				t.Error("put")
			}
			m.Put(tx, 7, 71) // update
		})
		tc.Atomic(func(tx *tokentm.Tx) {
			if v, ok := m.Get(tx, 7); !ok || v != 71 {
				t.Errorf("get 7: %d", v)
			}
			if v, ok := m.Get(tx, 9); !ok || v != 90 {
				t.Errorf("get 9: %d", v)
			}
			if _, ok := m.Get(tx, 8); ok {
				t.Error("phantom key")
			}
		})
	})
	sys.Run()
}

func TestMapFillsUp(t *testing.T) {
	sys := newSys(tokentm.VariantTokenTM, 1, 1)
	m := NewMap(0x100000, 4) // 4 slots
	sys.Spawn(func(tc *tokentm.Ctx) {
		tc.Atomic(func(tx *tokentm.Tx) {
			for k := uint64(1); k <= 4; k++ {
				if !m.Put(tx, k, k) {
					t.Errorf("put %d failed", k)
				}
			}
			if m.Put(tx, 99, 1) {
				t.Error("full map accepted a 5th key")
			}
		})
	})
	sys.Run()
}

// TestMapConcurrent: concurrent disjoint inserts across every variant; all
// keys must be present afterwards.
func TestMapConcurrent(t *testing.T) {
	for _, v := range variants {
		t.Run(string(v), func(t *testing.T) {
			sys := newSys(v, 4, 7)
			m := NewMap(0x100000, 512)
			const perThread = 40
			for th := 0; th < 4; th++ {
				th := th
				sys.Spawn(func(tc *tokentm.Ctx) {
					for i := 0; i < perThread; i++ {
						key := uint64(th*perThread + i + 1)
						tc.Atomic(func(tx *tokentm.Tx) {
							if !m.Put(tx, key, key*10) {
								t.Errorf("put %d", key)
							}
						})
					}
				})
			}
			sys.Run()

			// Validate via the raw memory image (Run has finished).
			found := 0
			for i := 0; i < m.Blocks(); i++ {
				k := sys.Load(blockAligned(m.base, i))
				if k != 0 {
					found++
					if want := k * 10; sys.Load(blockAligned(m.base, i)+8) != want {
						t.Errorf("key %d has wrong value", k)
					}
				}
			}
			if found != 4*perThread {
				t.Errorf("%d keys present, want %d", found, 4*perThread)
			}
		})
	}
}

func TestQueueFIFO(t *testing.T) {
	sys := newSys(tokentm.VariantTokenTM, 1, 1)
	q := NewQueue(0x200000, 8)
	var got []uint64
	sys.Spawn(func(tc *tokentm.Ctx) {
		tc.Atomic(func(tx *tokentm.Tx) {
			for i := uint64(1); i <= 8; i++ {
				if !q.Push(tx, i) {
					t.Errorf("push %d", i)
				}
			}
			if q.Push(tx, 99) {
				t.Error("push into full queue")
			}
			if q.Len(tx) != 8 {
				t.Errorf("len %d", q.Len(tx))
			}
		})
		tc.Atomic(func(tx *tokentm.Tx) {
			for {
				v, ok := q.Pop(tx)
				if !ok {
					break
				}
				got = append(got, v)
			}
		})
	})
	sys.Run()
	if len(got) != 8 {
		t.Fatalf("popped %d", len(got))
	}
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("FIFO order broken: %v", got)
		}
	}
}

// TestQueueProducersConsumers: total transferred count is conserved under
// concurrency.
func TestQueueProducersConsumers(t *testing.T) {
	sys := newSys(tokentm.VariantTokenTM, 4, 3)
	q := NewQueue(0x200000, 16)
	const items = 50
	consumed := make([]uint64, 2)
	for p := 0; p < 2; p++ {
		p := p
		sys.Spawn(func(tc *tokentm.Ctx) {
			sent := 0
			for sent < items {
				ok := false
				tc.Atomic(func(tx *tokentm.Tx) {
					ok = q.Push(tx, uint64(p*items+sent+1))
				})
				if ok {
					sent++
				} else {
					tc.Work(300)
				}
			}
		})
	}
	for c := 0; c < 2; c++ {
		c := c
		sys.Spawn(func(tc *tokentm.Ctx) {
			got := 0
			for got < items {
				var v uint64
				ok := false
				tc.Atomic(func(tx *tokentm.Tx) {
					v, ok = q.Pop(tx)
				})
				if ok {
					consumed[c] += 1
					got++
					_ = v
				} else {
					tc.Work(300)
				}
			}
		})
	}
	sys.Run()
	if consumed[0]+consumed[1] != 2*items {
		t.Fatalf("consumed %d, want %d", consumed[0]+consumed[1], 2*items)
	}
	if tok := sys.TokenTM(); tok != nil {
		if err := tok.CheckBookkeeping(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestListSortedSet: concurrent inserts/removes keep the list a sorted set
// equal to a model, on every variant. The allocator exercises open nesting
// inside every insert.
func TestListSortedSet(t *testing.T) {
	for _, v := range variants {
		t.Run(string(v), func(t *testing.T) {
			sys := newSys(v, 4, 11)
			alloc := NewAllocator(sys, 0x300000, 4096)
			var l *List
			done := make(chan *List, 1)
			// Setup thread builds the list, then workers mutate it.
			inserted := make([][]uint64, 4)
			sys.Spawn(func(tc *tokentm.Ctx) {
				tc.Atomic(func(tx *tokentm.Tx) {
					l = NewList(tx, alloc)
				})
				done <- l
				rng := rand.New(rand.NewSource(100))
				for i := 0; i < 30; i++ {
					k := uint64(rng.Intn(200) + 1)
					tc.Atomic(func(tx *tokentm.Tx) { l.Insert(tx, k) })
					inserted[0] = append(inserted[0], k)
				}
			})
			for w := 1; w < 4; w++ {
				w := w
				sys.Spawn(func(tc *tokentm.Ctx) {
					for l == nil {
						tc.Work(200)
					}
					rng := rand.New(rand.NewSource(int64(w * 31)))
					for i := 0; i < 30; i++ {
						k := uint64(rng.Intn(200) + 1)
						tc.Atomic(func(tx *tokentm.Tx) { l.Insert(tx, k) })
						inserted[w] = append(inserted[w], k)
					}
				})
			}
			sys.Run()
			<-done

			// Model: the union of all inserted keys.
			model := map[uint64]bool{}
			for _, ks := range inserted {
				for _, k := range ks {
					model[k] = true
				}
			}
			// Read back the final list via raw memory walk.
			var got []uint64
			n := tokentm.Addr(sys.Load(l.head + 8))
			for n != 0 {
				got = append(got, sys.Load(n))
				n = tokentm.Addr(sys.Load(n + 8))
			}
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatalf("list not sorted: %v", got)
			}
			if len(got) != len(model) {
				t.Fatalf("list has %d keys, model %d", len(got), len(model))
			}
			for _, k := range got {
				if !model[k] {
					t.Fatalf("phantom key %d", k)
				}
			}
		})
	}
}

func TestCounterSharding(t *testing.T) {
	sys := newSys(tokentm.VariantTokenTM, 4, 5)
	c := NewCounter(0x400000, 4)
	for th := 0; th < 4; th++ {
		th := th
		sys.Spawn(func(tc *tokentm.Ctx) {
			for i := 0; i < 50; i++ {
				tc.Atomic(func(tx *tokentm.Tx) {
					c.Add(tx, th, 1)
				})
			}
		})
	}
	sys.Run()
	// Sharded increments should be conflict-free.
	if st := sys.HTM.Stats(); st.Conflicts != 0 {
		t.Fatalf("sharded counter conflicted %d times", st.Conflicts)
	}
	check := uint64(0)
	for i := 0; i < 4; i++ {
		check += sys.Load(blockAligned(0x400000, i))
	}
	if check != 200 {
		t.Fatalf("sum %d", check)
	}
}

func TestZeroKeyPanics(t *testing.T) {
	sys := newSys(tokentm.VariantTokenTM, 1, 1)
	m := NewMap(0x100000, 8)
	panicked := false
	sys.Spawn(func(tc *tokentm.Ctx) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
			tc.Work(1)
		}()
		tc.Atomic(func(tx *tokentm.Tx) {
			m.Put(tx, 0, 1)
		})
	})
	func() {
		defer func() { recover() }()
		sys.Run()
	}()
	if !panicked {
		t.Fatal("zero key must panic")
	}
}
