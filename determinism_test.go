package tokentm

// Cross-run determinism: the simulator's contract is that one (workload,
// variant, scale, seed) tuple names exactly one execution. Before the
// TokenSet/sorted-walk fixes, token release and enemy enumeration iterated
// Go maps, so the order of simulated memory accesses — and through LRU
// state, evictions, and cycle totals — varied between identical runs. This
// test runs each case twice in-process and requires every observable to
// match exactly: headline cycles, full metrics, the commit-record stream,
// and each core's final clock.

import (
	"reflect"
	"testing"

	"tokentm/internal/workload"
)

// determinismScale is large enough to exercise evictions, aborts, and
// software release (the paths that used to depend on map order) while
// keeping the doubled runs quick.
const determinismScale = 0.02

func TestCrossRunDeterminism(t *testing.T) {
	cases := []struct {
		workload string
		variant  Variant
	}{
		// TokenTM with contention: software releases and abort unrolls.
		{"Vacation-High", VariantTokenTM},
		// Every commit walks the log: the release path dominates.
		{"Delaunay", VariantTokenTMNoFast},
		// The signature baseline: enemy enumeration over byTID.
		{"Genome", VariantLogTMSE4xH3},
	}
	for _, tc := range cases {
		t.Run(tc.workload+"/"+string(tc.variant), func(t *testing.T) {
			spec, ok := workload.ByName(tc.workload)
			if !ok {
				t.Fatalf("unknown workload %q", tc.workload)
			}
			const seed = 7
			d1, sys1 := runWorkload(spec, tc.variant, determinismScale, seed)
			d2, sys2 := runWorkload(spec, tc.variant, determinismScale, seed)

			if d1.Cycles != d2.Cycles {
				t.Errorf("cycles differ across identical runs: %d vs %d", d1.Cycles, d2.Cycles)
			}
			if !reflect.DeepEqual(d1.Metrics, d2.Metrics) {
				t.Errorf("metrics differ across identical runs:\n  run1: %+v\n  run2: %+v", d1.Metrics, d2.Metrics)
			}
			if !reflect.DeepEqual(d1.Commits, d2.Commits) {
				t.Errorf("commit records differ across identical runs (%d vs %d records)", len(d1.Commits), len(d2.Commits))
			}
			ct1, ct2 := sys1.M.CoreTimes(), sys2.M.CoreTimes()
			if !reflect.DeepEqual(ct1, ct2) {
				for c := range ct1 {
					if ct1[c] != ct2[c] {
						t.Errorf("core %d clock differs: %d vs %d", c, ct1[c], ct2[c])
					}
				}
			}
			if d1.FastCommits != d2.FastCommits || d1.SlowCommits != d2.SlowCommits {
				t.Errorf("commit kinds differ: fast %d/%d slow %d/%d",
					d1.FastCommits, d2.FastCommits, d1.SlowCommits, d2.SlowCommits)
			}
		})
	}
}
