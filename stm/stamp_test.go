package stm

import (
	"errors"
	"testing"

	"tokentm/internal/metastate"
)

// TestStampWrapGuard forges a serial clock just under the 48-bit stamp wrap
// and checks that the next writer release fails loudly with the typed
// overflow error instead of stamping a wrapped (tiny) serial that stale
// snapshots would validate against.
func TestStampWrapGuard(t *testing.T) {
	tm := New(16, 8, 2)
	th := tm.Thread(0)

	// Just under the guard: commits still succeed and stamp monotonically.
	tm.serial.Store(metastate.MaxStamp - metastate.StampGuardMargin - 3)
	serial, err := th.Atomically(func(tx *Tx) error {
		tx.Store(0, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(metastate.MaxStamp - metastate.StampGuardMargin - 2); serial != want {
		t.Fatalf("near-wrap commit serial = %d, want %d", serial, want)
	}
	// The stamp actually landed (not truncated) on the written block.
	if got := metastate.PackedWord(tm.meta[0].Load()).Stamp(); got != serial {
		t.Fatalf("stamped %d, want %d", got, serial)
	}

	// At the guard: the commit must panic with the typed error rather than
	// wrap. The write tokens stay claimed on the failing block — the process
	// is told to stop, not to limp on.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("commit at the stamp guard did not fail")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %v is not an error", r)
		}
		var so *metastate.StampOverflowError
		if !errors.As(err, &so) {
			t.Fatalf("panic %v is not a *metastate.StampOverflowError", err)
		}
		if so.Stamp < metastate.MaxStamp-metastate.StampGuardMargin {
			t.Fatalf("guard tripped early at serial %d", so.Stamp)
		}
	}()
	tm.serial.Store(metastate.MaxStamp - metastate.StampGuardMargin - 1)
	th2 := tm.Thread(1)
	_, _ = th2.Atomically(func(tx *Tx) error {
		tx.Store(8, 2)
		return nil
	})
}

// TestCheckStampBoundary pins the guard threshold with forged near-wrap
// values on both sides.
func TestCheckStampBoundary(t *testing.T) {
	if err := metastate.CheckStamp(metastate.MaxStamp - metastate.StampGuardMargin - 1); err != nil {
		t.Fatalf("serial below the guard rejected: %v", err)
	}
	for _, s := range []uint64{
		metastate.MaxStamp - metastate.StampGuardMargin,
		metastate.MaxStamp,
		metastate.MaxStamp + 1,
	} {
		err := metastate.CheckStamp(s)
		var so *metastate.StampOverflowError
		if !errors.As(err, &so) {
			t.Fatalf("CheckStamp(%d) = %v, want *StampOverflowError", s, err)
		}
	}
	// The wrap CheckStamp exists to prevent: MakeWord silently truncates.
	w := metastate.MakeWord(metastate.PackedZero, metastate.MaxStamp+1)
	if w.Stamp() != 0 {
		t.Fatalf("MakeWord(MaxStamp+1).Stamp() = %d; truncation contract changed", w.Stamp())
	}
}
