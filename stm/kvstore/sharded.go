package kvstore

import (
	"fmt"

	"tokentm/stm"
)

// Sharded hash-partitions the KV table over N independent stm-backed stores,
// each with its own stm.TM — its own token words, its own birth-ticket
// source, and crucially its own commit serial clock, so disjoint key ranges
// stop sharing one serial ticket (the ROADMAP's sharding leg). Shard
// placement uses the TOP bits of the mixed key hash; slot placement within a
// shard uses the low bits, so the two are independent and every shard sees a
// uniform slice of the keyspace.
//
// Point operations route to the owning shard's fast paths untouched. A
// transaction (Txn/TxnSerials) runs as one stm.Group transaction spanning
// every shard: strict two-phase locking across the group holds all tokens on
// all shards until a commit serial has been drawn from every touched shard,
// which keeps cross-shard transactions atomic and the per-shard serial
// orders mutually consistent (see stm.Group). Shards the transaction never
// touches ride along for the price of a status-word flip each — no tokens,
// no serials.
type Sharded struct {
	shards []*stmStore
	bits   uint // log2(len(shards)); shard index = top bits of hashKey
}

// NewSharded builds a store of `shards` stm shards (a power of two) with
// `capacity` total slots spread evenly across them, for up to `workers`
// concurrent handles, every shard under the same contention Options (the
// Group's MaxAttempts is read from the first shard, so uniformity is part of
// the contract).
func NewSharded(shards, capacity, workers int, opt stm.Options) *Sharded {
	if shards <= 0 || shards&(shards-1) != 0 {
		panic(fmt.Sprintf("kvstore: shard count %d is not a power of two", shards))
	}
	per := (capacity + shards - 1) / shards
	if per < 8 {
		per = 8
	}
	s := &Sharded{
		shards: make([]*stmStore, shards),
		bits:   uint(log2(shards)),
	}
	for i := range s.shards {
		s.shards[i] = NewSTMWithOptions(per, workers, opt).(*stmStore)
	}
	return s
}

// log2 of a power of two.
func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

func (s *Sharded) Name() string { return "stm-sharded" }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardOf returns the shard index owning key.
func (s *Sharded) ShardOf(key uint64) int {
	return int(hashKey(key) >> (64 - s.bits)) // bits==0 shifts to 0: one shard
}

// ForEach enumerates every shard's committed state (quiescent-only). Order
// is per-shard insertion order; consumers that need a canonical order sort
// (Checksum does).
func (s *Sharded) ForEach(fn func(key, val uint64)) {
	for _, sh := range s.shards {
		sh.ForEach(fn)
	}
}

// Stats sums transaction outcomes across shards. A cross-shard transaction
// counts one commit per shard it ran on — per-shard books, summed.
func (s *Sharded) Stats() Stats {
	var out Stats
	for _, sh := range s.shards {
		st := sh.Stats()
		out.Commits += st.Commits
		out.Aborts += st.Aborts
	}
	return out
}

// ShardSTMStats exposes shard i's protocol counters for INFO/benchmark
// reporting. Single-writer atomics underneath: safe to call while workers
// run, per-field exact.
func (s *Sharded) ShardSTMStats(i int) stm.Stats { return s.shards[i].STMStats() }

// ShardSerial returns shard i's commit serial clock — the serial of its most
// recent commit. Safe to call at any time.
func (s *Sharded) ShardSerial(i int) uint64 { return s.shards[i].tm.SerialClock() }

// Handle binds worker's per-shard threads into one sharded handle. Like
// every Handle, it is single-goroutine.
func (s *Sharded) Handle(worker int) Handle {
	h := &ShardedHandle{s: s}
	threads := make([]*stm.Thread, len(s.shards))
	for i, sh := range s.shards {
		h.point = append(h.point, sh.Handle(worker).(*stmHandle))
		threads[i] = sh.tm.Thread(worker)
	}
	h.group = stm.NewGroup(threads...)
	h.tx.h = h
	h.tx.sub = make([]stmTx, len(s.shards))
	for i := range h.tx.sub {
		h.tx.sub[i].st = s.shards[i]
	}
	h.bound = func(gt *stm.GroupTx) error {
		for i := range h.tx.sub {
			h.tx.sub[i].itx = gt.Tx(i)
		}
		return h.fn(&h.tx)
	}
	return h
}

// ShardedHandle is one worker's entry point into a Sharded store. The
// sharded-specific methods (TxnSerials, GetSharded, PutSharded) report which
// shard an operation ran on and that shard's serial, which is what the
// per-shard journal oracle and the wire protocol's reply format need.
type ShardedHandle struct {
	s     *Sharded
	point []*stmHandle // per-shard point-op fast paths (share the group's threads)
	group *stm.Group
	tx    shardedTx
	fn    func(Tx) error
	bound func(*stm.GroupTx) error
}

// TxnSerials runs fn as one atomic transaction across all shards and returns
// one commit serial per shard: the serial drawn from that shard's clock, or
// 0 for shards the transaction never touched. Same retry/error contract as
// Handle.Txn (including ErrAborted under a MaxAttempts bound).
func (h *ShardedHandle) TxnSerials(readOnly bool, fn func(tx Tx) error) ([]uint64, error) {
	h.fn = fn
	h.tx.readOnly = readOnly
	return h.group.Atomically(h.bound)
}

// Txn implements Handle. The returned serial is the touched shard's commit
// serial when the transaction touched exactly one shard, and 0 otherwise —
// serials from different shards are not comparable, so there is no honest
// single number for a cross-shard commit. Journaling callers use TxnSerials.
func (h *ShardedHandle) Txn(readOnly bool, fn func(tx Tx) error) (uint64, error) {
	serials, err := h.TxnSerials(readOnly, fn)
	if err != nil {
		return 0, err
	}
	var serial uint64
	touched := 0
	for _, s := range serials {
		if s != 0 {
			serial = s
			touched++
		}
	}
	if touched != 1 {
		return 0, nil
	}
	return serial, nil
}

// Get implements Handle, routing to the owning shard's point-read fast path.
func (h *ShardedHandle) Get(key uint64) (val uint64, ok bool, serial uint64) {
	return h.point[h.s.ShardOf(key)].Get(key)
}

// Put implements Handle, routing to the owning shard's point-write fast path.
func (h *ShardedHandle) Put(key, val uint64) uint64 {
	return h.point[h.s.ShardOf(key)].Put(key, val)
}

// GetSharded is Get plus the owning shard index: (value, present, shard,
// that shard's serial).
func (h *ShardedHandle) GetSharded(key uint64) (val uint64, ok bool, shard int, serial uint64) {
	shard = h.s.ShardOf(key)
	val, ok, serial = h.point[shard].Get(key)
	return
}

// PutSharded is Put plus the owning shard index.
func (h *ShardedHandle) PutSharded(key, val uint64) (shard int, serial uint64) {
	shard = h.s.ShardOf(key)
	return shard, h.point[shard].Put(key, val)
}

// shardedTx routes transactional operations to the owning shard's stmTx. The
// sub transactions always run in token mode — a group transaction holds
// tokens even for its reads (snapshot mode has no cross-shard consistency
// story) — so readOnly here only enforces the no-Put contract.
type shardedTx struct {
	h        *ShardedHandle
	sub      []stmTx
	readOnly bool
}

func (t *shardedTx) Get(key uint64) (uint64, bool) {
	return t.sub[t.h.s.ShardOf(key)].Get(key)
}

func (t *shardedTx) Put(key, val uint64) {
	if t.readOnly {
		panic("kvstore: Put inside readOnly transaction")
	}
	t.sub[t.h.s.ShardOf(key)].Put(key, val)
}
