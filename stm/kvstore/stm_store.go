package kvstore

import (
	"fmt"

	"tokentm/stm"
)

// stmStore maps the KV table onto a stm.TM: one linear-probing slot per
// conflict-detection block, key in word 0 and value in word 1. Independent
// keys therefore conflict only when their probe paths overlap on a terminal
// slot — exactly the precise, block-granular conflict detection the token
// protocol is for.
//
// The table is insert-only, so a committed key word is immutable: probing
// PAST an occupied, non-matching slot is insensitive to serialization order
// and uses tx.Stable (a validated committed read with no footprint). Only
// the terminal slot — the match whose value we return or write, or the
// empty slot that ends the chain — goes through the token (or snapshot)
// protocol, and the decision is re-made from that protected read. A
// read-modify-write of a key the transaction already read takes the
// read-to-write upgrade path, so the load generator's transfer mix
// exercises the token fold-in continuously.
type stmStore struct {
	tm   *stm.TM
	mask uint64
}

// NewSTM builds the TokenTM-backend store with the given slot capacity
// (rounded up to a power of two) for up to workers concurrent handles, under
// the default contention policy.
func NewSTM(capacity, workers int) Store {
	return NewSTMWithOptions(capacity, workers, stm.Options{})
}

// NewSTMWithOptions is NewSTM with an explicit contention policy (zero
// fields resolve to defaults; see stm.Options). The server builds its shards
// through this so MaxAttempts bounds every transaction's retries.
func NewSTMWithOptions(capacity, workers int, opt stm.Options) Store {
	n := ceilPow2(capacity)
	return &stmStore{
		tm:   stm.NewWithOptions(n, 2, workers, opt),
		mask: uint64(n - 1),
	}
}

func (s *stmStore) Name() string { return "stm" }

func (s *stmStore) Handle(worker int) Handle {
	h := &stmHandle{st: s, th: s.tm.Thread(worker)}
	h.tx.st = s
	h.bound = func(itx *stm.Tx) error {
		h.tx.itx = itx
		return h.fn(&h.tx)
	}
	return h
}

func (s *stmStore) ForEach(fn func(key, val uint64)) {
	for slot := uint64(0); slot <= s.mask; slot++ {
		if k := s.tm.LoadWord(stm.Addr(2 * slot)); k != 0 {
			fn(k, s.tm.LoadWord(stm.Addr(2*slot+1)))
		}
	}
}

func (s *stmStore) Stats() Stats {
	st := s.tm.Stats()
	return Stats{Commits: st.Commits, Aborts: st.Aborts + st.SnapshotRetries}
}

// STMStats exposes the underlying protocol counters (upgrades, conflict
// kinds, fast releases) for benchmark reporting. Quiescent-only.
func (s *stmStore) STMStats() stm.Stats { return s.tm.Stats() }

// stmHandle binds one stm.Thread. The bound closure is built once so the
// per-transaction path allocates nothing.
type stmHandle struct {
	st    *stmStore
	th    *stm.Thread
	tx    stmTx
	fn    func(Tx) error
	bound func(*stm.Tx) error
}

func (h *stmHandle) Txn(readOnly bool, fn func(tx Tx) error) (uint64, error) {
	h.fn = fn
	h.tx.readOnly = readOnly
	if readOnly {
		// Snapshot mode: tokenless validated reads, serialized at the read
		// serial the attempt drew — the workload's read-mostly fast path.
		return h.th.ReadOnly(h.bound)
	}
	return h.th.Atomically(h.bound)
}

// Get probes with non-transactional single-block snapshot reads. The table
// is insert-only, so crossed slots need no validation against each other;
// the terminal slot's snapshot alone decides the answer, and its
// writer-release stamp is the serial a one-block read-only transaction
// committing there would return.
func (h *stmHandle) Get(key uint64) (val uint64, ok bool, serial uint64) {
	if key == 0 {
		panic("kvstore: zero key is reserved")
	}
	st := h.st
	hh := hashKey(key) & st.mask
	for i := uint64(0); ; i++ {
		slot := (hh + i) & st.mask
		k, v, s := h.th.Snapshot2(stm.Addr(2*slot), stm.Addr(2*slot+1))
		if k == key {
			h.th.NoteCommit()
			return v, true, s
		}
		if k == 0 {
			h.th.NoteCommit()
			return 0, false, s
		}
		if i == st.mask {
			panic(fmt.Sprintf("kvstore: stm table full probing key %d", key))
		}
	}
}

// Put probes like Get and claims the terminal slot with stm.Thread.Upsert2,
// a one-block write transaction. The first slot is tried claim-first — at
// moderate load factors it is usually the terminal one, and Upsert2's own
// guard read replaces a separate peek; a skipped claim (a different key
// committed there) just probes on.
func (h *stmHandle) Put(key, val uint64) uint64 {
	if key == 0 {
		panic("kvstore: zero key is reserved")
	}
	st := h.st
	hh := hashKey(key) & st.mask
	for i := uint64(0); ; i++ {
		slot := (hh + i) & st.mask
		if i > 0 {
			// Deeper in the chain a peek is cheaper than a claim: skip
			// committed foreign keys without touching the metadata word.
			if k, _, _ := h.th.Snapshot2(stm.Addr(2*slot), stm.Addr(2*slot+1)); k != key && k != 0 {
				if i == st.mask {
					panic(fmt.Sprintf("kvstore: stm table full inserting key %d", key))
				}
				continue
			}
		}
		if done, serial := h.th.Upsert2(stm.Addr(2*slot), stm.Addr(2*slot+1), key, val); done {
			return serial
		}
		if i == st.mask {
			panic(fmt.Sprintf("kvstore: stm table full inserting key %d", key))
		}
	}
}

// stmTx adapts a stm.Tx to the KV operation set.
type stmTx struct {
	st       *stmStore
	itx      *stm.Tx
	readOnly bool
}

func (t *stmTx) Get(key uint64) (uint64, bool) {
	if key == 0 {
		panic("kvstore: zero key is reserved")
	}
	h := hashKey(key) & t.st.mask
	if t.readOnly {
		// Snapshot mode is already footprint-free: one stamp validation per
		// slot covers both words (key and value share the block), so probing
		// straight through Load2 beats a separate peek + protected read.
		for i := uint64(0); ; i++ {
			slot := (h + i) & t.st.mask
			k, v := t.itx.Load2(stm.Addr(2*slot), stm.Addr(2*slot+1))
			if k == 0 {
				return 0, false
			}
			if k == key {
				return v, true
			}
			if i == t.st.mask {
				panic(fmt.Sprintf("kvstore: stm table full probing key %d", key))
			}
		}
	}
	// Token mode: probe with Stable so crossed slots leave no read tokens,
	// then bind only the terminal slot.
	for i := uint64(0); ; i++ {
		slot := (h + i) & t.st.mask
		switch t.itx.Stable(stm.Addr(2 * slot)) {
		case key:
			// Committed keys are immutable, so the match is final; the value
			// mutates and needs the real read protocol. One token covers the
			// slot's block.
			return t.itx.Load(stm.Addr(2*slot + 1)), true
		case 0:
			// Possible end of chain — an order-sensitive observation (an
			// insert of this key here must conflict with us), so re-make it
			// through the protected read.
			switch k, v := t.itx.Load2(stm.Addr(2*slot), stm.Addr(2*slot+1)); k {
			case 0:
				return 0, false
			case key:
				return v, true
			}
			// A different key landed here between peek and protected read:
			// the chain grew, keep probing.
		}
		if i == t.st.mask {
			panic(fmt.Sprintf("kvstore: stm table full probing key %d", key))
		}
	}
}

func (t *stmTx) Put(key, val uint64) {
	if key == 0 {
		panic("kvstore: zero key is reserved")
	}
	if t.readOnly {
		panic("kvstore: Put inside readOnly transaction")
	}
	h := hashKey(key) & t.st.mask
	for i := uint64(0); ; i++ {
		slot := (h + i) & t.st.mask
		if k := t.itx.Stable(stm.Addr(2 * slot)); k == key || k == 0 {
			// Terminal candidate: claim the block's write tokens up front
			// (one acquisition — or the upgrade fold-in when a Get in this
			// transaction already read the slot) and re-make the decision
			// from the protected read.
			switch kk := t.itx.LoadW(stm.Addr(2 * slot)); kk {
			case key:
				t.itx.Store(stm.Addr(2*slot+1), val)
				return
			case 0:
				t.itx.Store(stm.Addr(2*slot), key)
				t.itx.Store(stm.Addr(2*slot+1), val)
				return
			}
			// A different key claimed the slot between peek and write
			// acquisition; the (rare) surplus write token is released with
			// the transaction. Keep probing.
		}
		if i == t.st.mask {
			panic(fmt.Sprintf("kvstore: stm table full inserting key %d", key))
		}
	}
}
