package kvstore

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
)

// tl2Store is a TL2-style optimistic (lazy, invisible-reader) backend: the
// validation-based design the token protocol's progressive conflict
// detection is measured against. Each slot carries a versioned lock word
// (version<<1 | locked); transactions read a global version clock at begin
// (rv), validate every read against it, buffer writes, and at commit lock
// the write set in slot order, draw a write version (wv) from the clock,
// re-validate the read set and write back. Readers are invisible — they
// never write shared metadata, the structural opposite of the token
// scheme's visible reader counts — so writers cannot detect them and
// conflicts surface only at validation time.
type tl2Store struct {
	mask  uint64
	keys  []atomic.Uint64
	vals  []atomic.Uint64
	locks []atomic.Uint64 // version<<1 | locked
	clock atomic.Uint64

	commits atomic.Uint64
	aborts  atomic.Uint64
}

// NewTL2 builds the TL2-OCC backend with the given slot capacity (rounded
// up to a power of two).
func NewTL2(capacity int) Store {
	n := ceilPow2(capacity)
	return &tl2Store{
		mask:  uint64(n - 1),
		keys:  make([]atomic.Uint64, n),
		vals:  make([]atomic.Uint64, n),
		locks: make([]atomic.Uint64, n),
	}
}

func (s *tl2Store) Name() string { return "tl2-occ" }

func (s *tl2Store) Handle(worker int) Handle {
	h := &tl2Handle{}
	h.tx.st = s
	h.tx.rng = uint64(worker)*0x9e3779b97f4a7c15 + 1
	return h
}

func (s *tl2Store) ForEach(fn func(key, val uint64)) {
	for i := range s.keys {
		if k := s.keys[i].Load(); k != 0 {
			fn(k, s.vals[i].Load())
		}
	}
}

func (s *tl2Store) Stats() Stats {
	return Stats{Commits: s.commits.Load(), Aborts: s.aborts.Load()}
}

// tl2Retry unwinds fn when a read validation fails mid-transaction.
type tl2Retry struct{}

type tl2Handle struct {
	tx tl2Tx
}

func (h *tl2Handle) Txn(readOnly bool, fn func(tx Tx) error) (uint64, error) {
	t := &h.tx
	t.readOnly = readOnly
	for retries := 0; ; retries++ {
		serial, err, done := h.attempt(fn)
		if done {
			return serial, err
		}
		t.st.aborts.Add(1)
		t.backoff(retries)
	}
}

// Get is a read-only transaction with an empty tracked read set: each probe
// is individually lock-stable and no newer than rv, and since there is no
// commit-time validation for a read-only footprint, nothing needs appending.
// A validation failure just refreshes rv and reprobes.
func (h *tl2Handle) Get(key uint64) (val uint64, ok bool, serial uint64) {
	if key == 0 {
		panic("kvstore: zero key is reserved")
	}
	st := h.tx.st
retry:
	rv := st.clock.Load()
	hh := hashKey(key) & st.mask
	for i := uint64(0); ; i++ {
		slot := (hh + i) & st.mask
		w1 := st.locks[slot].Load()
		if w1&1 == 1 || w1>>1 > rv {
			goto retry
		}
		k := st.keys[slot].Load()
		v := st.vals[slot].Load()
		if st.locks[slot].Load() != w1 {
			goto retry
		}
		if k == key {
			st.commits.Add(1)
			return v, true, rv
		}
		if k == 0 {
			st.commits.Add(1)
			return 0, false, rv
		}
		if i == st.mask {
			panic(fmt.Sprintf("kvstore: tl2 table full probing key %d", key))
		}
	}
}

// Put probes with lock-stable reads (no read clock: a blind write needs no
// snapshot), locks the terminal slot, writes through and releases with a
// fresh write version.
func (h *tl2Handle) Put(key, val uint64) uint64 {
	if key == 0 {
		panic("kvstore: zero key is reserved")
	}
	st := h.tx.st
retry:
	hh := hashKey(key) & st.mask
	for i := uint64(0); ; i++ {
		slot := (hh + i) & st.mask
		w1 := st.locks[slot].Load()
		if w1&1 == 1 {
			goto retry // a commit is in flight on this slot
		}
		k := st.keys[slot].Load()
		if st.locks[slot].Load() != w1 {
			goto retry
		}
		if k == key || k == 0 {
			if !st.locks[slot].CompareAndSwap(w1, w1|1) {
				goto retry // lost the slot: reprobe from scratch
			}
			// The CAS from w1 pins the slot unchanged since the stable read,
			// so k still holds.
			if k == 0 {
				st.keys[slot].Store(key)
			}
			st.vals[slot].Store(val)
			wv := st.clock.Add(1)
			st.locks[slot].Store(wv << 1)
			st.commits.Add(1)
			return wv
		}
		if i == st.mask {
			panic(fmt.Sprintf("kvstore: tl2 table full inserting key %d", key))
		}
	}
}

// attempt runs fn once against a fresh read clock. done is false when the
// attempt lost a validation race and the transaction must retry.
func (h *tl2Handle) attempt(fn func(tx Tx) error) (serial uint64, err error, done bool) {
	t := &h.tx
	t.rv = t.st.clock.Load()
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(tl2Retry); ok {
				done = false
				return
			}
			panic(r)
		}
	}()
	if err = fn(t); err != nil {
		return 0, err, true // rollback is free: writes were never applied
	}
	serial, ok := t.commit()
	return serial, nil, ok
}

// tl2Write is one buffered write, bound to the slot its key probed to.
type tl2Write struct {
	slot uint64
	key  uint64
	val  uint64
}

type tl2Tx struct {
	st       *tl2Store
	readOnly bool
	rv       uint64
	reads    []uint64 // validated slots (duplicates harmless)
	writes   []tl2Write
	rng      uint64
}

// readSlot performs one validated slot read: consistent (lock-stable) and
// no newer than the transaction's read clock. Failures unwind via tl2Retry.
func (t *tl2Tx) readSlot(slot uint64) (key, val uint64) {
	st := t.st
	for {
		w1 := st.locks[slot].Load()
		if w1&1 == 1 {
			panic(tl2Retry{}) // locked: a commit is in flight
		}
		k := st.keys[slot].Load()
		v := st.vals[slot].Load()
		if st.locks[slot].Load() != w1 {
			continue // changed under us: re-read
		}
		if w1>>1 > t.rv {
			panic(tl2Retry{}) // newer than our snapshot
		}
		t.reads = append(t.reads, slot)
		return k, v
	}
}

func (t *tl2Tx) Get(key uint64) (uint64, bool) {
	if key == 0 {
		panic("kvstore: zero key is reserved")
	}
	for i := len(t.writes) - 1; i >= 0; i-- {
		if t.writes[i].key == key {
			return t.writes[i].val, true
		}
	}
	h := hashKey(key) & t.st.mask
	for i := uint64(0); ; i++ {
		slot := (h + i) & t.st.mask
		k, v := t.readSlot(slot)
		if k == 0 {
			return 0, false
		}
		if k == key {
			return v, true
		}
		if i == t.st.mask {
			panic(fmt.Sprintf("kvstore: tl2 table full probing key %d", key))
		}
	}
}

func (t *tl2Tx) Put(key, val uint64) {
	if key == 0 {
		panic("kvstore: zero key is reserved")
	}
	if t.readOnly {
		panic("kvstore: Put inside readOnly transaction")
	}
	for i := range t.writes {
		if t.writes[i].key == key {
			t.writes[i].val = val
			return
		}
	}
	h := hashKey(key) & t.st.mask
	for i := uint64(0); ; i++ {
		slot := (h + i) & t.st.mask
		k, _ := t.readSlot(slot) // probe reads join the read set: the slot
		// binding is revalidated at commit
		if k == key {
			t.writes = append(t.writes, tl2Write{slot: slot, key: key, val: val})
			return
		}
		if k == 0 {
			if t.slotClaimed(slot) {
				continue // an earlier buffered insert owns this empty slot
			}
			t.writes = append(t.writes, tl2Write{slot: slot, key: key, val: val})
			return
		}
		if i == t.st.mask {
			panic(fmt.Sprintf("kvstore: tl2 table full inserting key %d", key))
		}
	}
}

// slotClaimed reports whether an already-buffered write targets slot.
func (t *tl2Tx) slotClaimed(slot uint64) bool {
	for i := range t.writes {
		if t.writes[i].slot == slot {
			return true
		}
	}
	return false
}

// commit locks the write set in slot order, draws wv, validates the read
// set and writes back. ok is false when a lock or validation race forces a
// retry.
func (t *tl2Tx) commit() (serial uint64, ok bool) {
	st := t.st
	if len(t.writes) == 0 {
		// Read-only: every read was individually validated against rv, so
		// the whole footprint is a consistent snapshot at rv — the
		// serialization point.
		st.commits.Add(1)
		return t.rv, true
	}
	sort.Slice(t.writes, func(i, j int) bool { return t.writes[i].slot < t.writes[j].slot })
	locked := 0
	for ; locked < len(t.writes); locked++ {
		if !t.lockSlot(t.writes[locked].slot) {
			t.unlockThrough(locked, 0)
			return 0, false
		}
	}
	wv := st.clock.Add(1)
	for _, slot := range t.reads {
		w := st.locks[slot].Load()
		if w&1 == 1 {
			if !t.slotClaimed(slot) {
				t.unlockThrough(locked, 0)
				return 0, false // locked by a concurrent committer
			}
			continue // our own lock preserved the pre-lock version below
		}
		if w>>1 > t.rv {
			t.unlockThrough(locked, 0)
			return 0, false // written since we read it
		}
	}
	for i := range t.writes {
		w := &t.writes[i]
		st.keys[w.slot].Store(w.key)
		st.vals[w.slot].Store(w.val)
	}
	t.unlockThrough(locked, wv)
	st.commits.Add(1)
	return wv, true
}

// lockSlot acquires slot's versioned lock with a short bounded spin. The
// CAS preserves the version bits, so a held lock still reveals the pre-lock
// version to validators.
func (t *tl2Tx) lockSlot(slot uint64) bool {
	st := t.st
	for spin := 0; spin < 16; spin++ {
		w := st.locks[slot].Load()
		if w&1 == 0 {
			if w>>1 > t.rv {
				return false // newer than our snapshot: validation would fail
			}
			if st.locks[slot].CompareAndSwap(w, w|1) {
				return true
			}
			continue
		}
		runtime.Gosched()
	}
	return false
}

// unlockThrough releases the first n locked write slots. A zero wv aborts
// (restore the pre-lock version); a non-zero wv commits it as the slots'
// new version.
func (t *tl2Tx) unlockThrough(n int, wv uint64) {
	st := t.st
	for i := 0; i < n; i++ {
		slot := t.writes[i].slot
		if wv != 0 {
			st.locks[slot].Store(wv << 1)
		} else {
			st.locks[slot].Store(st.locks[slot].Load() &^ 1)
		}
	}
}

// backoff delays a retry: bounded exponential with splitmix jitter, as in
// package stm.
func (t *tl2Tx) backoff(retries int) {
	shift := retries
	if shift > 6 {
		shift = 6
	}
	n := uint64(1) << shift
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	n += z & (n - 1)
	for i := uint64(0); i < n; i++ {
		runtime.Gosched()
	}
}
