package kvstore

import (
	"sync"
	"testing"
)

// This file is the host-side twin of internal/explore's oracle: run real
// goroutines against each backend, journal every committed transaction's
// observed reads and final writes, then replay the journals in commit-serial
// order against a reference map (ReplayJournals in oracle.go — exported so
// the server's over-the-wire stress reuses it). Every journaled read must
// equal the reference at its serialization point, and the store's final
// state must match the reference — serializability and atomicity, checked
// end to end. Run under -race this also proves the token/lock protocols
// publish data with proper happens-before edges.

// journalTx wraps a backend Tx, recording reads of keys the transaction has
// not itself written (later reads of own writes are satisfied by the
// backend's read-your-writes and say nothing about the serialization point).
type journalTx struct {
	inner  Tx
	reads  []JournalOp
	writes []JournalOp
}

func (j *journalTx) wrote(key uint64) bool {
	for i := range j.writes {
		if j.writes[i].Key == key {
			return true
		}
	}
	return false
}

func (j *journalTx) Get(key uint64) (uint64, bool) {
	v, ok := j.inner.Get(key)
	if !j.wrote(key) {
		j.reads = append(j.reads, JournalOp{Key: key, Val: v, OK: ok})
	}
	return v, ok
}

func (j *journalTx) Put(key, val uint64) {
	j.inner.Put(key, val)
	for i := range j.writes {
		if j.writes[i].Key == key {
			j.writes[i].Val = val
			return
		}
	}
	j.writes = append(j.writes, JournalOp{Key: key, Val: val, OK: true})
}

// journaledTxn runs fn through h with journaling and appends the committed
// record to out. The journal resets on every attempt, so only the committed
// execution survives.
func journaledTxn(h Handle, readOnly bool, fn func(Tx) error, out *[]JournalTxn) error {
	var j journalTx
	serial, err := h.Txn(readOnly, func(tx Tx) error {
		j.inner = tx
		j.reads = j.reads[:0]
		j.writes = j.writes[:0]
		return fn(&j)
	})
	if err != nil {
		return err
	}
	rec := JournalTxn{Serial: serial, Writer: len(j.writes) > 0}
	rec.Reads = append(rec.Reads, j.reads...)
	rec.Writes = append(rec.Writes, j.writes...)
	*out = append(*out, rec)
	return nil
}

// replayJournals is the test-side wrapper over the exported oracle.
func replayJournals(t *testing.T, name string, journals [][]JournalTxn) map[uint64]uint64 {
	t.Helper()
	ref, err := ReplayJournals(journals)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return ref
}

// stressWorkload runs one worker's seeded mix: updates, blind inserts,
// two-key transfers and a periodic multi-key batch, skewed so a fifth of
// the traffic lands on eight hot keys.
func stressWorkload(t *testing.T, h Handle, worker, txns int, keyspace uint64, journal *[]JournalTxn) {
	rng := uint64(worker)*0x9e3779b97f4a7c15 + 12345
	key := func() uint64 {
		if testRand(&rng)%5 == 0 {
			return 1 + testRand(&rng)%8 // hot set
		}
		return 1 + testRand(&rng)%keyspace
	}
	for i := 0; i < txns; i++ {
		var err error
		switch op := testRand(&rng) % 100; {
		case op < 20: // read-only lookup
			k := key()
			err = journaledTxn(h, true, func(tx Tx) error {
				tx.Get(k)
				return nil
			}, journal)
		case op < 35: // point read: the serial it reports must satisfy the
			// same replay invariant as a full read-only transaction
			k := key()
			v, ok, serial := h.Get(k)
			*journal = append(*journal, JournalTxn{Serial: serial,
				Reads: []JournalOp{{Key: k, Val: v, OK: ok}}})
		case op < 50: // point write
			k, v := key(), testRand(&rng)
			serial := h.Put(k, v)
			*journal = append(*journal, JournalTxn{Serial: serial, Writer: true,
				Writes: []JournalOp{{Key: k, Val: v, OK: true}}})
		case op < 65: // read-modify-write (upgrade path on the stm backend)
			k := key()
			err = journaledTxn(h, false, func(tx Tx) error {
				v, _ := tx.Get(k)
				tx.Put(k, v+1)
				return nil
			}, journal)
		case op < 90: // two-key transfer
			a, b := key(), key()
			if a == b {
				continue
			}
			err = journaledTxn(h, false, func(tx Tx) error {
				va, _ := tx.Get(a)
				vb, _ := tx.Get(b)
				tx.Put(a, va+1)
				tx.Put(b, vb+1)
				return nil
			}, journal)
		default: // multi-key batch: read 12, write 4
			base := key()
			err = journaledTxn(h, false, func(tx Tx) error {
				var sum uint64
				for j := uint64(0); j < 12; j++ {
					v, _ := tx.Get(1 + (base+j-1)%keyspace)
					sum += v
				}
				for j := uint64(0); j < 4; j++ {
					tx.Put(1+(base+j-1)%keyspace, sum+j)
				}
				return nil
			}, journal)
		}
		if err != nil {
			t.Errorf("worker %d: %v", worker, err)
			return
		}
	}
}

// TestStressSerializability is the race-enabled stress + oracle suite for
// every backend: N goroutines of mixed traffic, then the journal replay and
// a final-state comparison.
func TestStressSerializability(t *testing.T) {
	const (
		workers  = 8
		keyspace = 256
	)
	txns := 1500
	if testing.Short() {
		txns = 300
	}
	for _, s := range allBackends(t, 4*keyspace, workers) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			journals := make([][]JournalTxn, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				h := s.Handle(w)
				wg.Add(1)
				go func() {
					defer wg.Done()
					stressWorkload(t, h, w, txns, keyspace, &journals[w])
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			ref := replayJournals(t, s.Name(), journals)
			got := snapshot(s)
			if len(got) != len(ref) {
				t.Fatalf("%s: final state has %d keys, serial replay has %d", s.Name(), len(got), len(ref))
			}
			for k, v := range ref {
				if got[k] != v {
					t.Fatalf("%s: final state key %d = %d, serial replay has %d", s.Name(), k, got[k], v)
				}
			}
			st := s.Stats()
			var committed int
			for _, j := range journals {
				committed += len(j)
			}
			if st.Commits != uint64(committed) {
				t.Errorf("%s: stats report %d commits, journals hold %d", s.Name(), st.Commits, committed)
			}
			t.Logf("%s: %d commits, %d aborts (rate %.3f)", s.Name(), st.Commits, st.Aborts, st.AbortRate())
		})
	}
}
