package kvstore

import (
	"fmt"
	"sort"
)

// This file is the commit-journal serializability oracle, the host-side twin
// of internal/explore's checker: collect every committed transaction's
// observed reads and final writes tagged with its commit serial, then replay
// the merged journal in serial order against a reference map. Every
// journaled read must equal the reference at its serialization point —
// serializability checked end to end. It lives outside the test files so the
// network front end's over-the-wire stress (stm/server) can replay journals
// collected across the socket boundary through the same oracle.
//
// With a sharded store, serials are per shard: collect one journal set per
// shard (each operation journaled under the serial its own shard drew) and
// replay each shard independently — the Group commit draws all per-shard
// serials at a single point while holding every token, which is what makes
// the per-shard orders mutually consistent.

// JournalOp is one journaled KV observation or effect.
type JournalOp struct {
	Key uint64
	Val uint64
	OK  bool // for reads: present/absent
}

// JournalTxn is one committed transaction's journal entry.
type JournalTxn struct {
	Serial uint64
	Writer bool // drew a write ticket (non-empty write set)
	Reads  []JournalOp
	Writes []JournalOp
}

// ReplayJournals merges per-worker journals into serial order and replays
// them against a reference map, returning the final reference state. Writers
// sort before read-only transactions at equal serial: a read-only
// transaction's ticket is its read clock, which already includes the writer
// that advanced the clock to that value. The first read that disagrees with
// the reference is reported as an error — a serializability violation.
func ReplayJournals(journals [][]JournalTxn) (map[uint64]uint64, error) {
	var all []JournalTxn
	for _, j := range journals {
		all = append(all, j...)
	}
	sort.SliceStable(all, func(i, k int) bool {
		if all[i].Serial != all[k].Serial {
			return all[i].Serial < all[k].Serial
		}
		return all[i].Writer && !all[k].Writer
	})
	ref := make(map[uint64]uint64)
	for ti, rec := range all {
		for _, r := range rec.Reads {
			rv, rok := ref[r.Key]
			if rok != r.OK || rv != r.Val {
				return nil, fmt.Errorf("serializability violation at commit %d (serial %d): read key %d = (%d,%v), serial replay has (%d,%v)",
					ti, rec.Serial, r.Key, r.Val, r.OK, rv, rok)
			}
		}
		for _, w := range rec.Writes {
			ref[w.Key] = w.Val
		}
	}
	return ref, nil
}
