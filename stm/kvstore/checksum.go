package kvstore

import "sort"

// Snapshotter is the quiescent-iteration half of Store: anything that can
// enumerate its committed KV state. Checksum takes this narrow interface so
// the server's CHECKSUM command and the load generator's cross-backend gate
// hash through one definition.
type Snapshotter interface {
	ForEach(fn func(key, val uint64))
}

// Checksum folds the store's final state into one FNV-1a word, iterating in
// sorted key order so equal states hash equal regardless of backend, shard
// layout, or iteration order. Quiescent-only (it uses ForEach).
func Checksum(s Snapshotter) uint64 {
	type kv struct{ k, v uint64 }
	var all []kv
	s.ForEach(func(k, v uint64) { all = append(all, kv{k, v}) })
	sort.Slice(all, func(i, j int) bool { return all[i].k < all[j].k })
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (x >> s) & 0xff
			h *= prime
		}
	}
	for _, e := range all {
		mix(e.k)
		mix(e.v)
	}
	return h
}
