package kvstore

import (
	"sync"
	"sync/atomic"
)

// rwStore is the coarse-locking baseline: one sync.RWMutex around a plain Go
// map. Read-only transactions share the read lock; anything that writes
// takes the whole store exclusively — the serialization bottleneck TM is
// meant to remove. Writes are buffered and applied on success so a non-nil
// error from fn rolls back for free; there are no conflict aborts.
type rwStore struct {
	mu      sync.RWMutex
	m       map[uint64]uint64
	serial  atomic.Uint64
	commits atomic.Uint64
}

// NewRWMutex builds the coarse-locking baseline store.
func NewRWMutex() Store {
	return &rwStore{m: make(map[uint64]uint64)}
}

func (s *rwStore) Name() string { return "rwmutex" }

func (s *rwStore) Handle(worker int) Handle {
	h := &rwHandle{}
	h.tx.st = s
	return h
}

func (s *rwStore) ForEach(fn func(key, val uint64)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, v := range s.m {
		fn(k, v)
	}
}

func (s *rwStore) Stats() Stats {
	return Stats{Commits: s.commits.Load()}
}

type rwHandle struct {
	tx rwTx
}

func (h *rwHandle) Txn(readOnly bool, fn func(tx Tx) error) (uint64, error) {
	h.tx.readOnly = readOnly
	h.tx.wkeys = h.tx.wkeys[:0]
	h.tx.wvals = h.tx.wvals[:0]
	serial, err := h.tx.run(readOnly, fn)
	if err != nil {
		return 0, err
	}
	h.tx.st.commits.Add(1)
	return serial, nil
}

// Get is one map lookup under the read lock. The serial is the current
// clock value rather than a fresh ticket — a point read serializes after
// every commit it observed without advancing the order itself.
func (h *rwHandle) Get(key uint64) (val uint64, ok bool, serial uint64) {
	if key == 0 {
		panic("kvstore: zero key is reserved")
	}
	st := h.tx.st
	st.mu.RLock()
	val, ok = st.m[key]
	serial = st.serial.Load()
	st.mu.RUnlock()
	st.commits.Add(1)
	return val, ok, serial
}

// Put is one map assignment under the exclusive lock.
func (h *rwHandle) Put(key, val uint64) uint64 {
	if key == 0 {
		panic("kvstore: zero key is reserved")
	}
	st := h.tx.st
	st.mu.Lock()
	st.m[key] = val
	serial := st.serial.Add(1)
	st.mu.Unlock()
	st.commits.Add(1)
	return serial
}

// run executes fn under the appropriate lock mode; the deferred unlock
// keeps a panicking fn from wedging the store.
func (t *rwTx) run(readOnly bool, fn func(tx Tx) error) (uint64, error) {
	st := t.st
	if readOnly {
		st.mu.RLock()
		defer st.mu.RUnlock()
		if err := fn(t); err != nil {
			return 0, err
		}
		return st.serial.Add(1), nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := fn(t); err != nil {
		return 0, err
	}
	for i, k := range t.wkeys {
		st.m[k] = t.wvals[i]
	}
	return st.serial.Add(1), nil
}

// rwTx buffers writes (applied under the exclusive lock on success) and
// answers reads from the buffer first for read-your-writes.
type rwTx struct {
	st       *rwStore
	readOnly bool
	wkeys    []uint64
	wvals    []uint64
}

func (t *rwTx) Get(key uint64) (uint64, bool) {
	if key == 0 {
		panic("kvstore: zero key is reserved")
	}
	for i := len(t.wkeys) - 1; i >= 0; i-- {
		if t.wkeys[i] == key {
			return t.wvals[i], true
		}
	}
	v, ok := t.st.m[key]
	return v, ok
}

func (t *rwTx) Put(key, val uint64) {
	if key == 0 {
		panic("kvstore: zero key is reserved")
	}
	if t.readOnly {
		panic("kvstore: Put inside readOnly transaction")
	}
	t.wkeys = append(t.wkeys, key)
	t.wvals = append(t.wvals, val)
}
