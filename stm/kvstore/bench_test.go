package kvstore

import "testing"

// Single-worker per-operation microbenchmarks over every backend, one
// sub-benchmark per backend so `make microbench` output is directly
// benchstat-comparable across runs (see EXPERIMENTS.md). The loadgen
// package measures the contended mixes; these isolate the per-op floor.

func benchStore(b *testing.B, name string) Handle {
	b.Helper()
	s, err := New(name, 65536, 1)
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handle(0)
	for k := uint64(1); k <= 32768; k += 64 {
		lo := k
		if _, err := h.Txn(false, func(tx Tx) error {
			for j := lo; j < lo+64; j++ {
				tx.Put(j, j)
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	return h
}

func benchOp(b *testing.B, name, op string) {
	h := benchStore(b, name)
	var k uint64
	get := func(tx Tx) error { tx.Get(k%32768 + 1); return nil }
	put := func(tx Tx) error { tx.Put(k%32768+1, k); return nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k += 0x9E3779B1
		switch op {
		case "txn-get":
			h.Txn(true, get)
		case "txn-put":
			h.Txn(false, put)
		case "point-get":
			h.Get(k%32768 + 1)
		case "point-put":
			h.Put(k%32768+1, k)
		}
	}
}

func BenchmarkTxnGet(b *testing.B) {
	for _, n := range Backends {
		b.Run(n, func(b *testing.B) { benchOp(b, n, "txn-get") })
	}
}

func BenchmarkTxnPut(b *testing.B) {
	for _, n := range Backends {
		b.Run(n, func(b *testing.B) { benchOp(b, n, "txn-put") })
	}
}

func BenchmarkPointGet(b *testing.B) {
	for _, n := range Backends {
		b.Run(n, func(b *testing.B) { benchOp(b, n, "point-get") })
	}
}

func BenchmarkPointPut(b *testing.B) {
	for _, n := range Backends {
		b.Run(n, func(b *testing.B) { benchOp(b, n, "point-put") })
	}
}
