package kvstore

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// splitmix64 for seeded deterministic test workloads.
func testRand(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func snapshot(s Store) map[uint64]uint64 {
	m := make(map[uint64]uint64)
	s.ForEach(func(k, v uint64) { m[k] = v })
	return m
}

func allBackends(t *testing.T, capacity, workers int) []Store {
	t.Helper()
	var out []Store
	for _, name := range Backends {
		s, err := New(name, capacity, workers)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

// TestBackendEquivalence is the cross-backend property test: the same
// seeded operation sequence applied single-threaded must leave all three
// backends — and a plain reference map — with identical final KV state.
func TestBackendEquivalence(t *testing.T) {
	const (
		keyspace = 512
		ops      = 20000
		seed     = 42
	)
	ref := make(map[uint64]uint64)
	{
		rng := uint64(seed)
		for i := 0; i < ops; i++ {
			applyRefOp(&rng, ref, keyspace)
		}
	}
	for _, s := range allBackends(t, 2*keyspace, 1) {
		h := s.Handle(0)
		rng := uint64(seed)
		for i := 0; i < ops; i++ {
			applyStoreOp(t, &rng, h, keyspace)
		}
		if got := snapshot(s); !reflect.DeepEqual(got, ref) {
			t.Errorf("%s: final state diverges from reference (%d vs %d keys)",
				s.Name(), len(got), len(ref))
		}
		if st := s.Stats(); st.Commits == 0 {
			t.Errorf("%s: no commits recorded", s.Name())
		}
	}
}

// applyRefOp and applyStoreOp draw the identical op from the rng stream;
// keep their shapes in lockstep.
func applyRefOp(rng *uint64, m map[uint64]uint64, keyspace uint64) {
	switch op := testRand(rng) % 100; {
	case op < 25: // transactional read
		_ = m[1+testRand(rng)%keyspace]
	case op < 40: // point read
		_ = m[1+testRand(rng)%keyspace]
	case op < 60: // transactional write
		k := 1 + testRand(rng)%keyspace
		m[k] = testRand(rng)
	case op < 80: // point write
		k := 1 + testRand(rng)%keyspace
		m[k] = testRand(rng)
	default: // transfer between two keys
		a := 1 + testRand(rng)%keyspace
		b := 1 + testRand(rng)%keyspace
		if a == b {
			return
		}
		va, vb := m[a], m[b]
		if va == 0 {
			return
		}
		m[a], m[b] = va-1, vb+1
	}
}

func applyStoreOp(t *testing.T, rng *uint64, h Handle, keyspace uint64) {
	t.Helper()
	var err error
	switch op := testRand(rng) % 100; {
	case op < 25:
		k := 1 + testRand(rng)%keyspace
		var txv uint64
		var txok bool
		_, err = h.Txn(true, func(tx Tx) error {
			txv, txok = tx.Get(k)
			return nil
		})
		// Single-threaded, the point read must agree with the
		// transactional read it is a fast path for.
		if pv, pok, _ := h.Get(k); pv != txv || pok != txok {
			t.Fatalf("point Get(%d) = (%d,%v), Txn get = (%d,%v)", k, pv, pok, txv, txok)
		}
	case op < 40:
		k := 1 + testRand(rng)%keyspace
		h.Get(k)
	case op < 60:
		k := 1 + testRand(rng)%keyspace
		v := testRand(rng)
		_, err = h.Txn(false, func(tx Tx) error {
			tx.Put(k, v)
			return nil
		})
	case op < 80:
		k := 1 + testRand(rng)%keyspace
		v := testRand(rng)
		if serial := h.Put(k, v); serial == 0 {
			t.Fatalf("point Put(%d) returned serial 0", k)
		}
	default:
		a := 1 + testRand(rng)%keyspace
		b := 1 + testRand(rng)%keyspace
		if a == b {
			return
		}
		_, err = h.Txn(false, func(tx Tx) error {
			va, _ := tx.Get(a)
			vb, _ := tx.Get(b)
			if va == 0 {
				return nil
			}
			tx.Put(a, va-1)
			tx.Put(b, vb+1)
			return nil
		})
	}
	if err != nil {
		t.Fatal(err)
	}
}

// TestReadYourWrites pins the in-transaction visibility contract on every
// backend, including the write-then-read-then-write interleavings the
// buffered backends get wrong most easily.
func TestReadYourWrites(t *testing.T) {
	for _, s := range allBackends(t, 64, 1) {
		h := s.Handle(0)
		if _, err := h.Txn(false, func(tx Tx) error {
			if _, ok := tx.Get(5); ok {
				return errors.New("phantom key")
			}
			tx.Put(5, 100)
			if v, ok := tx.Get(5); !ok || v != 100 {
				return fmt.Errorf("own write invisible: %d %v", v, ok)
			}
			tx.Put(5, 200)
			tx.Put(6, 300)
			if v, _ := tx.Get(5); v != 200 {
				return fmt.Errorf("own overwrite invisible: %d", v)
			}
			return nil
		}); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
		if got := snapshot(s); got[5] != 200 || got[6] != 300 {
			t.Errorf("%s: committed state %v", s.Name(), got)
		}
	}
}

// TestErrorRollsBackAllBackends: a non-nil error from fn must leave no
// trace, on top of existing state.
func TestErrorRollsBackAllBackends(t *testing.T) {
	boom := errors.New("boom")
	for _, s := range allBackends(t, 64, 1) {
		h := s.Handle(0)
		if _, err := h.Txn(false, func(tx Tx) error {
			tx.Put(1, 11)
			return nil
		}); err != nil {
			t.Fatalf("%s: setup: %v", s.Name(), err)
		}
		if _, err := h.Txn(false, func(tx Tx) error {
			tx.Put(1, 999)
			tx.Put(2, 999)
			return boom
		}); !errors.Is(err, boom) {
			t.Fatalf("%s: err = %v", s.Name(), err)
		}
		got := snapshot(s)
		if got[1] != 11 || got[2] != 0 {
			t.Errorf("%s: rollback left %v", s.Name(), got)
		}
	}
}

// TestSerialsIncrease: commits on one handle observe strictly increasing
// serials on every backend (writers draw fresh tickets).
func TestSerialsIncrease(t *testing.T) {
	for _, s := range allBackends(t, 64, 1) {
		h := s.Handle(0)
		var last uint64
		for i := uint64(1); i <= 10; i++ {
			serial, err := h.Txn(false, func(tx Tx) error {
				tx.Put(i, i)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if serial <= last {
				t.Errorf("%s: serial %d after %d", s.Name(), serial, last)
			}
			last = serial
		}
	}
}

// TestPointOps pins the point-op fast-path contract on every backend:
// Put's serial is a real write ticket (monotone across point and
// transactional writers), and Get observes the latest committed value.
func TestPointOps(t *testing.T) {
	for _, s := range allBackends(t, 64, 1) {
		h := s.Handle(0)
		if _, ok, _ := h.Get(7); ok {
			t.Errorf("%s: Get of absent key reports present", s.Name())
		}
		var last uint64
		for i := uint64(1); i <= 20; i++ {
			var serial uint64
			if i%2 == 0 {
				serial = h.Put(7, i)
			} else {
				var err error
				serial, err = h.Txn(false, func(tx Tx) error {
					tx.Put(7, i)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			if serial <= last {
				t.Errorf("%s: write serial %d after %d", s.Name(), serial, last)
			}
			last = serial
			if v, ok, rs := h.Get(7); !ok || v != i {
				t.Errorf("%s: Get(7) = (%d,%v) after Put(7,%d)", s.Name(), v, ok, i)
			} else if rs < serial {
				t.Errorf("%s: Get serial %d predates the write it observed (%d)", s.Name(), rs, serial)
			}
		}
	}
}

// TestPutInReadOnlyPanics pins the readOnly hint contract.
func TestPutInReadOnlyPanics(t *testing.T) {
	for _, s := range allBackends(t, 64, 1) {
		h := s.Handle(0)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Put in readOnly txn did not panic", s.Name())
				}
			}()
			h.Txn(true, func(tx Tx) error {
				tx.Put(1, 1)
				return nil
			})
		}()
	}
}

func TestUnknownBackend(t *testing.T) {
	if _, err := New("nope", 8, 1); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestCeilPow2Boundary pins the shift-overflow guard: rounding stays exact
// through the largest power-of-two int, and one past it fails loudly instead
// of looping forever on `p <<= 1` overflow.
func TestCeilPow2Boundary(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8},
		{maxCapacity - 1, maxCapacity},
		{maxCapacity, maxCapacity},
	}
	for _, c := range cases {
		if got := ceilPow2(c.in); got != c.want {
			t.Errorf("ceilPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("ceilPow2(maxCapacity+1) did not panic")
		}
	}()
	ceilPow2(maxCapacity + 1)
}

// TestNewRejectsAbsurdCapacity checks the constructor surfaces the guard as
// an error instead of a panic.
func TestNewRejectsAbsurdCapacity(t *testing.T) {
	for _, name := range Backends {
		if _, err := New(name, maxCapacity+1, 1); err == nil {
			t.Errorf("New(%q, maxCapacity+1, 1) accepted an unbuildable capacity", name)
		}
	}
}
