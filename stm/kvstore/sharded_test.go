package kvstore

// Sharded-store tests: routing/partition sanity, cross-shard atomicity,
// equivalence with the unsharded backend under a seeded single-threaded
// stream (same final checksum), and the race-enabled per-shard journal
// stress — each shard's journal replayed independently through the oracle,
// which only holds if the Group commit keeps the per-shard serial orders
// mutually consistent.

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"tokentm/stm"
)

func TestShardedPartitionCoversKeyspace(t *testing.T) {
	s := NewSharded(4, 1024, 1, stm.Options{})
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	counts := make([]int, 4)
	for k := uint64(1); k <= 4096; k++ {
		sh := s.ShardOf(k)
		if sh < 0 || sh >= 4 {
			t.Fatalf("ShardOf(%d) = %d out of range", k, sh)
		}
		counts[sh]++
	}
	for i, c := range counts {
		// The hash spreads uniformly: each shard should hold ~1024 of 4096
		// keys. A shard under an eighth of its fair share means the top-bits
		// routing is broken, not just unlucky.
		if c < 4096/32 {
			t.Errorf("shard %d holds %d of 4096 keys — partition badly skewed", i, c)
		}
	}

	one := NewSharded(1, 64, 1, stm.Options{})
	for k := uint64(1); k <= 100; k++ {
		if sh := one.ShardOf(k); sh != 0 {
			t.Fatalf("1-shard ShardOf(%d) = %d", k, sh)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("NewSharded(3, ...) did not panic")
		}
	}()
	NewSharded(3, 64, 1, stm.Options{})
}

// TestShardedMatchesUnsharded drives the identical seeded single-threaded
// stream into the unsharded stm backend and sharded stores of several widths
// and demands identical final state (and therefore Checksum) — the in-process
// half of the netbench checksum-equality gate.
func TestShardedMatchesUnsharded(t *testing.T) {
	const (
		keyspace = 512
		ops      = 8000
		seed     = 7
	)
	run := func(s Store) map[uint64]uint64 {
		h := s.Handle(0)
		rng := uint64(seed)
		for i := 0; i < ops; i++ {
			applyStoreOp(t, &rng, h, keyspace)
		}
		return snapshot(s)
	}
	want := run(NewSTM(4*keyspace, 1))
	for _, shards := range []int{1, 2, 8} {
		s := NewSharded(shards, 4*keyspace, 1, stm.Options{})
		got := run(s)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%d shards: final state diverges from unsharded (%d vs %d keys)", shards, len(got), len(want))
		}
	}
}

func TestShardedCrossShardAtomicity(t *testing.T) {
	s := NewSharded(4, 1024, 1, stm.Options{})
	h := s.Handle(0).(*ShardedHandle)

	// Find two keys on different shards.
	a := uint64(1)
	b := uint64(2)
	for s.ShardOf(b) == s.ShardOf(a) {
		b++
	}

	serials, err := h.TxnSerials(false, func(tx Tx) error {
		tx.Put(a, 10)
		tx.Put(b, 20)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var touched int
	for i, serial := range serials {
		if serial != 0 {
			touched++
			if clock := s.ShardSerial(i); clock != serial {
				t.Errorf("shard %d clock %d != drawn serial %d", i, clock, serial)
			}
		}
	}
	if touched != 2 {
		t.Errorf("cross-shard txn touched %d shards, want 2 (serials %v)", touched, serials)
	}

	// Txn's single-serial contract: 0 for multi-shard, nonzero for one shard.
	if serial, err := h.Txn(false, func(tx Tx) error {
		tx.Put(a, 11)
		tx.Put(b, 21)
		return nil
	}); err != nil || serial != 0 {
		t.Errorf("multi-shard Txn = (%d, %v), want (0, nil)", serial, err)
	}
	if serial, err := h.Txn(false, func(tx Tx) error {
		tx.Put(a, 12)
		return nil
	}); err != nil || serial == 0 {
		t.Errorf("single-shard Txn = (%d, %v), want (nonzero, nil)", serial, err)
	}

	// Error rollback spans shards.
	boom := errors.New("boom")
	if _, err := h.TxnSerials(false, func(tx Tx) error {
		tx.Put(a, 99)
		tx.Put(b, 99)
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	got := snapshot(s)
	if got[a] != 12 || got[b] != 21 {
		t.Errorf("rollback left a=%d b=%d, want 12, 21", got[a], got[b])
	}

	// Point ops report the routing shard.
	if v, ok, shard, serial := h.GetSharded(a); !ok || v != 12 || shard != s.ShardOf(a) || serial == 0 {
		t.Errorf("GetSharded(a) = (%d,%v,%d,%d)", v, ok, shard, serial)
	}
	if shard, serial := h.PutSharded(b, 30); shard != s.ShardOf(b) || serial == 0 {
		t.Errorf("PutSharded(b) = (%d,%d)", shard, serial)
	}
}

// shardJournal tags every operation of a sharded transaction with its owning
// shard so the commit can be journaled per shard under that shard's serial.
type shardJournal struct {
	s     *Sharded
	inner Tx
	reads []struct {
		shard int
		op    JournalOp
	}
	writes []struct {
		shard int
		op    JournalOp
	}
}

func (j *shardJournal) wrote(key uint64) bool {
	for i := range j.writes {
		if j.writes[i].op.Key == key {
			return true
		}
	}
	return false
}

func (j *shardJournal) Get(key uint64) (uint64, bool) {
	v, ok := j.inner.Get(key)
	if !j.wrote(key) {
		j.reads = append(j.reads, struct {
			shard int
			op    JournalOp
		}{j.s.ShardOf(key), JournalOp{Key: key, Val: v, OK: ok}})
	}
	return v, ok
}

func (j *shardJournal) Put(key, val uint64) {
	j.inner.Put(key, val)
	for i := range j.writes {
		if j.writes[i].op.Key == key {
			j.writes[i].op.Val = val
			return
		}
	}
	j.writes = append(j.writes, struct {
		shard int
		op    JournalOp
	}{j.s.ShardOf(key), JournalOp{Key: key, Val: val, OK: true}})
}

// journaledShardedTxn runs fn with per-shard journaling: the committed
// transaction appends one JournalTxn per touched shard, carrying that
// shard's operations under that shard's serial, to out[shard].
func journaledShardedTxn(s *Sharded, h *ShardedHandle, readOnly bool, fn func(Tx) error, out [][]JournalTxn) error {
	j := shardJournal{s: s}
	serials, err := h.TxnSerials(readOnly, func(tx Tx) error {
		j.inner = tx
		j.reads = j.reads[:0]
		j.writes = j.writes[:0]
		return fn(&j)
	})
	if err != nil {
		return err
	}
	for shard, serial := range serials {
		if serial == 0 {
			continue
		}
		rec := JournalTxn{Serial: serial}
		for _, r := range j.reads {
			if r.shard == shard {
				rec.Reads = append(rec.Reads, r.op)
			}
		}
		for _, w := range j.writes {
			if w.shard == shard {
				rec.Writes = append(rec.Writes, w.op)
				rec.Writer = true
			}
		}
		out[shard] = append(out[shard], rec)
	}
	return nil
}

// TestShardedStressSerializability is the sharded twin of
// TestStressSerializability: concurrent mixed traffic (point ops and
// cross-shard transactions), journaled per shard, each shard's journal
// replayed independently through the oracle, plus a final-state comparison
// against the union of the per-shard replays. Run with -race.
func TestShardedStressSerializability(t *testing.T) {
	const (
		workers  = 8
		shards   = 4
		keyspace = 256
	)
	txns := 1200
	if testing.Short() {
		txns = 250
	}
	s := NewSharded(shards, 8*keyspace, workers, stm.Options{})
	// journals[w][shard] — merged across workers per shard before replay.
	journals := make([][][]JournalTxn, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		h := s.Handle(w).(*ShardedHandle)
		journals[w] = make([][]JournalTxn, shards)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 99
			key := func() uint64 {
				if testRand(&rng)%5 == 0 {
					return 1 + testRand(&rng)%8 // hot set
				}
				return 1 + testRand(&rng)%keyspace
			}
			for i := 0; i < txns; i++ {
				var err error
				switch op := testRand(&rng) % 100; {
				case op < 25: // point read
					k := key()
					v, ok, shard, serial := h.GetSharded(k)
					journals[w][shard] = append(journals[w][shard], JournalTxn{
						Serial: serial, Reads: []JournalOp{{Key: k, Val: v, OK: ok}}})
				case op < 45: // point write
					k, v := key(), testRand(&rng)
					shard, serial := h.PutSharded(k, v)
					journals[w][shard] = append(journals[w][shard], JournalTxn{
						Serial: serial, Writer: true,
						Writes: []JournalOp{{Key: k, Val: v, OK: true}}})
				case op < 65: // read-modify-write
					k := key()
					err = journaledShardedTxn(s, h, false, func(tx Tx) error {
						v, _ := tx.Get(k)
						tx.Put(k, v+1)
						return nil
					}, journals[w])
				case op < 90: // cross-shard transfer
					a, b := key(), key()
					if a == b {
						continue
					}
					err = journaledShardedTxn(s, h, false, func(tx Tx) error {
						va, _ := tx.Get(a)
						vb, _ := tx.Get(b)
						tx.Put(a, va+1)
						tx.Put(b, vb+1)
						return nil
					}, journals[w])
				default: // multi-key batch spanning shards: read 10, write 4
					base := key()
					err = journaledShardedTxn(s, h, false, func(tx Tx) error {
						var sum uint64
						for j := uint64(0); j < 10; j++ {
							v, _ := tx.Get(1 + (base+j-1)%keyspace)
							sum += v
						}
						for j := uint64(0); j < 4; j++ {
							tx.Put(1+(base+j-1)%keyspace, sum+j)
						}
						return nil
					}, journals[w])
				}
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	ref := make(map[uint64]uint64)
	for shard := 0; shard < shards; shard++ {
		perWorker := make([][]JournalTxn, workers)
		for w := 0; w < workers; w++ {
			perWorker[w] = journals[w][shard]
		}
		shardRef, err := ReplayJournals(perWorker)
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		for k, v := range shardRef {
			if got := s.ShardOf(k); got != shard {
				t.Fatalf("key %d journaled on shard %d but routes to %d", k, shard, got)
			}
			ref[k] = v
		}
	}
	got := snapshot(s)
	if len(got) != len(ref) {
		t.Fatalf("final state has %d keys, per-shard replay has %d", len(got), len(ref))
	}
	for k, v := range ref {
		if got[k] != v {
			t.Fatalf("final state key %d = %d, replay has %d", k, got[k], v)
		}
	}
	st := s.Stats()
	if st.Commits == 0 {
		t.Fatal("no commits recorded")
	}
	t.Logf("sharded: %d commits, %d aborts (rate %.3f)", st.Commits, st.Aborts, st.AbortRate())
}
