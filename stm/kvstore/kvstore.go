// Package kvstore is a transactional in-memory key-value store with three
// interchangeable concurrency-control backends behind one interface:
//
//   - "stm": the TokenTM-derived software TM in package stm — pessimistic,
//     token-based, eager version management;
//   - "rwmutex": one coarse sync.RWMutex over a Go map — the classic
//     baseline every TM paper compares against;
//   - "tl2-occ": a TL2-style optimistic concurrency control with versioned
//     lock-words and commit-time validation — the progressive/validation
//     design "On the Cost of Concurrency in Transactional Memory" pits
//     against pessimistic schemes.
//
// Keys are non-zero uint64s (zero marks an empty slot, mirroring txlib.Map);
// values are uint64. The array-backed backends use fixed-capacity linear
// probing, so a store must be created with capacity comfortably above the
// live key count.
//
// Every committed transaction returns a serial number: a total order over
// that store's commits consistent with transactional conflicts (each backend
// draws the ticket at its serialization point). The stress suite replays
// commit journals in serial order against a reference map to check
// serializability, the same oracle internal/explore runs against the
// simulator.
package kvstore

import (
	"fmt"
	"math/bits"
)

// Tx is the operation set available inside a transaction. Get observes the
// transaction's own earlier Puts (read-your-writes).
type Tx interface {
	Get(key uint64) (uint64, bool)
	Put(key, val uint64)
}

// Handle is a per-worker entry point. Handles are not safe for concurrent
// use: bind exactly one to each goroutine (they carry reusable per-worker
// scratch, so steady-state transactions allocate nothing).
type Handle interface {
	// Txn runs fn atomically and returns the commit serial. readOnly is a
	// hint that fn performs no Puts — backends may exploit it (the coarse
	// backend takes its read lock); a Put inside a readOnly transaction
	// panics. fn may be re-executed on conflict; a non-nil error aborts
	// the transaction with all effects rolled back and is returned.
	Txn(readOnly bool, fn func(tx Tx) error) (serial uint64, err error)

	// Get is the point-read fast path: a single-key read-only transaction
	// without the closure machinery, the shape a cache front-end issues.
	// It is equivalent to Txn(true, ...Get(key)...) — same isolation, same
	// serial semantics — but each backend implements it natively (the stm
	// backend reads a committed single-block snapshot with no token
	// traffic at all).
	Get(key uint64) (val uint64, ok bool, serial uint64)

	// Put is the point-write fast path: a single-key blind upsert,
	// equivalent to Txn(false, ...Put(key, val)...). The stm backend runs
	// it as a one-block claim-or-skip mini-transaction (the paper's
	// minimal-write-set case) with no log traffic.
	Put(key, val uint64) (serial uint64)
}

// Store is a transactional KV store. ForEach and Stats require quiescence
// (no concurrent Txn), the usual contract for snapshot inspection.
type Store interface {
	Name() string
	Handle(worker int) Handle
	ForEach(fn func(key, val uint64))
	Stats() Stats
}

// Stats aggregates transaction outcomes across workers.
type Stats struct {
	Commits uint64 // committed transactions
	Aborts  uint64 // aborted-and-retried attempts
}

// AbortRate returns aborted attempts per executed attempt.
func (s Stats) AbortRate() float64 {
	attempts := s.Commits + s.Aborts
	if attempts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(attempts)
}

// Backends lists the registered backend names in presentation order.
var Backends = []string{"stm", "rwmutex", "tl2-occ"}

// New builds the named backend with the given slot capacity (rounded up to
// a power of two) and worker bound.
func New(name string, capacity, workers int) (Store, error) {
	if capacity > maxCapacity {
		return nil, fmt.Errorf("kvstore: capacity %d exceeds the maximum slot count %d", capacity, maxCapacity)
	}
	switch name {
	case "stm":
		return NewSTM(capacity, workers), nil
	case "rwmutex":
		return NewRWMutex(), nil
	case "tl2-occ":
		return NewTL2(capacity), nil
	default:
		return nil, fmt.Errorf("kvstore: unknown backend %q (have %v)", name, Backends)
	}
}

// maxCapacity is the largest representable power-of-two slot count: one more
// doubling would overflow int and ceilPow2's `p <<= 1` used to spin forever.
const maxCapacity = 1 << (bits.UintSize - 2)

// ceilPow2 rounds n up to a power of two (min 1). Requests past the largest
// power-of-two int fail loudly instead of looping on shift overflow.
func ceilPow2(n int) int {
	if n > maxCapacity {
		panic(fmt.Sprintf("kvstore: capacity %d exceeds the maximum slot count %d", n, maxCapacity))
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// hashKey mixes a key for slot placement (splitmix64 finalizer, the same
// mix txlib uses for simulated-memory maps).
func hashKey(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}
