package stm

import "sync/atomic"

// Stats is a point-in-time snapshot of transaction outcomes and conflict
// events, summed across threads by TM.Stats. It is a plain value: copy and
// compare freely.
type Stats struct {
	Commits uint64 // committed transactions
	Aborts  uint64 // aborted attempts (each retried attempt counts once)

	Upgrades     uint64 // read-to-write upgrades (token fold-in path)
	FastReleases uint64 // attempts whose footprint stayed in the inline logs
	SlowReleases uint64 // attempts that spilled to heap logs

	ConflictWriter uint64 // acquisition rounds lost to a writer's (T,X)
	ConflictReader uint64 // write acquisitions lost to outstanding readers
	ConflictAnon   uint64 // conflicts with anonymous (unidentifiable) holders

	ConflictAborts uint64 // attempts abandoned after SpinLimit rounds
	DoomedAborts   uint64 // attempts abandoned because an elder doomed us
	Dooms          uint64 // younger enemies we doomed (eldest tiebreak)

	SnapshotCommits uint64 // read-only transactions committed in snapshot mode
	SnapshotRetries uint64 // snapshot attempts retried on a stale read serial
}

// counters is the live per-thread statistics block. Each field has exactly
// one writer — the owning goroutine — and is stored atomically so observers
// (TM.Stats, the server's INFO command) can read a consistent-enough
// snapshot at any time without a detector-level race. The single-writer
// increment is a plain load + plain store pair on amd64 (no LOCK prefix),
// so the hot paths pay nothing for the observability.
type counters struct {
	Commits atomic.Uint64
	Aborts  atomic.Uint64

	Upgrades     atomic.Uint64
	FastReleases atomic.Uint64
	SlowReleases atomic.Uint64

	ConflictWriter atomic.Uint64
	ConflictReader atomic.Uint64
	ConflictAnon   atomic.Uint64

	ConflictAborts atomic.Uint64
	DoomedAborts   atomic.Uint64
	Dooms          atomic.Uint64

	SnapshotCommits atomic.Uint64
	SnapshotRetries atomic.Uint64
}

// bump increments a single-writer counter. Only the counter's owning
// goroutine may call it.
//
//tokentm:allocfree
func bump(c *atomic.Uint64) { c.Store(c.Load() + 1) }

// addTo accumulates an atomic snapshot of c into s. Counters are read
// individually; a snapshot taken while transactions run is per-field exact
// but not cross-field consistent (quiesce for exact books).
func (c *counters) addTo(s *Stats) {
	s.Commits += c.Commits.Load()
	s.Aborts += c.Aborts.Load()
	s.Upgrades += c.Upgrades.Load()
	s.FastReleases += c.FastReleases.Load()
	s.SlowReleases += c.SlowReleases.Load()
	s.ConflictWriter += c.ConflictWriter.Load()
	s.ConflictReader += c.ConflictReader.Load()
	s.ConflictAnon += c.ConflictAnon.Load()
	s.ConflictAborts += c.ConflictAborts.Load()
	s.DoomedAborts += c.DoomedAborts.Load()
	s.Dooms += c.Dooms.Load()
	s.SnapshotCommits += c.SnapshotCommits.Load()
	s.SnapshotRetries += c.SnapshotRetries.Load()
}

// AbortRate returns aborted attempts per executed attempt.
func (s Stats) AbortRate() float64 {
	attempts := s.Commits + s.Aborts
	if attempts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(attempts)
}
