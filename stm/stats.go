package stm

// Stats counts per-thread transaction outcomes and conflict events. Fields
// are plain counters written only by the owning goroutine; read them through
// TM.Stats (quiescent) or after the worker has joined.
type Stats struct {
	Commits uint64 // committed transactions
	Aborts  uint64 // aborted attempts (each retried attempt counts once)

	Upgrades     uint64 // read-to-write upgrades (token fold-in path)
	FastReleases uint64 // attempts whose footprint stayed in the inline logs
	SlowReleases uint64 // attempts that spilled to heap logs

	ConflictWriter uint64 // acquisition rounds lost to a writer's (T,X)
	ConflictReader uint64 // write acquisitions lost to outstanding readers
	ConflictAnon   uint64 // conflicts with anonymous (unidentifiable) holders

	ConflictAborts uint64 // attempts abandoned after spinLimit rounds
	DoomedAborts   uint64 // attempts abandoned because an elder doomed us
	Dooms          uint64 // younger enemies we doomed (eldest tiebreak)

	SnapshotCommits uint64 // read-only transactions committed in snapshot mode
	SnapshotRetries uint64 // snapshot attempts retried on a stale read serial
}

// add accumulates o into s.
func (s *Stats) add(o *Stats) {
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.Upgrades += o.Upgrades
	s.FastReleases += o.FastReleases
	s.SlowReleases += o.SlowReleases
	s.ConflictWriter += o.ConflictWriter
	s.ConflictReader += o.ConflictReader
	s.ConflictAnon += o.ConflictAnon
	s.ConflictAborts += o.ConflictAborts
	s.DoomedAborts += o.DoomedAborts
	s.Dooms += o.Dooms
	s.SnapshotCommits += o.SnapshotCommits
	s.SnapshotRetries += o.SnapshotRetries
}

// AbortRate returns aborted attempts per executed attempt.
func (s Stats) AbortRate() float64 {
	attempts := s.Commits + s.Aborts
	if attempts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(attempts)
}
