package stm

import (
	"sync"
	"testing"

	"tokentm/internal/metastate"
)

// These tests pin the non-transactional point-op fast paths: Snapshot2
// (validated paired read) and Upsert2 (single-block claim-or-skip write).

func TestSnapshot2ObservesCommit(t *testing.T) {
	tm := New(4, 2, 1) // 2 words per block: addrs 0,1 share block 0
	th := tm.Thread(0)

	v1, v2, s0 := th.Snapshot2(0, 1)
	if v1 != 0 || v2 != 0 || s0 != 0 {
		t.Fatalf("fresh block snapshot = (%d,%d,%d), want (0,0,0)", v1, v2, s0)
	}

	serial, err := th.Atomically(func(tx *Tx) error {
		tx.Store(0, 11)
		tx.Store(1, 22)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v1, v2, s1 := th.Snapshot2(0, 1)
	if v1 != 11 || v2 != 22 {
		t.Fatalf("snapshot = (%d,%d), want (11,22)", v1, v2)
	}
	if s1 != serial {
		t.Fatalf("snapshot serial %d, want the writer's release stamp %d", s1, serial)
	}
	quiesced(t, tm)
}

// TestSnapshot2Torn hammers one block with a writer flipping between two
// internally consistent states while readers snapshot it: a snapshot must
// never pair values from different commits.
func TestSnapshot2Torn(t *testing.T) {
	const rounds = 2000
	tm := New(2, 2, 2)
	wr := tm.Thread(0)
	rd := tm.Thread(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(1); i <= rounds; i++ {
			if _, err := wr.Atomically(func(tx *Tx) error {
				tx.Store(0, i)
				tx.Store(1, ^i)
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var lastSerial uint64
	for {
		v1, v2, s := rd.Snapshot2(0, 1)
		if v1 != 0 && v2 != ^v1 {
			t.Fatalf("torn snapshot: (%d,%d)", v1, v2)
		}
		if s < lastSerial {
			t.Fatalf("snapshot serial went backwards: %d after %d", s, lastSerial)
		}
		lastSerial = s
		if v1 == rounds {
			break
		}
		select {
		case <-done:
			if v1, _, _ := rd.Snapshot2(0, 1); v1 != rounds {
				t.Fatalf("writer done but snapshot reads %d", v1)
			}
			quiesced(t, tm)
			return
		default:
		}
	}
	<-done
	quiesced(t, tm)
}

func TestUpsert2ClaimSkipAndStamp(t *testing.T) {
	tm := New(4, 2, 1)
	th := tm.Thread(0)

	// Fresh slot: the claim installs key and value and stamps the serial.
	claimed, s1 := th.Upsert2(0, 1, 77, 100)
	if !claimed || s1 == 0 {
		t.Fatalf("claim of empty slot = (%v,%d)", claimed, s1)
	}
	if k, v, s := th.Snapshot2(0, 1); k != 77 || v != 100 || s != s1 {
		t.Fatalf("after claim: (%d,%d,%d), want (77,100,%d)", k, v, s, s1)
	}

	// Same key: an update, drawing a strictly later serial.
	claimed, s2 := th.Upsert2(0, 1, 77, 200)
	if !claimed || s2 <= s1 {
		t.Fatalf("update = (%v,%d), want claimed with serial > %d", claimed, s2, s1)
	}

	// Different key: the skip path must leave value AND stamp untouched —
	// a moved stamp would falsely invalidate concurrent snapshot readers.
	before := metastate.PackedWord(tm.metaw(0).Load())
	claimed, s3 := th.Upsert2(0, 1, 99, 300)
	if claimed || s3 != 0 {
		t.Fatalf("claim of occupied slot = (%v,%d), want (false,0)", claimed, s3)
	}
	if after := metastate.PackedWord(tm.metaw(0).Load()); after != before {
		t.Fatalf("skip moved the metastate word: %#x -> %#x", uint64(before), uint64(after))
	}
	if k, v, s := th.Snapshot2(0, 1); k != 77 || v != 200 || s != s2 {
		t.Fatalf("after skip: (%d,%d,%d), want (77,200,%d)", k, v, s, s2)
	}
	quiesced(t, tm)

	st := tm.Stats()
	if st.Commits != 2 {
		t.Fatalf("commits = %d, want 2 (skips do not commit)", st.Commits)
	}
}

// TestUpsert2Race: distinct keys race for one slot; exactly one claims it,
// and the block quiesces with the winner installed.
func TestUpsert2Race(t *testing.T) {
	const workers = 8
	tm := New(2, 2, workers)
	var claims int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := tm.Thread(w)
		key := uint64(1000 + w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ok, _ := th.Upsert2(0, 1, key, key*10); ok {
				mu.Lock()
				claims++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if claims != 1 {
		t.Fatalf("%d claims of one slot, want exactly 1", claims)
	}
	k, v, _ := tm.Thread(0).Snapshot2(0, 1)
	if k < 1000 || k >= 1000+workers || v != k*10 {
		t.Fatalf("winner state (%d,%d) inconsistent", k, v)
	}
	quiesced(t, tm)
}

func TestPointOpsInsideTxnPanic(t *testing.T) {
	tm := New(4, 2, 1)
	th := tm.Thread(0)
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"Upsert2", func() { th.Upsert2(0, 1, 1, 2) }},
		{"Snapshot2", func() { th.Snapshot2(0, 1) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s inside own write transaction did not panic", tc.name)
				}
			}()
			th.Atomically(func(tx *Tx) error {
				tx.Store(0, 1) // write token on block 0 held by this thread
				tc.call()
				return nil
			})
		}()
	}
	quiesced(t, tm)
}

func TestPointOpsSpanPanic(t *testing.T) {
	tm := New(4, 2, 1)
	th := tm.Thread(0)
	for _, call := range []func(){
		func() { th.Snapshot2(0, 2) }, // different blocks
		func() { th.Upsert2(0, 2, 1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("cross-block point op did not panic")
				}
			}()
			call()
		}()
	}
}
