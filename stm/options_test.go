package stm

// Satellite contract for the Options lift: the zero Options value must
// reproduce the package's historical constants exactly, and MaxAttempts must
// turn an unwinnable conflict into ErrAborted with the thread reusable
// afterwards. The conflict scenarios are white-box: one thread parks holding
// a write token mid-attempt (the way runAttempt would between fn statements),
// the other runs a bounded transaction against it.

import (
	"errors"
	"testing"
)

// TestDefaultOptionsMatchHistoricalConstants pins the default policy to the
// constants the package shipped with before the policy became tunable. If a
// default changes, this test is the reviewable record of it.
func TestDefaultOptionsMatchHistoricalConstants(t *testing.T) {
	want := Options{
		SpinLimit:        48,
		UpgradeSpinLimit: 2,
		BackoffShiftCap:  6,
		SpinShiftCap:     5,
		MaxAttempts:      0,
	}
	if got := DefaultOptions(); got != want {
		t.Errorf("DefaultOptions() = %+v, want %+v", got, want)
	}
	if got := (Options{}).withDefaults(); got != want {
		t.Errorf("Options{}.withDefaults() = %+v, want %+v", got, want)
	}
	if got := New(16, 2, 1).Options(); got != want {
		t.Errorf("New(...).Options() = %+v, want %+v", got, want)
	}
	// Partial overrides keep the untouched fields at their defaults.
	got := NewWithOptions(16, 2, 1, Options{SpinLimit: 7}).Options()
	want.SpinLimit = 7
	if got != want {
		t.Errorf("partial override = %+v, want %+v", got, want)
	}
}

// TestDefaultsReproduceTodaysBehavior runs the same deterministic workload on
// a TM built with New and one built with explicit DefaultOptions and demands
// identical serials, final words, and statistics — the "defaults are not a
// silent behavior change" check.
func TestDefaultsReproduceTodaysBehavior(t *testing.T) {
	run := func(tm *TM) ([]uint64, Stats) {
		th := tm.Thread(0)
		var serials []uint64
		for i := 0; i < 50; i++ {
			i := i
			s, err := th.Atomically(func(tx *Tx) error {
				a := Addr(uint(i%8) * uint(tm.WordsPerBlock()))
				tx.Store(a, tx.Load(a)+uint64(i))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			serials = append(serials, s)
		}
		words := make([]uint64, tm.NumWords())
		for a := range words {
			words[a] = tm.LoadWord(Addr(a))
		}
		for a, w := range words {
			serials = append(serials, uint64(a), w)
		}
		return serials, tm.Stats()
	}
	s1, st1 := run(New(16, 2, 2))
	s2, st2 := run(NewWithOptions(16, 2, 2, DefaultOptions()))
	if len(s1) != len(s2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("trace diverges at %d: %d vs %d", i, s1[i], s2[i])
		}
	}
	if st1 != st2 {
		t.Errorf("stats diverge:\n New:            %+v\n DefaultOptions: %+v", st1, st2)
	}
}

func TestNegativeOptionsPanic(t *testing.T) {
	for _, opt := range []Options{
		{SpinLimit: -1}, {UpgradeSpinLimit: -1}, {BackoffShiftCap: -1},
		{SpinShiftCap: -1}, {MaxAttempts: -1},
	} {
		opt := opt
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWithOptions(%+v) did not panic", opt)
				}
			}()
			NewWithOptions(16, 2, 1, opt)
		}()
	}
}

// parkWriter opens an attempt on th and leaves it holding block b's write
// tokens, the way a transaction parked between two statements of fn would.
// The returned release func aborts that attempt and re-idles the thread.
func parkWriter(th *Thread, b uint32) (release func()) {
	tx := &th.tx
	th.beginAttempt(tx)
	tx.writeAcquire(b)
	return func() {
		tx.abortAttempt()
		th.status.Store(th.attempt<<statusShift | stateIdle)
	}
}

// TestMaxAttemptsSurfacesErrAborted pins the bounded-retry surface the
// network front end is built on: a transaction that cannot win its conflict
// returns ErrAborted after exactly MaxAttempts attempts, every effect rolled
// back, and the thread immediately usable for the next transaction.
func TestMaxAttemptsSurfacesErrAborted(t *testing.T) {
	tm := NewWithOptions(16, 2, 2, Options{SpinLimit: 2, MaxAttempts: 3})
	release := parkWriter(tm.Thread(0), 0)

	th := tm.Thread(1)
	other := Addr(5 * tm.WordsPerBlock())
	if _, err := th.Atomically(func(tx *Tx) error {
		tx.Store(other, 1) // must be undone on the final abort
		tx.Load(0)         // conflicts with the parked writer forever
		return nil
	}); !errors.Is(err, ErrAborted) {
		t.Fatalf("Atomically = %v, want ErrAborted", err)
	}
	if got := tm.Stats().Aborts; got != 3 {
		t.Errorf("Aborts = %d, want 3 (one per bounded attempt)", got)
	}
	if v := tm.LoadWord(other); v != 0 {
		t.Errorf("word %d = %d after ErrAborted, want 0 (rolled back)", other, v)
	}

	// The thread is reusable: same Thread, disjoint block, must commit.
	if _, err := th.Atomically(func(tx *Tx) error {
		tx.Store(other, 7)
		return nil
	}); err != nil {
		t.Fatalf("post-abort Atomically = %v", err)
	}
	if v := tm.LoadWord(other); v != 7 {
		t.Errorf("word %d = %d, want 7", other, v)
	}
	release()
}

// TestMaxAttemptsBoundsReadOnly covers the snapshot path: a read-only
// transaction stuck behind a parked writer gives up with ErrAborted instead
// of retrying forever.
func TestMaxAttemptsBoundsReadOnly(t *testing.T) {
	tm := NewWithOptions(16, 2, 2, Options{SpinLimit: 2, MaxAttempts: 2})
	release := parkWriter(tm.Thread(0), 0)

	th := tm.Thread(1)
	if _, err := th.ReadOnly(func(tx *Tx) error {
		tx.Load(0)
		return nil
	}); !errors.Is(err, ErrAborted) {
		t.Fatalf("ReadOnly = %v, want ErrAborted", err)
	}
	release()

	// Writer gone: the same thread's next snapshot succeeds.
	if _, err := th.ReadOnly(func(tx *Tx) error {
		tx.Load(0)
		return nil
	}); err != nil {
		t.Fatalf("post-release ReadOnly = %v", err)
	}
}
