package resp

// TestAllocFreeAnnotations cross-checks this package's //tokentm:allocfree
// annotations at runtime, mirroring stm's table: the key set must equal the
// annotation list the static analyzer sees (lint.AllocFreeFuncs), and each
// entry must measure zero allocations per run once the reader/writer scratch
// buffers have warmed — the property the server leans on for alloc-free
// steady-state GET/SET service.

import (
	"io"
	"slices"
	"sort"
	"testing"

	"tokentm/internal/lint"
)

// loopReader hands out the same frame forever, so one Reader can decode an
// unbounded command stream without the driver touching it between runs.
type loopReader struct {
	frame []byte
	pos   int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.pos == len(l.frame) {
		l.pos = 0
	}
	n := copy(p, l.frame[l.pos:])
	l.pos += n
	return n, nil
}

func TestAllocFreeAnnotations(t *testing.T) {
	rdArray := NewReader(&loopReader{frame: []byte("*3\r\n$3\r\nSET\r\n$10\r\n1234567890\r\n$20\r\n18446744073709551615\r\n")})
	rdInline := NewReader(&loopReader{frame: []byte("GET 1234567890\r\n")})
	w := NewWriter(io.Discard)
	payload := []byte("steady-state payload")
	num := []byte("18446744073709551615")

	entries := []struct {
		name string
		fn   func()
	}{
		{"Reader.ReadCommand", func() {
			if _, err := rdArray.ReadCommand(); err != nil {
				t.Fatal(err)
			}
			if _, err := rdInline.ReadCommand(); err != nil {
				t.Fatal(err)
			}
		}},
		{"Writer.WriteSimple", func() { w.WriteSimple("OK") }},
		{"Writer.WriteErrorString", func() { w.WriteErrorString("RETRY transaction aborted") }},
		{"Writer.WriteUint", func() { w.WriteUint(18446744073709551615) }},
		{"Writer.WriteBulk", func() { w.WriteBulk(payload) }},
		{"Writer.WriteBulkString", func() { w.WriteBulkString("bulk string") }},
		{"Writer.WriteBulkUint", func() { w.WriteBulkUint(18446744073709551615) }},
		{"Writer.WriteNull", func() { w.WriteNull() }},
		{"Writer.WriteArrayHeader", func() { w.WriteArrayHeader(3) }},
		{"ParseUint", func() {
			if _, ok := ParseUint(num); !ok {
				t.Fatal("ParseUint rejected max uint64")
			}
		}},
	}

	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.name)
	}
	sort.Strings(names)
	want, err := lint.AllocFreeFuncs(".")
	if err != nil {
		t.Fatalf("scanning annotations: %v", err)
	}
	if !slices.Equal(names, want) {
		t.Fatalf("annotation/table drift:\n annotated: %v\n table:     %v", want, names)
	}

	for _, e := range entries {
		e := e
		t.Run(e.name, func(t *testing.T) {
			for i := 0; i < 3; i++ {
				e.fn()
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			if n := testing.AllocsPerRun(200, e.fn); n != 0 {
				t.Errorf("%s allocates %.0f times per run; want 0", e.name, n)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
