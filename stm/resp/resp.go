// Package resp implements the RESP-lite wire protocol the tokentm-store
// server speaks: a safe subset of Redis's RESP framing, restricted to what
// the KV protocol needs and hardened against hostile input (every length is
// bounded before any byte is buffered, so a malformed frame can error but
// never over-allocate or panic).
//
// Requests are commands — an array of bulk strings (`*2\r\n$3\r\nGET\r\n...`)
// or an inline line of space-separated tokens (`GET 17\r\n`, telnet-friendly).
// Replies are RESP values: simple strings (+OK), errors (-RETRY ...),
// integers (:7), bulk strings ($3\r\n...), null bulks ($-1), and arrays.
// Keys, values, and serials travel as decimal integers in bulks; the parser
// and encoder never interpret them beyond framing.
//
// The Reader's command path and the Writer's reply primitives are the
// server's per-operation fast paths: both recycle receiver-held scratch
// buffers, so after warm-up a GET/SET round trip allocates nothing
// (//tokentm:allocfree, pinned by the AllocsPerRun table in
// allocfree_test.go).
package resp

import (
	"bufio"
	"errors"
	"io"
	"strconv"
)

// Framing bounds. A frame that declares more than these errors out before
// any allocation proportional to the declared size happens.
const (
	// MaxArgs bounds the element count of one command array.
	MaxArgs = 1024
	// MaxBulk bounds the byte length of one bulk string.
	MaxBulk = 64 << 10
	// MaxInline bounds one inline command line (including the terminator).
	MaxInline = 16 << 10
	// maxReplyDepth bounds reply-array nesting (the protocol uses 2).
	maxReplyDepth = 8
)

// Protocol errors. The server surfaces these as -ERR and closes the
// connection; anything else from the Reader is an I/O error.
var (
	ErrTooManyArgs  = errors.New("resp: command array exceeds MaxArgs")
	ErrBulkTooLarge = errors.New("resp: bulk length exceeds MaxBulk")
	ErrLineTooLong  = errors.New("resp: line exceeds MaxInline")
	ErrBadFrame     = errors.New("resp: malformed frame")
	ErrEmptyCommand = errors.New("resp: empty command array")
	ErrDepth        = errors.New("resp: reply nesting exceeds limit")
)

// IsProtocol reports whether err is a framing violation (as opposed to an
// I/O failure): the peer sent bytes that can never parse, so the connection
// is unrecoverable but a final error reply is still worth sending.
func IsProtocol(err error) bool {
	return errors.Is(err, ErrTooManyArgs) || errors.Is(err, ErrBulkTooLarge) ||
		errors.Is(err, ErrLineTooLong) || errors.Is(err, ErrBadFrame) ||
		errors.Is(err, ErrEmptyCommand) || errors.Is(err, ErrDepth)
}

// Reader decodes commands and replies from a stream. Not safe for
// concurrent use.
type Reader struct {
	br *bufio.Reader

	// Command scratch, reused across ReadCommand calls: token bytes land in
	// buf, offs records [start,end) pairs, args is rebuilt over buf last
	// (appending to buf can move it, so slices are cut only once it is
	// final). All three reach steady-state capacity and stop growing.
	buf  []byte
	offs []int
	args [][]byte
}

// NewReader wraps r with the default buffer size.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 4096)}
}

// Buffered reports bytes already read from the stream but not yet consumed —
// nonzero means a pipelined command is waiting and the reply batch should
// not flush yet.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// ReadCommand reads one command and returns its tokens (verb first). The
// returned slices alias the Reader's scratch and are valid only until the
// next ReadCommand. Blank inline lines are skipped. On a malformed frame it
// returns a protocol error (see IsProtocol); a stream that ends mid-frame
// returns io.ErrUnexpectedEOF.
//
//tokentm:allocfree
func (r *Reader) ReadCommand() ([][]byte, error) {
	for {
		b, err := r.br.ReadByte()
		if err != nil {
			return nil, err
		}
		switch b {
		case '\r', '\n', ' ', '\t':
			continue // stray separators between frames
		case '*':
			return r.readArrayCommand()
		default:
			args, err := r.readInlineCommand(b)
			if err != nil {
				return nil, err
			}
			if len(args) == 0 {
				continue
			}
			return args, nil
		}
	}
}

// readArrayCommand parses `<N>\r\n` then N `$len\r\n<bytes>\r\n` bulks (the
// leading '*' is already consumed).
func (r *Reader) readArrayCommand() ([][]byte, error) {
	n, err := r.readLength()
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, ErrEmptyCommand
	}
	if n > MaxArgs {
		return nil, ErrTooManyArgs
	}
	r.buf = r.buf[:0]
	r.offs = r.offs[:0]
	for i := int64(0); i < n; i++ {
		b, err := r.br.ReadByte()
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		if b != '$' {
			return nil, ErrBadFrame
		}
		l, err := r.readLength()
		if err != nil {
			return nil, err
		}
		if l < 0 {
			return nil, ErrBadFrame // null bulks have no place in a command
		}
		if l > MaxBulk {
			return nil, ErrBulkTooLarge
		}
		start := len(r.buf)
		for j := int64(0); j < l; j++ {
			b, err := r.br.ReadByte()
			if err != nil {
				return nil, unexpectedEOF(err)
			}
			r.buf = append(r.buf, b)
		}
		if err := r.expectCRLF(); err != nil {
			return nil, err
		}
		r.offs = append(r.offs, start, len(r.buf))
	}
	r.args = r.args[:0]
	for i := 0; i < len(r.offs); i += 2 {
		r.args = append(r.args, r.buf[r.offs[i]:r.offs[i+1]])
	}
	return r.args, nil
}

// readInlineCommand parses the rest of a space-separated line; first is the
// line's already-consumed first byte.
func (r *Reader) readInlineCommand(first byte) ([][]byte, error) {
	r.buf = r.buf[:0]
	r.buf = append(r.buf, first)
	for {
		b, err := r.br.ReadByte()
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		if b == '\n' {
			break
		}
		if len(r.buf) >= MaxInline {
			return nil, ErrLineTooLong
		}
		r.buf = append(r.buf, b)
	}
	if n := len(r.buf); n > 0 && r.buf[n-1] == '\r' {
		r.buf = r.buf[:n-1]
	}
	// Tokenize in place: a bare '\r' inside the line is a framing error (a
	// frame boundary can never appear mid-token).
	r.offs = r.offs[:0]
	start := -1
	for i, b := range r.buf {
		switch b {
		case ' ', '\t':
			if start >= 0 {
				r.offs = append(r.offs, start, i)
				start = -1
			}
		case '\r':
			return nil, ErrBadFrame
		default:
			if start < 0 {
				start = i
			}
		}
	}
	if start >= 0 {
		r.offs = append(r.offs, start, len(r.buf))
	}
	if len(r.offs)/2 > MaxArgs {
		return nil, ErrTooManyArgs
	}
	r.args = r.args[:0]
	for i := 0; i < len(r.offs); i += 2 {
		r.args = append(r.args, r.buf[r.offs[i]:r.offs[i+1]])
	}
	return r.args, nil
}

// readLength parses a signed decimal terminated by CRLF, for array and bulk
// headers. At most 20 digits are accepted, so the value fits int64 with the
// overflow check below.
func (r *Reader) readLength() (int64, error) {
	var (
		n     int64
		neg   bool
		first = true
		seen  = false
	)
	for {
		b, err := r.br.ReadByte()
		if err != nil {
			return 0, unexpectedEOF(err)
		}
		switch {
		case b == '\r':
			if !seen {
				return 0, ErrBadFrame
			}
			b2, err := r.br.ReadByte()
			if err != nil {
				return 0, unexpectedEOF(err)
			}
			if b2 != '\n' {
				return 0, ErrBadFrame
			}
			if neg {
				n = -n
			}
			return n, nil
		case b == '-' && first:
			neg = true
		case b >= '0' && b <= '9':
			if n > (1<<62)/10 {
				return 0, ErrBadFrame // would overflow; no real frame is this long
			}
			n = n*10 + int64(b-'0')
			seen = true
		default:
			return 0, ErrBadFrame
		}
		first = false
	}
}

// expectCRLF consumes the terminator after a bulk body.
func (r *Reader) expectCRLF() error {
	b1, err := r.br.ReadByte()
	if err != nil {
		return unexpectedEOF(err)
	}
	b2, err := r.br.ReadByte()
	if err != nil {
		return unexpectedEOF(err)
	}
	if b1 != '\r' || b2 != '\n' {
		return ErrBadFrame
	}
	return nil
}

// unexpectedEOF maps a clean EOF mid-frame to io.ErrUnexpectedEOF (the
// stream ended inside a frame) and passes every other error through.
func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Reply is one decoded RESP reply value (client side). Arrays allocate;
// the client path does not need the server's zero-allocation discipline.
type Reply struct {
	Type  byte   // '+', '-', ':', '$', '*'
	Str   string // simple/error/bulk contents
	Null  bool   // null bulk ($-1)
	Int   int64
	Elems []Reply
}

// ReadReply decodes one reply value.
func (r *Reader) ReadReply() (Reply, error) {
	return r.readReply(0)
}

func (r *Reader) readReply(depth int) (Reply, error) {
	if depth > maxReplyDepth {
		return Reply{}, ErrDepth
	}
	t, err := r.br.ReadByte()
	if err != nil {
		return Reply{}, err
	}
	switch t {
	case '+', '-':
		line, err := r.readLine()
		if err != nil {
			return Reply{}, err
		}
		return Reply{Type: t, Str: string(line)}, nil
	case ':':
		n, err := r.readLength()
		if err != nil {
			return Reply{}, err
		}
		return Reply{Type: t, Int: n}, nil
	case '$':
		l, err := r.readLength()
		if err != nil {
			return Reply{}, err
		}
		if l == -1 {
			return Reply{Type: t, Null: true}, nil
		}
		if l < 0 || l > MaxBulk {
			return Reply{}, ErrBulkTooLarge
		}
		body := make([]byte, l)
		if _, err := io.ReadFull(r.br, body); err != nil {
			return Reply{}, unexpectedEOF(err)
		}
		if err := r.expectCRLF(); err != nil {
			return Reply{}, err
		}
		return Reply{Type: t, Str: string(body)}, nil
	case '*':
		n, err := r.readLength()
		if err != nil {
			return Reply{}, err
		}
		if n < 0 || n > MaxArgs {
			return Reply{}, ErrTooManyArgs
		}
		rep := Reply{Type: t, Elems: make([]Reply, 0, n)}
		for i := int64(0); i < n; i++ {
			e, err := r.readReply(depth + 1)
			if err != nil {
				return Reply{}, err
			}
			rep.Elems = append(rep.Elems, e)
		}
		return rep, nil
	default:
		return Reply{}, ErrBadFrame
	}
}

// readLine reads up to CRLF (strict) with the inline bound.
func (r *Reader) readLine() ([]byte, error) {
	r.buf = r.buf[:0]
	for {
		b, err := r.br.ReadByte()
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		if b == '\n' {
			break
		}
		if len(r.buf) >= MaxInline {
			return nil, ErrLineTooLong
		}
		r.buf = append(r.buf, b)
	}
	if n := len(r.buf); n > 0 && r.buf[n-1] == '\r' {
		return r.buf[:n-1], nil
	}
	return nil, ErrBadFrame
}

// Writer encodes RESP frames onto a buffered stream. Not safe for concurrent
// use. Nothing reaches the wire until Flush.
type Writer struct {
	bw  *bufio.Writer
	num [24]byte // decimal scratch for integer rendering
}

// NewWriter wraps w with the default buffer size.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 4096)}
}

// Flush writes the buffered frames to the underlying stream.
func (w *Writer) Flush() error { return w.bw.Flush() }

// WriteSimple emits +s.
//
//tokentm:allocfree
func (w *Writer) WriteSimple(s string) error {
	w.bw.WriteByte('+')
	w.bw.WriteString(s)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteErrorString emits -s. s must not contain CR or LF.
//
//tokentm:allocfree
func (w *Writer) WriteErrorString(s string) error {
	w.bw.WriteByte('-')
	w.bw.WriteString(s)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteUint emits :v.
//
//tokentm:allocfree
func (w *Writer) WriteUint(v uint64) error {
	w.bw.WriteByte(':')
	w.bw.Write(strconv.AppendUint(w.num[:0], v, 10))
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteBulk emits $len\r\nb.
//
//tokentm:allocfree
func (w *Writer) WriteBulk(b []byte) error {
	w.bw.WriteByte('$')
	w.bw.Write(strconv.AppendInt(w.num[:0], int64(len(b)), 10))
	w.bw.WriteString("\r\n")
	w.bw.Write(b)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteBulkString is WriteBulk for string payloads (INFO text).
//
//tokentm:allocfree
func (w *Writer) WriteBulkString(s string) error {
	w.bw.WriteByte('$')
	w.bw.Write(strconv.AppendInt(w.num[:0], int64(len(s)), 10))
	w.bw.WriteString("\r\n")
	w.bw.WriteString(s)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteBulkUint emits the decimal rendering of v as a bulk string — the
// value format of the KV protocol.
//
//tokentm:allocfree
func (w *Writer) WriteBulkUint(v uint64) error {
	d := strconv.AppendUint(w.num[:0], v, 10)
	w.bw.WriteByte('$')
	// One digit of length is enough: 0 <= len(d) <= 20.
	if len(d) >= 10 {
		w.bw.WriteByte(byte('0' + len(d)/10))
	}
	w.bw.WriteByte(byte('0' + len(d)%10))
	w.bw.WriteString("\r\n")
	w.bw.Write(d)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteNull emits the null bulk $-1 (absent value).
//
//tokentm:allocfree
func (w *Writer) WriteNull() error {
	_, err := w.bw.WriteString("$-1\r\n")
	return err
}

// WriteArrayHeader emits *n; the caller writes the n elements after it.
//
//tokentm:allocfree
func (w *Writer) WriteArrayHeader(n int) error {
	w.bw.WriteByte('*')
	w.bw.Write(strconv.AppendInt(w.num[:0], int64(n), 10))
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteCommandArgs encodes one command in array form — the client-side
// encoder, and the canonical form the fuzz round-trip re-parses.
func (w *Writer) WriteCommandArgs(args [][]byte) error {
	if err := w.WriteArrayHeader(len(args)); err != nil {
		return err
	}
	for _, a := range args {
		if err := w.WriteBulk(a); err != nil {
			return err
		}
	}
	return nil
}

// WriteCommand encodes a command given as strings (tests, interactive use).
func (w *Writer) WriteCommand(args ...string) error {
	if err := w.WriteArrayHeader(len(args)); err != nil {
		return err
	}
	for _, a := range args {
		if err := w.WriteBulkString(a); err != nil {
			return err
		}
	}
	return nil
}

// ParseUint parses a decimal token (a key, value, or count argument).
// Rejects empty tokens, non-digits, leading-zero padding beyond "0", and
// overflow — a strict inverse of WriteBulkUint so values round-trip exactly.
//
//tokentm:allocfree
func ParseUint(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 20 {
		return 0, false
	}
	if b[0] == '0' && len(b) > 1 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (^uint64(0)-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}
