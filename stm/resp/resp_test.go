package resp

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

func parseAll(t *testing.T, in string) [][]string {
	t.Helper()
	r := NewReader(strings.NewReader(in))
	var out [][]string
	for {
		args, err := r.ReadCommand()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("ReadCommand(%q): %v", in, err)
		}
		cp := make([]string, len(args))
		for i, a := range args {
			cp[i] = string(a)
		}
		out = append(out, cp)
	}
}

func TestReadCommandForms(t *testing.T) {
	cases := []struct {
		in   string
		want [][]string
	}{
		{"PING\r\n", [][]string{{"PING"}}},
		{"GET 17\r\n", [][]string{{"GET", "17"}}},
		{"SET  1   2\r\n", [][]string{{"SET", "1", "2"}}},            // runs of spaces collapse
		{"GET 1\nGET 2\r\n", [][]string{{"GET", "1"}, {"GET", "2"}}}, // bare LF accepted inline
		{"\r\n\r\nPING\r\n", [][]string{{"PING"}}},                   // blank lines skipped
		{"*1\r\n$4\r\nPING\r\n", [][]string{{"PING"}}},               // array form
		{"*3\r\n$3\r\nSET\r\n$1\r\n7\r\n$2\r\n42\r\n", [][]string{{"SET", "7", "42"}}},
		{"*2\r\n$3\r\nGET\r\n$0\r\n\r\n", [][]string{{"GET", ""}}},                          // empty bulk is legal framing
		{"GET 1\r\n*2\r\n$3\r\nGET\r\n$1\r\n2\r\n", [][]string{{"GET", "1"}, {"GET", "2"}}}, // mixed pipeline
	}
	for _, c := range cases {
		if got := parseAll(t, c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parse %q = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestReadCommandErrors(t *testing.T) {
	cases := []struct {
		in   string
		want error
	}{
		{"*0\r\n", ErrEmptyCommand},
		{"*-1\r\n", ErrEmptyCommand},
		{"*99999\r\n", ErrTooManyArgs},
		{"*1\r\n$99999999\r\n", ErrBulkTooLarge},
		{"*1\r\n$-1\r\n", ErrBadFrame},          // null bulk in a command
		{"*1\r\n#3\r\nfoo\r\n", ErrBadFrame},    // not a bulk header
		{"*1\r\n$3\r\nfoobar\r\n", ErrBadFrame}, // body longer than declared
		{"*x\r\n", ErrBadFrame},
		{"*1\r\n$x\r\n", ErrBadFrame},
		{"*\r\n", ErrBadFrame},        // no digits
		{"GET 1\rX\r\n", ErrBadFrame}, // bare CR inside an inline line
		{"*1\r\n$3\r\nGET", io.ErrUnexpectedEOF},
		{"*2\r\n$3\r\nGET\r\n", io.ErrUnexpectedEOF},
		{"*1\r\n", io.ErrUnexpectedEOF},
		{"GET 1", io.ErrUnexpectedEOF},                // inline without terminator
		{"*99999999999999999999999\r\n", ErrBadFrame}, // length overflow
	}
	for _, c := range cases {
		r := NewReader(strings.NewReader(c.in))
		_, err := r.ReadCommand()
		if !errors.Is(err, c.want) {
			t.Errorf("ReadCommand(%q) err = %v, want %v", c.in, err, c.want)
		}
		if c.want != io.ErrUnexpectedEOF && !IsProtocol(err) {
			t.Errorf("ReadCommand(%q): %v not classified as protocol error", c.in, err)
		}
	}
}

func TestInlineTooLong(t *testing.T) {
	r := NewReader(strings.NewReader("GET " + strings.Repeat("9", MaxInline) + "\r\n"))
	if _, err := r.ReadCommand(); !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("err = %v, want ErrLineTooLong", err)
	}
}

func TestWriteReplyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteSimple("OK")
	w.WriteErrorString("RETRY transaction aborted")
	w.WriteUint(12345)
	w.WriteBulk([]byte("hello"))
	w.WriteBulkUint(18446744073709551615)
	w.WriteBulkUint(0)
	w.WriteNull()
	w.WriteArrayHeader(2)
	w.WriteUint(1)
	w.WriteArrayHeader(1)
	w.WriteBulkString("nested")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	want := []Reply{
		{Type: '+', Str: "OK"},
		{Type: '-', Str: "RETRY transaction aborted"},
		{Type: ':', Int: 12345},
		{Type: '$', Str: "hello"},
		{Type: '$', Str: "18446744073709551615"},
		{Type: '$', Str: "0"},
		{Type: '$', Null: true},
		{Type: '*', Elems: []Reply{
			{Type: ':', Int: 1},
			{Type: '*', Elems: []Reply{{Type: '$', Str: "nested"}}},
		}},
	}
	for i, exp := range want {
		got, err := r.ReadReply()
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, exp) {
			t.Errorf("reply %d = %+v, want %+v", i, got, exp)
		}
	}
	if _, err := r.ReadReply(); err != io.EOF {
		t.Fatalf("trailing ReadReply err = %v, want EOF", err)
	}
}

func TestReplyDepthBound(t *testing.T) {
	in := strings.Repeat("*1\r\n", maxReplyDepth+2) + ":1\r\n"
	r := NewReader(strings.NewReader(in))
	if _, err := r.ReadReply(); !errors.Is(err, ErrDepth) {
		t.Fatalf("err = %v, want ErrDepth", err)
	}
}

func TestParseUint(t *testing.T) {
	good := map[string]uint64{
		"0": 0, "7": 7, "42": 42, "18446744073709551615": ^uint64(0),
	}
	for s, want := range good {
		if got, ok := ParseUint([]byte(s)); !ok || got != want {
			t.Errorf("ParseUint(%q) = (%d,%v), want (%d,true)", s, got, ok, want)
		}
	}
	for _, s := range []string{"", "-1", "1x", "007", "18446744073709551616", "999999999999999999999"} {
		if _, ok := ParseUint([]byte(s)); ok {
			t.Errorf("ParseUint(%q) accepted", s)
		}
	}
}

func TestWriteBulkUintMatchesWriteBulk(t *testing.T) {
	// WriteBulkUint's hand-rolled length header must agree with the general
	// encoder for every digit-count boundary.
	vals := []uint64{0, 9, 10, 99, 100, 1<<32 - 1, 1 << 32, ^uint64(0)}
	for _, v := range vals {
		var a, b bytes.Buffer
		wa, wb := NewWriter(&a), NewWriter(&b)
		wa.WriteBulkUint(v)
		var num [24]byte
		wb.WriteBulk(appendUintForTest(num[:0], v))
		wa.Flush()
		wb.Flush()
		if a.String() != b.String() {
			t.Errorf("WriteBulkUint(%d) = %q, WriteBulk = %q", v, a.String(), b.String())
		}
	}
}

func appendUintForTest(dst []byte, v uint64) []byte {
	if v == 0 {
		return append(dst, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, tmp[i:]...)
}

// FuzzRESPRoundTrip: any input either fails to parse (with an error, never a
// panic, never an arg past the bounds) or parses to a command that survives
// encode→parse→encode byte-identically. Seeded with the frames the protocol
// actually exchanges plus the truncation/oversize/embedded-CRLF corpus the
// satellite calls out.
func FuzzRESPRoundTrip(f *testing.F) {
	seeds := []string{
		"PING\r\n",
		"GET 17\r\n",
		"SET 1 2\r\n",
		"MGET 1 2 3\r\n",
		"MULTI\r\nSET 1 2\r\nEXEC\r\n",
		"*1\r\n$4\r\nPING\r\n",
		"*3\r\n$3\r\nSET\r\n$1\r\n1\r\n$1\r\n2\r\n",
		"*2\r\n$3\r\nGET\r\n$20\r\n18446744073709551615\r\n",
		// Truncated frames.
		"*2\r\n$3\r\nGET",
		"*1\r\n$3\r\nGE",
		"*3\r\n$3\r\nSET\r\n",
		"GET 1",
		"*1\r\n",
		"$",
		"*",
		// Oversized declarations.
		"*1\r\n$9999999999\r\nx\r\n",
		"*2147483647\r\n",
		"*1\r\n$-9223372036854775808\r\n",
		"*99999999999999999999999999\r\n",
		// Embedded CR/LF and other separator abuse.
		"GET 1\rX\r\n",
		"GET\r1\r\n",
		"*1\r\n$4\r\nGE\r\n\r\n",
		"*1\r\n$2\r\n\r\n\r\n",
		"\r\n\n\n  \r\nPING\r\n",
		"*1\n$4\nPING\n",
		"*1\r\n$0\r\n\r\n",
		"*0\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		r := NewReader(bytes.NewReader(in))
		args, err := r.ReadCommand()
		if err != nil {
			return // rejected is fine; panics/hangs are the bug class
		}
		if len(args) == 0 || len(args) > MaxArgs {
			t.Fatalf("accepted command with %d args", len(args))
		}
		for _, a := range args {
			if len(a) > MaxBulk {
				t.Fatalf("accepted %d-byte arg past MaxBulk", len(a))
			}
		}

		// Canonical encode, re-parse, re-encode: fixed point after one hop.
		var enc1 bytes.Buffer
		w := NewWriter(&enc1)
		if err := w.WriteCommandArgs(args); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		// args aliases the reader's scratch; copy before reusing readers.
		orig := make([][]byte, len(args))
		for i, a := range args {
			orig[i] = append([]byte(nil), a...)
		}

		r2 := NewReader(bytes.NewReader(enc1.Bytes()))
		args2, err := r2.ReadCommand()
		if err != nil {
			t.Fatalf("re-parse of canonical encoding %q: %v", enc1.Bytes(), err)
		}
		if len(args2) != len(orig) {
			t.Fatalf("round trip changed arg count: %d -> %d", len(orig), len(args2))
		}
		for i := range orig {
			if !bytes.Equal(orig[i], args2[i]) {
				t.Fatalf("round trip changed arg %d: %q -> %q", i, orig[i], args2[i])
			}
		}
		var enc2 bytes.Buffer
		w2 := NewWriter(&enc2)
		w2.WriteCommandArgs(args2)
		w2.Flush()
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("canonical encoding not a fixed point: %q vs %q", enc1.Bytes(), enc2.Bytes())
		}
	})
}
