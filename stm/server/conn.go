package server

import (
	"errors"
	"io"
	"net"
	"strconv"
	"time"

	"tokentm/stm"
	"tokentm/stm/kvstore"
	"tokentm/stm/resp"
)

// conn serves one connection: a resp codec pair over the socket, one store
// worker handle, and reusable scratch so the steady-state point-op path
// allocates nothing. Only its own goroutine touches any field except nc
// (which Shutdown pokes with a read deadline — net.Conn methods are
// goroutine-safe by contract).
type conn struct {
	srv *Server
	nc  net.Conn // nil in codec-only tests; deadline/drain poking only
	r   *resp.Reader
	w   *resp.Writer
	h   *kvstore.ShardedHandle

	// Scratch, reused across commands.
	keys    []uint64
	vals    []uint64
	oks     []bool
	info    []byte
	queue   []qcmd
	inMulti bool
	qerr    bool // a queued command failed to parse; EXEC must refuse

	// Bound transaction closures (allocated once, parameters via fields).
	mgetFn func(kvstore.Tx) error
	msetFn func(kvstore.Tx) error
	execFn func(kvstore.Tx) error
}

// qcmd is one queued MULTI command. rvals/rok capture GET/MGET results
// during EXEC's transaction for the reply phase.
type qcmd struct {
	op    byte // 'g' GET, 's' SET, 'm' MGET, 'M' MSET
	keys  []uint64
	vals  []uint64
	rvals []uint64
	rok   []bool
}

func newConn(s *Server, rw io.ReadWriter, nc net.Conn, slot int) *conn {
	c := &conn{
		srv: s,
		nc:  nc,
		r:   resp.NewReader(rw),
		w:   resp.NewWriter(rw),
		h:   s.handles[slot],
	}
	c.mgetFn = func(tx kvstore.Tx) error {
		c.vals = c.vals[:0]
		c.oks = c.oks[:0]
		for _, k := range c.keys {
			v, ok := tx.Get(k)
			c.vals = append(c.vals, v)
			c.oks = append(c.oks, ok)
		}
		return nil
	}
	c.msetFn = func(tx kvstore.Tx) error {
		for i, k := range c.keys {
			tx.Put(k, c.vals[i])
		}
		return nil
	}
	c.execFn = func(tx kvstore.Tx) error {
		for i := range c.queue {
			q := &c.queue[i]
			switch q.op {
			case 'g', 'm':
				q.rvals = q.rvals[:0]
				q.rok = q.rok[:0]
				for _, k := range q.keys {
					v, ok := tx.Get(k)
					q.rvals = append(q.rvals, v)
					q.rok = append(q.rok, ok)
				}
			default: // 's', 'M'
				for j, k := range q.keys {
					tx.Put(k, q.vals[j])
				}
			}
		}
		return nil
	}
	return c
}

// errShutdown makes the serving loop close this connection after a SHUTDOWN
// command's +OK has been flushed.
var errShutdown = errors.New("server: shutdown requested")

// serve runs the connection loop: read a command, dispatch, flush replies
// when the input buffer drains (pipelined batches get batched replies).
// Every exit path flushes what it can; the caller closes the socket.
func (c *conn) serve() {
	for {
		if t := c.srv.cfg.ReadTimeout; t > 0 && c.nc != nil && !c.srv.draining.Load() {
			c.nc.SetReadDeadline(time.Now().Add(t))
		}
		args, err := c.r.ReadCommand()
		if err != nil {
			if resp.IsProtocol(err) {
				// Protocol damage: report and hang up (framing is gone).
				c.w.WriteErrorString("ERR protocol: " + err.Error())
			}
			// Read errors (EOF, deadline pokes from a drain) end the
			// connection; flush any replies the client has not seen.
			c.w.Flush()
			return
		}
		if err := c.dispatch(args); err != nil {
			c.w.Flush()
			return
		}
		if c.r.Buffered() == 0 {
			if err := c.w.Flush(); err != nil {
				return
			}
			if c.srv.draining.Load() {
				return // graceful goodbye between command batches
			}
		}
	}
}

// dispatch serves one command. A non-nil return closes the connection;
// client-level mistakes (bad arity, bad integer) answer -ERR and keep it.
func (c *conn) dispatch(args [][]byte) error {
	cmd := args[0]
	if c.inMulti && !cmdIs(cmd, "EXEC") && !cmdIs(cmd, "DISCARD") && !cmdIs(cmd, "MULTI") {
		return c.enqueue(args)
	}
	switch {
	case cmdIs(cmd, "GET"):
		if len(args) != 2 {
			return c.arity("GET")
		}
		k, ok := parseKey(args[1])
		if !ok {
			return c.badKey()
		}
		v, found, shard, serial := c.h.GetSharded(k)
		c.replyGet(v, found, shard, serial)
	case cmdIs(cmd, "SET"):
		if len(args) != 3 {
			return c.arity("SET")
		}
		k, ok := parseKey(args[1])
		if !ok {
			return c.badKey()
		}
		v, ok := resp.ParseUint(args[2])
		if !ok {
			return c.badInt()
		}
		shard, serial := c.h.PutSharded(k, v)
		c.replySet(shard, serial)
	case cmdIs(cmd, "MGET"):
		if len(args) < 2 {
			return c.arity("MGET")
		}
		c.keys = c.keys[:0]
		for _, a := range args[1:] {
			k, ok := parseKey(a)
			if !ok {
				return c.badKey()
			}
			c.keys = append(c.keys, k)
		}
		serials, err := c.h.TxnSerials(true, c.mgetFn)
		if err != nil {
			return c.txnErr(err)
		}
		c.w.WriteArrayHeader(2)
		c.w.WriteArrayHeader(len(c.vals))
		for i, v := range c.vals {
			if c.oks[i] {
				c.w.WriteBulkUint(v)
			} else {
				c.w.WriteNull()
			}
		}
		c.writeSerials(serials)
	case cmdIs(cmd, "MSET"):
		if len(args) < 3 || len(args)%2 != 1 {
			return c.arity("MSET")
		}
		c.keys = c.keys[:0]
		c.vals = c.vals[:0]
		for i := 1; i < len(args); i += 2 {
			k, ok := parseKey(args[i])
			if !ok {
				return c.badKey()
			}
			v, ok := resp.ParseUint(args[i+1])
			if !ok {
				return c.badInt()
			}
			c.keys = append(c.keys, k)
			c.vals = append(c.vals, v)
		}
		serials, err := c.h.TxnSerials(false, c.msetFn)
		if err != nil {
			return c.txnErr(err)
		}
		c.w.WriteArrayHeader(2)
		c.w.WriteUint(uint64(len(c.keys)))
		c.writeSerials(serials)
	case cmdIs(cmd, "MULTI"):
		if c.inMulti {
			c.w.WriteErrorString("ERR MULTI calls can not be nested")
			return nil
		}
		c.inMulti = true
		c.qerr = false
		c.queue = c.queue[:0]
		c.w.WriteSimple("OK")
	case cmdIs(cmd, "EXEC"):
		return c.exec()
	case cmdIs(cmd, "DISCARD"):
		if !c.inMulti {
			c.w.WriteErrorString("ERR DISCARD without MULTI")
			return nil
		}
		c.resetMulti()
		c.w.WriteSimple("OK")
	case cmdIs(cmd, "PING"):
		c.w.WriteSimple("PONG")
	case cmdIs(cmd, "INFO"):
		c.w.WriteBulk(c.buildInfo())
	case cmdIs(cmd, "CHECKSUM"):
		// Quiescent stores only: ForEach under concurrent writers is a
		// data race by the Store contract. The benchmark gate calls this
		// after its drivers stop. Bulk-encoded: checksums use the full
		// uint64 range, which the `:` integer reply (int64) cannot carry.
		c.w.WriteBulkUint(kvstore.Checksum(c.srv.store))
	case cmdIs(cmd, "SHUTDOWN"):
		c.w.WriteSimple("OK")
		c.w.Flush()
		go c.srv.Shutdown()
		return errShutdown
	default:
		c.w.WriteErrorString("ERR unknown command")
	}
	return nil
}

// enqueue parses and queues one command inside MULTI. Parse failures poison
// the queue: the client still gets per-command -ERR, and EXEC refuses.
func (c *conn) enqueue(args [][]byte) error {
	var q qcmd
	cmd := args[0]
	bad := func(reply func() error) error {
		c.qerr = true
		return reply()
	}
	switch {
	case cmdIs(cmd, "GET"), cmdIs(cmd, "MGET"):
		if (cmdIs(cmd, "GET") && len(args) != 2) || len(args) < 2 {
			return bad(func() error { return c.arity("queued command") })
		}
		q.op = 'm'
		if cmdIs(cmd, "GET") {
			q.op = 'g'
		}
		for _, a := range args[1:] {
			k, ok := parseKey(a)
			if !ok {
				return bad(c.badKey)
			}
			q.keys = append(q.keys, k)
		}
	case cmdIs(cmd, "SET"), cmdIs(cmd, "MSET"):
		if (cmdIs(cmd, "SET") && len(args) != 3) || len(args) < 3 || len(args)%2 != 1 {
			return bad(func() error { return c.arity("queued command") })
		}
		q.op = 'M'
		if cmdIs(cmd, "SET") {
			q.op = 's'
		}
		for i := 1; i < len(args); i += 2 {
			k, ok := parseKey(args[i])
			if !ok {
				return bad(c.badKey)
			}
			v, ok := resp.ParseUint(args[i+1])
			if !ok {
				return bad(c.badInt)
			}
			q.keys = append(q.keys, k)
			q.vals = append(q.vals, v)
		}
	default:
		c.qerr = true
		c.w.WriteErrorString("ERR command not allowed in MULTI")
		return nil
	}
	c.queue = append(c.queue, q)
	c.w.WriteSimple("QUEUED")
	return nil
}

// exec runs the queued commands as one atomic cross-shard transaction.
func (c *conn) exec() error {
	if !c.inMulti {
		c.w.WriteErrorString("ERR EXEC without MULTI")
		return nil
	}
	if c.qerr {
		c.resetMulti()
		c.w.WriteErrorString("EXECABORT transaction discarded because of previous errors")
		return nil
	}
	serials, err := c.h.TxnSerials(false, c.execFn)
	queue := c.queue
	c.resetMulti()
	if err != nil {
		return c.txnErr(err)
	}
	c.w.WriteArrayHeader(2)
	c.w.WriteArrayHeader(len(queue))
	for i := range queue {
		q := &queue[i]
		switch q.op {
		case 'g':
			if q.rok[0] {
				c.w.WriteBulkUint(q.rvals[0])
			} else {
				c.w.WriteNull()
			}
		case 'm':
			c.w.WriteArrayHeader(len(q.keys))
			for j := range q.keys {
				if q.rok[j] {
					c.w.WriteBulkUint(q.rvals[j])
				} else {
					c.w.WriteNull()
				}
			}
		default:
			c.w.WriteSimple("OK")
		}
	}
	c.writeSerials(serials)
	return nil
}

func (c *conn) resetMulti() {
	c.inMulti = false
	c.qerr = false
	c.queue = c.queue[:0]
}

// txnErr maps a transaction error onto the wire: the contention bound's
// rollback becomes -RETRY (the transaction happened not at all; the client
// may retry), anything else is a server bug worth hanging up over.
func (c *conn) txnErr(err error) error {
	if errors.Is(err, stm.ErrAborted) {
		c.w.WriteErrorString("RETRY transaction aborted by contention bound; rolled back")
		return nil
	}
	c.w.WriteErrorString("ERR internal: " + err.Error())
	return err
}

func (c *conn) arity(cmd string) error {
	c.w.WriteErrorString("ERR wrong number of arguments for " + cmd)
	return nil
}

func (c *conn) badKey() error {
	c.w.WriteErrorString("ERR key must be a decimal integer >= 1")
	return nil
}

func (c *conn) badInt() error {
	c.w.WriteErrorString("ERR value is not a decimal uint64")
	return nil
}

// parseKey parses a key: a uint64 >= 1 (zero marks empty slots in the
// store, so it is not addressable).
//
//tokentm:allocfree
func parseKey(b []byte) (uint64, bool) {
	k, ok := resp.ParseUint(b)
	if !ok || k == 0 {
		return 0, false
	}
	return k, true
}

// cmdIs reports whether command word b equals name, ASCII-case-insensitively.
// name must be upper-case.
//
//tokentm:allocfree
func cmdIs(b []byte, name string) bool {
	if len(b) != len(name) {
		return false
	}
	for i := 0; i < len(b); i++ {
		ch := b[i]
		if ch >= 'a' && ch <= 'z' {
			ch -= 'a' - 'A'
		}
		if ch != name[i] {
			return false
		}
	}
	return true
}

// replyGet writes GET's reply: value (or null), owning shard, that shard's
// commit serial at the read's serialization point.
//
//tokentm:allocfree
func (c *conn) replyGet(v uint64, found bool, shard int, serial uint64) {
	c.w.WriteArrayHeader(3)
	if found {
		c.w.WriteBulkUint(v)
	} else {
		c.w.WriteNull()
	}
	c.w.WriteUint(uint64(shard))
	c.w.WriteUint(serial)
}

// replySet writes SET's reply: owning shard and the commit serial.
//
//tokentm:allocfree
func (c *conn) replySet(shard int, serial uint64) {
	c.w.WriteArrayHeader(2)
	c.w.WriteUint(uint64(shard))
	c.w.WriteUint(serial)
}

// writeSerials writes the per-shard serial array every transactional reply
// carries: NumShards integers, 0 for untouched shards.
//
//tokentm:allocfree
func (c *conn) writeSerials(serials []uint64) {
	c.w.WriteArrayHeader(len(serials))
	for _, s := range serials {
		c.w.WriteUint(s)
	}
}

// buildInfo renders the INFO payload into the connection's scratch buffer:
// purely store-derived counters in a fixed order, so on a quiescent store
// two INFO calls return identical bytes (the determinism the benchmark
// checker leans on). Fields mirror stm.Stats plus per-shard serial clocks.
func (c *conn) buildInfo() []byte {
	b := c.info[:0]
	line := func(name string, v uint64) {
		b = append(b, name...)
		b = append(b, ':')
		b = strconv.AppendUint(b, v, 10)
		b = append(b, '\n')
	}
	st := c.srv.store.Stats()
	line("shards", uint64(c.srv.store.NumShards()))
	line("commits", st.Commits)
	line("aborts", st.Aborts)
	var sum stm.Stats
	for i := 0; i < c.srv.store.NumShards(); i++ {
		s := c.srv.store.ShardSTMStats(i)
		sum.Commits += s.Commits
		sum.Aborts += s.Aborts
		sum.Upgrades += s.Upgrades
		sum.FastReleases += s.FastReleases
		sum.SlowReleases += s.SlowReleases
		sum.ConflictWriter += s.ConflictWriter
		sum.ConflictReader += s.ConflictReader
		sum.ConflictAnon += s.ConflictAnon
		sum.ConflictAborts += s.ConflictAborts
		sum.DoomedAborts += s.DoomedAborts
		sum.Dooms += s.Dooms
		sum.SnapshotCommits += s.SnapshotCommits
		sum.SnapshotRetries += s.SnapshotRetries
	}
	line("stm_commits", sum.Commits)
	line("stm_aborts", sum.Aborts)
	line("stm_upgrades", sum.Upgrades)
	line("stm_fast_releases", sum.FastReleases)
	line("stm_slow_releases", sum.SlowReleases)
	line("stm_conflict_writer", sum.ConflictWriter)
	line("stm_conflict_reader", sum.ConflictReader)
	line("stm_conflict_anon", sum.ConflictAnon)
	line("stm_conflict_aborts", sum.ConflictAborts)
	line("stm_doomed_aborts", sum.DoomedAborts)
	line("stm_dooms", sum.Dooms)
	line("stm_snapshot_commits", sum.SnapshotCommits)
	line("stm_snapshot_retries", sum.SnapshotRetries)
	for i := 0; i < c.srv.store.NumShards(); i++ {
		b = append(b, "shard"...)
		b = strconv.AppendUint(b, uint64(i), 10)
		b = append(b, "_serial:"...)
		b = strconv.AppendUint(b, c.srv.store.ShardSerial(i), 10)
		b = append(b, '\n')
	}
	c.info = b
	return b
}
