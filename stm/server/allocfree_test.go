package server

// Satellite: steady-state GET/SET service allocates zero per operation after
// warm-up. TestAllocFreeAnnotations pins the annotated helper set against
// lint.AllocFreeFuncs (as in stm and stm/resp); TestServiceAllocFree drives
// the real decode→dispatch→store→encode path end to end (minus the socket)
// and measures zero allocations per served command.

import (
	"io"
	"slices"
	"sort"
	"testing"

	"tokentm/internal/lint"
)

// loopReader hands out the same byte stream forever.
type loopReader struct {
	frame []byte
	pos   int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.pos == len(l.frame) {
		l.pos = 0
	}
	n := copy(p, l.frame[l.pos:])
	l.pos += n
	return n, nil
}

type readDiscard struct {
	io.Reader
	io.Writer
}

// testConn builds a codec-only connection (no socket) over an endless
// command stream, bound to worker slot 0 of a fresh store.
func testConn(t *testing.T, frame string) *conn {
	t.Helper()
	s, err := New(Config{Shards: 4, Capacity: 1 << 10, MaxConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	return newConn(s, readDiscard{&loopReader{frame: []byte(frame)}, io.Discard}, nil, 0)
}

func TestAllocFreeAnnotations(t *testing.T) {
	c := testConn(t, "PING\r\n")
	serials := []uint64{1, 0, 2, 0}

	entries := []struct {
		name string
		fn   func()
	}{
		{"parseKey", func() {
			if _, ok := parseKey([]byte("18446744073709551615")); !ok {
				t.Fatal("parseKey rejected max key")
			}
		}},
		{"cmdIs", func() {
			if !cmdIs([]byte("get"), "GET") || cmdIs([]byte("GETX"), "GET") {
				t.Fatal("cmdIs misbehaves")
			}
		}},
		{"conn.replyGet", func() { c.replyGet(42, true, 3, 99) }},
		{"conn.replySet", func() { c.replySet(3, 99) }},
		{"conn.writeSerials", func() { c.writeSerials(serials) }},
	}

	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.name)
	}
	sort.Strings(names)
	want, err := lint.AllocFreeFuncs(".")
	if err != nil {
		t.Fatalf("scanning annotations: %v", err)
	}
	if !slices.Equal(names, want) {
		t.Fatalf("annotation/table drift:\n annotated: %v\n table:     %v", want, names)
	}

	for _, e := range entries {
		e := e
		t.Run(e.name, func(t *testing.T) {
			for i := 0; i < 3; i++ {
				e.fn()
			}
			if err := c.w.Flush(); err != nil {
				t.Fatal(err)
			}
			if n := testing.AllocsPerRun(200, e.fn); n != 0 {
				t.Errorf("%s allocates %.0f times per run; want 0", e.name, n)
			}
			if err := c.w.Flush(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestServiceAllocFree serves an endless pipelined GET/SET stream through
// the full command loop body — frame decode, dispatch, store fast path,
// reply encode — and demands zero allocations per served command once the
// scratch buffers and store slots have warmed.
func TestServiceAllocFree(t *testing.T) {
	c := testConn(t, "SET 123 456\r\nGET 123\r\nSET 7001 1\r\nGET 99\r\n")
	step := func() {
		args, err := c.r.ReadCommand()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.dispatch(args); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ { // warm store slots, scratch, stats
		step()
	}
	if n := testing.AllocsPerRun(400, step); n != 0 {
		t.Errorf("GET/SET service allocates %.2f times per command; want 0", n)
	}
}
