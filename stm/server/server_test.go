package server

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tokentm/stm"
	"tokentm/stm/kvstore"
	"tokentm/stm/resp"
)

// startServer builds a server, serves it on a loopback listener, and
// returns it with its address. Cleanup shuts it down (idempotent, so tests
// that drain explicitly are fine).
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s, ln.Addr().String()
}

// client is a test-side RESP client.
type client struct {
	t  *testing.T
	nc net.Conn
	r  *resp.Reader
	w  *resp.Writer
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &client{t: t, nc: nc, r: resp.NewReader(nc), w: resp.NewWriter(nc)}
}

func (c *client) send(args ...string) {
	c.t.Helper()
	if err := c.w.WriteCommand(args...); err != nil {
		c.t.Fatal(err)
	}
}

func (c *client) flush() {
	c.t.Helper()
	if err := c.w.Flush(); err != nil {
		c.t.Fatal(err)
	}
}

func (c *client) recv() resp.Reply {
	c.t.Helper()
	rep, err := c.r.ReadReply()
	if err != nil {
		c.t.Fatalf("ReadReply: %v", err)
	}
	return rep
}

// cmd sends one command and returns its reply.
func (c *client) cmd(args ...string) resp.Reply {
	c.t.Helper()
	c.send(args...)
	c.flush()
	return c.recv()
}

// getReply unpacks GET's *3 [value|null, shard, serial] reply.
func getReply(t *testing.T, rep resp.Reply) (val uint64, ok bool, shard int, serial uint64) {
	t.Helper()
	if rep.Type != '*' || len(rep.Elems) != 3 {
		t.Fatalf("GET reply = %+v", rep)
	}
	if !rep.Elems[0].Null {
		v, err := strconv.ParseUint(rep.Elems[0].Str, 10, 64)
		if err != nil {
			t.Fatalf("GET value %q: %v", rep.Elems[0].Str, err)
		}
		val, ok = v, true
	}
	return val, ok, int(rep.Elems[1].Int), uint64(rep.Elems[2].Int)
}

// serialsOf unpacks a per-shard serial array.
func serialsOf(t *testing.T, rep resp.Reply) []uint64 {
	t.Helper()
	if rep.Type != '*' {
		t.Fatalf("serials reply = %+v", rep)
	}
	out := make([]uint64, len(rep.Elems))
	for i, e := range rep.Elems {
		if e.Type != ':' {
			t.Fatalf("serials[%d] = %+v", i, e)
		}
		out[i] = uint64(e.Int)
	}
	return out
}

func TestProtocolBasics(t *testing.T) {
	srv, addr := startServer(t, Config{Shards: 4, MaxConns: 4})
	c := dial(t, addr)

	if rep := c.cmd("PING"); rep.Type != '+' || rep.Str != "PONG" {
		t.Fatalf("PING = %+v", rep)
	}
	// lower-case commands work too
	if rep := c.cmd("ping"); rep.Str != "PONG" {
		t.Fatalf("ping = %+v", rep)
	}

	if _, ok, _, _ := getReply(t, c.cmd("GET", "7")); ok {
		t.Fatal("GET on empty store found a value")
	}
	rep := c.cmd("SET", "7", "42")
	if rep.Type != '*' || len(rep.Elems) != 2 {
		t.Fatalf("SET reply = %+v", rep)
	}
	shard, serial := int(rep.Elems[0].Int), uint64(rep.Elems[1].Int)
	if shard != srv.Store().ShardOf(7) || serial == 0 {
		t.Fatalf("SET shard/serial = %d/%d, want shard %d", shard, serial, srv.Store().ShardOf(7))
	}
	v, ok, gshard, gserial := getReply(t, c.cmd("GET", "7"))
	if !ok || v != 42 || gshard != shard || gserial < serial {
		t.Fatalf("GET 7 = (%d,%v,%d,%d)", v, ok, gshard, gserial)
	}

	// MSET then MGET across shards; serial arrays are NumShards wide.
	rep = c.cmd("MSET", "1", "10", "2", "20", "3", "30")
	if rep.Type != '*' || len(rep.Elems) != 2 || rep.Elems[0].Int != 3 {
		t.Fatalf("MSET reply = %+v", rep)
	}
	if got := len(serialsOf(t, rep.Elems[1])); got != 4 {
		t.Fatalf("MSET serials width = %d, want 4", got)
	}
	rep = c.cmd("MGET", "1", "2", "3", "99")
	if rep.Type != '*' || len(rep.Elems) != 2 {
		t.Fatalf("MGET reply = %+v", rep)
	}
	vals := rep.Elems[0]
	if len(vals.Elems) != 4 || vals.Elems[0].Str != "10" || vals.Elems[1].Str != "20" ||
		vals.Elems[2].Str != "30" || !vals.Elems[3].Null {
		t.Fatalf("MGET values = %+v", vals)
	}

	// Client mistakes answer -ERR and keep the connection alive.
	for _, bad := range [][]string{
		{"GET"}, {"GET", "1", "2"}, {"SET", "1"}, {"MSET", "1"},
		{"GET", "0"}, {"GET", "x"}, {"SET", "1", "-3"}, {"NOSUCH"},
		{"EXEC"}, {"DISCARD"},
	} {
		if rep := c.cmd(bad...); rep.Type != '-' {
			t.Fatalf("%v reply = %+v, want -ERR", bad, rep)
		}
	}
	if rep := c.cmd("PING"); rep.Str != "PONG" {
		t.Fatalf("connection dead after -ERR replies: %+v", rep)
	}

	want := strconv.FormatUint(kvstore.Checksum(srv.Store()), 10)
	if rep := c.cmd("CHECKSUM"); rep.Type != '$' || rep.Str != want {
		t.Fatalf("CHECKSUM = %+v, want %s", rep, want)
	}
}

func TestMultiExec(t *testing.T) {
	srv, addr := startServer(t, Config{Shards: 2, MaxConns: 4})
	c := dial(t, addr)

	// Two keys on different shards.
	a, b := uint64(1), uint64(2)
	for srv.Store().ShardOf(b) == srv.Store().ShardOf(a) {
		b++
	}
	as, bs := strconv.FormatUint(a, 10), strconv.FormatUint(b, 10)

	if rep := c.cmd("MULTI"); rep.Str != "OK" {
		t.Fatalf("MULTI = %+v", rep)
	}
	if rep := c.cmd("MULTI"); rep.Type != '-' {
		t.Fatalf("nested MULTI = %+v", rep)
	}
	for _, cmd := range [][]string{
		{"SET", as, "100"}, {"SET", bs, "200"}, {"MGET", as, bs}, {"GET", as},
	} {
		if rep := c.cmd(cmd...); rep.Str != "QUEUED" {
			t.Fatalf("%v = %+v", cmd, rep)
		}
	}
	rep := c.cmd("EXEC")
	if rep.Type != '*' || len(rep.Elems) != 2 {
		t.Fatalf("EXEC = %+v", rep)
	}
	results := rep.Elems[0]
	if len(results.Elems) != 4 {
		t.Fatalf("EXEC results = %+v", results)
	}
	if results.Elems[0].Str != "OK" || results.Elems[1].Str != "OK" {
		t.Fatalf("queued SET results = %+v", results)
	}
	mget := results.Elems[2]
	if mget.Elems[0].Str != "100" || mget.Elems[1].Str != "200" {
		t.Fatalf("queued MGET inside txn = %+v (read-your-writes)", mget)
	}
	if results.Elems[3].Str != "100" {
		t.Fatalf("queued GET = %+v", results.Elems[3])
	}
	serials := serialsOf(t, rep.Elems[1])
	var touched int
	for _, s := range serials {
		if s != 0 {
			touched++
		}
	}
	if touched != 2 {
		t.Fatalf("cross-shard EXEC touched %d shards (serials %v), want 2", touched, serials)
	}

	// DISCARD drops the queue.
	c.cmd("MULTI")
	c.cmd("SET", as, "999")
	if rep := c.cmd("DISCARD"); rep.Str != "OK" {
		t.Fatalf("DISCARD = %+v", rep)
	}
	if v, _, _, _ := getReply(t, c.cmd("GET", as)); v != 100 {
		t.Fatalf("DISCARDed SET applied: %d", v)
	}

	// A bad queued command poisons the transaction: EXEC refuses and
	// nothing commits.
	c.cmd("MULTI")
	if rep := c.cmd("SET", as, "777"); rep.Str != "QUEUED" {
		t.Fatalf("queued SET = %+v", rep)
	}
	if rep := c.cmd("SET", "0", "1"); rep.Type != '-' {
		t.Fatalf("bad queued SET = %+v", rep)
	}
	if rep := c.cmd("EXEC"); rep.Type != '-' || !strings.HasPrefix(rep.Str, "EXECABORT") {
		t.Fatalf("EXEC after poison = %+v", rep)
	}
	if v, _, _, _ := getReply(t, c.cmd("GET", as)); v != 100 {
		t.Fatalf("poisoned EXEC applied a write: %d", v)
	}
}

// TestRetrySurfacedAndRolledBack parks a conflicting writer in-process so
// the client's EXEC exhausts the contention bound: the client must see
// -RETRY, the store must show no partial effects, and the connection must
// remain usable (the satellite's abort→-RETRY surface).
func TestRetrySurfacedAndRolledBack(t *testing.T) {
	srv, addr := startServer(t, Config{
		Shards:   2,
		MaxConns: 2,
		Options:  stm.Options{MaxAttempts: 3},
	})
	c := dial(t, addr)

	a, b := uint64(1), uint64(2)
	for srv.Store().ShardOf(b) == srv.Store().ShardOf(a) {
		b++
	}
	as, bs := strconv.FormatUint(a, 10), strconv.FormatUint(b, 10)
	c.cmd("MSET", as, "1", bs, "1")

	// Park a writer holding b's tokens from a spare in-process worker slot
	// (the two client slots are 0 and 1; the store was built with
	// MaxConns=2 workers, so reuse slot 1 — this test only dials once).
	hold := make(chan struct{})
	parked := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		h := srv.Store().Handle(1)
		_, err := h.Txn(false, func(tx kvstore.Tx) error {
			tx.Put(b, 99)
			close(parked)
			<-hold
			return nil
		})
		done <- err
	}()
	<-parked

	c.send("MULTI")
	c.send("SET", as, "50")
	c.send("SET", bs, "60")
	c.send("EXEC")
	c.flush()
	for i := 0; i < 3; i++ {
		c.recv() // +OK, +QUEUED, +QUEUED
	}
	rep := c.recv()
	if rep.Type != '-' || !strings.HasPrefix(rep.Str, "RETRY") {
		t.Fatalf("EXEC against parked writer = %+v, want -RETRY", rep)
	}
	// Rolled back on BOTH shards: a untouched even though its shard was
	// conflict-free.
	if v, _, _, _ := getReply(t, c.cmd("GET", as)); v != 1 {
		t.Fatalf("aborted EXEC leaked a=%d, want 1", v)
	}

	close(hold)
	if err := <-done; err != nil {
		t.Fatalf("parked txn: %v", err)
	}
	// The connection retries and succeeds once the conflict clears.
	c.send("MULTI")
	c.send("SET", as, "50")
	c.send("SET", bs, "60")
	c.send("EXEC")
	c.flush()
	for i := 0; i < 3; i++ {
		c.recv()
	}
	if rep := c.recv(); rep.Type != '*' {
		t.Fatalf("EXEC after conflict cleared = %+v", rep)
	}
	if v, _, _, _ := getReply(t, c.cmd("GET", bs)); v != 60 {
		t.Fatalf("b = %d after successful retry, want 60", v)
	}
}

func TestPipelining(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 2, MaxConns: 2})
	c := dial(t, addr)

	// One write burst, one read burst: the server must answer every command
	// in order without per-command flushing from the client.
	const n = 50
	for i := 1; i <= n; i++ {
		c.send("SET", strconv.Itoa(i), strconv.Itoa(i*i))
	}
	for i := 1; i <= n; i++ {
		c.send("GET", strconv.Itoa(i))
	}
	c.flush()
	for i := 1; i <= n; i++ {
		if rep := c.recv(); rep.Type != '*' || len(rep.Elems) != 2 {
			t.Fatalf("pipelined SET %d = %+v", i, rep)
		}
	}
	for i := 1; i <= n; i++ {
		v, ok, _, _ := getReply(t, c.recv())
		if !ok || v != uint64(i*i) {
			t.Fatalf("pipelined GET %d = (%d,%v), want %d", i, v, ok, i*i)
		}
	}
}

func TestInfoDeterministic(t *testing.T) {
	srv, addr := startServer(t, Config{Shards: 2, MaxConns: 2})
	c := dial(t, addr)
	c.cmd("MSET", "1", "1", "2", "2", "3", "3")

	a := c.cmd("INFO")
	b := c.cmd("INFO")
	if a.Type != '$' || a.Str != b.Str {
		t.Fatalf("INFO not deterministic on a quiescent store:\n%s\nvs\n%s", a.Str, b.Str)
	}
	fields := map[string]uint64{}
	for _, line := range strings.Split(strings.TrimSpace(a.Str), "\n") {
		name, num, ok := strings.Cut(line, ":")
		if !ok {
			t.Fatalf("INFO line %q", line)
		}
		v, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			t.Fatalf("INFO line %q: %v", line, err)
		}
		fields[name] = v
	}
	if fields["shards"] != 2 {
		t.Fatalf("INFO shards = %d", fields["shards"])
	}
	st := srv.Store().Stats()
	if fields["commits"] != st.Commits || fields["aborts"] != st.Aborts {
		t.Fatalf("INFO commits/aborts = %d/%d, store says %d/%d",
			fields["commits"], fields["aborts"], st.Commits, st.Aborts)
	}
	for i := 0; i < 2; i++ {
		name := "shard" + strconv.Itoa(i) + "_serial"
		if fields[name] != srv.Store().ShardSerial(i) {
			t.Fatalf("INFO %s = %d, store says %d", name, fields[name], srv.Store().ShardSerial(i))
		}
	}
	if _, ok := fields["stm_fast_releases"]; !ok {
		t.Fatal("INFO lacks stm_fast_releases")
	}
}

func TestMaxConnsRefusal(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 1, MaxConns: 1})
	c1 := dial(t, addr)
	if rep := c1.cmd("PING"); rep.Str != "PONG" {
		t.Fatalf("first conn PING = %+v", rep)
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	line, err := io.ReadAll(nc) // server writes the refusal and closes
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(line, []byte("-ERR max connections")) {
		t.Fatalf("refusal line = %q", line)
	}
	// The slot frees on disconnect.
	c1.nc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		nc3, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		c3 := &client{t: t, nc: nc3, r: resp.NewReader(nc3), w: resp.NewWriter(nc3)}
		c3.send("PING")
		c3.flush()
		if rep, err := c3.r.ReadReply(); err == nil && rep.Str == "PONG" {
			nc3.Close()
			return
		}
		nc3.Close()
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGracefulDrain races Shutdown against a pipelined cross-shard
// MULTI…EXEC, over many rounds with varied timing: whatever the
// interleaving, the transaction must be all-or-nothing — both keys updated
// or neither — and the serve loop must never leave a torn prefix. This is
// the acceptance criterion's drain test.
func TestGracefulDrain(t *testing.T) {
	rounds := 25
	if testing.Short() {
		rounds = 8
	}
	for round := 0; round < rounds; round++ {
		s, err := New(Config{Shards: 2, MaxConns: 2, DrainTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- s.Serve(ln) }()

		a, b := uint64(1), uint64(2)
		for s.Store().ShardOf(b) == s.Store().ShardOf(a) {
			b++
		}
		as, bs := strconv.FormatUint(a, 10), strconv.FormatUint(b, 10)

		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c := &client{t: t, nc: nc, r: resp.NewReader(nc), w: resp.NewWriter(nc)}
		c.cmd("MSET", as, "1", bs, "1")

		// Fire the whole MULTI block in one write, with Shutdown racing it.
		c.send("MULTI")
		c.send("SET", as, "7")
		c.send("SET", bs, "7")
		c.send("EXEC")
		c.flush()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Vary the race window across rounds, including zero delay.
			time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
			s.Shutdown()
		}()

		sawExec, sawRetry := false, false
		for i := 0; i < 4; i++ {
			rep, err := c.r.ReadReply()
			if err != nil {
				break // connection drained before the reply; fine
			}
			if i == 3 {
				switch {
				case rep.Type == '*':
					sawExec = true
				case rep.Type == '-' && strings.HasPrefix(rep.Str, "RETRY"):
					sawRetry = true
				default:
					t.Fatalf("round %d: EXEC reply = %+v", round, rep)
				}
			}
		}
		wg.Wait()
		nc.Close()
		if err := <-done; err != nil {
			t.Fatalf("round %d: Serve: %v", round, err)
		}

		// Quiescent now: the transaction is all-or-nothing.
		state := map[uint64]uint64{}
		s.Store().ForEach(func(k, v uint64) { state[k] = v })
		if state[a] != state[b] {
			t.Fatalf("round %d: torn MULTI after drain: a=%d b=%d (sawExec=%v sawRetry=%v)",
				round, state[a], state[b], sawExec, sawRetry)
		}
		if sawExec && state[a] != 7 {
			t.Fatalf("round %d: EXEC acked but state a=%d", round, state[a])
		}
		if sawRetry && state[a] != 1 {
			t.Fatalf("round %d: RETRY acked but state a=%d", round, state[a])
		}
	}
}

// TestShutdownCommand drains via the wire.
func TestShutdownCommand(t *testing.T) {
	s, err := New(Config{Shards: 1, MaxConns: 2, DrainTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := &client{t: t, nc: nc, r: resp.NewReader(nc), w: resp.NewWriter(nc)}
	if rep := c.cmd("SHUTDOWN"); rep.Str != "OK" {
		t.Fatalf("SHUTDOWN = %+v", rep)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve after SHUTDOWN: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not drain after SHUTDOWN")
	}
	if _, err := net.Dial("tcp", ln.Addr().String()); err == nil {
		t.Fatal("listener still accepting after SHUTDOWN")
	}
}

// TestOverTheWireStress is satellite 3: concurrent clients over real
// sockets, every reply's (shard, serial) journaled client-side, then each
// shard's journal replayed through the kvstore serializability oracle and
// the drained store compared against the replay. Run with -race.
func TestOverTheWireStress(t *testing.T) {
	const (
		workers  = 6
		shards   = 4
		keyspace = 128
	)
	txns := 400
	if testing.Short() {
		txns = 80
	}
	srv, addr := startServer(t, Config{Shards: shards, MaxConns: workers})
	store := srv.Store()

	journals := make([][][]kvstore.JournalTxn, workers)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		journals[w] = make([][]kvstore.JournalTxn, shards)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := stressClient(t, addr, store, w, txns, keyspace, journals[w]); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	srv.Shutdown() // quiesce before ForEach; Cleanup's Shutdown is a no-op after this

	ref := make(map[uint64]uint64)
	for shard := 0; shard < shards; shard++ {
		perWorker := make([][]kvstore.JournalTxn, workers)
		for w := 0; w < workers; w++ {
			perWorker[w] = journals[w][shard]
		}
		shardRef, err := kvstore.ReplayJournals(perWorker)
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		for k, v := range shardRef {
			ref[k] = v
		}
	}
	got := map[uint64]uint64{}
	store.ForEach(func(k, v uint64) { got[k] = v })
	if len(got) != len(ref) {
		t.Fatalf("final state has %d keys, journal replay has %d", len(got), len(ref))
	}
	for k, v := range ref {
		if got[k] != v {
			t.Fatalf("final state key %d = %d, replay has %d", k, got[k], v)
		}
	}
	t.Logf("over-the-wire: %d clients x %d txns, %d keys, stats %+v",
		workers, txns, len(got), store.Stats())
}

// stressClient drives one connection's seeded mix, journaling per shard.
func stressClient(t *testing.T, addr string, store *kvstore.Sharded, worker, txns int, keyspace uint64, journal [][]kvstore.JournalTxn) error {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	r, w := resp.NewReader(nc), resp.NewWriter(nc)
	cmd := func(args ...string) (resp.Reply, error) {
		if err := w.WriteCommand(args...); err != nil {
			return resp.Reply{}, err
		}
		if err := w.Flush(); err != nil {
			return resp.Reply{}, err
		}
		return r.ReadReply()
	}
	rng := uint64(worker)*0x9e3779b97f4a7c15 + 4242
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	key := func() uint64 {
		if next()%4 == 0 {
			return 1 + next()%8 // hot set
		}
		return 1 + next()%keyspace
	}
	ks := func(k uint64) string { return strconv.FormatUint(k, 10) }

	for i := 0; i < txns; i++ {
		switch op := next() % 100; {
		case op < 30: // point read
			k := key()
			rep, err := cmd("GET", ks(k))
			if err != nil {
				return err
			}
			val, ok := uint64(0), false
			if !rep.Elems[0].Null {
				val, _ = strconv.ParseUint(rep.Elems[0].Str, 10, 64)
				ok = true
			}
			shard := int(rep.Elems[1].Int)
			journal[shard] = append(journal[shard], kvstore.JournalTxn{
				Serial: uint64(rep.Elems[2].Int),
				Reads:  []kvstore.JournalOp{{Key: k, Val: val, OK: ok}},
			})
		case op < 55: // point write
			k, v := key(), next()
			rep, err := cmd("SET", ks(k), ks(v))
			if err != nil {
				return err
			}
			shard := int(rep.Elems[0].Int)
			journal[shard] = append(journal[shard], kvstore.JournalTxn{
				Serial: uint64(rep.Elems[1].Int), Writer: true,
				Writes: []kvstore.JournalOp{{Key: k, Val: v, OK: true}},
			})
		default: // cross-shard MULTI: read two keys, blind-write both
			a, b := key(), key()
			if a == b {
				continue
			}
			va, vb := next(), next()
			for _, send := range [][]string{
				{"MULTI"}, {"MGET", ks(a), ks(b)}, {"MSET", ks(a), ks(va), ks(b), ks(vb)}, {"EXEC"},
			} {
				if err := w.WriteCommand(send...); err != nil {
					return err
				}
			}
			if err := w.Flush(); err != nil {
				return err
			}
			var rep resp.Reply
			for j := 0; j < 4; j++ {
				if rep, err = r.ReadReply(); err != nil {
					return err
				}
			}
			if rep.Type != '*' {
				return errors.New("EXEC reply " + rep.Str)
			}
			results, serials := rep.Elems[0], serialsOf(t, rep.Elems[1])
			mget := results.Elems[0]
			reads := []kvstore.JournalOp{
				journalRead(a, mget.Elems[0]),
				journalRead(b, mget.Elems[1]),
			}
			writes := []kvstore.JournalOp{
				{Key: a, Val: va, OK: true},
				{Key: b, Val: vb, OK: true},
			}
			for shard, serial := range serials {
				if serial == 0 {
					continue
				}
				rec := kvstore.JournalTxn{Serial: serial}
				for _, rd := range reads {
					if store.ShardOf(rd.Key) == shard {
						rec.Reads = append(rec.Reads, rd)
					}
				}
				for _, wr := range writes {
					if store.ShardOf(wr.Key) == shard {
						rec.Writes = append(rec.Writes, wr)
						rec.Writer = true
					}
				}
				journal[shard] = append(journal[shard], rec)
			}
		}
	}
	return nil
}

func journalRead(key uint64, e resp.Reply) kvstore.JournalOp {
	if e.Null {
		return kvstore.JournalOp{Key: key}
	}
	v, _ := strconv.ParseUint(e.Str, 10, 64)
	return kvstore.JournalOp{Key: key, Val: v, OK: true}
}
