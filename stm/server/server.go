// Package server is the network front end for the sharded token-protocol KV
// store: a TCP server speaking the RESP-lite dialect of package stm/resp in
// front of a kvstore.Sharded (hash-partitioned stm stores under one
// cross-shard transaction protocol, see stm.Group).
//
// Wire contract (values are uint64s in decimal ASCII; `$-1` is "absent"):
//
//	GET key            -> *3 [$value|$-1, :shard, :serial]
//	SET key val        -> *2 [:shard, :serial]
//	MGET k1..kn        -> *2 [*n of $value|$-1, serials]
//	MSET k1 v1 ...     -> *2 [:pairs, serials]
//	MULTI              -> +OK   (then queued commands answer +QUEUED)
//	EXEC               -> *2 [*results, serials]
//	DISCARD            -> +OK
//	PING               -> +PONG
//	INFO               -> $bulk (deterministic store counters, see conn.go)
//	CHECKSUM           -> :checksum (quiescent stores only)
//	SHUTDOWN           -> +OK, then the server drains and exits
//
// `serials` is always an array of NumShards integers: the commit serial the
// operation drew on each shard, 0 for shards it never touched. Per-shard
// serials order that shard's commits; serials from different shards are not
// comparable (each shard has its own clock), but the group commit keeps the
// per-shard orders mutually consistent — the over-the-wire stress test
// replays client journals per shard through the kvstore oracle to check
// exactly that.
//
// MULTI queues GET/SET/MGET/MSET and EXEC runs the queue as ONE atomic
// cross-shard transaction. If the store's contention bound (MaxAttempts)
// abandons the transaction, the client sees `-RETRY ...` with all effects
// rolled back — the transaction is all-or-nothing even across shards, and a
// drain racing an EXEC either commits it fully or surfaces -RETRY, never a
// torn prefix.
//
// Each connection is one goroutine bound to one store worker slot, so the
// steady-state GET/SET service path allocates nothing per operation
// (per-worker scratch in the handle, per-connection scratch in the codec).
// Responses are flushed when the read buffer drains, so pipelined command
// batches get batched replies.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tokentm/stm"
	"tokentm/stm/kvstore"
)

// Config parameterizes a Server. Zero values take defaults.
type Config struct {
	Shards   int // store shard count (power of two); default 4
	Capacity int // total slot capacity across shards; default 1 << 16

	// MaxConns bounds concurrent connections; each connection owns one
	// store worker slot for its lifetime. Accepts past the bound are
	// refused with -ERR. Default 64.
	MaxConns int

	// ReadTimeout, when positive, bounds the wait for the next command on
	// an idle connection; a connection that stays silent longer is dropped.
	ReadTimeout time.Duration

	// DrainTimeout bounds the graceful drain: connections that have not
	// finished their in-flight command batch by then are force-closed.
	// Default 5s.
	DrainTimeout time.Duration

	// Options tunes the store's contention protocol (stm.Options).
	// Options.MaxAttempts is the server-side retry bound: EXEC retries
	// conflicted transactions internally up to that bound, then rolls back
	// and surfaces -RETRY to the client. Zero keeps stm's default
	// (retry forever — no -RETRY ever reaches a client).
	Options stm.Options
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Capacity == 0 {
		c.Capacity = 1 << 16
	}
	if c.MaxConns == 0 {
		c.MaxConns = 64
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// Server owns the sharded store and the listener. Create with New, start
// with Serve (or ListenAndServe), stop with Shutdown.
type Server struct {
	cfg     Config
	store   *kvstore.Sharded
	handles []*kvstore.ShardedHandle // one per worker slot, reused across connections

	mu    sync.Mutex
	ln    net.Listener
	conns map[*conn]struct{}
	slots chan int

	draining atomic.Bool
	drained  chan struct{} // closed when the last connection unregisters while draining
}

// New builds a server and its backing store.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards <= 0 || cfg.Shards&(cfg.Shards-1) != 0 {
		return nil, fmt.Errorf("server: shard count %d is not a power of two", cfg.Shards)
	}
	if cfg.MaxConns < 1 {
		return nil, fmt.Errorf("server: MaxConns %d < 1", cfg.MaxConns)
	}
	s := &Server{
		cfg:     cfg,
		store:   kvstore.NewSharded(cfg.Shards, cfg.Capacity, cfg.MaxConns, cfg.Options),
		conns:   make(map[*conn]struct{}),
		slots:   make(chan int, cfg.MaxConns),
		drained: make(chan struct{}),
	}
	s.handles = make([]*kvstore.ShardedHandle, cfg.MaxConns)
	for i := range s.handles {
		s.handles[i] = s.store.Handle(i).(*kvstore.ShardedHandle)
		s.slots <- i
	}
	return s, nil
}

// Store exposes the backing store for in-process prepopulation, checksums
// and test oracles. Snapshot methods (ForEach, Checksum) require quiescence.
func (s *Server) Store() *kvstore.Sharded { return s.store }

// Addr returns the listener address once Serve has been called.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe listens on addr and serves until Shutdown (returning nil)
// or a listener error.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// errRefused is the refusal line written to connections past MaxConns; raw
// bytes because the connection never gets a codec.
var errRefused = []byte("-ERR max connections reached\r\n")

// Serve accepts connections on ln until the listener closes. A drain-driven
// close returns nil; anything else returns the accept error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		return errors.New("server: Serve called twice")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		select {
		case id := <-s.slots:
			c := newConn(s, nc, nc, id)
			if !s.register(c) { // drain began after Accept
				nc.Close()
				s.slots <- id
				continue
			}
			go func() {
				c.serve()
				s.unregister(c)
				nc.Close()
				s.slots <- id
			}()
		default:
			nc.Write(errRefused)
			nc.Close()
		}
	}
}

func (s *Server) register(c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) unregister(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	empty := len(s.conns) == 0
	s.mu.Unlock()
	if empty && s.draining.Load() {
		select {
		case <-s.drained:
		default:
			close(s.drained)
		}
	}
}

// Shutdown drains the server: stop accepting, wake every connection blocked
// on a read, let in-flight command batches finish (each in-flight EXEC
// commits fully or surfaces -RETRY — never a torn prefix), then force-close
// stragglers after DrainTimeout. Safe to call multiple times; only the
// first call drains.
func (s *Server) Shutdown() {
	if s.draining.Swap(true) {
		<-s.drained
		return
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	// Wake blocked readers: an expired deadline surfaces as a read error,
	// and the connection loop treats any read error while draining as a
	// graceful goodbye (after flushing buffered replies).
	for c := range s.conns {
		c.nc.SetReadDeadline(time.Now())
	}
	empty := len(s.conns) == 0
	s.mu.Unlock()
	if empty {
		select {
		case <-s.drained:
		default:
			close(s.drained)
		}
		return
	}
	select {
	case <-s.drained:
	case <-time.After(s.cfg.DrainTimeout):
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-s.drained
	}
}
