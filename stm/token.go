package stm

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"tokentm/internal/mem"
	"tokentm/internal/metastate"
)

// This file is the host port of the token protocol proper: every transition
// is a CAS on the block's 64-bit metastate.PackedWord, computing the
// successor state with the same Table 3a/3b fission/fusion rules the
// simulator uses. Reads acquire one token (fissioning into the anonymous
// reader count when a second reader arrives); writes acquire all T tokens;
// a read-to-write upgrade folds the upgrader's own read token into the
// all-token claim — the bug class the PR 5 model checker caught in the
// simulator (double-counting the upgrader's token) is pinned here by
// TestUpgradeFoldsReadToken and the race stress suite.

// Tx is one transaction attempt's view of a TM. Obtain it inside
// Thread.Atomically or Thread.ReadOnly; it is invalid outside fn.
type Tx struct {
	th *Thread
	ro bool // snapshot mode: no tokens, loads validated against rv
	// finished marks an attempt whose tokens are already returned (committed
	// or aborted); Group recovery consults it so a member whose own retry()
	// already rolled back is not double-aborted.
	finished bool
	rv       uint64 // snapshot read serial (ro mode only)
	logs     txLogs
}

// Load returns the word at a. In token mode it acquires a read token for
// the block on first touch; conflicts with a writer unwind the attempt via
// retrySignal. In snapshot mode it performs a stamp-validated tokenless
// read instead.
//
//tokentm:allocfree
func (tx *Tx) Load(a Addr) uint64 {
	if tx.ro {
		return tx.loadRO(a)
	}
	return tx.loadToken(a)
}

// loadToken is the token-mode Load body, outlined so the Load dispatcher
// inlines into callers.
func (tx *Tx) loadToken(a Addr) uint64 {
	th := tx.th
	b := uint32(a) >> th.tm.shift
	if m := th.mark[b]; m>>markShift == th.attempt && m&markMask != 0 {
		return th.tm.dataw(a).Load() // token already held (read or write)
	}
	tx.acquireRead(b)
	th.mark[b] = th.attempt<<markShift | markRead
	tx.logs.appendRead(b)
	return th.tm.dataw(a).Load()
}

// Load2 returns the words at a1 and a2, which must lie in the same block —
// the common "adjacent fields of one record" shape. It costs one token
// acquisition (or one snapshot validation) instead of two Loads.
//
//tokentm:allocfree
func (tx *Tx) Load2(a1, a2 Addr) (uint64, uint64) {
	if uint32(a1)>>tx.th.tm.shift != uint32(a2)>>tx.th.tm.shift {
		spanPanic(a1, a2)
	}
	if tx.ro {
		return tx.loadRO2(a1, a2)
	}
	return tx.load2Token(a1, a2)
}

// load2Token is the token-mode Load2 body, outlined so the dispatcher
// inlines into callers.
func (tx *Tx) load2Token(a1, a2 Addr) (uint64, uint64) {
	th := tx.th
	b := uint32(a1) >> th.tm.shift
	if m := th.mark[b]; m>>markShift == th.attempt && m&markMask != 0 {
		return th.tm.dataw(a1).Load(), th.tm.dataw(a2).Load()
	}
	tx.acquireRead(b)
	th.mark[b] = th.attempt<<markShift | markRead
	tx.logs.appendRead(b)
	return th.tm.dataw(a1).Load(), th.tm.dataw(a2).Load()
}

// spanPanic is outlined so Load2's inlining budget is not spent on the
// error path's formatting.
func spanPanic(a1, a2 Addr) {
	panic(fmt.Sprintf("stm: Load2 addresses %d and %d span blocks", a1, a2))
}

// loadRO is the single-word snapshot read; see loadRO2 for the protocol.
func (tx *Tx) loadRO(a Addr) uint64 {
	v, _ := tx.loadRO2(a, a)
	return v
}

// loadRO2 is the snapshot-mode read: accept the block iff its metastate
// shows no writer and its writer-release stamp is at most rv, re-reading
// the token word after the data loads for stability. Data words change only
// between a write acquire (state WriteT) and the matching release (which
// installs a fresh stamp), so a stable writer-free word brackets stable
// data words. A writer mid-flight is waited out — its stamp may still land
// at or under rv; a block stamped past rv means the snapshot is stale and
// the attempt retries with a fresh rv.
func (tx *Tx) loadRO2(a1, a2 Addr) (uint64, uint64) {
	th := tx.th
	w := th.tm.metaw(uint32(a1) >> th.tm.shift)
	for spin := 0; ; spin++ {
		w1 := metastate.PackedWord(w.Load())
		if w1.Packed().State() == metastate.StateWriteT {
			bump(&th.stats.ConflictWriter)
			if spin >= th.tm.opt.SpinLimit {
				panic(retrySignal{})
			}
			spinWait(spin, th.tm.opt.SpinShiftCap, &th.rng)
			continue
		}
		if w1.Stamp() > tx.rv {
			panic(retrySignal{}) // written after our snapshot
		}
		v1 := th.tm.dataw(a1).Load()
		v2 := th.tm.dataw(a2).Load()
		if metastate.PackedWord(w.Load()) == w1 {
			return v1, v2
		}
	}
}

// Store writes v to a, acquiring all of the block's tokens on first write.
// A block previously read by this transaction takes the upgrade path.
//
// This is the canonical write path: claim the block's tokens, log the old
// value, then store — the order the logorder analyzer enforces.
//
//tokentm:writepath
//tokentm:allocfree
func (tx *Tx) Store(a Addr, v uint64) {
	th := tx.th
	if tx.ro {
		panic("stm: Store inside a read-only transaction")
	}
	tx.writeAcquire(uint32(a) >> th.tm.shift)
	tx.logs.appendUndo(a, th.tm.dataw(a).Load())
	th.tm.dataw(a).Store(v)
}

// LoadW returns the word at a after acquiring the block's write tokens — the
// "read a word I am about to overwrite" shape. Unlike Load+Store it never
// takes the read-token detour, so a blind update costs one acquisition.
//
//tokentm:allocfree
func (tx *Tx) LoadW(a Addr) uint64 {
	th := tx.th
	if tx.ro {
		panic("stm: LoadW inside a read-only transaction")
	}
	tx.writeAcquire(uint32(a) >> th.tm.shift)
	return th.tm.dataw(a).Load()
}

// writeAcquire ensures this transaction holds block b's write tokens,
// upgrading a held read token (fold-in) or acquiring fresh.
//
//tokentm:tokenclaim
func (tx *Tx) writeAcquire(b uint32) {
	th := tx.th
	m := th.mark[b]
	if m>>markShift != th.attempt {
		m = 0
	}
	switch {
	case m&markWrite != 0:
		// Already the writer.
	case m&markRead != 0:
		tx.acquireWrite(b, true)
		th.mark[b] = th.attempt<<markShift | markRead | markWrite
		tx.logs.appendWrite(b)
		bump(&th.stats.Upgrades)
	default:
		tx.acquireWrite(b, false)
		th.mark[b] = th.attempt<<markShift | markWrite
		tx.logs.appendWrite(b)
	}
}

// Stable returns the word at a WITHOUT recording it in the transaction's
// footprint: a bounded-spin seqlock read that waits out any in-flight
// writer and returns a committed value. The caller must guarantee that the
// transaction's outcome is insensitive to concurrent commits changing the
// word — in practice, that the word is write-once (like a hash-table key in
// an insert-only table: once a committed probe sees it nonzero it is
// immutable, so probing past it needs no conflict detection). Any decision
// that IS order-sensitive — matching the key, observing an empty slot —
// must be re-made through Load/LoadW/Load2 on the owning block.
//
//tokentm:allocfree
func (tx *Tx) Stable(a Addr) uint64 {
	th := tx.th
	b := uint32(a) >> th.tm.shift
	if !tx.ro {
		if m := th.mark[b]; m>>markShift == th.attempt && m&markMask != 0 {
			return th.tm.dataw(a).Load() // our own token (possibly mid-write)
		}
	}
	w := th.tm.metaw(b)
	for spin := 0; ; spin++ {
		w1 := metastate.PackedWord(w.Load())
		if w1.Packed().State() == metastate.StateWriteT {
			bump(&th.stats.ConflictWriter)
			if spin >= th.tm.opt.SpinLimit {
				// Requester-side resolution, as in acquireRead: give up so
				// any token we hold cannot deadlock against the writer.
				if tx.ro {
					panic(retrySignal{})
				}
				tx.retry(&th.stats.ConflictAborts)
			}
			spinWait(spin, th.tm.opt.SpinShiftCap, &th.rng)
			continue
		}
		v := th.tm.dataw(a).Load()
		if metastate.PackedWord(w.Load()) == w1 {
			return v
		}
	}
}

// Snapshot2 reads the words at a1 and a2 — which must lie in one block — at
// a consistent committed snapshot, without starting a transaction: the
// point-read fast path. The returned serial is the block's writer-release
// stamp, a commit serial at which exactly the observed values were current;
// a single-block read-only transaction at that serial would return the same
// values, so journals mixing Snapshot2 reads with transactional commits
// still replay serializably. An in-flight writer is waited out (bounded
// yields, never parking). Must not be called from inside a transaction on
// the same Thread that has written the block — the wait would spin on the
// caller's own write token; the cold path panics on that misuse.
// The body is split so the no-writer, no-retry common case stays within
// the compiler's inlining budget: a kv store's probe loop then pays four
// plain atomic loads per slot, not a function call.
//
//tokentm:allocfree
func (th *Thread) Snapshot2(a1, a2 Addr) (v1, v2, serial uint64) {
	tm := th.tm
	if uint32(a1^a2)>>tm.shift != 0 {
		spanPanic(a1, a2)
	}
	w := tm.metaw(uint32(a1) >> tm.shift)
	w1 := w.Load()
	if metastate.PackedWord(w1).Packed().State() != metastate.StateWriteT {
		v1 = tm.dataw(a1).Load()
		v2 = tm.dataw(a2).Load()
		if w.Load() == w1 {
			return v1, v2, metastate.PackedWord(w1).Stamp()
		}
	}
	return th.snapshot2Slow(a1, a2)
}

func (th *Thread) snapshot2Slow(a1, a2 Addr) (v1, v2, serial uint64) {
	tm := th.tm
	b := uint32(a1) >> tm.shift
	w := tm.metaw(b)
	for spin := 0; ; spin++ {
		w1 := metastate.PackedWord(w.Load())
		if p := w1.Packed(); p.State() == metastate.StateWriteT {
			if mem.TID(p.Attr()) == th.tid {
				panic(fmt.Sprintf("stm: Snapshot2 of block %d inside thread %d's own write transaction", b, th.tid))
			}
			bump(&th.stats.ConflictWriter)
			spinWait(spin, th.tm.opt.SpinShiftCap, &th.rng)
			continue
		}
		v1 = tm.dataw(a1).Load()
		v2 = tm.dataw(a2).Load()
		if metastate.PackedWord(w.Load()) == w1 {
			return v1, v2, w1.Stamp()
		}
	}
}

// NoteCommit records one committed non-transactional operation — a
// point-read composed of Snapshot2 calls — in the thread's statistics, so
// stores built on the fast path keep Commits comparable with Txn counts.
//
//tokentm:allocfree
func (th *Thread) NoteCommit() {
	bump(&th.stats.Commits)
	bump(&th.stats.SnapshotCommits)
}

// Upsert2 is the point-write fast path: a complete single-block
// claim-or-skip transaction in one call — the shape a hash-table insert or
// blind update needs, and the host analog of the paper's flash release for
// minimal write sets. It takes all T tokens on a1's block, re-reads the
// guard word at a1 under the claim, and if that word equals k1 or zero
// installs k1 at a1 and v2 at a2 and commits, stamping the drawn serial
// into the release. Any other guard value means a concurrent claim
// committed first: the untouched block is released with its stamp
// unchanged and claimed is false so the caller can probe on.
//
// The calling thread must hold no other tokens — the call waits out
// readers and writers instead of aborting, which is deadlock-free only
// when this one block is the whole footprint. Calling it inside the
// thread's own open transaction panics where detectable (the thread is
// the identified holder).
//
// Upsert2 is a write path with a deliberate exception to the claim/log
// discipline: the claim is the direct full-token CompareAndSwap above each
// store (not writeAcquire), and no undo entries are appended because the
// path either commits in place or backs out having written nothing. The
// per-store ignore directives below record that argument.
//
//tokentm:writepath
//tokentm:allocfree
func (th *Thread) Upsert2(a1, a2 Addr, k1, v2 uint64) (claimed bool, serial uint64) {
	tm := th.tm
	b := uint32(a1) >> tm.shift
	if uint32(a2)>>tm.shift != b {
		spanPanic(a1, a2)
	}
	w := tm.metaw(b)
	for spin := 0; ; spin++ {
		old := metastate.PackedWord(w.Load())
		p := old.Packed()
		switch p.State() {
		case metastate.StateAnon:
			if uint32(p.Attr()) != 0 {
				bump(&th.stats.ConflictReader)
				spinWait(spin, th.tm.opt.SpinShiftCap, &th.rng)
				continue
			}
		case metastate.StateRead1, metastate.StateWriteT:
			if mem.TID(p.Attr()) == th.tid {
				panic(fmt.Sprintf("stm: Upsert2 of block %d inside thread %d's own transaction", b, th.tid))
			}
			if p.State() == metastate.StateWriteT {
				bump(&th.stats.ConflictWriter)
			} else {
				bump(&th.stats.ConflictReader)
			}
			spinWait(spin, th.tm.opt.SpinShiftCap, &th.rng)
			continue
		case metastate.StateOverflow:
			bump(&th.stats.ConflictAnon)
			spinWait(spin, th.tm.opt.SpinShiftCap, &th.rng)
			continue
		}
		np, _ := metastate.Pack(metastate.WriteT(th.tid))
		if !w.CompareAndSwap(uint64(old), uint64(old.With(np))) {
			continue
		}
		// All T tokens held: the guard read is committed state, and no other
		// thread can transition the word, so plain stores release it.
		switch g := tm.dataw(a1).Load(); g {
		case 0:
			//lint:ignore logorder claimed by the full-token CAS above; the guard word was zero, so there is no old value to log
			tm.dataw(a1).Store(k1)
		case k1:
		default:
			w.Store(uint64(old)) // nothing written: the stamp must not move
			return false, 0
		}
		//lint:ignore logorder claimed by the full-token CAS above; a2 is the value word of a claimed-or-fresh record, never replayed on abort
		tm.dataw(a2).Store(v2)
		serial = tm.nextSerial()
		w.Store(uint64(metastate.MakeWord(metastate.PackedZero, serial)))
		bump(&th.stats.Commits)
		return true, serial
	}
}

// The spin bounds (how many CAS/conflict rounds one acquisition tries before
// the attempt gives up; the much tighter bound for a blocked read-to-write
// upgrade) live in the TM's Options — see Options.SpinLimit and
// Options.UpgradeSpinLimit for the policy rationale.

// acquireRead takes one token on block b: (0,-) -> (1,self); a second reader
// fuses the identified reader into the anonymous count (1,X) -> (2,-);
// further readers increment it. A writer, or an anonymous count at the
// 14-bit packing limit, is a conflict.
func (tx *Tx) acquireRead(b uint32) {
	th := tx.th
	w := th.tm.metaw(b)
	for spin := 0; ; spin++ {
		if th.doomed() {
			tx.retry(&th.stats.DoomedAborts)
		}
		old := metastate.PackedWord(w.Load())
		p := old.Packed()
		var next metastate.Meta
		switch p.State() {
		case metastate.StateAnon:
			if u := uint32(p.Attr()); u == 0 {
				next = metastate.Read1(th.tid)
			} else {
				next = metastate.Anon(u + 1)
			}
		case metastate.StateRead1:
			if mem.TID(p.Attr()) == th.tid {
				panic(fmt.Sprintf("stm: thread %d re-acquiring its own read token on block %d", th.tid, b))
			}
			next = metastate.Anon(2)
		case metastate.StateWriteT:
			if mem.TID(p.Attr()) == th.tid {
				panic(fmt.Sprintf("stm: thread %d read-acquiring its own written block %d", th.tid, b))
			}
			tx.conflict(mem.TID(p.Attr()), &th.stats.ConflictWriter, spin)
			continue
		case metastate.StateOverflow:
			// The host never packs the overflow escape (readers are bounded
			// by maxThreads « 2^14); treat it as an anonymous conflict.
			tx.conflict(mem.NoTID, &th.stats.ConflictAnon, spin)
			continue
		}
		np, over := metastate.Pack(next)
		if over {
			tx.conflict(mem.NoTID, &th.stats.ConflictAnon, spin)
			continue
		}
		if w.CompareAndSwap(uint64(old), uint64(old.With(np))) {
			return
		}
	}
}

// acquireWrite takes all T tokens on block b. haveRead says this transaction
// already holds one read token on b; the claim then folds that token in
// ((1,self) -> (T,self), or (1,-) -> (T,self) when the lone anonymous token
// is provably ours) rather than double-counting it. Any other outstanding
// reader or writer is a conflict.
func (tx *Tx) acquireWrite(b uint32, haveRead bool) {
	th := tx.th
	w := th.tm.metaw(b)
	for spin := 0; ; spin++ {
		if th.doomed() {
			tx.retry(&th.stats.DoomedAborts)
		}
		old := metastate.PackedWord(w.Load())
		p := old.Packed()
		switch p.State() {
		case metastate.StateAnon:
			u := uint32(p.Attr())
			// Claimable when free, or when Sum is 1 and we hold a token —
			// the lone anonymous token is then provably ours, and folding
			// it in (rather than adding T on top) is the double-entry
			// discipline.
			if !(u == 0 || (u == 1 && haveRead)) {
				// Upgrade herd guard: an upgrader blocked by other readers
				// is itself holding a fused read token those readers (often
				// fellow upgraders) are waiting on. Spinning here with the
				// token held starves everyone, so give up almost at once —
				// the abort returns our token and the attempt-level backoff
				// serializes the herd.
				if haveRead && spin >= th.tm.opt.UpgradeSpinLimit {
					tx.retry(&th.stats.ConflictAborts)
				}
				tx.conflict(mem.NoTID, &th.stats.ConflictReader, spin)
				continue
			}
		case metastate.StateRead1:
			if mem.TID(p.Attr()) != th.tid {
				tx.conflict(mem.TID(p.Attr()), &th.stats.ConflictReader, spin)
				continue
			}
			if !haveRead {
				panic(fmt.Sprintf("stm: thread %d identified on block %d without a logged read", th.tid, b))
			}
		case metastate.StateWriteT:
			if mem.TID(p.Attr()) == th.tid {
				panic(fmt.Sprintf("stm: thread %d re-acquiring its own write token on block %d", th.tid, b))
			}
			tx.conflict(mem.TID(p.Attr()), &th.stats.ConflictWriter, spin)
			continue
		case metastate.StateOverflow:
			tx.conflict(mem.NoTID, &th.stats.ConflictAnon, spin)
			continue
		}
		np, _ := metastate.Pack(metastate.WriteT(th.tid))
		if w.CompareAndSwap(uint64(old), uint64(old.With(np))) {
			return
		}
	}
}

// conflict applies the requester-side resolution policy for one failed
// acquisition round: count it, draw our birth ticket if this is the
// transaction's first conflict, doom a younger identified holder, give up
// after spinLimit rounds, otherwise yield briefly and re-examine.
//
//tokentm:backoff
func (tx *Tx) conflict(enemy mem.TID, counter *atomic.Uint64, spin int) {
	th := tx.th
	bump(counter)
	if spin >= th.tm.opt.SpinLimit {
		tx.retry(&th.stats.ConflictAborts)
	}
	th.ensureBirth()
	if enemy != mem.NoTID {
		th.maybeDoom(enemy)
	}
	spinWait(spin, th.tm.opt.SpinShiftCap, &th.rng)
}

// retry aborts the attempt (undo + release) and unwinds to Atomically.
// It dooms the attempt rather than pausing it, which satisfies the CAS
// retry-loop hygiene rule the same way a direct panic does.
//
//tokentm:backoff
func (tx *Tx) retry(counter *atomic.Uint64) {
	bump(counter)
	tx.abortAttempt()
	panic(retrySignal{})
}

// commitAttempt is the fast path out of a successful attempt: flip the
// status word (failing if an elder doomed us at the last moment), draw the
// commit serial while every token is still held — the serialization point —
// then release all tokens, stamping the serial into every written block so
// snapshot readers can place the writes relative to their read serial.
//
//tokentm:allocfree
func (tx *Tx) commitAttempt() uint64 {
	th := tx.th
	if !th.status.CompareAndSwap(
		th.attempt<<statusShift|stateActive,
		th.attempt<<statusShift|stateIdle) {
		tx.retry(&th.stats.DoomedAborts)
	}
	serial := th.tm.nextSerial()
	tx.releaseAll(serial)
	tx.finished = true
	bump(&th.stats.Commits)
	return serial
}

// abortAttempt rolls the attempt back: replay the undo log in reverse while
// the write tokens are still held, then release every token. Written blocks
// still get a fresh stamp — the restored bytes equal the pre-transaction
// state, but a snapshot reader may have seen the block mid-write, and only
// a stamp change tells it to re-read.
//
//tokentm:allocfree
func (tx *Tx) abortAttempt() {
	th := tx.th
	for i := tx.logs.nUndo - 1; i >= 0; i-- {
		e := tx.logs.undoAt(i)
		th.tm.dataw(e.addr).Store(e.old)
	}
	var stamp uint64
	if tx.logs.nWrite > 0 {
		stamp = th.tm.nextSerial()
	}
	tx.releaseAll(stamp)
	tx.finished = true
	bump(&th.stats.Aborts)
}

// releaseAll returns every token this attempt holds. Write blocks release
// all T tokens in one transition ((T,self) -> (0,-)); read blocks decrement
// the anonymous count or clear the identified-reader state. A read-log block
// that was upgraded releases through its write entry only — the read token
// was folded into the write claim, so decrementing it again would be the
// double-entry violation the model checker hunts. Transactions whose whole
// footprint stayed within the inline log arrays take the fast path (no heap
// log to walk), the host analog of the paper's small-transaction
// flash-clear release.
func (tx *Tx) releaseAll(stamp uint64) {
	th := tx.th
	for i := 0; i < tx.logs.nWrite; i++ {
		th.releaseWrite(tx.logs.writeAt(i), stamp)
	}
	for i := 0; i < tx.logs.nRead; i++ {
		b := tx.logs.readAt(i)
		if th.mark[b]>>markShift == th.attempt && th.mark[b]&markWrite != 0 {
			continue // upgraded: released with the write set
		}
		th.releaseRead(b)
	}
	if tx.logs.inline() {
		bump(&th.stats.FastReleases)
	} else {
		bump(&th.stats.SlowReleases)
	}
}

// releaseWrite returns all T tokens of block b: (T,self) -> (0,-), stamping
// the releasing transaction's serial into the word (the snapshot-mode
// visibility fence). No other thread can transition a writer-held word, so
// the CAS succeeds first try; the loop guards the invariant.
func (th *Thread) releaseWrite(b uint32, stamp uint64) {
	w := th.tm.metaw(b)
	for {
		old := metastate.PackedWord(w.Load())
		p := old.Packed()
		if p.State() != metastate.StateWriteT || mem.TID(p.Attr()) != th.tid {
			panic(fmt.Sprintf("stm: thread %d releasing write token it does not hold on block %d (%#04x)", th.tid, b, uint16(p)))
		}
		if w.CompareAndSwap(uint64(old), uint64(metastate.MakeWord(metastate.PackedZero, stamp))) {
			return
		}
	}
}

// releaseRead returns one token of block b. While we hold a read token the
// word is either (1,self) — we stayed the identified reader — or an
// anonymous count (u,-) that includes our token (fusion erases identity and
// releases never re-identify, Table 2).
func (th *Thread) releaseRead(b uint32) {
	w := th.tm.metaw(b)
	for {
		old := metastate.PackedWord(w.Load())
		p := old.Packed()
		var next metastate.Meta
		switch p.State() {
		case metastate.StateRead1:
			if mem.TID(p.Attr()) != th.tid {
				panic(fmt.Sprintf("stm: thread %d releasing read token held by %d on block %d", th.tid, p.Attr(), b))
			}
			next = metastate.Zero
		case metastate.StateAnon:
			u := uint32(p.Attr())
			if u == 0 {
				panic(fmt.Sprintf("stm: thread %d releasing read token on empty block %d", th.tid, b))
			}
			next = metastate.Anon(u - 1)
		case metastate.StateWriteT, metastate.StateOverflow:
			panic(fmt.Sprintf("stm: thread %d releasing read token on block %d in state %d", th.tid, b, p.State()))
		}
		np, _ := metastate.Pack(next)
		if w.CompareAndSwap(uint64(old), uint64(old.With(np))) {
			return
		}
	}
}

// spinWait delays one acquisition round: exponential in the round number,
// capped at shiftCap (Options.SpinShiftCap), with jitter, implemented as
// scheduler yields so the holder runs even at GOMAXPROCS=1.
//
//tokentm:backoff
//tokentm:allocfree
func spinWait(spin, shiftCap int, rng *uint64) {
	if spin > shiftCap {
		spin = shiftCap
	}
	n := uint64(1)<<spin + nextRand(rng)&3
	for i := uint64(0); i < n; i++ {
		runtime.Gosched()
	}
}
