package stm

// Group runs one atomic transaction across several TMs. The kvstore shards
// its table over independent TMs so disjoint key ranges stop sharing one
// serial ticket — but a cross-shard MULTI must still be one transaction.
// Nesting Atomically cannot deliver that (the inner transaction commits and
// releases before the outer one decides), so Group generalizes the commit
// protocol instead: one member Thread per TM, all attempts opened together,
// and a commit that holds every token on every shard until a serial has been
// drawn from every touched shard — strict two-phase locking across the
// group, which makes the per-shard serial orders mutually consistent (each
// shard's commit-journal replay sees the group's effects at a single point).
//
// Conflict handling is entirely the members' own machinery: an acquisition
// that loses on any shard aborts that member (releasing its tokens) and
// unwinds the whole group via retrySignal; Group rolls the other members
// back and retries after the usual backoff. Dooms work per shard — the
// eldest tiebreak compares birth tickets drawn from each shard's own ticket
// source, so there is no cross-shard eldest. That weakens the no-starvation
// argument to the same probabilistic one every bounded-spin 2PL system
// makes: a cross-shard cycle cannot block forever (every acquisition's spin
// is bounded, and giving up releases everything), and randomized backoff
// breaks the symmetric retry races. MaxAttempts (taken from the first
// member's TM, so build every shard with the same Options) bounds the loop
// when the caller would rather surface ErrAborted than wait out a storm.
type Group struct {
	members []*Thread
}

// NewGroup builds a Group over the given member threads, one per TM. Every
// member must come from TM.Thread, belong to a distinct TM, and — like any
// Thread — be used by one goroutine at a time. The Group borrows the
// members: between Group.Atomically calls they remain usable directly.
func NewGroup(members ...*Thread) *Group {
	if len(members) == 0 {
		panic("stm: NewGroup with no members")
	}
	for i, th := range members {
		if th.mark == nil {
			panic("stm: Group member not obtained via TM.Thread")
		}
		for _, prev := range members[:i] {
			if prev.tm == th.tm {
				panic("stm: two Group members on one TM")
			}
		}
	}
	return &Group{members: members}
}

// GroupTx is the per-attempt view handed to Group.Atomically's fn.
type GroupTx struct{ g *Group }

// Tx returns member i's transaction view. Addresses passed to it index
// member i's TM.
func (gt *GroupTx) Tx(i int) *Tx { return &gt.g.members[i].tx }

// Atomically runs fn as one transaction spanning every member TM, with the
// same contract as Thread.Atomically (fn re-executed after conflicts, error
// aborts, ErrAborted after MaxAttempts). On commit it returns one serial per
// member: the commit serial drawn from that member's TM, or 0 for a member
// whose shard the transaction never touched. All nonzero serials were drawn
// while the group still held every token on every shard, so each is a true
// serialization point within its own shard's commit order.
func (g *Group) Atomically(fn func(gt *GroupTx) error) (serials []uint64, err error) {
	for _, th := range g.members {
		if th.tx.ro || th.status.Load()&stateMask != stateIdle {
			panic("stm: Group.Atomically over a busy member Thread")
		}
	}
	for _, th := range g.members {
		th.birth.Store(0)
	}
	lead := g.members[0]
	gt := &GroupTx{g: g}
	serials = make([]uint64, len(g.members))
	for retries := 0; ; retries++ {
		for _, th := range g.members {
			th.beginAttempt(&th.tx)
		}
		err, again := g.runAttempt(gt, fn, serials)
		if !again {
			if err != nil {
				return nil, err
			}
			return serials, nil
		}
		if ma := lead.tm.opt.MaxAttempts; ma > 0 && retries+1 >= ma {
			return nil, ErrAborted
		}
		lead.backoff(retries)
	}
}

// runAttempt executes fn once across the group, committing on success. The
// recover mirrors Thread.runAttempt; the difference is that any unwind —
// conflict, error, or caller panic — must roll back every member, not one.
func (g *Group) runAttempt(gt *GroupTx, fn func(gt *GroupTx) error, serials []uint64) (err error, again bool) {
	defer func() {
		if r := recover(); r != nil {
			g.abortAll()
			if _, ok := r.(retrySignal); ok {
				again = true
				return
			}
			panic(r)
		}
	}()
	if err = fn(gt); err != nil {
		g.abortAll()
		return err, false
	}
	return nil, !g.commitAll(serials)
}

// commitAll is the cross-shard commit. Phase 1 closes the doom window on
// every member (the same status CAS commitAttempt uses; one failure means an
// elder doomed us and the whole group aborts). Phase 2 draws a serial from
// every touched shard — all tokens on all shards are still held here, which
// is the property that makes the per-shard serials jointly consistent.
// Phase 3 releases everything, stamping each shard's written blocks with
// that shard's serial.
func (g *Group) commitAll(serials []uint64) bool {
	for _, th := range g.members {
		if !th.status.CompareAndSwap(
			th.attempt<<statusShift|stateActive,
			th.attempt<<statusShift|stateIdle) {
			bump(&th.stats.DoomedAborts)
			g.abortAll()
			return false
		}
	}
	for i, th := range g.members {
		if th.tx.logs.nRead > 0 || th.tx.logs.nWrite > 0 {
			serials[i] = th.tm.nextSerial()
		} else {
			serials[i] = 0
		}
	}
	for i, th := range g.members {
		th.tx.releaseAll(serials[i])
		th.tx.finished = true
		bump(&th.stats.Commits)
	}
	return true
}

// abortAll rolls every member back and re-idles its status word. A member
// whose own retry already aborted (finished set by abortAttempt) is skipped
// — double-releasing its tokens would be a double-entry violation. Statuses
// flipped idle by a partial commitAll phase 1 are stored idle again,
// harmlessly.
func (g *Group) abortAll() {
	for _, th := range g.members {
		if !th.tx.finished {
			th.tx.abortAttempt()
		}
		th.status.Store(th.attempt<<statusShift | stateIdle)
	}
}
