package stm

import "errors"

// Options tunes the contention policy: how long an acquisition spins before
// the attempt gives up, how the losing side backs off, and how many times a
// transaction is retried before the caller is told to deal with it. The
// zero value of every field means "use the default", so Options{} reproduces
// the package's historical constants exactly — a server can tune the policy
// that has only ever seen this container's schedules without recompiling,
// and embedders that never look at Options get yesterday's behavior.
type Options struct {
	// SpinLimit bounds how many CAS/conflict rounds one token acquisition
	// (or one Stable/snapshot wait) tries before the attempt aborts and
	// retries from scratch — requester-side conflict resolution.
	// Default 48.
	SpinLimit int

	// UpgradeSpinLimit is the much tighter bound for a read-to-write
	// upgrade blocked by other readers: the upgrader holds a fused read
	// token the very readers it waits on may themselves be waiting for, so
	// it must stop blocking the herd almost immediately (the PR-6
	// upgrade-herd livelock guard). Default 2.
	UpgradeSpinLimit int

	// BackoffShiftCap caps the exponent of the attempt-level exponential
	// backoff: a conflicted transaction yields up to 2^min(retries, cap)
	// (plus jitter) scheduler quanta before its next attempt. Default 6.
	BackoffShiftCap int

	// SpinShiftCap caps the exponent of the per-round acquisition backoff
	// (spinWait): one losing round yields up to 2^min(round, cap) times
	// before re-examining the token word. Default 5.
	SpinShiftCap int

	// MaxAttempts bounds how many attempts one transaction makes before
	// Atomically / ReadOnly / Group.Atomically stops retrying and returns
	// ErrAborted with every effect rolled back. Zero (the default) retries
	// forever, the historical behavior; a network front end sets a bound
	// so a pathological conflict surfaces to the client as a retryable
	// error instead of a stuck connection.
	MaxAttempts int
}

// DefaultOptions returns the resolved default policy — the exact constants
// the package shipped with before the policy became tunable.
func DefaultOptions() Options {
	return Options{
		SpinLimit:        48,
		UpgradeSpinLimit: 2,
		BackoffShiftCap:  6,
		SpinShiftCap:     5,
		MaxAttempts:      0,
	}
}

// withDefaults resolves zero fields to their defaults. Negative values are
// rejected loudly — a negative spin bound would turn every acquisition into
// an instant abort storm, which is never what a tuner meant.
func (o Options) withDefaults() Options {
	d := DefaultOptions()
	resolve := func(v, def int, name string) int {
		if v < 0 {
			panic("stm: negative Options." + name)
		}
		if v == 0 {
			return def
		}
		return v
	}
	o.SpinLimit = resolve(o.SpinLimit, d.SpinLimit, "SpinLimit")
	o.UpgradeSpinLimit = resolve(o.UpgradeSpinLimit, d.UpgradeSpinLimit, "UpgradeSpinLimit")
	o.BackoffShiftCap = resolve(o.BackoffShiftCap, d.BackoffShiftCap, "BackoffShiftCap")
	o.SpinShiftCap = resolve(o.SpinShiftCap, d.SpinShiftCap, "SpinShiftCap")
	if o.MaxAttempts < 0 {
		panic("stm: negative Options.MaxAttempts")
	}
	return o
}

// ErrAborted reports that a transaction exhausted Options.MaxAttempts
// without committing. Every effect of every attempt has been rolled back
// and every token returned; the caller may simply try again later (the
// server surfaces it to the client as -RETRY).
var ErrAborted = errors.New("stm: transaction aborted after MaxAttempts conflicted attempts")
