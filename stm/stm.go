// Package stm is a goroutine-concurrent software transactional memory that
// ports TokenTM's token double-entry protocol from the simulator to real
// shared memory. It is the host-side counterpart of internal/htm: the same
// fission/fusion metastate rules (paper Tables 3a/3b) drive conflict
// detection, but the per-block metastate lives in 64-bit words updated with
// sync/atomic compare-and-swap (internal/metastate.PackedWord widens the
// Table-4a packing for exactly this use), transactions run on goroutines
// instead of simulated cores, and version management is eager: writes go to
// memory in place, guarded by write tokens, with a per-goroutine undo log
// replayed on abort (the LogTM lineage TokenTM builds on).
//
// What is faithful and what is approximated relative to the paper is
// catalogued in DESIGN.md ("Host STM: simulator structures and their
// atomics counterparts"). The short version: token acquisition, fusion of
// anonymous readers, read-to-write upgrades that fold the upgrader's own
// read token into the all-token claim, and the fast small-transaction
// release path all survive the port; L1 metadata arrays, ECC token storage,
// and signatures do not (a host STM has no cache to hide metadata in, so
// every access pays the metadata CAS that TokenTM's L1 fast path avoids).
//
// Progress: conflicts resolve by requester-side bounded exponential backoff
// with an eldest-transaction tiebreak — a transaction draws a birth ticket
// lazily at its first conflict (conflict-free transactions never touch the
// global ticket counter) and keeps it across retries, and a conflicter that
// is older than the token holder dooms the holder (the holder aborts at its
// next acquisition or commit). A ticketless transaction counts as youngest.
// Once every member of a persistent conflict set has conflicted, all hold
// distinct tickets; the eldest among them is never doomed and dooms
// everything in its way, so it eventually runs alone and commits: no
// deadlock and no starvation.
//
// Read-only transactions (Thread.ReadOnly) skip tokens entirely and run in
// snapshot mode: they draw a read serial rv from the commit clock and
// validate every load against the writer-release stamp each block's
// PackedWord carries (see internal/metastate), seqlock-style. Visible-reader
// token traffic is the right cost model for hardware metabits riding the
// cache hierarchy, but on a host every acquire/release pair is two
// contended CAS — snapshot readers pay plain loads instead, and writers
// keep the full token protocol unchanged.
package stm

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"

	"tokentm/internal/mem"
	"tokentm/internal/metastate"
)

// Addr indexes a 64-bit word of transactional memory.
type Addr uint32

// MaxThreads bounds concurrent transactional threads: thread identifiers
// must fit the packed metastate's 14-bit attribute field, with TID 0
// reserved as "no owner" (mem.NoTID).
const MaxThreads = int(mem.MaxTID)

// TM is one transactional memory region: an array of data words plus one
// packed token word per block. All transactional access goes through a
// Thread's Atomically; LoadWord/StoreWord exist for quiescent setup and
// inspection only.
type TM struct {
	shift     uint   // log2(words per block)
	numBlocks uint32 // len(meta)

	// words holds the data. Mutation is guarded by write-token ownership;
	// the atomic type is for snapshot-mode readers, which load data words
	// without holding a token and discard unstable reads seqlock-style —
	// logically sound, but a plain-typed word would still be a detector-level
	// race. On amd64 the atomic load is an ordinary MOV, so the token paths
	// pay nothing for it. The metadata lives in its own dense array (8
	// blocks' token words per cache line) rather than interleaved with the
	// data: the hot fraction of it stays cache-resident the way TokenTM's
	// L1 metabit arrays do, which measures faster than paying the full data
	// footprint on every token check.
	words []atomic.Uint64
	meta  []atomic.Uint64 // one metastate.PackedWord per block

	births atomic.Uint64 // birth-ticket source (eldest tiebreak)
	serial atomic.Uint64 // commit serial clock; doubles as the snapshot read clock

	opt Options // resolved contention policy (never zero-valued fields)

	threads []Thread // descriptor slots, indexed by TID-1
}

// New builds a TM with numBlocks blocks of wordsPerBlock 64-bit words each
// (wordsPerBlock must be a power of two — the conflict-detection granularity,
// the host analog of the paper's 64-byte block), supporting up to maxThreads
// concurrent transactional threads, under the default contention policy.
func New(numBlocks, wordsPerBlock, maxThreads int) *TM {
	return NewWithOptions(numBlocks, wordsPerBlock, maxThreads, Options{})
}

// NewWithOptions is New with an explicit contention policy; zero Options
// fields resolve to their defaults (see Options).
func NewWithOptions(numBlocks, wordsPerBlock, maxThreads int, opt Options) *TM {
	if wordsPerBlock <= 0 || wordsPerBlock&(wordsPerBlock-1) != 0 {
		panic(fmt.Sprintf("stm: wordsPerBlock %d is not a power of two", wordsPerBlock))
	}
	if numBlocks <= 0 {
		panic("stm: numBlocks must be positive")
	}
	if maxThreads <= 0 || maxThreads > MaxThreads {
		panic(fmt.Sprintf("stm: maxThreads %d outside [1, %d]", maxThreads, MaxThreads))
	}
	tm := &TM{
		shift:     uint(bits.TrailingZeros(uint(wordsPerBlock))),
		numBlocks: uint32(numBlocks),
		words:     make([]atomic.Uint64, numBlocks*wordsPerBlock),
		meta:      make([]atomic.Uint64, numBlocks),
		opt:       opt.withDefaults(),
		threads:   make([]Thread, maxThreads),
	}
	for i := range tm.threads {
		th := &tm.threads[i]
		th.tm = tm
		th.tid = mem.TID(i + 1)
		th.rng = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	return tm
}

// NumBlocks returns the number of conflict-detection blocks.
func (tm *TM) NumBlocks() int { return int(tm.numBlocks) }

// WordsPerBlock returns the conflict-detection granularity in words.
func (tm *TM) WordsPerBlock() int { return 1 << tm.shift }

// NumWords returns the total number of data words.
func (tm *TM) NumWords() int { return len(tm.words) }

// metaw returns block b's packed token word.
func (tm *TM) metaw(b uint32) *atomic.Uint64 { return &tm.meta[b] }

// Options returns the TM's resolved contention policy.
func (tm *TM) Options() Options { return tm.opt }

// SerialClock returns the current value of the commit serial clock — the
// serial of the most recent commit (0 before any). Safe to call at any time;
// a network front end reports it per shard as the observability surface.
func (tm *TM) SerialClock() uint64 { return tm.serial.Load() }

// nextSerial draws the next commit serial, failing loudly (typed
// *metastate.StampOverflowError panic) as the 48-bit writer-release stamp
// field approaches its wrap — a wrapped stamp would validate stale
// snapshots silently, so no serial past the guard is ever stamped.
func (tm *TM) nextSerial() uint64 {
	s := tm.serial.Add(1)
	if err := metastate.CheckStamp(s); err != nil {
		panic(err)
	}
	return s
}

// dataw returns the cell holding data word a. Stores through it on an
// annotated write path must be preceded by a token claim and an undo-log
// append for the same address (the logorder analyzer's contract).
//
//tokentm:dataword
func (tm *TM) dataw(a Addr) *atomic.Uint64 { return &tm.words[a] }

// Thread returns the transactional thread with the given id (0-based,
// < maxThreads). Each Thread is single-goroutine: bind one per worker. The
// per-block mark table is allocated on first use, so unused thread slots
// cost nothing.
func (tm *TM) Thread(id int) *Thread {
	th := &tm.threads[id]
	if th.mark == nil {
		th.mark = make([]uint64, tm.numBlocks)
		// Touch one word per page: a large make is lazily mapped, and
		// faulting its pages in here keeps first-touch page faults out of
		// the transaction hot path (they otherwise land mid-workload, on
		// the first write to each cold region of the table).
		for i := 0; i < len(th.mark); i += 512 {
			th.mark[i] = 0
		}
		th.tx.th = th
	}
	return th
}

// LoadWord reads a data word non-transactionally. Callers must guarantee
// quiescence (setup before workers start, or inspection after they join).
func (tm *TM) LoadWord(a Addr) uint64 { return tm.dataw(a).Load() }

// StoreWord writes a data word non-transactionally, under the same
// quiescence contract as LoadWord.
func (tm *TM) StoreWord(a Addr, v uint64) { tm.dataw(a).Store(v) }

// Stats sums per-thread statistics. Counters are single-writer atomics, so
// calling this while workers run is race-free and per-field exact; only a
// quiescent call (after workers join) is cross-field consistent.
func (tm *TM) Stats() Stats {
	var s Stats
	for i := range tm.threads {
		tm.threads[i].stats.addTo(&s)
	}
	return s
}

// Thread status word: attempt<<statusShift | state. Doom targets one exact
// attempt, so a CAS from a stale status word can never kill a later
// transaction (the attempt counter has moved on).
const (
	stateIdle   = 0 // between transactions (or committed)
	stateActive = 1 // attempt running
	stateDoomed = 2 // an elder conflicter requested abort
	statusShift = 2
	stateMask   = 1<<statusShift - 1
)

// Thread is a per-goroutine transactional context. A Thread must not be
// shared between goroutines; its Tx is reused across transactions so the
// steady state allocates nothing.
type Thread struct {
	tm  *TM
	tid mem.TID // 1-based; packs into the metastate attribute field

	status  atomic.Uint64 // attempt<<statusShift | state
	birth   atomic.Uint64 // birth ticket; 0 = not drawn yet (youngest)
	attempt uint64        // current attempt id (owner-written, status-published)

	// mark is the per-block footprint table: mark[b] = attempt<<2 | bits.
	// Stale attempts invalidate every entry at once, so resetting the
	// footprint between attempts is O(1) — the host analog of the paper's
	// L1 metadata flash-clear.
	mark []uint64

	rng   uint64 // splitmix64 state for backoff jitter
	tx    Tx
	stats counters
}

// mark-table encoding: mark[b] = attempt<<markShift | bits.
const (
	markRead  = 1
	markWrite = 2
	markShift = 2
	markMask  = 1<<markShift - 1
)

// retrySignal unwinds the user function on conflict abort; Atomically
// recovers it and retries the transaction.
type retrySignal struct{}

// Atomically runs fn as one transaction: every Load and Store inside is
// conflict-checked at block granularity and the whole effect commits
// atomically. On conflict the attempt is rolled back (undo log) and fn is
// re-executed after backoff — fn must therefore be safe to repeat and must
// not leak transactional values out except through its final successful run.
// A non-nil error from fn aborts the transaction (all writes undone) and is
// returned. On commit, Atomically returns a serial number: a total order of
// commits consistent with transactional conflicts (the ticket is drawn while
// every read and write token is still held, so it is a true serialization
// point). With Options.MaxAttempts set, a transaction that conflicts away
// that many attempts stops retrying and returns ErrAborted, fully rolled
// back.
func (th *Thread) Atomically(fn func(tx *Tx) error) (serial uint64, err error) {
	if th.mark == nil {
		panic("stm: Thread not obtained via TM.Thread")
	}
	if th.tx.ro || th.status.Load()&stateMask != stateIdle {
		panic("stm: nested Atomically on one Thread")
	}
	th.birth.Store(0) // ticket drawn lazily at first conflict
	tx := &th.tx
	for retries := 0; ; retries++ {
		th.beginAttempt(tx)
		serial, err, again := th.runAttempt(tx, fn)
		if !again {
			return serial, err
		}
		if ma := th.tm.opt.MaxAttempts; ma > 0 && retries+1 >= ma {
			// The aborted attempt already rolled back and released; only
			// the status word still says active.
			th.status.Store(th.attempt<<statusShift | stateIdle)
			return 0, ErrAborted
		}
		th.backoff(retries)
	}
}

// ReadOnly runs fn as a snapshot transaction: no tokens are acquired and no
// footprint is published. Every Load is validated against a read serial rv
// drawn at attempt start — the block must carry no write token and a
// writer-release stamp no newer than rv, re-checked after the data load —
// so the attempt observes exactly the committed state at serial rv, which
// is returned as the transaction's serial. A load that trips on a newer
// writer unwinds the attempt and retries with a fresh rv. Store inside fn
// panics; use Atomically for anything that writes.
//
// Snapshot transactions never publish the thread status word: they hold
// nothing another transaction could wait on, so the doom protocol has no
// business with them (nesting is guarded by the ro flag instead).
func (th *Thread) ReadOnly(fn func(tx *Tx) error) (serial uint64, err error) {
	if th.mark == nil {
		panic("stm: Thread not obtained via TM.Thread")
	}
	if th.tx.ro || th.status.Load()&stateMask != stateIdle {
		panic("stm: nested transaction on one Thread")
	}
	tx := &th.tx
	for retries := 0; ; retries++ {
		tx.ro = true
		tx.rv = th.tm.serial.Load()
		serial, err, again := th.runROAttempt(tx, fn)
		if !again {
			return serial, err
		}
		bump(&th.stats.SnapshotRetries)
		if ma := th.tm.opt.MaxAttempts; ma > 0 && retries+1 >= ma {
			return 0, ErrAborted
		}
		th.backoff(retries)
	}
}

// runROAttempt executes fn once in snapshot mode. There is nothing to roll
// back — snapshot attempts write nothing, shared or logged; the one defer
// both catches the retry signal and clears the ro flag (ReadOnly re-arms it
// per attempt), so the whole path costs a single deferred frame.
func (th *Thread) runROAttempt(tx *Tx, fn func(tx *Tx) error) (serial uint64, err error, again bool) {
	defer func() {
		tx.ro = false
		if r := recover(); r != nil {
			if _, ok := r.(retrySignal); ok {
				again = true
				return
			}
			panic(r)
		}
	}()
	if err = fn(tx); err != nil {
		return 0, err, false
	}
	bump(&th.stats.Commits)
	bump(&th.stats.SnapshotCommits)
	return tx.rv, nil, false
}

// beginAttempt publishes a fresh attempt: bumping the attempt id invalidates
// every mark-table entry and every doom CAS aimed at the previous attempt.
func (th *Thread) beginAttempt(tx *Tx) {
	th.attempt++
	th.status.Store(th.attempt<<statusShift | stateActive)
	tx.finished = false
	tx.logs.reset()
}

// runAttempt executes fn once, committing on success. again reports that the
// attempt aborted on conflict and the transaction should be retried. A panic
// from fn rolls the attempt back (no tokens leak) and re-panics.
func (th *Thread) runAttempt(tx *Tx, fn func(tx *Tx) error) (serial uint64, err error, again bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(retrySignal); ok {
				again = true
				return
			}
			tx.abortAttempt()
			th.status.Store(th.attempt<<statusShift | stateIdle)
			panic(r)
		}
	}()
	if err = fn(tx); err != nil {
		tx.abortAttempt()
		th.status.Store(th.attempt<<statusShift | stateIdle)
		return 0, err, false
	}
	return tx.commitAttempt(), nil, false
}

// backoff delays a conflicted transaction before its next attempt: bounded
// exponential in the retry count with splitmix jitter, yielding the
// processor so the token holder can run (essential when GOMAXPROCS is small).
//
//tokentm:backoff
func (th *Thread) backoff(retries int) {
	shift := retries
	if cap := th.tm.opt.BackoffShiftCap; shift > cap {
		shift = cap
	}
	n := uint64(1) << shift
	n += nextRand(&th.rng) & (n - 1)
	for i := uint64(0); i < n; i++ {
		runtime.Gosched()
	}
}

// doomed reports whether an elder transaction has requested this attempt's
// abort.
func (th *Thread) doomed() bool {
	return th.status.Load() == th.attempt<<statusShift|stateDoomed
}

// ensureBirth draws this transaction's birth ticket on first conflict. The
// ticket then persists across retries (it is reset only at Atomically
// entry), so a repeatedly-aborted transaction ages toward eldest.
func (th *Thread) ensureBirth() {
	if th.birth.Load() == 0 {
		th.birth.Store(th.tm.births.Add(1))
	}
}

// maybeDoom implements the eldest-transaction tiebreak: if the conflicting
// token holder is an active transaction younger than us, request its abort.
// A holder that has never conflicted carries no ticket (birth 0) and counts
// as youngest. The CAS dooms one exact (thread, attempt) pair; any race
// with the enemy retiring that attempt makes the CAS fail harmlessly.
func (th *Thread) maybeDoom(enemy mem.TID) {
	es := &th.tm.threads[enemy-1]
	s := es.status.Load()
	if s&stateMask != stateActive {
		return
	}
	if eb := es.birth.Load(); eb != 0 && eb <= th.birth.Load() {
		return // enemy is elder (or ourselves): back off instead
	}
	if es.status.CompareAndSwap(s, s&^uint64(stateMask)|stateDoomed) {
		bump(&th.stats.Dooms)
	}
}

// nextRand is splitmix64: cheap per-thread jitter with no global state (the
// wallclock lint contract bans global math/rand in sim packages; host-side
// code keeps the same hygiene by construction).
func nextRand(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
