package stm

// TestAllocFreeAnnotations cross-checks this package's //tokentm:allocfree
// annotations at runtime: the table's key set must equal the annotation
// list the static analyzer sees (lint.AllocFreeFuncs), and each entry must
// measure zero allocations per run on its steady-state path. The drivers
// are white-box — beginAttempt/commitAttempt bracket the protocol calls the
// way runAttempt does, minus the deferred recover that testing.AllocsPerRun
// cannot see through.

import (
	"slices"
	"sort"
	"testing"

	"tokentm/internal/lint"
)

func TestAllocFreeAnnotations(t *testing.T) {
	tm := New(64, 4, 2)
	th := tm.Thread(0)
	tx := &th.tx

	words := Addr(tm.WordsPerBlock())
	a := 3 * words  // block 3
	u := 11 * words // block 11, reserved for the Upsert2 entry

	// One-time growth: the mark table is allocated by Thread(0) above, and
	// the first transactions warm every stats field. Each entry also runs
	// three warm-up rounds before measuring.
	for i := 0; i < 3; i++ {
		if _, err := th.Atomically(func(tx *Tx) error {
			tx.Store(a, tx.Load(a)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	entries := []struct {
		name string
		fn   func()
	}{
		{"Tx.Load", func() {
			th.beginAttempt(tx)
			if tx.Load(a) == 0 {
				t.Fatal("warm-up should have left block 3 nonzero")
			}
			tx.commitAttempt()
		}},
		{"Tx.Load2", func() {
			th.beginAttempt(tx)
			tx.Load2(a, a+1)
			tx.commitAttempt()
		}},
		{"Tx.LoadW", func() {
			th.beginAttempt(tx)
			tx.Store(a, tx.LoadW(a)+1)
			tx.commitAttempt()
		}},
		{"Tx.Store", func() {
			th.beginAttempt(tx)
			tx.Store(a, 7)
			tx.commitAttempt()
		}},
		{"Tx.Stable", func() {
			th.beginAttempt(tx)
			tx.Stable(a)
			tx.commitAttempt()
		}},
		{"Tx.commitAttempt", func() {
			th.beginAttempt(tx)
			tx.Store(a, tx.Load(a)+1)
			tx.commitAttempt()
		}},
		{"Tx.abortAttempt", func() {
			th.beginAttempt(tx)
			tx.Store(a, 99)
			tx.abortAttempt()
		}},
		{"Thread.Snapshot2", func() {
			th.Snapshot2(a, a+1)
		}},
		{"Thread.NoteCommit", func() {
			th.NoteCommit()
		}},
		{"Thread.Upsert2", func() {
			claimed, _ := th.Upsert2(u, u+1, 42, 43)
			if !claimed {
				t.Fatal("Upsert2 lost a claim with no contenders")
			}
		}},
		{"bump", func() {
			bump(&th.stats.Commits)
		}},
		{"spinWait", func() {
			rng := th.rng
			spinWait(1, 5, &rng)
		}},
	}

	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.name)
	}
	sort.Strings(names)
	want, err := lint.AllocFreeFuncs(".")
	if err != nil {
		t.Fatalf("scanning annotations: %v", err)
	}
	if !slices.Equal(names, want) {
		t.Fatalf("annotation/table drift:\n annotated: %v\n table:     %v", want, names)
	}

	for _, e := range entries {
		e := e
		t.Run(e.name, func(t *testing.T) {
			for i := 0; i < 3; i++ {
				e.fn()
			}
			if n := testing.AllocsPerRun(100, e.fn); n != 0 {
				t.Errorf("%s allocates %.0f times per run; want 0", e.name, n)
			}
		})
	}
}
