package loadgen_test

import (
	"net"
	"testing"

	"tokentm/stm"
	"tokentm/stm/kvstore"
	"tokentm/stm/loadgen"
	"tokentm/stm/server"
)

// TestDriverModesAgree is the unit-sized version of the netbench
// determinism gate: at workers=1 the same seeded op stream must produce
// the same final-state checksum whether it runs through an in-process
// handle on the unsharded store, through sharded cross-shard group
// commits, or over a TCP round trip through the RESP codec.
func TestDriverModesAgree(t *testing.T) {
	for _, mix := range loadgen.Mixes {
		mix := mix
		t.Run(mix.Name, func(t *testing.T) {
			cfg := loadgen.Config{
				Mix:      mix,
				Workers:  1,
				Ops:      1500,
				Keyspace: 1024,
				Capacity: 8192,
				Seed:     7,
				ZipfS:    1.2,
			}

			sums := make(map[string]uint64)

			store := kvstore.NewSTM(cfg.Capacity, cfg.Workers)
			res, err := loadgen.RunDrivers(loadgen.DriverSetup{
				Mode:     "inproc",
				New:      func(w int) (loadgen.Driver, error) { return loadgen.NewHandleDriver(store.Handle(w)), nil },
				Checksum: func() (uint64, error) { return kvstore.Checksum(store), nil },
				Stats:    store.Stats,
			}, cfg)
			if err != nil {
				t.Fatalf("inproc: %v", err)
			}
			sums["inproc"] = res.Checksum

			sharded := kvstore.NewSharded(4, cfg.Capacity, cfg.Workers, stm.Options{})
			res, err = loadgen.RunDrivers(loadgen.DriverSetup{
				Mode:     "sharded",
				Shards:   4,
				New:      func(w int) (loadgen.Driver, error) { return loadgen.NewHandleDriver(sharded.Handle(w)), nil },
				Checksum: func() (uint64, error) { return kvstore.Checksum(sharded), nil },
				Stats:    sharded.Stats,
			}, cfg)
			if err != nil {
				t.Fatalf("sharded: %v", err)
			}
			sums["sharded"] = res.Checksum

			srv, err := server.New(server.Config{Shards: 4, Capacity: cfg.Capacity, MaxConns: cfg.Workers + 1})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			serveDone := make(chan error, 1)
			go func() { serveDone <- srv.Serve(ln) }()
			addr := ln.Addr().String()
			res, err = loadgen.RunDrivers(loadgen.DriverSetup{
				Mode:     "net",
				Shards:   4,
				New:      func(w int) (loadgen.Driver, error) { return loadgen.DialNet(addr) },
				Close:    func(w int, d loadgen.Driver) error { return d.(*loadgen.NetDriver).Close() },
				Checksum: func() (uint64, error) { return loadgen.NetChecksum(addr) },
				Stats:    srv.Store().Stats,
			}, cfg)
			srv.Shutdown()
			if serr := <-serveDone; serr != nil {
				t.Fatalf("serve: %v", serr)
			}
			if err != nil {
				t.Fatalf("net: %v", err)
			}
			sums["net"] = res.Checksum

			if sums["inproc"] == 0 {
				t.Fatal("zero checksum (empty store?)")
			}
			if sums["sharded"] != sums["inproc"] || sums["net"] != sums["inproc"] {
				t.Fatalf("checksums disagree: %x", sums)
			}
		})
	}
}
