package loadgen

import (
	"fmt"
	"net"
	"strconv"
	"strings"

	"tokentm/stm/resp"
)

// NetDriver drives one server connection with the RESP-lite dialect of
// stm/server: Get/Put map to GET/SET, Atomic maps to a MULTI…EXEC block
// (MGET for the reads, MSET for the blind writes). A -RETRY reply — the
// server's bounded-contention rollback — is retried transparently and
// counted; per-op latency therefore includes wire round trips and any
// retries, which is the whole point of the network benchmark.
type NetDriver struct {
	nc      net.Conn
	r       *resp.Reader
	w       *resp.Writer
	retries uint64
	args    []string // scratch for command assembly
}

// DialNet connects a driver to a stm/server address.
func DialNet(addr string) (*NetDriver, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &NetDriver{nc: nc, r: resp.NewReader(nc), w: resp.NewWriter(nc)}, nil
}

func (d *NetDriver) Close() error { return d.nc.Close() }

// Retries reports how many Atomic transactions were resent after -RETRY.
func (d *NetDriver) Retries() uint64 { return d.retries }

// roundTrip sends d.args as one command and returns the reply.
func (d *NetDriver) roundTrip() (resp.Reply, error) {
	if err := d.w.WriteCommand(d.args...); err != nil {
		return resp.Reply{}, err
	}
	if err := d.w.Flush(); err != nil {
		return resp.Reply{}, err
	}
	return d.r.ReadReply()
}

func replyErr(op string, rep resp.Reply) error {
	return fmt.Errorf("loadgen: %s answered %c %s", op, rep.Type, rep.Str)
}

func (d *NetDriver) Get(key uint64) error {
	d.args = append(d.args[:0], "GET", strconv.FormatUint(key, 10))
	rep, err := d.roundTrip()
	if err != nil {
		return err
	}
	if rep.Type != '*' {
		return replyErr("GET", rep)
	}
	return nil
}

func (d *NetDriver) Put(key, val uint64) error {
	d.args = append(d.args[:0], "SET", strconv.FormatUint(key, 10), strconv.FormatUint(val, 10))
	rep, err := d.roundTrip()
	if err != nil {
		return err
	}
	if rep.Type != '*' {
		return replyErr("SET", rep)
	}
	return nil
}

// Atomic issues MULTI / MGET / MSET / EXEC as one pipelined block and
// retries the whole block on -RETRY (the transaction rolled back wholly, so
// resending is safe). Empty get or put sets skip their queued command.
func (d *NetDriver) Atomic(getKeys, putKeys, putVals []uint64) error {
	for {
		queued := 0
		if err := d.w.WriteCommand("MULTI"); err != nil {
			return err
		}
		if len(getKeys) > 0 {
			d.args = append(d.args[:0], "MGET")
			for _, k := range getKeys {
				d.args = append(d.args, strconv.FormatUint(k, 10))
			}
			if err := d.w.WriteCommand(d.args...); err != nil {
				return err
			}
			queued++
		}
		if len(putKeys) > 0 {
			d.args = append(d.args[:0], "MSET")
			for i, k := range putKeys {
				d.args = append(d.args, strconv.FormatUint(k, 10), strconv.FormatUint(putVals[i], 10))
			}
			if err := d.w.WriteCommand(d.args...); err != nil {
				return err
			}
			queued++
		}
		if err := d.w.WriteCommand("EXEC"); err != nil {
			return err
		}
		if err := d.w.Flush(); err != nil {
			return err
		}
		var rep resp.Reply
		var err error
		for i := 0; i < queued+2; i++ { // +OK, +QUEUED..., EXEC reply
			if rep, err = d.r.ReadReply(); err != nil {
				return err
			}
		}
		switch {
		case rep.Type == '*':
			return nil
		case rep.Type == '-' && strings.HasPrefix(rep.Str, "RETRY"):
			d.retries++
			continue
		default:
			return replyErr("EXEC", rep)
		}
	}
}

// NetChecksum asks the server for its store checksum (quiescent stores
// only: call after every driver has stopped).
func NetChecksum(addr string) (uint64, error) {
	d, err := DialNet(addr)
	if err != nil {
		return 0, err
	}
	defer d.Close()
	d.args = append(d.args[:0], "CHECKSUM")
	rep, err := d.roundTrip()
	if err != nil {
		return 0, err
	}
	if rep.Type != '$' || rep.Null {
		return 0, replyErr("CHECKSUM", rep)
	}
	sum, err := strconv.ParseUint(rep.Str, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("loadgen: CHECKSUM reply %q: %w", rep.Str, err)
	}
	return sum, nil
}
