// Package loadgen models heavy KV traffic against the stm/kvstore backends:
// seeded zipfian key popularity (a few keys take most of the traffic, the
// shape real user-facing stores see), three operation mixes (read-heavy,
// write-heavy, large-transaction) and configurable worker counts. Each
// worker draws a deterministic operation stream from its own seeded
// generator, so a single-worker run is fully reproducible — the benchmark
// checker exploits this: at workers=1 all backends must agree byte-for-byte
// on the final-state checksum.
//
// This package is host-side by charter: it reads the wall clock to measure
// throughput and latency (see internal/lint's host-side scope).
package loadgen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"tokentm/stm/kvstore"
)

// Mix is one operation mix. Percentages must sum to 100. A Get is a
// single-key point read (the Handle.Get fast path, equivalent to a
// read-only single-key transaction); a Put is a blind single-key update
// (the Handle.Put fast path); a
// Transfer reads two keys and rewrites both (the read-to-write upgrade
// path); a Batch reads BatchGets keys and rewrites BatchPuts of them (the
// large-transaction shape the paper targets).
type Mix struct {
	Name        string `json:"name"`
	GetPct      int    `json:"get_pct"`
	PutPct      int    `json:"put_pct"`
	TransferPct int    `json:"transfer_pct"`
	BatchPct    int    `json:"batch_pct"`
	BatchGets   int    `json:"batch_gets"`
	BatchPuts   int    `json:"batch_puts"`
}

// Mixes are the standard three mixes the benchmark grid sweeps.
var Mixes = []Mix{
	{Name: "read-heavy", GetPct: 90, PutPct: 8, TransferPct: 2},
	{Name: "write-heavy", GetPct: 20, PutPct: 60, TransferPct: 20},
	{Name: "large-txn", GetPct: 58, PutPct: 20, TransferPct: 10, BatchPct: 12, BatchGets: 32, BatchPuts: 8},
}

// MixByName resolves a mix by name.
func MixByName(name string) (Mix, error) {
	for _, m := range Mixes {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("loadgen: unknown mix %q", name)
}

// Config parameterizes one benchmark cell.
type Config struct {
	Backend  string  `json:"backend"`
	Mix      Mix     `json:"mix"`
	Workers  int     `json:"workers"`
	Ops      int     `json:"ops"`      // total transactions across workers
	Keyspace uint64  `json:"keyspace"` // live keys 1..Keyspace
	Capacity int     `json:"capacity"` // store slot capacity
	Seed     uint64  `json:"seed"`
	ZipfS    float64 `json:"zipf_s"` // zipf skew (>1)
}

// Result is one cell's measurement. Mix/Backend/Workers/Ops identify the
// cell deterministically; Commits/Aborts/Checksum are schedule-dependent
// (but deterministic at Workers=1); the remaining fields are wall-clock
// measurements of this host.
type Result struct {
	Mix     string `json:"mix"`
	Backend string `json:"backend"`
	Workers int    `json:"workers"`
	Ops     int    `json:"ops"`

	// Network-benchmark identity (RunDrivers cells only).
	Mode        string `json:"mode,omitempty"`         // inproc | sharded | net
	Shards      int    `json:"shards,omitempty"`       // shard count when sharded
	WireRetries uint64 `json:"wire_retries,omitempty"` // -RETRY transactions resent by clients

	Commits   uint64  `json:"commits"`
	Aborts    uint64  `json:"aborts"`
	AbortRate float64 `json:"abort_rate"`
	Checksum  uint64  `json:"checksum"`

	ElapsedNS  int64   `json:"elapsed_ns"`
	Throughput float64 `json:"throughput_ops_s"`
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`
}

// latencySample measures every latencyEvery-th transaction, keeping timer
// overhead out of the hot loop.
const latencyEvery = 16

// Run executes one benchmark cell: build the backend, prepopulate every key,
// then drive cfg.Ops transactions from cfg.Workers goroutines and collect
// throughput, latency percentiles and abort statistics.
func Run(cfg Config) (Result, error) {
	if cfg.Workers <= 0 || cfg.Ops <= 0 || cfg.Keyspace == 0 {
		return Result{}, fmt.Errorf("loadgen: bad config %+v", cfg)
	}
	store, err := kvstore.New(cfg.Backend, cfg.Capacity, cfg.Workers)
	if err != nil {
		return Result{}, err
	}
	if err := prepopulate(store, cfg.Keyspace, cfg.Seed); err != nil {
		return Result{}, err
	}

	workers := make([]*worker, cfg.Workers)
	per := cfg.Ops / cfg.Workers
	for w := range workers {
		ops := per
		if w == 0 {
			ops += cfg.Ops % cfg.Workers
		}
		workers[w] = newWorker(store.Handle(w), cfg, w, ops)
	}

	start := time.Now()
	done := make(chan error, len(workers))
	for _, w := range workers {
		w := w
		go func() { done <- w.run() }()
	}
	for range workers {
		if werr := <-done; werr != nil && err == nil {
			err = werr
		}
	}
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}

	st := store.Stats()
	res := Result{
		Mix:       cfg.Mix.Name,
		Backend:   cfg.Backend,
		Workers:   cfg.Workers,
		Ops:       cfg.Ops,
		Commits:   st.Commits,
		Aborts:    st.Aborts,
		AbortRate: st.AbortRate(),
		Checksum:  kvstore.Checksum(store),
		ElapsedNS: elapsed.Nanoseconds(),
	}
	if elapsed > 0 {
		res.Throughput = float64(cfg.Ops) / elapsed.Seconds()
	}
	res.P50Micros, res.P99Micros = percentiles(workers)
	return res, nil
}

// prepopulate inserts every key in 1..keyspace (value = mixed key) in
// batches, so the measured phase sees a warm store and Gets always hit.
func prepopulate(store kvstore.Store, keyspace, seed uint64) error {
	h := store.Handle(0)
	const batch = 128
	for lo := uint64(1); lo <= keyspace; lo += batch {
		hi := lo + batch
		if hi > keyspace+1 {
			hi = keyspace + 1
		}
		lo := lo
		if _, err := h.Txn(false, func(tx kvstore.Tx) error {
			for k := lo; k < hi; k++ {
				tx.Put(k, splitmix(k+seed))
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// worker drives one goroutine's share of a cell. The transaction closures
// are bound once at construction and read their parameters from fields, so
// the steady-state loop does not allocate.
type worker struct {
	h        kvstore.Handle
	mix      Mix
	keyspace uint64
	ops      int

	rng  *rand.Rand
	zipf *rand.Zipf
	val  uint64 // splitmix state for generated values

	k1, k2  uint64
	xferFn  func(kvstore.Tx) error
	batchFn func(kvstore.Tx) error

	lat []int64 // sampled per-txn latencies, ns
}

func newWorker(h kvstore.Handle, cfg Config, id, ops int) *worker {
	r := rand.New(rand.NewSource(int64(cfg.Seed) + int64(id)*1337))
	w := &worker{
		h:        h,
		mix:      cfg.Mix,
		keyspace: cfg.Keyspace,
		ops:      ops,
		rng:      r,
		zipf:     rand.NewZipf(r, cfg.ZipfS, 1, cfg.Keyspace-1),
		val:      cfg.Seed*0x9e3779b97f4a7c15 + uint64(id) + 1,
		lat:      make([]int64, 0, ops/latencyEvery+1),
	}
	w.xferFn = func(tx kvstore.Tx) error {
		a, _ := tx.Get(w.k1)
		b, _ := tx.Get(w.k2)
		tx.Put(w.k1, a+b)
		tx.Put(w.k2, b+1)
		return nil
	}
	w.batchFn = func(tx kvstore.Tx) error {
		var sum uint64
		for i := 0; i < w.mix.BatchGets; i++ {
			v, _ := tx.Get(1 + (w.k1+uint64(i)-1)%w.keyspace)
			sum += v
		}
		for i := 0; i < w.mix.BatchPuts; i++ {
			tx.Put(1+(w.k2+uint64(i)-1)%w.keyspace, sum+uint64(i))
		}
		return nil
	}
	return w
}

// key draws a zipfian-popular key, spread over the table by a multiplicative
// bijection so the hottest ranks do not cluster in adjacent slots.
func (w *worker) key() uint64 {
	rank := w.zipf.Uint64()
	return rank*0x9E3779B1%w.keyspace + 1
}

func (w *worker) run() error {
	for i := 0; i < w.ops; i++ {
		sample := i%latencyEvery == 0
		var t0 time.Time
		if sample {
			t0 = time.Now()
		}
		var err error
		op := w.rng.Intn(100)
		switch m := &w.mix; {
		case op < m.GetPct:
			w.k1 = w.key()
			w.h.Get(w.k1)
		case op < m.GetPct+m.PutPct:
			w.k1 = w.key()
			w.val++
			w.h.Put(w.k1, splitmix(w.val))
		case op < m.GetPct+m.PutPct+m.TransferPct:
			w.k1, w.k2 = w.key(), w.key()
			if w.k1 == w.k2 {
				w.k2 = w.k2%w.keyspace + 1
			}
			_, err = w.h.Txn(false, w.xferFn)
		default:
			w.k1, w.k2 = w.key(), w.key()
			_, err = w.h.Txn(false, w.batchFn)
		}
		if err != nil {
			return err
		}
		if sample {
			w.lat = append(w.lat, time.Since(t0).Nanoseconds())
		}
	}
	return nil
}

// percentiles merges every worker's latency samples and returns p50/p99 in
// microseconds.
func percentiles(workers []*worker) (p50, p99 float64) {
	var all []int64
	for _, w := range workers {
		all = append(all, w.lat...)
	}
	if len(all) == 0 {
		return 0, 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pick := func(q float64) float64 {
		i := int(q * float64(len(all)-1))
		return float64(all[i]) / 1e3
	}
	return pick(0.50), pick(0.99)
}

// splitmix is splitmix64: the value stream generator.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
