package loadgen

import (
	"fmt"
	"math/rand"
	"time"

	"tokentm/stm/kvstore"
)

// Driver abstracts one worker's access to a store for the mode-comparable
// network benchmark: an in-process handle, a sharded handle, or a RESP
// client over TCP. Unlike the classic Run engine (whose transfer/batch
// transactions compute written values from their reads), the driver engine
// issues *blind* generator-supplied writes: a wire protocol has no
// server-side compute, so blind writes are what keep the same seeded op
// stream producing identical final state in every mode — the workers=1
// checksum-equality gate then spans the process boundary.
type Driver interface {
	// Get is a single-key point read.
	Get(key uint64) error
	// Put is a single-key blind write.
	Put(key, val uint64) error
	// Atomic reads every getKeys[i] and blind-writes putVals[i] to
	// putKeys[i], all as one atomic transaction.
	Atomic(getKeys, putKeys, putVals []uint64) error
}

// WireRetrier is implemented by drivers whose transport can surface -RETRY
// (the server's bounded-contention rollback); Retries counts transactions
// that were resent.
type WireRetrier interface {
	Retries() uint64
}

// DriverSetup binds one benchmark mode: a per-worker driver factory plus
// the store-level checksum and stats the Result records. Close (optional)
// releases a worker's driver.
type DriverSetup struct {
	Mode     string // result label: "inproc", "sharded", "net"
	Shards   int    // 0 when the mode has no shard structure
	New      func(worker int) (Driver, error)
	Close    func(worker int, d Driver) error
	Checksum func() (uint64, error)
	Stats    func() kvstore.Stats
}

// handleDriver adapts a kvstore.Handle. The transaction closure is bound
// once; parameters travel through fields so the steady state does not
// allocate.
type handleDriver struct {
	h                         kvstore.Handle
	getKeys, putKeys, putVals []uint64
	fn                        func(kvstore.Tx) error
}

// NewHandleDriver wraps an in-process store handle as a Driver.
func NewHandleDriver(h kvstore.Handle) Driver {
	d := &handleDriver{h: h}
	d.fn = func(tx kvstore.Tx) error {
		for _, k := range d.getKeys {
			tx.Get(k)
		}
		for i, k := range d.putKeys {
			tx.Put(k, d.putVals[i])
		}
		return nil
	}
	return d
}

func (d *handleDriver) Get(key uint64) error {
	d.h.Get(key)
	return nil
}

func (d *handleDriver) Put(key, val uint64) error {
	d.h.Put(key, val)
	return nil
}

func (d *handleDriver) Atomic(getKeys, putKeys, putVals []uint64) error {
	d.getKeys, d.putKeys, d.putVals = getKeys, putKeys, putVals
	_, err := d.h.Txn(false, d.fn)
	return err
}

// driverWorker drives one goroutine's share of a cell through a Driver,
// mirroring the classic worker's zipfian mix and latency sampling.
type driverWorker struct {
	d        Driver
	mix      Mix
	keyspace uint64
	ops      int

	rng  *rand.Rand
	zipf *rand.Zipf
	val  uint64

	getKeys, putKeys, putVals []uint64

	lat []int64
}

func newDriverWorker(d Driver, cfg Config, id, ops int) *driverWorker {
	r := rand.New(rand.NewSource(int64(cfg.Seed) + int64(id)*1337))
	return &driverWorker{
		d:        d,
		mix:      cfg.Mix,
		keyspace: cfg.Keyspace,
		ops:      ops,
		rng:      r,
		zipf:     rand.NewZipf(r, cfg.ZipfS, 1, cfg.Keyspace-1),
		val:      cfg.Seed*0x9e3779b97f4a7c15 + uint64(id) + 1,
		lat:      make([]int64, 0, ops/latencyEvery+1),
	}
}

func (w *driverWorker) key() uint64 {
	rank := w.zipf.Uint64()
	return rank*0x9E3779B1%w.keyspace + 1
}

func (w *driverWorker) nextVal() uint64 {
	w.val++
	return splitmix(w.val)
}

func (w *driverWorker) run() error {
	for i := 0; i < w.ops; i++ {
		sample := i%latencyEvery == 0
		var t0 time.Time
		if sample {
			t0 = time.Now()
		}
		var err error
		op := w.rng.Intn(100)
		switch m := &w.mix; {
		case op < m.GetPct:
			err = w.d.Get(w.key())
		case op < m.GetPct+m.PutPct:
			err = w.d.Put(w.key(), w.nextVal())
		case op < m.GetPct+m.PutPct+m.TransferPct:
			k1, k2 := w.key(), w.key()
			if k1 == k2 {
				k2 = k2%w.keyspace + 1
			}
			w.getKeys = append(w.getKeys[:0], k1, k2)
			w.putKeys = append(w.putKeys[:0], k1, k2)
			w.putVals = append(w.putVals[:0], w.nextVal(), w.nextVal())
			err = w.d.Atomic(w.getKeys, w.putKeys, w.putVals)
		default:
			k1, k2 := w.key(), w.key()
			w.getKeys = w.getKeys[:0]
			w.putKeys = w.putKeys[:0]
			w.putVals = w.putVals[:0]
			for j := 0; j < w.mix.BatchGets; j++ {
				w.getKeys = append(w.getKeys, 1+(k1+uint64(j)-1)%w.keyspace)
			}
			for j := 0; j < w.mix.BatchPuts; j++ {
				w.putKeys = append(w.putKeys, 1+(k2+uint64(j)-1)%w.keyspace)
				w.putVals = append(w.putVals, w.nextVal())
			}
			err = w.d.Atomic(w.getKeys, w.putKeys, w.putVals)
		}
		if err != nil {
			return err
		}
		if sample {
			w.lat = append(w.lat, time.Since(t0).Nanoseconds())
		}
	}
	return nil
}

// PrepopulateDriver inserts every key in 1..keyspace with the same values
// the classic prepopulate uses, in Atomic batches sized for the wire
// protocol's argument bound.
func PrepopulateDriver(d Driver, keyspace, seed uint64) error {
	const batch = 128
	keys := make([]uint64, 0, batch)
	vals := make([]uint64, 0, batch)
	for lo := uint64(1); lo <= keyspace; lo += batch {
		hi := lo + batch
		if hi > keyspace+1 {
			hi = keyspace + 1
		}
		keys, vals = keys[:0], vals[:0]
		for k := lo; k < hi; k++ {
			keys = append(keys, k)
			vals = append(vals, splitmix(k+seed))
		}
		if err := d.Atomic(nil, keys, vals); err != nil {
			return err
		}
	}
	return nil
}

// RunDrivers executes one benchmark cell through a DriverSetup: build one
// driver per worker, prepopulate through worker 0, drive the mix, then
// collect timing plus the setup's checksum and stats. Config.Backend is
// ignored (the setup IS the backend); everything else means what it means
// in Run.
func RunDrivers(setup DriverSetup, cfg Config) (Result, error) {
	if cfg.Workers <= 0 || cfg.Ops <= 0 || cfg.Keyspace == 0 {
		return Result{}, fmt.Errorf("loadgen: bad config %+v", cfg)
	}
	drivers := make([]Driver, cfg.Workers)
	for i := range drivers {
		d, err := setup.New(i)
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: driver %d: %w", i, err)
		}
		drivers[i] = d
	}
	closeAll := func() {
		if setup.Close == nil {
			return
		}
		for i, d := range drivers {
			if d != nil {
				setup.Close(i, d)
			}
		}
	}
	defer closeAll()

	if err := PrepopulateDriver(drivers[0], cfg.Keyspace, cfg.Seed); err != nil {
		return Result{}, err
	}

	workers := make([]*driverWorker, cfg.Workers)
	per := cfg.Ops / cfg.Workers
	for i := range workers {
		ops := per
		if i == 0 {
			ops += cfg.Ops % cfg.Workers
		}
		workers[i] = newDriverWorker(drivers[i], cfg, i, ops)
	}

	start := time.Now()
	done := make(chan error, len(workers))
	for _, w := range workers {
		w := w
		go func() { done <- w.run() }()
	}
	var err error
	for range workers {
		if werr := <-done; werr != nil && err == nil {
			err = werr
		}
	}
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}

	var retries uint64
	for _, d := range drivers {
		if r, ok := d.(WireRetrier); ok {
			retries += r.Retries()
		}
	}
	sum, err := setup.Checksum()
	if err != nil {
		return Result{}, err
	}
	st := setup.Stats()
	res := Result{
		Mix:         cfg.Mix.Name,
		Backend:     setup.Mode,
		Mode:        setup.Mode,
		Shards:      setup.Shards,
		Workers:     cfg.Workers,
		Ops:         cfg.Ops,
		Commits:     st.Commits,
		Aborts:      st.Aborts,
		AbortRate:   st.AbortRate(),
		Checksum:    sum,
		WireRetries: retries,
		ElapsedNS:   elapsed.Nanoseconds(),
	}
	if elapsed > 0 {
		res.Throughput = float64(cfg.Ops) / elapsed.Seconds()
	}
	res.P50Micros, res.P99Micros = driverPercentiles(workers)
	return res, nil
}

func driverPercentiles(workers []*driverWorker) (p50, p99 float64) {
	shim := make([]*worker, len(workers))
	for i, w := range workers {
		shim[i] = &worker{lat: w.lat}
	}
	return percentiles(shim)
}
