package loadgen

import "testing"

func testConfig(backend string, workers int) Config {
	mix, _ := MixByName("read-heavy")
	return Config{
		Backend:  backend,
		Mix:      mix,
		Workers:  workers,
		Ops:      4000,
		Keyspace: 1024,
		Capacity: 4096,
		Seed:     7,
		ZipfS:    1.1,
	}
}

// TestSingleWorkerDeterminism: at workers=1 the op stream is one seeded
// sequence, so every backend must land on the same final-state checksum —
// and re-running a backend must reproduce it exactly.
func TestSingleWorkerDeterminism(t *testing.T) {
	var want uint64
	for _, backend := range []string{"stm", "rwmutex", "tl2-occ"} {
		cfg := testConfig(backend, 1)
		r1, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		r2, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if r1.Checksum != r2.Checksum {
			t.Errorf("%s: checksum not reproducible: %x vs %x", backend, r1.Checksum, r2.Checksum)
		}
		if want == 0 {
			want = r1.Checksum
		} else if r1.Checksum != want {
			t.Errorf("%s: checksum %x diverges from first backend's %x", backend, r1.Checksum, want)
		}
		if r1.Commits == 0 || r1.Throughput <= 0 {
			t.Errorf("%s: empty result %+v", backend, r1)
		}
	}
}

// TestAllMixesAllBackends smoke-runs the full grid shape at small scale.
func TestAllMixesAllBackends(t *testing.T) {
	for _, mix := range Mixes {
		for _, backend := range []string{"stm", "rwmutex", "tl2-occ"} {
			cfg := testConfig(backend, 4)
			cfg.Mix = mix
			cfg.Ops = 2000
			r, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", mix.Name, backend, err)
			}
			if r.Commits < uint64(cfg.Ops) {
				t.Errorf("%s/%s: %d commits for %d ops", mix.Name, backend, r.Commits, cfg.Ops)
			}
			if r.Mix != mix.Name || r.Backend != backend || r.Workers != 4 {
				t.Errorf("%s/%s: mislabeled result %+v", mix.Name, backend, r)
			}
		}
	}
}

func TestMixPercentagesSum(t *testing.T) {
	for _, m := range Mixes {
		if s := m.GetPct + m.PutPct + m.TransferPct + m.BatchPct; s != 100 {
			t.Errorf("mix %s: percentages sum to %d", m.Name, s)
		}
		if m.BatchPct > 0 && (m.BatchGets == 0 || m.BatchPuts == 0) {
			t.Errorf("mix %s: batch ops without batch sizes", m.Name)
		}
	}
}

func TestMixByNameUnknown(t *testing.T) {
	if _, err := MixByName("nope"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestBadConfig(t *testing.T) {
	cfg := testConfig("stm", 0)
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero workers accepted")
	}
	cfg = testConfig("bogus", 1)
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
