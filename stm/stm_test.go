package stm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"tokentm/internal/metastate"
)

// quiesced asserts the token books balance at rest: every metastate word
// must be (0,-) — all tokens returned — once no transaction is running.
// This is the host-side version of the simulator's CheckBookkeeping.
func quiesced(t *testing.T, tm *TM) {
	t.Helper()
	for b := 0; b < tm.NumBlocks(); b++ {
		w := metastate.PackedWord(tm.metaw(uint32(b)).Load())
		if w.Packed() != metastate.PackedZero {
			t.Fatalf("block %d: metastate %#04x (stamp %d) at quiescence, want (0,-)",
				b, uint16(w.Packed()), w.Stamp())
		}
	}
}

func TestCommitAndSerial(t *testing.T) {
	tm := New(16, 8, 2)
	th := tm.Thread(0)
	var serials []uint64
	for i := 0; i < 3; i++ {
		s, err := th.Atomically(func(tx *Tx) error {
			tx.Store(Addr(i*8), uint64(100+i))
			return nil
		})
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		serials = append(serials, s)
	}
	for i := 1; i < len(serials); i++ {
		if serials[i] <= serials[i-1] {
			t.Fatalf("serials not increasing: %v", serials)
		}
	}
	for i := 0; i < 3; i++ {
		if got := tm.LoadWord(Addr(i * 8)); got != uint64(100+i) {
			t.Fatalf("word %d = %d, want %d", i*8, got, 100+i)
		}
	}
	quiesced(t, tm)
}

func TestErrorRollsBack(t *testing.T) {
	tm := New(8, 8, 1)
	tm.StoreWord(0, 7)
	tm.StoreWord(8, 9)
	th := tm.Thread(0)
	errNo := errors.New("no")
	_, err := th.Atomically(func(tx *Tx) error {
		tx.Store(0, 1000)
		tx.Store(8, 2000)
		if tx.Load(0) != 1000 {
			t.Error("read-own-write failed")
		}
		return errNo
	})
	if !errors.Is(err, errNo) {
		t.Fatalf("err = %v, want %v", err, errNo)
	}
	if tm.LoadWord(0) != 7 || tm.LoadWord(8) != 9 {
		t.Fatalf("rollback failed: %d, %d", tm.LoadWord(0), tm.LoadWord(8))
	}
	quiesced(t, tm)
	if s := tm.Stats(); s.Commits != 0 || s.Aborts != 1 {
		t.Fatalf("stats = %+v, want 0 commits / 1 abort", s)
	}
}

// TestUpgradeFoldsReadToken pins the PR 5 bug class on the host side: a
// read-to-write upgrade must fold the upgrader's own read token into the
// all-token claim. If it double-counted, the commit release would leave a
// stranded token (or panic) — quiesced catches both, on commit and abort.
func TestUpgradeFoldsReadToken(t *testing.T) {
	tm := New(8, 8, 1)
	tm.StoreWord(0, 41)
	th := tm.Thread(0)
	if _, err := th.Atomically(func(tx *Tx) error {
		v := tx.Load(0)  // read token
		tx.Store(0, v+1) // upgrade: fold the read token into (T,self)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tm.LoadWord(0) != 42 {
		t.Fatalf("word 0 = %d, want 42", tm.LoadWord(0))
	}
	quiesced(t, tm)
	if s := tm.Stats(); s.Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", s.Upgrades)
	}

	// Same shape, aborted: the undo must restore the value and the release
	// must return all T tokens exactly once.
	boom := errors.New("boom")
	if _, err := th.Atomically(func(tx *Tx) error {
		tx.Store(0, tx.Load(0)*10)
		return boom
	}); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if tm.LoadWord(0) != 42 {
		t.Fatalf("abort rollback: word 0 = %d, want 42", tm.LoadWord(0))
	}
	quiesced(t, tm)
}

func TestPanicReleasesTokens(t *testing.T) {
	tm := New(8, 8, 1)
	tm.StoreWord(16, 5)
	th := tm.Thread(0)
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("user panic swallowed")
			}
		}()
		th.Atomically(func(tx *Tx) error {
			tx.Store(16, 99)
			panic("user bug")
		})
	}()
	if tm.LoadWord(16) != 5 {
		t.Fatalf("panic rollback: word 16 = %d, want 5", tm.LoadWord(16))
	}
	quiesced(t, tm)
	// The thread must be reusable after the panic.
	if _, err := th.Atomically(func(tx *Tx) error { tx.Store(16, 6); return nil }); err != nil {
		t.Fatal(err)
	}
	if tm.LoadWord(16) != 6 {
		t.Fatalf("word 16 = %d after recovery, want 6", tm.LoadWord(16))
	}
}

// TestConcurrentCounter is the classic STM smoke test: every increment to a
// single hot word must survive full contention.
func TestConcurrentCounter(t *testing.T) {
	const workers, incs = 8, 400
	tm := New(4, 8, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := tm.Thread(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				if _, err := th.Atomically(func(tx *Tx) error {
					tx.Store(0, tx.Load(0)+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := tm.LoadWord(0); got != workers*incs {
		t.Fatalf("counter = %d, want %d", got, workers*incs)
	}
	quiesced(t, tm)
	s := tm.Stats()
	if s.Commits != workers*incs {
		t.Fatalf("commits = %d, want %d", s.Commits, workers*incs)
	}
}

// TestConcurrentTransfers checks isolation: random transfers between
// accounts conserve the total, and every in-transaction snapshot of the two
// touched accounts is internally consistent.
func TestConcurrentTransfers(t *testing.T) {
	const workers, accounts, txns, initial = 6, 32, 500, 1000
	tm := New(accounts, 8, workers)
	for a := 0; a < accounts; a++ {
		tm.StoreWord(Addr(a*8), initial)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := tm.Thread(w)
		rng := uint64(w + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				from := Addr(nextRand(&rng) % accounts * 8)
				to := Addr(nextRand(&rng) % accounts * 8)
				if from == to {
					continue
				}
				if _, err := th.Atomically(func(tx *Tx) error {
					f, g := tx.Load(from), tx.Load(to)
					if f == 0 {
						return nil
					}
					tx.Store(from, f-1)
					tx.Store(to, g+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var total uint64
	for a := 0; a < accounts; a++ {
		total += tm.LoadWord(Addr(a * 8))
	}
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d (money not conserved)", total, accounts*initial)
	}
	quiesced(t, tm)
}

// TestLargeFootprintSpillsAndReleases drives one transaction past the
// inline log capacity: the spill path must log, release and roll back
// exactly like the fast path.
func TestLargeFootprintSpillsAndReleases(t *testing.T) {
	const blocks = 3 * inlineLog
	tm := New(blocks, 2, 1)
	th := tm.Thread(0)
	if _, err := th.Atomically(func(tx *Tx) error {
		for b := 0; b < blocks; b++ {
			tx.Store(Addr(b*2), uint64(b))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < blocks; b++ {
		if got := tm.LoadWord(Addr(b * 2)); got != uint64(b) {
			t.Fatalf("word %d = %d, want %d", b*2, got, b)
		}
	}
	quiesced(t, tm)
	s := tm.Stats()
	if s.SlowReleases != 1 || s.FastReleases != 0 {
		t.Fatalf("releases fast=%d slow=%d, want 0/1", s.FastReleases, s.SlowReleases)
	}

	// And the abort of a spilled transaction must undo every write.
	boom := errors.New("boom")
	if _, err := th.Atomically(func(tx *Tx) error {
		for b := 0; b < blocks; b++ {
			tx.Store(Addr(b*2), 7777)
		}
		return boom
	}); !errors.Is(err, boom) {
		t.Fatal("want abort")
	}
	for b := 0; b < blocks; b++ {
		if got := tm.LoadWord(Addr(b * 2)); got != uint64(b) {
			t.Fatalf("abort left word %d = %d, want %d", b*2, got, b)
		}
	}
	quiesced(t, tm)
}

// TestReadersDoNotConflict proves degree-of-parallelism at the protocol
// level: many concurrent read-only transactions over the same blocks commit
// without a single abort.
func TestReadersDoNotConflict(t *testing.T) {
	const workers, reads = 8, 300
	tm := New(16, 8, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := tm.Thread(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				th.Atomically(func(tx *Tx) error {
					var sum uint64
					for b := 0; b < 16; b++ {
						sum += tx.Load(Addr(b * 8))
					}
					_ = sum
					return nil
				})
			}
		}()
	}
	wg.Wait()
	quiesced(t, tm)
	s := tm.Stats()
	if s.Aborts != 0 {
		t.Fatalf("read-only transactions aborted %d times", s.Aborts)
	}
	if s.Commits != workers*reads {
		t.Fatalf("commits = %d, want %d", s.Commits, workers*reads)
	}
}

func TestNestedAtomicallyPanics(t *testing.T) {
	tm := New(4, 8, 1)
	th := tm.Thread(0)
	defer func() {
		if recover() == nil {
			t.Fatal("nested Atomically did not panic")
		}
	}()
	th.Atomically(func(tx *Tx) error {
		th.Atomically(func(tx *Tx) error { return nil })
		return nil
	})
}

func ExampleThread_Atomically() {
	tm := New(64, 8, 4)
	th := tm.Thread(0)
	th.Atomically(func(tx *Tx) error {
		tx.Store(0, tx.Load(0)+1)
		return nil
	})
	fmt.Println(tm.LoadWord(0))
	// Output: 1
}
