package stm

// Group (cross-TM transaction) tests: atomic visibility across shards,
// whole-group rollback when one shard conflicts away, serial bookkeeping,
// and a concurrent transfer stress whose invariant only holds if cross-shard
// commits are truly atomic. Run with -race.

import (
	"errors"
	"sync"
	"testing"
)

func twoShardGroup(t *testing.T, opt Options) (tmA, tmB *TM, g *Group) {
	t.Helper()
	tmA = NewWithOptions(16, 2, 2, opt)
	tmB = NewWithOptions(16, 2, 2, opt)
	return tmA, tmB, NewGroup(tmA.Thread(0), tmB.Thread(0))
}

func TestGroupCommitsAcrossTMs(t *testing.T) {
	tmA, tmB, g := twoShardGroup(t, Options{})
	serials, err := g.Atomically(func(gt *GroupTx) error {
		gt.Tx(0).Store(0, 11)
		gt.Tx(1).Store(0, 22)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if serials[0] == 0 || serials[1] == 0 {
		t.Fatalf("serials = %v, want both nonzero (both shards written)", serials)
	}
	if v := tmA.LoadWord(0); v != 11 {
		t.Errorf("shard A word 0 = %d, want 11", v)
	}
	if v := tmB.LoadWord(0); v != 22 {
		t.Errorf("shard B word 0 = %d, want 22", v)
	}
	if sa, sb := tmA.SerialClock(), tmB.SerialClock(); sa != serials[0] || sb != serials[1] {
		t.Errorf("serial clocks (%d,%d) != returned serials %v", sa, sb, serials)
	}
}

func TestGroupUntouchedShardDrawsNoSerial(t *testing.T) {
	tmA, tmB, g := twoShardGroup(t, Options{})
	serials, err := g.Atomically(func(gt *GroupTx) error {
		gt.Tx(0).Store(0, 1)
		return nil // shard B never touched
	})
	if err != nil {
		t.Fatal(err)
	}
	if serials[0] == 0 || serials[1] != 0 {
		t.Fatalf("serials = %v, want [nonzero, 0]", serials)
	}
	if s := tmB.SerialClock(); s != 0 {
		t.Errorf("untouched shard's serial clock moved to %d", s)
	}
	_ = tmA
}

func TestGroupErrorRollsBackAllShards(t *testing.T) {
	tmA, tmB, g := twoShardGroup(t, Options{})
	boom := errors.New("boom")
	if _, err := g.Atomically(func(gt *GroupTx) error {
		gt.Tx(0).Store(0, 5)
		gt.Tx(1).Store(0, 6)
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if v := tmA.LoadWord(0); v != 0 {
		t.Errorf("shard A word 0 = %d after error, want 0", v)
	}
	if v := tmB.LoadWord(0); v != 0 {
		t.Errorf("shard B word 0 = %d after error, want 0", v)
	}
}

// TestGroupConflictRollsBackOtherShard is the 2PL acid test: the group
// writes shard A, then conflicts away on shard B (a parked writer holds the
// block). With MaxAttempts bounding the retries, the group must surface
// ErrAborted with the shard-A write rolled back — a torn cross-shard commit
// is exactly what Group exists to prevent.
func TestGroupConflictRollsBackOtherShard(t *testing.T) {
	tmA, tmB, g := twoShardGroup(t, Options{SpinLimit: 2, MaxAttempts: 3})
	release := parkWriter(tmB.Thread(1), 0)

	if _, err := g.Atomically(func(gt *GroupTx) error {
		gt.Tx(0).Store(0, 99)
		gt.Tx(1).Load(0) // conflicts with the parked writer forever
		return nil
	}); !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if v := tmA.LoadWord(0); v != 0 {
		t.Errorf("shard A word 0 = %d after group abort, want 0 (rolled back)", v)
	}
	if aborts := tmA.Stats().Aborts; aborts != 3 {
		t.Errorf("shard A aborts = %d, want 3 (every attempt rolled back there too)", aborts)
	}

	// The group is reusable once the conflict clears.
	release()
	serials, err := g.Atomically(func(gt *GroupTx) error {
		gt.Tx(0).Store(0, 1)
		gt.Tx(1).Store(0, 2)
		return nil
	})
	if err != nil || serials[0] == 0 || serials[1] == 0 {
		t.Fatalf("post-conflict group commit: serials=%v err=%v", serials, err)
	}
}

func TestGroupPanics(t *testing.T) {
	tm := New(16, 2, 2)
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("empty group", func() { NewGroup() })
	expectPanic("duplicate TM", func() { NewGroup(tm.Thread(0), tm.Thread(1)) })
	expectPanic("raw thread", func() { NewGroup(&Thread{}) })
}

// TestGroupTransferStress moves value between two shards from concurrent
// groups and checks conservation: the sum over both shards is invariant only
// if every cross-shard transfer commits or aborts atomically. Each goroutine
// also snapshots the two cells inside a group transaction and checks the
// invariant mid-flight, which catches a window where one shard's commit is
// visible before the other's.
func TestGroupTransferStress(t *testing.T) {
	const (
		workers = 4
		rounds  = 300
		total   = uint64(1000)
	)
	tmA := New(8, 2, workers)
	tmB := New(8, 2, workers)
	tmA.StoreWord(0, total) // all value starts on shard A

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		g := NewGroup(tmA.Thread(w), tmB.Thread(w))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 0xb5297a4d
			for i := 0; i < rounds; i++ {
				amount := nextRand(&rng) % 16
				toB := nextRand(&rng)&1 == 0
				if _, err := g.Atomically(func(gt *GroupTx) error {
					a, b := gt.Tx(0), gt.Tx(1)
					va, vb := a.Load(0), b.Load(0)
					if va+vb != total {
						t.Errorf("mid-transaction sum %d+%d != %d", va, vb, total)
					}
					if toB && va >= amount {
						a.Store(0, va-amount)
						b.Store(0, vb+amount)
					} else if !toB && vb >= amount {
						b.Store(0, vb-amount)
						a.Store(0, va+amount)
					}
					return nil
				}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if sum := tmA.LoadWord(0) + tmB.LoadWord(0); sum != total {
		t.Errorf("final sum = %d, want %d", sum, total)
	}
	if c := tmA.Stats().Commits; c == 0 {
		t.Error("no commits recorded on shard A")
	}
}
