package stm

// Per-transaction logs. Small transactions — the common case the paper
// optimizes for — stay entirely within fixed inline arrays: no heap
// traffic, no pointer chasing, and the release walk touches one cache-resident
// struct. Footprints beyond inlineLog entries spill to heap slices whose
// storage is retained across attempts and transactions, so even the slow
// path stops allocating once warm. stats.FastReleases/SlowReleases count
// which path each transaction took.
const inlineLog = 24

// undoEnt records one overwritten word for abort rollback.
type undoEnt struct {
	addr Addr
	old  uint64
}

// txLogs is the attempt-scoped log set: blocks holding read tokens, blocks
// holding write tokens, and word-granular undo records. Undo entries are
// appended per store without deduplication; reverse replay restores the
// oldest value last, which makes duplicates harmless.
type txLogs struct {
	nRead, nWrite, nUndo int

	readInl  [inlineLog]uint32
	writeInl [inlineLog]uint32
	undoInl  [inlineLog]undoEnt

	readSpill  []uint32
	writeSpill []uint32
	undoSpill  []undoEnt
}

// reset empties the logs, retaining spill storage.
func (l *txLogs) reset() {
	l.nRead, l.nWrite, l.nUndo = 0, 0, 0
	l.readSpill = l.readSpill[:0]
	l.writeSpill = l.writeSpill[:0]
	l.undoSpill = l.undoSpill[:0]
}

// inline reports whether the whole footprint stayed within the inline
// arrays — the fast-release criterion.
func (l *txLogs) inline() bool {
	return l.nRead <= inlineLog && l.nWrite <= inlineLog && l.nUndo <= inlineLog
}

func (l *txLogs) appendRead(b uint32) {
	if l.nRead < inlineLog {
		l.readInl[l.nRead] = b
	} else {
		l.readSpill = append(l.readSpill, b)
	}
	l.nRead++
}

func (l *txLogs) readAt(i int) uint32 {
	if i < inlineLog {
		return l.readInl[i]
	}
	return l.readSpill[i-inlineLog]
}

func (l *txLogs) appendWrite(b uint32) {
	if l.nWrite < inlineLog {
		l.writeInl[l.nWrite] = b
	} else {
		l.writeSpill = append(l.writeSpill, b)
	}
	l.nWrite++
}

func (l *txLogs) writeAt(i int) uint32 {
	if i < inlineLog {
		return l.writeInl[i]
	}
	return l.writeSpill[i-inlineLog]
}

// appendUndo records the pre-image of data word a for abort replay. On an
// annotated write path it is the log half of the claim/log/store order.
//
//tokentm:logappend
func (l *txLogs) appendUndo(a Addr, old uint64) {
	if l.nUndo < inlineLog {
		l.undoInl[l.nUndo] = undoEnt{addr: a, old: old}
	} else {
		l.undoSpill = append(l.undoSpill, undoEnt{addr: a, old: old})
	}
	l.nUndo++
}

func (l *txLogs) undoAt(i int) undoEnt {
	if i < inlineLog {
		return l.undoInl[i]
	}
	return l.undoSpill[i-inlineLog]
}
