package tokentm

// Execution-time breakdowns (the paper's Figures 7–9): where do the cycles
// of each variant × workload cell go? Rows are normalized to the workload's
// LogTM-SE_Perf total, so a faster variant's stack is visibly shorter than
// the baseline's 100 — the same presentation the paper uses to explain *why*
// TokenTM wins, not just that it does.

import (
	"fmt"
	"io"
	"text/tabwriter"

	"tokentm/internal/attr"
	"tokentm/internal/harness"
	"tokentm/internal/plot"
	"tokentm/internal/stats"
	"tokentm/internal/workload"
)

// BreakdownRow is one (workload, variant) cell of the execution-time
// breakdown: mean cycles per bucket (machine-wide, summed over cores)
// across the perturbation seeds.
type BreakdownRow struct {
	Workload string
	Variant  Variant
	// Cycles is indexed in attr bucket order (attr.Buckets()).
	Cycles []float64
}

// Total sums the row's buckets.
func (r BreakdownRow) Total() float64 {
	var t float64
	for _, v := range r.Cycles {
		t += v
	}
	return t
}

// RunWorkloadBreakdown is RunWorkload plus the cycle-conservation audit:
// it fails if any core's attribution buckets do not sum exactly to its
// clock.
func RunWorkloadBreakdown(spec workload.Spec, v Variant, scale float64, seed int64) (RunDetail, error) {
	d, sys := runWorkload(spec, v, scale, seed)
	if err := sys.M.CheckConservation(); err != nil {
		return d, fmt.Errorf("%s/%s: %w", spec.Name, v, err)
	}
	return d, nil
}

// WorkloadBreakdown runs one workload on every variant at a single seed,
// enforcing conservation, and returns one row per variant (cmd/tokentm-sim's
// -breakdown report).
func WorkloadBreakdown(spec workload.Spec, scale float64, seed int64) ([]BreakdownRow, error) {
	rows := make([]BreakdownRow, 0, len(Variants()))
	for _, v := range Variants() {
		d, err := RunWorkloadBreakdown(spec, v, scale, seed)
		if err != nil {
			return nil, err
		}
		row := BreakdownRow{Workload: spec.Name, Variant: v, Cycles: make([]float64, attr.NumBuckets)}
		for bi, b := range attr.Buckets() {
			row.Cycles[bi] = float64(d.Breakdown.Get(b))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BreakdownGrid sweeps every workload × variant over the perturbation seeds
// through the harness and aggregates the per-job breakdowns into mean
// cycles per bucket. Results are walked in job order (seed innermost), so
// the rows are identical at any parallelism.
func BreakdownGrid(r *harness.Runner, scale float64, seeds []int64) ([]BreakdownRow, error) {
	specs := workload.Specs()
	variants := Variants()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	vnames := make([]string, len(variants))
	for i, v := range variants {
		vnames[i] = string(v)
	}
	results := r.Sweep(harness.Grid(names, vnames, scale, seeds))

	rows := make([]BreakdownRow, 0, len(specs)*len(variants))
	i := 0
	for _, spec := range specs {
		for _, v := range variants {
			samples := make([]stats.Sample, attr.NumBuckets)
			for range seeds {
				res := results[i]
				i++
				if !res.OK() {
					return nil, fmt.Errorf("job %s failed: %s", res.Job, res.Err)
				}
				for bi, b := range attr.Buckets() {
					samples[bi].Add(float64(res.Outcome.Breakdown[b.String()]))
				}
			}
			row := BreakdownRow{Workload: spec.Name, Variant: v, Cycles: make([]float64, attr.NumBuckets)}
			for bi := range samples {
				row.Cycles[bi] = samples[bi].Mean()
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// baselineTotal returns the workload's LogTM-SE_Perf total — the 100 mark
// every stack in that workload's group is normalized to.
func baselineTotal(rows []BreakdownRow, wl string) float64 {
	for _, r := range rows {
		if r.Workload == wl && r.Variant == VariantLogTMSEPerf {
			return r.Total()
		}
	}
	return 0
}

// WriteBreakdownTable renders the Figure 7-style table: one row per
// workload × variant, one column per bucket, as percent of the workload's
// LogTM-SE_Perf total.
func WriteBreakdownTable(w io.Writer, rows []BreakdownRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Benchmark\tVariant")
	for _, name := range attr.BucketNames() {
		fmt.Fprintf(tw, "\t%s", name)
	}
	fmt.Fprintln(tw, "\ttotal")
	for _, r := range rows {
		base := baselineTotal(rows, r.Workload)
		if base <= 0 {
			base = r.Total()
		}
		fmt.Fprintf(tw, "%s\t%s", r.Workload, r.Variant)
		for _, v := range r.Cycles {
			fmt.Fprintf(tw, "\t%.1f", 100*v/base)
		}
		fmt.Fprintf(tw, "\t%.1f\n", 100*r.Total()/base)
	}
	tw.Flush()
	fmt.Fprintln(w, "(percent of the workload's LogTM-SE_Perf cycles; rows sum to their total)")
}

// WriteBreakdownCharts renders one stacked bar chart per workload, each
// normalized to that workload's LogTM-SE_Perf total (= 100).
func WriteBreakdownCharts(w io.Writer, title string, rows []BreakdownRow) {
	var workloads []string
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Workload] {
			seen[r.Workload] = true
			workloads = append(workloads, r.Workload)
		}
	}
	if title != "" {
		fmt.Fprintln(w, title)
		for range title {
			fmt.Fprint(w, "=")
		}
		fmt.Fprintln(w)
	}
	for _, wl := range workloads {
		base := baselineTotal(rows, wl)
		c := plot.Stacked{
			Title:  wl,
			XLabel: "% of LogTM-SE_Perf cycles",
			Series: attr.BucketNames(),
			Width:  60,
		}
		for _, r := range rows {
			if r.Workload != wl {
				continue
			}
			b := base
			if b <= 0 {
				b = r.Total()
			}
			vals := make([]float64, len(r.Cycles))
			for i, v := range r.Cycles {
				vals[i] = 100 * v / b
			}
			c.Groups = append(c.Groups, string(r.Variant))
			c.Values = append(c.Values, vals)
		}
		c.Render(w)
		fmt.Fprintln(w)
	}
}
