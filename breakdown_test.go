package tokentm

import (
	"strings"
	"testing"

	"tokentm/internal/attr"
	"tokentm/internal/harness"
	"tokentm/internal/workload"
)

// TestCycleConservationAcrossGrid is the end-to-end conservation property:
// every workload × variant cell, run through the same entry point the
// harness uses, must attribute every simulated cycle (ExperimentRun folds
// sim.CheckConservation into its error) and report a breakdown whose
// buckets sum to the core clocks, with every bucket name present.
func TestCycleConservationAcrossGrid(t *testing.T) {
	for _, wl := range workload.Names() {
		for _, v := range Variants() {
			t.Run(wl+"/"+string(v), func(t *testing.T) {
				out, err := ExperimentRun(harness.Job{Workload: wl, Variant: string(v), Scale: 0.005, Seed: 1})
				if err != nil {
					t.Fatal(err)
				}
				if len(out.Breakdown) != int(attr.NumBuckets) {
					t.Fatalf("breakdown has %d buckets, want %d: %v", len(out.Breakdown), attr.NumBuckets, out.Breakdown)
				}
				var sum uint64
				for _, name := range attr.BucketNames() {
					if _, ok := out.Breakdown[name]; !ok {
						t.Fatalf("bucket %q missing from breakdown", name)
					}
					sum += out.Breakdown[name]
				}
				if sum != out.CoreCycleSum {
					t.Fatalf("buckets sum to %d cycles, core clocks to %d", sum, out.CoreCycleSum)
				}
				if out.CoreCycleSum == 0 {
					t.Fatal("core clocks never advanced")
				}
				if out.Breakdown["useful"] == 0 {
					t.Fatal("no cycles classified useful")
				}
			})
		}
	}
}

// TestRunWorkloadBreakdownMatchesAborts cross-checks the lifecycle stream
// against the counters: one abort record per abort, and Wasted cycles
// present exactly when attempts aborted.
func TestRunWorkloadBreakdownMatchesAborts(t *testing.T) {
	spec, ok := workload.ByName("Delaunay")
	if !ok {
		t.Fatal("Delaunay workload missing")
	}
	d, err := RunWorkloadBreakdown(spec, VariantLogTMSE2xH3, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.AbortRecs) != int(d.Metrics.Aborts) {
		t.Fatalf("%d abort records for %d aborts", len(d.AbortRecs), d.Metrics.Aborts)
	}
	wasted := d.Breakdown.Get(attr.Wasted)
	if d.Metrics.Aborts > 0 && wasted == 0 {
		t.Fatalf("%d aborts but no wasted cycles", d.Metrics.Aborts)
	}
	if d.Metrics.Aborts == 0 && wasted != 0 {
		t.Fatalf("no aborts but %d wasted cycles", wasted)
	}
}

// TestWorkloadBreakdownReport smoke-tests the Figure 7-style renderers on
// real rows: one row per variant, table normalized so the LogTM-SE_Perf
// row totals 100, chart legend naming every bucket.
func TestWorkloadBreakdownReport(t *testing.T) {
	spec, ok := workload.ByName("Genome")
	if !ok {
		t.Fatal("Genome workload missing")
	}
	rows, err := WorkloadBreakdown(spec, 0.005, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Variants()) {
		t.Fatalf("%d rows, want %d", len(rows), len(Variants()))
	}

	var table strings.Builder
	WriteBreakdownTable(&table, rows)
	out := table.String()
	for _, v := range Variants() {
		if !strings.Contains(out, string(v)) {
			t.Errorf("table missing variant %s:\n%s", v, out)
		}
	}
	if !strings.Contains(out, "100.0") {
		t.Errorf("baseline row does not total 100:\n%s", out)
	}

	var chart strings.Builder
	WriteBreakdownCharts(&chart, "Breakdown", rows)
	cout := chart.String()
	for _, name := range attr.BucketNames() {
		if !strings.Contains(cout, name) {
			t.Errorf("chart legend missing bucket %q:\n%s", name, cout)
		}
	}
}
