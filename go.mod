module tokentm

go 1.22
