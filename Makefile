# Developer entry points. `make verify` is the tier-1 gate; `make bench`
# records the harness sweep trajectory as BENCH_experiments.json.

GO ?= go

# Small-scale sweep parameters for make bench: the full grid (8 workloads x
# 5 variants) over 3 perturbation seeds. Simulated metrics are
# deterministic; wall-clock fields record this host.
BENCH_SCALE ?= 0.02
BENCH_SEEDS ?= 3
BENCH_PARALLEL ?= 0

# Host STM benchmark grid parameters (make stmbench): transactions per
# cell and interleaved repetitions per cell (best-of, see cmd/tokentm-store).
STM_OPS ?= 60000
STM_REPS ?= 9

# Network benchmark grid parameters (make stmnetbench): the wire modes are
# ~100x slower per op than in-process handles, so the per-cell op count is
# smaller and the worker sweep narrower.
STMNET_OPS ?= 20000
STMNET_REPS ?= 5
STMNET_WORKERS ?= 1,2,4
STMNET_SHARDS ?= 4

.PHONY: verify lint race bench breakdown explore microbench benchgate profile stmbench stmnetbench clean-cache

verify:
	$(GO) build ./...
	$(MAKE) lint
	$(GO) test ./...
	$(GO) run ./cmd/experiments -run verify -scale 0.01 -progress=false
	$(GO) run ./cmd/tokentm-explore -program incr-cross -mutation skip-log-credit -max-schedules 50 > /dev/null 2>&1; \
		if [ $$? -ne 1 ]; then echo "FAIL: seeded mutation skip-log-credit not detected"; exit 1; fi
	@echo "PASS: mutation smoke (seeded protocol bug detected by explorer)"

# Static gates: go vet, gofmt, and the tokentm analyzer suite
# (maporder, wallclock, allocfree with its interprocedural closure,
# exhaustive, atomicfield, logorder — see internal/lint).
lint:
	$(GO) vet ./...
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) run ./cmd/tokentm-lint ./...

# Race-enabled proof that parallel sweeps share no mutable state between
# simulated machines (harness worker pool + scheduler contract), plus the
# host STM stress + serializability suite (stm/...).
race:
	$(GO) test -race ./internal/harness ./internal/sim ./stm/...

bench:
	$(GO) run ./cmd/experiments -run verify,fig1,fig5 \
		-scale $(BENCH_SCALE) -seeds $(BENCH_SEEDS) -parallel $(BENCH_PARALLEL) \
		-json BENCH_experiments.json -json-timing

# Cycle-attribution breakdown sweep (Figures 7-9). Unlike bench, this omits
# -json-timing, so BENCH_breakdown.json is fully deterministic and CI can
# `git diff --exit-code` it after regeneration.
breakdown:
	$(GO) run ./cmd/experiments -run breakdown \
		-scale $(BENCH_SCALE) -seeds $(BENCH_SEEDS) -parallel $(BENCH_PARALLEL) \
		-progress=false -json BENCH_breakdown.json

# Schedule-exploration sweep (stateless model checking): every exploration
# program x variant enumerated exhaustively within the default budget, plus
# the seeded-mutation smoke checks. No wall-clock fields, so
# BENCH_explore.json is fully deterministic and CI diffs it after
# regeneration. Exit 1 on any violation/incomplete cell/missed mutation.
explore:
	$(GO) run ./cmd/tokentm-explore -sweep -json BENCH_explore.json

# Protocol-path microbenchmarks (probe, commit, abort) plus the end-to-end
# small sweep, with allocation counts. Output is benchstat-comparable: save
# BENCH_micro.txt before a change and feed both files to benchstat.
microbench:
	{ $(GO) test -run '^$$' -bench 'Probe|Commit|AbortUnroll' -benchmem -count 3 ./internal/core ; \
	  $(GO) test -run '^$$' -bench 'SmallSweep' -benchmem -count 3 . ; } | tee BENCH_micro.txt

# Units whose regressions fail the benchgate; override for cross-host runs
# (CI gates only the host-independent allocation metrics, at a strict
# tolerance — they are exact counts):
#   make benchgate BENCHGATE_UNITS=B/op,allocs/op BENCHGATE_TOL=0.20
# The local default gates wall clock too, so the tolerance must absorb
# shared-VM noise: nanosecond-scale benchmarks here swing ±40% between
# quiet and noisy windows with no code change.
BENCHGATE_UNITS ?= ns/op,B/op,allocs/op
BENCHGATE_TOL ?= 0.50

# Re-run the microbenchmarks and fail if any metric regressed beyond
# BENCHGATE_TOL against the committed BENCH_micro.txt baseline
# (cmd/benchgate, a dependency-free benchstat).
benchgate:
	{ $(GO) test -run '^$$' -bench 'Probe|Commit|AbortUnroll' -benchmem -count 3 ./internal/core ; \
	  $(GO) test -run '^$$' -bench 'SmallSweep' -benchmem -count 3 . ; } > /tmp/benchgate-new.txt
	$(GO) run ./cmd/benchgate -old BENCH_micro.txt -new /tmp/benchgate-new.txt \
		-tolerance $(BENCHGATE_TOL) -gate '$(BENCHGATE_UNITS)'

# CPU + heap profiles of the hottest protocol path (software-release
# commits). Inspect with `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`.
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkCommit/software' -benchtime 2s \
		-cpuprofile cpu.pprof -memprofile mem.pprof ./internal/core
	@echo "wrote cpu.pprof and mem.pprof (go tool pprof <file>)"

# Host STM benchmark grid: every kvstore backend x mix x worker count on
# real goroutines, via the stm/loadgen zipfian driver. BENCH_stm.json holds
# the grid (schema tokentm-stm/v1); BENCH_stm.txt is benchstat-comparable.
# Reps interleave backends round-robin and keep each cell's best rep, so
# shared noise epochs cancel out of cross-backend ratios (see
# cmd/tokentm-store). `-check` validates schema, grid coverage and the
# workers=1 determinism contract of a recorded report.
stmbench:
	$(GO) run ./cmd/tokentm-store -bench -ops $(STM_OPS) -reps $(STM_REPS) \
		-json BENCH_stm.json -text BENCH_stm.txt
	$(GO) run ./cmd/tokentm-store -check BENCH_stm.json

# Network benchmark grid: the same blind-write zipfian mixes through three
# access modes — unsharded in-process, sharded in-process, and a live
# stm/server over a loopback socket (schema tokentm-stmnet/v1). At
# workers=1 all three modes must reach the same final-state checksum: one
# seeded op stream, three executions, one state — checked at bench time and
# by `-check`. Loopback numbers measure protocol overhead, not networks;
# read the cross-mode ratios, not the absolute ops/s.
stmnetbench:
	$(GO) run ./cmd/tokentm-store -netbench -ops $(STMNET_OPS) -reps $(STMNET_REPS) \
		-workers $(STMNET_WORKERS) -shards $(STMNET_SHARDS) \
		-json BENCH_stmnet.json -text BENCH_stmnet.txt
	$(GO) run ./cmd/tokentm-store -check BENCH_stmnet.json

clean-cache:
	rm -rf .expcache
