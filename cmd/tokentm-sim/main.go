// Command tokentm-sim runs one workload on one HTM variant and prints a
// detailed report: cycles, transaction statistics, conflict breakdown,
// memory-system counters and (for TokenTM) commit kinds.
//
// Usage:
//
//	tokentm-sim -workload Delaunay -variant TokenTM -scale 0.05 -seed 1
//	tokentm-sim -workload Delaunay -breakdown
//	tokentm-sim -list
//
// -breakdown runs the chosen workload on every variant and prints the
// Figure 7-style execution-time breakdown (cycle-attribution buckets as
// percent of the LogTM-SE_Perf total), enforcing exact cycle conservation.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"tokentm"
	"tokentm/internal/stats"
	"tokentm/internal/trace"
	"tokentm/internal/workload"
)

func main() {
	name := flag.String("workload", "Genome", "workload name (see -list)")
	variant := flag.String("variant", "TokenTM", "HTM variant: TokenTM, TokenTM_NoFast, LogTM-SE_Perf, LogTM-SE_2xH3, LogTM-SE_4xH3")
	scale := flag.Float64("scale", 0.05, "fraction of the paper's transaction count")
	seed := flag.Int64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list workloads and exit")
	traceN := flag.Int("trace", 0, "dump the last N HTM events after the run")
	breakdown := flag.Bool("breakdown", false, "run all variants and print the execution-time breakdown (Figure 7 style)")
	flag.Parse()

	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Workload\tSuite\tInput\tXacts\tAvg RS\tAvg WS\tMax RS\tMax WS")
		for _, s := range workload.Specs() {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.1f\t%.1f\t%d\t%d\n",
				s.Name, s.Suite, s.Input, s.NumXacts, s.AvgRead, s.AvgWrite, s.MaxRead, s.MaxWrite)
		}
		tw.Flush()
		return
	}

	spec, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (use -list)\n", *name)
		os.Exit(1)
	}

	if *breakdown {
		rows, err := tokentm.WorkloadBreakdown(spec, *scale, *seed)
		if err != nil {
			// A conservation violation is a simulator bug, not a user error.
			fmt.Fprintln(os.Stderr, "breakdown:", err)
			os.Exit(1)
		}
		fmt.Printf("workload=%s scale=%g seed=%d\n\n", spec.Name, *scale, *seed)
		tokentm.WriteBreakdownTable(os.Stdout, rows)
		fmt.Println()
		tokentm.WriteBreakdownCharts(os.Stdout, "", rows)
		return
	}

	var d tokentm.RunDetail
	var tr *trace.Tracer
	if *traceN > 0 {
		tr = trace.NewTracer(*traceN)
		sys := tokentm.New(tokentm.Config{Variant: tokentm.Variant(*variant), Cores: 32, Seed: *seed})
		sys.M.SetHTM(trace.Wrap(sys.HTM, tr))
		spec.Build(sys.M, 32, *scale, *seed)
		cycles := sys.Run()
		d = tokentm.RunDetail{
			Workload: spec.Name,
			Variant:  tokentm.Variant(*variant),
			Cycles:   cycles,
			Commits:  sys.M.Commits,
			Metrics:  *sys.HTM.Stats(),
		}
		if tok := sys.TokenTM(); tok != nil {
			d.FastCommits = tok.FastCommits
			d.SlowCommits = tok.SlowCommits
		}
	} else {
		d = tokentm.RunWorkload(spec, tokentm.Variant(*variant), *scale, *seed)
	}

	fmt.Printf("workload=%s variant=%s scale=%g seed=%d\n", d.Workload, d.Variant, *scale, *seed)
	fmt.Printf("execution: %d cycles, %d committed transactions\n\n", d.Cycles, len(d.Commits))

	var rs, ws, dur stats.Sample
	var logStall, release float64
	fast := 0
	for _, c := range d.Commits {
		rs.Add(float64(c.ReadBlocks))
		ws.Add(float64(c.WriteBlocks))
		dur.Add(float64(c.Duration))
		logStall += float64(c.LogStall)
		release += float64(c.ReleaseCycles)
		if c.Fast {
			fast++
		}
	}
	if rs.N() > 0 {
		// Max is NaN on an empty sample; a run with zero commits prints the
		// count above and skips the per-commit shape lines.
		fmt.Printf("read set:  avg %.1f max %.0f blocks\n", rs.Mean(), rs.Max())
		fmt.Printf("write set: avg %.1f max %.0f blocks\n", ws.Mean(), ws.Max())
		fmt.Printf("duration:  avg %.0f max %.0f cycles\n", dur.Mean(), dur.Max())
	}
	fmt.Println()

	m := d.Metrics
	fmt.Printf("conflicts=%d (read-vs-writer %d, write-vs-readers %d, write-vs-writer %d, non-transactional %d)\n",
		m.Conflicts, m.ReadVsWriter, m.WriteVsReaders, m.WriteVsWriter, m.NonXactConf)
	fmt.Printf("stalls=%d aborts=%d false-positive conflicts=%d hard-case log walks=%d\n",
		m.Stalls, m.Aborts, m.FalseConflicts, m.HardCaseLookups)

	if d.FastCommits+d.SlowCommits > 0 {
		fmt.Printf("\nTokenTM: fast token release commits=%d software release commits=%d (%.1f%% fast)\n",
			d.FastCommits, d.SlowCommits,
			100*float64(d.FastCommits)/float64(d.FastCommits+d.SlowCommits))
		fmt.Printf("total software release time=%.0f cycles, total log stall=%.0f cycles\n", release, logStall)
	}

	if tr != nil {
		fmt.Printf("\n--- last %d of %d HTM events ---\n", tr.Len(), tr.Total())
		tr.Dump(os.Stdout)
	}
}
