// Command benchgate compares two `go test -bench` output files and fails
// when a benchmark regressed beyond a tolerance — a dependency-free
// benchstat for CI gating.
//
//	benchgate -old BENCH_micro.txt -new /tmp/bench.txt -tolerance 0.20
//
// Each metric (ns/op, B/op, allocs/op) is summarized per benchmark by the
// median across repetitions (robust against a single noisy rep at the
// typical -count 3). A benchmark regresses when its new median exceeds the
// old median by more than the tolerance; a baseline benchmark missing from
// the new file is also a failure (a silently dropped gate is a regression
// in coverage, not an improvement). New benchmarks absent from the
// baseline are reported but never fail.
//
// Exit status: 0 when every shared benchmark is within tolerance, 1 on any
// regression or parse failure.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics are the per-rep measurements benchgate understands, keyed by the
// benchmark output unit.
var units = []string{"ns/op", "B/op", "allocs/op"}

// sample accumulates one benchmark's repetitions, per unit.
type sample map[string][]float64

// parseBench reads `go test -bench` output: every line starting with
// "Benchmark" contributes its unit/value pairs. Lines that do not parse as
// benchmark results (headers, PASS/ok trailers) are skipped.
func parseBench(path string) (map[string]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]sample)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, vals, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		s := out[name]
		if s == nil {
			s = make(sample)
			out[name] = s
		}
		for unit, v := range vals {
			s[unit] = append(s[unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines", path)
	}
	return out, nil
}

// parseLine extracts one result line:
//
//	BenchmarkProbe/miss  54393426  21.53 ns/op  0 B/op  0 allocs/op
func parseLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	// fields[1] is the iteration count; value/unit pairs follow.
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false
	}
	vals := make(map[string]float64)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		vals[fields[i+1]] = v
	}
	if len(vals) == 0 {
		return "", nil, false
	}
	return fields[0], vals, true
}

// median summarizes one unit's repetitions.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare gates new against old, writing a report line per benchmark/unit.
// It returns the regression count. Units absent from gated are still
// reported but never count as regressions (CI gates only the
// host-independent allocation metrics; ns/op across different machines is
// weather, not signal).
func compare(old, new map[string]sample, tol float64, gated map[string]bool, w *strings.Builder) int {
	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		ns, ok := new[name]
		if !ok {
			fmt.Fprintf(w, "MISSING  %s: in baseline but not in new run\n", name)
			regressions++
			continue
		}
		os := old[name]
		for _, unit := range units {
			ovs, nvs := os[unit], ns[unit]
			if len(ovs) == 0 || len(nvs) == 0 {
				continue
			}
			om, nm := median(ovs), median(nvs)
			status, delta := verdict(om, nm, tol)
			if status == "WORSE" {
				if gated[unit] {
					regressions++
				} else {
					status = "WORSE*" // beyond tolerance but not gated
				}
			}
			fmt.Fprintf(w, "%-8s %s %s: %s -> %s (%+.1f%%)\n",
				status, name, unit, format(om, unit), format(nm, unit), delta*100)
		}
	}
	// New benchmarks are informational only.
	extra := make([]string, 0)
	for name := range new {
		if _, ok := old[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(w, "NEW      %s: not in baseline\n", name)
	}
	return regressions
}

// verdict classifies one metric change against the tolerance.
func verdict(om, nm, tol float64) (string, float64) {
	var delta float64
	switch {
	case om == 0 && nm == 0:
		return "SAME", 0
	case om == 0:
		// From zero: any appearance of cost is a regression (allocs/op
		// going 0 -> n is exactly the case this guards).
		return "WORSE", 1
	default:
		delta = nm/om - 1
	}
	switch {
	case delta > tol:
		return "WORSE", delta
	case delta < -tol:
		return "BETTER", delta
	default:
		return "SAME", delta
	}
}

// format renders a value in its unit's natural precision.
func format(v float64, unit string) string {
	if unit == "ns/op" && v < 1000 {
		return fmt.Sprintf("%.1f%s", v, unit)
	}
	return fmt.Sprintf("%.0f%s", v, unit)
}

func main() {
	oldPath := flag.String("old", "BENCH_micro.txt", "baseline benchmark output")
	newPath := flag.String("new", "", "fresh benchmark output to gate")
	tol := flag.Float64("tolerance", 0.20, "allowed fractional regression per metric")
	gateList := flag.String("gate", "ns/op,B/op,allocs/op",
		"comma-separated units whose regressions fail the gate; others are report-only")
	flag.Parse()
	gated := make(map[string]bool)
	for _, u := range strings.Split(*gateList, ",") {
		if u = strings.TrimSpace(u); u != "" {
			gated[u] = true
		}
	}
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -new is required")
		os.Exit(2)
	}
	old, err := parseBench(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	fresh, err := parseBench(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	var report strings.Builder
	regressions := compare(old, fresh, *tol, gated, &report)
	fmt.Print(report.String())
	if regressions > 0 {
		fmt.Printf("benchgate: %d regression(s) beyond %.0f%% tolerance\n", regressions, *tol*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: all benchmarks within %.0f%% of baseline\n", *tol*100)
}
