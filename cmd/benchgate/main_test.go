package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseline = `goos: linux
pkg: tokentm/internal/core
BenchmarkProbe/miss  	54393426	        21.53 ns/op	       0 B/op	       0 allocs/op
BenchmarkProbe/miss  	51447789	        22.89 ns/op	       0 B/op	       0 allocs/op
BenchmarkProbe/miss  	54599262	        22.71 ns/op	       0 B/op	       0 allocs/op
BenchmarkSmallSweep 	      12	  95627579 ns/op	28623036 B/op	   31746 allocs/op
BenchmarkSmallSweep 	      12	 101526727 ns/op	28628976 B/op	   31746 allocs/op
BenchmarkSmallSweep 	      13	  93740958 ns/op	28637116 B/op	   31747 allocs/op
PASS
ok  	tokentm/internal/core	22.450s
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, oldText, newText string) (int, string) {
	t.Helper()
	old, err := parseBench(writeTemp(t, "old.txt", oldText))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := parseBench(writeTemp(t, "new.txt", newText))
	if err != nil {
		t.Fatal(err)
	}
	var report strings.Builder
	gated := map[string]bool{"ns/op": true, "B/op": true, "allocs/op": true}
	return compare(old, fresh, 0.20, gated, &report), report.String()
}

func TestParseBenchLine(t *testing.T) {
	name, vals, ok := parseLine("BenchmarkProbe/miss  \t54393426\t        21.53 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok || name != "BenchmarkProbe/miss" {
		t.Fatalf("parse failed: ok=%v name=%q", ok, name)
	}
	if vals["ns/op"] != 21.53 || vals["allocs/op"] != 0 {
		t.Fatalf("values: %v", vals)
	}
	if _, _, ok := parseLine("PASS"); ok {
		t.Fatal("PASS line parsed as a result")
	}
	if _, _, ok := parseLine("ok  \ttokentm\t3.870s"); ok {
		t.Fatal("trailer line parsed as a result")
	}
}

func TestWithinToleranceIsClean(t *testing.T) {
	// 10% slower sweep: inside the 20% gate.
	fresh := strings.ReplaceAll(baseline, "95627579", "105190336")
	regressions, report := run(t, baseline, fresh)
	if regressions != 0 {
		t.Fatalf("clean run flagged %d regressions:\n%s", regressions, report)
	}
}

func TestRegressionFails(t *testing.T) {
	fresh := `BenchmarkProbe/miss  	54393426	        31.53 ns/op	       0 B/op	       0 allocs/op
BenchmarkSmallSweep 	      12	  95627579 ns/op	28623036 B/op	   31746 allocs/op
`
	regressions, report := run(t, baseline, fresh)
	if regressions != 1 {
		t.Fatalf("want 1 regression (Probe/miss ns/op +~40%%), got %d:\n%s", regressions, report)
	}
	if !strings.Contains(report, "WORSE    BenchmarkProbe/miss ns/op") {
		t.Fatalf("report missing the regression line:\n%s", report)
	}
}

func TestZeroAllocBaselineGuard(t *testing.T) {
	// allocs/op going 0 -> 2 must fail even though the ratio is undefined.
	// All three reps move so the median moves too.
	fresh := strings.ReplaceAll(baseline,
		"       0 B/op\t       0 allocs/op",
		"      64 B/op\t       2 allocs/op")
	regressions, report := run(t, baseline, fresh)
	if regressions == 0 {
		t.Fatalf("0 -> 2 allocs/op passed the gate:\n%s", report)
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	fresh := `BenchmarkProbe/miss  	54393426	        21.53 ns/op	       0 B/op	       0 allocs/op
`
	regressions, report := run(t, baseline, fresh)
	if regressions == 0 {
		t.Fatal("dropped baseline benchmark passed the gate")
	}
	if !strings.Contains(report, "MISSING  BenchmarkSmallSweep") {
		t.Fatalf("report missing the MISSING line:\n%s", report)
	}
}

func TestUngatedUnitIsReportOnly(t *testing.T) {
	// A large ns/op regression with ns/op excluded from the gate (the CI
	// configuration: wall clock differs across hosts) must report WORSE*
	// but exit clean.
	old, err := parseBench(writeTemp(t, "old.txt", baseline))
	if err != nil {
		t.Fatal(err)
	}
	doubled := strings.NewReplacer(
		"21.53 ns/op", "43.06 ns/op",
		"22.89 ns/op", "45.78 ns/op",
		"22.71 ns/op", "45.42 ns/op",
	).Replace(baseline)
	fresh, err := parseBench(writeTemp(t, "new.txt", doubled))
	if err != nil {
		t.Fatal(err)
	}
	var report strings.Builder
	gated := map[string]bool{"B/op": true, "allocs/op": true}
	if n := compare(old, fresh, 0.20, gated, &report); n != 0 {
		t.Fatalf("ungated ns/op regression failed the gate (%d):\n%s", n, report.String())
	}
	if !strings.Contains(report.String(), "WORSE*   BenchmarkProbe/miss ns/op") {
		t.Fatalf("report missing the WORSE* advisory line:\n%s", report.String())
	}
}

func TestImprovementIsNotARegression(t *testing.T) {
	// 10x faster sweep with fewer allocations: BETTER, exit clean.
	fresh := strings.ReplaceAll(baseline, "  95627579 ns/op\t28623036 B/op\t   31746 allocs/op",
		"   9562757 ns/op\t  286230 B/op\t     317 allocs/op")
	fresh = strings.ReplaceAll(fresh, " 101526727 ns/op\t28628976 B/op\t   31746 allocs/op",
		"   9562757 ns/op\t  286230 B/op\t     317 allocs/op")
	fresh = strings.ReplaceAll(fresh, "  93740958 ns/op\t28637116 B/op\t   31747 allocs/op",
		"   9562757 ns/op\t  286230 B/op\t     317 allocs/op")
	regressions, report := run(t, baseline, fresh)
	if regressions != 0 {
		t.Fatalf("improvement flagged as regression:\n%s", report)
	}
	if !strings.Contains(report, "BETTER") {
		t.Fatalf("report missing BETTER line:\n%s", report)
	}
}
