// Command tokentm-lint is the multichecker for the tokentm static-analysis
// suite (internal/lint): it loads the requested packages from source,
// collects module-wide facts, and runs the maporder, wallclock, allocfree,
// exhaustive, atomicfield and logorder analyzers, honoring //lint:ignore
// directives. `make lint` runs it together with go vet over the whole
// module.
//
// Usage:
//
//	tokentm-lint [-analyzers name,name] [packages]
//
// Packages default to ./... and accept any `go list` pattern. The process
// working directory must be inside the module (imports resolve from
// source). Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"tokentm/internal/lint"
	"tokentm/internal/lint/analysis"
)

type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

func main() {
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tokentm-lint [-analyzers name,name] [packages]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tokentm-lint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := listPackages(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tokentm-lint:", err)
		os.Exit(2)
	}

	// Phase 1: load everything, so fact collection sees the whole module
	// (atomic-field usage and the allocfree call graph are cross-package).
	loader := lint.NewLoader()
	var loaded []*lint.Package
	for _, lp := range pkgs {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := loader.Load(lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tokentm-lint:", err)
			os.Exit(2)
		}
		loaded = append(loaded, pkg)
	}
	facts := lint.CollectFacts(loaded)

	// Phase 2: run the analyzers package by package against the shared
	// fact index.
	findings := 0
	for _, pkg := range loaded {
		for _, d := range lint.RunWithFacts(pkg, analyzers, facts) {
			pos := loader.Fset().Position(d.Pos)
			fmt.Printf("%s:%d:%d: %s: %s\n", relPath(pos.Filename), pos.Line, pos.Column, d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "tokentm-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	all := lint.Analyzers()
	if names == "" {
		return all, nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		found := false
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	return out, nil
}

// listPackages resolves the patterns through `go list -json`.
func listPackages(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(out)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
	}
	return pkgs, nil
}

func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}
