// Command tokentm-explore is the schedule-exploration (stateless model
// checking) front end: it drives the simulated HTM variants through many
// distinct schedules of small transactional programs and checks the token
// protocol's invariants after every step.
//
// Usage:
//
//	tokentm-explore [flags]                   explore one program/variant cell
//	tokentm-explore -sweep [-json out.json]   full standard sweep + mutation smoke
//	tokentm-explore -replay R0.R1.P0.B.R0 ... re-run one schedule (with -trace)
//
// Exit status: 0 clean, 1 violations found (or a mutation missed), 2 usage
// error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tokentm/internal/core"
	"tokentm/internal/explore"
	"tokentm/internal/trace"
)

func main() {
	var (
		program   = flag.String("program", "incr-cross", "standard program to explore (see -list)")
		variant   = flag.String("variant", "TokenTM", "HTM variant: "+strings.Join(explore.Variants, ", "))
		mode      = flag.String("mode", explore.ModeExhaustive, "exploration mode: exhaustive or swarm")
		mutation  = flag.String("mutation", "none", "seeded protocol bug: none, no-fission-writer, skip-log-credit")
		schedules = flag.Int("max-schedules", explore.DefaultBudget().MaxSchedules, "schedule budget")
		steps     = flag.Int("max-steps", explore.DefaultBudget().MaxSteps, "per-schedule step bound (livelock limit)")
		depth     = flag.Int("branch-depth", explore.DefaultBudget().BranchDepth, "branch only in the first N decisions (0 = unbounded)")
		preempts  = flag.Int("preempts", explore.DefaultBudget().Preempts, "adversary context-switch budget per schedule")
		bounces   = flag.Int("bounces", explore.DefaultBudget().Bounces, "adversary page-out/page-in budget per schedule")
		seed      = flag.Int64("seed", explore.DefaultBudget().Seed, "seed (swarm sampling and machine RNG)")
		noSleep   = flag.Bool("no-sleep-sets", false, "disable commuting-siblings pruning")
		sweep     = flag.Bool("sweep", false, "run the full standard sweep (all programs x variants + mutation smoke)")
		jsonOut   = flag.String("json", "", "write the sweep as JSON to this file (- for stdout; implies -sweep)")
		replay    = flag.String("replay", "", "replay one schedule (counterexample) instead of exploring")
		withTrace = flag.Bool("trace", false, "with -replay: dump the protocol event trace")
		list      = flag.Bool("list", false, "list standard programs and exit")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "tokentm-explore: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	if *list {
		for _, p := range explore.StandardPrograms() {
			fmt.Printf("%-16s %d cores, %d threads, %d blocks, %d txns\n",
				p.Name, p.Cores, len(p.Threads), p.Blocks, p.Txns())
		}
		return
	}

	mut, ok := core.MutationByName(*mutation)
	if !ok {
		fmt.Fprintf(os.Stderr, "tokentm-explore: unknown mutation %q\n", *mutation)
		os.Exit(2)
	}

	if *jsonOut != "" {
		*sweep = true
	}
	if *sweep {
		runSweep(*jsonOut)
		return
	}

	prog := explore.ProgramByName(*program)
	if prog == nil {
		fmt.Fprintf(os.Stderr, "tokentm-explore: unknown program %q (try -list)\n", *program)
		os.Exit(2)
	}

	if *replay != "" {
		runReplay(prog, *variant, mut, *replay, *seed, *steps, *withTrace)
		return
	}

	opts := explore.Options{
		Variant:      *variant,
		Mutation:     mut,
		Mode:         *mode,
		MaxSchedules: *schedules,
		MaxSteps:     *steps,
		BranchDepth:  *depth,
		Preempts:     *preempts,
		Bounces:      *bounces,
		SleepSets:    !*noSleep,
		Seed:         *seed,
	}
	r := explore.Explore(prog, opts)
	fmt.Printf("%s/%s (%s): %d schedules, %d steps, %d distinct states, pruned %d seen + %d sleep, max depth %d, complete=%v\n",
		r.Program, r.Variant, r.Mode, r.Schedules, r.Steps, r.DistinctStates,
		r.PrunedVisited, r.PrunedSleep, r.MaxDepth, r.Complete)
	fmt.Printf("  %d commits, %d aborts, %d violating schedules\n", r.Commits, r.Aborts, r.TotalViolations)
	for _, v := range r.Violations {
		fmt.Printf("VIOLATION %s at step %d: %s\n  replay: tokentm-explore -program %s -variant %s -mutation %s -replay %s\n",
			v.Kind, v.Step, v.Message, r.Program, r.Variant, mut, v.Schedule)
	}
	if r.TotalViolations > 0 {
		os.Exit(1)
	}
}

func runSweep(jsonOut string) {
	sw := explore.StandardSweep(explore.DefaultBudget())
	switch jsonOut {
	case "":
		explore.WriteTable(os.Stdout, sw)
	case "-":
		if err := explore.WriteJSON(os.Stdout, sw); err != nil {
			fmt.Fprintln(os.Stderr, "tokentm-explore:", err)
			os.Exit(2)
		}
	default:
		f, err := os.Create(jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tokentm-explore:", err)
			os.Exit(2)
		}
		if err := explore.WriteJSON(f, sw); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tokentm-explore:", err)
			os.Exit(2)
		}
		explore.WriteTable(os.Stdout, sw)
	}
	if fails := sw.Failures(); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		os.Exit(1)
	}
}

func runReplay(prog *explore.Program, variant string, mut core.Mutation, schedule string, seed int64, maxSteps int, withTrace bool) {
	var tr *trace.Tracer
	if withTrace {
		tr = trace.NewTracer(1 << 16)
	}
	rr, err := explore.Replay(prog, variant, mut, schedule, seed, maxSteps, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tokentm-explore:", err)
		os.Exit(2)
	}
	fmt.Printf("replayed %s/%s mutation=%s: %d steps, schedule %s\n", prog.Name, variant, mut, rr.Steps, rr.Schedule)
	if tr != nil {
		tr.Dump(os.Stdout)
	}
	if rr.Violation != nil {
		fmt.Printf("VIOLATION %s at step %d: %s\n", rr.Violation.Kind, rr.Violation.Step, rr.Violation.Message)
		os.Exit(1)
	}
	fmt.Printf("clean: %d commits, %d aborts, fingerprint %#x\n", len(rr.Commits), rr.Aborts, rr.Fingerprint)
}
