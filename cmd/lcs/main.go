// Command lcs runs the DTrace-like long-running-critical-section analysis
// of the four lock-based server models and prints the paper's Table 1.
package main

import (
	"flag"
	"os"

	"tokentm"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()
	tokentm.WriteTable1(os.Stdout, tokentm.Table1(*seed))
}
