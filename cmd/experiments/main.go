// Command experiments regenerates every table and figure in the paper's
// evaluation section.
//
// Usage:
//
//	experiments -run all            # everything (slow at full scale)
//	experiments -run fig5 -scale 0.05 -seeds 3
//	experiments -run table1,table6
//	experiments -run fig5 -parallel 8 -cache-dir .expcache -json sweep.json
//	experiments -run verify         # seed-invariance correctness gate
//
// Scale shrinks the Table 5 transaction counts proportionally; the paper's
// full counts correspond to -scale 1.
//
// The figure sweeps run on the internal/harness job system: -parallel sets
// the worker-pool size (default GOMAXPROCS), -cache-dir enables the on-disk
// result cache (interrupted sweeps resume, re-runs are instant), -json
// writes the per-job results as a tokentm-harness/v1 document, and progress
// is reported per job on stderr (disable with -progress=false). Without
// -json-timing the JSON is deterministic: byte-identical at any -parallel.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tokentm"
	"tokentm/internal/harness"
)

func main() {
	run := flag.String("run", "all", "comma-separated: table1,table2,table3,table4,table5,table6,fig1,fig5,breakdown,verify,explore,all")
	scale := flag.Float64("scale", 0.05, "fraction of the paper's per-workload transaction counts")
	seeds := flag.Int("seeds", 3, "number of perturbed runs (error bars) for fig1/fig5")
	chart := flag.Bool("chart", false, "render fig1/fig5 as ASCII bar charts in addition to tables")
	seed := flag.Int64("seed", 1, "base seed")
	parallel := flag.Int("parallel", 0, "harness worker-pool size (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "on-disk result cache directory (empty = no cache)")
	jsonOut := flag.String("json", "", "write per-job sweep results as JSON to this path (\"-\" = stdout)")
	jsonTiming := flag.Bool("json-timing", false, "include host wall-clock and worker count in -json output (non-deterministic)")
	progress := flag.Bool("progress", true, "report per-job sweep progress on stderr")
	flag.Parse()

	want := map[string]bool{}
	for _, s := range strings.Split(*run, ",") {
		want[strings.TrimSpace(s)] = true
	}
	all := want["all"]
	out := os.Stdout

	var progw io.Writer
	if *progress {
		progw = os.Stderr
	}
	runner := tokentm.NewRunner(tokentm.SweepOptions{
		Parallel:    *parallel,
		CacheDir:    *cacheDir,
		Progress:    progw,
		KeepHistory: *jsonOut != "",
	})

	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = *seed + int64(i)
	}

	section := func(title string) func() {
		fmt.Fprintf(out, "==== %s ====\n", title)
		t0 := time.Now()
		return func() { fmt.Fprintf(out, "(%.1fs)\n\n", time.Since(t0).Seconds()) }
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	sweepStart := time.Now()

	if want["verify"] {
		done := section(fmt.Sprintf("Verify: cross-run identity + seed-invariance gate (scale=%.3g, seeds %d/%d)", *scale, *seed, *seed+1))
		errs := tokentm.VerifyGrid(runner, *scale, *seed, *seed+1)
		if len(errs) == 0 {
			fmt.Fprintln(out, "PASS: all workload x variant cells run-identical and seed-invariant")
		} else {
			for _, err := range errs {
				fmt.Fprintln(out, "FAIL:", err)
			}
		}
		done()
		if len(errs) > 0 {
			os.Exit(1)
		}
	}
	if want["explore"] {
		done := section("Explore: schedule exploration (stateless model checking) of the token protocol")
		fails := tokentm.ExploreSweep(out)
		if len(fails) == 0 {
			fmt.Fprintln(out, "PASS: all program x variant cells enumerated completely, invariants hold, seeded mutations detected")
		} else {
			for _, f := range fails {
				fmt.Fprintln(out, "FAIL:", f)
			}
		}
		done()
		if len(fails) > 0 {
			os.Exit(1)
		}
	}
	if all || want["table1"] {
		done := section("Table 1: Long-running Critical Sections (LCS)")
		tokentm.WriteTable1(out, tokentm.Table1(*seed))
		done()
	}
	if all || want["table2"] {
		done := section("Table 2: Common Metastate Transitions")
		tokentm.WriteTable2(out)
		done()
	}
	if all || want["table3"] {
		done := section("Table 3: Metastate Fission and Fusion")
		tokentm.WriteTable3(out)
		done()
	}
	if all || want["table4"] {
		done := section("Table 4: Metabit Encodings")
		tokentm.WriteTable4(out)
		done()
	}
	if all || want["table5"] {
		done := section(fmt.Sprintf("Table 5: Workload Parameters (measured, scale=%.3g)", *scale))
		tokentm.WriteTable5(out, tokentm.Table5(*scale, *seed))
		done()
	}
	if all || want["fig1"] {
		done := section(fmt.Sprintf("Figure 1: Effect of False Positives (speedup vs LogTM-SE_Perf, scale=%.3g, %d seeds)", *scale, *seeds))
		rows, err := tokentm.Figure1With(runner, *scale, seedList)
		if err != nil {
			fail(err)
		}
		vs := []tokentm.Variant{tokentm.VariantLogTMSEPerf, tokentm.VariantLogTMSE2xH3, tokentm.VariantLogTMSE4xH3}
		tokentm.WriteSpeedups(out, rows, vs)
		if *chart {
			fmt.Fprintln(out)
			tokentm.WriteSpeedupChart(out, "Figure 1. Effect of False Positives", rows, vs)
		}
		done()
	}
	if all || want["fig5"] {
		done := section(fmt.Sprintf("Figure 5: TokenTM Performance (speedup vs LogTM-SE_Perf, scale=%.3g, %d seeds)", *scale, *seeds))
		rows, err := tokentm.Figure5With(runner, *scale, seedList)
		if err != nil {
			fail(err)
		}
		tokentm.WriteSpeedups(out, rows, tokentm.Variants())
		if *chart {
			fmt.Fprintln(out)
			tokentm.WriteSpeedupChart(out, "Figure 5. TokenTM Performance", rows, tokentm.Variants())
		}
		done()
	}
	if all || want["breakdown"] {
		done := section(fmt.Sprintf("Figures 7-9: Execution-Time Breakdown (%% of LogTM-SE_Perf cycles, scale=%.3g, %d seeds)", *scale, *seeds))
		rows, err := tokentm.BreakdownGrid(runner, *scale, seedList)
		if err != nil {
			fail(err)
		}
		tokentm.WriteBreakdownTable(out, rows)
		if *chart {
			fmt.Fprintln(out)
			tokentm.WriteBreakdownCharts(out, "Figures 7-9. Execution-Time Breakdown", rows)
		}
		done()
	}
	if all || want["table6"] {
		done := section(fmt.Sprintf("Table 6: TokenTM Specific Overheads (scale=%.3g)", *scale))
		tokentm.WriteTable6(out, tokentm.Table6(*scale, *seed))
		done()
	}

	if *jsonOut != "" {
		w := out
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		opts := harness.JSONOptions{}
		if *jsonTiming {
			opts = harness.JSONOptions{
				Timing:   true,
				Parallel: runner.Workers(),
				WallNS:   time.Since(sweepStart).Nanoseconds(),
			}
		}
		if err := harness.WriteJSON(w, harness.CodeVersion(), runner.History(), opts); err != nil {
			fail(err)
		}
	}
}
