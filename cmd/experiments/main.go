// Command experiments regenerates every table and figure in the paper's
// evaluation section.
//
// Usage:
//
//	experiments -run all            # everything (slow at full scale)
//	experiments -run fig5 -scale 0.05 -seeds 3
//	experiments -run table1,table6
//
// Scale shrinks the Table 5 transaction counts proportionally; the paper's
// full counts correspond to -scale 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tokentm"
)

func main() {
	run := flag.String("run", "all", "comma-separated: table1,table2,table3,table4,table5,table6,fig1,fig5,all")
	scale := flag.Float64("scale", 0.05, "fraction of the paper's per-workload transaction counts")
	seeds := flag.Int("seeds", 3, "number of perturbed runs (error bars) for fig1/fig5")
	chart := flag.Bool("chart", false, "render fig1/fig5 as ASCII bar charts in addition to tables")
	seed := flag.Int64("seed", 1, "base seed")
	flag.Parse()

	want := map[string]bool{}
	for _, s := range strings.Split(*run, ",") {
		want[strings.TrimSpace(s)] = true
	}
	all := want["all"]
	out := os.Stdout

	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = *seed + int64(i)
	}

	section := func(title string) func() {
		fmt.Fprintf(out, "==== %s ====\n", title)
		t0 := time.Now()
		return func() { fmt.Fprintf(out, "(%.1fs)\n\n", time.Since(t0).Seconds()) }
	}

	if all || want["table1"] {
		done := section("Table 1: Long-running Critical Sections (LCS)")
		tokentm.WriteTable1(out, tokentm.Table1(*seed))
		done()
	}
	if all || want["table2"] {
		done := section("Table 2: Common Metastate Transitions")
		tokentm.WriteTable2(out)
		done()
	}
	if all || want["table3"] {
		done := section("Table 3: Metastate Fission and Fusion")
		tokentm.WriteTable3(out)
		done()
	}
	if all || want["table4"] {
		done := section("Table 4: Metabit Encodings")
		tokentm.WriteTable4(out)
		done()
	}
	if all || want["table5"] {
		done := section(fmt.Sprintf("Table 5: Workload Parameters (measured, scale=%.3g)", *scale))
		tokentm.WriteTable5(out, tokentm.Table5(*scale, *seed))
		done()
	}
	if all || want["fig1"] {
		done := section(fmt.Sprintf("Figure 1: Effect of False Positives (speedup vs LogTM-SE_Perf, scale=%.3g, %d seeds)", *scale, *seeds))
		rows := tokentm.Figure1(*scale, seedList)
		vs := []tokentm.Variant{tokentm.VariantLogTMSEPerf, tokentm.VariantLogTMSE2xH3, tokentm.VariantLogTMSE4xH3}
		tokentm.WriteSpeedups(out, rows, vs)
		if *chart {
			fmt.Fprintln(out)
			tokentm.WriteSpeedupChart(out, "Figure 1. Effect of False Positives", rows, vs)
		}
		done()
	}
	if all || want["fig5"] {
		done := section(fmt.Sprintf("Figure 5: TokenTM Performance (speedup vs LogTM-SE_Perf, scale=%.3g, %d seeds)", *scale, *seeds))
		rows := tokentm.Figure5(*scale, seedList)
		tokentm.WriteSpeedups(out, rows, tokentm.Variants())
		if *chart {
			fmt.Fprintln(out)
			tokentm.WriteSpeedupChart(out, "Figure 5. TokenTM Performance", rows, tokentm.Variants())
		}
		done()
	}
	if all || want["table6"] {
		done := section(fmt.Sprintf("Table 6: TokenTM Specific Overheads (scale=%.3g)", *scale))
		tokentm.WriteTable6(out, tokentm.Table6(*scale, *seed))
		done()
	}
}
