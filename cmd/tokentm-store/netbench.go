package main

// The network benchmark (make stmnetbench): the same blind-write zipfian
// mixes driven through three access modes —
//
//   inproc:  the unsharded stm store through in-process handles
//   sharded: kvstore.Sharded through in-process handles (cross-shard
//            transactions via stm.Group)
//   net:     a live stm/server on a loopback socket, one RESP connection
//            per worker
//
// Every mode sees the identical seeded operation stream (the driver engine
// issues generator-supplied values, never computed ones, precisely so a
// wire protocol with no server-side compute can replay it), so at
// workers=1 all three modes must land on the same final-state checksum —
// the cross-mode twin of the stmbench determinism gate, checked at bench
// time and again by -check.
//
// Loopback numbers measure protocol + scheduling overhead, not network
// latency: client and server share one host (and in CI, often one core).
// The honest headline is the RATIO between modes, not any absolute ops/s.

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"

	"tokentm/stm"
	"tokentm/stm/kvstore"
	"tokentm/stm/loadgen"
	"tokentm/stm/server"
)

// netSchemaID versions the network-benchmark report.
const netSchemaID = "tokentm-stmnet/v1"

// netModes is the mode sweep in presentation order.
var netModes = []string{"inproc", "sharded", "net"}

type netReportConfig struct {
	Ops      int      `json:"ops"`
	Reps     int      `json:"reps"`
	Keyspace uint64   `json:"keyspace"`
	Capacity int      `json:"capacity"`
	Seed     uint64   `json:"seed"`
	ZipfS    float64  `json:"zipf_s"`
	Shards   int      `json:"shards"`
	Workers  []int    `json:"workers"`
	Modes    []string `json:"modes"`
	Mixes    []string `json:"mixes"`
}

type netReport struct {
	Schema  string           `json:"schema"`
	Config  netReportConfig  `json:"config"`
	Host    reportHost       `json:"host"`
	Results []loadgen.Result `json:"results"`
}

// newNetSetup builds one mode's DriverSetup plus its teardown. Each call is
// one fresh store (and for net, one fresh loopback server).
func newNetSetup(mode string, cfg netReportConfig, workers int) (loadgen.DriverSetup, func(), error) {
	switch mode {
	case "inproc":
		store := kvstore.NewSTM(cfg.Capacity, workers)
		return loadgen.DriverSetup{
			Mode:     mode,
			New:      func(w int) (loadgen.Driver, error) { return loadgen.NewHandleDriver(store.Handle(w)), nil },
			Checksum: func() (uint64, error) { return kvstore.Checksum(store), nil },
			Stats:    store.Stats,
		}, func() {}, nil
	case "sharded":
		store := kvstore.NewSharded(cfg.Shards, cfg.Capacity, workers, stm.Options{})
		return loadgen.DriverSetup{
			Mode:     mode,
			Shards:   cfg.Shards,
			New:      func(w int) (loadgen.Driver, error) { return loadgen.NewHandleDriver(store.Handle(w)), nil },
			Checksum: func() (uint64, error) { return kvstore.Checksum(store), nil },
			Stats:    store.Stats,
		}, func() {}, nil
	case "net":
		srv, err := server.New(server.Config{
			Shards:   cfg.Shards,
			Capacity: cfg.Capacity,
			MaxConns: workers + 1, // +1 slot for the post-run CHECKSUM connection
		})
		if err != nil {
			return loadgen.DriverSetup{}, nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return loadgen.DriverSetup{}, nil, err
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(ln) }()
		addr := ln.Addr().String()
		teardown := func() {
			srv.Shutdown()
			<-serveDone
		}
		return loadgen.DriverSetup{
			Mode:   mode,
			Shards: cfg.Shards,
			New:    func(w int) (loadgen.Driver, error) { return loadgen.DialNet(addr) },
			Close: func(w int, d loadgen.Driver) error {
				return d.(*loadgen.NetDriver).Close()
			},
			Checksum: func() (uint64, error) { return loadgen.NetChecksum(addr) },
			Stats:    srv.Store().Stats,
		}, teardown, nil
	default:
		return loadgen.DriverSetup{}, nil, fmt.Errorf("unknown mode %q (have %v)", mode, netModes)
	}
}

// runNetGrid sweeps mixes x modes x worker counts with the same
// interleaved best-of-reps estimator as runGrid: reps cycle through the
// modes round-robin so shared load bursts cancel out of cross-mode ratios,
// and the deterministic fields must agree across reps.
func runNetGrid(cfg netReportConfig) (*netReport, error) {
	rep := &netReport{
		Schema: netSchemaID,
		Config: cfg,
		Host: reportHost{
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
			GoVersion: runtime.Version(),
		},
	}
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	for _, mixName := range cfg.Mixes {
		mix, err := loadgen.MixByName(mixName)
		if err != nil {
			return nil, err
		}
		for _, w := range cfg.Workers {
			best := make(map[string]loadgen.Result, len(cfg.Modes))
			for r := 0; r < reps; r++ {
				for _, mode := range cfg.Modes {
					setup, teardown, err := newNetSetup(mode, cfg, w)
					if err != nil {
						return nil, fmt.Errorf("%s/%s/w=%d: %w", mixName, mode, w, err)
					}
					res, err := loadgen.RunDrivers(setup, loadgen.Config{
						Backend:  mode,
						Mix:      mix,
						Workers:  w,
						Ops:      cfg.Ops,
						Keyspace: cfg.Keyspace,
						Capacity: cfg.Capacity,
						Seed:     cfg.Seed,
						ZipfS:    cfg.ZipfS,
					})
					teardown()
					if err != nil {
						return nil, fmt.Errorf("%s/%s/w=%d: %w", mixName, mode, w, err)
					}
					if prev, ok := best[mode]; ok {
						if w == 1 && prev.Checksum != res.Checksum {
							return nil, fmt.Errorf("%s/%s/w=1: checksum varies across reps (%x vs %x)",
								mixName, mode, prev.Checksum, res.Checksum)
						}
						if res.Throughput <= prev.Throughput {
							continue
						}
					}
					best[mode] = res
				}
			}
			// Cross-mode determinism gate at workers=1: one op stream, three
			// executions, one final state.
			if w == 1 {
				var first loadgen.Result
				for i, mode := range cfg.Modes {
					if i == 0 {
						first = best[mode]
						continue
					}
					if best[mode].Checksum != first.Checksum {
						return nil, fmt.Errorf("%s/w=1: checksum disagrees across modes: %s=%x %s=%x",
							mixName, first.Mode, first.Checksum, mode, best[mode].Checksum)
					}
				}
			}
			for _, mode := range cfg.Modes {
				res := best[mode]
				rep.Results = append(rep.Results, res)
				fmt.Fprintf(os.Stderr, "  %-11s %-8s workers=%-2d  %9.0f ops/s  abort %.3f  retries %d\n",
					mixName, mode, w, res.Throughput, res.AbortRate, res.WireRetries)
			}
		}
	}
	return rep, nil
}

func printNetSummary(rep *netReport) {
	fmt.Printf("%-11s %-8s %8s %12s %10s %9s %9s %9s\n",
		"mix", "mode", "workers", "ops/s", "abort", "p50us", "p99us", "retries")
	for _, r := range rep.Results {
		fmt.Printf("%-11s %-8s %8d %12.0f %10.3f %9.1f %9.1f %9d\n",
			r.Mix, r.Mode, r.Workers, r.Throughput, r.AbortRate, r.P50Micros, r.P99Micros, r.WireRetries)
	}
	// The honest sharded-vs-unsharded story, stated rather than implied:
	// report the write-heavy ratio at the widest worker count, whichever way
	// it goes. On few cores (or one), the sharded store's extra cross-shard
	// commit work can outweigh the contention it removes.
	byKey := map[string]loadgen.Result{}
	maxW := 0
	for _, r := range rep.Results {
		byKey[fmt.Sprintf("%s/%s/%d", r.Mix, r.Mode, r.Workers)] = r
		if r.Workers > maxW {
			maxW = r.Workers
		}
	}
	sh, okS := byKey[fmt.Sprintf("write-heavy/sharded/%d", maxW)]
	in, okI := byKey[fmt.Sprintf("write-heavy/inproc/%d", maxW)]
	if okS && okI && in.Throughput > 0 {
		ratio := sh.Throughput / in.Throughput
		verdict := "sharding wins"
		if ratio < 1 {
			verdict = "sharding loses (cross-shard group-commit overhead exceeds the contention it removes at this core count)"
		}
		fmt.Printf("\nwrite-heavy @ workers=%d: sharded/unsharded throughput ratio %.2f — %s\n", maxW, ratio, verdict)
	}
}

func netBenchstatText(rep *netReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "goos: %s\ngoarch: %s\npkg: tokentm/stm/server\n", rep.Host.GOOS, rep.Host.GOARCH)
	for _, r := range rep.Results {
		nsPerOp := float64(r.ElapsedNS) / float64(r.Ops)
		fmt.Fprintf(&b, "BenchmarkNetKV/mix=%s/mode=%s/workers=%d \t %d \t %.1f ns/op \t %.0f ops/s \t %.1f p50-us \t %.1f p99-us \t %.4f abort-rate\n",
			r.Mix, r.Mode, r.Workers, r.Ops, nsPerOp, r.Throughput, r.P50Micros, r.P99Micros, r.AbortRate)
	}
	return b.String()
}

// checkNetReport validates the deterministic half of a recorded network
// benchmark: schema, grid coverage, sanity, and workers=1 checksum
// agreement across modes.
func checkNetReport(buf []byte) error {
	var rep netReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return err
	}
	if rep.Schema != netSchemaID {
		return fmt.Errorf("schema %q, want %q", rep.Schema, netSchemaID)
	}
	cfg := rep.Config
	if len(cfg.Modes) == 0 || len(cfg.Mixes) == 0 || len(cfg.Workers) == 0 {
		return fmt.Errorf("empty config grid %+v", cfg)
	}
	if cfg.Shards <= 0 || cfg.Shards&(cfg.Shards-1) != 0 {
		return fmt.Errorf("shard count %d is not a power of two", cfg.Shards)
	}
	want := len(cfg.Modes) * len(cfg.Mixes) * len(cfg.Workers)
	if len(rep.Results) != want {
		return fmt.Errorf("%d results, grid needs %d", len(rep.Results), want)
	}
	seen := make(map[string]bool)
	for i, r := range rep.Results {
		cell := fmt.Sprintf("%s/%s/%d", r.Mix, r.Mode, r.Workers)
		if seen[cell] {
			return fmt.Errorf("result %d: duplicate cell %s", i, cell)
		}
		seen[cell] = true
		if !inStrings(cfg.Mixes, r.Mix) || !inStrings(cfg.Modes, r.Mode) || !inInts(cfg.Workers, r.Workers) {
			return fmt.Errorf("result %d: cell %s outside config grid", i, cell)
		}
		if r.Ops != cfg.Ops {
			return fmt.Errorf("cell %s: ops %d, config says %d", cell, r.Ops, cfg.Ops)
		}
		if r.Commits < uint64(r.Ops) {
			return fmt.Errorf("cell %s: %d commits for %d ops", cell, r.Commits, r.Ops)
		}
		if r.AbortRate < 0 || r.AbortRate > 1 {
			return fmt.Errorf("cell %s: abort rate %f", cell, r.AbortRate)
		}
		if r.Throughput <= 0 || r.ElapsedNS <= 0 {
			return fmt.Errorf("cell %s: non-positive timing (%f ops/s, %d ns)", cell, r.Throughput, r.ElapsedNS)
		}
		if r.Checksum == 0 {
			return fmt.Errorf("cell %s: zero checksum", cell)
		}
		if r.Mode != "net" && r.WireRetries != 0 {
			return fmt.Errorf("cell %s: in-process mode reports wire retries", cell)
		}
	}
	for _, mix := range cfg.Mixes {
		sums := make(map[uint64][]string)
		for _, r := range rep.Results {
			if r.Mix == mix && r.Workers == 1 {
				sums[r.Checksum] = append(sums[r.Checksum], r.Mode)
			}
		}
		if len(sums) > 1 {
			var parts []string
			for sum, who := range sums {
				parts = append(parts, fmt.Sprintf("%x=%v", sum, who))
			}
			sort.Strings(parts)
			return fmt.Errorf("mix %s: single-worker checksums disagree across modes: %s",
				mix, strings.Join(parts, " "))
		}
	}
	return nil
}
