package main

import (
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"tokentm/stm/server"
)

// runServe runs the sharded store as a network server until SIGTERM or
// interrupt, then drains: the listener closes, in-flight transactions
// finish (commit or -RETRY, never torn), idle connections close.
func runServe(addr string, shards, capacity, maxConns int) error {
	srv, err := server.New(server.Config{
		Shards:   shards,
		Capacity: capacity,
		MaxConns: maxConns,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tokentm-store: serving %d shards on %s (%d conns max)\n",
		shards, ln.Addr(), maxConns)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "tokentm-store: %v, draining\n", s)
		srv.Shutdown()
		return <-done
	case err := <-done:
		// SHUTDOWN over the wire drains the server from inside; Serve
		// returning without a signal is that, or a listener error. Either
		// way wait for the drain to finish (Shutdown is idempotent).
		srv.Shutdown()
		return err
	}
}
