// Command tokentm-store benchmarks the transactional KV store across its
// three backends (stm, rwmutex, tl2-occ) under the loadgen mixes, checks a
// previously recorded report, runs the network benchmark (in-process vs
// sharded vs over-the-wire, see netbench.go), and serves the store over
// TCP (see serve.go).
//
//	tokentm-store -bench -reps 5 -json BENCH_stm.json -text BENCH_stm.txt
//	tokentm-store -netbench -reps 5 -json BENCH_stmnet.json
//	tokentm-store -check BENCH_stm.json        # schema-dispatched
//	tokentm-store -serve -addr :6380 -shards 4
//
// -reps measures each cell several times with the backends interleaved
// round-robin and keeps the best rep: on a shared host, load bursts hit all
// backends of a cell alike and the best rep approximates the uncontended
// cost, so cross-backend ratios stay meaningful in noise the individual
// numbers would not survive.
//
// The JSON report separates deterministic identity fields (config, per-cell
// ops/commits/checksums) from wall-clock measurements (throughput,
// latency). -check validates only the deterministic half — schema, full
// grid coverage, field sanity, and single-worker checksum agreement across
// backends — so CI can gate on it without timing flake.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"tokentm/stm/kvstore"
	"tokentm/stm/loadgen"
)

// schemaID versions the report format for the checker.
const schemaID = "tokentm-stm/v1"

// reportConfig is the deterministic part of the sweep parameters.
type reportConfig struct {
	Ops      int      `json:"ops"`
	Reps     int      `json:"reps"`
	Keyspace uint64   `json:"keyspace"`
	Capacity int      `json:"capacity"`
	Seed     uint64   `json:"seed"`
	ZipfS    float64  `json:"zipf_s"`
	Workers  []int    `json:"workers"`
	Backends []string `json:"backends"`
	Mixes    []string `json:"mixes"`
}

type reportHost struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

type report struct {
	Schema  string           `json:"schema"`
	Config  reportConfig     `json:"config"`
	Host    reportHost       `json:"host"`
	Results []loadgen.Result `json:"results"`
}

func main() {
	var (
		bench    = flag.Bool("bench", false, "run the benchmark grid")
		netbench = flag.Bool("netbench", false, "run the network benchmark grid (inproc/sharded/net)")
		serve    = flag.Bool("serve", false, "serve the sharded store over TCP until SIGTERM")
		addr     = flag.String("addr", "127.0.0.1:6380", "listen address for -serve")
		shards   = flag.Int("shards", 4, "shard count for -serve and -netbench (power of two)")
		maxConns = flag.Int("max-conns", 64, "connection limit for -serve")
		modes    = flag.String("modes", strings.Join(netModes, ","), "comma-separated modes for -netbench")
		check    = flag.String("check", "", "validate a recorded report file and exit")
		jsonPath = flag.String("json", "", "write the JSON report to this file")
		textPath = flag.String("text", "", "write benchstat-comparable lines to this file")
		ops      = flag.Int("ops", 60000, "transactions per cell")
		reps     = flag.Int("reps", 1, "measurement repetitions per cell (best kept)")
		workers  = flag.String("workers", "1,4,8,16", "comma-separated worker counts")
		backends = flag.String("backends", strings.Join(kvstore.Backends, ","), "comma-separated backends")
		mixes    = flag.String("mixes", mixNames(), "comma-separated mixes")
		seed     = flag.Uint64("seed", 1, "workload seed")
		keyspace = flag.Uint64("keyspace", 32768, "live key count")
		// 4x keyspace: every backend gets the same provisioning, and the
		// open-addressed stores (stm, tl2-occ) keep linear probes short at
		// a 25% load factor.
		capacity = flag.Int("capacity", 131072, "store slot capacity")
		zipfS    = flag.Float64("zipf-s", 1.1, "zipf skew parameter (>1)")
	)
	flag.Parse()

	if *check != "" {
		if err := checkFile(*check); err != nil {
			fmt.Fprintf(os.Stderr, "tokentm-store: check failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("OK: %s passes the deterministic report checks\n", *check)
		return
	}
	if *serve {
		if err := runServe(*addr, *shards, *capacity, *maxConns); err != nil {
			fmt.Fprintf(os.Stderr, "tokentm-store: serve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *netbench {
		cfg := netReportConfig{
			Ops:      *ops,
			Reps:     *reps,
			Keyspace: *keyspace,
			Capacity: *capacity,
			Seed:     *seed,
			ZipfS:    *zipfS,
			Shards:   *shards,
			Workers:  parseInts(*workers),
			Modes:    splitList(*modes),
			Mixes:    splitList(*mixes),
		}
		rep, err := runNetGrid(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tokentm-store: %v\n", err)
			os.Exit(1)
		}
		printNetSummary(rep)
		writeOutputs(*jsonPath, *textPath, rep, netBenchstatText(rep))
		return
	}
	if !*bench {
		flag.Usage()
		os.Exit(2)
	}

	cfg := reportConfig{
		Ops:      *ops,
		Reps:     *reps,
		Keyspace: *keyspace,
		Capacity: *capacity,
		Seed:     *seed,
		ZipfS:    *zipfS,
		Workers:  parseInts(*workers),
		Backends: splitList(*backends),
		Mixes:    splitList(*mixes),
	}
	rep, err := runGrid(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tokentm-store: %v\n", err)
		os.Exit(1)
	}
	printSummary(rep)
	writeOutputs(*jsonPath, *textPath, rep, benchstatText(rep))
}

// writeOutputs writes the JSON report and/or benchstat text if paths were
// given, exiting on failure.
func writeOutputs(jsonPath, textPath string, rep any, text string) {
	if jsonPath != "" {
		if err := writeJSON(jsonPath, rep); err != nil {
			fmt.Fprintf(os.Stderr, "tokentm-store: %v\n", err)
			os.Exit(1)
		}
	}
	if textPath != "" {
		if err := os.WriteFile(textPath, []byte(text), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tokentm-store: %v\n", err)
			os.Exit(1)
		}
	}
}

// checkFile sniffs the report's schema tag and dispatches to the matching
// checker, so one -check flag covers both report formats.
func checkFile(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sniff struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(buf, &sniff); err != nil {
		return err
	}
	switch sniff.Schema {
	case schemaID:
		return checkReport(buf)
	case netSchemaID:
		return checkNetReport(buf)
	default:
		return fmt.Errorf("unknown schema %q (know %q, %q)", sniff.Schema, schemaID, netSchemaID)
	}
}

func mixNames() string {
	names := make([]string, len(loadgen.Mixes))
	for i, m := range loadgen.Mixes {
		names[i] = m.Name
	}
	return strings.Join(names, ",")
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "tokentm-store: bad worker count %q\n", f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

// runGrid sweeps mixes x backends x worker counts, one fresh store per run.
// With -reps > 1 each cell is measured reps times and the best rep kept; the
// rep loop cycles through the backends round-robin, so competing backends
// share whatever load bursts the host throws at the sweep — on a shared
// machine the best-of-interleaved-reps estimator is what makes cross-backend
// ratios reproducible. The deterministic fields (commits, aborts at
// workers=1, checksum) must agree across reps of a cell, which the sweep
// verifies as a free determinism check.
func runGrid(cfg reportConfig) (*report, error) {
	rep := &report{
		Schema: schemaID,
		Config: cfg,
		Host: reportHost{
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
			GoVersion: runtime.Version(),
		},
	}
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	for _, mixName := range cfg.Mixes {
		mix, err := loadgen.MixByName(mixName)
		if err != nil {
			return nil, err
		}
		for _, w := range cfg.Workers {
			best := make(map[string]loadgen.Result, len(cfg.Backends))
			for r := 0; r < reps; r++ {
				for _, backend := range cfg.Backends {
					res, err := loadgen.Run(loadgen.Config{
						Backend:  backend,
						Mix:      mix,
						Workers:  w,
						Ops:      cfg.Ops,
						Keyspace: cfg.Keyspace,
						Capacity: cfg.Capacity,
						Seed:     cfg.Seed,
						ZipfS:    cfg.ZipfS,
					})
					if err != nil {
						return nil, fmt.Errorf("%s/%s/w=%d: %w", mixName, backend, w, err)
					}
					if prev, ok := best[backend]; ok {
						if w == 1 && prev.Checksum != res.Checksum {
							return nil, fmt.Errorf("%s/%s/w=1: checksum varies across reps (%x vs %x)",
								mixName, backend, prev.Checksum, res.Checksum)
						}
						if res.Throughput <= prev.Throughput {
							continue
						}
					}
					best[backend] = res
				}
			}
			for _, backend := range cfg.Backends {
				res := best[backend]
				rep.Results = append(rep.Results, res)
				fmt.Fprintf(os.Stderr, "  %-11s %-8s workers=%-2d  %9.0f ops/s  abort %.3f\n",
					mixName, backend, w, res.Throughput, res.AbortRate)
			}
		}
	}
	return rep, nil
}

func printSummary(rep *report) {
	fmt.Printf("%-11s %-8s %8s %12s %10s %9s %9s\n",
		"mix", "backend", "workers", "ops/s", "abort", "p50us", "p99us")
	for _, r := range rep.Results {
		fmt.Printf("%-11s %-8s %8d %12.0f %10.3f %9.1f %9.1f\n",
			r.Mix, r.Backend, r.Workers, r.Throughput, r.AbortRate, r.P50Micros, r.P99Micros)
	}
}

func writeJSON(path string, rep any) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// benchstatText renders each cell as one benchstat-parseable line: save the
// file before a change and feed old/new to benchstat for deltas.
func benchstatText(rep *report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "goos: %s\ngoarch: %s\npkg: tokentm/stm/loadgen\n", rep.Host.GOOS, rep.Host.GOARCH)
	for _, r := range rep.Results {
		nsPerOp := float64(r.ElapsedNS) / float64(r.Ops)
		fmt.Fprintf(&b, "BenchmarkKV/mix=%s/backend=%s/workers=%d \t %d \t %.1f ns/op \t %.0f ops/s \t %.1f p50-us \t %.1f p99-us \t %.4f abort-rate\n",
			r.Mix, r.Backend, r.Workers, r.Ops, nsPerOp, r.Throughput, r.P50Micros, r.P99Micros, r.AbortRate)
	}
	return b.String()
}

// checkReport validates the deterministic half of a recorded report: schema
// tag, full grid coverage, per-cell sanity, and checksum agreement across
// backends on the single-worker cells (where the op stream is one seeded
// sequence, so all backends must produce identical final state).
func checkReport(buf []byte) error {
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return err
	}
	if rep.Schema != schemaID {
		return fmt.Errorf("schema %q, want %q", rep.Schema, schemaID)
	}
	cfg := rep.Config
	if len(cfg.Backends) == 0 || len(cfg.Mixes) == 0 || len(cfg.Workers) == 0 {
		return fmt.Errorf("empty config grid %+v", cfg)
	}
	want := len(cfg.Backends) * len(cfg.Mixes) * len(cfg.Workers)
	if len(rep.Results) != want {
		return fmt.Errorf("%d results, grid needs %d", len(rep.Results), want)
	}
	seen := make(map[string]bool)
	for i, r := range rep.Results {
		cell := fmt.Sprintf("%s/%s/%d", r.Mix, r.Backend, r.Workers)
		if seen[cell] {
			return fmt.Errorf("result %d: duplicate cell %s", i, cell)
		}
		seen[cell] = true
		if !inStrings(cfg.Mixes, r.Mix) || !inStrings(cfg.Backends, r.Backend) || !inInts(cfg.Workers, r.Workers) {
			return fmt.Errorf("result %d: cell %s outside config grid", i, cell)
		}
		if r.Ops != cfg.Ops {
			return fmt.Errorf("cell %s: ops %d, config says %d", cell, r.Ops, cfg.Ops)
		}
		if r.Commits < uint64(r.Ops) {
			return fmt.Errorf("cell %s: %d commits for %d ops", cell, r.Commits, r.Ops)
		}
		if r.AbortRate < 0 || r.AbortRate > 1 {
			return fmt.Errorf("cell %s: abort rate %f", cell, r.AbortRate)
		}
		if r.Throughput <= 0 || r.ElapsedNS <= 0 {
			return fmt.Errorf("cell %s: non-positive timing (%f ops/s, %d ns)", cell, r.Throughput, r.ElapsedNS)
		}
		if r.Checksum == 0 {
			return fmt.Errorf("cell %s: zero checksum", cell)
		}
	}
	for _, mix := range cfg.Mixes {
		sums := make(map[uint64][]string)
		for _, r := range rep.Results {
			if r.Mix == mix && r.Workers == 1 {
				sums[r.Checksum] = append(sums[r.Checksum], r.Backend)
			}
		}
		if len(sums) > 1 {
			var parts []string
			for sum, who := range sums {
				parts = append(parts, fmt.Sprintf("%x=%v", sum, who))
			}
			sort.Strings(parts)
			return fmt.Errorf("mix %s: single-worker checksums disagree across backends: %s",
				mix, strings.Join(parts, " "))
		}
	}
	return nil
}

func inStrings(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func inInts(list []int, n int) bool {
	for _, x := range list {
		if x == n {
			return true
		}
	}
	return false
}
