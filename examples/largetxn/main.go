// Largetxn demonstrates the paper's headline properties:
//
//  1. an *unbounded* transaction — far larger than the L1 cache — runs
//     concurrently with small transactions on other cores and does not slow
//     them down at all (every small transaction still commits with
//     constant-time fast token release);
//  2. a transaction survives a blocking system call and the resulting
//     context switch (flash-OR of the R/W metabit columns), something the
//     paper's motivation (Table 1) shows real servers need;
//  3. transactional state survives paging: the OS model saves metastate on
//     page-out and restores it on page-in, and conflicts are still detected
//     afterwards.
package main

import (
	"fmt"

	"tokentm"
	"tokentm/internal/mem"
)

func main() {
	// Quantum enables preemptive multi-threading on core 0, where the big
	// transaction shares the core with a helper thread.
	sys := tokentm.New(tokentm.Config{
		Variant: tokentm.VariantTokenTM,
		Cores:   2,
		Quantum: 20_000,
	})
	tok := sys.TokenTM()

	// The elephant: writes 2000 blocks (128 KB footprint, 4x the 32 KB
	// L1), performs a blocking system call in the middle, and commits.
	const elephantBlocks = 2000
	elephant := func(i int) tokentm.Addr {
		return tokentm.Addr(0x4000000 + i*tokentm.BlockBytes)
	}
	sys.Spawn(func(tc *tokentm.Ctx) { // thread 0, core 0
		tc.Atomic(func(tx *tokentm.Tx) {
			for i := 0; i < elephantBlocks/2; i++ {
				tx.Store(elephant(i), uint64(i))
			}
			// Blocking I/O inside the atomic block: the core context
			// switches to the helper thread; the transaction's tokens
			// survive as R'/W' bits and at home.
			tc.Syscall(50_000)
			for i := elephantBlocks / 2; i < elephantBlocks; i++ {
				tx.Store(elephant(i), uint64(i))
			}
		})
	})

	// The mice: small transactions on core 1, non-conflicting.
	const mice = 300
	counter := tokentm.Addr(0x1000)
	sys.Spawn(func(tc *tokentm.Ctx) { // thread 1, core 1
		for k := 0; k < mice; k++ {
			tc.Atomic(func(tx *tokentm.Tx) {
				tx.Store(counter, tx.Load(counter)+1)
			})
			tc.Work(100)
		}
	})

	// The helper: shares core 0 with the elephant, doing plain work, so
	// the syscall genuinely context switches.
	sys.Spawn(func(tc *tokentm.Ctx) { // thread 2, core 0
		for k := 0; k < 40; k++ {
			tc.Work(5_000)
			tc.Atomic(func(tx *tokentm.Tx) {
				a := tokentm.Addr(0x2000)
				tx.Store(a, tx.Load(a)+1)
			})
		}
	})

	cycles := sys.Run()

	fmt.Printf("simulated %d cycles\n", cycles)
	fmt.Printf("elephant wrote %d blocks (L1 holds %d): all intact = %v\n",
		elephantBlocks, 32*1024/tokentm.BlockBytes, verify(sys, elephant, elephantBlocks))
	fmt.Printf("mice committed %d small transactions: counter=%d\n", mice, sys.Load(counter))
	fmt.Printf("fast commits=%d software commits=%d (the elephant and the\n", tok.FastCommits, tok.SlowCommits)
	fmt.Println("  context-switched helper transactions release in software; mice stay fast)")

	var miceFast int
	for _, r := range sys.M.Commits {
		if r.Thread == 1 && r.Fast {
			miceFast++
		}
	}
	fmt.Printf("mice fast-release commits: %d/%d — the unbounded transaction cost them nothing\n", miceFast, mice)

	// Paging demo: run a fresh transaction, page its data out and in, and
	// show conflicts are still detected.
	pagingDemo()

	if err := tok.CheckBookkeeping(); err != nil {
		fmt.Println("bookkeeping violation:", err)
		return
	}
	fmt.Println("double-entry bookkeeping invariant holds")
}

func verify(sys *tokentm.System, addr func(int) tokentm.Addr, n int) bool {
	for i := 0; i < n; i++ {
		if sys.Load(addr(i)) != uint64(i) {
			return false
		}
	}
	return true
}

// pagingDemo exercises §5.3: metastate is saved on page-out and restored on
// page-in while a transaction is live.
func pagingDemo() {
	sys := tokentm.New(tokentm.Config{Variant: tokentm.VariantTokenTM, Cores: 2})
	tok := sys.TokenTM()
	target := tokentm.Addr(0x7000_0000)

	sys.Spawn(func(tc *tokentm.Ctx) {
		tc.Atomic(func(tx *tokentm.Tx) {
			tx.Store(target, 123)
			// Page the block out and back in mid-transaction (in a real
			// system the OS does this; the API is the VM hook).
			saved := tok.PageOut(mem.Addr(target).Page())
			if err := tok.PageIn(saved); err != nil {
				panic(err)
			}
			tx.Store(target+8, 456)
		})
	})
	sys.Run()
	fmt.Printf("paging demo: transaction survived page-out/page-in, data = %d,%d\n",
		sys.Load(target), sys.Load(target+8))
}
