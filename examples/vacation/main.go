// Vacation: a miniature travel-reservation system in the spirit of STAMP's
// vacation benchmark (itself inspired by SpecJBB2000), which the paper uses
// as its large-transaction workload.
//
// The database holds flights, rooms and cars, each with a capacity and a
// price table. Customer threads book whole trips — several resources
// reserved atomically — producing transactions with tens of blocks in their
// read/write sets, exactly the "naive TM programmer" usage TokenTM is built
// to support. The example verifies that no resource is ever oversold and
// that bookings balance revenue.
package main

import (
	"fmt"
	"math/rand"

	"tokentm"
)

// Database layout: each record occupies its own 64-byte block.
//
//	resource r of kind k:
//	  word 0: remaining capacity
//	  word 1: price
//	  word 2: times booked
const (
	kinds        = 3 // flights, rooms, cars
	perKind      = 256
	initialSeats = 100
	customers    = 16
	tripsPerCust = 60
)

var kindName = [kinds]string{"flights", "rooms", "cars"}

func record(kind, idx int) tokentm.Addr {
	return tokentm.Addr(0x200000 + (kind*perKind+idx)*tokentm.BlockBytes)
}

// revenueAddr tracks total money collected (one block per customer thread to
// avoid making revenue itself a hot spot).
func revenueAddr(cust int) tokentm.Addr {
	return tokentm.Addr(0x800000 + cust*tokentm.BlockBytes)
}

func main() {
	sys := tokentm.New(tokentm.Config{Variant: tokentm.VariantTokenTM, Cores: 8, Seed: 7})

	// Populate the database.
	for k := 0; k < kinds; k++ {
		for i := 0; i < perKind; i++ {
			sys.StoreWord(record(k, i), initialSeats)
			sys.StoreWord(record(k, i)+8, uint64(50+10*k+i%37)) // price
		}
	}

	booked := make([]int, customers)
	for c := 0; c < customers; c++ {
		c := c
		seed := int64(c * 977)
		sys.Spawn(func(tc *tokentm.Ctx) {
			rng := rand.New(rand.NewSource(seed))
			for trip := 0; trip < tripsPerCust; trip++ {
				// A trip books 1-4 resources of each kind; the whole
				// itinerary commits or nothing does.
				var wants [kinds][]int
				for k := 0; k < kinds; k++ {
					n := 1 + rng.Intn(4)
					for j := 0; j < n; j++ {
						wants[k] = append(wants[k], rng.Intn(perKind))
					}
				}
				ok := false
				tc.Atomic(func(tx *tokentm.Tx) {
					ok = false
					var cost uint64
					// Check availability of everything first (read set).
					for k := 0; k < kinds; k++ {
						for _, idx := range wants[k] {
							if tx.Load(record(k, idx)) == 0 {
								return // sold out: abort the whole trip
							}
							cost += tx.Load(record(k, idx) + 8)
						}
					}
					// Reserve (write set).
					for k := 0; k < kinds; k++ {
						for _, idx := range wants[k] {
							r := record(k, idx)
							tx.Store(r, tx.Load(r)-1)
							tx.Store(r+16, tx.Load(r+16)+1)
						}
					}
					tx.Store(revenueAddr(c), tx.Load(revenueAddr(c))+cost)
					ok = true
				})
				if ok {
					booked[c]++
				}
				tc.Work(300)
			}
		})
	}
	cycles := sys.Run()

	// Validate: capacity + bookings == initial for every record, and no
	// record oversold.
	oversold := 0
	totalBookings := uint64(0)
	for k := 0; k < kinds; k++ {
		for i := 0; i < perKind; i++ {
			cap := sys.Load(record(k, i))
			n := sys.Load(record(k, i) + 16)
			if cap+n != initialSeats {
				oversold++
			}
			totalBookings += n
		}
	}
	var revenue uint64
	trips := 0
	for c := 0; c < customers; c++ {
		revenue += sys.Load(revenueAddr(c))
		trips += booked[c]
	}

	fmt.Printf("simulated %d cycles; %d customers booked %d trips (%d resource bookings)\n",
		cycles, customers, trips, totalBookings)
	fmt.Printf("revenue collected: %d\n", revenue)
	if oversold == 0 {
		fmt.Println("consistency: every record satisfies capacity + bookings == initial")
	} else {
		fmt.Printf("CONSISTENCY VIOLATION in %d records\n", oversold)
	}

	st := sys.HTM.Stats()
	var rs, ws float64
	for _, r := range st.Commits {
		rs += float64(r.ReadBlocks)
		ws += float64(r.WriteBlocks)
	}
	n := float64(len(st.Commits))
	fmt.Printf("transactions: %d committed, avg read set %.1f blocks, avg write set %.1f blocks\n",
		len(st.Commits), rs/n, ws/n)
	fmt.Printf("conflicts=%d aborts=%d\n", st.Conflicts, st.Aborts)
	if tok := sys.TokenTM(); tok != nil {
		fmt.Printf("fast token release: %d/%d commits\n", tok.FastCommits, tok.FastCommits+tok.SlowCommits)
	}
}
