// Quickstart: build a TokenTM system, run concurrent transactions, and
// inspect the result — the smallest end-to-end use of the public API.
//
// It reproduces the flavor of the paper's Figure 2: several threads
// transactionally read and write shared blocks while TokenTM tracks every
// token with double-entry bookkeeping.
package main

import (
	"fmt"

	"tokentm"
)

func main() {
	// A 4-core machine running the TokenTM HTM.
	sys := tokentm.New(tokentm.Config{Variant: tokentm.VariantTokenTM, Cores: 4})

	// Shared data: one counter per 64-byte block to avoid false sharing,
	// plus one hot counter everybody updates.
	const threads = 4
	hot := tokentm.Addr(0x1000)
	private := func(i int) tokentm.Addr { return tokentm.Addr(0x10000 + i*tokentm.BlockBytes) }

	for i := 0; i < threads; i++ {
		i := i
		sys.Spawn(func(tc *tokentm.Ctx) {
			for k := 0; k < 100; k++ {
				// Atomic retries automatically on conflict aborts.
				tc.Atomic(func(tx *tokentm.Tx) {
					// Read-modify-write the contended counter...
					tx.Store(hot, tx.Load(hot)+1)
					// ...and this thread's own statistics block.
					tx.Store(private(i), tx.Load(private(i))+1)
				})
				tc.Work(200) // non-transactional compute between transactions
			}
		})
	}

	cycles := sys.Run()

	fmt.Printf("simulated %d cycles on %d cores (%s)\n", cycles, 4, sys.HTM.Name())
	fmt.Printf("hot counter = %d (want %d)\n", sys.Load(hot), threads*100)
	for i := 0; i < threads; i++ {
		fmt.Printf("  thread %d private counter = %d\n", i, sys.Load(private(i)))
	}

	st := sys.HTM.Stats()
	fmt.Printf("conflicts=%d stalls=%d aborts=%d\n", st.Conflicts, st.Stalls, st.Aborts)
	if tok := sys.TokenTM(); tok != nil {
		fmt.Printf("fast commits=%d software commits=%d\n", tok.FastCommits, tok.SlowCommits)
		if err := tok.CheckBookkeeping(); err != nil {
			fmt.Println("bookkeeping violation:", err)
			return
		}
		fmt.Println("double-entry bookkeeping invariant holds: all tokens returned")
	}
}
