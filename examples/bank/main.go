// Bank: concurrent money transfers as transactions, on every HTM variant.
//
// Each thread repeatedly picks two accounts and moves money atomically. The
// total balance is invariant under serializable execution, so the example
// doubles as a liveness/correctness demonstration: aborts and retries are
// frequent under this contention, yet no money is created or destroyed on
// any of the paper's five HTM systems.
package main

import (
	"fmt"
	"math/rand"

	"tokentm"
)

const (
	accounts  = 64
	initial   = 1_000
	threads   = 8
	transfers = 200
)

func acct(i int) tokentm.Addr {
	return tokentm.Addr(0x100000 + i*tokentm.BlockBytes)
}

func run(v tokentm.Variant) {
	sys := tokentm.New(tokentm.Config{Variant: v, Cores: 8, Seed: 42, RetryLimit: 8})
	for i := 0; i < accounts; i++ {
		sys.StoreWord(acct(i), initial)
	}

	aborts := 0
	for t := 0; t < threads; t++ {
		seed := int64(t + 1)
		sys.Spawn(func(tc *tokentm.Ctx) {
			rng := rand.New(rand.NewSource(seed))
			for k := 0; k < transfers; k++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := uint64(1 + rng.Intn(50))
				tc.Atomic(func(tx *tokentm.Tx) {
					balance := tx.Load(acct(from))
					if balance < amount {
						return // insufficient funds; commit empty
					}
					tx.Store(acct(from), balance-amount)
					tx.Store(acct(to), tx.Load(acct(to))+amount)
				})
			}
		})
	}
	cycles := sys.Run()

	var total uint64
	for i := 0; i < accounts; i++ {
		total += sys.Load(acct(i))
	}
	st := sys.HTM.Stats()
	for _, th := range sys.M.Threads() {
		aborts += th.AbortCount
	}
	status := "OK"
	if total != accounts*initial {
		status = "MONEY LOST!"
	}
	fmt.Printf("%-16s total=%d (%s)  cycles=%-9d conflicts=%-5d aborts=%-4d false=%d\n",
		v, total, status, cycles, st.Conflicts, aborts, st.FalseConflicts)
}

func main() {
	fmt.Printf("%d accounts x %d, %d threads x %d transfers\n\n", accounts, initial, threads, transfers)
	for _, v := range tokentm.Variants() {
		run(v)
	}
}
