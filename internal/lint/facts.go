package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tokentm/internal/lint/analysis"
)

// This file is the cross-package phase of the suite. The driver loads every
// requested package, calls CollectFacts over all of them, and only then runs
// the analyzers package by package with the shared analysis.Facts on each
// pass. Three analyzers consume the index:
//
//   - atomicfield: AtomicFields records every struct field that is passed to
//     a function-style sync/atomic operation anywhere in the module, so a
//     plain access in one package is caught even when all atomic accesses
//     live in another.
//   - allocfree (interprocedural): FuncFact.AllocSites and FuncFact.Callees
//     form a call graph over function bodies, so a //tokentm:allocfree root
//     is checked against the closure of its same-module callees instead of
//     trusting annotation coverage.
//   - logorder: the //tokentm:tokenclaim, //tokentm:logappend and
//     //tokentm:dataword role annotations resolve through Facts.Funcs, so a
//     write path may call roles defined in another package.
//
// When the driver analyzes a subset of the module (a single fixture package
// in linttest, or an explicit package argument), calls into packages outside
// the loaded set have no facts and are trusted silently; `make lint` runs
// over ./... so the real tree always gets the full closure.

// modulePath is the import-path root of the module; calls outside it (the
// standard library) are never followed. Fixture packages under
// testdata/src/tokentm mimic the same prefix on purpose.
const modulePath = "tokentm"

// Directive annotations recognized by the fact collector, beyond
// AllocFreeDirective (allocfree.go).
const (
	// BackoffDirective marks a function that backs off or dooms the caller;
	// calling it satisfies the atomicfield CAS retry-loop backoff rule.
	BackoffDirective = "//tokentm:backoff"
	// WritePathDirective marks a logorder entry point: a function whose
	// tracked data-word stores must be dominated by a token claim and a
	// matching undo-log append.
	WritePathDirective = "//tokentm:writepath"
	// TokenClaimDirective marks the function that claims write tokens.
	TokenClaimDirective = "//tokentm:tokenclaim"
	// LogAppendDirective marks the function that appends the undo-log
	// entry; its first argument is the block address being logged.
	LogAppendDirective = "//tokentm:logappend"
	// DataWordDirective marks the accessor returning a tracked data word;
	// its last argument is the block address.
	DataWordDirective = "//tokentm:dataword"
)

// CollectFacts builds the module-wide index over the given packages. All
// packages must come from one Loader (shared FileSet), which is what both
// the driver and linttest guarantee.
func CollectFacts(pkgs []*Package) *analysis.Facts {
	facts := &analysis.Facts{
		AtomicFields: make(map[string][]token.Pos),
		Funcs:        make(map[string]*analysis.FuncFact),
	}
	for _, pkg := range pkgs {
		collectAtomicFields(pkg, facts)
		collectFuncFacts(pkg, facts)
	}
	return facts
}

// inModule reports whether the package path belongs to this module.
func inModule(path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}

// hasDirective reports whether the function's doc comment carries the given
// //tokentm: annotation (exact line or annotation followed by a comment).
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive ||
			len(c.Text) > len(directive) && c.Text[:len(directive)+1] == directive+" " {
			return true
		}
	}
	return false
}

// funcKey returns the Facts.Funcs key for a function object.
func funcKey(fn *types.Func) string { return fn.FullName() }

// collectAtomicFields records every struct field passed by address to a
// function-style sync/atomic call in pkg.
func collectAtomicFields(pkg *Package, facts *analysis.Facts) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(pkg.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := arg.(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := u.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if key := atomicFieldKey(pkg.Info, sel); key != "" {
					facts.AtomicFields[key] = append(facts.AtomicFields[key], sel.Pos())
				}
			}
			return true
		})
	}
}

// isAtomicFuncCall reports whether call invokes a function (not a method) of
// package sync/atomic, e.g. atomic.AddUint64. Typed atomics
// (atomic.Uint64's methods) are excluded: their fields cannot be accessed
// plainly in the first place.
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[pkgID].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "sync/atomic"
}

// atomicFieldKey returns the stable cross-package key for a field selector —
// "pkgpath.Type.Field" — or "" when sel is not a named struct's field.
// String keys (rather than types.Object identity) survive the fact that the
// importer and the source type-checker materialize distinct object graphs
// for the same package.
func atomicFieldKey(info *types.Info, sel *ast.SelectorExpr) string {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return ""
	}
	field := s.Obj()
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	pkgPath := ""
	if field.Pkg() != nil {
		pkgPath = field.Pkg().Path()
	}
	return pkgPath + "." + named.Obj().Name() + "." + field.Name()
}

// collectFuncFacts records, for every function declaration in pkg, its
// annotations, its allocating constructs (judged by the allocfree rules in
// the function's own frame), and its statically resolvable same-module
// callees.
func collectFuncFacts(pkg *Package, facts *analysis.Facts) {
	for _, fd := range enclosingFuncs(pkg.Files) {
		obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		fact := &analysis.FuncFact{
			Name:       funcDisplayName(fd),
			Pos:        fd.Pos(),
			AllocFree:  isAllocFreeAnnotated(fd),
			Backoff:    hasDirective(fd, BackoffDirective),
			WritePath:  hasDirective(fd, WritePathDirective),
			TokenClaim: hasDirective(fd, TokenClaimDirective),
			LogAppend:  hasDirective(fd, LogAppendDirective),
			DataWord:   hasDirective(fd, DataWordDirective),
		}
		collect := func(pos token.Pos, format string, args ...any) {
			// The checker's message templates address annotated functions
			// ("... in allocfree function F ..."); here it runs over every
			// function, annotated or not, so neutralize the phrasing.
			what := strings.Replace(fmt.Sprintf(format, args...), "in allocfree function ", "in ", 1)
			fact.AllocSites = append(fact.AllocSites, analysis.AllocSite{
				Pos:  pos,
				What: what,
			})
		}
		c := newAllocChecker(pkg.Info, fd, collect)
		ast.Inspect(fd.Body, c.visit)
		fact.Callees = collectCallees(pkg.Info, fd, c)
		facts.Funcs[funcKey(obj)] = fact
	}
}

// collectCallees resolves the same-module calls of fd's body, skipping calls
// inside panic(...) arguments (terminal paths, exempt by the same rule the
// intra-procedural check applies).
func collectCallees(info *types.Info, fd *ast.FuncDecl, c *allocChecker) []analysis.Callee {
	var out []analysis.Callee
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c.inPanic(call.Pos()) {
			return false
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || !inModule(fn.Pkg().Path()) {
			return true
		}
		out = append(out, analysis.Callee{Pos: call.Pos(), Name: funcKey(fn)})
		return true
	})
	return out
}

// calleeFunc resolves a call expression to its static *types.Func target,
// or nil for builtins, func-valued expressions, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcFactFor looks up the facts of a call's static target, or nil.
func funcFactFor(facts *analysis.Facts, info *types.Info, call *ast.CallExpr) *analysis.FuncFact {
	if facts == nil {
		return nil
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	return facts.Funcs[funcKey(fn)]
}
