package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	// Src holds each file's source bytes, used by the directive scanner to
	// decide whether a //lint:ignore comment stands on its own line.
	Src  map[string][]byte
	Pkg  *types.Package
	Info *types.Info
}

// Loader parses and type-checks packages from source. Imports — both
// standard library and module-local — resolve through go/importer's source
// mode, which requires the process working directory to be inside the
// module (true for `go run ./cmd/tokentm-lint` and for `go test`).
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader builds a loader with a shared FileSet and import cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadDir loads every non-test .go file in dir as the package importPath.
func (l *Loader) LoadDir(importPath, dir string) (*Package, error) {
	names, err := GoFilesIn(dir)
	if err != nil {
		return nil, err
	}
	return l.Load(importPath, dir, names)
}

// Load parses the named files from dir and type-checks them as one package.
func (l *Loader) Load(importPath, dir string, fileNames []string) (*Package, error) {
	p := &Package{
		Path: importPath,
		Fset: l.fset,
		Src:  make(map[string][]byte),
	}
	for _, name := range fileNames {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		p.Src[full] = src
		p.Files = append(p.Files, f)
	}
	if len(p.Files) == 0 {
		return nil, fmt.Errorf("lint: no Go files for %s in %s", importPath, dir)
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.fset, p.Files, p.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	p.Pkg = pkg
	return p, nil
}

// GoFilesIn lists the non-test .go files of dir in sorted order.
func GoFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
