// Package hostside is a lint fixture proving scope: harness-side packages
// may read the wall clock, draw from the global rand source and range over
// maps — none of it feeds simulated state, so no analyzer flags it.
package hostside

import (
	"math/rand"
	"time"
)

func wallClockIsFine() (time.Time, int) {
	return time.Now(), rand.Intn(10)
}

func mapOrderIsFine(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// unannotated host-side code allocates freely; allocfree only ever checks
// //tokentm:allocfree functions, which host-side code does not declare.
func allocationIsFine() []byte {
	return make([]byte, 1<<10)
}
