// Package wallclock is a lint fixture for the wallclock analyzer: host
// clock reads and global math/rand draws are flagged; seeded generators,
// time types and constants are not.
package wallclock

import (
	"math/rand"
	"time"
)

func now() int64 {
	return time.Now().UnixNano() // want `wallclock: time.Now in a simulation package`
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `wallclock: time.Sleep in a simulation package`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wallclock: time.Since in a simulation package`
}

func globalDraw() int {
	return rand.Intn(10) // want `wallclock: global rand.Intn in a simulation package`
}

// seeded is the sanctioned pattern: a generator owned by the caller, seeded
// from the experiment tuple.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// typesAndConstants: time.Duration arithmetic and rand value types never
// touch the host clock or the global source.
func typesAndConstants(d time.Duration, rng *rand.Rand) time.Duration {
	_ = rng
	return d * 2
}
