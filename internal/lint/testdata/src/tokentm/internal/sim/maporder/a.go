// Package maporder is a lint fixture: every construct the maporder analyzer
// must flag, and every exemption it must honor.
package maporder

import "sort"

func access(int) {}

func flagged(m map[int]int) {
	for k := range m { // want `maporder: for-range over map m`
		access(k)
	}
}

func flaggedValue(m map[int]int) {
	for _, v := range m { // want `maporder: for-range over map m`
		access(v)
	}
}

// sumOnly is exempt: += accumulation is order-insensitive.
func sumOnly(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// countAndMask is exempt: counter increments and commutative compound
// assignments only.
func countAndMask(m map[int]uint32) (n int, bits uint32) {
	for _, v := range m {
		n++
		bits |= v
	}
	return n, bits
}

// drain is exempt: deleting the ranged map's own key is order-insensitive.
func drain(m map[int]int) {
	for k := range m {
		delete(m, k)
	}
}

// keysSorted is exempt: the collect-then-sort idiom, the canonical fix.
func keysSorted(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// collectedButUnsorted collects keys but never sorts them, so the output
// order still leaks map iteration order.
func collectedButUnsorted(m map[int]int) []int {
	var keys []int
	for k := range m { // want `maporder: for-range over map m`
		keys = append(keys, k)
	}
	return keys
}

// justified carries an ignore directive with a reason; the finding is
// suppressed and the directive is consumed (not stale).
func justified(m map[int]int) {
	for k := range m { //lint:ignore maporder fixture exercises a justified order-dependent walk
		access(k)
	}
}

// sliceRange is exempt: slices iterate in index order.
func sliceRange(s []int) {
	for _, v := range s {
		access(v)
	}
}
