// Package directives is a lint fixture for //lint:ignore handling: both
// placements (trailing, standalone-above), multi-analyzer lists, and the
// hygiene diagnostics for missing reasons, unknown analyzers and stale
// directives. Run with the wallclock analyzer.
package directives

import "time"

// missingReason: a directive without a reason is itself a diagnostic and
// suppresses nothing, so the finding on the clock call survives too.
func missingReason() time.Time {
	//lint:ignore wallclock
	// want-1 `lint: //lint:ignore wallclock is missing a reason`
	return time.Now() // want `wallclock: time.Now in a simulation package`
}

// stale: a well-formed directive whose target line has no finding is
// reported, so suppressions cannot outlive the code they excuse.
func stale(d time.Duration) time.Duration {
	//lint:ignore wallclock no clock call here anymore
	// want-1 `lint: stale //lint:ignore: no wallclock finding on the target line`
	return d * 2
}

// suppressedAbove: standalone directive targets the next line.
func suppressedAbove() time.Time {
	//lint:ignore wallclock fixture exercises standalone suppression
	return time.Now()
}

// suppressedTrailing: end-of-line directive targets its own line.
func suppressedTrailing() time.Time {
	return time.Now() //lint:ignore wallclock fixture exercises trailing suppression
}

// multiAnalyzer: a comma-separated analyzer list suppresses any of them.
func multiAnalyzer() time.Time {
	return time.Now() //lint:ignore maporder,wallclock fixture exercises a multi-analyzer list
}

// unknownAnalyzer: naming a non-existent analyzer is a diagnostic.
func unknownAnalyzer() int {
	//lint:ignore nosuchcheck the analyzer name is misspelled on purpose
	// want-1 `lint: //lint:ignore names unknown analyzer nosuchcheck`
	return 0
}
