// Package exhaustive is a lint fixture for the exhaustive analyzer: enum
// switches must cover every constant or fail loudly in default.
package exhaustive

type state int

const (
	sIdle state = iota
	sRun
	sDone
)

// covered handles every constant: no diagnostic.
func covered(s state) string {
	switch s {
	case sIdle:
		return "idle"
	case sRun:
		return "run"
	case sDone:
		return "done"
	}
	return "?"
}

func missingCase(s state) int {
	n := 0
	switch s { // want `exhaustive: switch over exhaustive\.state misses sDone`
	case sIdle:
		n = 1
	case sRun:
		n = 2
	}
	return n
}

// loudDefault is non-exhaustive but the default panics: allowed.
func loudDefault(s state) int {
	switch s {
	case sIdle:
		return 0
	default:
		panic("unhandled state")
	}
}

// returningDefault is non-exhaustive but the default returns: allowed.
func returningDefault(s state) int {
	switch s {
	case sIdle:
		return 0
	default:
		return -1
	}
}

func quietDefault(s state) int {
	n := 0
	switch s {
	case sIdle:
		n = 1
	default: // want `exhaustive: default clause of non-exhaustive switch over exhaustive\.state must panic or return`
		n = 2
	}
	return n
}

// plainInt switches over a bare int: not an enum, not checked.
func plainInt(n int) int {
	switch n {
	case 0:
		return 1
	}
	return 0
}
