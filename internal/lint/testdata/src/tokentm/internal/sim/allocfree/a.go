// Package allocfree is a lint fixture for the allocfree analyzer: each
// annotated function demonstrates one allocating construct or one sanctioned
// allocation-free pattern.
package allocfree

import "fmt"

type ring struct {
	buf     []int
	scratch []int
}

type boxer interface{ m() }

type impl struct{}

func (impl) m() {}

// push appends through the receiver: the buffer belongs to the caller.
//
//tokentm:allocfree
func (r *ring) push(v int) {
	r.buf = append(r.buf, v)
}

// grow appends to a parameter: caller storage, allowed.
//
//tokentm:allocfree
func grow(dst []int, v int) []int {
	return append(dst, v)
}

//tokentm:allocfree
func growFresh(v int) []int {
	var out []int
	return append(out, v) // want `allocfree: append to out in allocfree function growFresh`
}

//tokentm:allocfree
func makes(n int) []int {
	return make([]int, n) // want `allocfree: make in allocfree function makes allocates`
}

//tokentm:allocfree
func sliceLit(v int) []int {
	return []int{v} // want `allocfree: \[\]int literal in allocfree function sliceLit allocates`
}

//tokentm:allocfree
func newRing() *ring {
	return &ring{} // want `allocfree: &allocfree\.ring\{\.\.\.\} in allocfree function newRing heap-allocates`
}

//tokentm:allocfree
func closes(xs []int) func() int {
	return func() int { return len(xs) } // want `allocfree: closure in allocfree function closes`
}

//tokentm:allocfree
func logs(v int) {
	fmt.Println(v) // want `allocfree: fmt\.Println in allocfree function logs allocates`
}

//tokentm:allocfree
func concat(a, b string) string {
	return a + b // want `allocfree: string concatenation in allocfree function concat allocates`
}

//tokentm:allocfree
func box(v impl) boxer {
	return boxer(v) // want `allocfree: conversion to interface allocfree\.boxer in allocfree function box boxes its operand`
}

// invariant may format inside panic: the message runs once, on a terminal
// invariant-violation path, never on the steady-state path.
//
//tokentm:allocfree
func invariant(v int) int {
	if v < 0 {
		panic("invariant: " + fmt.Sprintf("negative value %d", v))
	}
	return v
}

// collect reuses the receiver's scratch buffer through a local alias —
// the canonical hot-path pattern (cf. readerScratch/enemyScratch).
//
//tokentm:allocfree
func (r *ring) collect(n int) []int {
	out := r.scratch[:0]
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	r.scratch = out
	return out
}

// unannotated functions may allocate freely.
func unannotated() []int {
	return make([]int, 8)
}
