// Package allocfreecalls exercises the interprocedural allocfree closure:
// calls out of a //tokentm:allocfree root are followed into unannotated
// same-module callees, so an allocating helper two hops away is caught at
// the root's call site.
package allocfreecalls

type ring struct {
	buf []uint64
	pos int
}

// grow allocates a doubled buffer; it is legitimately allocating and
// unannotated.
func (r *ring) grow() {
	next := make([]uint64, 2*len(r.buf)+1)
	copy(next, r.buf)
	r.buf = next
}

// push reaches grow when the buffer is full.
func (r *ring) push(v uint64) {
	if r.pos == len(r.buf) {
		r.grow()
	}
	r.buf[r.pos] = v
	r.pos++
}

// record is the seeded bug: the annotated root reaches grow's make through
// the unannotated push.
//
//tokentm:allocfree
func (r *ring) record(v uint64) {
	r.push(v) // want `call in allocfree function record reaches an allocating construct: .*push -> .*grow \(make in grow allocates`
}

// advance is annotated, so it is verified at its own declaration and
// trusted by callers' closure walks.
//
//tokentm:allocfree
func (r *ring) advance() {
	r.pos++
}

// step's walk stops at the annotated advance: the exempted pattern.
//
//tokentm:allocfree
func (r *ring) step() {
	r.advance()
}

// sum calls nothing that allocates: a clean closure.
//
//tokentm:allocfree
func (r *ring) sum() uint64 {
	var s uint64
	for _, v := range r.buf {
		s += v
	}
	return s
}

// describe allocates (string concatenation) and is only ever called on a
// terminal panic path.
func describe(p int) string { return string(rune(p)) + " out of range" }

// check panics with an allocating formatter; panic arguments stay exempt
// interprocedurally, same as in the intra-procedural rules.
//
//tokentm:allocfree
func (r *ring) check() {
	if r.pos > len(r.buf) {
		panic(describe(r.pos))
	}
}
