// Package logorder exercises the logorder analyzer: on a
// //tokentm:writepath function, every store to a tracked data word must be
// dominated by a token claim and by an undo-log append for the same block
// address.
package logorder

type word struct{ v uint64 }

func (w *word) Load() uint64   { return w.v }
func (w *word) Store(x uint64) { w.v = x }

type entry struct{ a, v uint64 }

type tm struct {
	words []word
	log   []entry
}

// dataw returns the tracked data word of block a.
//
//tokentm:dataword
func (t *tm) dataw(a uint64) *word { return &t.words[a] }

// appendUndo records the old value of block a for abort replay.
//
//tokentm:logappend
func (t *tm) appendUndo(a, v uint64) { t.log = append(t.log, entry{a, v}) }

// claim acquires all write tokens of block a.
//
//tokentm:tokenclaim
func (t *tm) claim(a uint64) {}

// storeGood is the canonical order: claim, log the old value, then store.
//
//tokentm:writepath
func (t *tm) storeGood(a, v uint64) {
	t.claim(a)
	t.appendUndo(a, t.dataw(a).Load())
	t.dataw(a).Store(v)
}

// storeBeforeLog is the seeded bug: the block is mutated before its old
// value reaches the undo log, so an abort cannot restore it.
//
//tokentm:writepath
func (t *tm) storeBeforeLog(a, v uint64) {
	t.claim(a)
	t.dataw(a).Store(v) // want `not dominated by an undo-log append for a`
	t.appendUndo(a, 0)
}

// storeBeforeClaim mutates a block whose tokens it does not hold.
//
//tokentm:writepath
func (t *tm) storeBeforeClaim(a, v uint64) {
	t.appendUndo(a, t.dataw(a).Load())
	t.dataw(a).Store(v) // want `not dominated by a token claim`
	t.claim(a)
}

// wrongBlockLogged: an undo entry for a different address does not cover
// the store.
//
//tokentm:writepath
func (t *tm) wrongBlockLogged(a, b, v uint64) {
	t.claim(a)
	t.appendUndo(b, t.dataw(b).Load())
	t.dataw(a).Store(v) // want `not dominated by an undo-log append for a`
}

// claimOnOneBranchOnly: facts merge by intersection, so a claim on a single
// arm does not dominate the store below the join.
//
//tokentm:writepath
func (t *tm) claimOnOneBranchOnly(a, v uint64, cond bool) {
	t.appendUndo(a, t.dataw(a).Load())
	if cond {
		t.claim(a)
	}
	t.dataw(a).Store(v) // want `not dominated by a token claim`
}

// earlyReturnIsFine: a terminating arm is excluded from the merge, so the
// fall-through path keeps its facts.
//
//tokentm:writepath
func (t *tm) earlyReturnIsFine(a, v uint64, cond bool) {
	if cond {
		return
	}
	t.claim(a)
	t.appendUndo(a, t.dataw(a).Load())
	t.dataw(a).Store(v)
}

// aliasIsTracked: holding the data word in a local does not hide the store.
//
//tokentm:writepath
func (t *tm) aliasIsTracked(a, v uint64) {
	w := t.dataw(a)
	t.claim(a)
	t.appendUndo(a, w.Load())
	w.Store(v)
}

// aliasBug: the alias form is checked too (seeded bug through the local).
//
//tokentm:writepath
func (t *tm) aliasBug(a, v uint64) {
	w := t.dataw(a)
	t.claim(a)
	w.Store(v) // want `not dominated by an undo-log append for a`
}

// reinitZero documents a hand-verified exception via the ignore directive.
//
//tokentm:writepath
func (t *tm) reinitZero(a uint64) {
	t.claim(a)
	//lint:ignore logorder fresh block: the old value is architecturally zero
	t.dataw(a).Store(1)
}

// rawStoreOutOfScope: unannotated functions are not write paths; the
// analyzer stays silent even though this stores without claim or log.
func (t *tm) rawStoreOutOfScope(a, v uint64) {
	t.dataw(a).Store(v)
}

// breakArmEscapesMerge: the case-1 arm ends in a bare break and reaches
// the statement after the switch WITHOUT a claim or log — a break arm is
// not a terminated path, so the merge must include it and the store must
// be flagged on both counts.
//
//tokentm:writepath
func (t *tm) breakArmEscapesMerge(a, v, mode uint64) {
	switch mode {
	case 1:
		break // no claim, no log on this live path
	default:
		t.claim(a)
		t.appendUndo(a, t.dataw(a).Load())
	}
	t.dataw(a).Store(v) // want `not dominated by a token claim` `not dominated by an undo-log append for a`
}

// breakAfterClaim: both arms establish claim+log before breaking or
// falling out, so the store after the switch is clean.
//
//tokentm:writepath
func (t *tm) breakAfterClaim(a, v, mode uint64) {
	switch mode {
	case 1:
		t.claim(a)
		t.appendUndo(a, t.dataw(a).Load())
		break
	default:
		t.claim(a)
		t.appendUndo(a, t.dataw(a).Load())
	}
	t.dataw(a).Store(v)
}

// loopBreakStaysConservative: a break inside a for loop delivers its state
// to the loop exit, not to any switch; the loop's exit state is already
// the conservative pre-entry state, so the claim+log established before
// the break must not leak past the loop.
//
//tokentm:writepath
func (t *tm) loopBreakStaysConservative(a, v uint64) {
	for {
		t.claim(a)
		t.appendUndo(a, t.dataw(a).Load())
		break
	}
	t.dataw(a).Store(v) // want `not dominated by a token claim` `not dominated by an undo-log append for a`
}

// aliasReassigned: w is rebound to block b after its initializer, so the
// flow-insensitive alias map cannot know which address the store hits;
// the alias is dropped from tracking rather than checked against the
// stale address a (which would have wrongly passed — a is claimed and
// logged, b is not). Flow-sensitive alias tracking would flag this store;
// until then the conservative drop at least never misattributes.
//
//tokentm:writepath
func (t *tm) aliasReassigned(a, b, v uint64) {
	w := t.dataw(a)
	w = t.dataw(b)
	t.claim(a)
	t.appendUndo(a, 0)
	w.Store(v)
}
