// Package atomicfield exercises the atomicfield analyzer: field-level
// mixed atomic/plain access detection (the go vet gap) and CompareAndSwap
// retry-loop hygiene (the static form of the PR-6 upgrade-herd lesson).
package atomicfield

import (
	"runtime"
	"sync/atomic"
)

// Counter's hits field is maintained with function-style sync/atomic; every
// other access must go through the atomic API too.
type Counter struct {
	hits  uint64
	plain uint64
}

func (c *Counter) Hit() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *Counter) ReadRacy() uint64 {
	return c.hits // want `plain access to tokentm/stm/atomicfield\.Counter\.hits`
}

func (c *Counter) WriteRacy() {
	c.hits = 0 // want `plain access to tokentm/stm/atomicfield\.Counter\.hits`
}

// Fields never touched atomically stay free.
func (c *Counter) PlainFieldIsFine() uint64 {
	return c.plain
}

// NewCounter writes the field plainly on a freshly constructed, unpublished
// value: the constructor exemption.
func NewCounter() *Counter {
	c := &Counter{}
	c.hits = 1
	return c
}

// SnapshotApprox documents an accepted torn read via the ignore directive.
func (c *Counter) SnapshotApprox() uint64 {
	//lint:ignore atomicfield approximate stats read; tearing is acceptable here
	return c.hits
}

// Gate covers the function-style CAS (expected value is the second
// argument, after the address).
type Gate struct {
	word uint64
}

func openGate(g *Gate) {
	for {
		old := atomic.LoadUint64(&g.word)
		if atomic.CompareAndSwapUint64(&g.word, old, old|1) {
			return
		}
		runtime.Gosched()
	}
}

func peekGate(g *Gate) uint64 {
	return g.word // want `plain access to tokentm/stm/atomicfield\.Gate\.word`
}

func newGate() *Gate {
	g := new(Gate)
	g.word = 1
	return g
}

// casStale is the seeded livelock: the expected value is loaded once before
// the loop, so after the first failed CAS it can never match again — and
// the loop spins without backoff.
func casStale(w *atomic.Uint64) {
	old := w.Load()
	for { // want `unbounded CompareAndSwap retry loop without backoff`
		if w.CompareAndSwap(old, old+1) { // want `never re-loads its expected value old`
			return
		}
	}
}

// casGood re-loads inside the loop and yields between attempts.
func casGood(w *atomic.Uint64) {
	for {
		old := w.Load()
		if w.CompareAndSwap(old, old+1) {
			return
		}
		runtime.Gosched()
	}
}

// casBounded: a bounded spin is exempt from the backoff rule.
func casBounded(w *atomic.Uint64) bool {
	for i := 0; i < 8; i++ {
		old := w.Load()
		if w.CompareAndSwap(old, old|1) {
			return true
		}
	}
	return false
}

// pause stands in for the protocol's doom-or-yield helpers.
//
//tokentm:backoff
func pause() { runtime.Gosched() }

// casAnnotatedBackoff satisfies the backoff rule through a
// //tokentm:backoff-annotated function.
func casAnnotatedBackoff(w *atomic.Uint64) {
	for {
		old := w.Load()
		if w.CompareAndSwap(old, old+2) {
			return
		}
		pause()
	}
}

// casFlip: a constant expected value is a state flip, so the re-load rule
// is vacuous; panic on a broken invariant counts as doom.
func casFlip(w *atomic.Uint64) {
	for !w.CompareAndSwap(0, 1) {
		if w.Load() > 1 {
			panic("corrupt state word")
		}
		runtime.Gosched()
	}
}
