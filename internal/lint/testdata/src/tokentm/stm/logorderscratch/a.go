// Package logorderscratch probes switch-break handling.
package logorderscratch

type word struct{ v uint64 }

func (w *word) Load() uint64   { return w.v }
func (w *word) Store(x uint64) { w.v = x }

type entry struct{ a, v uint64 }

type tm struct {
	words []word
	log   []entry
}

//tokentm:dataword
func (t *tm) dataw(a uint64) *word { return &t.words[a] }

//tokentm:logappend
func (t *tm) appendUndo(a, v uint64) { t.log = append(t.log, entry{a, v}) }

//tokentm:tokenclaim
func (t *tm) claim(a uint64) {}

// breakArmEscapesMerge: the case-1 arm ends in a bare break and continues
// after the switch WITHOUT a claim or log, but the analyzer should still
// flag the store.
//
//tokentm:writepath
func (t *tm) breakArmEscapesMerge(a, v, mode uint64) {
	switch mode {
	case 1:
		break // no claim, no log on this live path
	default:
		t.claim(a)
		t.appendUndo(a, t.dataw(a).Load())
	}
	t.dataw(a).Store(v) // want `not dominated`
}

// aliasReassigned: w is rebound to block b, but the alias map keeps the
// first initializer, so the store is checked against a instead of b.
//
//tokentm:writepath
func (t *tm) aliasReassigned(a, b, v uint64) {
	w := t.dataw(a)
	w = t.dataw(b)
	t.claim(a)
	t.appendUndo(a, 0)
	w.Store(v) // stores to b; no claim/log for b, should be flagged
}
