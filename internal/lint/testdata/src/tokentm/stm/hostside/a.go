// Package hostside is a lint fixture pinning the stm subsystem's scope:
// host-concurrent packages under stm/ measure wall-clock time (throughput,
// latency percentiles) and seed generators by charter, so the wallclock
// analyzer must stay silent here even though the sibling fixture under
// internal/sim/wallclock flags the identical code.
package hostside

import (
	"math/rand"
	"time"
)

func latencySampleIsFine() time.Duration {
	t0 := time.Now()
	time.Sleep(0)
	return time.Since(t0)
}

func globalRandIsFine() int {
	return rand.Intn(100)
}

func mapOrderIsFine(m map[uint64]uint64) uint64 {
	var sum uint64
	for _, v := range m {
		sum += v
	}
	return sum
}
