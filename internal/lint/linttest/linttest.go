// Package linttest is a dependency-free analogue of
// golang.org/x/tools/go/analysis/analysistest: it runs analyzers over a
// testdata package and checks the reported diagnostics against expectations
// written in the fixture sources.
//
// An expectation is a comment of the form
//
//	// want `regexp` `regexp` ...
//
// matching diagnostics on its own line, rendered as "analyzer: message".
// The variant `// want-1 ...` (or want+2, ...) matches diagnostics N lines
// away — needed when a diagnostic lands on a comment-only line, such as the
// directive-hygiene findings for a malformed //lint:ignore. Every
// diagnostic must match an expectation and every expectation must be
// matched exactly once.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"tokentm/internal/lint"
	"tokentm/internal/lint/analysis"
)

// sharedLoader is reused across Run calls: the source importer re-typechecks
// stdlib imports per Loader, so sharing one amortizes that cost over the
// whole fixture suite. Tests run sequentially within a package, so plain
// lazy init is enough; the Once guards parallel use.
var (
	loaderOnce   sync.Once
	sharedLoader *lint.Loader
)

func loader() *lint.Loader {
	loaderOnce.Do(func() { sharedLoader = lint.NewLoader() })
	return sharedLoader
}

var wantRe = regexp.MustCompile(`^//\s*want([+-]\d+)?\s+(.+)$`)
var patRe = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the testdata package rooted at dir — the import path is the
// path below "testdata/src/" — runs the analyzers (with //lint:ignore
// filtering, as the real driver does), and reports every mismatch between
// diagnostics and want-expectations as a test error.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	importPath := importPathFor(t, dir)
	pkg, err := loader().LoadDir(importPath, dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}

	expects := collectExpectations(t, pkg)
	for _, d := range lint.Run(pkg, analyzers) {
		pos := pkg.Fset.Position(d.Pos)
		got := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		if !claim(expects, pos.Filename, pos.Line, got) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, got)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(e.file), e.line, e.pattern)
		}
	}
}

func importPathFor(t *testing.T, dir string) string {
	t.Helper()
	slashed := filepath.ToSlash(dir)
	const marker = "testdata/src/"
	i := strings.Index(slashed, marker)
	if i < 0 {
		t.Fatalf("testdata dir %q is not under testdata/src/", dir)
	}
	return slashed[i+len(marker):]
}

func collectExpectations(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, grp := range f.Comments {
			for _, c := range grp.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				offset := 0
				if m[1] != "" {
					offset, _ = strconv.Atoi(m[1])
				}
				pats := patRe.FindAllStringSubmatch(m[2], -1)
				if len(pats) == 0 {
					t.Fatalf("%s:%d: want comment without a `regexp` pattern", pos.Filename, pos.Line)
				}
				for _, p := range pats {
					re, err := regexp.Compile(p[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p[1], err)
					}
					out = append(out, &expectation{
						file:    pos.Filename,
						line:    pos.Line + offset,
						pattern: re,
					})
				}
			}
		}
	}
	return out
}

func claim(expects []*expectation, file string, line int, got string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.pattern.MatchString(got) {
			e.matched = true
			return true
		}
	}
	return false
}
