package lint

import (
	"go/ast"
	"go/types"

	"tokentm/internal/lint/analysis"
)

// WallClock forbids wall-clock reads and the global math/rand source inside
// simulation packages. Simulated time advances only through mem.Cycle
// arithmetic, and the only sanctioned randomness is a seeded
// rand.New(rand.NewSource(seed)) instance owned by the machine — anything
// else lets host timing or process-global state leak into simulated
// observables. Host-side packages (cmd/, stm/..., internal/harness,
// internal/trace) and _test.go files are out of scope: the explicitly
// exempt hostSidePackages first, then everything outside simPackages.
var WallClock = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "forbid wall-clock and global math/rand use in simulation packages",
	Run:  runWallClock,
}

// forbiddenTimeFuncs are the package time functions that observe or depend
// on the host clock. Types and constants (time.Duration, time.Millisecond)
// remain usable.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// allowedRandFuncs are the math/rand package-level functions that build
// seeded generators rather than consulting the global source. Methods on a
// *rand.Rand value are always allowed (they are selector calls on a value,
// not on the package).
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runWallClock(pass *analysis.Pass) error {
	// Host-side packages (stm/..., cmd/...) read the wall clock by
	// charter — throughput and latency measurement — and are exempt
	// explicitly, not just by falling outside simPackages.
	if isHostSidePackage(pass.Pkg.Path()) {
		return nil
	}
	if !isSimPackage(pass.Pkg.Path()) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "time":
			if forbiddenTimeFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"time.%s in a simulation package: simulated time comes from mem.Cycle, never the host clock",
					sel.Sel.Name)
			}
		case "math/rand", "math/rand/v2":
			if allowedRandFuncs[sel.Sel.Name] {
				return true
			}
			// Only function references touch the global source; type
			// references (rand.Rand, rand.Source) are fine.
			if obj, ok := pass.TypesInfo.Uses[sel.Sel]; ok {
				if _, isFunc := obj.(*types.Func); !isFunc {
					return true
				}
			}
			pass.Reportf(sel.Pos(),
				"global rand.%s in a simulation package: draw from the machine's seeded rand.New(rand.NewSource(seed)) instance",
				sel.Sel.Name)
		}
		return true
	})
	return nil
}
