package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"tokentm/internal/lint/analysis"
)

// Exhaustive checks that switch statements over the protocol enums — named
// integer types with two or more package-level constants, such as the MESI
// CohState, the packed metastate state field, access Outcomes and loss
// reasons — either cover every declared constant or carry a default clause
// that panics or returns. This encodes the paper's Tables 3a/3b requirement
// that the transition tables define an entry for *every* summary state: a
// silently-ignored enum value is a protocol hole, not a don't-care.
var Exhaustive = &analysis.Analyzer{
	Name: "exhaustive",
	Doc:  "require enum switches to cover every constant or fail loudly in default",
	Run:  runExhaustive,
}

func runExhaustive(pass *analysis.Pass) error {
	if !isSimPackage(pass.Pkg.Path()) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		tv, ok := pass.TypesInfo.Types[sw.Tag]
		if !ok {
			return true
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			return true
		}
		basic, ok := named.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsInteger == 0 {
			return true
		}
		enums := enumConstants(named)
		if len(enums) < 2 {
			return true
		}

		covered := make(map[string]bool)
		var defaultClause *ast.CaseClause
		for _, stmt := range sw.Body.List {
			cc := stmt.(*ast.CaseClause)
			if cc.List == nil {
				defaultClause = cc
				continue
			}
			for _, e := range cc.List {
				ctv, ok := pass.TypesInfo.Types[e]
				if !ok || ctv.Value == nil {
					continue
				}
				covered[ctv.Value.ExactString()] = true
			}
		}

		var missing []string
		for _, ec := range enums {
			if !covered[ec.Val().ExactString()] {
				missing = append(missing, ec.Name())
			}
		}
		if len(missing) == 0 {
			return true
		}
		if defaultClause == nil {
			sort.Strings(missing)
			pass.Reportf(sw.Switch,
				"switch over %s misses %s: cover every constant or add a default that panics/returns an error (Tables 3a/3b: every summary state has a defined transition)",
				describeType(named), strings.Join(missing, ", "))
			return true
		}
		if !failsLoudly(defaultClause) {
			pass.Reportf(defaultClause.Pos(),
				"default clause of non-exhaustive switch over %s must panic or return, so an unhandled %s cannot be silently ignored",
				describeType(named), describeType(named))
		}
		return true
	})
	return nil
}

// enumConstants returns the package-level constants declared with exactly
// the named type, in the defining package.
func enumConstants(named *types.Named) []*types.Const {
	pkg := named.Obj().Pkg()
	if pkg == nil { // built-in or universe type
		return nil
	}
	var out []*types.Const
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			if c.Val().Kind() == constant.Int {
				out = append(out, c)
			}
		}
	}
	return out
}

// failsLoudly reports whether the clause body contains a panic call or a
// return statement (recursively), i.e. an unexpected value cannot fall out
// of the switch unnoticed.
func failsLoudly(cc *ast.CaseClause) bool {
	loud := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if loud {
				return false
			}
			switch x := n.(type) {
			case *ast.ReturnStmt:
				loud = true
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "panic" {
					loud = true
				}
			}
			return !loud
		})
		if loud {
			return true
		}
	}
	return false
}
