package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"

	"tokentm/internal/lint/analysis"
)

// AllocFree checks functions annotated //tokentm:allocfree — the protocol
// hot paths (probe, token-set updates, commit walk, abort unroll, enemy
// enumeration) that PR 2 made allocation-free. The check is a conservative,
// non-transitive AST scan of each annotated body: it flags constructs that
// allocate (or typically allocate) on the steady-state path:
//
//   - make and new
//   - composite literals that escape the statement: &T{...}, and any
//     slice or map literal
//   - append whose destination is not rooted in a parameter, receiver, or
//     named result (scratch-buffer appends reuse caller storage; appends to
//     fresh locals grow fresh backing arrays)
//   - closures (func literals)
//   - fmt.* calls and non-constant string concatenation
//   - explicit conversions to interface types (boxing)
//
// Everything inside a panic(...) argument is exempt: invariant-violation
// messages run once, on a terminal path. The annotation list is
// cross-checked dynamically by TestAllocFreeAnnotations table tests
// asserting testing.AllocsPerRun == 0, so the static and runtime views
// cannot drift: an annotation without a table entry (or vice versa) fails
// the test, and an allocation the AST scan cannot see fails AllocsPerRun.
var AllocFree = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "forbid allocating constructs in //tokentm:allocfree functions",
	Run:  runAllocFree,
}

// AllocFreeDirective is the annotation marking a function's body
// allocation-free.
const AllocFreeDirective = "//tokentm:allocfree"

func runAllocFree(pass *analysis.Pass) error {
	for _, fd := range enclosingFuncs(pass.Files) {
		if !isAllocFreeAnnotated(fd) {
			continue
		}
		checkAllocFreeFunc(pass, fd)
	}
	return nil
}

func isAllocFreeAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == AllocFreeDirective ||
			len(c.Text) > len(AllocFreeDirective) && c.Text[:len(AllocFreeDirective)+1] == AllocFreeDirective+" " {
			return true
		}
	}
	return false
}

func checkAllocFreeFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &allocChecker{pass: pass, fd: fd}
	c.collectAllowedRoots()
	c.collectVarInits()
	c.collectPanicRanges()
	c.collectAddressedLits()
	ast.Inspect(fd.Body, c.visit)
}

type allocChecker struct {
	pass *allocPass
	fd   *ast.FuncDecl
	// allowed are objects whose storage belongs to the caller: parameters,
	// receivers, named results.
	allowed map[types.Object]bool
	// varInits maps a local variable to its initializer, for tracing
	// scratch-buffer aliases like `out := t.scratch[:0]`.
	varInits map[types.Object]ast.Expr
	// panicRanges are the source extents of panic(...) calls; nodes inside
	// are exempt.
	panicRanges [][2]token.Pos
	// addressed marks composite literals under a unary &.
	addressed map[*ast.CompositeLit]bool
}

// allocPass is the subset of analysis.Pass the checker uses (an alias keeps
// the field list above readable).
type allocPass = analysis.Pass

func (c *allocChecker) collectAllowedRoots() {
	c.allowed = make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
					c.allowed[obj] = true
				}
			}
		}
	}
	addFields(c.fd.Recv)
	addFields(c.fd.Type.Params)
	addFields(c.fd.Type.Results)
}

func (c *allocChecker) collectVarInits() {
	c.varInits = make(map[types.Object]ast.Expr)
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var obj types.Object
				if s.Tok == token.DEFINE {
					obj = c.pass.TypesInfo.Defs[id]
				} else {
					obj = c.pass.TypesInfo.Uses[id]
				}
				// First initializer (source order) wins: later
				// self-referential reassignments like `out = append(out, e)`
				// must not shadow the declaration that roots the buffer.
				if obj != nil {
					if _, seen := c.varInits[obj]; !seen {
						c.varInits[obj] = s.Rhs[i]
					}
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) != len(s.Values) {
				return true
			}
			for i, name := range s.Names {
				if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
					if _, seen := c.varInits[obj]; !seen {
						c.varInits[obj] = s.Values[i]
					}
				}
			}
		}
		return true
	})
}

func (c *allocChecker) collectPanicRanges() {
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
				c.panicRanges = append(c.panicRanges, [2]token.Pos{call.Pos(), call.End()})
			}
		}
		return true
	})
}

func (c *allocChecker) collectAddressedLits() {
	c.addressed = make(map[*ast.CompositeLit]bool)
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if lit, ok := u.X.(*ast.CompositeLit); ok {
				c.addressed[lit] = true
			}
		}
		return true
	})
}

func (c *allocChecker) inPanic(pos token.Pos) bool {
	for _, r := range c.panicRanges {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}

func (c *allocChecker) visit(n ast.Node) bool {
	switch x := n.(type) {
	case *ast.FuncLit:
		c.pass.Reportf(x.Pos(), "closure in allocfree function %s: func literals allocate; hoist the logic or a named function", c.fd.Name.Name)
		return false
	case *ast.CompositeLit:
		if c.inPanic(x.Pos()) {
			return true
		}
		tv, ok := c.pass.TypesInfo.Types[x]
		if !ok {
			return true
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Map:
			c.pass.Reportf(x.Pos(), "%s literal in allocfree function %s allocates backing storage", describeType(tv.Type), c.fd.Name.Name)
		default:
			if c.addressed[x] {
				c.pass.Reportf(x.Pos(), "&%s{...} in allocfree function %s heap-allocates; reuse a scratch value", describeType(tv.Type), c.fd.Name.Name)
			}
		}
	case *ast.BinaryExpr:
		if x.Op != token.ADD || c.inPanic(x.Pos()) {
			return true
		}
		if tv, ok := c.pass.TypesInfo.Types[x]; ok && tv.Value == nil {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				c.pass.Reportf(x.Pos(), "string concatenation in allocfree function %s allocates", c.fd.Name.Name)
			}
		}
	case *ast.CallExpr:
		c.visitCall(x)
	}
	return true
}

func (c *allocChecker) visitCall(call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, isBuiltin := c.pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
			switch fun.Name {
			case "make", "new":
				if !c.inPanic(call.Pos()) {
					c.pass.Reportf(call.Pos(), "%s in allocfree function %s allocates; preallocate and reuse storage", fun.Name, c.fd.Name.Name)
				}
			case "append":
				if len(call.Args) > 0 && !c.rootAllowed(call.Args[0], 8) && !c.inPanic(call.Pos()) {
					c.pass.Reportf(call.Pos(), "append to %s in allocfree function %s: destination is not rooted in a parameter, receiver or named result, so it grows fresh backing storage", types.ExprString(call.Args[0]), c.fd.Name.Name)
				}
			}
			return
		}
	case *ast.SelectorExpr:
		if pkgID, ok := fun.X.(*ast.Ident); ok {
			if pkgName, ok := c.pass.TypesInfo.Uses[pkgID].(*types.PkgName); ok &&
				pkgName.Imported().Path() == "fmt" && !c.inPanic(call.Pos()) {
				c.pass.Reportf(call.Pos(), "fmt.%s in allocfree function %s allocates (boxing + formatting); restrict fmt to panic messages", fun.Sel.Name, c.fd.Name.Name)
				return
			}
		}
	}
	// Explicit conversion to an interface type boxes its operand.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && !c.inPanic(call.Pos()) {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if atv, ok := c.pass.TypesInfo.Types[call.Args[0]]; ok && !types.IsInterface(atv.Type) {
				c.pass.Reportf(call.Pos(), "conversion to interface %s in allocfree function %s boxes its operand", describeType(tv.Type), c.fd.Name.Name)
			}
		}
	}
}

// rootAllowed traces expr through index/slice/selector wrappers and local
// aliases to its root identifier and reports whether that root's storage
// belongs to the caller (parameter, receiver, named result).
func (c *allocChecker) rootAllowed(expr ast.Expr, depth int) bool {
	if depth == 0 {
		return false
	}
	switch e := expr.(type) {
	case *ast.Ident:
		var obj types.Object
		if obj = c.pass.TypesInfo.Uses[e]; obj == nil {
			obj = c.pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return false
		}
		if c.allowed[obj] {
			return true
		}
		if init, ok := c.varInits[obj]; ok {
			return c.rootAllowed(init, depth-1)
		}
		return false
	case *ast.SelectorExpr:
		return c.rootAllowed(e.X, depth-1)
	case *ast.IndexExpr:
		return c.rootAllowed(e.X, depth-1)
	case *ast.SliceExpr:
		return c.rootAllowed(e.X, depth-1)
	case *ast.ParenExpr:
		return c.rootAllowed(e.X, depth-1)
	case *ast.CallExpr:
		// append(x, ...) chains: the result occupies x's storage when it
		// fits, so the root of the first argument decides.
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			return c.rootAllowed(e.Args[0], depth-1)
		}
		return false
	}
	return false
}

func describeType(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// AllocFreeFuncs scans the non-test Go files of dir (no type-checking) and
// returns the names of functions annotated //tokentm:allocfree, as
// "Receiver.Name" for methods and "Name" otherwise, sorted. The
// TestAllocFreeAnnotations table tests use it to keep the static annotation
// list and the dynamic testing.AllocsPerRun table in lock-step.
func AllocFreeFuncs(dir string) ([]string, error) {
	names, err := GoFilesIn(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []string
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !isAllocFreeAnnotated(fd) {
				continue
			}
			out = append(out, funcDisplayName(fd))
		}
	}
	sort.Strings(out)
	return out, nil
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
