package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"tokentm/internal/lint/analysis"
)

// AllocFree checks functions annotated //tokentm:allocfree — the protocol
// hot paths (probe, token-set updates, commit walk, abort unroll, enemy
// enumeration) that PR 2 made allocation-free. The check is a conservative,
// non-transitive AST scan of each annotated body: it flags constructs that
// allocate (or typically allocate) on the steady-state path:
//
//   - make and new
//   - composite literals that escape the statement: &T{...}, and any
//     slice or map literal
//   - append whose destination is not rooted in a parameter, receiver, or
//     named result (scratch-buffer appends reuse caller storage; appends to
//     fresh locals grow fresh backing arrays)
//   - closures (func literals)
//   - fmt.* calls and non-constant string concatenation
//   - explicit conversions to interface types (boxing)
//
// Everything inside a panic(...) argument is exempt: invariant-violation
// messages run once, on a terminal path. The annotation list is
// cross-checked dynamically by TestAllocFreeAnnotations table tests
// asserting testing.AllocsPerRun == 0, so the static and runtime views
// cannot drift: an annotation without a table entry (or vice versa) fails
// the test, and an allocation the AST scan cannot see fails AllocsPerRun.
var AllocFree = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "forbid allocating constructs in //tokentm:allocfree functions",
	Run:  runAllocFree,
}

// AllocFreeDirective is the annotation marking a function's body
// allocation-free.
const AllocFreeDirective = "//tokentm:allocfree"

// allocFreeCallWhitelist names same-module callees the interprocedural
// closure walk trusts without descending: leaf calls whose allocating
// construct is known to sit on a terminal path the intra-procedural rules
// cannot see from the caller. Each entry carries its justification.
var allocFreeCallWhitelist = map[string]string{
	"tokentm/internal/metastate.CheckStamp":      "constructs *StampOverflowError only when the 48-bit stamp space is exhausted; every caller panics on a non-nil return, so the steady state never allocates",
	"(*tokentm/internal/cache.Cache).newSet":     "first-touch lazy materialization of one cache set from an arena chunk; amortized to zero once the working set is touched, which the AllocsPerRun tables prove",
	"(*tokentm/internal/mem.Store).StoreWord":    "first-touch lazy page materialization (new(storePage) once per 4KiB page); steady-state stores hit the page cache, which the AllocsPerRun tables prove",
	"(*tokentm/internal/coherence.MemSys).entry": "first-touch lazy materialization of one directory page (new(dirPage) once per dirPageBlocks); steady-state lookups hit the one-entry page cache, which the AllocsPerRun tables prove",
}

func runAllocFree(pass *analysis.Pass) error {
	for _, fd := range enclosingFuncs(pass.Files) {
		if !isAllocFreeAnnotated(fd) {
			continue
		}
		checkAllocFreeFunc(pass, fd)
		checkAllocFreeClosure(pass, fd)
	}
	return nil
}

// checkAllocFreeClosure follows the same-module call graph out of the
// annotated function fd (facts.go computes per-function callees and alloc
// sites for the whole module) and reports any reachable allocating
// construct in an unannotated callee. Annotated callees are trusted here —
// they are checked at their own declaration — and so are whitelisted
// leaves and calls that do not resolve statically (interface methods, func
// values) or resolve outside the loaded package set.
func checkAllocFreeClosure(pass *analysis.Pass, fd *ast.FuncDecl) {
	if pass.Facts == nil {
		return
	}
	root, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	rootFact := pass.Facts.Funcs[funcKey(root)]
	if rootFact == nil {
		return
	}
	visited := map[string]bool{funcKey(root): true}
	for _, callee := range rootFact.Callees {
		if path, site := findAllocPath(pass.Facts, callee.Name, visited, 6); site != nil {
			pass.Reportf(callee.Pos,
				"call in allocfree function %s reaches an allocating construct: %s (%s at %s)",
				fd.Name.Name, strings.Join(path, " -> "), site.What,
				pass.Fset.Position(site.Pos))
		}
	}
}

// findAllocPath walks the callee closure from key and returns the call
// chain to the first allocating unannotated function, or nil. visited
// persists across sibling calls of one root so each offending function is
// reported through at most one chain.
func findAllocPath(facts *analysis.Facts, key string, visited map[string]bool, depth int) ([]string, *analysis.AllocSite) {
	if depth == 0 || visited[key] {
		return nil, nil
	}
	visited[key] = true
	if _, ok := allocFreeCallWhitelist[key]; ok {
		return nil, nil
	}
	fact := facts.Funcs[key]
	if fact == nil || fact.AllocFree {
		return nil, nil
	}
	if len(fact.AllocSites) > 0 {
		return []string{key}, &fact.AllocSites[0]
	}
	for _, callee := range fact.Callees {
		if path, site := findAllocPath(facts, callee.Name, visited, depth-1); site != nil {
			return append([]string{key}, path...), site
		}
	}
	return nil, nil
}

func isAllocFreeAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == AllocFreeDirective ||
			len(c.Text) > len(AllocFreeDirective) && c.Text[:len(AllocFreeDirective)+1] == AllocFreeDirective+" " {
			return true
		}
	}
	return false
}

func checkAllocFreeFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := newAllocChecker(pass.TypesInfo, fd, pass.Reportf)
	ast.Inspect(fd.Body, c.visit)
}

// newAllocChecker prepares a checker over fd's body. The checker is
// decoupled from analysis.Pass so fact collection (facts.go) can run it in
// collect mode over every function of the module, not just annotated ones.
func newAllocChecker(info *types.Info, fd *ast.FuncDecl, report func(token.Pos, string, ...any)) *allocChecker {
	c := &allocChecker{info: info, fd: fd, report: report}
	c.collectAllowedRoots()
	c.collectVarInits()
	c.collectPanicRanges()
	c.collectAddressedLits()
	return c
}

type allocChecker struct {
	info   *types.Info
	fd     *ast.FuncDecl
	report func(token.Pos, string, ...any)
	// allowed are objects whose storage belongs to the caller: parameters,
	// receivers, named results.
	allowed map[types.Object]bool
	// varInits maps a local variable to its initializer, for tracing
	// scratch-buffer aliases like `out := t.scratch[:0]`.
	varInits map[types.Object]ast.Expr
	// panicRanges are the source extents of panic(...) calls; nodes inside
	// are exempt.
	panicRanges [][2]token.Pos
	// addressed marks composite literals under a unary &.
	addressed map[*ast.CompositeLit]bool
}

func (c *allocChecker) collectAllowedRoots() {
	c.allowed = make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := c.info.Defs[name]; obj != nil {
					c.allowed[obj] = true
				}
			}
		}
	}
	addFields(c.fd.Recv)
	addFields(c.fd.Type.Params)
	addFields(c.fd.Type.Results)
}

func (c *allocChecker) collectVarInits() {
	c.varInits = make(map[types.Object]ast.Expr)
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var obj types.Object
				if s.Tok == token.DEFINE {
					obj = c.info.Defs[id]
				} else {
					obj = c.info.Uses[id]
				}
				// First initializer (source order) wins: later
				// self-referential reassignments like `out = append(out, e)`
				// must not shadow the declaration that roots the buffer.
				if obj != nil {
					if _, seen := c.varInits[obj]; !seen {
						c.varInits[obj] = s.Rhs[i]
					}
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) != len(s.Values) {
				return true
			}
			for i, name := range s.Names {
				if obj := c.info.Defs[name]; obj != nil {
					if _, seen := c.varInits[obj]; !seen {
						c.varInits[obj] = s.Values[i]
					}
				}
			}
		}
		return true
	})
}

func (c *allocChecker) collectPanicRanges() {
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, isBuiltin := c.info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
				c.panicRanges = append(c.panicRanges, [2]token.Pos{call.Pos(), call.End()})
			}
		}
		return true
	})
}

func (c *allocChecker) collectAddressedLits() {
	c.addressed = make(map[*ast.CompositeLit]bool)
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if lit, ok := u.X.(*ast.CompositeLit); ok {
				c.addressed[lit] = true
			}
		}
		return true
	})
}

func (c *allocChecker) inPanic(pos token.Pos) bool {
	for _, r := range c.panicRanges {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}

func (c *allocChecker) visit(n ast.Node) bool {
	switch x := n.(type) {
	case *ast.FuncLit:
		c.report(x.Pos(), "closure in allocfree function %s: func literals allocate; hoist the logic or a named function", c.fd.Name.Name)
		return false
	case *ast.CompositeLit:
		if c.inPanic(x.Pos()) {
			return true
		}
		tv, ok := c.info.Types[x]
		if !ok {
			return true
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Map:
			c.report(x.Pos(), "%s literal in allocfree function %s allocates backing storage", describeType(tv.Type), c.fd.Name.Name)
		default:
			if c.addressed[x] {
				c.report(x.Pos(), "&%s{...} in allocfree function %s heap-allocates; reuse a scratch value", describeType(tv.Type), c.fd.Name.Name)
			}
		}
	case *ast.BinaryExpr:
		if x.Op != token.ADD || c.inPanic(x.Pos()) {
			return true
		}
		if tv, ok := c.info.Types[x]; ok && tv.Value == nil {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				c.report(x.Pos(), "string concatenation in allocfree function %s allocates", c.fd.Name.Name)
			}
		}
	case *ast.CallExpr:
		c.visitCall(x)
	}
	return true
}

func (c *allocChecker) visitCall(call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, isBuiltin := c.info.Uses[fun].(*types.Builtin); isBuiltin {
			switch fun.Name {
			case "make", "new":
				if !c.inPanic(call.Pos()) {
					c.report(call.Pos(), "%s in allocfree function %s allocates; preallocate and reuse storage", fun.Name, c.fd.Name.Name)
				}
			case "append":
				if len(call.Args) > 0 && !c.rootAllowed(call.Args[0], 8) && !c.inPanic(call.Pos()) {
					c.report(call.Pos(), "append to %s in allocfree function %s: destination is not rooted in a parameter, receiver or named result, so it grows fresh backing storage", types.ExprString(call.Args[0]), c.fd.Name.Name)
				}
			}
			return
		}
	case *ast.SelectorExpr:
		if pkgID, ok := fun.X.(*ast.Ident); ok {
			if pkgName, ok := c.info.Uses[pkgID].(*types.PkgName); ok &&
				pkgName.Imported().Path() == "fmt" && !c.inPanic(call.Pos()) {
				c.report(call.Pos(), "fmt.%s in allocfree function %s allocates (boxing + formatting); restrict fmt to panic messages", fun.Sel.Name, c.fd.Name.Name)
				return
			}
		}
	}
	// Explicit conversion to an interface type boxes its operand.
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() && !c.inPanic(call.Pos()) {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if atv, ok := c.info.Types[call.Args[0]]; ok && !types.IsInterface(atv.Type) {
				c.report(call.Pos(), "conversion to interface %s in allocfree function %s boxes its operand", describeType(tv.Type), c.fd.Name.Name)
			}
		}
	}
}

// rootAllowed traces expr through index/slice/selector wrappers and local
// aliases to its root identifier and reports whether that root's storage
// belongs to the caller (parameter, receiver, named result).
func (c *allocChecker) rootAllowed(expr ast.Expr, depth int) bool {
	if depth == 0 {
		return false
	}
	switch e := expr.(type) {
	case *ast.Ident:
		var obj types.Object
		if obj = c.info.Uses[e]; obj == nil {
			obj = c.info.Defs[e]
		}
		if obj == nil {
			return false
		}
		if c.allowed[obj] {
			return true
		}
		if init, ok := c.varInits[obj]; ok {
			return c.rootAllowed(init, depth-1)
		}
		return false
	case *ast.SelectorExpr:
		return c.rootAllowed(e.X, depth-1)
	case *ast.IndexExpr:
		return c.rootAllowed(e.X, depth-1)
	case *ast.SliceExpr:
		return c.rootAllowed(e.X, depth-1)
	case *ast.ParenExpr:
		return c.rootAllowed(e.X, depth-1)
	case *ast.CallExpr:
		// append(x, ...) chains: the result occupies x's storage when it
		// fits, so the root of the first argument decides.
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			return c.rootAllowed(e.Args[0], depth-1)
		}
		return false
	}
	return false
}

func describeType(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// AllocFreeFuncs scans the non-test Go files of dir (no type-checking) and
// returns the names of functions annotated //tokentm:allocfree, as
// "Receiver.Name" for methods and "Name" otherwise, sorted. The
// TestAllocFreeAnnotations table tests use it to keep the static annotation
// list and the dynamic testing.AllocsPerRun table in lock-step.
func AllocFreeFuncs(dir string) ([]string, error) {
	names, err := GoFilesIn(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []string
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !isAllocFreeAnnotated(fd) {
				continue
			}
			out = append(out, funcDisplayName(fd))
		}
	}
	sort.Strings(out)
	return out, nil
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
