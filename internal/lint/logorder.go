package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"tokentm/internal/lint/analysis"
)

// LogOrder checks the write-before-log bug class — the one the explore
// model checker catches dynamically via the skip-log-credit mutation — at
// compile time. The TokenTM commit/abort argument requires that before a
// transaction overwrites a tracked data word it (a) holds write tokens on
// the block and (b) has appended the old value to its undo log; a store
// that precedes either step is unrecoverable on abort.
//
// The check is annotation-driven and intra-procedural:
//
//   - //tokentm:writepath marks an entry point to analyze;
//   - //tokentm:tokenclaim marks the function that claims write tokens;
//   - //tokentm:logappend marks the undo-log append, whose first argument
//     is the block address being logged;
//   - //tokentm:dataword marks the accessor that returns a tracked data
//     word, whose last argument is the block address.
//
// Within each write path the analyzer walks the statement graph with a
// conservative forward dataflow: a tracked store — a .Store(...) on the
// result of a dataword accessor, directly or through a single local alias —
// must be dominated by a tokenclaim call and by a logappend call whose
// address expression textually matches the store's. Branches merge by
// intersection (a fact holds after an if only when it holds on every
// non-terminating arm); loop bodies are analyzed with the facts that hold
// on entry, so a claim established only late in a previous iteration does
// not count — conservative, and suppressible with //lint:ignore where the
// protocol argument is made by hand.
var LogOrder = &analysis.Analyzer{
	Name: "logorder",
	Doc:  "tracked data-word stores on //tokentm:writepath must be dominated by token claim and undo-log append",
	Run:  runLogOrder,
}

func runLogOrder(pass *analysis.Pass) error {
	for _, fd := range enclosingFuncs(pass.Files) {
		if !hasDirective(fd, WritePathDirective) {
			continue
		}
		w := &logOrderWalker{pass: pass, fd: fd}
		w.collectDataWordAliases()
		w.block(fd.Body, logOrderState{logged: map[string]bool{}})
	}
	return nil
}

// logOrderState is the abstract state at one program point: whether a token
// claim dominates it, and which address expressions have a dominating
// undo-log append.
type logOrderState struct {
	claim      bool
	logged     map[string]bool
	terminated bool // a return/panic/break was taken; excluded from merges
}

func (s logOrderState) clone() logOrderState {
	logged := make(map[string]bool, len(s.logged))
	for k := range s.logged {
		logged[k] = true
	}
	return logOrderState{claim: s.claim, logged: logged}
}

// mergeStates intersects the facts of the non-terminated branch states.
// With every branch terminated, the merge point is unreachable and any
// state is sound; the first branch is returned.
func mergeStates(states ...logOrderState) logOrderState {
	var live []logOrderState
	for _, s := range states {
		if !s.terminated {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		out := states[0]
		out.terminated = true
		return out
	}
	out := live[0].clone()
	for _, s := range live[1:] {
		out.claim = out.claim && s.claim
		for k := range out.logged {
			if !s.logged[k] {
				delete(out.logged, k)
			}
		}
	}
	return out
}

type logOrderWalker struct {
	pass *analysis.Pass
	fd   *ast.FuncDecl
	// dataWordAliases maps a local variable to the dataword accessor call
	// that initialized it, so `w := tm.dataw(a); ...; w.Store(v)` is
	// tracked like the direct form. Only single-assignment locals qualify:
	// a variable rebound after its initializer would otherwise be checked
	// against the stale address (the collection pass is flow-insensitive),
	// so reassigned aliases are dropped from tracking entirely.
	dataWordAliases map[types.Object]*ast.CallExpr
	// breakTargets is the stack of enclosing breakable constructs; a
	// non-nil entry collects the states flowing out of a bare break (a
	// switch exit), a nil entry swallows them (a loop — its exit state is
	// the conservative pre-entry state already).
	breakTargets []*[]logOrderState
}

func (w *logOrderWalker) collectDataWordAliases() {
	w.dataWordAliases = make(map[types.Object]*ast.CallExpr)
	assigns := make(map[types.Object]int)
	ast.Inspect(w.fd.Body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := w.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = w.pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			assigns[obj]++
			if len(s.Lhs) != len(s.Rhs) {
				continue
			}
			call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr)
			if !ok || !w.isRole(call, roleDataWord) {
				continue
			}
			w.dataWordAliases[obj] = call
		}
		return true
	})
	for obj := range w.dataWordAliases {
		if assigns[obj] != 1 {
			delete(w.dataWordAliases, obj)
		}
	}
}

type logOrderRole int

const (
	roleTokenClaim logOrderRole = iota
	roleLogAppend
	roleDataWord
)

// isRole reports whether call's static target carries the given annotation,
// resolved through the module-wide fact index.
func (w *logOrderWalker) isRole(call *ast.CallExpr, role logOrderRole) bool {
	fact := funcFactFor(w.pass.Facts, w.pass.TypesInfo, call)
	if fact == nil {
		return false
	}
	switch role {
	case roleTokenClaim:
		return fact.TokenClaim
	case roleLogAppend:
		return fact.LogAppend
	case roleDataWord:
		return fact.DataWord
	}
	return false
}

// addrKey is the textual identity of a block-address expression; matching
// is syntactic on purpose — the log append and the store must name the same
// address the same way, which is itself a readability contract.
func addrKey(e ast.Expr) string { return types.ExprString(e) }

// block walks a statement list, threading the state through.
func (w *logOrderWalker) block(b *ast.BlockStmt, state logOrderState) logOrderState {
	if b == nil {
		return state
	}
	for _, s := range b.List {
		state = w.stmt(s, state)
	}
	return state
}

// stmt interprets one statement: control flow is handled structurally,
// everything else is scanned for role calls and tracked stores in source
// order.
func (w *logOrderWalker) stmt(s ast.Stmt, state logOrderState) logOrderState {
	if state.terminated {
		return state
	}
	switch x := s.(type) {
	case *ast.BlockStmt:
		return w.block(x, state)
	case *ast.IfStmt:
		if x.Init != nil {
			state = w.stmt(x.Init, state)
		}
		state = w.scan(x.Cond, state)
		thenState := w.block(x.Body, state.clone())
		elseState := state.clone()
		if x.Else != nil {
			elseState = w.stmt(x.Else, elseState)
		}
		return mergeStates(thenState, elseState)
	case *ast.ForStmt:
		if x.Init != nil {
			state = w.stmt(x.Init, state)
		}
		if x.Cond != nil {
			state = w.scan(x.Cond, state)
		}
		w.breakTargets = append(w.breakTargets, nil)
		body := w.block(x.Body, state.clone())
		w.breakTargets = w.breakTargets[:len(w.breakTargets)-1]
		if x.Post != nil {
			w.stmt(x.Post, body)
		}
		// The loop may run zero times; facts established inside do not
		// survive it.
		return state
	case *ast.RangeStmt:
		w.breakTargets = append(w.breakTargets, nil)
		w.block(x.Body, state.clone())
		w.breakTargets = w.breakTargets[:len(w.breakTargets)-1]
		return state
	case *ast.SwitchStmt:
		if x.Init != nil {
			state = w.stmt(x.Init, state)
		}
		if x.Tag != nil {
			state = w.scan(x.Tag, state)
		}
		return w.switchBody(x.Body, state, hasDefaultCase(x.Body))
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			state = w.stmt(x.Init, state)
		}
		return w.switchBody(x.Body, state, hasDefaultCase(x.Body))
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			state = w.scan(r, state)
		}
		state.terminated = true
		return state
	case *ast.BranchStmt:
		// break/continue/goto: effects after this point in the current
		// block are unreachable. A bare break also delivers the current
		// state to the innermost breakable construct's exit — for a
		// switch that exit is the statement after it, so the state must
		// join the switch's merge (a break arm is NOT a terminated path).
		if x.Tok == token.BREAK && x.Label == nil && len(w.breakTargets) > 0 {
			if c := w.breakTargets[len(w.breakTargets)-1]; c != nil {
				*c = append(*c, state.clone())
			}
		}
		state.terminated = true
		return state
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred and spawned calls run outside this path's program
		// order: a deferred claim does not dominate anything, and a
		// deferred store is out of scope.
		return state
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, state)
	default:
		return w.scan(s, state)
	}
}

// switchBody analyzes each case clause from the pre-state and merges,
// including the states bare breaks deliver to the switch exit.
func (w *logOrderWalker) switchBody(body *ast.BlockStmt, state logOrderState, hasDefault bool) logOrderState {
	var breaks []logOrderState
	w.breakTargets = append(w.breakTargets, &breaks)
	outs := []logOrderState{}
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		cs := state.clone()
		for _, e := range cc.List {
			cs = w.scan(e, cs)
		}
		for _, st := range cc.Body {
			cs = w.stmt(st, cs)
		}
		outs = append(outs, cs)
	}
	w.breakTargets = w.breakTargets[:len(w.breakTargets)-1]
	if !hasDefault || len(outs) == 0 {
		// Without a default the switch may fall through unchanged.
		outs = append(outs, state)
	}
	outs = append(outs, breaks...)
	return mergeStates(outs...)
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// scan applies the effects and checks of the calls inside a non-control
// node, in AST order; nested closures are skipped (they are not part of
// this path's program order).
func (w *logOrderWalker) scan(n ast.Node, state logOrderState) logOrderState {
	if n == nil {
		return state
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case w.isRole(call, roleTokenClaim):
			state.claim = true
		case w.isRole(call, roleLogAppend):
			if len(call.Args) > 0 {
				state.logged[addrKey(call.Args[0])] = true
			}
		default:
			if addr, ok := w.trackedStore(call); ok {
				w.checkStore(call, addr, state)
			}
		}
		return true
	})
	return state
}

// trackedStore recognizes `<dataword accessor>.Store(v)` — directly or
// through a local alias — and returns the block-address expression.
func (w *logOrderWalker) trackedStore(call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Store" {
		return nil, false
	}
	var dw *ast.CallExpr
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.CallExpr:
		if w.isRole(x, roleDataWord) {
			dw = x
		}
	case *ast.Ident:
		if obj := w.pass.TypesInfo.Uses[x]; obj != nil {
			dw = w.dataWordAliases[obj]
		}
	}
	if dw == nil || len(dw.Args) == 0 {
		return nil, false
	}
	return dw.Args[len(dw.Args)-1], true
}

func (w *logOrderWalker) checkStore(call *ast.CallExpr, addr ast.Expr, state logOrderState) {
	key := addrKey(addr)
	if !state.claim {
		w.pass.Reportf(call.Pos(), "store to tracked data word %s on write path %s is not dominated by a token claim; claim write tokens before mutating the block", key, w.fd.Name.Name)
	}
	if !state.logged[key] {
		w.pass.Reportf(call.Pos(), "store to tracked data word %s on write path %s is not dominated by an undo-log append for %s; log the old value first or the block is unrecoverable on abort", key, w.fd.Name.Name, key)
	}
}
