package lint

import "strings"

// The determinism and hot-path contracts (DESIGN.md §"Determinism contract")
// bind the packages that execute *simulated* work: everything a simulated
// cycle count, cache state, or commit stream can observe. Host-side packages
// (the harness, the experiment drivers, plotting) measure wall-clock time
// and aggregate freely; they are exempt from wallclock and allocfree, and
// maporder applies to them only where their output must be byte-stable.

// simPackages are the simulation packages: no wall-clock, no global rand,
// no map-order-dependent control flow, exhaustive enum switches.
var simPackages = []string{
	"internal/attr",
	"internal/cache",
	"internal/coherence",
	"internal/core",
	"internal/eccmeta",
	"internal/explore",
	"internal/htm",
	"internal/interconnect",
	"internal/lcs",
	"internal/logtmse",
	"internal/mem",
	"internal/metastate",
	"internal/sig",
	"internal/sim",
	"internal/statehash",
	"internal/tmlog",
}

// orderedOutputPackages additionally owe deterministic, byte-stable output
// (trace dumps, plot text): maporder covers them on top of simPackages.
var orderedOutputPackages = []string{
	"internal/plot",
	"internal/trace",
}

// hostSidePackages are host-concurrent packages that measure real time by
// charter: the stm subsystem runs on actual goroutines and its load
// generator reads time.Now for throughput and latency. They are exempt
// from the simulation contracts *explicitly* — listed here rather than
// relying on "not in simPackages" — so the exemption survives refactors of
// the scope logic and is pinned by fixture tests. Note stm imports
// internal/metastate, which stays fully in scope: the packing helpers it
// reuses are wall-clock-free by this very gate.
var hostSidePackages = []string{
	"stm",
	// The network front end (wire codec + TCP server) is registered
	// explicitly even though the "stm" prefix already covers it: the
	// fixture tests pin these entries so a future split of stm/... into
	// separate scope roots cannot silently drop the server from the
	// concurrency-discipline analyzers.
	"stm/resp",
	"stm/server",
	"cmd",
}

// exemptPackages are bound by no contract: the module root (public facade),
// the examples, the transaction library layered on stm, host-side analysis
// helpers, and the lint tooling itself. Every module package must appear in
// exactly one scope — this list exists so "unclassified" is always a
// mistake, never a default. TestScopeCoversModule pins the invariant
// against `go list ./...`. Paths are module-relative; "." is the root.
var exemptPackages = []string{
	".",
	"examples",
	"txlib",
	"internal/harness",
	"internal/lint",
	"internal/randstream",
	"internal/stats",
	"internal/workload",
}

// pkgKey reduces an import path to its module-relative form: the suffix
// starting at "internal/". Paths without an internal/ element (the root
// package, cmd/...) are out of every scope.
func pkgKey(path string) string {
	if path == "" {
		return ""
	}
	if strings.HasPrefix(path, "internal/") {
		return path
	}
	if i := strings.Index(path, "/internal/"); i >= 0 {
		return path[i+1:]
	}
	return ""
}

// inList reports whether the package path is one of the listed packages or a
// subpackage of one.
func inList(path string, list []string) bool {
	key := pkgKey(path)
	if key == "" {
		return false
	}
	for _, p := range list {
		if key == p || strings.HasPrefix(key, p+"/") {
			return true
		}
	}
	return false
}

// hostKey reduces an import path to its module-relative form for the
// host-side roots (stm/..., cmd/...), the counterpart of pkgKey.
func hostKey(path string) string {
	for _, root := range hostSidePackages {
		if path == root || strings.HasPrefix(path, root+"/") {
			return path
		}
		if strings.HasSuffix(path, "/"+root) {
			return root
		}
		if i := strings.Index(path, "/"+root+"/"); i >= 0 {
			return path[i+1:]
		}
	}
	return ""
}

// isHostSidePackage reports whether path is host-side by charter and thus
// explicitly exempt from the wallclock contract.
func isHostSidePackage(path string) bool {
	key := hostKey(path)
	if key == "" {
		return false
	}
	for _, p := range hostSidePackages {
		if key == p || strings.HasPrefix(key, p+"/") {
			return true
		}
	}
	return false
}

// isSimPackage reports whether path is bound by the full simulation
// contract.
func isSimPackage(path string) bool { return inList(path, simPackages) }

// isOrderedOutputPackage reports whether path owes deterministic iteration
// order for its output without being a simulation package.
func isOrderedOutputPackage(path string) bool { return inList(path, orderedOutputPackages) }

// relKey reduces an import path to its module-relative form for the exempt
// list: "tokentm" -> ".", "tokentm/txlib" -> "txlib". Paths outside the
// module map to "".
func relKey(path string) string {
	if path == modulePath {
		return "."
	}
	if strings.HasPrefix(path, modulePath+"/") {
		return strings.TrimPrefix(path, modulePath+"/")
	}
	return ""
}

// isExemptPackage reports whether path is explicitly outside every contract.
func isExemptPackage(path string) bool {
	key := relKey(path)
	if key == "" {
		return false
	}
	for _, p := range exemptPackages {
		if key == p || (p != "." && strings.HasPrefix(key, p+"/")) {
			return true
		}
	}
	return false
}

// Scope labels the contract binding one package.
type Scope string

const (
	// ScopeSim: full simulation contract (wallclock, maporder, allocfree,
	// exhaustive).
	ScopeSim Scope = "sim"
	// ScopeOrderedOutput: byte-stable output on top of the sim contract's
	// maporder rules.
	ScopeOrderedOutput Scope = "ordered-output"
	// ScopeHostSide: host-concurrent by charter; exempt from the simulation
	// contracts, covered by the concurrency-discipline analyzers
	// (atomicfield, logorder) and annotation-driven allocfree.
	ScopeHostSide Scope = "host-side"
	// ScopeExempt: bound by no contract (tooling, examples, facade).
	ScopeExempt Scope = "exempt"
	// ScopeUnknown: not classified — always a configuration error.
	ScopeUnknown Scope = "unknown"
)

// ScopeOf classifies a package import path. Every package `go list ./...`
// reports must classify to something other than ScopeUnknown; the scope
// sync test enforces this, so a new package cannot silently dodge the
// contracts.
func ScopeOf(path string) Scope {
	switch {
	case isSimPackage(path):
		return ScopeSim
	case isOrderedOutputPackage(path):
		return ScopeOrderedOutput
	case isHostSidePackage(path):
		return ScopeHostSide
	case isExemptPackage(path):
		return ScopeExempt
	}
	return ScopeUnknown
}
