package lint_test

import (
	"testing"

	"tokentm/internal/lint"
	"tokentm/internal/lint/linttest"
)

// The fixtures live under testdata/src/tokentm/internal/... so that the
// scope rules (simPackages, orderedOutputPackages) see the same
// "internal/..." package-key suffixes the real tree produces.

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/internal/sim/maporder", lint.MapOrder)
}

func TestWallClock(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/internal/sim/wallclock", lint.WallClock)
}

func TestAllocFree(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/internal/sim/allocfree", lint.AllocFree)
}

func TestExhaustive(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/internal/sim/exhaustive", lint.Exhaustive)
}

// TestDirectives covers //lint:ignore hygiene: suppression in both
// placements, missing-reason and unknown-analyzer diagnostics, and stale
// directive detection.
func TestDirectives(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/internal/sim/directives", lint.WallClock)
}

// TestHostSideOutOfScope runs the full suite over a harness-side fixture
// that reads the wall clock, uses global rand and ranges over maps — and
// expects zero diagnostics, because scope gating exempts host-side code.
func TestHostSideOutOfScope(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/internal/harness/hostside", lint.Analyzers()...)
}

// TestSTMHostSideExempt pins the explicit exemption for the stm subsystem:
// stm/... is host-side by charter (wall-clock latency measurement), so the
// full analyzer suite reports nothing for it.
func TestSTMHostSideExempt(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/stm/hostside", lint.Analyzers()...)
}
