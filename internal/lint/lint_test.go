package lint_test

import (
	"testing"

	"tokentm/internal/lint"
	"tokentm/internal/lint/linttest"
)

// The fixtures live under testdata/src/tokentm/internal/... so that the
// scope rules (simPackages, orderedOutputPackages) see the same
// "internal/..." package-key suffixes the real tree produces.

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/internal/sim/maporder", lint.MapOrder)
}

func TestWallClock(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/internal/sim/wallclock", lint.WallClock)
}

func TestAllocFree(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/internal/sim/allocfree", lint.AllocFree)
}

func TestExhaustive(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/internal/sim/exhaustive", lint.Exhaustive)
}

// TestAtomicField covers mixed atomic/plain field access (with the
// fresh-constructor exemption) and CAS retry-loop hygiene, including the
// seeded stale-expected-value livelock.
func TestAtomicField(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/stm/atomicfield", lint.AtomicField)
}

// TestLogOrder covers claim/log/store ordering on annotated write paths,
// including the seeded store-before-log bug and branch-merge dominance.
func TestLogOrder(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/stm/logorder", lint.LogOrder)
}

// TestAllocFreeInterproc covers the call-graph closure out of annotated
// roots: the seeded allocating-callee bug, trust in annotated callees, and
// the interprocedural panic-path exemption.
func TestAllocFreeInterproc(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/stm/allocfreecalls", lint.AllocFree)
}

// TestDirectives covers //lint:ignore hygiene: suppression in both
// placements, missing-reason and unknown-analyzer diagnostics, and stale
// directive detection.
func TestDirectives(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/internal/sim/directives", lint.WallClock)
}

// TestHostSideOutOfScope runs the full suite over a harness-side fixture
// that reads the wall clock, uses global rand and ranges over maps — and
// expects zero diagnostics, because scope gating exempts host-side code.
func TestHostSideOutOfScope(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/internal/harness/hostside", lint.Analyzers()...)
}

// TestSTMHostSideExempt pins the explicit exemption for the stm subsystem:
// stm/... is host-side by charter (wall-clock latency measurement), so the
// full analyzer suite reports nothing for it.
func TestSTMHostSideExempt(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/stm/hostside", lint.Analyzers()...)
}
