package lint

// TestScopeCoversModule pins the scope lists against the real module: every
// package `go list ./...` reports must classify into exactly one scope, and
// every list entry must still match at least one real package. A new
// package cannot silently dodge the contracts, and a renamed package cannot
// leave a stale entry behind.

import (
	"os/exec"
	"strings"
	"testing"
)

func modulePackages(t *testing.T) []string {
	t.Helper()
	cmd := exec.Command("go", "list", "./...")
	cmd.Dir = "../.." // module root
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list ./...: %v", err)
	}
	var pkgs []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line != "" {
			pkgs = append(pkgs, line)
		}
	}
	if len(pkgs) < 10 {
		t.Fatalf("go list returned implausibly few packages: %v", pkgs)
	}
	return pkgs
}

func TestScopeCoversModule(t *testing.T) {
	pkgs := modulePackages(t)

	for _, pkg := range pkgs {
		if ScopeOf(pkg) == ScopeUnknown {
			t.Errorf("package %s is not classified; add it to a scope list in internal/lint/scope.go", pkg)
		}
	}

	// Overlap check: the predicates must be mutually exclusive, so ScopeOf's
	// switch order never hides a double classification.
	for _, pkg := range pkgs {
		n := 0
		for _, in := range []bool{
			isSimPackage(pkg), isOrderedOutputPackage(pkg),
			isHostSidePackage(pkg), isExemptPackage(pkg),
		} {
			if in {
				n++
			}
		}
		if n > 1 {
			t.Errorf("package %s matches %d scope lists; scopes must be disjoint", pkg, n)
		}
	}

	// Staleness check: every list entry must cover at least one package.
	covers := func(match func(string) bool) bool {
		for _, pkg := range pkgs {
			if match(pkg) {
				return true
			}
		}
		return false
	}
	for _, e := range simPackages {
		e := e
		if !covers(func(p string) bool { return inList(p, []string{e}) }) {
			t.Errorf("simPackages entry %q matches no module package; remove or rename it", e)
		}
	}
	for _, e := range orderedOutputPackages {
		e := e
		if !covers(func(p string) bool { return inList(p, []string{e}) }) {
			t.Errorf("orderedOutputPackages entry %q matches no module package; remove or rename it", e)
		}
	}
	for _, e := range hostSidePackages {
		e := e
		if !covers(func(p string) bool {
			key := hostKey(p)
			return key == e || strings.HasPrefix(key, e+"/")
		}) {
			t.Errorf("hostSidePackages entry %q matches no module package; remove or rename it", e)
		}
	}
	for _, e := range exemptPackages {
		e := e
		if !covers(func(p string) bool {
			key := relKey(p)
			return key == e || (e != "." && strings.HasPrefix(key, e+"/"))
		}) {
			t.Errorf("exemptPackages entry %q matches no module package; remove or rename it", e)
		}
	}
}
