package lint_test

import (
	"testing"

	"tokentm/internal/lint"
	"tokentm/internal/lint/linttest"
)

func TestLogOrderSwitchBreakScratch(t *testing.T) {
	linttest.Run(t, "testdata/src/tokentm/stm/logorderscratch", lint.LogOrder)
}
