package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"tokentm/internal/lint/analysis"
)

// MapOrder flags for-range loops over map types in simulation and
// ordered-output packages. Go randomizes map iteration order per run, so any
// map-ordered loop that issues simulated memory accesses — or builds a list
// whose order later drives them, or writes output — breaks the determinism
// contract: one (workload, variant, scale, seed) tuple must name exactly one
// execution. This is exactly the bug class PR 2 chased dynamically (token
// release and enemy enumeration iterating Go maps).
//
// A loop is exempt when its body provably cannot observe order:
//
//   - pure order-insensitive aggregation: each statement is a counter
//     increment/decrement or a commutative compound assignment
//     (+=, -=, |=, &=, ^=),
//   - delete(m, k) of the ranged map's own key,
//   - collecting the range variables into a slice that is sorted later in
//     the same function (the canonical fix pattern),
//
// or when the line carries //lint:ignore maporder <reason>.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "forbid map-iteration-order-dependent loops in simulation packages",
	Run:  runMapOrder,
}

func runMapOrder(pass *analysis.Pass) error {
	if !isSimPackage(pass.Pkg.Path()) && !isOrderedOutputPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, fd := range enclosingFuncs(pass.Files) {
		fd := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if mapRangeBenign(pass, fd, rs) {
				return true
			}
			pass.Reportf(rs.For,
				"for-range over map %s: iteration order is randomized; walk an ordered source (sorted keys, a kept-sorted slice) or justify with //lint:ignore maporder <reason>",
				types.ExprString(rs.X))
			return true
		})
	}
	return nil
}

// mapRangeBenign reports whether every statement of the range body is
// order-insensitive.
func mapRangeBenign(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	for _, stmt := range rs.Body.List {
		if !mapStmtBenign(pass, fd, rs, stmt) {
			return false
		}
	}
	return true
}

func mapStmtBenign(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
			token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative accumulation: the final value is independent of
			// visit order (provided the right-hand side is, which nested
			// map ranges would themselves get flagged for).
			return true
		case token.ASSIGN, token.DEFINE:
			return appendThenSorted(pass, fd, rs, s)
		}
		return false
	case *ast.ExprStmt:
		// delete(m, k) of the ranged map's own key: the spec guarantees
		// entries not yet reached are simply skipped, and deleting all
		// visited keys is order-insensitive.
		call, ok := s.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "delete" {
			return false
		}
		if types.ExprString(call.Args[0]) != types.ExprString(rs.X) {
			return false
		}
		key, ok := rs.Key.(*ast.Ident)
		if !ok {
			return false
		}
		arg, ok := call.Args[1].(*ast.Ident)
		return ok && arg.Name == key.Name
	}
	return false
}

// appendThenSorted recognizes the collect-then-sort idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, ...)   // or sort.Ints/Strings/Sort, slices.Sort*
//
// The assignment is benign when it appends a range variable to a plain
// identifier that is passed to a sort call after the loop in the same
// function.
func appendThenSorted(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	dst, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) < 2 {
		return false
	}
	if base, ok := call.Args[0].(*ast.Ident); !ok || base.Name != dst.Name {
		return false
	}
	// Every appended element must be a range variable (key or value).
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok || !isRangeVar(rs, id.Name) {
			return false
		}
	}
	return sortedAfter(pass, fd, rs.End(), dst.Name)
}

func isRangeVar(rs *ast.RangeStmt, name string) bool {
	if k, ok := rs.Key.(*ast.Ident); ok && k.Name == name {
		return true
	}
	if v, ok := rs.Value.(*ast.Ident); ok && v.Name == name {
		return true
	}
	return false
}

// sortedAfter reports whether fd's body contains, after pos, a call to a
// sort/slices sorting function whose first argument is the identifier name.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, pos token.Pos, name string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		switch sel.Sel.Name {
		case "Slice", "SliceStable", "Sort", "SortFunc", "SortStableFunc",
			"Stable", "Ints", "Strings", "Float64s":
		default:
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && arg.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}
