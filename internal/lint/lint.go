// Package lint implements the tokentm static-analysis suite: six analyzers
// that enforce the determinism, hot-path and concurrency-discipline
// contracts from DESIGN.md at lint time, at the offending source line,
// before any simulation or host transaction runs.
//
//   - maporder: no for-range over a map in a simulation or ordered-output
//     package unless the body is order-insensitive aggregation.
//   - wallclock: no wall-clock reads or global math/rand calls in
//     simulation packages; seeded rand.New(rand.NewSource(...)) is fine.
//   - allocfree: functions annotated //tokentm:allocfree contain no
//     allocating constructs, and no call chain out of them reaches one in
//     an unannotated same-module callee (conservative AST check plus a
//     fact-based call-graph closure; a dynamic testing.AllocsPerRun table
//     test cross-checks the annotation list).
//   - exhaustive: switches over the protocol enums (MESI states, packed
//     metastate states, access outcomes, ...) cover every constant or carry
//     a default that panics or returns.
//   - atomicfield: a struct field touched via function-style sync/atomic
//     anywhere in the module is never read or written plainly, and
//     CompareAndSwap retry loops re-load their expected value and back off
//     (atomicfield.go).
//   - logorder: on //tokentm:writepath functions, every store to a tracked
//     data word is dominated by the token claim and the matching undo-log
//     append (logorder.go).
//
// The driver runs in two phases: CollectFacts indexes every loaded package
// (atomic-field usage, per-function alloc sites, call edges, annotations),
// then each analyzer runs per package with the shared module-wide
// analysis.Facts.
//
// A finding is suppressed by a //lint:ignore directive:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either at the end of the offending line or alone on the line
// directly above it. A directive without a reason is itself a diagnostic,
// and so is a stale directive that suppresses nothing.
package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"tokentm/internal/lint/analysis"
)

// Analyzers returns the full tokentm suite in a fixed order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{MapOrder, WallClock, AllocFree, Exhaustive, AtomicField, LogOrder}
}

// knownAnalyzer reports whether name names a suite analyzer.
func knownAnalyzer(name string) bool {
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos        token.Pos
	analyzers  []string // validated analyzer names
	targetLine int      // line the directive applies to
	file       string
	used       bool
}

// Run applies the analyzers to pkg with facts collected from pkg alone,
// filters the findings through the package's //lint:ignore directives, and
// returns the surviving diagnostics (including directive-hygiene
// diagnostics) sorted by position. Single-package facts suffice for
// self-contained packages (the linttest fixtures); the multichecker collects
// facts over every loaded package and calls RunWithFacts instead.
func Run(pkg *Package, analyzers []*analysis.Analyzer) []analysis.Diagnostic {
	return RunWithFacts(pkg, analyzers, CollectFacts([]*Package{pkg}))
}

// RunWithFacts is Run with an explicit, typically module-wide, fact index.
func RunWithFacts(pkg *Package, analyzers []*analysis.Analyzer, facts *analysis.Facts) []analysis.Diagnostic {
	var raw []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			Facts:     facts,
			Report:    func(d analysis.Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			raw = append(raw, analysis.Diagnostic{
				Pos: pkg.Files[0].Pos(), Analyzer: a.Name, Message: err.Error(),
			})
		}
	}

	dirs, dirDiags := parseDirectives(pkg)
	var out []analysis.Diagnostic
	for _, d := range raw {
		p := pkg.Fset.Position(d.Pos)
		if matchDirective(dirs, p.Filename, p.Line, d.Analyzer) {
			continue
		}
		out = append(out, d)
	}
	out = append(out, dirDiags...)

	// A directive that names a run analyzer but suppressed nothing is stale.
	run := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		run[a.Name] = true
	}
	for _, dir := range dirs {
		if dir.used {
			continue
		}
		applicable := false
		for _, name := range dir.analyzers {
			if run[name] {
				applicable = true
				break
			}
		}
		if applicable {
			out = append(out, analysis.Diagnostic{
				Pos:      dir.pos,
				Analyzer: "lint",
				Message: "stale //lint:ignore: no " + strings.Join(dir.analyzers, ",") +
					" finding on the target line; delete the directive",
			})
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return out
}

// matchDirective marks and reports a directive covering (file, line,
// analyzer), if any.
func matchDirective(dirs []*directive, file string, line int, analyzer string) bool {
	for _, d := range dirs {
		if d.file != file || d.targetLine != line {
			continue
		}
		for _, name := range d.analyzers {
			if name == analyzer {
				d.used = true
				return true
			}
		}
	}
	return false
}

// parseDirectives scans every comment of the package for //lint:ignore
// directives, returning the well-formed ones plus hygiene diagnostics for
// malformed ones (missing analyzer list, unknown analyzer, missing reason).
func parseDirectives(pkg *Package) ([]*directive, []analysis.Diagnostic) {
	var dirs []*directive
	var diags []analysis.Diagnostic
	for _, f := range pkg.Files {
		for _, grp := range f.Comments {
			for _, c := range grp.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				fields := strings.Fields(text)
				if len(fields) == 0 {
					diags = append(diags, analysis.Diagnostic{
						Pos: c.Slash, Analyzer: "lint",
						Message: "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				bad := false
				for _, name := range names {
					if !knownAnalyzer(name) {
						diags = append(diags, analysis.Diagnostic{
							Pos: c.Slash, Analyzer: "lint",
							Message: "//lint:ignore names unknown analyzer " + name,
						})
						bad = true
					}
				}
				if bad {
					continue
				}
				if len(fields) < 2 {
					diags = append(diags, analysis.Diagnostic{
						Pos: c.Slash, Analyzer: "lint",
						Message: "//lint:ignore " + fields[0] + " is missing a reason",
					})
					continue
				}
				target := pos.Line
				if standsAlone(pkg.Src[pos.Filename], pos.Offset) {
					target = pos.Line + 1
				}
				dirs = append(dirs, &directive{
					pos:        c.Slash,
					analyzers:  names,
					targetLine: target,
					file:       pos.Filename,
				})
			}
		}
	}
	return dirs, diags
}

// standsAlone reports whether only whitespace precedes the comment starting
// at offset on its line; such a directive targets the following line.
func standsAlone(src []byte, offset int) bool {
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case ' ', '\t':
			continue
		case '\n':
			return true
		default:
			return false
		}
	}
	return true
}

// enclosingFuncs pairs every function body in the package with its
// declaration, for analyzers that reason per function.
func enclosingFuncs(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
