// Package analysis is a minimal, dependency-free skeleton of the
// golang.org/x/tools/go/analysis API: an Analyzer inspects one type-checked
// package through a Pass and reports position-anchored Diagnostics. The
// build environment vendors no external modules, so this package provides
// just the surface the tokentm analyzers need; an Analyzer written against
// it ports to the upstream framework by swapping the import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run applies the check to one package and reports findings via
	// pass.Report or pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the module-wide knowledge collected before any analyzer
	// runs. It is shared by every pass of a driver invocation and is never
	// nil when the driver uses lint.Run / lint.RunWithFacts.
	Facts *Facts

	// Report delivers a diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: a position, the analyzer that produced it, and
// a message.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Inspect walks every file of the pass in depth-first order, calling fn for
// each node; fn returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Facts is the cross-package phase of the suite: a module-wide index built
// by the driver over *all* loaded packages before any analyzer runs on any
// single one. It plays the role of x/tools analysis facts, flattened into
// one explicit structure because the whole module loads in one process.
// Positions are only meaningful against the driver's shared FileSet.
type Facts struct {
	// AtomicFields maps a struct-field key — "pkgpath.Type.Field" — to the
	// positions where the field is passed to a function-style sync/atomic
	// operation (atomic.AddUint64(&x.f, ...)). Any other access to such a
	// field is a mixed-access bug (the known `go vet` gap).
	AtomicFields map[string][]token.Pos
	// Funcs maps a function's fully qualified name (types.Func.FullName,
	// e.g. "(*tokentm/stm.Tx).Store") to its collected facts.
	Funcs map[string]*FuncFact
}

// FuncFact is the per-function slice of the module-wide index.
type FuncFact struct {
	// Name is the display name ("Recv.Name" or "Name").
	Name string
	// Pos is the function declaration's position.
	Pos token.Pos

	// Annotations parsed from the doc comment.
	AllocFree  bool // //tokentm:allocfree — body must not allocate
	Backoff    bool // //tokentm:backoff — counts as backoff in CAS retry loops
	WritePath  bool // //tokentm:writepath — logorder entry point
	TokenClaim bool // //tokentm:tokenclaim — claims write tokens
	LogAppend  bool // //tokentm:logappend — appends the undo-log entry
	DataWord   bool // //tokentm:dataword — returns a tracked data word

	// AllocSites are the allocating constructs in the body, judged by the
	// same conservative rules the allocfree analyzer applies to annotated
	// functions (panic arguments exempt, caller-rooted appends allowed).
	AllocSites []AllocSite
	// Callees are the statically resolvable same-module calls in the body
	// (panic arguments excluded), for interprocedural closure walks.
	Callees []Callee
}

// AllocSite is one allocating construct inside a function body.
type AllocSite struct {
	Pos  token.Pos
	What string
}

// Callee is one resolved same-module call site.
type Callee struct {
	Pos token.Pos
	// Name is the callee's types.Func.FullName, the key into Facts.Funcs.
	Name string
}
