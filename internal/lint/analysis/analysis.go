// Package analysis is a minimal, dependency-free skeleton of the
// golang.org/x/tools/go/analysis API: an Analyzer inspects one type-checked
// package through a Pass and reports position-anchored Diagnostics. The
// build environment vendors no external modules, so this package provides
// just the surface the tokentm analyzers need; an Analyzer written against
// it ports to the upstream framework by swapping the import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run applies the check to one package and reports findings via
	// pass.Report or pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers a diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: a position, the analyzer that produced it, and
// a message.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Inspect walks every file of the pass in depth-first order, calling fn for
// each node; fn returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
