package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tokentm/internal/lint/analysis"
)

// AtomicField enforces two atomics-hygiene contracts on the host-concurrent
// code (and anything else in the module):
//
//  1. Mixed access: a struct field that is passed to a function-style
//     sync/atomic operation anywhere in the module (atomic.AddUint64(&x.f,
//     ...)) must never be read or written plainly. This is the known `go
//     vet` gap: vet checks misuse of the atomic result, not plain aliases
//     of the same word. The module-wide fact index makes the check
//     cross-package. Accesses to a value still under construction — the
//     selector roots in a local freshly created by new(T), &T{...} or
//     T{...} in the same function — are exempt: the object is not yet
//     published, so plain initialization is the idiom.
//
//  2. CAS retry-loop hygiene, the static form of the PR-6 upgrade-herd
//     lesson: a loop that retries a CompareAndSwap must (a) re-load the
//     expected value inside the loop body — an expected value computed
//     before the loop can never match after the first failure, so the loop
//     spins forever — and (b) if the loop is unbounded (no condition),
//     contain a backoff or doom call: runtime.Gosched, time.Sleep, a
//     function annotated //tokentm:backoff, or panic on a broken
//     invariant. Bounded spins (for i := 0; i < lim; i++) are exempt from
//     (b); constant expected values (state-machine flips like CAS(0, 1))
//     are exempt from (a).
//
// Both typed atomics (atomic.Uint64 methods) and function-style sync/atomic
// calls count as CAS for rule 2; rule 1 only concerns function-style
// atomics, because a typed atomic.Uint64 field cannot be accessed plainly.
var AtomicField = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "mixed atomic/plain field access and CompareAndSwap retry-loop hygiene",
	Run:  runAtomicField,
}

func runAtomicField(pass *analysis.Pass) error {
	checkMixedAccess(pass)
	for _, fd := range enclosingFuncs(pass.Files) {
		checkCASLoops(pass, fd)
	}
	return nil
}

// --- rule 1: mixed atomic/plain access -------------------------------------

func checkMixedAccess(pass *analysis.Pass) {
	if pass.Facts == nil || len(pass.Facts.AtomicFields) == 0 {
		return
	}
	// Selector positions that ARE the operand of an atomic call in this
	// package; those are the legitimate accesses.
	atomicOperands := make(map[token.Pos]bool)
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicFuncCall(pass.TypesInfo, call) {
			return true
		}
		for _, arg := range call.Args {
			if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
				if sel, ok := u.X.(*ast.SelectorExpr); ok {
					atomicOperands[sel.Pos()] = true
				}
			}
		}
		return true
	})

	for _, fd := range enclosingFuncs(pass.Files) {
		fresh := freshLocals(pass.TypesInfo, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			key := atomicFieldKey(pass.TypesInfo, sel)
			if key == "" || atomicOperands[sel.Pos()] {
				return true
			}
			if _, isAtomic := pass.Facts.AtomicFields[key]; !isAtomic {
				return true
			}
			if rootIsFresh(pass.TypesInfo, sel.X, fresh, 8) {
				return true
			}
			pass.Reportf(sel.Pos(), "plain access to %s, which is accessed with sync/atomic elsewhere in the module; use the atomic API for every access", key)
			return true
		})
	}
}

// freshLocals returns the local variables of fd initialized from a freshly
// constructed value — new(T), &T{...}, or a T{...} composite literal —
// whose pointee is therefore unpublished until it escapes.
func freshLocals(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	record := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			return
		}
		switch e := ast.Unparen(rhs).(type) {
		case *ast.CompositeLit:
			fresh[obj] = true
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := e.X.(*ast.CompositeLit); ok {
					fresh[obj] = true
				}
			}
		case *ast.CallExpr:
			if fn, ok := e.Fun.(*ast.Ident); ok && fn.Name == "new" {
				if _, isBuiltin := info.Uses[fn].(*types.Builtin); isBuiltin {
					fresh[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE || len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					record(id, s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) != len(s.Values) {
				return true
			}
			for i, id := range s.Names {
				record(id, s.Values[i])
			}
		}
		return true
	})
	return fresh
}

// rootIsFresh traces expr through selectors/indexes/parens to its root
// identifier and reports whether that root is a fresh local.
func rootIsFresh(info *types.Info, expr ast.Expr, fresh map[types.Object]bool, depth int) bool {
	if depth == 0 {
		return false
	}
	switch e := expr.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		return obj != nil && fresh[obj]
	case *ast.SelectorExpr:
		return rootIsFresh(info, e.X, fresh, depth-1)
	case *ast.IndexExpr:
		return rootIsFresh(info, e.X, fresh, depth-1)
	case *ast.ParenExpr:
		return rootIsFresh(info, e.X, fresh, depth-1)
	case *ast.StarExpr:
		return rootIsFresh(info, e.X, fresh, depth-1)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return rootIsFresh(info, e.X, fresh, depth-1)
		}
	}
	return false
}

// --- rule 2: CAS retry-loop hygiene ----------------------------------------

func checkCASLoops(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		checkOneCASLoop(pass, loop)
		return true
	})
}

// checkOneCASLoop applies both hygiene rules to the CAS calls that belong
// directly to loop (not to a nested loop or closure, which get their own
// analysis).
func checkOneCASLoop(pass *analysis.Pass, loop *ast.ForStmt) {
	casCalls := directCASCalls(pass.TypesInfo, loop)
	if len(casCalls) == 0 {
		return
	}

	assigned := loopAssignedObjects(pass.TypesInfo, loop)
	for _, call := range casCalls {
		expected := casExpectedArg(pass.TypesInfo, call)
		if expected == nil {
			continue
		}
		vars := varIdents(pass.TypesInfo, expected)
		if len(vars) == 0 {
			continue // constant expected value: a state flip, nothing to re-load
		}
		reloaded := false
		for _, obj := range vars {
			if assigned[obj] {
				reloaded = true
				break
			}
		}
		if !reloaded {
			pass.Reportf(call.Pos(), "CompareAndSwap retry loop never re-loads its expected value %s inside the loop; a stale expected value can never match, so the loop spins forever", types.ExprString(expected))
		}
	}

	if loop.Cond == nil && !hasBackoffOrDoom(pass, loop) {
		pass.Reportf(loop.Pos(), "unbounded CompareAndSwap retry loop without backoff or doom; call runtime.Gosched, a //tokentm:backoff function, or panic on a broken invariant")
	}
}

// directCASCalls returns the CompareAndSwap calls in loop's condition, body
// and post statement, excluding those inside nested for loops or func
// literals.
func directCASCalls(info *types.Info, loop *ast.ForStmt) []*ast.CallExpr {
	var out []*ast.CallExpr
	scan := func(root ast.Node) {
		if root == nil {
			return
		}
		ast.Inspect(root, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ForStmt:
				if x != loop {
					return false
				}
			case *ast.RangeStmt, *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if isCASCall(info, x) {
					out = append(out, x)
				}
			}
			return true
		})
	}
	if loop.Cond != nil {
		scan(loop.Cond)
	}
	scan(loop.Body)
	scan(loop.Post)
	return out
}

// isCASCall reports whether call is a sync/atomic CompareAndSwap — either
// the function style (atomic.CompareAndSwapUint64) or a typed-atomic method
// (atomic.Uint64's CompareAndSwap).
func isCASCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "CompareAndSwap") {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// casExpectedArg returns the expected-value argument of a CAS call: the
// second argument of the function style (addr, old, new), the first of the
// method style (old, new).
func casExpectedArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	if isAtomicFuncCall(info, call) {
		if len(call.Args) >= 2 {
			return call.Args[1]
		}
		return nil
	}
	if len(call.Args) >= 1 {
		return call.Args[0]
	}
	return nil
}

// varIdents returns the variable objects referenced by expr (constants and
// types excluded).
func varIdents(info *types.Info, expr ast.Expr) []types.Object {
	var out []types.Object
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			out = append(out, v)
		}
		return true
	})
	return out
}

// loopAssignedObjects returns every object assigned in the loop's body or
// post statement — the per-iteration scope. The init statement is excluded
// deliberately: `for old := w.Load(); ; { ... CAS(old, ...) }` loads old
// exactly once and is precisely the stale-expected-value bug.
func loopAssignedObjects(info *types.Info, loop *ast.ForStmt) map[types.Object]bool {
	assigned := make(map[types.Object]bool)
	record := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				assigned[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				assigned[obj] = true
			}
		}
	}
	scan := func(root ast.Node) {
		if root == nil {
			return
		}
		ast.Inspect(root, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					record(lhs)
				}
			case *ast.IncDecStmt:
				record(s.X)
			case *ast.ValueSpec:
				for _, id := range s.Names {
					record(id)
				}
			case *ast.RangeStmt:
				record(s.Key)
				record(s.Value)
			}
			return true
		})
	}
	scan(loop.Body)
	scan(loop.Post)
	return assigned
}

// hasBackoffOrDoom reports whether loop's body contains (outside nested
// closures) a recognized backoff — runtime.Gosched, time.Sleep, a
// //tokentm:backoff-annotated module function — or a doom: panic.
func hasBackoffOrDoom(pass *analysis.Pass, loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
				found = true
				return false
			}
		}
		if fn := calleeFunc(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "runtime":
				if fn.Name() == "Gosched" {
					found = true
				}
			case "time":
				if fn.Name() == "Sleep" {
					found = true
				}
			default:
				if pass.Facts != nil {
					if fact := pass.Facts.Funcs[funcKey(fn)]; fact != nil && fact.Backoff {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
