package metastate

// PackedWord is the host-side view of a block's packed metastate: the 16
// Table-4a metabits widened to a 64-bit word so real goroutines can update
// them with sync/atomic compare-and-swap. The simulator keeps using the bare
// 16-bit Packed form (the hardware stores exactly 16 metabits per block);
// the host STM in stm/ stores one PackedWord per block instead, because
// 64-bit words are the natural unit of Go's atomics.
//
// Layout:
//
//	bits 63..16  stamp  — commit serial of the last writer to release this
//	             block (monotone per block; 0 = never written)
//	bits 15..0   Packed — the Table-4a metabits, unchanged
//
// The stamp is what enables the host STM's snapshot mode for read-only
// transactions: a reader that drew read-serial rv accepts a block iff its
// metabits show no writer and its stamp is at most rv, re-reading the word
// after the data load for seqlock-style stability. Token transitions that
// do not publish data — read acquires, fusion, read releases — preserve the
// stamp (With); only a writer's release installs a new one (MakeWord with a
// fresh serial). Data words change only between a write acquire and the
// matching release, and both release paths stamp a fresh serial, so a
// stable word with no writer bits proves the data words were stable too.
type PackedWord uint64

// packedWordShift is the bit offset of the stamp field.
const packedWordShift = 16

// MakeWord assembles a PackedWord from metabits and a stamp. Writer
// releases use it to publish their commit (or abort) serial.
func MakeWord(p Packed, stamp uint64) PackedWord {
	return PackedWord(stamp<<packedWordShift | uint64(p))
}

// Packed extracts the 16 Table-4a metabits.
func (w PackedWord) Packed() Packed { return Packed(w) }

// Stamp extracts the 48-bit writer-release serial.
func (w PackedWord) Stamp() uint64 { return uint64(w) >> packedWordShift }

// With returns w carrying new metabits and the same stamp — the value to
// CAS in for transitions that do not publish data (read acquires, fusion,
// read releases). Keeping the stamp is load-bearing: if read traffic bumped
// it, hot read-shared blocks would run ahead of the serial clock and starve
// snapshot readers.
func (w PackedWord) With(p Packed) PackedWord {
	return MakeWord(p, w.Stamp())
}
