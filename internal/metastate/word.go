package metastate

import "fmt"

// PackedWord is the host-side view of a block's packed metastate: the 16
// Table-4a metabits widened to a 64-bit word so real goroutines can update
// them with sync/atomic compare-and-swap. The simulator keeps using the bare
// 16-bit Packed form (the hardware stores exactly 16 metabits per block);
// the host STM in stm/ stores one PackedWord per block instead, because
// 64-bit words are the natural unit of Go's atomics.
//
// Layout:
//
//	bits 63..16  stamp  — commit serial of the last writer to release this
//	             block (monotone per block; 0 = never written)
//	bits 15..0   Packed — the Table-4a metabits, unchanged
//
// The stamp is what enables the host STM's snapshot mode for read-only
// transactions: a reader that drew read-serial rv accepts a block iff its
// metabits show no writer and its stamp is at most rv, re-reading the word
// after the data load for seqlock-style stability. Token transitions that
// do not publish data — read acquires, fusion, read releases — preserve the
// stamp (With); only a writer's release installs a new one (MakeWord with a
// fresh serial). Data words change only between a write acquire and the
// matching release, and both release paths stamp a fresh serial, so a
// stable word with no writer bits proves the data words were stable too.
type PackedWord uint64

// packedWordShift is the bit offset of the stamp field.
const packedWordShift = 16

// StampBits is the width of the writer-release serial field.
const StampBits = 64 - packedWordShift

// MaxStamp is the largest representable writer-release serial. A serial past
// it would truncate silently in MakeWord, wrap the per-block stamp backwards,
// and let a stale snapshot validate (`Stamp() > rv` can never fire once the
// stamp has wrapped below rv) — so serial clocks must fail loudly on
// approach via CheckStamp instead of ever reaching it.
const MaxStamp = 1<<StampBits - 1

// StampGuardMargin is how far before MaxStamp CheckStamp starts failing:
// wide enough that every in-flight transaction of any plausible thread count
// still gets a distinct non-wrapping serial after the first refusal.
const StampGuardMargin = 1 << 20

// StampOverflowError reports a writer-release serial that is about to
// overflow the 48-bit stamp field.
type StampOverflowError struct {
	Stamp uint64 // the serial that tripped the guard
}

func (e *StampOverflowError) Error() string {
	return fmt.Sprintf("metastate: commit serial %d within %d of the %d-bit stamp wrap (max %d); stale snapshots would validate past the wrap",
		e.Stamp, uint64(MaxStamp)-e.Stamp, StampBits, uint64(MaxStamp))
}

// CheckStamp validates a serial about to be stamped into a PackedWord,
// returning a typed error once it approaches the wrap.
func CheckStamp(stamp uint64) error {
	if stamp >= MaxStamp-StampGuardMargin {
		return &StampOverflowError{Stamp: stamp}
	}
	return nil
}

// MakeWord assembles a PackedWord from metabits and a stamp. Writer
// releases use it to publish their commit (or abort) serial.
func MakeWord(p Packed, stamp uint64) PackedWord {
	return PackedWord(stamp<<packedWordShift | uint64(p))
}

// Packed extracts the 16 Table-4a metabits.
func (w PackedWord) Packed() Packed { return Packed(w) }

// Stamp extracts the 48-bit writer-release serial.
func (w PackedWord) Stamp() uint64 { return uint64(w) >> packedWordShift }

// With returns w carrying new metabits and the same stamp — the value to
// CAS in for transitions that do not publish data (read acquires, fusion,
// read releases). Keeping the stamp is load-bearing: if read traffic bumped
// it, hot read-shared blocks would run ahead of the serial clock and starve
// snapshot readers.
func (w PackedWord) With(p Packed) PackedWord {
	return MakeWord(p, w.Stamp())
}
