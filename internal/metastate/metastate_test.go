package metastate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tokentm/internal/mem"
)

const (
	tidX mem.TID = 7
	tidY mem.TID = 11
)

func TestMetaConstructorsAndPredicates(t *testing.T) {
	cases := []struct {
		m                          Meta
		zero, writer, ident, valid bool
		str                        string
	}{
		{Zero, true, false, false, true, "(0,-)"},
		{Read1(tidX), false, false, true, true, "(1,X7)"},
		{WriteT(tidX), false, true, true, true, "(T,X7)"},
		{Anon(4), false, false, false, true, "(u=4,-)"},
		{Anon(1), false, false, false, true, "(u=1,-)"},
		{Meta{Sum: 5, TID: tidX}, false, false, false, false, ""},
		{Meta{Sum: T, TID: mem.NoTID}, false, true, false, false, ""},
		{Meta{Sum: T + 1, TID: tidX}, false, false, false, false, ""},
	}
	for _, c := range cases {
		if got := c.m.IsZero(); got != c.zero {
			t.Errorf("%v IsZero = %v, want %v", c.m, got, c.zero)
		}
		if got := c.m.IsWriter(); got != c.writer {
			t.Errorf("%v IsWriter = %v, want %v", c.m, got, c.writer)
		}
		if got := c.m.IsIdentified(); got != c.ident {
			t.Errorf("%v IsIdentified = %v, want %v", c.m, got, c.ident)
		}
		if got := c.m.Valid(); got != c.valid {
			t.Errorf("%v Valid = %v, want %v", c.m, got, c.valid)
		}
		if c.valid && c.m.String() != c.str {
			t.Errorf("String = %q, want %q", c.m.String(), c.str)
		}
	}
}

// TestFissionTable3a checks every row of Table 3a.
func TestFissionTable3a(t *testing.T) {
	cases := []struct {
		before, after, newCopy Meta
	}{
		{Anon(3), Anon(3), Zero},
		{Anon(0), Anon(0), Zero},
		{Read1(tidX), Read1(tidX), Zero},
		{WriteT(tidX), WriteT(tidX), WriteT(tidX)},
	}
	for _, c := range cases {
		kept, nc := Fission(c.before)
		if kept != c.after || nc != c.newCopy {
			t.Errorf("Fission(%v) = %v,%v; want %v,%v", c.before, kept, nc, c.after, c.newCopy)
		}
	}
}

// TestFusionTable3b checks every cell of Table 3b, including the error cells.
func TestFusionTable3b(t *testing.T) {
	cases := []struct {
		a, b Meta
		want Meta
		err  bool
	}{
		// Row (v,-) with v=0 and v>0 against each column.
		{Anon(0), Anon(0), Anon(0), false},
		{Anon(2), Anon(3), Anon(5), false},
		{Anon(0), Read1(tidY), Read1(tidY), false},
		{Anon(2), Read1(tidY), Anon(3), false},
		{Anon(0), WriteT(tidY), WriteT(tidY), false},
		{Anon(2), WriteT(tidY), Zero, true},
		// Row (1,X).
		{Read1(tidX), Anon(0), Read1(tidX), false},
		{Read1(tidX), Anon(4), Anon(5), false},
		{Read1(tidX), Read1(tidY), Anon(2), false},
		{Read1(tidX), WriteT(tidY), Zero, true},
		// Row (T,X).
		{WriteT(tidX), Anon(0), WriteT(tidX), false},
		{WriteT(tidX), Anon(1), Zero, true},
		{WriteT(tidX), Read1(tidY), Zero, true},
		{WriteT(tidX), WriteT(tidX), WriteT(tidX), false},
		{WriteT(tidX), WriteT(tidY), Zero, true},
	}
	for _, c := range cases {
		got, err := Fuse(c.a, c.b)
		if (err != nil) != c.err {
			t.Errorf("Fuse(%v,%v) err = %v, want err=%v", c.a, c.b, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("Fuse(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestTable2Transitions walks the common metastate transitions of Table 2.
func TestTable2Transitions(t *testing.T) {
	// Transaction Load: (0,-) -> (1,X).
	line := L1Zero
	res := line.AcquireRead(tidX)
	if !res.OK || res.TokensAcquired != 1 || line.Logical() != Read1(tidX) {
		t.Fatalf("load transition: %v %v", res, line.Logical())
	}
	// Release one token: (1,X) -> (0,-).
	m, err := ReleaseOne(line.Logical())
	if err != nil || m != Zero {
		t.Fatalf("release one from (1,X): %v %v", m, err)
	}
	// Transaction Store: (0,-) -> (T,X).
	line = L1Zero
	res = line.AcquireWrite(tidX)
	if !res.OK || res.TokensAcquired != T || line.Logical() != WriteT(tidX) {
		t.Fatalf("store transition: %v %v", res, line.Logical())
	}
	// Release T tokens: (T,X) -> (0,-).
	m, err = ReleaseWriter(line.Logical(), tidX)
	if err != nil || m != Zero {
		t.Fatalf("release writer: %v %v", m, err)
	}
	// Release one token from anonymous count: (v,-) -> (v-1,-).
	m, err = ReleaseOne(Anon(3))
	if err != nil || m != Anon(2) {
		t.Fatalf("release one from (3,-): %v %v", m, err)
	}
	// Conflicting Load: (T,Y) stays (T,Y).
	line, err = L1FromMeta(WriteT(tidY), tidX)
	if err != nil {
		t.Fatal(err)
	}
	res = line.AcquireRead(tidX)
	if res.OK || res.ConflictWith != WriteT(tidY) || line.Logical() != WriteT(tidY) {
		t.Fatalf("conflicting load: %v %v", res, line.Logical())
	}
	// Conflicting Store against (v,-), v != 0.
	line, err = L1FromMeta(Anon(2), tidX)
	if err != nil {
		t.Fatal(err)
	}
	res = line.AcquireWrite(tidX)
	if res.OK || line.Logical() != Anon(2) {
		t.Fatalf("conflicting store vs readers: %v %v", res, line.Logical())
	}
	// Conflicting Store against (T,Y).
	line, err = L1FromMeta(WriteT(tidY), tidX)
	if err != nil {
		t.Fatal(err)
	}
	res = line.AcquireWrite(tidX)
	if res.OK || res.ConflictWith != WriteT(tidY) {
		t.Fatalf("conflicting store vs writer: %v", res)
	}
}

func TestReleaseErrors(t *testing.T) {
	if _, err := ReleaseOne(Zero); err == nil {
		t.Error("release from (0,-) should fail")
	}
	if _, err := ReleaseOne(WriteT(tidX)); err == nil {
		t.Error("single release from writer should fail")
	}
	if _, err := ReleaseWriter(Read1(tidX), tidX); err == nil {
		t.Error("writer release from reader state should fail")
	}
	if _, err := ReleaseWriter(WriteT(tidY), tidX); err == nil {
		t.Error("writer release by non-owner should fail")
	}
}

// Property: fission followed by fusion restores the original metastate.
func TestFissionFusionRoundTrip(t *testing.T) {
	f := func(sum uint16, tid uint16, writer bool) bool {
		var m Meta
		switch {
		case writer:
			m = WriteT(mem.TID(tid%uint16(mem.MaxTID)) + 1)
		case sum%3 == 0:
			m = Anon(uint32(sum % 1000))
		case sum%3 == 1:
			m = Read1(mem.TID(tid%uint16(mem.MaxTID)) + 1)
		default:
			m = Zero
		}
		kept, nc := Fission(m)
		back, err := Fuse(kept, nc)
		return err == nil && back == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: fusion of reader-side metastates conserves the token count.
func TestFusionConservesReaderCounts(t *testing.T) {
	f := func(a, b uint16) bool {
		ma, mb := Anon(uint32(a%1000)), Anon(uint32(b%1000))
		got, err := Fuse(ma, mb)
		return err == nil && got.Sum == ma.Sum+mb.Sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: fusion is commutative (where defined).
func TestFusionCommutative(t *testing.T) {
	metas := []Meta{Zero, Anon(1), Anon(2), Anon(5), Read1(tidX), Read1(tidY), WriteT(tidX), WriteT(tidY)}
	for _, a := range metas {
		for _, b := range metas {
			ab, errAB := Fuse(a, b)
			ba, errBA := Fuse(b, a)
			if (errAB != nil) != (errBA != nil) {
				t.Errorf("Fuse(%v,%v) error asymmetry", a, b)
				continue
			}
			if errAB == nil && ab != ba {
				t.Errorf("Fuse(%v,%v)=%v but Fuse(%v,%v)=%v", a, b, ab, b, a, ba)
			}
		}
	}
}

// Property: fusion is associative across random reader-side sequences.
func TestFusionAssociativeReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		ms := make([]Meta, n)
		for i := range ms {
			if rng.Intn(2) == 0 {
				ms[i] = Anon(uint32(rng.Intn(5)))
			} else {
				ms[i] = Read1(mem.TID(1 + rng.Intn(100)))
			}
		}
		// Left fold.
		left, err := FuseAll(ms...)
		if err != nil {
			t.Fatalf("left fold: %v", err)
		}
		// Right fold.
		right := Zero
		for i := n - 1; i >= 0; i-- {
			right, err = Fuse(ms[i], right)
			if err != nil {
				t.Fatalf("right fold: %v", err)
			}
		}
		// Identity can be lost ((1,X) vs (1,-)) only if total == 1 and
		// exactly one identified reader; counts must always agree.
		if left.Sum != right.Sum {
			t.Fatalf("fold sums differ: %v vs %v over %v", left, right, ms)
		}
	}
}

func TestFuseAllError(t *testing.T) {
	if _, err := FuseAll(Read1(tidX), WriteT(tidY)); err == nil {
		t.Error("expected fusion error")
	}
}
