package metastate

import (
	"testing"

	"tokentm/internal/mem"
)

// FuzzPackRoundTrip checks the Table 4a metabit packing against arbitrary
// (Sum, TID) summaries: every valid metastate survives PackInto/Unpack
// exactly, the overflow escape engages precisely when the anonymous count
// exceeds the 14-bit field, and re-packing a representable state cleans up
// the software table entry.
func FuzzPackRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint16(0))          // (0,-)
	f.Add(uint32(1), uint16(0))          // (1,-) anonymous single reader
	f.Add(uint32(1), uint16(7))          // (1,X7)
	f.Add(T, uint16(3))                  // (T,X3)
	f.Add(uint32(5), uint16(0))          // (u=5,-)
	f.Add(uint32(attrMask), uint16(0))   // largest in-field count
	f.Add(uint32(attrMask+1), uint16(0)) // first overflowed count
	f.Add(T-1, uint16(0))                // largest overflowed count
	f.Fuzz(func(t *testing.T, sum uint32, tid uint16) {
		m := Meta{Sum: sum, TID: mem.TID(tid)}
		if !m.Valid() || uint16(m.TID) > attrMask {
			// Invalid summaries and TIDs beyond the 14-bit attribute field
			// are unrepresentable by construction; the protocol never
			// produces them (Valid is checked at every fuse/fission).
			return
		}
		b := mem.BlockAddr(0x40)
		tbl := NewOverflowTable()
		p := tbl.PackInto(b, m)
		if wantOver := m.Sum > maxPackedCount && !m.IsWriter(); p.IsOverflow() != wantOver {
			t.Fatalf("%v: overflow encoding %v, want %v", m, p.IsOverflow(), wantOver)
		}
		if p.IsOverflow() != (tbl.Len() > 0) {
			t.Fatalf("%v: overflow bit %v but table has %d entries", m, p.IsOverflow(), tbl.Len())
		}
		got, err := Unpack(p, tbl, b)
		if err != nil {
			t.Fatalf("%v: unpack: %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip: %v -> %#04x -> %v", m, uint16(p), got)
		}
		// Re-packing a small state over an overflowed one must retire the
		// software entry (the LimitLESS escape is transient).
		if p.IsOverflow() {
			p2 := tbl.PackInto(b, Read1(1))
			if p2.IsOverflow() || tbl.Len() != 0 {
				t.Fatalf("stale overflow entry after repack: %v, %d entries", p2, tbl.Len())
			}
		}
	})
}
