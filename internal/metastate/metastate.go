// Package metastate implements TokenTM's per-block logical metastate: the
// (Sum, TID) summary of token debits, the metastate fission/fusion rules
// (paper Tables 3a and 3b), the in-memory 16-metabit packing (Table 4a), and
// the in-L1 sparse R/W/R'/W'/R+ representation with flash-clear and flash-OR
// semantics (Table 4b, §4.4).
//
// Conceptually every 64-byte block has T tokens. A transaction acquires one
// token to read the block and all T tokens to write it. The metastate
// summarizes the full per-thread debit vector <c0, c1, ...> as a 2-tuple
// (Sum, TID): Sum is the total debit and TID identifies an owner only when
// Sum is 1 or T.
package metastate

import (
	"errors"
	"fmt"

	"tokentm/internal/mem"
)

// T is the number of tokens associated with every memory block. The paper
// leaves T as "some large constant"; it must merely exceed the maximum
// number of concurrent readers of one block. We use 2^16.
const T uint32 = 1 << 16

// Meta is the logical metastate summary (Sum, TID) for one block copy.
//
// Invariants (checked by Valid):
//   - Sum <= T
//   - if TID != NoTID then Sum == 1 (single identified reader) or Sum == T
//     (identified writer)
//   - if Sum == T then TID != NoTID (a writer is always identified)
//
// An anonymous summary (Sum, NoTID) arises when multiple readers' debits
// have been fused, or after a partial release (Table 2: (v,-) -> (v-1,-)).
type Meta struct {
	Sum uint32
	TID mem.TID
}

// Zero is the transactionally-inactive metastate (0, -).
var Zero = Meta{}

// Read1 returns the metastate of a single identified reader: (1, X).
func Read1(x mem.TID) Meta { return Meta{Sum: 1, TID: x} }

// WriteT returns the metastate of an identified writer: (T, X).
func WriteT(x mem.TID) Meta { return Meta{Sum: T, TID: x} }

// Anon returns an anonymous reader-count metastate: (v, -).
func Anon(v uint32) Meta { return Meta{Sum: v} }

// IsZero reports whether no tokens are debited: (0, -).
func (m Meta) IsZero() bool { return m.Sum == 0 }

// IsWriter reports whether all T tokens are debited: (T, X).
func (m Meta) IsWriter() bool { return m.Sum == T }

// IsIdentified reports whether the TID field names the owner.
func (m Meta) IsIdentified() bool { return m.TID != mem.NoTID && (m.Sum == 1 || m.Sum == T) }

// Valid reports whether m satisfies the representation invariants.
func (m Meta) Valid() bool {
	if m.Sum > T {
		return false
	}
	if m.TID != mem.NoTID && m.Sum != 1 && m.Sum != T {
		return false
	}
	if m.Sum == T && m.TID == mem.NoTID {
		return false
	}
	return true
}

// String renders m in the paper's tuple notation, e.g. "(0,-)", "(1,X7)",
// "(T,X3)", "(u=4,-)".
func (m Meta) String() string {
	switch {
	case m.Sum == 0:
		return "(0,-)"
	case m.Sum == T:
		return fmt.Sprintf("(T,X%d)", m.TID)
	case m.TID != mem.NoTID:
		return fmt.Sprintf("(1,X%d)", m.TID)
	default:
		return fmt.Sprintf("(u=%d,-)", m.Sum)
	}
}

// ErrFuse is returned when two metastate copies may not legally coexist,
// e.g. a transactional writer (T,X) fused with an anonymous reader count.
// These are the "error" cells of Table 3b; encountering one indicates a
// violated single-writer/multiple-reader invariant.
var ErrFuse = errors.New("metastate: illegal fusion")

// Fission splits metastate m when the coherence protocol creates an
// additional shared copy of the block (Table 3a). It returns the metastate
// retained by the source copy and the metastate initialized on the new copy.
//
//	Before   After    New Copy
//	(u,-)    (u,-)    (0,-)
//	(1,X)    (1,X)    (0,-)
//	(T,X)    (T,X)    (T,X)
//
// A writer's (T,X) replicates onto every copy so that any reader can detect
// the conflict locally; reader counts stay at the source, because readers
// need not know about other readers.
func Fission(m Meta) (kept, newCopy Meta) {
	if m.IsWriter() {
		return m, m
	}
	return m, Zero
}

// Fuse merges the metastate of two copies of a block into one (Table 3b).
// It returns ErrFuse for the table's error cells.
//
//	           (u,-)              (1,Y)             (T,Y)
//	(v,-)      (u+v,-)            (1,Y) if v=0      (T,Y) if v=0
//	                              (v+1,-) if v>0    else error
//	(1,X)      (1,X) if u=0       (2,-)             error
//	           (u+1,-) if u>0
//	(T,X)      (T,X) if u=0       error             (T,X) if X=Y
//	           else error                           else error
func Fuse(a, b Meta) (Meta, error) {
	// Normalize: treat an anonymous single count (1,-) like any (v,-).
	aw, bw := a.IsWriter(), b.IsWriter()
	switch {
	case aw && bw:
		if a.TID == b.TID {
			return a, nil
		}
		return Zero, fmt.Errorf("%w: two writers %v and %v", ErrFuse, a, b)
	case aw:
		if b.Sum == 0 {
			return a, nil
		}
		return Zero, fmt.Errorf("%w: writer %v with readers %v", ErrFuse, a, b)
	case bw:
		if a.Sum == 0 {
			return b, nil
		}
		return Zero, fmt.Errorf("%w: writer %v with readers %v", ErrFuse, b, a)
	}
	// Both are reader-side summaries. Fusing with a zero copy preserves
	// identity; otherwise identity is lost and only the count remains.
	if a.Sum == 0 {
		return b, nil
	}
	if b.Sum == 0 {
		return a, nil
	}
	sum := a.Sum + b.Sum
	if sum > T {
		return Zero, fmt.Errorf("%w: fused reader count %d exceeds T", ErrFuse, sum)
	}
	return Anon(sum), nil
}

// FuseAll folds a sequence of copies into a single metastate.
func FuseAll(ms ...Meta) (Meta, error) {
	acc := Zero
	var err error
	for _, m := range ms {
		acc, err = Fuse(acc, m)
		if err != nil {
			return Zero, err
		}
	}
	return acc, nil
}

// ReleaseOne credits one token back to metastate m (Table 2 rows
// "Release one Token"): (1,X) -> (0,-) and (v,-) -> (v-1,-).
func ReleaseOne(m Meta) (Meta, error) {
	switch {
	case m.Sum == 0:
		return Zero, fmt.Errorf("metastate: release from %v with no debits", m)
	case m.IsWriter():
		return Zero, fmt.Errorf("metastate: single-token release from writer %v", m)
	case m.Sum == 1:
		return Zero, nil
	default:
		return Anon(m.Sum - 1), nil
	}
}

// ReleaseWriter credits all T tokens back (Table 2 row "Release T tokens"):
// (T,X) -> (0,-).
func ReleaseWriter(m Meta, x mem.TID) (Meta, error) {
	if !m.IsWriter() || m.TID != x {
		return Zero, fmt.Errorf("metastate: writer release by X%d from %v", x, m)
	}
	return Zero, nil
}
