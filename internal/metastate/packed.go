package metastate

import (
	"fmt"

	"tokentm/internal/mem"
)

// Packed is the in-memory representation of a block's metastate: 16
// "metabits" per 64-byte block (Table 4a). The top two bits encode the
// state, the low 14 bits the attribute:
//
//	Metastate    State   Attr
//	(u,-)        00      u       (anonymous reader count)
//	(1,X)        01      X       (identified single reader)
//	(T,X)        10      X       (identified writer)
//	overflow     11      -       (count maintained by software, §4.3)
//
// The overflow state implements the paper's LimitLESS-style escape for the
// rare case of more concurrent readers than the 14-bit count can represent;
// the true count then lives in a software OverflowTable.
type Packed uint16

// PackedState is the 2-bit state field of the packed representation — a
// named enum type so switches over it fall under the exhaustive analyzer:
// every summary state must have a defined transition (Tables 3a/3b, 4a).
type PackedState uint16

// Packed state field values.
const (
	StateAnon     PackedState = 0 // (u,-)
	StateRead1    PackedState = 1 // (1,X)
	StateWriteT   PackedState = 2 // (T,X)
	StateOverflow PackedState = 3 // software-maintained count
)

// attrMask selects the 14-bit attribute field.
const attrMask = 1<<14 - 1

// maxPackedCount is the largest anonymous count representable in Attr.
const maxPackedCount = attrMask

// PackedZero is the packed form of (0,-).
const PackedZero Packed = 0

func packedOf(state PackedState, attr uint16) Packed {
	return Packed(uint16(state)<<14 | attr&attrMask)
}

// State returns the 2-bit state field.
func (p Packed) State() PackedState { return PackedState(p >> 14) }

// Attr returns the 14-bit attribute field.
func (p Packed) Attr() uint16 { return uint16(p) & attrMask }

// IsOverflow reports whether the count lives in a software table.
func (p Packed) IsOverflow() bool { return p.State() == StateOverflow }

// Pack encodes m into 16 metabits. If the anonymous count exceeds the 14-bit
// field, Pack returns the overflow encoding and overflow=true; the caller
// must then record the true count in an OverflowTable.
func Pack(m Meta) (p Packed, overflow bool) {
	switch {
	case m.Sum == 0:
		return PackedZero, false
	case m.IsWriter():
		return packedOf(StateWriteT, uint16(m.TID)), false
	case m.Sum == 1 && m.TID != mem.NoTID:
		return packedOf(StateRead1, uint16(m.TID)), false
	case m.Sum <= maxPackedCount:
		return packedOf(StateAnon, uint16(m.Sum)), false
	default:
		return packedOf(StateOverflow, 0), true
	}
}

// Unpack decodes 16 metabits into a logical metastate. For the overflow
// encoding the caller supplies the software-maintained count via table
// (may be nil only if p is not overflow).
func Unpack(p Packed, table *OverflowTable, b mem.BlockAddr) (Meta, error) {
	switch p.State() {
	case StateAnon:
		return Anon(uint32(p.Attr())), nil
	case StateRead1:
		return Read1(mem.TID(p.Attr())), nil
	case StateWriteT:
		return WriteT(mem.TID(p.Attr())), nil
	default: // StateOverflow
		if table == nil {
			return Zero, fmt.Errorf("metastate: overflow encoding for %v with no software table", b)
		}
		n, ok := table.Count(b)
		if !ok {
			return Zero, fmt.Errorf("metastate: overflow encoding for %v missing from software table", b)
		}
		return Anon(n), nil
	}
}

// OverflowTable is the software side of the LimitLESS-style overflow scheme:
// when a block's anonymous reader count exceeds the 14-bit hardware field,
// the hardware switches the block to the overflow state and software keeps
// the exact count here.
type OverflowTable struct {
	counts map[mem.BlockAddr]uint32
}

// NewOverflowTable returns an empty overflow table.
func NewOverflowTable() *OverflowTable {
	return &OverflowTable{counts: make(map[mem.BlockAddr]uint32)}
}

// Count returns the software-maintained count for block b.
func (t *OverflowTable) Count(b mem.BlockAddr) (uint32, bool) {
	n, ok := t.counts[b]
	return n, ok
}

// Set records the count for block b; a zero count removes the entry.
func (t *OverflowTable) Set(b mem.BlockAddr, n uint32) {
	if n == 0 {
		delete(t.counts, b)
		return
	}
	t.counts[b] = n
}

// Len returns the number of overflowed blocks.
func (t *OverflowTable) Len() int { return len(t.counts) }

// PackInto packs m for block b, spilling to the overflow table when needed
// and cleaning up a previous overflow entry when no longer needed.
func (t *OverflowTable) PackInto(b mem.BlockAddr, m Meta) Packed {
	p, over := Pack(m)
	if over {
		t.Set(b, m.Sum)
	} else {
		t.Set(b, 0)
	}
	return p
}
