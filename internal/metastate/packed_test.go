package metastate

import (
	"testing"
	"testing/quick"

	"tokentm/internal/mem"
)

// TestPackTable4a checks the in-memory encoding rows of Table 4a.
func TestPackTable4a(t *testing.T) {
	cases := []struct {
		m     Meta
		state PackedState
		attr  uint16
	}{
		{Anon(5), StateAnon, 5},
		{Zero, StateAnon, 0},
		{Read1(tidX), StateRead1, uint16(tidX)},
		{WriteT(tidY), StateWriteT, uint16(tidY)},
	}
	for _, c := range cases {
		p, over := Pack(c.m)
		if over {
			t.Errorf("Pack(%v) unexpectedly overflowed", c.m)
		}
		if p.State() != c.state || p.Attr() != c.attr {
			t.Errorf("Pack(%v) = state %d attr %d, want %d %d", c.m, p.State(), p.Attr(), c.state, c.attr)
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(kind uint8, sum uint16, tid uint16) bool {
		var m Meta
		switch kind % 4 {
		case 0:
			m = Zero
		case 1:
			m = Anon(uint32(sum % maxPackedCount))
		case 2:
			m = Read1(mem.TID(tid&uint16(mem.MaxTID)) | 1)
		case 3:
			m = WriteT(mem.TID(tid&uint16(mem.MaxTID)) | 1)
		}
		p, over := Pack(m)
		if over {
			return false
		}
		got, err := Unpack(p, nil, 0)
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOverflowLimitless exercises the LimitLESS-style software count path.
func TestOverflowLimitless(t *testing.T) {
	const b mem.BlockAddr = 0x1234
	big := Anon(maxPackedCount + 10)
	p, over := Pack(big)
	if !over || !p.IsOverflow() {
		t.Fatalf("Pack(%v) should overflow, got %v over=%v", big, p, over)
	}

	tab := NewOverflowTable()
	p = tab.PackInto(b, big)
	if !p.IsOverflow() || tab.Len() != 1 {
		t.Fatalf("PackInto should record overflow: %v len=%d", p, tab.Len())
	}
	got, err := Unpack(p, tab, b)
	if err != nil || got != big {
		t.Fatalf("Unpack overflow = %v, %v", got, err)
	}

	// Shrinking the count back under the limit cleans up the table.
	p = tab.PackInto(b, Anon(3))
	if p.IsOverflow() || tab.Len() != 0 {
		t.Fatalf("PackInto small should clean up: %v len=%d", p, tab.Len())
	}

	// Unpacking an overflow encoding without a table entry is an error.
	if _, err := Unpack(packedOf(StateOverflow, 0), tab, b); err == nil {
		t.Error("expected error for missing overflow entry")
	}
	if _, err := Unpack(packedOf(StateOverflow, 0), nil, b); err == nil {
		t.Error("expected error for nil overflow table")
	}
}

func TestPackedIsSixteenBits(t *testing.T) {
	// The whole point of the S3.mp encoding is that the metastate fits in
	// 16 bits per 64-byte block; make sure the representation stays there.
	p, _ := Pack(WriteT(mem.MaxTID))
	if uint32(p)>>16 != 0 {
		t.Errorf("packed metastate exceeds 16 bits: %#x", p)
	}
	if Packed(0xffff).Attr() != attrMask {
		t.Errorf("attr mask wrong")
	}
}
