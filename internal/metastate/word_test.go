package metastate

import (
	"testing"

	"tokentm/internal/mem"
)

// TestPackedWordRoundTrip checks that widening the 16 metabits into a 64-bit
// atomic word and back is lossless for every representable metastate and
// every stamp value.
func TestPackedWordRoundTrip(t *testing.T) {
	metas := []Meta{
		Zero,
		Read1(7),
		WriteT(3),
		Anon(1),
		Anon(5),
		Anon(maxPackedCount),
	}
	stamps := []uint64{0, 1, 42, 1<<48 - 1}
	for _, m := range metas {
		p, over := Pack(m)
		if over {
			t.Fatalf("%v unexpectedly overflows", m)
		}
		for _, st := range stamps {
			w := MakeWord(p, st)
			if w.Packed() != p {
				t.Errorf("MakeWord(%#04x, %d).Packed() = %#04x", uint16(p), st, uint16(w.Packed()))
			}
			if st < 1<<48 && w.Stamp() != st {
				t.Errorf("MakeWord(%#04x, %d).Stamp() = %d", uint16(p), st, w.Stamp())
			}
		}
	}
}

// TestPackedWordWith checks the read-transition helper: metabits replaced,
// stamp preserved (read traffic must never advance a block's stamp — see
// the snapshot-mode contract in the type comment), old word untouched.
func TestPackedWordWith(t *testing.T) {
	p1, _ := Pack(Read1(9))
	p2, _ := Pack(WriteT(9))
	w := MakeWord(p1, 10)
	w2 := w.With(p2)
	if w2.Packed() != p2 {
		t.Errorf("With: metabits %#04x, want %#04x", uint16(w2.Packed()), uint16(p2))
	}
	if w2.Stamp() != 10 {
		t.Errorf("With: stamp %d, want 10 (preserved)", w2.Stamp())
	}
	if w.Packed() != p1 || w.Stamp() != 10 {
		t.Errorf("With mutated receiver: %#x", uint64(w))
	}
	if w2 == w {
		t.Errorf("With returned an identical word")
	}
}

// TestPackedWordZero pins the zero-value contract the host STM relies on: a
// zero word decodes to the transactionally-inactive metastate (0,-) with
// stamp 0 ("never written"), so a freshly allocated token-word array needs
// no initialization pass and is readable at any snapshot serial.
func TestPackedWordZero(t *testing.T) {
	var w PackedWord
	if w.Packed() != PackedZero || w.Stamp() != 0 {
		t.Fatalf("zero PackedWord decodes to %#04x stamp %d", uint16(w.Packed()), w.Stamp())
	}
	m, err := Unpack(w.Packed(), nil, mem.BlockAddr(0))
	if err != nil || !m.IsZero() {
		t.Fatalf("zero word unpacks to %v, %v", m, err)
	}
}
