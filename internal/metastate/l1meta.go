package metastate

import (
	"fmt"

	"tokentm/internal/mem"
)

// L1Meta is the in-cache sparse metabit representation (Table 4b). It
// replaces the 2-bit in-memory state field with five bits so that tokens
// acquired by the thread currently running on this core (R, W) can be
// distinguished from tokens of other threads (R', W') and anonymous counts
// (R+). This distinction is what makes fast token release — a flash clear of
// the R and W columns — safe.
//
//	Metastate   R  W  R' W' R+  Attr
//	(0,-)       0  0  0  0  0   -
//	(u,-)       1  0  0  0  1   u-1    (one of the u tokens is mine)
//	(u,-)       0  0  0  0  1   u      (none of the u tokens is mine)
//	(1,X)       1  0  0  0  0   X      (X runs on this core)
//	(1,Y)       0  0  1  0  0   Y
//	(T,X)       0  1  0  0  0   X
//	(T,Y)       0  0  0  1  0   Y
//
// After a context-switch flash-OR, R' and R+ may both be set temporarily;
// the combination is refused on the next access (§4.4).
type L1Meta struct {
	R, W, Rp, Wp, RPlus bool
	Attr                uint16
}

// L1Zero is the (0,-) in-cache metastate.
var L1Zero = L1Meta{}

// IsZero reports whether no metabits are set.
func (l L1Meta) IsZero() bool { return l == L1Zero }

// HasOwn reports whether the current thread's R or W bit is set, i.e. the
// line carries tokens that a fast release would flash-clear.
func (l L1Meta) HasOwn() bool { return l.R || l.W }

// Logical reconstructs the (Sum, TID) summary this representation encodes.
func (l L1Meta) Logical() Meta {
	switch {
	case l.W:
		return WriteT(mem.TID(l.Attr))
	case l.Wp:
		return WriteT(mem.TID(l.Attr))
	case l.RPlus:
		sum := uint32(l.Attr)
		if l.R {
			sum++
		}
		if l.Rp {
			sum++
		}
		return Anon(sum)
	case l.R:
		return Read1(mem.TID(l.Attr))
	case l.Rp:
		return Read1(mem.TID(l.Attr))
	default:
		return Zero
	}
}

// Valid reports whether the bit combination is representable: W excludes
// everything else, W' likewise, and R and R' are mutually exclusive.
func (l L1Meta) Valid() bool {
	if l.W {
		return !l.R && !l.Rp && !l.Wp && !l.RPlus
	}
	if l.Wp {
		return !l.R && !l.Rp && !l.RPlus
	}
	if l.R && l.Rp {
		return false
	}
	return true
}

// L1FromMeta initializes a line's metabits from the metastate delivered with
// a data fill (the "New Copy" column of a fission, or a fused exclusive
// copy), given the TID of the thread running on this core.
func L1FromMeta(m Meta, cur mem.TID) (L1Meta, error) {
	switch {
	case m.IsZero():
		return L1Zero, nil
	case m.IsWriter():
		if m.TID == cur {
			return L1Meta{W: true, Attr: uint16(m.TID)}, nil
		}
		return L1Meta{Wp: true, Attr: uint16(m.TID)}, nil
	case m.Sum == 1 && m.TID != mem.NoTID:
		if m.TID == cur {
			return L1Meta{R: true, Attr: uint16(m.TID)}, nil
		}
		return L1Meta{Rp: true, Attr: uint16(m.TID)}, nil
	default:
		if m.Sum > maxPackedCount {
			return L1Zero, fmt.Errorf("metastate: in-cache count %d overflows Attr", m.Sum)
		}
		return L1Meta{RPlus: true, Attr: uint16(m.Sum)}, nil
	}
}

// FlashClearRW implements fast token release's constant-time flash clear: the
// R and W columns are zeroed across the whole cache, returning every line the
// current thread touched (and that stayed resident) to its pre-transaction
// metastate (§4.4, Figure 4d).
func (l *L1Meta) FlashClearRW() {
	l.R = false
	l.W = false
}

// FlashOR implements the constant-time context-switch operation: R' = R'|R,
// clear R; W' = W'|W, clear W. The departing thread's tokens become "some
// thread Y's" tokens; the incoming thread gets fresh R/W columns (§4.4).
func (l *L1Meta) FlashOR() {
	l.Rp = l.Rp || l.R
	l.R = false
	l.Wp = l.Wp || l.W
	l.W = false
}

// AcquireResult describes the outcome of attempting a transactional access
// against a line's metabits.
type AcquireResult struct {
	// OK is true when the access may proceed.
	OK bool
	// TokensAcquired is the number of tokens newly debited (0, 1, T-1 or
	// T); nonzero values must be credited to the thread's log.
	TokensAcquired uint32
	// ConflictWith summarizes the conflicting metastate when !OK. Its TID
	// identifies the enemy transaction when the state is (1,Y) or (T,Y).
	ConflictWith Meta
}

// AcquireRead attempts to add the block to thread cur's read set by
// examining and updating the line's metabits (§4.2 cases (a)-(c), plus the
// R'-refusion rules of §4.4).
func (l *L1Meta) AcquireRead(cur mem.TID) AcquireResult {
	switch {
	case l.W:
		// Already hold all T tokens; reads need no further action.
		return AcquireResult{OK: true}
	case l.Wp:
		if mem.TID(l.Attr) == cur {
			// My own write tokens from before a context switch: refuse.
			l.Wp = false
			l.W = true
			return AcquireResult{OK: true}
		}
		return AcquireResult{ConflictWith: WriteT(mem.TID(l.Attr))}
	case l.R:
		// Already hold a read token.
		return AcquireResult{OK: true}
	case l.Rp:
		if !l.RPlus && mem.TID(l.Attr) == cur {
			// Rule (i): my own token from before a context switch.
			l.Rp = false
			l.R = true
			return AcquireResult{OK: true}
		}
		// Rule (ii): fold the R' token into the anonymous count, then
		// acquire my own token.
		l.Rp = false
		if l.RPlus {
			l.Attr++
		} else {
			l.RPlus = true
			l.Attr = 1
		}
		l.R = true
		return AcquireResult{OK: true, TokensAcquired: 1}
	case l.RPlus:
		// Other transactions hold tokens; readers coexist. Attr keeps
		// counting the others.
		l.R = true
		return AcquireResult{OK: true, TokensAcquired: 1}
	default:
		l.R = true
		l.Attr = uint16(cur)
		return AcquireResult{OK: true, TokensAcquired: 1}
	}
}

// AcquireWrite attempts to add the block to thread cur's write set, which
// requires all T of the block's tokens.
func (l *L1Meta) AcquireWrite(cur mem.TID) AcquireResult {
	switch {
	case l.W:
		return AcquireResult{OK: true}
	case l.Wp:
		if mem.TID(l.Attr) == cur {
			l.Wp = false
			l.W = true
			return AcquireResult{OK: true}
		}
		return AcquireResult{ConflictWith: WriteT(mem.TID(l.Attr))}
	case l.RPlus:
		// One or more other transactions hold read tokens (an anonymous
		// count); the writer cannot take all T.
		return AcquireResult{ConflictWith: l.Logical()}
	case l.Rp:
		if mem.TID(l.Attr) == cur {
			// Upgrade my pre-context-switch read token.
			l.Rp = false
			l.W = true
			return AcquireResult{OK: true, TokensAcquired: T - 1}
		}
		return AcquireResult{ConflictWith: Read1(mem.TID(l.Attr))}
	case l.R:
		// Upgrade my own read token to a write: acquire the remaining
		// T-1 tokens.
		l.R = false
		l.W = true
		l.Attr = uint16(cur)
		return AcquireResult{OK: true, TokensAcquired: T - 1}
	default:
		l.W = true
		l.Attr = uint16(cur)
		return AcquireResult{OK: true, TokensAcquired: T}
	}
}

// String renders the metabits for debugging, e.g. "[R attr=42]".
func (l L1Meta) String() string {
	s := "["
	if l.R {
		s += "R "
	}
	if l.W {
		s += "W "
	}
	if l.Rp {
		s += "R' "
	}
	if l.Wp {
		s += "W' "
	}
	if l.RPlus {
		s += "R+ "
	}
	if s == "[" {
		s += "0 "
	}
	return fmt.Sprintf("%sattr=%d]", s, l.Attr)
}
