package metastate

import (
	"sort"

	"tokentm/internal/mem"
	"tokentm/internal/statehash"
)

// FingerprintTo mixes the logical (Sum, TID) summary.
func (m Meta) FingerprintTo(h *statehash.Hash) {
	h.U32(m.Sum)
	h.U16(uint16(m.TID))
}

// FingerprintTo mixes the five metabit columns and the attribute field.
func (l L1Meta) FingerprintTo(h *statehash.Hash) {
	var bits uint64
	if l.R {
		bits |= 1
	}
	if l.W {
		bits |= 2
	}
	if l.Rp {
		bits |= 4
	}
	if l.Wp {
		bits |= 8
	}
	if l.RPlus {
		bits |= 16
	}
	h.U64(bits)
	h.U16(l.Attr)
}

// FingerprintTo mixes the overflow counts in ascending block order.
func (t *OverflowTable) FingerprintTo(h *statehash.Hash) {
	blocks := make([]mem.BlockAddr, 0, len(t.counts))
	for b := range t.counts {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	h.Int(len(blocks))
	for _, b := range blocks {
		h.U64(uint64(b))
		h.U32(t.counts[b])
	}
}
