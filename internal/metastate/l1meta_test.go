package metastate

import (
	"testing"
	"testing/quick"

	"tokentm/internal/mem"
)

// TestL1Table4b checks every row of Table 4b: logical metastate vs in-cache
// bit patterns, with thread X on the local core.
func TestL1Table4b(t *testing.T) {
	const u = 5
	cases := []struct {
		l    L1Meta
		want Meta
	}{
		{L1Zero, Zero},
		{L1Meta{R: true, RPlus: true, Attr: u - 1}, Anon(u)},
		{L1Meta{RPlus: true, Attr: u}, Anon(u)},
		{L1Meta{R: true, Attr: uint16(tidX)}, Read1(tidX)},
		{L1Meta{Rp: true, Attr: uint16(tidY)}, Read1(tidY)},
		{L1Meta{W: true, Attr: uint16(tidX)}, WriteT(tidX)},
		{L1Meta{Wp: true, Attr: uint16(tidY)}, WriteT(tidY)},
	}
	for _, c := range cases {
		if !c.l.Valid() {
			t.Errorf("%v should be valid", c.l)
		}
		if got := c.l.Logical(); got != c.want {
			t.Errorf("%v Logical = %v, want %v", c.l, got, c.want)
		}
	}
}

func TestL1Validity(t *testing.T) {
	invalid := []L1Meta{
		{R: true, W: true},
		{W: true, RPlus: true},
		{W: true, Wp: true},
		{Wp: true, R: true},
		{R: true, Rp: true},
	}
	for _, l := range invalid {
		if l.Valid() {
			t.Errorf("%v should be invalid", l)
		}
	}
	// R' and R+ simultaneously set is explicitly allowed (transiently,
	// after a context switch).
	if !(L1Meta{Rp: true, RPlus: true, Attr: 2}).Valid() {
		t.Error("R'+R+ combination should be valid")
	}
}

func TestL1FromMeta(t *testing.T) {
	cases := []struct {
		m    Meta
		cur  mem.TID
		want L1Meta
	}{
		{Zero, tidX, L1Zero},
		{WriteT(tidX), tidX, L1Meta{W: true, Attr: uint16(tidX)}},
		{WriteT(tidY), tidX, L1Meta{Wp: true, Attr: uint16(tidY)}},
		{Read1(tidX), tidX, L1Meta{R: true, Attr: uint16(tidX)}},
		{Read1(tidY), tidX, L1Meta{Rp: true, Attr: uint16(tidY)}},
		{Anon(7), tidX, L1Meta{RPlus: true, Attr: 7}},
	}
	for _, c := range cases {
		got, err := L1FromMeta(c.m, c.cur)
		if err != nil || got != c.want {
			t.Errorf("L1FromMeta(%v, X%d) = %v, %v; want %v", c.m, c.cur, got, err, c.want)
		}
	}
	if _, err := L1FromMeta(Anon(maxPackedCount+1), tidX); err == nil {
		t.Error("expected overflow error")
	}
}

// TestFigure4FastRelease walks the paper's Figure 4 example: thread TID 42
// reads block A, writes block B, then fast-releases both with a flash clear.
func TestFigure4FastRelease(t *testing.T) {
	const tid42 mem.TID = 42
	a, b := L1Zero, L1Zero

	// (b) add A to the read set: R=1, Attr=42 -> logically (1,42).
	res := a.AcquireRead(tid42)
	if !res.OK || res.TokensAcquired != 1 {
		t.Fatalf("read A: %+v", res)
	}
	if a.Logical() != Read1(tid42) || !a.R || a.Attr != 42 {
		t.Fatalf("A after read: %v", a)
	}

	// (c) add B to the write set: W=1, Attr=42 -> logically (T,42).
	res = b.AcquireWrite(tid42)
	if !res.OK || res.TokensAcquired != T {
		t.Fatalf("write B: %+v", res)
	}
	if b.Logical() != WriteT(tid42) || !b.W || b.Attr != 42 {
		t.Fatalf("B after write: %v", b)
	}

	// (d) fast token release: flash clear R and W; both blocks return to
	// metastate (0,-).
	a.FlashClearRW()
	b.FlashClearRW()
	if a.Logical() != Zero || b.Logical() != Zero {
		t.Fatalf("after flash clear: A=%v B=%v", a.Logical(), b.Logical())
	}
}

// TestContextSwitchFlashOR verifies the flash-OR context switch and the
// R'-refusion rules (§4.4).
func TestContextSwitchFlashOR(t *testing.T) {
	// Thread X acquires a read token, then is context switched.
	l := L1Zero
	l.AcquireRead(tidX)
	l.FlashOR()
	if l.R || !l.Rp || l.Logical() != Read1(tidX) {
		t.Fatalf("after flash-OR: %v (logical %v)", l, l.Logical())
	}

	// Rule (i): the same thread X resumes and reads again; its own token
	// is reclaimed without a new acquisition.
	same := l
	res := same.AcquireRead(tidX)
	if !res.OK || res.TokensAcquired != 0 || !same.R || same.Rp {
		t.Fatalf("rule (i): %+v %v", res, same)
	}
	if same.Logical() != Read1(tidX) {
		t.Fatalf("rule (i) logical: %v", same.Logical())
	}

	// Rule (ii): a different thread Y reads; X's token is folded into an
	// anonymous count and Y acquires its own.
	other := l
	res = other.AcquireRead(tidY)
	if !res.OK || res.TokensAcquired != 1 {
		t.Fatalf("rule (ii): %+v", res)
	}
	if !other.R || other.Rp || !other.RPlus || other.Attr != 1 {
		t.Fatalf("rule (ii) bits: %v", other)
	}
	if other.Logical() != Anon(2) {
		t.Fatalf("rule (ii) logical: %v", other.Logical())
	}

	// Writes: W survives a flash-OR as W' and conflicts with others.
	w := L1Zero
	w.AcquireWrite(tidX)
	w.FlashOR()
	if !w.Wp || w.W || w.Logical() != WriteT(tidX) {
		t.Fatalf("W flash-OR: %v", w)
	}
	wSame := w
	if res := wSame.AcquireWrite(tidX); !res.OK || res.TokensAcquired != 0 || !wSame.W {
		t.Fatalf("W' refusion by owner: %+v %v", res, wSame)
	}
	wOther := w
	if res := wOther.AcquireWrite(tidY); res.OK || res.ConflictWith != WriteT(tidX) {
		t.Fatalf("W' conflict: %+v", res)
	}
	if res := wOther.AcquireRead(tidY); res.OK || res.ConflictWith != WriteT(tidX) {
		t.Fatalf("W' read conflict: %+v", res)
	}
}

// TestPostSwitchAnonymousFold exercises the transient R'+R+ combination: a
// context switch while the line already carried an anonymous count.
func TestPostSwitchAnonymousFold(t *testing.T) {
	// Line holds (u,-) with one token mine: R=1, R+=1, Attr=u-1 (u=3).
	l := L1Meta{R: true, RPlus: true, Attr: 2}
	l.FlashOR()
	if !l.Rp || !l.RPlus || l.Logical() != Anon(3) {
		t.Fatalf("after switch: %v logical %v", l, l.Logical())
	}
	// Next reader folds R' into the count and acquires: total 4.
	res := l.AcquireRead(tidY)
	if !res.OK || res.TokensAcquired != 1 || l.Logical() != Anon(4) {
		t.Fatalf("fold: %+v %v", res, l.Logical())
	}
}

// TestAcquireConflicts covers the conflict rows for reads and writes.
func TestAcquireConflicts(t *testing.T) {
	// Writer vs anonymous readers.
	l := L1Meta{RPlus: true, Attr: 2}
	if res := l.AcquireWrite(tidX); res.OK || res.ConflictWith != Anon(2) {
		t.Errorf("write vs (2,-): %+v", res)
	}
	// Writer vs identified reader.
	l = L1Meta{Rp: true, Attr: uint16(tidY)}
	if res := l.AcquireWrite(tidX); res.OK || res.ConflictWith != Read1(tidY) {
		t.Errorf("write vs (1,Y): %+v", res)
	}
	// Reader vs writer.
	l = L1Meta{Wp: true, Attr: uint16(tidY)}
	if res := l.AcquireRead(tidX); res.OK || res.ConflictWith != WriteT(tidY) {
		t.Errorf("read vs (T,Y): %+v", res)
	}
	// Read-to-write upgrade with coexisting readers conflicts.
	l = L1Meta{R: true, RPlus: true, Attr: 1}
	if res := l.AcquireWrite(tidX); res.OK {
		t.Errorf("upgrade with other readers should conflict: %+v", res)
	}
}

// TestUpgrade covers read-to-write upgrades acquiring the remaining T-1.
func TestUpgrade(t *testing.T) {
	l := L1Zero
	l.AcquireRead(tidX)
	res := l.AcquireWrite(tidX)
	if !res.OK || res.TokensAcquired != T-1 || l.Logical() != WriteT(tidX) {
		t.Fatalf("upgrade: %+v %v", res, l.Logical())
	}
	// Upgrade of a pre-context-switch own token.
	l = L1Zero
	l.AcquireRead(tidX)
	l.FlashOR()
	res = l.AcquireWrite(tidX)
	if !res.OK || res.TokensAcquired != T-1 || l.Logical() != WriteT(tidX) {
		t.Fatalf("upgrade post-switch: %+v %v", res, l.Logical())
	}
}

// Property: any sequence of valid acquires by one thread keeps the line
// metabits valid, and the logical sum equals tokens acquired (for a fresh
// line touched only by that thread).
func TestAcquireTokenAccounting(t *testing.T) {
	f := func(ops []bool, tid uint16) bool {
		cur := mem.TID(tid&uint16(mem.MaxTID)) | 1
		l := L1Zero
		var acquired uint32
		for _, isWrite := range ops {
			var res AcquireResult
			if isWrite {
				res = l.AcquireWrite(cur)
			} else {
				res = l.AcquireRead(cur)
			}
			if !res.OK {
				return false
			}
			acquired += res.TokensAcquired
			if !l.Valid() {
				return false
			}
		}
		return l.Logical().Sum == acquired
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: flash-OR preserves the logical metastate.
func TestFlashORPreservesLogical(t *testing.T) {
	lines := []L1Meta{
		L1Zero,
		{R: true, Attr: uint16(tidX)},
		{W: true, Attr: uint16(tidX)},
		{Rp: true, Attr: uint16(tidY)},
		{Wp: true, Attr: uint16(tidY)},
		{RPlus: true, Attr: 4},
		{R: true, RPlus: true, Attr: 3},
	}
	for _, l := range lines {
		before := l.Logical()
		l.FlashOR()
		if got := l.Logical(); got != before {
			t.Errorf("flash-OR changed logical metastate: %v -> %v", before, got)
		}
		if l.R || l.W {
			t.Errorf("flash-OR left R/W set: %v", l)
		}
	}
}

// Property: flash clear releases exactly the current thread's tokens.
func TestFlashClearReleasesOwnTokensOnly(t *testing.T) {
	// Mine plus others' anonymous count: clearing R leaves the others.
	l := L1Meta{R: true, RPlus: true, Attr: 3} // (4,-), one mine
	l.FlashClearRW()
	if l.Logical() != Anon(3) {
		t.Errorf("flash clear: want (3,-), got %v", l.Logical())
	}
	// Others' R' token is untouched.
	l = L1Meta{Rp: true, Attr: uint16(tidY)}
	l.FlashClearRW()
	if l.Logical() != Read1(tidY) {
		t.Errorf("flash clear touched R': %v", l.Logical())
	}
}

func TestL1String(t *testing.T) {
	l := L1Meta{R: true, Attr: 42}
	if got := l.String(); got != "[R attr=42]" {
		t.Errorf("String = %q", got)
	}
	if got := L1Zero.String(); got != "[0 attr=0]" {
		t.Errorf("zero String = %q", got)
	}
}
