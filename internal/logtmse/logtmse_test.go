package logtmse

import (
	"testing"

	"tokentm/internal/coherence"
	"tokentm/internal/htm"
	"tokentm/internal/mem"
	"tokentm/internal/sig"
	"tokentm/internal/tmlog"
)

type rig struct {
	t  *testing.T
	ms *coherence.MemSys
	st *mem.Store
	se *LogTMSE
	n  int
}

func newRig(t *testing.T, kind sig.Kind) *rig {
	ms := coherence.NewMemSys(4)
	st := mem.NewStore()
	return &rig{t: t, ms: ms, st: st, se: New(ms, st, kind, 8)}
}

func (r *rig) thread(core int) *htm.Thread {
	th := &htm.Thread{
		ID:   r.n,
		TID:  mem.TID(r.n + 1),
		Core: core,
		Log:  tmlog.New(mem.Addr(1<<40) + mem.Addr(r.n)<<24),
	}
	r.n++
	r.se.Register(th)
	return th
}

func (r *rig) begin(th *htm.Thread, ts mem.Cycle) {
	x := &htm.Xact{TID: th.TID, Core: th.Core, Timestamp: ts}
	x.Reset()
	x.Attempts = 1
	th.Xact = x
	r.se.Begin(th, ts)
}

const (
	blkA mem.Addr = 0x1000
	blkB mem.Addr = 0x2000
)

func TestNameAndStats(t *testing.T) {
	r := newRig(t, sig.Kind4xH3)
	if r.se.Name() != "LogTM-SE_4xH3" {
		t.Fatalf("name: %s", r.se.Name())
	}
	if r.se.Stats() == nil {
		t.Fatal("stats")
	}
	if r.se.String() == "" {
		t.Fatal("String")
	}
}

func TestReadWriteConflicts(t *testing.T) {
	r := newRig(t, sig.KindPerfect)
	w := r.thread(0)
	rd := r.thread(1)

	r.begin(w, 1)
	if acc := r.se.Store(w, blkA, 5, 0); acc.Outcome != htm.OK {
		t.Fatalf("store: %+v", acc)
	}

	// Reader vs writer.
	r.begin(rd, 2)
	if _, acc := r.se.Load(rd, blkA, 0); acc.Outcome == htm.OK {
		t.Fatal("read of written block must conflict")
	} else if acc.False {
		t.Fatal("real conflict misclassified as false positive")
	}
	// Read-read sharing is fine.
	if _, acc := r.se.Load(rd, blkB, 0); acc.Outcome != htm.OK {
		t.Fatalf("independent read: %+v", acc)
	}
	// Writer vs reader.
	if acc := r.se.Store(w, blkB, 1, 0); acc.Outcome == htm.OK {
		t.Fatal("write of read block must conflict")
	}

	r.se.Abort(rd)
	rd.Xact = nil
	if acc := r.se.Store(w, blkB, 1, 0); acc.Outcome != htm.OK {
		t.Fatalf("store after enemy abort: %+v", acc)
	}
	r.se.Commit(w)
}

func TestVersionManagement(t *testing.T) {
	r := newRig(t, sig.KindPerfect)
	x := r.thread(0)
	r.st.StoreWord(blkA, 7)

	r.begin(x, 1)
	r.se.Store(x, blkA, 99, 0)
	if r.st.Load(blkA) != 99 {
		t.Fatal("eager version management writes in place")
	}
	lat := r.se.Abort(x)
	if lat == 0 {
		t.Fatal("abort walk must take time")
	}
	if r.st.Load(blkA) != 7 {
		t.Fatalf("abort restore: %d", r.st.Load(blkA))
	}
	if x.Log.Len() != 0 {
		t.Fatal("log not reset after abort")
	}
}

func TestCommitIsConstantTime(t *testing.T) {
	r := newRig(t, sig.Kind2xH3)
	x := r.thread(0)
	r.begin(x, 1)
	for i := 0; i < 50; i++ {
		r.se.Store(x, blkA+mem.Addr(i*mem.BlockBytes), 1, 0)
	}
	lat, fast := r.se.Commit(x)
	if !fast || lat != htm.FastCommitCycles {
		t.Fatalf("LogTM-SE commits are constant time: lat=%d fast=%v", lat, fast)
	}
	// Signatures are clear: a new writer does not conflict.
	x.Xact = nil
	y := r.thread(1)
	r.begin(y, 2)
	if acc := r.se.Store(y, blkA, 2, 0); acc.Outcome != htm.OK {
		t.Fatalf("stale signature after commit: %+v", acc)
	}
}

// TestFalsePositiveClassification: with Bloom signatures, a conflict on an
// address the enemy never touched is flagged False.
func TestFalsePositiveClassification(t *testing.T) {
	r := newRig(t, sig.Kind2xH3)
	a := r.thread(0)
	b := r.thread(1)
	r.begin(a, 1)
	// Saturate a's write signature.
	for i := 0; i < 1500; i++ {
		r.se.Store(a, mem.Addr(0x100000+i*mem.BlockBytes), 1, 0)
	}
	r.begin(b, 2)
	sawFalse := false
	for i := 0; i < 200 && !sawFalse; i++ {
		_, acc := r.se.Load(b, mem.Addr(0x9000000+i*mem.BlockBytes), 0)
		if acc.Outcome != htm.OK && acc.False {
			sawFalse = true
		}
	}
	if !sawFalse {
		t.Fatal("saturated 2xH3 signature should produce false positives")
	}
	if r.se.Metrics.FalseConflicts == 0 {
		t.Fatal("false conflicts not counted")
	}
	ro, wo := r.se.SigOccupancy(a.TID)
	if wo == 0 {
		t.Fatalf("write signature occupancy: %f %f", ro, wo)
	}
}

func TestPerfectNeverFalse(t *testing.T) {
	r := newRig(t, sig.KindPerfect)
	a := r.thread(0)
	b := r.thread(1)
	r.begin(a, 1)
	for i := 0; i < 500; i++ {
		r.se.Store(a, mem.Addr(0x100000+i*mem.BlockBytes), 1, 0)
	}
	r.begin(b, 2)
	for i := 0; i < 500; i++ {
		if _, acc := r.se.Load(b, mem.Addr(0x9000000+i*mem.BlockBytes), 0); acc.Outcome != htm.OK {
			t.Fatal("perfect signatures must not alias")
		}
	}
}

func TestStrongAtomicity(t *testing.T) {
	r := newRig(t, sig.KindPerfect)
	x := r.thread(0)
	other := r.thread(1)
	r.begin(x, 1)
	r.se.Store(x, blkA, 5, 0)
	// Non-transactional read of transactionally written block conflicts.
	if _, acc := r.se.Load(other, blkA, 0); acc.Outcome == htm.OK {
		t.Fatal("nonxact read vs writer must conflict")
	}
	// Non-transactional write of transactionally read block conflicts.
	r.se.Load(x, blkB, 0)
	if acc := r.se.Store(other, blkB, 1, 0); acc.Outcome == htm.OK {
		t.Fatal("nonxact write vs reader must conflict")
	}
	r.se.Commit(x)
	x.Xact = nil
	if _, acc := r.se.Load(other, blkA, 0); acc.Outcome != htm.OK {
		t.Fatalf("nonxact read after commit: %+v", acc)
	}
}

func TestAbortRequestedHonored(t *testing.T) {
	r := newRig(t, sig.KindPerfect)
	x := r.thread(0)
	r.begin(x, 1)
	x.Xact.AbortRequested = true
	if _, acc := r.se.Load(x, blkA, 0); acc.Outcome != htm.AbortSelf {
		t.Fatalf("load with abort requested: %+v", acc)
	}
	if acc := r.se.Store(x, blkA, 1, 0); acc.Outcome != htm.AbortSelf {
		t.Fatalf("store with abort requested: %+v", acc)
	}
}

func TestContextSwitchIsCheap(t *testing.T) {
	r := newRig(t, sig.Kind2xH3)
	if lat := r.se.ContextSwitch(0, nil, nil); lat != htm.CtxSwitchCycles {
		t.Fatalf("context switch latency: %d", lat)
	}
	if ro, wo := r.se.SigOccupancy(99); ro != 0 || wo != 0 {
		t.Fatal("unknown TID occupancy should be zero")
	}
}
