// Package logtmse implements the paper's baseline unbounded HTM, LogTM-SE
// (Yen et al., HPCA 2007): eager version management through per-thread logs
// (shared with TokenTM) and conflict detection through read/write-set
// signatures. The three variants evaluated — Perf (unimplementable exact
// signatures), 2xH3 and 4xH3 (2 Kbit Bloom filters with 2 or 4 parallel H3
// hashes) — differ only in the signature implementation, so signature false
// positives are the sole source of performance difference (Figure 1).
package logtmse

import (
	"fmt"
	"sort"

	"tokentm/internal/coherence"
	"tokentm/internal/htm"
	"tokentm/internal/mem"
	"tokentm/internal/sig"
	"tokentm/internal/tmlog"
)

// LogTMSE is the signature-based HTM system.
type LogTMSE struct {
	name       string
	kind       sig.Kind
	retryLimit int

	ms    *coherence.MemSys
	store *mem.Store

	byTID map[mem.TID]*htm.Thread
	// threads holds registered threads sorted by TID, each with its
	// signatures alongside: checkConflict walks this per access, and a map
	// lookup per foreign thread was measurable.
	threads []threadEntry
	sigs    map[mem.TID]*threadSigs

	// Metrics aggregates evaluation counters.
	Metrics htm.Metrics
}

type threadSigs struct {
	read  sig.Signature
	write sig.Signature
}

type threadEntry struct {
	th *htm.Thread
	sg *threadSigs
}

var _ htm.System = (*LogTMSE)(nil)

// New builds a LogTM-SE system with the given signature kind.
func New(ms *coherence.MemSys, store *mem.Store, kind sig.Kind, retryLimit int) *LogTMSE {
	return &LogTMSE{
		name:       "LogTM-SE_" + kind.String(),
		kind:       kind,
		retryLimit: retryLimit,
		ms:         ms,
		store:      store,
		byTID:      make(map[mem.TID]*htm.Thread),
		sigs:       make(map[mem.TID]*threadSigs),
	}
}

// Name returns the variant name (e.g. "LogTM-SE_4xH3").
func (s *LogTMSE) Name() string { return s.name }

// Stats exposes the variant's metrics.
func (s *LogTMSE) Stats() *htm.Metrics { return &s.Metrics }

// Register introduces a thread and builds its signatures; per-thread seeds
// decorrelate the H3 hash functions across cores as in hardware, where each
// core's XOR trees are wired from different random matrices. The thread list
// stays sorted by TID so conflict checks walk foreign signatures in a fixed
// order regardless of registration order or map layout.
func (s *LogTMSE) Register(th *htm.Thread) {
	sg := &threadSigs{
		read:  sig.New(s.kind, int64(th.TID)*7919+1),
		write: sig.New(s.kind, int64(th.TID)*104729+2),
	}
	e := threadEntry{th: th, sg: sg}
	i := sort.Search(len(s.threads), func(i int) bool { return s.threads[i].th.TID >= th.TID })
	if i < len(s.threads) && s.threads[i].th.TID == th.TID {
		s.threads[i] = e
	} else {
		s.threads = append(s.threads, threadEntry{})
		copy(s.threads[i+1:], s.threads[i:])
		s.threads[i] = e
	}
	s.byTID[th.TID] = th
	s.sigs[th.TID] = sg
}

// RunningOn is a no-op: signatures are per-thread state and virtualize
// trivially across context switches (the point of LogTM-SE's design).
func (s *LogTMSE) RunningOn(core int, th *htm.Thread) {}

// Begin clears the thread's signatures.
func (s *LogTMSE) Begin(th *htm.Thread, now mem.Cycle) mem.Cycle {
	sg := s.sigs[th.TID]
	sg.read.Clear()
	sg.write.Clear()
	return htm.BeginCycles
}

// checkConflict tests b against every other in-flight transaction's
// signatures: write requests conflict with foreign read or write sets, read
// requests with foreign write sets. It returns the identified enemies, the
// conflict's kind (KindNone when there are no enemies) and whether the
// conflict is a pure signature false positive. Threads are walked in TID
// order so the enemy list is deterministic.
func (s *LogTMSE) checkConflict(self mem.TID, b mem.BlockAddr, isWrite bool) (enemies []*htm.Xact, kind htm.ConflictKind, falsePositive bool) {
	real := false
	writerHit := false
	for _, e := range s.threads {
		th, sg := e.th, e.sg
		if th.TID == self || !th.InXact() {
			continue
		}
		hit := sg.write.Test(b)
		if hit {
			writerHit = true
		}
		if !hit && isWrite {
			hit = sg.read.Test(b)
		}
		if !hit {
			continue
		}
		enemies = append(enemies, th.Xact)
		// Exact sets reveal whether this was an alias.
		_, inW := th.Xact.WriteSet[b]
		_, inR := th.Xact.ReadSet[b]
		if inW || (isWrite && inR) {
			real = true
		}
	}
	switch {
	case len(enemies) == 0:
		kind = htm.KindNone
	case self == mem.NoTID:
		kind = htm.KindNonXact
	case !isWrite:
		kind = htm.KindReadVsWriter
	case writerHit:
		kind = htm.KindWriteVsWriter
	default:
		kind = htm.KindWriteVsReaders
	}
	return enemies, kind, len(enemies) > 0 && !real
}

func (s *LogTMSE) conflict(req *htm.Xact, b mem.BlockAddr, enemies []*htm.Xact, retries int, kind htm.ConflictKind, falsePos bool) htm.Access {
	s.Metrics.Conflicts++
	s.Metrics.CountConflict(kind)
	if falsePos {
		s.Metrics.FalseConflicts++
	}
	lat := coherence.L1HitCycles + htm.ConflictTrapCycles
	abort, dec := htm.ResolveTimestamp(req, enemies, retries, s.retryLimit)
	htm.ApplyResolution(req, enemies, abort, dec, b, kind)
	if dec == htm.DecideAbortSelf {
		return htm.Access{Outcome: htm.AbortSelf, Latency: lat, Enemies: enemies, Kind: kind, False: falsePos}
	}
	s.Metrics.Stalls++
	return htm.Access{Outcome: htm.Stall, Latency: lat, Enemies: enemies, Kind: kind, False: falsePos}
}

// logWrite simulates the log append; like TokenTM's, log stores drain
// through the store buffer so the core stalls only for a fraction of the
// raw miss time.
func (s *LogTMSE) logWrite(th *htm.Thread, addr mem.Addr, size int) mem.Cycle {
	var raw mem.Cycle
	first := addr.Block()
	last := (addr + mem.Addr(size) - 1).Block()
	for b := first; b <= last; b++ {
		raw += s.ms.Access(th.Core, b, true)
	}
	lat := coherence.L1HitCycles
	if raw > coherence.L1HitCycles {
		stall := (raw - coherence.L1HitCycles) / htm.LogWriteOverlap
		lat += stall
		if th.InXact() {
			th.Xact.LogStall += stall
		}
	}
	return lat
}

// Load performs a read with eager conflict detection against foreign write
// signatures (strong atomicity applies to non-transactional reads too).
func (s *LogTMSE) Load(th *htm.Thread, addr mem.Addr, retries int) (uint64, htm.Access) {
	b := addr.Block()
	x := th.Xact
	if x != nil && x.AbortRequested {
		return 0, htm.Access{Outcome: htm.AbortSelf}
	}
	self := mem.NoTID
	if x != nil {
		self = x.TID
		if _, ok := x.ReadSet[b]; ok {
			// Already in our read set: eager detection means any
			// conflicting writer found us when it accessed the block.
			lat := s.ms.Access(th.Core, b, false)
			return s.store.Load(addr), htm.Access{Latency: lat}
		}
	}
	if enemies, kind, falsePos := s.checkConflict(self, b, false); len(enemies) > 0 {
		return 0, s.conflict(x, b, enemies, retries, kind, falsePos)
	}
	lat := s.ms.Access(th.Core, b, false)
	if x != nil {
		s.sigs[x.TID].read.Add(b)
		x.ReadSet[b] = struct{}{}
	}
	return s.store.Load(addr), htm.Access{Latency: lat}
}

// Store performs a write with eager conflict detection against foreign read
// and write signatures.
func (s *LogTMSE) Store(th *htm.Thread, addr mem.Addr, val uint64, retries int) htm.Access {
	b := addr.Block()
	x := th.Xact
	if x != nil && x.AbortRequested {
		return htm.Access{Outcome: htm.AbortSelf}
	}
	self := mem.NoTID
	if x != nil {
		self = x.TID
		if _, ok := x.WriteSet[b]; ok {
			lat := s.ms.Access(th.Core, b, true)
			s.store.StoreWord(addr, val)
			return htm.Access{Latency: lat}
		}
	}
	if enemies, kind, falsePos := s.checkConflict(self, b, true); len(enemies) > 0 {
		return s.conflict(x, b, enemies, retries, kind, falsePos)
	}
	lat := s.ms.Access(th.Core, b, true)
	if x != nil {
		s.sigs[x.TID].write.Add(b)
		if _, seen := x.WriteSet[b]; !seen {
			old := s.readBlock(b)
			rAddr, rSize := th.Log.AppendData(b, 0, old)
			lat += s.logWrite(th, rAddr, rSize)
			x.WriteSet[b] = struct{}{}
		}
	}
	s.store.StoreWord(addr, val)
	return htm.Access{Latency: lat}
}

func (s *LogTMSE) readBlock(b mem.BlockAddr) (out [mem.WordsPerBlock]uint64) {
	base := b.Addr()
	for i := range out {
		out[i] = s.store.Load(base + mem.Addr(i*mem.WordBytes))
	}
	return out
}

// Commit is always constant time in LogTM-SE: clear the signatures and
// reset the log pointer.
func (s *LogTMSE) Commit(th *htm.Thread) (mem.Cycle, bool) {
	sg := s.sigs[th.TID]
	sg.read.Clear()
	sg.write.Clear()
	th.Log.Reset()
	th.Xact.Active = false
	return htm.FastCommitCycles, true
}

// Abort unrolls the log in reverse, restoring pre-transaction values, and
// clears the signatures.
func (s *LogTMSE) Abort(th *htm.Thread) mem.Cycle {
	x := th.Xact
	core := th.Core
	var lat mem.Cycle
	offset := th.Log.Bytes()
	recs := th.Log.Records()
	for i := len(recs) - 1; i >= 0; i-- {
		rec := recs[i]
		offset -= rec.Bytes()
		lat += htm.AbortRecordCycles
		lat += s.ms.Access(core, (th.Log.Base() + mem.Addr(offset)).Block(), false)
		if rec.Kind == tmlog.DataRecord {
			lat += s.ms.Access(core, rec.Block, true)
			s.writeBlock(rec.Block, rec.Old)
		}
	}
	sg := s.sigs[th.TID]
	sg.read.Clear()
	sg.write.Clear()
	th.Log.Reset()
	x.Active = false
	s.Metrics.Aborts++
	return lat
}

func (s *LogTMSE) writeBlock(b mem.BlockAddr, words [mem.WordsPerBlock]uint64) {
	base := b.Addr()
	for i, w := range words {
		s.store.StoreWord(base+mem.Addr(i*mem.WordBytes), w)
	}
}

// ContextSwitch is cheap for LogTM-SE: signatures are per-thread software-
// visible state (that is the design's virtualization story).
func (s *LogTMSE) ContextSwitch(core int, out, in *htm.Thread) mem.Cycle {
	return htm.CtxSwitchCycles
}

// SigOccupancy reports a thread's current signature occupancy (diagnostics).
func (s *LogTMSE) SigOccupancy(tid mem.TID) (read, write float64) {
	sg, ok := s.sigs[tid]
	if !ok {
		return 0, 0
	}
	return sg.read.Occupancy(), sg.write.Occupancy()
}

func (s *LogTMSE) String() string { return fmt.Sprintf("%s(retry=%d)", s.name, s.retryLimit) }
