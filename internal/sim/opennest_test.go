package sim

import (
	"testing"

	"tokentm/internal/core"
	"tokentm/internal/mem"
)

// TestOpenNestingCommitsIndependently: an open-nested transaction's effects
// are visible immediately and survive the parent's abort; the compensation
// runs on parent abort.
func TestOpenNestingCommitsIndependently(t *testing.T) {
	for _, variant := range allVariants {
		t.Run(variant, func(t *testing.T) {
			m := New(Config{Cores: 2, Seed: 5})
			m.SetHTM(buildHTM(m, variant))
			const (
				allocCounter mem.Addr = 0x1000 // touched by open xacts
				data         mem.Addr = 0x2000 // parent's data
			)
			m.Spawn(func(tc *Ctx) {
				failedOnce := false
				tc.Atomic(func(tx *Tx) {
					tx.Store(data, tx.Load(data)+100)
					// "Allocate" inside the transaction: open-nested
					// increment with a compensating decrement.
					tx.Open(func(in *Tx) {
						in.Store(allocCounter, in.Load(allocCounter)+1)
					}, func(comp *Tx) {
						comp.Store(allocCounter, comp.Load(allocCounter)-1)
					})
					if !failedOnce {
						failedOnce = true
						tx.Retry() // force one parent abort
					}
				})
			})
			m.Run()
			// Parent ran twice (one abort), so the open xact committed
			// twice and compensated once: net 1.
			if got := m.Store.Load(allocCounter); got != 1 {
				t.Fatalf("alloc counter = %d, want 1 (two commits, one compensation)", got)
			}
			if got := m.Store.Load(data); got != 100 {
				t.Fatalf("parent data = %d", got)
			}
			if tok, ok := m.HTM.(*core.TokenTM); ok {
				if err := tok.CheckBookkeeping(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestOpenNestingReleasesEarly: after the open child commits, other threads
// can access its data even while the parent is still running — the child's
// conflict-detection state is gone.
func TestOpenNestingReleasesEarly(t *testing.T) {
	m := New(Config{Cores: 2, Seed: 1})
	tok := core.New(m.Mem, m.Store)
	m.SetHTM(tok)
	const (
		shared  mem.Addr = 0x1000
		private mem.Addr = 0x2000
		gate    mem.Addr = 0x3000
	)
	observed := uint64(0)
	m.Spawn(func(tc *Ctx) {
		tc.Atomic(func(tx *Tx) {
			tx.Store(private, 1)
			tx.Open(func(in *Tx) {
				in.Store(shared, 42)
			}, nil)
			// Signal the other thread, then keep the parent alive.
			tc.Store(gate, 1) // hmm: non-transactional store inside xact
			tx.Work(30_000)
		})
	})
	m.Spawn(func(tc *Ctx) {
		for tc.Load(gate) == 0 {
			tc.Work(500)
		}
		// The parent is still live, but the open child's write must be
		// readable without conflicting.
		observed = tc.Load(shared)
	})
	m.Run()
	if observed != 42 {
		t.Fatalf("open-nested write not visible early: %d", observed)
	}
	if err := tok.CheckBookkeeping(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenNestingCoexistsWithParentReads: the open child may read blocks the
// parent has read (flash-OR turned the parent's R into R'; readers coexist).
func TestOpenNestingCoexistsWithParentReads(t *testing.T) {
	m := New(Config{Cores: 1, Seed: 1})
	tok := core.New(m.Mem, m.Store)
	m.SetHTM(tok)
	const a mem.Addr = 0x4000
	m.Store.StoreWord(a, 7)
	got := uint64(0)
	m.Spawn(func(tc *Ctx) {
		tc.Atomic(func(tx *Tx) {
			v := tx.Load(a)
			tx.Open(func(in *Tx) {
				got = in.Load(a) // same block, read-read: fine
			}, nil)
			tx.Store(0x5000, v)
		})
	})
	m.Run()
	if got != 7 {
		t.Fatalf("open read = %d", got)
	}
	if err := tok.CheckBookkeeping(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenNestingSelfConflictDetected: an open child writing its parent's
// write set is an unresolvable self-deadlock and must be surfaced.
func TestOpenNestingSelfConflictDetected(t *testing.T) {
	m := New(Config{Cores: 1, Seed: 1})
	m.SetHTM(core.New(m.Mem, m.Store))
	const a mem.Addr = 0x6000
	m.Spawn(func(tc *Ctx) {
		tc.Atomic(func(tx *Tx) {
			tx.Store(a, 1)
			tx.Open(func(in *Tx) {
				in.Store(a, 2) // parent's write set: self-conflict
			}, nil)
		})
	})
	// The thread body's panic is forwarded out of Run (by either engine).
	var p interface{}
	func() {
		defer func() { p = recover() }()
		m.Run()
	}()
	if p == nil {
		t.Fatal("expected a self-conflict panic")
	}
	if p != errOpenSelfConflict {
		t.Fatalf("panicked with %v, want errOpenSelfConflict", p)
	}
	m.Kill()
}

// TestRetryOutsideTransactionPanics guards the API.
func TestRetryOutsideTransactionPanics(t *testing.T) {
	tx := &Tx{tc: &Ctx{}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tx.Retry()
}
