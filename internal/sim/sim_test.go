package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"tokentm/internal/core"
	"tokentm/internal/htm"
	"tokentm/internal/logtmse"
	"tokentm/internal/mem"
	"tokentm/internal/sig"
)

// buildHTM constructs each evaluated variant for a machine.
func buildHTM(m *Machine, name string) htm.System {
	switch name {
	case "TokenTM":
		return core.New(m.Mem, m.Store)
	case "TokenTM_NoFast":
		return core.New(m.Mem, m.Store, core.WithoutFastRelease())
	case "LogTM-SE_Perf":
		return logtmse.New(m.Mem, m.Store, sig.KindPerfect, 8)
	case "LogTM-SE_2xH3":
		return logtmse.New(m.Mem, m.Store, sig.Kind2xH3, 8)
	case "LogTM-SE_4xH3":
		return logtmse.New(m.Mem, m.Store, sig.Kind4xH3, 8)
	}
	panic("unknown variant " + name)
}

var allVariants = []string{"TokenTM", "TokenTM_NoFast", "LogTM-SE_Perf", "LogTM-SE_2xH3", "LogTM-SE_4xH3"}

func newMachine(t *testing.T, cores int, variant string) *Machine {
	t.Helper()
	m := New(Config{Cores: cores, RetryLimit: 8})
	m.SetHTM(buildHTM(m, variant))
	return m
}

func TestNonTransactionalExecution(t *testing.T) {
	m := newMachine(t, 2, "TokenTM")
	const addr mem.Addr = 0x1000
	m.Spawn(func(tc *Ctx) {
		tc.Store(addr, 41)
		v := tc.Load(addr)
		tc.Store(addr, v+1)
		tc.Work(100)
	})
	cycles := m.Run()
	if got := m.Store.Load(addr); got != 42 {
		t.Fatalf("value = %d, want 42", got)
	}
	if cycles < 100 {
		t.Fatalf("makespan %d too small", cycles)
	}
}

// TestAtomicCounter is the classic TM smoke test: concurrent increments of
// one shared counter must all be preserved, on every variant.
func TestAtomicCounter(t *testing.T) {
	for _, variant := range allVariants {
		t.Run(variant, func(t *testing.T) {
			m := newMachine(t, 8, variant)
			const addr mem.Addr = 0x2000
			const perThread = 25
			for i := 0; i < 8; i++ {
				m.Spawn(func(tc *Ctx) {
					for k := 0; k < perThread; k++ {
						tc.Atomic(func(tx *Tx) {
							v := tx.Load(addr)
							tx.Work(20)
							tx.Store(addr, v+1)
						})
						tc.Work(50)
					}
				})
			}
			m.Run()
			if got := m.Store.Load(addr); got != 8*perThread {
				t.Fatalf("counter = %d, want %d", got, 8*perThread)
			}
			if len(m.Commits) != 8*perThread {
				t.Fatalf("commits = %d", len(m.Commits))
			}
		})
	}
}

// TestBankConservation is the serializability property test: random
// transfers between accounts must conserve total money under heavy
// contention and aborts, for every HTM variant.
func TestBankConservation(t *testing.T) {
	for _, variant := range allVariants {
		t.Run(variant, func(t *testing.T) {
			m := newMachine(t, 8, variant)
			const accounts = 16
			const initial = 1000
			base := mem.Addr(0x8000)
			acct := func(i int) mem.Addr { return base + mem.Addr(i)*mem.BlockBytes }
			for i := 0; i < accounts; i++ {
				m.Store.StoreWord(acct(i), initial)
			}
			for th := 0; th < 8; th++ {
				seed := int64(th + 1)
				m.Spawn(func(tc *Ctx) {
					rng := rand.New(rand.NewSource(seed))
					for k := 0; k < 30; k++ {
						from, to := rng.Intn(accounts), rng.Intn(accounts)
						if from == to {
							continue
						}
						amt := uint64(1 + rng.Intn(10))
						tc.Atomic(func(tx *Tx) {
							f := tx.Load(acct(from))
							if f < amt {
								return
							}
							tx.Store(acct(from), f-amt)
							tg := tx.Load(acct(to))
							tx.Store(acct(to), tg+amt)
						})
					}
				})
			}
			m.Run()
			var total uint64
			for i := 0; i < accounts; i++ {
				total += m.Store.Load(acct(i))
			}
			if total != accounts*initial {
				t.Fatalf("money not conserved: %d != %d", total, accounts*initial)
			}
			if tok, ok := m.HTM.(*core.TokenTM); ok {
				if err := tok.CheckBookkeeping(); err != nil {
					t.Fatalf("bookkeeping: %v", err)
				}
			}
		})
	}
}

// TestIsolation checks that a reader transaction never observes a torn pair
// of values that writers always update together.
func TestIsolation(t *testing.T) {
	for _, variant := range allVariants {
		t.Run(variant, func(t *testing.T) {
			m := newMachine(t, 4, variant)
			a, b := mem.Addr(0x3000), mem.Addr(0x7000)
			violations := 0
			// Writers keep a == b.
			for w := 0; w < 2; w++ {
				m.Spawn(func(tc *Ctx) {
					for k := 0; k < 40; k++ {
						tc.Atomic(func(tx *Tx) {
							v := tx.Load(a)
							tx.Store(a, v+1)
							tx.Work(30)
							tx.Store(b, tx.Load(b)+1)
						})
					}
				})
			}
			// Readers verify the invariant transactionally.
			for r := 0; r < 2; r++ {
				m.Spawn(func(tc *Ctx) {
					for k := 0; k < 40; k++ {
						tc.Atomic(func(tx *Tx) {
							x := tx.Load(a)
							tx.Work(25)
							y := tx.Load(b)
							if x != y {
								violations++
							}
						})
						tc.Work(75)
					}
				})
			}
			m.Run()
			if violations != 0 {
				t.Fatalf("%d isolation violations", violations)
			}
			if m.Store.Load(a) != 80 || m.Store.Load(b) != 80 {
				t.Fatalf("final values: %d %d", m.Store.Load(a), m.Store.Load(b))
			}
		})
	}
}

// TestFastVsSoftwareRelease: cache-resident transactions commit with fast
// token release; transactions overflowing the L1 fall back to the software
// log walk — and both stay correct.
func TestFastVsSoftwareRelease(t *testing.T) {
	m := newMachine(t, 1, "TokenTM")
	tok := m.HTM.(*core.TokenTM)

	// Small transaction: a handful of blocks.
	m.Spawn(func(tc *Ctx) {
		tc.Atomic(func(tx *Tx) {
			for i := 0; i < 8; i++ {
				tx.Store(mem.Addr(0x10000+i*mem.BlockBytes), uint64(i))
			}
		})
		// Large transaction: write far more blocks than one L1 set holds
		// (same set via stride = sets*blocksize), forcing evictions of
		// transactional lines.
		stride := mem.Addr(128 * mem.BlockBytes)
		tc.Atomic(func(tx *Tx) {
			for i := 0; i < 64; i++ {
				tx.Store(mem.Addr(0x200000)+stride*mem.Addr(i), uint64(i))
			}
		})
	})
	m.Run()
	if tok.FastCommits != 1 || tok.SlowCommits != 1 {
		t.Fatalf("fast=%d slow=%d, want 1 and 1", tok.FastCommits, tok.SlowCommits)
	}
	if err := tok.CheckBookkeeping(); err != nil {
		t.Fatalf("bookkeeping: %v", err)
	}
	// Values must be intact either way.
	stride := mem.Addr(128 * mem.BlockBytes)
	for i := 0; i < 64; i++ {
		if got := m.Store.Load(mem.Addr(0x200000) + stride*mem.Addr(i)); got != uint64(i) {
			t.Fatalf("block %d = %d", i, got)
		}
	}
	// The software-release commit must be recorded with its release time.
	var slow *htm.CommitRecord
	for i := range m.Commits {
		if !m.Commits[i].Fast {
			slow = &m.Commits[i]
		}
	}
	if slow == nil || slow.ReleaseCycles == 0 {
		t.Fatalf("software release not recorded: %+v", m.Commits)
	}
}

// TestNoFastVariantAlwaysWalksLog checks TokenTM_NoFast releases in software
// even for tiny transactions.
func TestNoFastVariantAlwaysWalksLog(t *testing.T) {
	m := newMachine(t, 1, "TokenTM_NoFast")
	tok := m.HTM.(*core.TokenTM)
	m.Spawn(func(tc *Ctx) {
		tc.Atomic(func(tx *Tx) {
			tx.Store(0x5000, 7)
		})
	})
	m.Run()
	if tok.FastCommits != 0 || tok.SlowCommits != 1 {
		t.Fatalf("fast=%d slow=%d", tok.FastCommits, tok.SlowCommits)
	}
}

// TestContextSwitchDuringTransaction runs two transactional threads on one
// core with a small quantum: transactions survive flash-OR context switches
// and still commit correctly (necessarily via software release).
func TestContextSwitchDuringTransaction(t *testing.T) {
	m := New(Config{Cores: 1, Quantum: 500, RetryLimit: 8})
	tok := core.New(m.Mem, m.Store)
	m.SetHTM(tok)
	const addr mem.Addr = 0x9000
	for i := 0; i < 2; i++ {
		m.Spawn(func(tc *Ctx) {
			for k := 0; k < 5; k++ {
				tc.Atomic(func(tx *Tx) {
					v := tx.Load(addr)
					tx.Work(1200) // exceed the quantum mid-transaction
					tx.Store(addr, v+1)
				})
			}
		})
	}
	m.Run()
	if got := m.Store.Load(addr); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	if err := tok.CheckBookkeeping(); err != nil {
		t.Fatalf("bookkeeping: %v", err)
	}
	if tok.SlowCommits == 0 {
		t.Fatal("context-switched transactions must use software release")
	}
}

// TestLocksAndSyscalls exercises the OS model: lock handoff order and
// blocking syscalls that free the core.
func TestLocksAndSyscalls(t *testing.T) {
	m := newMachine(t, 2, "TokenTM")
	const addr mem.Addr = 0xa000
	for i := 0; i < 4; i++ {
		m.Spawn(func(tc *Ctx) {
			for k := 0; k < 5; k++ {
				tc.Lock(1)
				v := tc.Load(addr)
				tc.Syscall(2000) // blocking call inside the critical section
				tc.Store(addr, v+1)
				tc.Unlock(1)
			}
		})
	}
	cycles := m.Run()
	if got := m.Store.Load(addr); got != 20 {
		t.Fatalf("lock-protected counter = %d, want 20", got)
	}
	if cycles < 20*2000 {
		t.Fatalf("syscalls serialized under the lock should dominate: %d", cycles)
	}
}

// TestDeterminism: identical seeds give identical makespans; different
// seeds perturb them.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) mem.Cycle {
		m := New(Config{Cores: 4, Seed: seed, RetryLimit: 8})
		m.SetHTM(core.New(m.Mem, m.Store))
		const addr mem.Addr = 0x2000
		for i := 0; i < 4; i++ {
			m.Spawn(func(tc *Ctx) {
				for k := 0; k < 10; k++ {
					tc.Atomic(func(tx *Tx) {
						tx.Store(addr, tx.Load(addr)+1)
					})
				}
			})
		}
		return m.Run()
	}
	if run(1) != run(1) {
		t.Fatal("same seed must reproduce exactly")
	}
}

// TestAbortsHappenUnderContention: with many threads hammering one block,
// some attempts must abort, and aborted work must be invisible.
func TestAbortsHappenUnderContention(t *testing.T) {
	m := newMachine(t, 8, "TokenTM")
	const a mem.Addr = 0x4000
	for i := 0; i < 8; i++ {
		m.Spawn(func(tc *Ctx) {
			for k := 0; k < 20; k++ {
				tc.Atomic(func(tx *Tx) {
					v := tx.Load(a)
					tx.Work(500)
					tx.Store(a, v+1)
				})
			}
		})
	}
	m.Run()
	if got := m.Store.Load(a); got != 160 {
		t.Fatalf("counter = %d", got)
	}
	if m.HTM.Stats().Aborts == 0 && m.HTM.Stats().Stalls == 0 {
		t.Fatal("expected contention to cause stalls or aborts")
	}
}

// TestFalsePositivesOnlyWithBloom: disjoint working sets never conflict
// under perfect signatures or TokenTM, but 2xH3 sees false conflicts once
// sets are large.
func TestFalsePositivesOnlyWithBloom(t *testing.T) {
	runWith := func(variant string) (falseConf uint64) {
		m := newMachine(t, 4, variant)
		for i := 0; i < 4; i++ {
			base := mem.Addr(0x100000 * (i + 1))
			m.Spawn(func(tc *Ctx) {
				for k := 0; k < 3; k++ {
					tc.Atomic(func(tx *Tx) {
						for j := 0; j < 200; j++ {
							a := base + mem.Addr(j)*mem.BlockBytes
							tx.Store(a, tx.Load(a)+1)
						}
					})
				}
			})
		}
		m.Run()
		return m.HTM.Stats().FalseConflicts
	}
	if fc := runWith("LogTM-SE_Perf"); fc != 0 {
		t.Fatalf("perfect signatures reported %d false conflicts", fc)
	}
	if fc := runWith("TokenTM"); fc != 0 {
		t.Fatalf("TokenTM reported %d false conflicts", fc)
	}
	if fc := runWith("LogTM-SE_2xH3"); fc == 0 {
		t.Fatal("2xH3 with 200-block sets should alias")
	}
}

// TestLargeTransactionDoesNotBlockOthers: the headline TokenTM property — a
// huge transaction in one thread leaves non-conflicting small transactions
// running at full speed (all fast commits).
func TestLargeTransactionDoesNotBlockOthers(t *testing.T) {
	m := newMachine(t, 2, "TokenTM")
	tok := m.HTM.(*core.TokenTM)
	stride := mem.Addr(128 * mem.BlockBytes)
	m.Spawn(func(tc *Ctx) { // the elephant
		tc.Atomic(func(tx *Tx) {
			for i := 0; i < 600; i++ {
				a := mem.Addr(0x4000000) + stride*mem.Addr(i)
				tx.Store(a, uint64(i))
			}
		})
	})
	small := 0
	m.Spawn(func(tc *Ctx) { // the mice
		for k := 0; k < 50; k++ {
			tc.Atomic(func(tx *Tx) {
				a := mem.Addr(0x1000) + mem.Addr(k%4)*mem.BlockBytes
				tx.Store(a, tx.Load(a)+1)
			})
			small++
		}
	})
	m.Run()
	if small != 50 {
		t.Fatalf("small transactions: %d", small)
	}
	var smallFast int
	for _, r := range m.Commits {
		if r.Thread == 1 && r.Fast {
			smallFast++
		}
	}
	if smallFast != 50 {
		t.Fatalf("non-conflicting small transactions should all fast-commit: %d/50", smallFast)
	}
	if err := tok.CheckBookkeeping(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomizedStressWithInvariant drives random mixed workloads and
// checks the double-entry bookkeeping invariant at the end of every run.
func TestRandomizedStressWithInvariant(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		variant := allVariants[trial%len(allVariants)]
		m := New(Config{Cores: 4, Seed: int64(trial), RetryLimit: 8})
		m.SetHTM(buildHTM(m, variant))
		for i := 0; i < 6; i++ {
			seed := int64(trial*100 + i)
			m.Spawn(func(tc *Ctx) {
				rng := rand.New(rand.NewSource(seed))
				for k := 0; k < 15; k++ {
					if rng.Intn(4) == 0 {
						// Non-transactional access.
						a := mem.Addr(0x6000 + rng.Intn(32)*mem.BlockBytes)
						tc.Store(a, tc.Load(a)+1)
						continue
					}
					n := 1 + rng.Intn(12)
					tc.Atomic(func(tx *Tx) {
						for j := 0; j < n; j++ {
							a := mem.Addr(0x6000 + rng.Intn(32)*mem.BlockBytes)
							if rng.Intn(2) == 0 {
								tx.Store(a, tx.Load(a)+1)
							} else {
								tx.Load(a)
							}
						}
					})
				}
			})
		}
		m.Run()
		if tok, ok := m.HTM.(*core.TokenTM); ok {
			if err := tok.CheckBookkeeping(); err != nil {
				t.Fatalf("trial %d (%s): %v", trial, variant, err)
			}
		}
	}
}

func TestSpawnPinning(t *testing.T) {
	m := newMachine(t, 2, "TokenTM")
	done := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		m.Spawn(func(tc *Ctx) {
			done[i] = tc.Core()
			tc.Work(10)
		})
	}
	m.Run()
	want := []int{0, 1, 0, 1}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("thread %d on core %d, want %d", i, done[i], want[i])
		}
	}
}

func ExampleMachine() {
	m := New(Config{Cores: 2, RetryLimit: 8})
	m.SetHTM(core.New(m.Mem, m.Store))
	m.Spawn(func(tc *Ctx) {
		tc.Atomic(func(tx *Tx) {
			tx.Store(0x1000, 42)
		})
	})
	m.Run()
	fmt.Println(m.Store.Load(0x1000))
	// Output: 42
}
