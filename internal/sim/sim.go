// Package sim is the execution-driven CMP simulator: it runs Go closures as
// software threads on simulated cores, advancing a per-core cycle clock
// through the memory system and HTM models.
//
// Scheduling uses min-time ordering: the scheduler always resumes the core
// with the smallest local clock (ties broken by core id), which yields a
// deterministic, causally consistent interleaving. Threads execute one timed
// operation per turn via a channel handshake, so although each thread is a
// goroutine, exactly one runs at a time and no model state needs locking.
// The paper's error bars come from pseudo-randomly perturbed simulations;
// the Seed configuration reproduces that by jittering conflict backoffs.
package sim

import (
	"fmt"
	"math/bits"
	"math/rand"

	"tokentm/internal/randstream"

	"tokentm/internal/attr"
	"tokentm/internal/coherence"
	"tokentm/internal/htm"
	"tokentm/internal/mem"
	"tokentm/internal/tmlog"
)

// LogRegionBase is where per-thread transaction logs live in the simulated
// physical address space, far above workload heaps.
const LogRegionBase mem.Addr = 1 << 40

// LogRegionStride separates consecutive threads' logs.
const LogRegionStride mem.Addr = 1 << 24

// Config parameterizes a machine.
type Config struct {
	// Cores is the number of simulated cores (default 32, as in §6.1).
	Cores int
	// Seed drives backoff jitter; distinct seeds model the paper's
	// perturbed runs.
	Seed int64
	// Quantum, if nonzero, preempts a thread after it has run this many
	// cycles while other threads wait on its core (used by the
	// lock-based server workloads; TM workloads run one thread per core
	// and never switch, matching Table 5's note).
	Quantum mem.Cycle
	// RetryLimit is how many stalls a transaction tolerates against an
	// older enemy before self-aborting.
	RetryLimit int
}

// DefaultConfig is the paper's machine: 32 cores.
func DefaultConfig() Config {
	return Config{Cores: 32, RetryLimit: 64}
}

// ThreadFunc is the body of a simulated thread.
type ThreadFunc func(tc *Ctx)

// threadState is a thread's scheduler state.
type threadState int

const (
	tsRunnable threadState = iota
	tsRunning
	tsBlockedTime // sleeping until wakeAt (syscall)
	tsWaitingLock
	tsFinished
)

// String names the scheduler state (deadlock reports must be actionable).
func (s threadState) String() string {
	switch s {
	case tsRunnable:
		return "runnable"
	case tsRunning:
		return "running"
	case tsBlockedTime:
		return "blocked-time"
	case tsWaitingLock:
		return "waiting-lock"
	case tsFinished:
		return "finished"
	default:
		panic("sim: unknown thread state")
	}
}

// opResult is what a thread reports back to the scheduler each turn.
type opResult struct {
	lat      mem.Cycle
	sleep    mem.Cycle // additional blocked time after lat (syscall)
	lockWait int       // lock id to wait on (with wantLock=true)
	wantLock bool
	unlock   int
	doUnlock bool
	finished bool
	crash    any // non-nil: the thread body panicked with this value
}

// Thread is one simulated software thread.
type Thread struct {
	H    *htm.Thread
	m    *Machine
	core *coreState
	fn   ThreadFunc

	grant chan struct{}
	res   chan opResult

	state   threadState
	wakeAt  mem.Cycle
	readyAt mem.Cycle
	// deferred accumulates Ctx.Work cycles not yet applied to the core
	// clock (event engine only); flushed by flushWork before the thread's
	// next shared operation.
	deferred mem.Cycle
	// xactScratch is the thread's reusable top-level transaction record;
	// see Ctx.Atomic.
	xactScratch *htm.Xact

	// Commits collects this thread's committed transactions.
	Commits []htm.CommitRecord
	// AbortCount counts aborted attempts.
	AbortCount int
	// AbortRecs collects this thread's abort-lifecycle records, one per
	// aborted attempt (len(AbortRecs) == AbortCount).
	AbortRecs []htm.AbortRecord
}

type coreState struct {
	id          int
	time        mem.Cycle
	cur         *Thread
	lastRan     *Thread
	scheduledAt mem.Cycle
	runq        []*Thread
	blocked     []*Thread
}

type lockState struct {
	held    bool
	holder  *Thread
	waiters []*Thread
}

// Machine is the simulated CMP.
type Machine struct {
	cfg     Config
	Mem     *coherence.MemSys
	Store   *mem.Store
	HTM     htm.System
	threads []*Thread
	cores   []*coreState
	locks   map[int]*lockState
	rng     *rand.Rand
	live    int
	killed  bool
	// eventMode is true while runEvent owns the machine: yields are settled
	// inline on the yielding thread's goroutine and the baton passes thread
	// to thread (events.go) instead of through the grant/res handshake.
	eventMode bool
	// done carries the event engine's terminal signal back to Run: nil for
	// normal completion, or the panic value a thread goroutine died with.
	done chan any
	// readyKeys caches each core's next event time for the event engine's
	// picker, packed as time<<readyShift|id (notReady when the core has
	// nothing to run); maintained by refreshReady.
	readyKeys  []uint64
	readyShift uint
	// rngDraws counts backoff-jitter draws; part of the state fingerprint so
	// two schedules that consumed the rng differently never merge.
	rngDraws uint64
	// picker chooses which runnable core steps next (see picker.go); the
	// default min-time picker reproduces the historical schedule exactly.
	picker Picker
	// choiceScratch backs RunnableCores so the scheduler loop stays
	// allocation-free after the first iteration.
	choiceScratch []CoreChoice
	// Commits aggregates all threads' commit records in commit order.
	Commits []htm.CommitRecord
	// AbortRecs aggregates all threads' abort records in abort order.
	AbortRecs []htm.AbortRecord
	// breakdowns attributes every core-clock advance to an attr.Bucket,
	// indexed by core id. The conservation invariant — per-core bucket sums
	// equal the core clocks — is checked by CheckConservation.
	breakdowns []attr.Breakdown
}

// New builds a machine; attach an HTM system with SetHTM before spawning
// threads.
func New(cfg Config) *Machine {
	if cfg.Cores <= 0 {
		cfg.Cores = 32
	}
	if cfg.RetryLimit <= 0 {
		cfg.RetryLimit = 64
	}
	m := &Machine{
		cfg:    cfg,
		Mem:    coherence.NewMemSys(cfg.Cores),
		Store:  mem.NewStore(),
		locks:  make(map[int]*lockState),
		rng:    randstream.New(cfg.Seed),
		picker: MinTimePicker{},
	}
	m.choiceScratch = make([]CoreChoice, 0, cfg.Cores)
	m.readyShift = uint(bits.Len(uint(cfg.Cores - 1)))
	m.readyKeys = make([]uint64, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		m.cores = append(m.cores, &coreState{id: i})
		m.readyKeys[i] = notReady
	}
	m.breakdowns = make([]attr.Breakdown, cfg.Cores)
	return m
}

// charge attributes n cycles of core's clock advance to bucket k.
//
//tokentm:allocfree
func (m *Machine) charge(core int, k attr.Bucket, n mem.Cycle) {
	m.breakdowns[core].Charge(k, n)
}

// Breakdowns returns a copy of each core's cycle attribution, indexed by
// core id.
func (m *Machine) Breakdowns() []attr.Breakdown {
	out := make([]attr.Breakdown, len(m.breakdowns))
	copy(out, m.breakdowns)
	return out
}

// BreakdownTotal merges every core's attribution into one machine-wide
// breakdown (its Total equals the sum of CoreTimes when conservation holds).
func (m *Machine) BreakdownTotal() attr.Breakdown {
	var total attr.Breakdown
	for i := range m.breakdowns {
		total.Merge(&m.breakdowns[i])
	}
	return total
}

// CheckConservation verifies the cycle-attribution invariant: every core's
// bucket sum equals its clock, so no advance of simulated time escaped
// classification. Call it after Run.
func (m *Machine) CheckConservation() error {
	for i, c := range m.cores {
		if got := m.breakdowns[i].Total(); got != c.time {
			return fmt.Errorf("sim: core %d breakdown sums to %d cycles but clock is %d (%+d unattributed)",
				i, got, c.time, int64(c.time)-int64(got))
		}
	}
	return nil
}

// SetHTM attaches the HTM system (built over m.Mem and m.Store).
func (m *Machine) SetHTM(h htm.System) { m.HTM = h }

// Spawn creates a thread pinned to core threadID % Cores.
func (m *Machine) Spawn(fn ThreadFunc) *Thread {
	id := len(m.threads)
	c := m.cores[id%m.cfg.Cores]
	th := &Thread{
		H: &htm.Thread{
			ID:   id,
			TID:  mem.TID(id + 1),
			Core: c.id,
			Log:  newLog(id),
		},
		m:     m,
		core:  c,
		fn:    fn,
		grant: make(chan struct{}),
		res:   make(chan opResult),
		state: tsRunnable,
	}
	m.threads = append(m.threads, th)
	c.runq = append(c.runq, th)
	m.HTM.Register(th.H)
	m.live++
	go th.run()
	return th
}

// Threads returns the spawned threads.
func (m *Machine) Threads() []*Thread { return m.threads }

// CoreTimes returns each core's local clock, indexed by core id. After Run,
// these are the per-core completion times; identical runs must produce
// identical values (the determinism contract's finest-grained observable).
func (m *Machine) CoreTimes() []mem.Cycle {
	out := make([]mem.Cycle, len(m.cores))
	for i, c := range m.cores {
		out[i] = c.time
	}
	return out
}

// killSignal unwinds a thread goroutine that was woken only to die (Kill).
type killSignal struct{}

func (th *Thread) run() {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(killSignal); ok {
			return // Kill: exit without reporting a turn
		}
		// A panic escaped the thread body (protocol invariant failure,
		// user-code bug). Forward it to whoever called Run — via the
		// scheduler goroutine (legacy) or the done channel (event engine),
		// after the same bookkeeping the legacy settle would perform.
		if m := th.m; m.eventMode {
			if th.state != tsFinished {
				th.core.time += th.deferred
				th.deferred = 0
				th.state = tsFinished
				if th.core.cur == th {
					th.core.cur = nil
				}
				m.live--
			}
			m.done <- r
			return
		}
		th.res <- opResult{finished: true, crash: r}
	}()
	<-th.grant
	if th.m.killed {
		return
	}
	tc := &Ctx{th: th}
	th.fn(tc)
	if tc.xactDepth != 0 {
		panic(fmt.Sprintf("sim: thread %d finished inside a transaction", th.H.ID))
	}
	th.yield(opResult{finished: true})
}

// yield hands the turn back to the scheduler and waits for the next grant.
func (th *Thread) yield(r opResult) {
	if th.m.eventMode {
		th.m.yieldEvent(th, r)
		return
	}
	th.res <- r
	if !r.finished {
		<-th.grant
		if th.m.killed {
			panic(killSignal{})
		}
	}
}

// Run executes until every thread finishes, returning the makespan: the
// largest core clock (total parallel execution time). Machines on the default
// min-time schedule run on the event engine (events.go); preemptive machines
// (Quantum > 0) and custom pickers use the per-turn loop below, which the
// schedule explorer also drives directly through StepOn.
func (m *Machine) Run() mem.Cycle {
	if m.HTM == nil {
		panic("sim: SetHTM before Run")
	}
	_, defaultPicker := m.picker.(MinTimePicker)
	if m.cfg.Quantum == 0 && defaultPicker {
		return m.runEvent()
	}
	for m.live > 0 {
		choices := m.RunnableCores()
		if len(choices) == 0 {
			m.deadlock()
		}
		m.StepOn(m.picker.Pick(choices))
	}
	var makespan mem.Cycle
	for _, c := range m.cores {
		if c.time > makespan {
			makespan = c.time
		}
	}
	return makespan
}

// RunnableCores reports, in ascending core-id order, every core that can
// step (has a current, queued, or timed-blocked thread) and the cycle at
// which it could do so. The returned slice is scratch storage reused across
// calls — copy it before the next scheduler action if it must persist.
func (m *Machine) RunnableCores() []CoreChoice {
	m.choiceScratch = m.choiceScratch[:0]
	for _, c := range m.cores {
		t, ok := m.coreReadyTime(c)
		if !ok {
			continue
		}
		m.choiceScratch = append(m.choiceScratch, CoreChoice{Core: c.id, ReadyAt: t})
	}
	return m.choiceScratch
}

// StepOn advances the machine by one thread turn on the given core: the core
// fast-forwards to its ready time (charged as barrier/scheduler wait),
// dispatches a thread, and executes that thread's next timed operation. The
// core must be runnable (present in RunnableCores); stepping an idle core
// panics.
func (m *Machine) StepOn(core int) {
	c := m.cores[core]
	t, ok := m.coreReadyTime(c)
	if !ok {
		panic(fmt.Sprintf("sim: StepOn(%d): core has nothing to run", core))
	}
	// Idle cores fast-forward to their next event; the gap is scheduler
	// wait (no runnable thread), charged as barrier time.
	if c.time < t {
		m.charge(c.id, attr.Barrier, t-c.time)
		c.time = t
	}
	m.dispatch(c)
	th := c.cur
	th.state = tsRunning
	th.grant <- struct{}{}
	r := <-th.res
	c.time += r.lat
	m.settle(c, th, r)
}

// Live returns how many spawned threads have not yet finished.
func (m *Machine) Live() int { return m.live }

// CanPreempt reports whether Preempt(core) would change the schedule: the
// core is running a thread and another thread is queued to take its place.
func (m *Machine) CanPreempt(core int) bool {
	c := m.cores[core]
	return c.cur != nil && len(c.runq) > 0
}

// Preempt forces an involuntary context switch on core, exactly as a quantum
// expiry would: the current thread moves to the back of the run queue and the
// next StepOn on this core dispatches its successor (charging the HTM's
// context-switch work — for TokenTM, the flash-OR of the metastate bits).
// Returns false, changing nothing, when the core has no current thread or no
// waiting successor.
func (m *Machine) Preempt(core int) bool {
	if !m.CanPreempt(core) {
		return false
	}
	c := m.cores[core]
	out := c.cur
	out.state = tsRunnable
	out.readyAt = c.time
	c.runq = append(c.runq, out)
	c.cur = nil
	return true
}

// Kill terminates every unfinished thread goroutine so an abandoned machine
// leaks nothing. It must only be called while the machine is quiescent — no
// thread holds the turn, i.e. between StepOn calls or after Run panicked on
// the scheduler goroutine. The machine cannot step again afterwards.
func (m *Machine) Kill() {
	if m.killed {
		return
	}
	m.killed = true
	for _, th := range m.threads {
		if th.state == tsFinished {
			continue
		}
		th.state = tsFinished
		m.live--
		th.grant <- struct{}{}
	}
}

// coreReadyTime computes when core c can next run something.
func (m *Machine) coreReadyTime(c *coreState) (mem.Cycle, bool) {
	t := c.time
	if c.cur != nil {
		return t, true
	}
	best, ok := mem.Cycle(0), false
	for _, th := range c.runq {
		rt := t
		if th.readyAt > rt {
			rt = th.readyAt
		}
		if !ok || rt < best {
			best, ok = rt, true
		}
	}
	for _, th := range c.blocked {
		if th.state != tsBlockedTime {
			continue
		}
		rt := th.wakeAt
		if rt < t {
			rt = t
		}
		if !ok || rt < best {
			best, ok = rt, true
		}
	}
	return best, ok
}

// dispatch ensures core c has a current thread, performing a context switch
// if a different thread is scheduled in.
func (m *Machine) dispatch(c *coreState) {
	// Wake timed-blocked threads whose deadline passed.
	kept := c.blocked[:0]
	for _, th := range c.blocked {
		if th.state == tsBlockedTime && th.wakeAt <= c.time {
			th.state = tsRunnable
			th.readyAt = th.wakeAt
			c.runq = append(c.runq, th)
			continue
		}
		kept = append(kept, th)
	}
	c.blocked = kept

	if c.cur != nil {
		// Preempt if the quantum expired and others are waiting.
		if m.cfg.Quantum > 0 && len(c.runq) > 0 && c.time-c.scheduledAt >= m.cfg.Quantum {
			out := c.cur
			out.state = tsRunnable
			out.readyAt = c.time
			c.runq = append(c.runq, out)
			c.cur = nil
		} else {
			return
		}
	}
	if len(c.runq) == 0 {
		// Only timed-blocked threads: fast-forward to the earliest.
		var next *Thread
		for _, th := range c.blocked {
			if th.state == tsBlockedTime && (next == nil || th.wakeAt < next.wakeAt) {
				next = th
			}
		}
		if next == nil {
			m.deadlock()
		}
		if next.wakeAt > c.time {
			m.charge(c.id, attr.Barrier, next.wakeAt-c.time)
			c.time = next.wakeAt
		}
		m.dispatch(c)
		return
	}
	// FIFO among ready threads.
	var in *Thread
	idx := -1
	for i, th := range c.runq {
		if th.readyAt <= c.time && (idx < 0) {
			idx = i
			in = th
		}
	}
	if idx < 0 {
		// All have future readyAt; take the earliest.
		for i, th := range c.runq {
			if in == nil || th.readyAt < in.readyAt {
				in = th
				idx = i
			}
		}
		if in.readyAt > c.time {
			m.charge(c.id, attr.Barrier, in.readyAt-c.time)
			c.time = in.readyAt
		}
	}
	c.runq = append(c.runq[:idx], c.runq[idx+1:]...)
	c.cur = in
	c.scheduledAt = c.time
	if c.lastRan != in {
		if c.lastRan != nil {
			cs := m.HTM.ContextSwitch(c.id, c.lastRan.H, in.H)
			m.charge(c.id, attr.CtxSwitch, cs)
			c.time += cs
		} else {
			m.HTM.RunningOn(c.id, in.H)
		}
	} else {
		m.HTM.RunningOn(c.id, in.H)
	}
	c.lastRan = in
}

// settle applies a thread's op result to scheduler state.
func (m *Machine) settle(c *coreState, th *Thread, r opResult) {
	if r.crash != nil {
		// The thread body panicked; its goroutine has exited. Re-panic on
		// the scheduler goroutine after bookkeeping, so callers of Run can
		// recover and the machine can still be Kill()ed cleanly.
		th.state = tsFinished
		c.cur = nil
		m.live--
		panic(r.crash)
	}
	if r.finished {
		th.state = tsFinished
		c.cur = nil
		m.live--
		return
	}
	if r.doUnlock {
		m.doUnlock(c, th, r.unlock)
	}
	switch {
	case r.wantLock:
		l := m.lock(r.lockWait)
		if !l.held {
			l.held = true
			l.holder = th
			return // keeps running
		}
		l.waiters = append(l.waiters, th)
		th.state = tsWaitingLock
		c.blocked = append(c.blocked, th)
		c.cur = nil
	case r.sleep > 0:
		th.state = tsBlockedTime
		th.wakeAt = c.time + r.sleep
		c.blocked = append(c.blocked, th)
		c.cur = nil
	}
}

func (m *Machine) lock(id int) *lockState {
	l, ok := m.locks[id]
	if !ok {
		l = &lockState{}
		m.locks[id] = l
	}
	return l
}

// doUnlock releases a lock, handing it directly to the first waiter.
func (m *Machine) doUnlock(c *coreState, th *Thread, id int) {
	l := m.lock(id)
	if !l.held || l.holder != th {
		panic(&UnlockError{Thread: th.H.ID, Lock: id})
	}
	if len(l.waiters) == 0 {
		l.held = false
		l.holder = nil
		return
	}
	next := l.waiters[0]
	l.waiters = l.waiters[1:]
	l.holder = next
	next.state = tsRunnable
	next.readyAt = c.time
	// Move from its core's blocked list to the run queue.
	nc := next.core
	for i, b := range nc.blocked {
		if b == next {
			nc.blocked = append(nc.blocked[:i], nc.blocked[i+1:]...)
			break
		}
	}
	nc.runq = append(nc.runq, next)
	if m.eventMode {
		// The handoff made next's core schedulable (or sooner); the event
		// engine's cached ready time must see it.
		m.refreshReady(nc)
	}
}

// ThreadReport is one live thread's symbolic scheduler state at deadlock.
type ThreadReport struct {
	Thread int       // global thread id
	Core   int       // core the thread is pinned to
	State  string    // symbolic scheduler state (threadState.String)
	Timed  bool      // true when the thread is time-blocked (WakeAt valid)
	WakeAt mem.Cycle // wake deadline, when Timed
}

// DeadlockError reports that no core can make progress. It carries the
// symbolic per-thread state so tools (the schedule explorer, test failures)
// can record it as a structured counterexample; the scheduler still panics
// with it, so existing callers keep failing loudly.
type DeadlockError struct {
	Threads []ThreadReport
}

// Error renders the historical report format: one parenthesized entry per
// live thread with its core, state name and (for timed blocks) wake cycle.
func (e *DeadlockError) Error() string {
	detail := ""
	for _, r := range e.Threads {
		detail += fmt.Sprintf(" thread%d(core=%d state=%s", r.Thread, r.Core, r.State)
		if r.Timed {
			detail += fmt.Sprintf(" wakeAt=%d", r.WakeAt)
		}
		detail += ")"
	}
	return "sim: deadlock —" + detail
}

// UnlockError reports a thread releasing a lock it does not hold.
type UnlockError struct {
	Thread int
	Lock   int
}

func (e *UnlockError) Error() string {
	return fmt.Sprintf("sim: thread %d unlocks lock %d it does not hold", e.Thread, e.Lock)
}

// DeadlockReport builds the typed per-thread report for the machine's
// current unfinished threads. The scheduler panics with it when no core can
// make progress; the schedule explorer calls it directly to record a
// deadlock as a structured counterexample without unwinding.
func (m *Machine) DeadlockReport() *DeadlockError {
	err := &DeadlockError{}
	for _, th := range m.threads {
		if th.state == tsFinished {
			continue
		}
		r := ThreadReport{Thread: th.H.ID, Core: th.core.id, State: th.state.String()}
		if th.state == tsBlockedTime {
			r.Timed = true
			r.WakeAt = th.wakeAt
		}
		err.Threads = append(err.Threads, r)
	}
	return err
}

func (m *Machine) deadlock() {
	panic(m.DeadlockReport())
}

// backoff computes conflict-stall backoff with bounded exponential growth
// and seed-driven jitter (the paper's pseudo-random perturbation).
func (m *Machine) backoff(retries int) mem.Cycle {
	if retries > 6 {
		retries = 6
	}
	base := mem.Cycle(32) << uint(retries)
	m.rngDraws++
	return base + mem.Cycle(m.rng.Intn(int(base)))
}

// abortBackoff is the randomized exponential backoff after an abort. It
// grows much larger than the stall backoff so that a conflict loser stays
// out of the winner's way long enough for it to commit (avoiding the
// dueling-upgrade livelock where the victim immediately re-acquires the
// read token the winner is trying to upgrade).
func (m *Machine) abortBackoff(attempt int) mem.Cycle {
	if attempt > 8 {
		attempt = 8
	}
	base := mem.Cycle(128) << uint(attempt)
	m.rngDraws++
	return base + mem.Cycle(m.rng.Intn(int(base)))
}

func newLog(threadID int) *tmlog.Log {
	return tmlog.New(LogRegionBase + LogRegionStride*mem.Addr(threadID))
}
