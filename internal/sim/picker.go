package sim

import "tokentm/internal/mem"

// CoreChoice is one schedulable core: the core id and the cycle at which it
// could next run a thread (its clock, or the earliest ready/wake time of a
// queued thread if the core is currently idle).
type CoreChoice struct {
	Core    int
	ReadyAt mem.Cycle
}

// Picker chooses which runnable core the scheduler steps next. Run calls
// Pick once per thread turn with the non-empty RunnableCores slice (ascending
// core id) and steps the returned core, which must be one of the choices.
//
// The default MinTimePicker reproduces the simulator's historical min-time
// schedule; the schedule explorer (internal/explore) substitutes pickers that
// enumerate or randomize the choice to search the interleaving space.
type Picker interface {
	Pick(choices []CoreChoice) int
}

// MinTimePicker is the default policy: the core with the smallest ready time,
// ties broken by the lower core id. This yields the deterministic, causally
// consistent interleaving documented in the package comment.
type MinTimePicker struct{}

// Pick returns the earliest-ready core. Choices arrive in ascending core-id
// order, so strict less-than comparison implements the lower-id tie-break.
//
//tokentm:allocfree
func (MinTimePicker) Pick(choices []CoreChoice) int {
	best := choices[0]
	for _, c := range choices[1:] {
		if c.ReadyAt < best.ReadyAt {
			best = c
		}
	}
	return best.Core
}

// SetPicker replaces the scheduling policy. Call before Run; passing nil
// restores the default min-time policy.
func (m *Machine) SetPicker(p Picker) {
	if p == nil {
		p = MinTimePicker{}
	}
	m.picker = p
}
