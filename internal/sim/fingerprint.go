package sim

import (
	"sort"

	"tokentm/internal/htm"
	"tokentm/internal/statehash"
)

// Fingerprint summarizes the machine's logical state for the schedule
// explorer's state-equality pruning: two machines with equal fingerprints
// behave identically under identical future decisions (modulo hash
// collisions, which only cost soundness of *pruning*, never of a reported
// counterexample — counterexamples are replayed, not trusted from the hash).
//
// Included: scheduler state (thread states, queues, clocks), lock table,
// backoff-rng draw count, memory content, coherence/cache state, transaction
// logs, active transactions, and the HTM system's protocol state when it
// implements htm.Fingerprinter (TokenTM's home metastate and overflow
// table; LogTM-SE's signatures are derived from the hashed read/write sets
// and need no separate hashing).
//
// Excluded: metrics, the interleaved order of the global commit/abort record
// streams (per-thread counts are hashed), and cache LRU ordering — see
// cache.Cache.FingerprintTo for the eviction-free soundness argument. These
// exclusions are what let schedules that merely *accounted* differently, or
// interleaved independent operations differently, converge to one state.
func (m *Machine) Fingerprint() uint64 {
	h := statehash.New()
	h.Int(len(m.threads))
	for _, th := range m.threads {
		h.Mark('T')
		h.Int(int(th.state))
		h.U64(uint64(th.wakeAt))
		h.U64(uint64(th.readyAt))
		h.Int(len(th.Commits))
		h.Int(th.AbortCount)
		if x := th.H.Xact; x != nil {
			x.FingerprintTo(h)
		} else {
			h.Mark(0)
		}
		th.H.Log.FingerprintTo(h)
	}
	for _, c := range m.cores {
		h.Mark('C')
		h.U64(uint64(c.time))
		h.Int(threadID(c.cur))
		h.Int(threadID(c.lastRan))
		h.U64(uint64(c.scheduledAt))
		h.Int(len(c.runq))
		for _, th := range c.runq {
			h.Int(th.H.ID)
		}
		h.Int(len(c.blocked))
		for _, th := range c.blocked {
			h.Int(th.H.ID)
		}
	}
	ids := make([]int, 0, len(m.locks))
	for id := range m.locks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	h.Mark('L')
	for _, id := range ids {
		l := m.locks[id]
		if !l.held && len(l.waiters) == 0 {
			continue // released locks must not distinguish states
		}
		h.Int(id)
		h.Int(threadID(l.holder))
		h.Int(len(l.waiters))
		for _, w := range l.waiters {
			h.Int(w.H.ID)
		}
	}
	h.Mark('l')
	h.U64(m.rngDraws)
	m.Store.FingerprintTo(h)
	m.Mem.FingerprintTo(h)
	if f, ok := m.HTM.(htm.Fingerprinter); ok {
		f.FingerprintTo(h)
	}
	return h.Sum()
}

// threadID is the fingerprint encoding for an optional thread: its global id
// or -1.
func threadID(th *Thread) int {
	if th == nil {
		return -1
	}
	return th.H.ID
}
