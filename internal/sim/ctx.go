package sim

import (
	"tokentm/internal/attr"
	"tokentm/internal/htm"
	"tokentm/internal/mem"
)

// Operation costs for OS-level primitives.
const (
	// LockCycles is the cost of an uncontended lock or unlock operation.
	LockCycles mem.Cycle = 50
	// SyscallEntryCycles is the trap overhead of a blocking system call,
	// charged before the thread blocks.
	SyscallEntryCycles mem.Cycle = 300
)

// Ctx is a thread's interface to the simulated machine. All methods must be
// called from the thread's own closure.
type Ctx struct {
	th        *Thread
	xactDepth int

	// Cycle attribution (attr): pend, when non-nil, is the breakdown frame
	// of the in-flight transaction attempt. In-attempt buckets
	// (begin/useful/memory stall) accumulate there and are merged into the
	// core's breakdown on commit — or reclassified as attr.Wasted on abort.
	// atomPend backs top-level Atomic attempts, openPend open-nested ones;
	// both are storage reused across attempts, so charging allocates
	// nothing.
	pend     *attr.Breakdown
	atomPend attr.Breakdown
	openPend attr.Breakdown

	// Open-nesting state (see opennest.go).
	inOpen        bool
	aux           *htm.Thread
	parentXact    *htm.Xact
	compensations []func(*Tx)
}

// abortSignal unwinds a transaction body back to Atomic on abort.
type abortSignal struct{}

// Now returns the thread's core-local clock, including local work the event
// engine has deferred but not yet applied (so time never appears to run
// backwards across a Work call).
func (tc *Ctx) Now() mem.Cycle { return tc.th.core.time + tc.th.deferred }

// ThreadID returns the thread's global id.
func (tc *Ctx) ThreadID() int { return tc.th.H.ID }

// Core returns the core the thread runs on.
func (tc *Ctx) Core() int { return tc.th.core.id }

// charge attributes n cycles the thread is about to yield: in-attempt
// buckets go to the pending attempt frame (when one is active), everything
// else straight to the core's breakdown. Every yield must charge exactly its
// latency — the conservation invariant audits this.
//
//tokentm:allocfree
func (tc *Ctx) charge(k attr.Bucket, n mem.Cycle) {
	if tc.pend != nil && k.InAttempt() {
		tc.pend.Charge(k, n)
		return
	}
	tc.th.m.charge(tc.th.core.id, k, n)
}

// beginAttempt activates frame as the pending attempt breakdown.
func (tc *Ctx) beginAttempt(frame *attr.Breakdown) {
	frame.Reset()
	tc.pend = frame
}

// commitAttempt merges the pending frame into the core's breakdown (the
// attempt's work stands) and deactivates it.
func (tc *Ctx) commitAttempt(prev *attr.Breakdown) {
	tc.th.m.breakdowns[tc.th.core.id].Merge(tc.pend)
	tc.pend = prev
}

// abortAttempt reclassifies the pending frame's cycles as wasted work and
// deactivates it, returning the wasted total.
func (tc *Ctx) abortAttempt(prev *attr.Breakdown) mem.Cycle {
	wasted := tc.pend.Total()
	tc.th.m.charge(tc.th.core.id, attr.Wasted, wasted)
	tc.pend = prev
	return wasted
}

// workFlushThreshold bounds how much local work the event engine defers
// before forcing a scheduling point. Deferral is invisible to thread bodies
// that communicate only through simulated memory, but a body spinning on
// plain Go state written by another simulated thread (the txlib tests do
// this while waiting for a setup thread) needs Work to eventually yield the
// machine, as it always did under the legacy engine. The threshold is far
// above any Work run the workloads perform between shared operations, so
// the forced flush never fires on the benchmark grid.
const workFlushThreshold mem.Cycle = 1 << 16

// Work advances the thread's clock by n cycles of local computation. Under
// the event engine the clock advance is deferred to the next shared operation
// (it cannot affect any other thread until then), saving a scheduling turn;
// the legacy engine yields immediately.
func (tc *Ctx) Work(n mem.Cycle) {
	if n == 0 {
		return
	}
	tc.charge(attr.Useful, n)
	if tc.th.m.eventMode {
		tc.th.deferred += n
		if tc.th.deferred >= workFlushThreshold {
			tc.th.flushWork()
		}
		return
	}
	tc.th.yield(opResult{lat: n})
}

// Load reads the word at addr. Outside a transaction this is a
// strongly-atomic non-transactional access; inside Atomic it joins the
// transaction's read set.
func (tc *Ctx) Load(addr mem.Addr) uint64 {
	th := tc.th
	th.flushWork()
	for retries := 0; ; retries++ {
		v, acc := th.m.HTM.Load(th.H, addr, retries)
		switch acc.Outcome {
		case htm.OK:
			tc.setStalling(false)
			tc.charge(attr.ReadStall, acc.Latency)
			th.yield(opResult{lat: acc.Latency})
			return v
		case htm.Stall:
			if tc.selfDeadlock(acc.Enemies) {
				panic(errOpenSelfConflict)
			}
			tc.setStalling(true)
			tc.stall(acc.Latency, th.m.backoff(retries))
		case htm.AbortSelf:
			tc.setStalling(false)
			tc.charge(attr.ConflictStall, acc.Latency)
			th.yield(opResult{lat: acc.Latency})
			panic(abortSignal{})
		}
	}
}

// stall charges and yields one conflict stall-retry: the contention-manager
// trap plus the randomized backoff before the retry. Both buckets survive an
// eventual abort — the paper stacks conflict time separately from wasted
// work.
func (tc *Ctx) stall(trap, backoff mem.Cycle) {
	tc.charge(attr.ConflictStall, trap)
	tc.charge(attr.StallBackoff, backoff)
	if x := tc.th.H.Xact; x != nil {
		x.StallCycles += trap
		x.BackoffCycles += backoff
	}
	tc.th.yield(opResult{lat: trap + backoff})
}

// setStalling maintains the deadlock-detection flag the timestamp policy
// consults (LogTM's "waiting and wanted" rule).
func (tc *Ctx) setStalling(v bool) {
	if x := tc.th.H.Xact; x != nil {
		x.Stalling = v
	}
}

// Store writes the word at addr (see Load for transactional semantics).
func (tc *Ctx) Store(addr mem.Addr, val uint64) {
	th := tc.th
	th.flushWork()
	for retries := 0; ; retries++ {
		acc := th.m.HTM.Store(th.H, addr, val, retries)
		switch acc.Outcome {
		case htm.OK:
			tc.setStalling(false)
			tc.charge(attr.WriteStall, acc.Latency)
			th.yield(opResult{lat: acc.Latency})
			return
		case htm.Stall:
			if tc.selfDeadlock(acc.Enemies) {
				panic(errOpenSelfConflict)
			}
			tc.setStalling(true)
			tc.stall(acc.Latency, th.m.backoff(retries))
		case htm.AbortSelf:
			tc.setStalling(false)
			tc.charge(attr.ConflictStall, acc.Latency)
			th.yield(opResult{lat: acc.Latency})
			panic(abortSignal{})
		}
	}
}

// Tx is the transactional view handed to an Atomic body.
type Tx struct{ tc *Ctx }

// Load reads addr within the transaction.
func (tx *Tx) Load(addr mem.Addr) uint64 { return tx.tc.Load(addr) }

// Store writes addr within the transaction.
func (tx *Tx) Store(addr mem.Addr, val uint64) { tx.tc.Store(addr, val) }

// Work models computation inside the transaction.
func (tx *Tx) Work(n mem.Cycle) { tx.tc.Work(n) }

// Now returns the core-local clock.
func (tx *Tx) Now() mem.Cycle { return tx.tc.Now() }

// Atomic runs fn as a transaction, retrying on abort with randomized
// exponential backoff. Nested calls flatten into the outer transaction
// (closed nesting by subsumption; the paper leaves open nesting to future
// work).
func (tc *Ctx) Atomic(fn func(*Tx)) {
	if tc.xactDepth > 0 {
		tc.xactDepth++
		defer func() { tc.xactDepth-- }()
		fn(&Tx{tc: tc})
		return
	}
	th := tc.th
	th.flushWork()
	// Reuse one Xact (and, via Reset, its token index and read/write-set
	// storage) per thread across transactions: records copy scalars out
	// before Atomic returns, so nothing references it afterwards.
	x := th.xactScratch
	if x == nil {
		x = new(htm.Xact)
		th.xactScratch = x
	}
	x.TID = th.H.TID
	x.Core = th.core.id
	x.Timestamp = tc.Now()
	x.StallCycles = 0
	x.BackoffCycles = 0
	x.WastedCycles = 0
	for attempt := 1; ; attempt++ {
		x.Reset()
		x.Attempts = attempt
		x.Core = th.core.id
		x.BeginTime = tc.Now()
		th.H.Xact = x
		prev := tc.pend
		tc.beginAttempt(&tc.atomPend)
		beginLat := th.m.HTM.Begin(th.H, tc.Now())
		tc.charge(attr.Begin, beginLat)
		th.yield(opResult{lat: beginLat})

		committed := tc.runBody(fn)
		// The body may end with deferred local work; flush it before the
		// commit/abort HTM call so shared state advances in schedule order.
		th.flushWork()
		if committed && !x.AbortRequested {
			lat, fast := th.m.HTM.Commit(th.H)
			// Record before yielding the turn: commit mutations have
			// just been applied, so m.Commits is in true serialization
			// (commit) order across threads.
			rec := htm.CommitRecord{
				Thread:        th.H.ID,
				ReadBlocks:    len(x.ReadSet),
				WriteBlocks:   len(x.WriteSet),
				Duration:      tc.Now() + lat - x.BeginTime,
				Fast:          fast,
				LogStall:      x.LogStall,
				Attempts:      x.Attempts,
				StallCycles:   x.StallCycles,
				BackoffCycles: x.BackoffCycles,
				WastedCycles:  x.WastedCycles,
			}
			if !fast {
				rec.ReleaseCycles = lat
			}
			th.Commits = append(th.Commits, rec)
			th.m.Commits = append(th.m.Commits, rec)
			th.m.HTM.Stats().RecordCommit(rec)
			th.H.Xact = nil
			tc.compensations = nil // open-nested commits stand
			tc.commitAttempt(prev)
			tc.charge(attr.Commit, lat)
			th.yield(opResult{lat: lat})
			return
		}

		// Abort: unroll, back off, retry with the original timestamp.
		lat := th.m.HTM.Abort(th.H)
		th.AbortCount++
		wasted := tc.abortAttempt(prev)
		x.WastedCycles += wasted
		tc.recordAbort(x, attempt, wasted, lat)
		th.H.Xact = nil
		bo := th.m.abortBackoff(attempt)
		tc.charge(attr.LogUnroll, lat)
		tc.charge(attr.AbortBackoff, bo)
		th.yield(opResult{lat: lat + bo})
		// Undo committed open-nested children (each compensation is its
		// own top-level transaction), then retry.
		tc.runCompensations()
	}
}

// recordAbort appends the abort-lifecycle record for one aborted attempt of
// x, consuming the attribution the contention manager left on it (empty for
// user-initiated retries).
func (tc *Ctx) recordAbort(x *htm.Xact, attempt int, wasted, unroll mem.Cycle) {
	th := tc.th
	rec := htm.AbortRecord{
		Thread:  th.H.ID,
		TID:     x.TID,
		Attempt: attempt,
		Enemy:   x.AbortedBy,
		Block:   x.AbortBlock,
		Kind:    x.AbortKind,
		Wasted:  wasted,
		Unroll:  unroll,
	}
	th.AbortRecs = append(th.AbortRecs, rec)
	th.m.AbortRecs = append(th.m.AbortRecs, rec)
}

// runBody executes the transaction body, converting an abort unwind into a
// false return.
func (tc *Ctx) runBody(fn func(*Tx)) (committed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); !ok {
				panic(r)
			}
			committed = false
		}
	}()
	tc.xactDepth = 1
	defer func() { tc.xactDepth = 0 }()
	fn(&Tx{tc: tc})
	return true
}

// Lock acquires a simulated OS mutex, blocking (and freeing the core for
// another thread) if it is held.
func (tc *Ctx) Lock(id int) {
	tc.charge(attr.Barrier, LockCycles)
	tc.th.yield(opResult{lat: LockCycles, wantLock: true, lockWait: id})
}

// Unlock releases a mutex held by this thread, waking the first waiter.
func (tc *Ctx) Unlock(id int) {
	tc.charge(attr.Barrier, LockCycles)
	tc.th.yield(opResult{lat: LockCycles, doUnlock: true, unlock: id})
}

// Syscall models a blocking system call of the given duration: the thread
// traps, blocks, and its core may context-switch to another thread.
func (tc *Ctx) Syscall(duration mem.Cycle) {
	tc.charge(attr.Barrier, SyscallEntryCycles)
	tc.th.yield(opResult{lat: SyscallEntryCycles, sleep: duration})
}

// Yield voluntarily ends the thread's time slice.
func (tc *Ctx) Yield() {
	tc.charge(attr.Barrier, 1)
	tc.th.yield(opResult{lat: 1, sleep: 1})
}
