package sim

import (
	"tokentm/internal/attr"
	"tokentm/internal/mem"
)

// The event-driven scheduler: the default engine behind Machine.Run.
//
// The legacy engine (StepOn) advances the machine one thread turn at a time
// from a central scheduler goroutine: every turn pays a full channel round
// trip (scheduler -> thread -> scheduler) plus an O(cores) rescan of every
// core's ready time. The event engine keeps the exact same schedule — the
// min-(ready time, core id) order the package comment documents — but turns
// the scheduler inside out:
//
//   - Each core caches its next event time (coreState.ready, maintained
//     incrementally at the few points it can change) instead of being
//     rescanned from its queues every turn.
//   - The scheduler runs *on the yielding thread's goroutine*: after a thread
//     finishes a timed operation it settles its own result, picks the next
//     core, fast-forwards/dispatches it, and hands the "baton" directly to
//     that thread's goroutine — one channel handoff per cross-core turn
//     instead of two, and zero handoffs when the next turn is its own.
//   - Purely local computation (Ctx.Work) is deferred: it charges its attr
//     bucket immediately but advances the core clock lazily at the next
//     shared operation (Thread.flushWork), eliminating the scheduling turn
//     the legacy engine spends on every Work call. This cannot reorder any
//     shared-state access: Work touches no shared state, and the following
//     operation still waits until its (now later) ready time is the global
//     minimum, which is exactly where the legacy schedule would have run it.
//
// Equivalence with the legacy engine is enforced by TestSchedulerEquivalence
// (every variant x every workload x multiple seeds => deep-equal metrics,
// commit/abort journals, attribution breakdowns and core clocks) and by the
// harness byte-identity gates. Machines that need preemptive time slicing
// (Quantum > 0) or a non-default Picker fall back to the legacy engine;
// the schedule explorer keeps driving StepOn directly.

// flushWork advances the core clock over work deferred by Ctx.Work and lets
// every earlier-scheduled core run before the caller's next shared operation.
// It must be called before any operation that touches shared machine state
// (HTM calls, lock transitions, rng draws); the attr charge for the deferred
// cycles was already made at the Work call.
func (th *Thread) flushWork() {
	if th.deferred == 0 {
		return
	}
	m := th.m
	c := th.core
	c.time += th.deferred
	th.deferred = 0
	m.refreshReady(c)
	m.advanceEvent(th, false)
}

// yieldEvent is the event-engine counterpart of the legacy grant/res
// handshake: settle the thread's own result, then advance the machine.
func (m *Machine) yieldEvent(th *Thread, r opResult) {
	th.flushWork()
	c := th.core
	c.time += r.lat
	m.settle(c, th, r)
	m.refreshReady(c)
	m.advanceEvent(th, r.finished)
}

// advanceEvent picks the next core in min-(ready, id) order, dispatches it,
// and passes the baton. When the next turn belongs to the calling thread it
// simply returns — the caller keeps running with no goroutine switch. When
// the caller has finished, the baton is passed and the caller's goroutine
// unwinds without parking.
func (m *Machine) advanceEvent(prev *Thread, finished bool) {
	if m.live == 0 {
		m.done <- nil
		return
	}
	c := m.pickReadyCore()
	if c == nil {
		m.deadlock()
	}
	m.enterCore(c)
	next := c.cur
	next.state = tsRunning
	if next == prev {
		return
	}
	next.grant <- struct{}{}
	if finished {
		return
	}
	<-prev.grant
	if m.killed {
		panic(killSignal{})
	}
}

// enterCore fast-forwards an idle core to its ready time (charged as
// barrier/scheduler wait, exactly as the legacy StepOn does) and dispatches
// a thread onto it.
func (m *Machine) enterCore(c *coreState) {
	t, ok := m.coreReadyTime(c)
	if !ok {
		panic("sim: advance: picked core has nothing to run")
	}
	if c.time < t {
		m.charge(c.id, attr.Barrier, t-c.time)
		c.time = t
	}
	m.dispatch(c)
}

// notReady is the cached key of a core with nothing to run: it compares
// greater than every real key.
const notReady = ^uint64(0)

// refreshReady recomputes core c's cached next-event time. It must be called
// whenever c's schedulability changes: after a turn settles on c, and when a
// lock handoff moves a thread onto c's run queue. The time is cached packed
// as ready<<readyShift | id so the picker's min-scan walks one flat uint64
// slice and the (ready, id) tie-break is a single integer compare.
//
//tokentm:allocfree
func (m *Machine) refreshReady(c *coreState) {
	if t, ok := m.coreReadyTime(c); ok {
		m.readyKeys[c.id] = uint64(t)<<m.readyShift | uint64(c.id)
	} else {
		m.readyKeys[c.id] = notReady
	}
}

// pickReadyCore returns the core with the smallest cached ready time, ties
// broken by the lower core id (the packed keys order exactly as the legacy
// MinTimePicker's (ready, id) scan), or nil when no core can run.
//
//tokentm:allocfree
func (m *Machine) pickReadyCore() *coreState {
	best := notReady
	for _, k := range m.readyKeys {
		if k < best {
			best = k
		}
	}
	if best == notReady {
		return nil
	}
	return m.cores[best&(1<<m.readyShift-1)]
}

// runEvent executes the machine to completion on the event engine.
func (m *Machine) runEvent() mem.Cycle {
	m.eventMode = true
	defer func() { m.eventMode = false }()
	if m.live > 0 {
		m.done = make(chan any, 1)
		for _, c := range m.cores {
			m.refreshReady(c)
		}
		c := m.pickReadyCore()
		if c == nil {
			m.deadlock()
		}
		m.enterCore(c)
		th := c.cur
		th.state = tsRunning
		th.grant <- struct{}{}
		if v := <-m.done; v != nil {
			// A thread goroutine panicked (protocol invariant, user bug,
			// deadlock mid-run): re-panic on the Run caller's goroutine,
			// exactly as the legacy scheduler loop would.
			panic(v)
		}
	}
	var makespan mem.Cycle
	for _, c := range m.cores {
		if c.time > makespan {
			makespan = c.time
		}
	}
	return makespan
}
