package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"tokentm/internal/core"
	"tokentm/internal/mem"
)

// TestSerializability is a randomized black-box check of transactional
// semantics: threads run randomly generated read-modify-write transactions
// over a small block set while every committed transaction journals what it
// observed and wrote. Afterwards the journal is replayed sequentially in
// commit order against a reference memory; any divergence means the HTM
// produced a non-serializable execution.
func TestSerializability(t *testing.T) {
	for _, variant := range allVariants {
		variant := variant
		t.Run(variant, func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				checkSerializable(t, variant, int64(trial*17+1))
			}
		})
	}
}

// journalEntry records one committed transaction's reads and writes in
// commit order. seq is assigned inside the transaction's commit turn, so
// journal order equals commit order.
type journalEntry struct {
	thread int
	reads  map[mem.Addr]uint64
	writes map[mem.Addr]uint64
}

func checkSerializable(t *testing.T, variant string, seed int64) {
	t.Helper()
	const (
		threads = 6
		xacts   = 25
		nblocks = 24
		maxOps  = 8
	)
	m := New(Config{Cores: 3, Seed: seed})
	m.SetHTM(buildHTM(m, variant))

	addr := func(i int) mem.Addr { return mem.Addr(0x40000 + i*mem.BlockBytes) }
	perThread := make([][]journalEntry, threads)

	for th := 0; th < threads; th++ {
		th := th
		rng := rand.New(rand.NewSource(seed*1000 + int64(th)))
		m.Spawn(func(tc *Ctx) {
			for k := 0; k < xacts; k++ {
				nops := 1 + rng.Intn(maxOps)
				// Pre-draw the plan so retries replay identically.
				type op struct {
					a     mem.Addr
					write bool
					delta uint64
				}
				plan := make([]op, nops)
				for i := range plan {
					plan[i] = op{
						a:     addr(rng.Intn(nblocks)),
						write: rng.Intn(2) == 0,
						delta: uint64(1 + rng.Intn(9)),
					}
				}
				var entry journalEntry
				tc.Atomic(func(tx *Tx) {
					entry = journalEntry{
						thread: th,
						reads:  make(map[mem.Addr]uint64),
						writes: make(map[mem.Addr]uint64),
					}
					for _, o := range plan {
						v := tx.Load(o.a)
						if _, seen := entry.writes[o.a]; !seen {
							if _, seenR := entry.reads[o.a]; !seenR {
								entry.reads[o.a] = v
							}
						}
						if o.write {
							nv := v + o.delta
							tx.Store(o.a, nv)
							entry.writes[o.a] = nv
						}
					}
				})
				perThread[th] = append(perThread[th], entry)
			}
		})
	}
	m.Run()

	// m.Commits is in true commit order (records are appended during the
	// committing thread's scheduler turn); merge the per-thread journals
	// along it.
	next := make([]int, threads)
	var journal []journalEntry
	for _, rec := range m.Commits {
		th := rec.Thread
		journal = append(journal, perThread[th][next[th]])
		next[th]++
	}

	// Replay sequentially: every committed transaction must have read
	// exactly the values the previous commits (in order) produced.
	ref := make(map[mem.Addr]uint64)
	for i, e := range journal {
		for a, v := range e.reads {
			if ref[a] != v {
				t.Fatalf("%s seed=%d: commit %d (thread %d) read %v=%d, serial replay has %d",
					variant, seed, i, e.thread, a, v, ref[a])
			}
		}
		for a, v := range e.writes {
			ref[a] = v
		}
	}
	// Final memory must match the serial replay.
	for i := 0; i < nblocks; i++ {
		a := addr(i)
		if got := m.Store.Load(a); got != ref[a] {
			t.Fatalf("%s seed=%d: final memory %v=%d, serial replay has %d", variant, seed, a, got, ref[a])
		}
	}
	if tok, ok := m.HTM.(*core.TokenTM); ok {
		if err := tok.CheckBookkeeping(); err != nil {
			t.Fatalf("%s seed=%d: %v", variant, seed, err)
		}
	}
}

// TestStrongAtomicityMixed checks the guarantee strong atomicity actually
// provides (§5.1): non-transactional accesses participate in conflict
// detection, so a non-transactional read can never observe a transaction's
// uncommitted intermediate state. Writers flip a block to an odd sentinel
// mid-transaction and restore evenness before committing; readers must only
// ever see even values.
func TestStrongAtomicityMixed(t *testing.T) {
	for _, variant := range allVariants {
		t.Run(variant, func(t *testing.T) {
			m := New(Config{Cores: 4, Seed: 9})
			m.SetHTM(buildHTM(m, variant))
			const a mem.Addr = 0x5000
			torn := 0
			for i := 0; i < 2; i++ {
				m.Spawn(func(tc *Ctx) { // transactional writers
					for k := 0; k < 30; k++ {
						tc.Atomic(func(tx *Tx) {
							v := tx.Load(a)
							tx.Store(a, v+1) // odd: uncommitted state
							tx.Work(150)
							tx.Store(a, v+2) // even again before commit
						})
						tc.Work(40)
					}
				})
			}
			for i := 0; i < 2; i++ {
				m.Spawn(func(tc *Ctx) { // non-transactional readers
					for k := 0; k < 60; k++ {
						if tc.Load(a)%2 == 1 {
							torn++
						}
						tc.Work(90)
					}
				})
			}
			m.Run()
			if torn != 0 {
				t.Fatalf("%s: %d non-transactional reads observed uncommitted state", variant, torn)
			}
			if got := m.Store.Load(a); got != 2*30*2 {
				t.Fatalf("%s: final counter %d", variant, got)
			}
		})
	}
}

func ExampleCtx_Atomic() {
	m := New(Config{Cores: 1})
	m.SetHTM(core.New(m.Mem, m.Store))
	m.Spawn(func(tc *Ctx) {
		tc.Atomic(func(tx *Tx) {
			tx.Store(0x40, 1)
			// Nested Atomic flattens into the outer transaction.
			tc.Atomic(func(inner *Tx) {
				inner.Store(0x80, 2)
			})
		})
	})
	m.Run()
	fmt.Println(m.Store.Load(0x40), m.Store.Load(0x80))
	// Output: 1 2
}
