package sim

import (
	"fmt"

	"tokentm/internal/attr"
	"tokentm/internal/htm"
	"tokentm/internal/mem"
	"tokentm/internal/tmlog"
)

// Open nesting — the expanded semantics the paper's conclusion names as
// future work (§7). An open-nested transaction commits independently of its
// parent: its effects become visible (and its conflict-detection state is
// released) immediately, with a compensating action to run if the parent
// later aborts. The classic use is a memory allocator or statistics counter
// inside a long transaction.
//
// The implementation reuses TokenTM's context-switch machinery: entering the
// open transaction flash-ORs the L1 metabits, turning the parent's R/W bits
// into R'/W' bits under the parent's TID, and runs the inner transaction
// under a per-thread auxiliary TID. The inner transaction therefore
// coexists with the parent's read set, conflicts properly with the parent's
// write set, and can itself commit with fast token release (only its own
// R/W column bits are set). This works unchanged on the LogTM-SE variants,
// whose signatures are per-TID as well.

// auxTIDBase places per-thread auxiliary TIDs above normal thread TIDs,
// within the 14-bit Attr field.
const auxTIDBase = 8192

// Open runs fn as an open-nested transaction inside the current transaction.
// fn's effects commit immediately and survive a parent abort; compensate
// (may be nil) is queued to run — as its own top-level transaction — if the
// parent aborts. Open must be called inside Atomic and must not touch
// blocks the parent has written (that is a self-conflict, reported by
// panic); nested Open is not supported.
func (tx *Tx) Open(fn func(*Tx), compensate func(*Tx)) {
	tc := tx.tc
	th := tc.th
	if tc.xactDepth == 0 {
		panic("sim: Open outside a transaction")
	}
	if tc.inOpen {
		panic("sim: nested Open is not supported")
	}
	parent := th.H

	// Lazily build this thread's auxiliary identity.
	if tc.aux == nil {
		id := th.H.ID
		tid := mem.TID(auxTIDBase + id)
		if tid > mem.MaxTID {
			panic("sim: auxiliary TID out of range")
		}
		tc.aux = &htm.Thread{
			ID:   id,
			TID:  tid,
			Core: th.core.id,
			Log:  tmlog.New(LogRegionBase + LogRegionStride*mem.Addr(auxTIDBase+id)),
		}
		th.m.HTM.Register(tc.aux)
	}
	aux := tc.aux
	aux.Core = th.core.id

	// Switch the core to the auxiliary identity: flash-OR preserves the
	// parent's tokens as R'/W' bits (revoking only its fast release).
	th.flushWork()
	lat := th.m.HTM.ContextSwitch(th.core.id, parent, aux)
	tc.charge(attr.CtxSwitch, lat)
	th.yield(opResult{lat: lat})

	x := &htm.Xact{TID: aux.TID, Core: th.core.id, Timestamp: tc.Now()}
	tc.inOpen = true
	tc.parentXact = parent.Xact
	defer func() { tc.inOpen = false; tc.parentXact = nil }()

	for attempt := 1; ; attempt++ {
		x.Reset()
		x.Attempts = attempt
		x.BeginTime = tc.Now()
		aux.Xact = x
		// The open attempt charges its work to its own pending frame; the
		// parent's frame is suspended while the auxiliary identity runs.
		prev := tc.pend
		tc.beginAttempt(&tc.openPend)
		beginLat := th.m.HTM.Begin(aux, tc.Now())
		tc.charge(attr.Begin, beginLat)
		th.yield(opResult{lat: beginLat})

		committed := tc.runOpenBody(fn, parent)
		// Deferred trailing Work flushes before the commit/abort HTM call
		// (see Atomic).
		th.flushWork()
		if committed && !x.AbortRequested {
			lat, _ := th.m.HTM.Commit(aux)
			aux.Xact = nil
			tc.commitAttempt(prev)
			tc.charge(attr.Commit, lat)
			th.yield(opResult{lat: lat})
			break
		}
		lat := th.m.HTM.Abort(aux)
		th.AbortCount++
		wasted := tc.abortAttempt(prev)
		x.WastedCycles += wasted
		tc.recordAbort(x, attempt, wasted, lat)
		bo := th.m.abortBackoff(attempt)
		tc.charge(attr.LogUnroll, lat)
		tc.charge(attr.AbortBackoff, bo)
		th.yield(opResult{lat: lat + bo})
	}

	// Switch back to the parent identity.
	lat = th.m.HTM.ContextSwitch(th.core.id, aux, parent)
	tc.charge(attr.CtxSwitch, lat)
	th.yield(opResult{lat: lat})

	if compensate != nil {
		tc.compensations = append(tc.compensations, compensate)
	}
}

// runOpenBody runs the open-nested body under the auxiliary identity,
// detecting self-deadlock against the parent.
func (tc *Ctx) runOpenBody(fn func(*Tx), parent *htm.Thread) (committed bool) {
	th := tc.th
	// Route accesses through the auxiliary thread.
	old := th.H
	th.H = tc.aux
	defer func() { th.H = old }()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); !ok {
				panic(r)
			}
			committed = false
		}
	}()
	fn(&Tx{tc: tc})
	return true
}

// Retry aborts the current transaction attempt and retries it from the
// beginning (a user-initiated abort, useful for "wait until" patterns and
// for testing abort paths).
func (tx *Tx) Retry() {
	if tx.tc.xactDepth == 0 {
		panic("sim: Retry outside a transaction")
	}
	panic(abortSignal{})
}

// runCompensations executes queued open-nesting compensations (newest
// first), each as its own top-level transaction, after a parent abort.
func (tc *Ctx) runCompensations() {
	comps := tc.compensations
	tc.compensations = nil
	for i := len(comps) - 1; i >= 0; i-- {
		tc.Atomic(comps[i])
	}
}

// selfDeadlock reports whether an access's enemy list names the suspended
// parent transaction (an open-nested transaction touching its parent's
// write set) — an unresolvable wait that must be surfaced, not spun on.
func (tc *Ctx) selfDeadlock(enemies []*htm.Xact) bool {
	if !tc.inOpen || tc.parentXact == nil {
		return false
	}
	for _, e := range enemies {
		if e == tc.parentXact {
			return true
		}
	}
	return false
}

var errOpenSelfConflict = fmt.Errorf("sim: open-nested transaction conflicts with its parent's write set")
