package sim

import (
	"strings"
	"testing"

	"tokentm/internal/attr"
	"tokentm/internal/mem"
)

// contend runs a heavily conflicting counter workload (single shared block,
// many threads) so every variant exercises stalls, backoffs and aborts.
func contend(t *testing.T, variant string) *Machine {
	t.Helper()
	m := New(Config{Cores: 4, RetryLimit: 4, Seed: 7})
	m.SetHTM(buildHTM(m, variant))
	const addr mem.Addr = 0x3000
	for i := 0; i < 8; i++ {
		m.Spawn(func(tc *Ctx) {
			for k := 0; k < 10; k++ {
				tc.Atomic(func(tx *Tx) {
					v := tx.Load(addr)
					tx.Work(30)
					tx.Store(addr, v+1)
				})
				tc.Work(10)
			}
		})
	}
	m.Run()
	return m
}

// TestCycleConservation is the tentpole invariant on every variant: each
// core's attribution buckets sum exactly to its clock, the machine-wide
// merge matches the sum of core clocks, and each abort produced exactly one
// lifecycle record.
func TestCycleConservation(t *testing.T) {
	for _, variant := range allVariants {
		t.Run(variant, func(t *testing.T) {
			m := contend(t, variant)
			if err := m.CheckConservation(); err != nil {
				t.Fatal(err)
			}
			bds := m.Breakdowns()
			times := m.CoreTimes()
			var clockSum mem.Cycle
			for i := range bds {
				if bds[i].Total() != times[i] {
					t.Errorf("core %d: breakdown %d != clock %d", i, bds[i].Total(), times[i])
				}
				clockSum += times[i]
			}
			total := m.BreakdownTotal()
			if got := total.Total(); got != clockSum {
				t.Errorf("machine breakdown %d != core clock sum %d", got, clockSum)
			}
			aborts := 0
			for _, th := range m.Threads() {
				if len(th.AbortRecs) != th.AbortCount {
					t.Errorf("thread %d: %d abort records for %d aborts", th.H.ID, len(th.AbortRecs), th.AbortCount)
				}
				aborts += th.AbortCount
			}
			if len(m.AbortRecs) != aborts {
				t.Errorf("machine has %d abort records, threads aborted %d times", len(m.AbortRecs), aborts)
			}
			if aborts > 0 && total.Get(attr.Wasted) == 0 {
				t.Errorf("%d aborts but no cycles classified Wasted", aborts)
			}
			if got := m.Store.Load(0x3000); got != 80 {
				t.Fatalf("counter = %d, want 80", got)
			}
		})
	}
}

// TestAbortRecordAttribution checks the lifecycle records point at a real
// enemy transaction and name the conflict kind when a conflict caused the
// abort (backoff-free retries at the user's request carry KindNone).
func TestAbortRecordAttribution(t *testing.T) {
	m := contend(t, "TokenTM")
	if len(m.AbortRecs) == 0 {
		t.Skip("workload produced no aborts at this seed")
	}
	tids := map[mem.TID]bool{}
	for _, th := range m.Threads() {
		tids[th.H.TID] = true
	}
	for _, r := range m.AbortRecs {
		if !tids[r.TID] {
			t.Fatalf("abort record names unknown victim TID %d", r.TID)
		}
		if r.Enemy != mem.NoTID && !tids[r.Enemy] {
			t.Fatalf("abort record names unknown enemy TID %d", r.Enemy)
		}
		if r.Enemy != mem.NoTID && r.Kind.String() == "none" {
			t.Errorf("record with enemy %d has no conflict kind", r.Enemy)
		}
		if r.Attempt < 1 {
			t.Errorf("abort record attempt = %d, want >= 1", r.Attempt)
		}
	}
}

// TestDeadlockReport asserts the deadlock panic names each live thread with
// a symbolic state and, for time-blocked threads, its wake cycle — the
// debugging payload the raw %d report withheld.
func TestDeadlockReport(t *testing.T) {
	m := New(Config{Cores: 2})
	m.SetHTM(buildHTM(m, "TokenTM"))
	// Classic lock-order inversion: AB vs BA.
	m.Spawn(func(tc *Ctx) {
		tc.Lock(1)
		tc.Work(10)
		tc.Lock(2)
	})
	m.Spawn(func(tc *Ctx) {
		tc.Lock(2)
		tc.Work(10)
		tc.Lock(1)
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("deadlocked machine did not panic")
		}
		err, ok := r.(*DeadlockError)
		if !ok {
			t.Fatalf("panic value %#v, want *DeadlockError", r)
		}
		if len(err.Threads) != 2 {
			t.Fatalf("deadlock report has %d threads, want 2", len(err.Threads))
		}
		for i, tr := range err.Threads {
			if tr.Thread != i || tr.State != "waiting-lock" || tr.Timed {
				t.Errorf("thread report %d = %+v, want thread %d waiting-lock untimed", i, tr, i)
			}
		}
		msg := err.Error()
		for _, want := range []string{"deadlock", "thread0(", "thread1(", "state=waiting-lock"} {
			if !strings.Contains(msg, want) {
				t.Errorf("deadlock message %q missing %q", msg, want)
			}
		}
		if strings.Contains(msg, "state=%!s") || strings.Contains(msg, "state=2") {
			t.Errorf("deadlock message still prints raw state ints: %q", msg)
		}
	}()
	m.Run()
}

// TestThreadStateString pins the symbolic names the deadlock report relies
// on.
func TestThreadStateString(t *testing.T) {
	want := map[threadState]string{
		tsRunnable:    "runnable",
		tsRunning:     "running",
		tsBlockedTime: "blocked-time",
		tsWaitingLock: "waiting-lock",
		tsFinished:    "finished",
	}
	for s, name := range want {
		if got := s.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", s, got, name)
		}
	}
}
