package sim

// TestAllocFreeAnnotations cross-checks this package's //tokentm:allocfree
// annotations at runtime: the table's key set must equal the annotation
// list the static analyzer sees (lint.AllocFreeFuncs), and each entry must
// measure zero allocations per run on its steady-state path. The charge
// methods run on every simulated access, so an allocation here would both
// slow the sweep and (via GC timing) threaten nothing — but the lint
// contract says hot paths stay clean.

import (
	"slices"
	"sort"
	"testing"

	"tokentm/internal/attr"
	"tokentm/internal/lint"
)

func TestAllocFreeAnnotations(t *testing.T) {
	m := New(Config{Cores: 2})
	// A bare Ctx rig: charge only needs the thread's machine and core.
	tc := &Ctx{th: &Thread{m: m, core: m.cores[0]}}
	pickChoices := []CoreChoice{{Core: 0, ReadyAt: 9}, {Core: 1, ReadyAt: 3}}

	entries := []struct {
		name string
		fn   func()
	}{
		{"Machine.charge", func() {
			m.charge(0, attr.Barrier, 5)
			m.charge(1, attr.CtxSwitch, 2)
		}},
		{"Ctx.charge", func() {
			// Both routes: direct to the core, and into a pending frame.
			tc.pend = nil
			tc.charge(attr.Useful, 3)
			tc.pend = &tc.atomPend
			tc.charge(attr.Useful, 3)
			tc.charge(attr.Commit, 1) // not in-attempt: direct even with a frame
			tc.pend = nil
		}},
		{"MinTimePicker.Pick", func() {
			if got := (MinTimePicker{}).Pick(pickChoices); got != 1 {
				panic("MinTimePicker picked the wrong core")
			}
		}},
		{"Machine.refreshReady", func() {
			m.refreshReady(m.cores[0])
			m.refreshReady(m.cores[1])
		}},
		{"Machine.pickReadyCore", func() {
			m.readyKeys[0] = 9<<m.readyShift | 0
			m.readyKeys[1] = 3<<m.readyShift | 1
			if c := m.pickReadyCore(); c == nil || c.id != 1 {
				panic("pickReadyCore picked the wrong core")
			}
			m.readyKeys[0] = notReady
			m.readyKeys[1] = notReady
		}},
	}

	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.name)
	}
	sort.Strings(names)
	want, err := lint.AllocFreeFuncs(".")
	if err != nil {
		t.Fatalf("scanning annotations: %v", err)
	}
	if !slices.Equal(names, want) {
		t.Fatalf("annotation/table drift:\n annotated: %v\n table:     %v", want, names)
	}

	for _, e := range entries {
		e := e
		t.Run(e.name, func(t *testing.T) {
			for i := 0; i < 3; i++ {
				e.fn()
			}
			if n := testing.AllocsPerRun(100, e.fn); n != 0 {
				t.Errorf("%s allocates %.0f times per run; want 0", e.name, n)
			}
		})
	}
}
