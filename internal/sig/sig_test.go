package sig

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tokentm/internal/mem"
)

func TestNoFalseNegatives(t *testing.T) {
	f := func(blocks []uint32, seed int64) bool {
		s := NewBloom(DefaultBits, 4, seed)
		for _, b := range blocks {
			s.Add(mem.BlockAddr(b))
		}
		for _, b := range blocks {
			if !s.Test(mem.BlockAddr(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClear(t *testing.T) {
	s := NewBloom(DefaultBits, 2, 1)
	for i := 0; i < 100; i++ {
		s.Add(mem.BlockAddr(i * 977))
	}
	if s.Occupancy() == 0 {
		t.Fatal("occupancy should be nonzero after adds")
	}
	s.Clear()
	if s.Occupancy() != 0 {
		t.Fatal("occupancy should be zero after clear")
	}
	for i := 0; i < 100; i++ {
		if s.Test(mem.BlockAddr(i*977)) && i > 3 {
			t.Fatalf("block %d still present after clear", i)
		}
	}
}

// TestFalsePositiveRateGrowsWithSetSize checks the birthday-paradox effect
// the paper leans on (Zilles & Rajwar): bigger read/write sets mean more
// false positives.
func TestFalsePositiveRateGrowsWithSetSize(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	measure := func(setSize int) float64 {
		s := NewBloom(DefaultBits, 4, 5)
		members := make(map[mem.BlockAddr]bool)
		for i := 0; i < setSize; i++ {
			b := mem.BlockAddr(rng.Uint64() >> 20)
			s.Add(b)
			members[b] = true
		}
		fp := 0
		const probes = 20000
		for i := 0; i < probes; i++ {
			b := mem.BlockAddr(rng.Uint64() >> 20)
			if !members[b] && s.Test(b) {
				fp++
			}
		}
		return float64(fp) / probes
	}
	small := measure(8)
	large := measure(512)
	if small > 0.01 {
		t.Errorf("small-set false positive rate too high: %f", small)
	}
	if large < 10*small {
		t.Errorf("large sets should alias much more: small=%f large=%f", small, large)
	}
}

// TestMoreHashesHelpSmallSets: with few elements, 4 hashes alias less than
// 2; with huge sets the filter saturates either way.
func TestMoreHashesHelpSmallSets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	measure := func(k, setSize int) float64 {
		s := NewBloom(DefaultBits, k, 17)
		members := make(map[mem.BlockAddr]bool)
		for i := 0; i < setSize; i++ {
			b := mem.BlockAddr(rng.Uint64() >> 20)
			s.Add(b)
			members[b] = true
		}
		fp := 0
		const probes = 30000
		for i := 0; i < probes; i++ {
			b := mem.BlockAddr(rng.Uint64() >> 20)
			if !members[b] && s.Test(b) {
				fp++
			}
		}
		return float64(fp) / probes
	}
	fp2 := measure(2, 64)
	fp4 := measure(4, 64)
	if fp4 > fp2 && fp4 > 0.001 {
		t.Errorf("4 hashes should beat 2 on small sets: k2=%f k4=%f", fp2, fp4)
	}
}

func TestH3Determinism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := NewH3(DefaultBits, rng)
	for i := 0; i < 100; i++ {
		b := mem.BlockAddr(i * 131071)
		if h.Hash(b) != h.Hash(b) {
			t.Fatal("H3 must be deterministic")
		}
		if h.Hash(b) >= DefaultBits {
			t.Fatal("H3 out of range")
		}
	}
}

func TestH3Linearity(t *testing.T) {
	// H3 is linear over GF(2): h(a^b) == h(a)^h(b).
	rng := rand.New(rand.NewSource(13))
	h := NewH3(DefaultBits, rng)
	f := func(a, b uint64) bool {
		return h.Hash(mem.BlockAddr(a^b)) == h.Hash(mem.BlockAddr(a))^h.Hash(mem.BlockAddr(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestH3ByteSlicedMatchesReference pins the table-driven Hash to the
// row-per-bit definition: the byte-slice tables are an optimization and must
// never change a single hash value (signature contents are modeled behavior).
func TestH3ByteSlicedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewH3(DefaultBits, rng)
	f := func(b uint64) bool {
		return h.Hash(mem.BlockAddr(b)) == h.hashRef(mem.BlockAddr(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, b := range []uint64{0, 1, 1 << 63, ^uint64(0)} {
		if h.Hash(mem.BlockAddr(b)) != h.hashRef(mem.BlockAddr(b)) {
			t.Fatalf("byte-sliced hash diverges at %#x", b)
		}
	}
}

// TestHashFamilyInterned checks that NewBloom reuses one hash family per
// (nbits, k, seed) and that interning does not change the drawn rows.
func TestHashFamilyInterned(t *testing.T) {
	a := NewBloom(DefaultBits, 4, 21)
	b := NewBloom(DefaultBits, 4, 21)
	if len(a.hashes) != 4 || len(b.hashes) != 4 {
		t.Fatalf("want 4 hashes, got %d and %d", len(a.hashes), len(b.hashes))
	}
	for i := range a.hashes {
		if a.hashes[i] != b.hashes[i] {
			t.Fatal("same (nbits, k, seed) must share one interned hash family")
		}
	}
	// The interned rows must match a fresh draw from the same seed.
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 4; i++ {
		fresh := NewH3(DefaultBits, rng)
		if fresh.rows != a.hashes[i].rows {
			t.Fatalf("interned hash %d rows diverge from a fresh draw", i)
		}
	}
	if c := NewBloom(DefaultBits, 2, 21); c.hashes[0] == a.hashes[0] {
		t.Fatal("different k must not share a family: draw sequences differ")
	}
}

func TestPerfectIsExact(t *testing.T) {
	s := NewPerfect()
	s.Add(1)
	s.Add(99)
	if !s.Test(1) || !s.Test(99) || s.Test(2) {
		t.Fatal("perfect signature must be exact")
	}
	if s.Occupancy() != 0 {
		t.Fatal("perfect signatures report zero occupancy")
	}
	s.Clear()
	if s.Test(1) {
		t.Fatal("clear failed")
	}
}

func TestKinds(t *testing.T) {
	if KindPerfect.String() != "Perf" || Kind2xH3.String() != "2xH3" || Kind4xH3.String() != "4xH3" {
		t.Fatal("kind names")
	}
	if Kind(42).String() != "unknown" {
		t.Fatal("unknown kind name")
	}
	for _, k := range []Kind{KindPerfect, Kind2xH3, Kind4xH3} {
		s := New(k, 3)
		s.Add(77)
		if !s.Test(77) {
			t.Fatalf("%v: missing member", k)
		}
	}
}

func TestNewBloomPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two size")
		}
	}()
	NewBloom(1000, 2, 1)
}
