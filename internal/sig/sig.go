// Package sig implements the read/write-set signatures used by the
// LogTM-SE baseline HTM systems (paper §2.2, Figure 1).
//
// A signature is a Bloom filter summarizing the set of blocks a transaction
// has read or written. LogTM-SE tests incoming coherence requests against
// these signatures; because Bloom filters admit false positives, unrelated
// transactions can be serialized, which is exactly the pathology TokenTM's
// precise tokens eliminate. Following Sanchez et al. (cited by the paper as
// the best-performing designs), the implementable variants use a single
// 2 Kbit SRAM array indexed by k parallel H3 hash functions.
package sig

import (
	"math/bits"
	"math/rand"
	"sync"

	"tokentm/internal/mem"
)

// DefaultBits is the paper's signature size: 2 Kbit.
const DefaultBits = 2048

// Signature summarizes a set of block addresses with possible false
// positives but no false negatives.
type Signature interface {
	// Add inserts a block into the summarized set.
	Add(b mem.BlockAddr)
	// Test reports whether b may be in the set. False positives are
	// allowed; false negatives are not.
	Test(b mem.BlockAddr) bool
	// Clear empties the signature (constant time in hardware).
	Clear()
	// Occupancy returns the fraction of filter state in use (set bits /
	// total bits for Bloom signatures), a proxy for false-positive rate.
	Occupancy() float64
}

// H3 is one H₃-class universal hash function: each input bit of the block
// address selects a precomputed random row that is XORed into the output.
// H3 functions are popular in hardware because they reduce to an XOR tree.
//
// Hash evaluates byte-sliced: tbl[k][v] precomputes the XOR of the rows
// selected by byte value v at byte position k, so a 64-bit input costs 8
// table lookups instead of a loop over its set bits. The output is
// bit-for-bit identical to the row-per-bit definition (XOR is associative;
// the tables just reassociate it), which the sig tests pin against the
// reference loop.
type H3 struct {
	rows [64]uint32
	mask uint32
	tbl  [8][256]uint32
}

// NewH3 builds an H3 function producing log2(m)-bit outputs, with rows drawn
// from rng so that parallel functions are independent.
func NewH3(m int, rng *rand.Rand) *H3 {
	h := &H3{mask: uint32(m - 1)}
	for i := range h.rows {
		h.rows[i] = rng.Uint32() & h.mask
	}
	// Byte-slice tables by subset DP: v's XOR is (v minus its lowest set
	// bit)'s XOR plus that bit's row.
	for k := 0; k < 8; k++ {
		for v := 1; v < 256; v++ {
			h.tbl[k][v] = h.tbl[k][v&(v-1)] ^ h.rows[k*8+bits.TrailingZeros64(uint64(v))]
		}
	}
	return h
}

// Hash maps a block address to a bit index in [0, m).
func (h *H3) Hash(b mem.BlockAddr) uint32 {
	x := uint64(b)
	out := h.tbl[0][x&0xff] ^
		h.tbl[1][x>>8&0xff] ^
		h.tbl[2][x>>16&0xff] ^
		h.tbl[3][x>>24&0xff] ^
		h.tbl[4][x>>32&0xff] ^
		h.tbl[5][x>>40&0xff] ^
		h.tbl[6][x>>48&0xff] ^
		h.tbl[7][x>>56&0xff]
	return out & h.mask
}

// hashRef is the row-per-bit reference implementation, kept for the
// equivalence test.
func (h *H3) hashRef(b mem.BlockAddr) uint32 {
	x := uint64(b)
	var out uint32
	for x != 0 {
		i := bits.TrailingZeros64(x)
		out ^= h.rows[i]
		x &= x - 1
	}
	return out & h.mask
}

// Bloom is a single-array Bloom-filter signature with k parallel H3 hash
// functions, as in LogTM-SE_2xH3 and LogTM-SE_4xH3.
type Bloom struct {
	words  []uint64
	hashes []*H3
	nbits  int
	nset   int
}

var _ Signature = (*Bloom)(nil)

// h3Key identifies one deterministic hash-function family: NewBloom's rows
// are a pure function of (nbits, k, seed), so families can be shared.
type h3Key struct {
	nbits, k int
	seed     int64
}

// h3Cache interns hash families across Bloom instances. Seeds are derived
// from thread IDs, so a sweep re-creates the same few families for every
// machine; H3s are immutable after construction and safe to share.
var h3Cache sync.Map // h3Key -> []*H3

func hashFamily(nbits, k int, seed int64) []*H3 {
	key := h3Key{nbits, k, seed}
	if v, ok := h3Cache.Load(key); ok {
		return v.([]*H3)
	}
	rng := rand.New(rand.NewSource(seed))
	hs := make([]*H3, k)
	for i := range hs {
		hs[i] = NewH3(nbits, rng)
	}
	v, _ := h3Cache.LoadOrStore(key, hs)
	return v.([]*H3)
}

// NewBloom returns a Bloom signature with nbits bits (a power of two) and k
// H3 hash functions seeded from seed.
func NewBloom(nbits, k int, seed int64) *Bloom {
	if nbits <= 0 || nbits&(nbits-1) != 0 {
		panic("sig: nbits must be a positive power of two")
	}
	return &Bloom{
		words:  make([]uint64, nbits/64),
		nbits:  nbits,
		hashes: hashFamily(nbits, k, seed),
	}
}

// Add inserts block b.
func (s *Bloom) Add(b mem.BlockAddr) {
	for _, h := range s.hashes {
		i := h.Hash(b)
		w, m := i/64, uint64(1)<<(i%64)
		if s.words[w]&m == 0 {
			s.words[w] |= m
			s.nset++
		}
	}
}

// Test reports whether b may be in the set.
func (s *Bloom) Test(b mem.BlockAddr) bool {
	if s.nset == 0 {
		// Empty filter: no probe can hit. Conflict checks walk every
		// in-flight thread's signatures, most of which are empty.
		return false
	}
	for _, h := range s.hashes {
		i := h.Hash(b)
		if s.words[i/64]&(1<<(i%64)) == 0 {
			return false
		}
	}
	return true
}

// Clear empties the signature.
func (s *Bloom) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.nset = 0
}

// Occupancy returns set bits / total bits.
func (s *Bloom) Occupancy() float64 {
	return float64(s.nset) / float64(s.nbits)
}

// Perfect is the unimplementable exact signature used by the paper's
// LogTM-SE_Perf upper bound: it records the set precisely and never aliases.
type Perfect struct {
	set map[mem.BlockAddr]struct{}
}

var _ Signature = (*Perfect)(nil)

// NewPerfect returns an empty perfect signature.
func NewPerfect() *Perfect {
	return &Perfect{set: make(map[mem.BlockAddr]struct{})}
}

// Add inserts block b.
func (s *Perfect) Add(b mem.BlockAddr) { s.set[b] = struct{}{} }

// Test reports exact membership.
func (s *Perfect) Test(b mem.BlockAddr) bool {
	_, ok := s.set[b]
	return ok
}

// Clear empties the signature.
func (s *Perfect) Clear() {
	for k := range s.set {
		delete(s.set, k)
	}
}

// Occupancy is 0 for perfect signatures: they never saturate.
func (s *Perfect) Occupancy() float64 { return 0 }

// Kind names a signature configuration.
type Kind int

// Signature configurations evaluated in the paper.
const (
	KindPerfect Kind = iota // exact tracking (unimplementable)
	Kind2xH3                // 2 Kbit Bloom, 2 H3 hashes
	Kind4xH3                // 2 Kbit Bloom, 4 H3 hashes
)

// String returns the paper's name for the configuration.
func (k Kind) String() string {
	switch k {
	case KindPerfect:
		return "Perf"
	case Kind2xH3:
		return "2xH3"
	case Kind4xH3:
		return "4xH3"
	default:
		return "unknown"
	}
}

// New builds a signature of the given kind; seed decorrelates the hash
// functions of different cores.
func New(k Kind, seed int64) Signature {
	switch k {
	case KindPerfect:
		return NewPerfect()
	case Kind2xH3:
		return NewBloom(DefaultBits, 2, seed)
	case Kind4xH3:
		return NewBloom(DefaultBits, 4, seed)
	default:
		panic("sig: unknown kind")
	}
}
