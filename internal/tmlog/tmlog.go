// Package tmlog implements the per-thread software-visible transaction log
// that TokenTM (following LogTM) uses for both version management and token
// bookkeeping (paper §3.2, §5.1).
//
// The log is the "credit" side of TokenTM's double-entry bookkeeping: every
// token debited from a block's metastate is credited to exactly one log.
// Two record kinds exist:
//
//   - token records: written on the first transactional load of a block (one
//     word: the block's address, an implicit count of 1) or as part of a
//     store record (address plus explicit token count);
//   - data records: the block's pre-transaction data, written before the
//     first transactional store so an abort can unroll in-place updates.
//
// On commit the log is either reset in constant time (fast token release) or
// walked to release tokens; on abort it is walked in reverse to restore old
// values and release tokens.
package tmlog

import (
	"fmt"

	"tokentm/internal/mem"
)

// Kind discriminates log record types.
type Kind uint8

// Log record kinds.
const (
	// TokenRecord credits tokens acquired on a transactional load (or the
	// token part of a store).
	TokenRecord Kind = iota
	// DataRecord holds a block's pre-transaction data (written with the
	// token part on the first store).
	DataRecord
)

// Record is one log entry.
type Record struct {
	Kind   Kind
	Block  mem.BlockAddr
	Tokens uint32                    // tokens credited by this record
	Old    [mem.WordsPerBlock]uint64 // pre-transaction data (DataRecord)
}

// Bytes returns the simulated size of the record in the in-memory log: one
// word for a load's token record; address word + count word + block data for
// a store record.
func (r Record) Bytes() int {
	if r.Kind == TokenRecord {
		return mem.WordBytes
	}
	return 2*mem.WordBytes + mem.BlockBytes
}

// Log is one thread's transaction log. The zero value is not ready; use New
// so the log has a simulated base address for cache-effect modeling.
type Log struct {
	base    mem.Addr
	records []Record
	bytes   int
}

// New returns an empty log whose simulated storage begins at base. Record
// storage starts small — many workloads' write sets are a handful of blocks
// — and Reset keeps whatever capacity the log grows to, so steady-state
// appends never reallocate.
func New(base mem.Addr) *Log {
	return &Log{base: base, records: make([]Record, 0, 8)}
}

// Base returns the log's base address in simulated memory.
func (l *Log) Base() mem.Addr { return l.base }

// Len returns the number of records.
func (l *Log) Len() int { return len(l.records) }

// Bytes returns the simulated size of the log contents; the log pointer
// sits at Base()+Bytes().
func (l *Log) Bytes() int { return l.bytes }

// Tokens returns the total tokens credited to the log for block b.
func (l *Log) Tokens(b mem.BlockAddr) uint32 {
	var n uint32
	for _, r := range l.records {
		if r.Block == b {
			n += r.Tokens
		}
	}
	return n
}

// TotalTokens returns the total tokens credited across all blocks.
func (l *Log) TotalTokens() uint64 {
	var n uint64
	for _, r := range l.records {
		n += uint64(r.Tokens)
	}
	return n
}

// AppendToken credits tokens acquired for block b (a load's single token, or
// an upgrade's T-1). It returns the record's simulated address range for
// log-stall modeling.
func (l *Log) AppendToken(b mem.BlockAddr, tokens uint32) (addr mem.Addr, size int) {
	r := Record{Kind: TokenRecord, Block: b, Tokens: tokens}
	return l.append(r)
}

// AppendData writes a store record: the block's old data plus the tokens
// acquired by the store.
func (l *Log) AppendData(b mem.BlockAddr, tokens uint32, old [mem.WordsPerBlock]uint64) (addr mem.Addr, size int) {
	r := Record{Kind: DataRecord, Block: b, Tokens: tokens, Old: old}
	return l.append(r)
}

func (l *Log) append(r Record) (mem.Addr, int) {
	addr := l.base + mem.Addr(l.bytes)
	l.records = append(l.records, r)
	l.bytes += r.Bytes()
	return addr, r.Bytes()
}

// Reset discards all records in constant time by resetting the log pointer
// to the log base — the log half of a fast token release.
func (l *Log) Reset() {
	l.records = l.records[:0]
	l.bytes = 0
}

// Records returns the records oldest-first. The slice aliases internal
// state; callers must not retain it across appends.
func (l *Log) Records() []Record { return l.records }

// WalkReverse visits records newest-first, the order an abort handler
// unrolls them.
func (l *Log) WalkReverse(fn func(Record) error) error {
	for i := len(l.records) - 1; i >= 0; i-- {
		if err := fn(l.records[i]); err != nil {
			return fmt.Errorf("tmlog: record %d: %w", i, err)
		}
	}
	return nil
}

// Walk visits records oldest-first (commit-time token release order).
func (l *Log) Walk(fn func(Record) error) error {
	for i, r := range l.records {
		if err := fn(r); err != nil {
			return fmt.Errorf("tmlog: record %d: %w", i, err)
		}
	}
	return nil
}
