package tmlog

import (
	"errors"
	"testing"
	"testing/quick"

	"tokentm/internal/mem"
)

func TestAppendAndAccounting(t *testing.T) {
	l := New(0x10000)
	if l.Base() != 0x10000 || l.Len() != 0 || l.Bytes() != 0 {
		t.Fatal("fresh log state")
	}

	addr, size := l.AppendToken(5, 1)
	if addr != 0x10000 || size != mem.WordBytes {
		t.Fatalf("token record placement: %v %d", addr, size)
	}

	var old [mem.WordsPerBlock]uint64
	old[0] = 42
	addr, size = l.AppendData(9, 1<<16, old)
	if addr != 0x10000+mem.WordBytes {
		t.Fatalf("data record address: %v", addr)
	}
	if size != 2*mem.WordBytes+mem.BlockBytes {
		t.Fatalf("data record size: %d", size)
	}

	if l.Len() != 2 || l.Bytes() != mem.WordBytes+2*mem.WordBytes+mem.BlockBytes {
		t.Fatalf("log accounting: len=%d bytes=%d", l.Len(), l.Bytes())
	}
	if l.Tokens(5) != 1 || l.Tokens(9) != 1<<16 || l.Tokens(7) != 0 {
		t.Fatal("token queries")
	}
	if l.TotalTokens() != 1+1<<16 {
		t.Fatalf("total tokens: %d", l.TotalTokens())
	}
}

func TestResetIsConstantTimeSemantics(t *testing.T) {
	l := New(0)
	for i := 0; i < 100; i++ {
		l.AppendToken(mem.BlockAddr(i), 1)
	}
	l.Reset()
	if l.Len() != 0 || l.Bytes() != 0 || l.TotalTokens() != 0 {
		t.Fatal("reset must empty the log")
	}
	// The log pointer returns to base: next append lands at base.
	addr, _ := l.AppendToken(3, 1)
	if addr != l.Base() {
		t.Fatal("log pointer not reset to base")
	}
}

func TestWalkOrders(t *testing.T) {
	l := New(0)
	for i := 0; i < 5; i++ {
		l.AppendToken(mem.BlockAddr(i), 1)
	}
	var fwd, rev []mem.BlockAddr
	if err := l.Walk(func(r Record) error {
		fwd = append(fwd, r.Block)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.WalkReverse(func(r Record) error {
		rev = append(rev, r.Block)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if fwd[i] != mem.BlockAddr(i) || rev[i] != mem.BlockAddr(4-i) {
			t.Fatalf("walk order wrong: %v %v", fwd, rev)
		}
	}
}

func TestWalkError(t *testing.T) {
	l := New(0)
	l.AppendToken(1, 1)
	l.AppendToken(2, 1)
	sentinel := errors.New("stop")
	err := l.Walk(func(r Record) error {
		if r.Block == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("walk should propagate error: %v", err)
	}
	err = l.WalkReverse(func(r Record) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("reverse walk should propagate error: %v", err)
	}
}

// Property: bytes accounting matches the sum of record sizes, and token
// accounting matches the sum of appended tokens.
func TestAccountingProperty(t *testing.T) {
	f := func(ops []bool, blocks []uint16) bool {
		l := New(0x4000)
		wantBytes, wantTokens := 0, uint64(0)
		for i, isData := range ops {
			b := mem.BlockAddr(1)
			if i < len(blocks) {
				b = mem.BlockAddr(blocks[i])
			}
			if isData {
				_, n := l.AppendData(b, 7, [mem.WordsPerBlock]uint64{})
				wantBytes += n
				wantTokens += 7
			} else {
				_, n := l.AppendToken(b, 1)
				wantBytes += n
				wantTokens++
			}
		}
		return l.Bytes() == wantBytes && l.TotalTokens() == wantTokens && l.Len() == len(ops)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecordBytes(t *testing.T) {
	if (Record{Kind: TokenRecord}).Bytes() != 8 {
		t.Error("token record is one word")
	}
	if (Record{Kind: DataRecord}).Bytes() != 80 {
		t.Error("data record is 2 words + 64B block")
	}
}
