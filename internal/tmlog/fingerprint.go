package tmlog

import "tokentm/internal/statehash"

// FingerprintTo mixes the log content in append order (record order is
// architectural: it fixes the abort unroll and release walk). The base
// address is a per-thread constant and is excluded.
func (l *Log) FingerprintTo(h *statehash.Hash) {
	h.Int(len(l.records))
	for _, r := range l.records {
		h.U64(uint64(r.Kind))
		h.U64(uint64(r.Block))
		h.U32(r.Tokens)
		if r.Kind == DataRecord {
			for _, w := range r.Old {
				h.U64(w)
			}
		}
	}
}
