package htm

import (
	"tokentm/internal/mem"
)

// TokenSet indexes a transaction's token balance per block. It pairs the
// count map with a block list kept sorted by construction, so commit and
// abort handlers walk blocks in ascending block order with no sort at
// release time — part of the simulator's determinism contract: the order of
// simulated memory accesses (and therefore LRU state and cycle totals) must
// never depend on Go map iteration order.
//
// Reset retains both the map and the list storage, making repeated
// transaction attempts allocation-free after the first.
type TokenSet struct {
	counts map[mem.BlockAddr]uint32
	blocks []mem.BlockAddr // the keys of counts, sorted ascending
}

// Get returns the tokens held on block b (0 when untouched).
//
//tokentm:allocfree
func (s *TokenSet) Get(b mem.BlockAddr) uint32 { return s.counts[b] }

// Len returns the number of blocks with tokens.
func (s *TokenSet) Len() int { return len(s.blocks) }

// Add credits n more tokens on block b, inserting b into the sorted block
// list on first touch. Adding 0 to an untouched block is a no-op (the block
// does not join the release walk). The insertion search is hand-rolled: a
// sort.Search closure is an allocating construct on this per-token path.
//
//tokentm:allocfree
func (s *TokenSet) Add(b mem.BlockAddr, n uint32) {
	if _, ok := s.counts[b]; !ok {
		if n == 0 {
			return
		}
		if s.counts == nil {
			//lint:ignore allocfree first touch lazily creates the count map; Reset retains it for every later attempt
			s.counts = make(map[mem.BlockAddr]uint32)
		}
		lo, hi := 0, len(s.blocks)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if s.blocks[mid] < b {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		s.blocks = append(s.blocks, 0)
		copy(s.blocks[lo+1:], s.blocks[lo:])
		s.blocks[lo] = b
	}
	s.counts[b] += n
}

// Blocks returns the blocks holding tokens in ascending order — the release
// walk order. The slice aliases internal state; callers must not retain it
// across Add or Reset.
func (s *TokenSet) Blocks() []mem.BlockAddr { return s.blocks }

// Visit calls fn for every (block, tokens) pair in ascending block order.
func (s *TokenSet) Visit(fn func(b mem.BlockAddr, tokens uint32)) {
	for _, b := range s.blocks {
		fn(b, s.counts[b])
	}
}

// Reset empties the set, retaining storage for the next attempt.
//
//tokentm:allocfree
func (s *TokenSet) Reset() {
	clear(s.counts)
	s.blocks = s.blocks[:0]
}
