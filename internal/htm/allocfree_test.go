package htm

// TestAllocFreeAnnotations cross-checks this package's //tokentm:allocfree
// annotations at runtime: the table's key set must equal the annotation
// list the static analyzer sees (lint.AllocFreeFuncs), and each entry must
// measure zero allocations per run on its steady-state path.

import (
	"slices"
	"sort"
	"testing"

	"tokentm/internal/lint"
	"tokentm/internal/mem"
)

func TestAllocFreeAnnotations(t *testing.T) {
	const blocks = 64
	var s TokenSet
	// One-time growth: first touches allocate the count map and the sorted
	// block list; every later attempt reuses that storage.
	for i := 0; i < blocks; i++ {
		s.Add(mem.BlockAddr(i), 1)
	}
	s.Reset()

	entries := []struct {
		name string
		fn   func()
	}{
		{"TokenSet.Add", func() {
			s.Reset()
			// 37 is coprime to 64, so the walk hits every residue out of
			// order, exercising the sorted-insert shift path.
			for i := 0; i < blocks; i++ {
				s.Add(mem.BlockAddr(i*37%blocks), 2)
			}
			if s.Len() != blocks {
				t.Fatalf("want %d blocks, got %d", blocks, s.Len())
			}
		}},
		{"TokenSet.Get", func() {
			if s.Get(mem.BlockAddr(7)) == 0 {
				t.Fatal("block 7 should hold tokens")
			}
		}},
		{"TokenSet.Reset", func() {
			s.Reset()
			// Refill so the Get entry keeps seeing tokens regardless of
			// table order.
			for i := 0; i < blocks; i++ {
				s.Add(mem.BlockAddr(i), 1)
			}
		}},
	}

	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.name)
	}
	sort.Strings(names)
	want, err := lint.AllocFreeFuncs(".")
	if err != nil {
		t.Fatalf("scanning annotations: %v", err)
	}
	if !slices.Equal(names, want) {
		t.Fatalf("annotation/table drift:\n annotated: %v\n table:     %v", want, names)
	}

	for _, e := range entries {
		e := e
		t.Run(e.name, func(t *testing.T) {
			for i := 0; i < 3; i++ {
				e.fn()
			}
			if n := testing.AllocsPerRun(100, e.fn); n != 0 {
				t.Errorf("%s allocates %.0f times per run; want 0", e.name, n)
			}
		})
	}
}
