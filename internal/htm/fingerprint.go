package htm

import (
	"sort"

	"tokentm/internal/mem"
	"tokentm/internal/statehash"
)

// Fingerprinter is implemented by HTM systems (and other simulation
// components) whose internal state must join the machine fingerprint the
// schedule explorer uses for state-equality pruning. Implementations feed
// fields in a fixed order and must sort any map-derived sequence first, so
// logically equal states always hash equal.
type Fingerprinter interface {
	FingerprintTo(h *statehash.Hash)
}

// FingerprintTo mixes the transaction state that can influence future
// behavior: identity, priority, conflict flags, the token index, and the
// exact read/write sets. Metrics-only accumulators (StallCycles,
// BackoffCycles, WastedCycles, LogStall) and per-attempt abort attribution
// are deliberately excluded — they never feed back into protocol decisions,
// and excluding them lets schedules that merely accounted differently merge.
func (x *Xact) FingerprintTo(h *statehash.Hash) {
	h.Mark('X')
	h.U16(uint16(x.TID))
	h.Int(x.Core)
	h.U64(uint64(x.Timestamp))
	h.Bool(x.Active)
	h.Bool(x.AbortRequested)
	h.Bool(x.Stalling)
	h.Bool(x.FastOK)
	h.U64(uint64(x.BeginTime))
	h.Int(x.Attempts)
	x.Tokens.FingerprintTo(h)
	hashBlockSet(h, x.ReadSet)
	hashBlockSet(h, x.WriteSet)
}

// hashBlockSet mixes a block set in ascending order (collect-then-sort, per
// the determinism contract).
func hashBlockSet(h *statehash.Hash, set map[mem.BlockAddr]struct{}) {
	blocks := make([]mem.BlockAddr, 0, len(set))
	for b := range set {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	h.Int(len(blocks))
	for _, b := range blocks {
		h.U64(uint64(b))
	}
}

// FingerprintTo mixes the token index in ascending block order.
func (s *TokenSet) FingerprintTo(h *statehash.Hash) {
	h.Int(len(s.blocks))
	for _, b := range s.blocks {
		h.U64(uint64(b))
		h.U32(s.counts[b])
	}
}
