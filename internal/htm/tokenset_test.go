package htm

import (
	"reflect"
	"testing"

	"tokentm/internal/mem"
)

func TestTokenSetSortedByConstruction(t *testing.T) {
	var s TokenSet
	// Insert out of order, with a repeat.
	for _, b := range []mem.BlockAddr{9, 2, 7, 2, 5} {
		s.Add(b, 1)
	}
	want := []mem.BlockAddr{2, 5, 7, 9}
	if got := s.Blocks(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Blocks() = %v, want %v", got, want)
	}
	if s.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", s.Len())
	}
	if got := s.Get(2); got != 2 {
		t.Fatalf("Get(2) = %d, want 2 (repeat accumulates)", got)
	}
	if got := s.Get(3); got != 0 {
		t.Fatalf("Get(3) = %d, want 0", got)
	}

	var visited []mem.BlockAddr
	s.Visit(func(b mem.BlockAddr, n uint32) {
		visited = append(visited, b)
		if n == 0 {
			t.Fatalf("Visit(%v) with zero tokens", b)
		}
	})
	if !reflect.DeepEqual(visited, want) {
		t.Fatalf("Visit order = %v, want %v", visited, want)
	}
}

func TestTokenSetAddZeroUntouchedIsNoOp(t *testing.T) {
	var s TokenSet
	s.Add(4, 0)
	if s.Len() != 0 || s.Get(4) != 0 {
		t.Fatal("Add(b, 0) on an untouched block must not join the release walk")
	}
	// But a zero add to an existing block keeps it.
	s.Add(4, 2)
	s.Add(4, 0)
	if s.Len() != 1 || s.Get(4) != 2 {
		t.Fatal("Add(b, 0) on a held block must be a pure no-op")
	}
}

func TestTokenSetResetRetainsStorage(t *testing.T) {
	var s TokenSet
	for b := mem.BlockAddr(0); b < 64; b++ {
		s.Add(b, 1)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len() after Reset = %d", s.Len())
	}
	if got := s.Get(10); got != 0 {
		t.Fatalf("Get after Reset = %d", got)
	}
	// Refill must work and stay sorted.
	s.Add(3, 1)
	s.Add(1, 1)
	if got := s.Blocks(); !reflect.DeepEqual(got, []mem.BlockAddr{1, 3}) {
		t.Fatalf("Blocks() after refill = %v", got)
	}
}
