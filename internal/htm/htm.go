// Package htm defines the framework shared by the simulated HTM systems:
// transaction and thread records, access outcomes, the System interface the
// simulator drives, the timestamp-based contention-management policy used by
// all of the paper's variants (§6.1), and the metrics the evaluation section
// reports.
package htm

import (
	"tokentm/internal/mem"
	"tokentm/internal/tmlog"
)

// Fixed operation costs (cycles) shared by the HTM variants.
const (
	// BeginCycles checkpoints registers and initializes transactional
	// state.
	BeginCycles mem.Cycle = 10
	// FastCommitCycles is a constant-time commit (flash clear / signature
	// clear).
	FastCommitCycles mem.Cycle = 10
	// ReleaseRecordCycles is the software handler cost per log record
	// released on a log walk (trap + loop body), excluding memory system
	// time, which is simulated separately.
	ReleaseRecordCycles mem.Cycle = 8
	// LogWriteOverlap models the store buffer hiding most of a log
	// write's miss latency: only 1/LogWriteOverlap of the raw memory
	// time stalls the core (log writes are not on the critical path
	// unless the buffer fills; Moore's thesis, cited in §6.2, identifies
	// the residual stalls as the dominant logging overhead).
	LogWriteOverlap mem.Cycle = 8
	// AbortRecordCycles is the per-record cost of unrolling the log.
	AbortRecordCycles mem.Cycle = 30
	// ConflictTrapCycles is the cost of trapping to the software
	// contention manager.
	ConflictTrapCycles mem.Cycle = 80
	// LogWalkPerRecordCycles is the cost, per remote log record scanned,
	// of the §5.2 hard case where the contention manager must search
	// active transactions' logs to identify unknown readers.
	LogWalkPerRecordCycles mem.Cycle = 8
	// CtxSwitchCycles is the constant-time flash-OR context switch cost.
	CtxSwitchCycles mem.Cycle = 40
)

// Outcome classifies the result of one transactional (or strongly-atomic
// non-transactional) memory access attempt.
type Outcome int

// Access outcomes.
const (
	// OK: the access completed.
	OK Outcome = iota
	// Stall: a conflict was detected; the requester should back off and
	// retry (possibly after enemies were told to abort).
	Stall
	// AbortSelf: the contention manager decided this transaction loses;
	// the caller must run the abort handler and restart.
	AbortSelf
)

// Access describes one access attempt's result.
type Access struct {
	Outcome Outcome
	Latency mem.Cycle
	// Enemies lists identified conflicting transactions (for diagnostics).
	Enemies []*Xact
	// Kind classifies the conflict (KindNone for OK accesses).
	Kind ConflictKind
	// False marks a conflict that exact read/write sets would not have
	// flagged — a signature false positive (Figure 1's subject).
	False bool
}

// ConflictKind classifies a conflict by the requester's and holders' roles.
type ConflictKind int

// Conflict kinds. KindNone is the zero value: no conflict recorded.
const (
	KindNone ConflictKind = iota
	// KindReadVsWriter: a read found a foreign transactional writer.
	KindReadVsWriter
	// KindWriteVsReaders: a write found foreign transactional readers.
	KindWriteVsReaders
	// KindWriteVsWriter: a write found a foreign transactional writer.
	KindWriteVsWriter
	// KindNonXact: a non-transactional access hit transactional state
	// (strong atomicity).
	KindNonXact
)

// String names the conflict kind.
func (k ConflictKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindReadVsWriter:
		return "read-vs-writer"
	case KindWriteVsReaders:
		return "write-vs-readers"
	case KindWriteVsWriter:
		return "write-vs-writer"
	case KindNonXact:
		return "non-transactional"
	default:
		panic("htm: unknown conflict kind")
	}
}

// Xact is one transaction attempt's record.
type Xact struct {
	TID  mem.TID
	Core int
	// Timestamp is the begin time of the *first* attempt; it survives
	// aborts so the timestamp policy is starvation-free.
	Timestamp mem.Cycle
	Active    bool
	// AbortRequested is set by the contention manager when an older
	// transaction wins a conflict; the victim aborts at its next
	// transactional operation.
	AbortRequested bool
	// Stalling is true while the transaction is in a conflict stall-retry
	// loop. A stalled transaction that an older transaction wants is a
	// possible deadlock cycle and must abort (LogTM's rule).
	Stalling bool
	// FastOK tracks fast-token-release eligibility: it starts true and is
	// revoked when a line holding this transaction's tokens leaves the L1
	// or the thread is context switched (§4.4).
	FastOK bool
	// Tokens indexes the tokens this transaction holds per block (the log
	// is the ground truth; this is the index used for release and for
	// self-conflict checks). Its sorted block list fixes the release walk
	// order, keeping cycle totals independent of map iteration order.
	Tokens TokenSet
	// ReadSet and WriteSet are the exact block sets (used for stats and
	// for detecting signature false positives).
	ReadSet  map[mem.BlockAddr]struct{}
	WriteSet map[mem.BlockAddr]struct{}
	// BeginTime is the begin time of the current attempt.
	BeginTime mem.Cycle
	// Attempts counts begin attempts (1 = no aborts).
	Attempts int
	// LogStall accumulates cycles stalled writing log records.
	LogStall mem.Cycle

	// Cycle-attribution accumulators (Figures 7–9). StallCycles,
	// BackoffCycles and WastedCycles span the transaction's whole lifetime —
	// they survive Reset so the committing attempt's record carries the full
	// cost of getting there.
	//
	// StallCycles is time trapped in the contention manager.
	StallCycles mem.Cycle
	// BackoffCycles is randomized stall backoff between conflict retries.
	BackoffCycles mem.Cycle
	// WastedCycles is work performed by attempts that aborted.
	WastedCycles mem.Cycle

	// Abort attribution for the *current* attempt (cleared by Reset): set by
	// the contention manager when this transaction is told to abort, consumed
	// by the simulator's abort-lifecycle record.
	//
	// AbortedBy is the winner's TID (NoTID for a non-transactional winner or
	// a user-initiated retry).
	AbortedBy mem.TID
	// AbortBlock is the block the losing conflict was on.
	AbortBlock mem.BlockAddr
	// AbortKind classifies the losing conflict (KindNone: no abort recorded).
	AbortKind ConflictKind
}

// Reset prepares the record for a fresh attempt, preserving Timestamp and
// Attempts. Token and read/write-set storage is reused across attempts, so
// aborting and retrying allocates nothing after the first attempt.
func (x *Xact) Reset() {
	x.Active = true
	x.AbortRequested = false
	x.Stalling = false
	x.FastOK = true
	x.Tokens.Reset()
	if x.ReadSet == nil {
		x.ReadSet = make(map[mem.BlockAddr]struct{})
		x.WriteSet = make(map[mem.BlockAddr]struct{})
	} else {
		clear(x.ReadSet)
		clear(x.WriteSet)
	}
	x.LogStall = 0
	x.AbortedBy = mem.NoTID
	x.AbortBlock = 0
	x.AbortKind = KindNone
}

// Older reports whether x has priority over y under timestamp ordering,
// breaking ties by TID.
func (x *Xact) Older(y *Xact) bool {
	if x.Timestamp != y.Timestamp {
		return x.Timestamp < y.Timestamp
	}
	return x.TID < y.TID
}

// Thread is one software thread known to the HTM: it owns a log and at most
// one active transaction. Threads are created by the simulator and
// registered with the HTM system.
type Thread struct {
	ID   int
	TID  mem.TID
	Core int
	Xact *Xact
	Log  *tmlog.Log
}

// InXact reports whether the thread has an active transaction.
func (t *Thread) InXact() bool { return t.Xact != nil && t.Xact.Active }

// Decision is the contention manager's verdict for the requester.
type Decision int

// Contention-management decisions.
const (
	// DecideStall: back off and retry.
	DecideStall Decision = iota
	// DecideAbortSelf: the requester aborts.
	DecideAbortSelf
)

// ResolveTimestamp implements the timestamp (LogTM-style) conflict
// resolution used by all the paper's HTM variants: the requester stalls and
// retries, and transactions abort only when a deadlock cycle is possible.
// A younger holder that is itself stalled while an older requester wants its
// data closes a potential waits-for cycle and is told to abort. The
// retryLimit is a livelock backstop: past it, an older requester forces its
// younger holders out, and a younger requester sacrifices itself.
// A nil requester models a non-transactional access (strong atomicity): it
// has no priority and always stalls; the transactional holder finishes.
func ResolveTimestamp(req *Xact, enemies []*Xact, retries, retryLimit int) (abort []*Xact, dec Decision) {
	if req == nil {
		return nil, DecideStall
	}
	olderEnemyExists := false
	for _, e := range enemies {
		if req.Older(e) {
			// e is younger: abort it only on deadlock risk (it is
			// waiting and now wanted) or as a livelock backstop.
			if e.Stalling || retries >= retryLimit {
				abort = append(abort, e)
			}
		} else {
			olderEnemyExists = true
		}
	}
	if olderEnemyExists && retries >= retryLimit {
		return abort, DecideAbortSelf
	}
	return abort, DecideStall
}

// ApplyResolution records a contention-management verdict on the losers:
// every transaction in abort is marked AbortRequested with attribution
// (winner's TID, conflicting block, conflict kind), and a requester ordered
// to abort itself records its first identified enemy as the winner. Only the
// first cause per attempt sticks — a victim already condemned keeps its
// original attribution until Reset.
func ApplyResolution(req *Xact, enemies, abort []*Xact, dec Decision, b mem.BlockAddr, kind ConflictKind) {
	winner := mem.NoTID
	if req != nil {
		winner = req.TID
	}
	for _, e := range abort {
		e.AbortRequested = true
		if e.AbortKind == KindNone {
			e.AbortedBy = winner
			e.AbortBlock = b
			e.AbortKind = kind
		}
	}
	if dec == DecideAbortSelf && req != nil && req.AbortKind == KindNone {
		if len(enemies) > 0 {
			req.AbortedBy = enemies[0].TID
		}
		req.AbortBlock = b
		req.AbortKind = kind
	}
}

// System is the interface each HTM variant implements; the simulator calls
// it with the scheduler's turn held, so implementations need no locking.
type System interface {
	// Name is the paper's name for the variant (e.g. "TokenTM").
	Name() string
	// Register introduces a thread before the simulation starts.
	Register(th *Thread)
	// RunningOn notifies which thread currently occupies a core (nil for
	// idle); used to interpret per-core metabit state.
	RunningOn(core int, th *Thread)
	// Begin starts a transaction attempt for th, returning its latency.
	// ts is the priority timestamp (first-attempt begin time).
	Begin(th *Thread, now mem.Cycle) mem.Cycle
	// Load performs a (transactional if th.InXact) read of addr.
	Load(th *Thread, addr mem.Addr, retries int) (uint64, Access)
	// Store performs a (transactional if th.InXact) write of addr.
	Store(th *Thread, addr mem.Addr, val uint64, retries int) Access
	// Commit ends th's transaction; fast reports a constant-time commit.
	Commit(th *Thread) (lat mem.Cycle, fast bool)
	// Abort unrolls th's transaction (restoring memory and releasing
	// conflict-detection state) and returns the handler latency.
	Abort(th *Thread) mem.Cycle
	// ContextSwitch swaps threads on a core (out or in may be nil).
	ContextSwitch(core int, out, in *Thread) mem.Cycle
	// Stats exposes the variant's metrics.
	Stats() *Metrics
}

// CommitRecord captures one committed transaction for the Table 5/6 and
// Figure 5 reports.
type CommitRecord struct {
	Thread      int
	ReadBlocks  int
	WriteBlocks int
	Duration    mem.Cycle
	Fast        bool
	// ReleaseCycles is the software token-release time (0 for fast
	// commits and for LogTM-SE).
	ReleaseCycles mem.Cycle
	// LogStall is the time stalled on log writes.
	LogStall mem.Cycle
	// Attempts is the number of tries (1 = committed first time).
	Attempts int
	// StallCycles/BackoffCycles/WastedCycles carry the transaction's
	// lifetime conflict costs (accumulated across all attempts, aborted ones
	// included) into the commit stream for per-transaction attribution.
	StallCycles   mem.Cycle
	BackoffCycles mem.Cycle
	WastedCycles  mem.Cycle
}

// AbortRecord captures one aborted transaction attempt for the lifecycle
// stream: who lost, who won, where, and what the attempt cost.
type AbortRecord struct {
	// Thread is the simulator thread id; TID the transactional identity
	// (auxiliary TIDs for open-nested attempts).
	Thread int
	TID    mem.TID
	// Attempt is the 1-based attempt number that aborted.
	Attempt int
	// Enemy is the conflict winner's TID (NoTID for a non-transactional
	// winner or a user-initiated retry).
	Enemy mem.TID
	// Block is the block the losing conflict was on.
	Block mem.BlockAddr
	// Kind classifies the losing conflict (KindNone for user retries).
	Kind ConflictKind
	// Wasted is the attempt's reclassified work (begin + useful + memory).
	Wasted mem.Cycle
	// Unroll is the abort handler's log-walk time.
	Unroll mem.Cycle
}

// Metrics aggregates HTM events over a run.
type Metrics struct {
	Commits        []CommitRecord
	Aborts         uint64
	Conflicts      uint64
	FalseConflicts uint64
	Stalls         uint64
	// HardCaseLookups counts §5.2's hardest case: log walks to identify
	// unknown readers.
	HardCaseLookups uint64
	// Conflict breakdown by requester/holder kind (each retry counts).
	ReadVsWriter   uint64
	WriteVsReaders uint64
	WriteVsWriter  uint64
	NonXactConf    uint64
}

// RecordCommit appends a commit record.
func (m *Metrics) RecordCommit(r CommitRecord) { m.Commits = append(m.Commits, r) }

// CountConflict bumps the per-kind conflict counter for k.
func (m *Metrics) CountConflict(k ConflictKind) {
	switch k {
	case KindNone:
	case KindReadVsWriter:
		m.ReadVsWriter++
	case KindWriteVsReaders:
		m.WriteVsReaders++
	case KindWriteVsWriter:
		m.WriteVsWriter++
	case KindNonXact:
		m.NonXactConf++
	default:
		panic("htm: unknown conflict kind")
	}
}
