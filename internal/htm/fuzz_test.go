package htm

import (
	"testing"

	"tokentm/internal/mem"
)

// FuzzTokenSet drives a TokenSet through an arbitrary Add/Get/Reset stream
// (decoded from the fuzz input) against a plain map model, checking after
// every operation that the sorted block list, the counts, and the Visit walk
// all agree with the model — the determinism contract the release walks in
// commit/abort rest on.
func FuzzTokenSet(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x05, 0x01}) // add one token on block 5
	f.Add([]byte{
		0x00, 0x09, 0x02, // add 2 on block 9
		0x00, 0x03, 0x01, // add 1 on block 3 (inserts before 9)
		0x00, 0x09, 0x00, // add 0 on touched block (kept)
		0x06, 0x03, 0x00, // get block 3
		0x07, 0x00, 0x00, // reset
		0x00, 0x03, 0x04, // add again after reset
	})
	f.Add([]byte{0x00, 0x0f, 0x00}) // add 0 on untouched block: must not join
	f.Fuzz(func(t *testing.T, data []byte) {
		var s TokenSet
		model := make(map[mem.BlockAddr]uint32)
		for len(data) >= 3 {
			op, blk, n := data[0]%8, mem.BlockAddr(data[1]%16), uint32(data[2]%4)
			data = data[3:]
			switch op {
			case 6: // Get
				if got := s.Get(blk); got != model[blk] {
					t.Fatalf("Get(%v) = %d, model %d", blk, got, model[blk])
				}
			case 7: // Reset
				s.Reset()
				model = make(map[mem.BlockAddr]uint32)
			default: // Add
				s.Add(blk, n)
				if _, touched := model[blk]; touched || n > 0 {
					model[blk] += n
				}
			}
			checkTokenSet(t, &s, model)
		}
	})
}

// checkTokenSet verifies every TokenSet invariant against the model.
func checkTokenSet(t *testing.T, s *TokenSet, model map[mem.BlockAddr]uint32) {
	t.Helper()
	blocks := s.Blocks()
	if len(blocks) != len(model) || s.Len() != len(model) {
		t.Fatalf("%d blocks (Len %d), model has %d", len(blocks), s.Len(), len(model))
	}
	for i, b := range blocks {
		if i > 0 && blocks[i-1] >= b {
			t.Fatalf("block list not strictly ascending: %v", blocks)
		}
		want, ok := model[b]
		if !ok {
			t.Fatalf("block %v not in model", b)
		}
		if got := s.Get(b); got != want {
			t.Fatalf("Get(%v) = %d, model %d", b, got, want)
		}
	}
	i := 0
	s.Visit(func(b mem.BlockAddr, tokens uint32) {
		if b != blocks[i] || tokens != model[b] {
			t.Fatalf("Visit[%d] = (%v,%d), want (%v,%d)", i, b, tokens, blocks[i], model[b])
		}
		i++
	})
	if i != len(blocks) {
		t.Fatalf("Visit covered %d of %d blocks", i, len(blocks))
	}
}
