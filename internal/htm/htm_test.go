package htm

import (
	"testing"

	"tokentm/internal/mem"
)

func xact(tid mem.TID, ts mem.Cycle) *Xact {
	x := &Xact{TID: tid, Timestamp: ts}
	x.Reset()
	return x
}

func TestXactReset(t *testing.T) {
	x := xact(1, 10)
	x.AbortRequested = true
	x.Stalling = true
	x.FastOK = false
	x.Tokens.Add(5, 3)
	x.ReadSet[5] = struct{}{}
	x.WriteSet[6] = struct{}{}
	x.LogStall = 99

	x.Reset()
	if x.AbortRequested || x.Stalling || !x.FastOK || !x.Active {
		t.Fatal("flags not reset")
	}
	if x.Tokens.Len() != 0 || len(x.ReadSet) != 0 || len(x.WriteSet) != 0 || x.LogStall != 0 {
		t.Fatal("state not reset")
	}
	if x.Timestamp != 10 {
		t.Fatal("Reset must preserve the priority timestamp")
	}
}

func TestOlder(t *testing.T) {
	a, b := xact(1, 10), xact(2, 20)
	if !a.Older(b) || b.Older(a) {
		t.Fatal("timestamp ordering")
	}
	// Tie broken by TID.
	c, d := xact(3, 10), xact(4, 10)
	if !c.Older(d) || d.Older(c) {
		t.Fatal("tie break by TID")
	}
}

func TestResolveTimestampNonTransactional(t *testing.T) {
	// Non-transactional requesters always stall and abort no one.
	enemy := xact(1, 5)
	abort, dec := ResolveTimestamp(nil, []*Xact{enemy}, 100, 8)
	if dec != DecideStall || len(abort) != 0 {
		t.Fatalf("nonxact: %v %v", dec, abort)
	}
}

func TestResolveTimestampRunningYoungHolder(t *testing.T) {
	// Older requester vs a running (non-stalled) younger holder: stall,
	// no aborts (the holder will finish).
	old := xact(1, 5)
	young := xact(2, 50)
	abort, dec := ResolveTimestamp(old, []*Xact{young}, 0, 8)
	if dec != DecideStall || len(abort) != 0 {
		t.Fatalf("running young holder: %v %v", dec, abort)
	}
}

func TestResolveTimestampDeadlockRule(t *testing.T) {
	// A stalled younger holder wanted by an older requester closes a
	// potential cycle: abort it.
	old := xact(1, 5)
	young := xact(2, 50)
	young.Stalling = true
	abort, dec := ResolveTimestamp(old, []*Xact{young}, 0, 8)
	if dec != DecideStall || len(abort) != 1 || abort[0] != young {
		t.Fatalf("deadlock rule: %v %v", dec, abort)
	}
}

func TestResolveTimestampBackstopOlderRequester(t *testing.T) {
	// Past the retry limit an older requester forces even running young
	// holders out.
	old := xact(1, 5)
	young := xact(2, 50)
	abort, dec := ResolveTimestamp(old, []*Xact{young}, 8, 8)
	if dec != DecideStall || len(abort) != 1 {
		t.Fatalf("backstop: %v %v", dec, abort)
	}
}

func TestResolveTimestampYoungRequester(t *testing.T) {
	young := xact(2, 50)
	old := xact(1, 5)
	// Young requester stalls on an older holder...
	abort, dec := ResolveTimestamp(young, []*Xact{old}, 0, 8)
	if dec != DecideStall || len(abort) != 0 {
		t.Fatalf("young stalls: %v %v", dec, abort)
	}
	// ...and sacrifices itself at the backstop.
	_, dec = ResolveTimestamp(young, []*Xact{old}, 8, 8)
	if dec != DecideAbortSelf {
		t.Fatalf("young backstop: %v", dec)
	}
}

func TestResolveTimestampMixedEnemies(t *testing.T) {
	req := xact(2, 20)
	older := xact(1, 5)
	youngerStalled := xact(3, 90)
	youngerStalled.Stalling = true
	abort, dec := ResolveTimestamp(req, []*Xact{older, youngerStalled}, 0, 8)
	if dec != DecideStall {
		t.Fatalf("mixed: %v", dec)
	}
	if len(abort) != 1 || abort[0] != youngerStalled {
		t.Fatalf("mixed aborts: %v", abort)
	}
	// Past the limit, the requester (younger than one enemy) gives up.
	_, dec = ResolveTimestamp(req, []*Xact{older, youngerStalled}, 9, 8)
	if dec != DecideAbortSelf {
		t.Fatalf("mixed backstop: %v", dec)
	}
}

func TestThreadInXact(t *testing.T) {
	th := &Thread{}
	if th.InXact() {
		t.Fatal("no xact")
	}
	th.Xact = xact(1, 1)
	if !th.InXact() {
		t.Fatal("active xact")
	}
	th.Xact.Active = false
	if th.InXact() {
		t.Fatal("inactive xact")
	}
}

func TestMetricsRecordCommit(t *testing.T) {
	var m Metrics
	m.RecordCommit(CommitRecord{Thread: 1, ReadBlocks: 2})
	m.RecordCommit(CommitRecord{Thread: 2, ReadBlocks: 3})
	if len(m.Commits) != 2 || m.Commits[1].ReadBlocks != 3 {
		t.Fatal("commit records")
	}
}

func TestCommitRecordBytesAccounting(t *testing.T) {
	// Spot-check the cost constants stay sane (used across variants).
	if BeginCycles == 0 || FastCommitCycles == 0 || ConflictTrapCycles == 0 {
		t.Fatal("zero cost constants")
	}
	if LogWriteOverlap == 0 {
		t.Fatal("log write overlap must be nonzero (divide-by-zero)")
	}
}
