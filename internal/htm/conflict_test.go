package htm

import (
	"testing"

	"tokentm/internal/mem"
)

func TestConflictKindString(t *testing.T) {
	want := map[ConflictKind]string{
		KindNone:           "none",
		KindReadVsWriter:   "read-vs-writer",
		KindWriteVsReaders: "write-vs-readers",
		KindWriteVsWriter:  "write-vs-writer",
		KindNonXact:        "non-transactional",
	}
	for k, name := range want {
		if got := k.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", k, got, name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown conflict kind did not panic")
		}
	}()
	_ = ConflictKind(99).String()
}

// TestXactResetAttribution pins the two Reset regimes the attribution
// fields need: lifetime cost accumulators survive (the committing attempt's
// record carries the whole journey), per-attempt abort attribution is
// cleared (each attempt gets a fresh first cause).
func TestXactResetAttribution(t *testing.T) {
	x := xact(1, 10)
	x.StallCycles = 100
	x.BackoffCycles = 200
	x.WastedCycles = 300
	x.AbortedBy = 7
	x.AbortBlock = 0x40
	x.AbortKind = KindWriteVsWriter

	x.Reset()
	if x.StallCycles != 100 || x.BackoffCycles != 200 || x.WastedCycles != 300 {
		t.Errorf("lifetime cost accumulators must survive Reset: stall=%d backoff=%d wasted=%d",
			x.StallCycles, x.BackoffCycles, x.WastedCycles)
	}
	if x.AbortedBy != mem.NoTID || x.AbortBlock != 0 || x.AbortKind != KindNone {
		t.Errorf("abort attribution must clear on Reset: by=%d block=%d kind=%s",
			x.AbortedBy, x.AbortBlock, x.AbortKind)
	}
}

func TestApplyResolutionAttributesVictims(t *testing.T) {
	req := xact(1, 10)
	v1, v2 := xact(2, 20), xact(3, 30)
	ApplyResolution(req, []*Xact{v1, v2}, []*Xact{v1, v2}, DecideStall, 0x80, KindWriteVsReaders)
	for _, v := range []*Xact{v1, v2} {
		if !v.AbortRequested {
			t.Fatalf("victim %d not marked for abort", v.TID)
		}
		if v.AbortedBy != req.TID || v.AbortBlock != 0x80 || v.AbortKind != KindWriteVsReaders {
			t.Errorf("victim %d attribution: by=%d block=%d kind=%s", v.TID, v.AbortedBy, v.AbortBlock, v.AbortKind)
		}
	}
	if req.AbortKind != KindNone || req.AbortRequested {
		t.Error("stalling requester must not be attributed an abort")
	}
}

// TestApplyResolutionFirstCauseWins: a victim already condemned by one
// conflict keeps that attribution when a second conflict also hits it.
func TestApplyResolutionFirstCauseWins(t *testing.T) {
	v := xact(5, 50)
	first, second := xact(1, 10), xact(2, 20)
	ApplyResolution(first, []*Xact{v}, []*Xact{v}, DecideStall, 0x40, KindWriteVsWriter)
	ApplyResolution(second, []*Xact{v}, []*Xact{v}, DecideStall, 0x80, KindReadVsWriter)
	if v.AbortedBy != first.TID || v.AbortBlock != 0x40 || v.AbortKind != KindWriteVsWriter {
		t.Errorf("second conflict overwrote first cause: by=%d block=%d kind=%s",
			v.AbortedBy, v.AbortBlock, v.AbortKind)
	}
}

func TestApplyResolutionSelfAbort(t *testing.T) {
	req := xact(9, 90)
	enemy := xact(1, 10)
	ApplyResolution(req, []*Xact{enemy}, nil, DecideAbortSelf, 0xc0, KindReadVsWriter)
	if req.AbortedBy != enemy.TID || req.AbortBlock != 0xc0 || req.AbortKind != KindReadVsWriter {
		t.Errorf("self-abort attribution: by=%d block=%d kind=%s", req.AbortedBy, req.AbortBlock, req.AbortKind)
	}
	// Self-abort is signalled by the access outcome, not AbortRequested.
	if req.AbortRequested {
		t.Error("DecideAbortSelf must not set AbortRequested on the requester")
	}
}

// TestApplyResolutionNonTransactionalWinner: a nil requester (strong
// atomicity) attributes its victims to NoTID.
func TestApplyResolutionNonTransactionalWinner(t *testing.T) {
	v := xact(3, 30)
	ApplyResolution(nil, []*Xact{v}, []*Xact{v}, DecideStall, 0x100, KindNonXact)
	if !v.AbortRequested || v.AbortedBy != mem.NoTID || v.AbortKind != KindNonXact {
		t.Errorf("non-transactional winner: requested=%v by=%d kind=%s", v.AbortRequested, v.AbortedBy, v.AbortKind)
	}
}

func TestCountConflict(t *testing.T) {
	var m Metrics
	m.CountConflict(KindNone)
	m.CountConflict(KindReadVsWriter)
	m.CountConflict(KindWriteVsReaders)
	m.CountConflict(KindWriteVsReaders)
	m.CountConflict(KindWriteVsWriter)
	m.CountConflict(KindNonXact)
	if m.ReadVsWriter != 1 || m.WriteVsReaders != 2 || m.WriteVsWriter != 1 || m.NonXactConf != 1 {
		t.Errorf("counters: %+v", m)
	}
}
