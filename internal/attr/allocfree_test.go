package attr

// TestAllocFreeAnnotations cross-checks this package's //tokentm:allocfree
// annotations at runtime: the table's key set must equal the annotation
// list the static analyzer sees (lint.AllocFreeFuncs), and each entry must
// measure zero allocations per run on its steady-state path.

import (
	"slices"
	"sort"
	"testing"

	"tokentm/internal/lint"
)

func TestAllocFreeAnnotations(t *testing.T) {
	var b, o Breakdown
	o.Charge(Useful, 1)
	var sink bool

	entries := []struct {
		name string
		fn   func()
	}{
		{"Breakdown.Charge", func() {
			for _, k := range []Bucket{Useful, ReadStall, Wasted, CtxSwitch} {
				b.Charge(k, 3)
			}
		}},
		{"Breakdown.Get", func() {
			if b.Get(Useful) == 0 {
				t.Fatal("Useful should hold cycles")
			}
		}},
		{"Breakdown.Total", func() {
			if b.Total() == 0 {
				t.Fatal("total should be nonzero")
			}
		}},
		{"Breakdown.Merge", func() { b.Merge(&o) }},
		{"Breakdown.Reset", func() {
			b.Reset()
			b.Charge(Useful, 5)
		}},
		{"Bucket.InAttempt", func() { sink = Useful.InAttempt() && !Commit.InAttempt() }},
	}

	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.name)
	}
	sort.Strings(names)
	want, err := lint.AllocFreeFuncs(".")
	if err != nil {
		t.Fatalf("scanning annotations: %v", err)
	}
	if !slices.Equal(names, want) {
		t.Fatalf("annotation/table drift:\n annotated: %v\n table:     %v", want, names)
	}

	for _, e := range entries {
		e := e
		t.Run(e.name, func(t *testing.T) {
			for i := 0; i < 3; i++ {
				e.fn()
			}
			if n := testing.AllocsPerRun(100, e.fn); n != 0 {
				t.Errorf("%s allocates %.0f times per run; want 0", e.name, n)
			}
		})
	}
	_ = sink
}
