package attr

import (
	"testing"

	"tokentm/internal/mem"
)

func TestBucketNames(t *testing.T) {
	names := BucketNames()
	if len(names) != int(NumBuckets) {
		t.Fatalf("got %d names, want %d", len(names), NumBuckets)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" {
			t.Fatalf("bucket %d has empty name", i)
		}
		if seen[n] {
			t.Fatalf("duplicate bucket name %q", n)
		}
		seen[n] = true
		if got := Bucket(i).String(); got != n {
			t.Errorf("Bucket(%d).String() = %q, want %q", i, got, n)
		}
	}
	if names[0] != "useful" || names[NumBuckets-1] != "ctx_switch" {
		t.Errorf("stack order changed: first=%q last=%q", names[0], names[NumBuckets-1])
	}
}

func TestBucketStringPanicsOutOfRange(t *testing.T) {
	for _, k := range []Bucket{NumBuckets, Bucket(-1), NumBuckets + 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bucket(%d).String() did not panic", k)
				}
			}()
			_ = k.String()
		}()
	}
}

func TestInAttempt(t *testing.T) {
	// Exactly the buckets a doomed attempt reclassifies as Wasted.
	want := map[Bucket]bool{Useful: true, ReadStall: true, WriteStall: true, Begin: true}
	for _, k := range Buckets() {
		if got := k.InAttempt(); got != want[k] {
			t.Errorf("%s.InAttempt() = %v, want %v", k, got, want[k])
		}
	}
}

func TestChargeTotalMerge(t *testing.T) {
	var a, b Breakdown
	a.Charge(Useful, 10)
	a.Charge(Useful, 5)
	a.Charge(Commit, 3)
	b.Charge(Wasted, 7)

	if got := a.Get(Useful); got != 15 {
		t.Errorf("Get(Useful) = %d, want 15", got)
	}
	if got := a.Total(); got != 18 {
		t.Errorf("a.Total() = %d, want 18", got)
	}
	a.Merge(&b)
	if got := a.Get(Wasted); got != 7 {
		t.Errorf("after merge, Get(Wasted) = %d, want 7", got)
	}
	if got := a.Total(); got != 25 {
		t.Errorf("after merge, a.Total() = %d, want 25", got)
	}
	if got := b.Total(); got != 7 {
		t.Errorf("merge mutated source: b.Total() = %d, want 7", got)
	}
	a.Reset()
	if got := a.Total(); got != 0 {
		t.Errorf("after reset, a.Total() = %d, want 0", got)
	}
}

func TestMapIncludesZeroBuckets(t *testing.T) {
	var b Breakdown
	b.Charge(ReadStall, mem.Cycle(42))
	m := b.Map()
	if len(m) != int(NumBuckets) {
		t.Fatalf("Map has %d keys, want %d (zero buckets must be present)", len(m), NumBuckets)
	}
	if m["read_stall"] != 42 {
		t.Errorf(`m["read_stall"] = %d, want 42`, m["read_stall"])
	}
	if v, ok := m["abort_backoff"]; !ok || v != 0 {
		t.Errorf(`m["abort_backoff"] = %d, %v; want 0, true`, v, ok)
	}
}
