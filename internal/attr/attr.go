// Package attr attributes simulated cycles to execution-time categories,
// reproducing the stacked breakdowns of the paper's Figures 7–9: every cycle
// a core clock advances is charged to exactly one Bucket, and the per-core
// sums must equal the core clocks (sim.Machine.CheckConservation), so an
// unclassified cycle is a loud failure rather than a silent lie.
//
// The accumulator is a fixed array indexed by Bucket: charging is a single
// add with no allocation and no map, so attribution is always on and cannot
// perturb the determinism contract.
package attr

import (
	"tokentm/internal/mem"
)

// Bucket is one execution-time category of the breakdown.
type Bucket int

// The breakdown categories, in presentation (stack) order.
const (
	// Useful is committed computation (Ctx.Work outside or inside a
	// transaction that eventually commits).
	Useful Bucket = iota
	// ReadStall is memory-system time of completed loads.
	ReadStall
	// WriteStall is memory-system time of completed stores (including log
	// write stalls, which ride on store latency).
	WriteStall
	// ConflictStall is time trapped in the contention manager on a
	// conflicting access (including the losing access of an abort).
	ConflictStall
	// StallBackoff is randomized backoff between conflict retries of an
	// access that eventually succeeds or aborts.
	StallBackoff
	// AbortBackoff is randomized backoff after an abort, before the next
	// attempt begins.
	AbortBackoff
	// Wasted is work performed inside an attempt that later aborted: its
	// Begin/Useful/ReadStall/WriteStall cycles are reclassified here.
	Wasted
	// Begin is transaction-begin overhead (register checkpoint, signature
	// or token-state init).
	Begin
	// Commit is commit overhead: fast commits' constant time and software
	// token release's log walk.
	Commit
	// LogUnroll is the abort handler's log walk restoring old values.
	LogUnroll
	// Barrier is scheduler wait: lock acquire/release, syscall traps,
	// voluntary yields, and core idle time waiting for the next runnable
	// thread.
	Barrier
	// CtxSwitch is context-switch cost (flash-OR or signature swap).
	CtxSwitch

	// NumBuckets bounds the Bucket space; it is not itself a category.
	NumBuckets
)

// String names the bucket as the stable snake_case key used in JSON output.
func (k Bucket) String() string {
	switch k {
	case Useful:
		return "useful"
	case ReadStall:
		return "read_stall"
	case WriteStall:
		return "write_stall"
	case ConflictStall:
		return "conflict_stall"
	case StallBackoff:
		return "stall_backoff"
	case AbortBackoff:
		return "abort_backoff"
	case Wasted:
		return "wasted"
	case Begin:
		return "begin"
	case Commit:
		return "commit"
	case LogUnroll:
		return "log_unroll"
	case Barrier:
		return "barrier"
	case CtxSwitch:
		return "ctx_switch"
	case NumBuckets:
		panic("attr: NumBuckets is not a bucket")
	default:
		panic("attr: unknown bucket")
	}
}

// InAttempt reports whether cycles of this bucket belong to the enclosing
// transaction attempt — charged to a pending frame and reclassified as
// Wasted if the attempt aborts. Conflict and backoff time keeps its own
// category even inside a doomed attempt (the paper separates those stacks),
// and commit/unroll/scheduler time is attributed when the attempt's fate is
// already known.
//
//tokentm:allocfree
func (k Bucket) InAttempt() bool {
	switch k {
	case Useful, ReadStall, WriteStall, Begin:
		return true
	case ConflictStall, StallBackoff, AbortBackoff, Wasted, Commit, LogUnroll, Barrier, CtxSwitch, NumBuckets:
		return false
	default:
		return false
	}
}

// Buckets lists every category in stack order.
func Buckets() []Bucket {
	out := make([]Bucket, NumBuckets)
	for i := range out {
		out[i] = Bucket(i)
	}
	return out
}

// BucketNames lists every category's name in stack order.
func BucketNames() []string {
	out := make([]string, NumBuckets)
	for i := range out {
		out[i] = Bucket(i).String()
	}
	return out
}

// Breakdown accumulates cycles per bucket. The zero value is ready to use.
type Breakdown struct {
	c [NumBuckets]mem.Cycle
}

// Charge adds n cycles to bucket k.
//
//tokentm:allocfree
func (b *Breakdown) Charge(k Bucket, n mem.Cycle) { b.c[k] += n }

// Get returns the cycles charged to bucket k.
//
//tokentm:allocfree
func (b *Breakdown) Get(k Bucket) mem.Cycle { return b.c[k] }

// Total returns the sum over all buckets.
//
//tokentm:allocfree
func (b *Breakdown) Total() mem.Cycle {
	var sum mem.Cycle
	for _, v := range b.c {
		sum += v
	}
	return sum
}

// Merge adds o's cycles into b.
//
//tokentm:allocfree
func (b *Breakdown) Merge(o *Breakdown) {
	for i, v := range o.c {
		b.c[i] += v
	}
}

// Reset zeroes every bucket.
//
//tokentm:allocfree
func (b *Breakdown) Reset() {
	for i := range b.c {
		b.c[i] = 0
	}
}

// Map renders the breakdown as bucket-name → cycles for JSON output. Every
// bucket is present, zero or not: consumers can always distinguish "zero
// cycles" from "category unknown to this producer" (the ambiguity the trace
// schema's omitempty bug showed).
func (b *Breakdown) Map() map[string]uint64 {
	out := make(map[string]uint64, NumBuckets)
	for i, v := range b.c {
		out[Bucket(i).String()] = uint64(v)
	}
	return out
}
