// Package mem defines the base types shared by every layer of the TokenTM
// simulator: physical addresses, 64-byte blocks, pages, simulated cycles,
// transaction identifiers, and a word-granularity value store.
//
// The paper (Bobba et al., ISCA 2008) tracks transactional state at the
// granularity of 64-byte memory blocks; all conflict detection in this
// repository therefore keys off BlockAddr.
package mem

import "fmt"

// Architectural constants of the modeled system (paper §6.1).
const (
	// BlockBytes is the coherence/conflict-detection granularity.
	BlockBytes = 64
	// BlockShift is log2(BlockBytes).
	BlockShift = 6
	// WordBytes is the data access granularity (one 64-bit word).
	WordBytes = 8
	// WordsPerBlock is the number of 64-bit words in a block.
	WordsPerBlock = BlockBytes / WordBytes
	// PageBytes is the virtual-memory page size used by the paging model.
	PageBytes = 4096
	// PageShift is log2(PageBytes).
	PageShift = 12
	// BlocksPerPage is the number of blocks in one page.
	BlocksPerPage = PageBytes / BlockBytes
)

// Addr is a physical byte address in the simulated machine.
type Addr uint64

// BlockAddr identifies a 64-byte memory block (Addr >> BlockShift).
type BlockAddr uint64

// PageAddr identifies a 4 KB page (Addr >> PageShift).
type PageAddr uint64

// Cycle is a point in (or duration of) simulated time, in processor cycles.
type Cycle uint64

// TID identifies a transactional thread. The paper encodes TIDs in a 14-bit
// attribute field (Table 4a); NoTID marks the absence of an owner.
type TID uint16

// NoTID is the reserved "no owner" thread identifier, shown as "-" in the
// paper's metastate tuples.
const NoTID TID = 0

// MaxTID is the largest encodable thread identifier: TIDs occupy the 14-bit
// Attr field of the in-memory metabits (Table 4a).
const MaxTID TID = 1<<14 - 1

// Block returns the block containing a.
func (a Addr) Block() BlockAddr { return BlockAddr(a >> BlockShift) }

// Page returns the page containing a.
func (a Addr) Page() PageAddr { return PageAddr(a >> PageShift) }

// WordIndex returns the index of a's word within its block.
func (a Addr) WordIndex() int { return int(a>>3) & (WordsPerBlock - 1) }

// AlignWord rounds a down to its word boundary.
func (a Addr) AlignWord() Addr { return a &^ (WordBytes - 1) }

// Addr returns the first byte address of block b.
func (b BlockAddr) Addr() Addr { return Addr(b) << BlockShift }

// Page returns the page containing block b.
func (b BlockAddr) Page() PageAddr { return PageAddr(b >> (PageShift - BlockShift)) }

// Addr returns the first byte address of page p.
func (p PageAddr) Addr() Addr { return Addr(p) << PageShift }

// Block returns the first block of page p.
func (p PageAddr) Block() BlockAddr { return BlockAddr(p) << (PageShift - BlockShift) }

func (a Addr) String() string      { return fmt.Sprintf("0x%x", uint64(a)) }
func (b BlockAddr) String() string { return fmt.Sprintf("B0x%x", uint64(b)) }

// Store is the simulated machine's word-granularity value store. The
// simulator models coherence and metastate separately; data values live in a
// single logical image, which suffices because simulated accesses are
// serialized by the scheduler. Old values are preserved/restored through the
// per-thread transaction logs, exactly as LogTM's eager version management
// does.
// The store is paged: words live inline in fixed pages keyed by their upper
// address bits, so dense workload regions pay one map insert per
// storePageWords words instead of one per word, and sequential scans stay in
// one cache-friendly array. Zero is the implicit value of absent pages and
// untouched slots, matching the old delete-on-zero map semantics.
type Store struct {
	pages    map[Addr]*storePage
	lastKey  Addr
	lastPage *storePage
	nonzero  int
}

// storePageWords is the store page size in 64-bit words (power of two).
const storePageWords = 128

type storePage [storePageWords]uint64

// NewStore returns an empty value store; all words read as zero.
func NewStore() *Store {
	return &Store{pages: make(map[Addr]*storePage)}
}

// page returns the page holding word index w, or nil when absent, refreshing
// the one-entry lookup cache.
func (s *Store) page(w Addr) *storePage {
	key := w / storePageWords
	if s.lastPage != nil && s.lastKey == key {
		return s.lastPage
	}
	p := s.pages[key]
	if p != nil {
		s.lastKey, s.lastPage = key, p
	}
	return p
}

// Load returns the 64-bit word at the word-aligned address containing a.
func (s *Store) Load(a Addr) uint64 {
	w := a / WordBytes
	if p := s.page(w); p != nil {
		return p[w%storePageWords]
	}
	return 0
}

// StoreWord writes the 64-bit word at the word-aligned address containing a.
func (s *Store) StoreWord(a Addr, v uint64) {
	w := a / WordBytes
	p := s.page(w)
	if p == nil {
		if v == 0 {
			return // writing zero over implicit zero
		}
		p = new(storePage)
		key := w / storePageWords
		s.pages[key] = p
		s.lastKey, s.lastPage = key, p
	}
	slot := &p[w%storePageWords]
	switch {
	case *slot == 0 && v != 0:
		s.nonzero++
	case *slot != 0 && v == 0:
		s.nonzero--
	}
	*slot = v
}

// Footprint returns the number of distinct non-zero words currently stored.
func (s *Store) Footprint() int { return s.nonzero }
