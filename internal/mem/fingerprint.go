package mem

import (
	"sort"

	"tokentm/internal/statehash"
)

// FingerprintTo mixes the store's content in ascending address order. Only
// non-zero words are state (zero is the implicit value of untouched memory),
// so two stores with equal readable content always hash equal.
func (s *Store) FingerprintTo(h *statehash.Hash) {
	keys := make([]Addr, 0, len(s.pages))
	for k := range s.pages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	h.Int(s.nonzero)
	for _, k := range keys {
		p := s.pages[k]
		for i, v := range p {
			if v == 0 {
				continue
			}
			h.U64(uint64((k*storePageWords + Addr(i)) * WordBytes))
			h.U64(v)
		}
	}
}
