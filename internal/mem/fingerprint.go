package mem

import (
	"sort"

	"tokentm/internal/statehash"
)

// FingerprintTo mixes the store's content in ascending address order.
// StoreWord deletes zero words, so presence is canonical and two stores with
// equal readable content always hash equal.
func (s *Store) FingerprintTo(h *statehash.Hash) {
	addrs := make([]Addr, 0, len(s.words))
	for a := range s.words {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	h.Int(len(addrs))
	for _, a := range addrs {
		h.U64(uint64(a))
		h.U64(s.words[a])
	}
}
