// Package randstream interns seeded math/rand draw sequences.
//
// Simulation components draw from rand.New(rand.NewSource(seed)) with seeds
// derived deterministically from thread IDs, so a sweep re-seeds the same
// few hundred sources for every grid cell — and math/rand's lagged-Fibonacci
// seeding walks ~20k LCG steps per source, which showed up as ~8% of a small
// sweep. New returns a *rand.Rand whose draw sequence is bit-identical to
// rand.New(rand.NewSource(seed)) but serves the first memoCap values from a
// process-wide memo shared by every consumer of that seed, so the seeding
// cost is paid once per seed per process.
//
// Consumers that outlive the memo (full-scale runs draw millions of values)
// switch to a private source seeded and fast-forwarded once, then stream
// with zero sharing overhead.
package randstream

import (
	"math/rand"
	"sync"
)

// memoCap bounds the shared memo per seed (8 bytes per value). Small-sweep
// threads draw well under this; beyond it the per-consumer fallback applies.
const memoCap = 1 << 15

// extendBatch is how many values an exhausted consumer appends per lock
// acquisition, bounding lock traffic for concurrent same-seed consumers.
const extendBatch = 64

// stream is the shared per-seed state: the live source and the memoized
// prefix of its output. vals is append-only under mu; published prefixes are
// immutable, so consumers read their snapshots lock-free.
type stream struct {
	seed int64
	mu   sync.Mutex
	src  rand.Source64
	vals []uint64
}

var streams sync.Map // int64 seed -> *stream

// New returns a fresh *rand.Rand positioned at the start of seed's sequence.
// Its draws are bit-identical to rand.New(rand.NewSource(seed)).
func New(seed int64) *rand.Rand {
	v, ok := streams.Load(seed)
	if !ok {
		v, _ = streams.LoadOrStore(seed, &stream{
			seed: seed,
			src:  rand.NewSource(seed).(rand.Source64),
		})
	}
	return rand.New(&source{s: v.(*stream)})
}

// source replays one interned stream. It implements rand.Source64; Seed is
// unsupported because the stream is shared.
type source struct {
	s    *stream
	vals []uint64 // snapshot of s.vals; its prefix never mutates
	pos  int
	priv rand.Source64 // continuation beyond memoCap, nil until needed
}

// Uint64 returns the next value of the seed's sequence.
func (c *source) Uint64() uint64 {
	if c.priv != nil {
		return c.priv.Uint64()
	}
	if c.pos < len(c.vals) {
		v := c.vals[c.pos]
		c.pos++
		return v
	}
	return c.slow()
}

// slow refreshes the snapshot, extending the shared memo if this consumer is
// at its frontier, or falls off the memo onto a private continuation.
func (c *source) slow() uint64 {
	s := c.s
	s.mu.Lock()
	for c.pos >= len(s.vals) {
		if len(s.vals) >= memoCap {
			s.mu.Unlock()
			// Replay the seed privately past the consumed prefix. The
			// one-time fast-forward only happens on draws past memoCap,
			// where seeding cost is amortized anyway.
			c.priv = rand.NewSource(s.seed).(rand.Source64)
			for i := 0; i < c.pos; i++ {
				c.priv.Uint64()
			}
			return c.priv.Uint64()
		}
		for i := 0; i < extendBatch && len(s.vals) < memoCap; i++ {
			s.vals = append(s.vals, s.src.Uint64())
		}
	}
	c.vals = s.vals
	s.mu.Unlock()
	v := c.vals[c.pos]
	c.pos++
	return v
}

// Int63 matches math/rand's rngSource: one Uint64 step, masked to 63 bits.
func (c *source) Int63() int64 { return int64(c.Uint64() & (1<<63 - 1)) }

// Seed is not supported: the underlying stream is shared across consumers.
func (c *source) Seed(int64) { panic("randstream: shared streams cannot be re-seeded") }
