package randstream

import (
	"math/rand"
	"sync"
	"testing"
)

// TestMatchesMathRand pins the whole point: a randstream Rand must be
// draw-for-draw identical to rand.New(rand.NewSource(seed)) under a mixed
// call pattern, including across the memoCap boundary onto the private
// continuation.
func TestMatchesMathRand(t *testing.T) {
	const seed = 424242
	ref := rand.New(rand.NewSource(seed))
	got := New(seed)
	n := memoCap + 500
	if testing.Short() {
		n = 2000
	}
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0:
			if g, w := got.Uint64(), ref.Uint64(); g != w {
				t.Fatalf("draw %d: Uint64 %d != %d", i, g, w)
			}
		case 1:
			if g, w := got.Int63(), ref.Int63(); g != w {
				t.Fatalf("draw %d: Int63 %d != %d", i, g, w)
			}
		case 2:
			if g, w := got.Intn(977), ref.Intn(977); g != w {
				t.Fatalf("draw %d: Intn %d != %d", i, g, w)
			}
		case 3:
			if g, w := got.Float64(), ref.Float64(); g != w {
				t.Fatalf("draw %d: Float64 %g != %g", i, g, w)
			}
		case 4:
			if g, w := got.Int31n(13), ref.Int31n(13); g != w {
				t.Fatalf("draw %d: Int31n %d != %d", i, g, w)
			}
		}
	}
}

// TestConsumersAreIndependent: two Rands on one seed each see the sequence
// from the start, regardless of interleaving.
func TestConsumersAreIndependent(t *testing.T) {
	a, b := New(77), New(77)
	var as, bs []uint64
	for i := 0; i < 100; i++ {
		as = append(as, a.Uint64())
	}
	for i := 0; i < 100; i++ {
		bs = append(bs, b.Uint64())
	}
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("draw %d: consumers diverge: %d != %d", i, as[i], bs[i])
		}
	}
}

// TestConcurrentSameSeed exercises the shared-memo locking under the race
// detector: concurrent consumers of one seed all see the reference sequence.
func TestConcurrentSameSeed(t *testing.T) {
	const seed = 909
	ref := rand.New(rand.NewSource(seed))
	want := make([]uint64, 5000)
	for i := range want {
		want[i] = ref.Uint64()
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := New(seed)
			for i := range want {
				if v := r.Uint64(); v != want[i] {
					t.Errorf("draw %d: %d != %d", i, v, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSeedPanics: re-seeding a shared stream must fail loudly.
func TestSeedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Seed should panic")
		}
	}()
	var c source
	c.Seed(1)
}
