package core

// Microbenchmarks for the latency-bearing protocol paths: conflict probes
// (hit = foreign reader tokens present, miss = untouched block), fast vs
// software commit, and abort unroll. They drive the TokenTM system directly,
// without the scheduler, so the numbers isolate the protocol engine.
// `make microbench` records them (with -benchmem) as a benchstat-comparable
// artifact; `make profile` attaches pprof to the software-commit path.

import (
	"testing"

	"tokentm/internal/coherence"
	"tokentm/internal/htm"
	"tokentm/internal/mem"
	"tokentm/internal/tmlog"
)

// benchBlocks is the per-transaction footprint of the commit/abort
// benchmarks: 16 blocks read, 4 written — a small transaction that fits the
// L1 without evictions, so fast-release eligibility survives.
const (
	benchReadBlocks  = 16
	benchWriteBlocks = 4
	benchHeap        = mem.Addr(0x100000)
)

func benchRig(cores int, opts ...Option) (*TokenTM, []*htm.Thread) {
	ms := coherence.NewMemSys(cores)
	tok := New(ms, mem.NewStore(), opts...)
	ths := make([]*htm.Thread, cores)
	for i := range ths {
		th := &htm.Thread{
			ID:   i,
			TID:  mem.TID(i + 1),
			Core: i,
			Log:  tmlog.New(mem.Addr(1<<40) + mem.Addr(i)<<24),
		}
		tok.Register(th)
		tok.RunningOn(i, th)
		ths[i] = th
	}
	return tok, ths
}

func benchBegin(tok *TokenTM, th *htm.Thread, x *htm.Xact) {
	x.Reset()
	x.Attempts++
	th.Xact = x
	tok.RunningOn(th.Core, th)
	tok.Begin(th, 0)
}

// BenchmarkProbe measures the conflict probe that runs on every transactional
// miss and every store: "miss" probes a block no transaction touches, "hit"
// probes a block on which three other cores hold identified reader tokens.
func BenchmarkProbe(b *testing.B) {
	b.Run("miss", func(b *testing.B) {
		tok, _ := benchRig(4)
		blk := benchHeap.Block()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if p := tok.probe(blk); p.sum != 0 {
				b.Fatal("unexpected tokens")
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		tok, ths := benchRig(4)
		blk := benchHeap.Block()
		for _, th := range ths[1:] {
			x := &htm.Xact{TID: th.TID, Core: th.Core}
			benchBegin(tok, th, x)
			if _, acc := tok.Load(th, benchHeap, 0); acc.Outcome != htm.OK {
				b.Fatal("setup load")
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if p := tok.probe(blk); p.sum != 3 {
				b.Fatalf("want 3 reader tokens, got %d", p.sum)
			}
		}
	})
}

// BenchmarkCommit measures a full small transaction — attempt reset, 16
// transactional loads, 4 upgrades to stores, then commit — on both release
// paths. "fast" flash-clears; "software" walks the log and releases tokens
// block by block (the path the ordered token walk optimizes).
func BenchmarkCommit(b *testing.B) {
	cases := []struct {
		name     string
		wantFast bool
		opts     []Option
	}{
		{"fast", true, nil},
		{"software", false, []Option{WithoutFastRelease()}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			tok, ths := benchRig(1, tc.opts...)
			th := ths[0]
			x := &htm.Xact{TID: th.TID, Core: 0}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchBegin(tok, th, x)
				for j := 0; j < benchReadBlocks; j++ {
					a := benchHeap + mem.Addr(j*mem.BlockBytes)
					if _, acc := tok.Load(th, a, 0); acc.Outcome != htm.OK {
						b.Fatal("load conflicted")
					}
				}
				for j := 0; j < benchWriteBlocks; j++ {
					a := benchHeap + mem.Addr(j*mem.BlockBytes)
					if acc := tok.Store(th, a, uint64(i), 0); acc.Outcome != htm.OK {
						b.Fatal("store conflicted")
					}
				}
				if _, fast := tok.Commit(th); fast != tc.wantFast {
					b.Fatalf("fast=%v, want %v", fast, tc.wantFast)
				}
				th.Xact = nil
			}
		})
	}
}

// BenchmarkAbortUnroll measures the abort handler: reverse log walk restoring
// pre-transaction block data, then token release.
func BenchmarkAbortUnroll(b *testing.B) {
	tok, ths := benchRig(1)
	th := ths[0]
	x := &htm.Xact{TID: th.TID, Core: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchBegin(tok, th, x)
		for j := 0; j < benchWriteBlocks; j++ {
			a := benchHeap + mem.Addr(j*mem.BlockBytes)
			if acc := tok.Store(th, a, uint64(i), 0); acc.Outcome != htm.OK {
				b.Fatal("store conflicted")
			}
		}
		tok.Abort(th)
		th.Xact = nil
	}
}
