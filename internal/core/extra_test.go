package core

import (
	"strings"
	"testing"

	"tokentm/internal/mem"
	"tokentm/internal/metastate"
)

// TestOverflowPagingIntegration: a LimitLESS-overflowed reader count (more
// debits than the 14-bit Attr field holds) survives a page-out/page-in
// cycle through the software overflow table.
func TestOverflowPagingIntegration(t *testing.T) {
	r := newRig(t, 1)
	r.thread(0)
	b := mem.Addr(0x30000).Block()
	big := metastate.Anon(20000) // > 2^14-1
	r.tok.setHome(b, big)

	sp := r.tok.PageOut(mem.Addr(0x30000).Page())
	if len(sp.Metas) != 1 {
		t.Fatalf("saved metas: %d", len(sp.Metas))
	}
	if !sp.Metas[b].IsOverflow() {
		t.Fatal("large count must use the overflow encoding")
	}
	if sp.OverflowCounts[b] != 20000 {
		t.Fatalf("overflow count: %d", sp.OverflowCounts[b])
	}
	if err := r.tok.PageIn(sp); err != nil {
		t.Fatal(err)
	}
	if got := r.tok.HomeMeta(b); got != big {
		t.Fatalf("restored metastate: %v", got)
	}
	// Clean up the injected state so bookkeeping stays consistent.
	r.tok.setHome(b, metastate.Zero)
	r.check()
}

// TestNameVariants checks option plumbing.
func TestNameVariants(t *testing.T) {
	r := newRig(t, 1)
	if r.tok.Name() != "TokenTM" {
		t.Fatal(r.tok.Name())
	}
	r2 := newRig(t, 1, WithoutFastRelease())
	if r2.tok.Name() != "TokenTM_NoFast" {
		t.Fatal(r2.tok.Name())
	}
	if r.tok.Stats() == nil {
		t.Fatal("stats")
	}
}

// TestReleasePostSwitchRPlusPool: after context switches fold tokens into a
// line's anonymous R+ count, releases drain the pool greedily and conserve
// tokens.
func TestReleasePostSwitchRPlusPool(t *testing.T) {
	r := newRig(t, 1)
	a := r.thread(0)
	b := r.thread(0) // same core

	// a reads blkA; switch; b reads blkA (rule (ii): a's token folds into
	// the R+ pool, b's R bit set).
	r.begin(a, 1)
	r.load(a, blkA)
	r.tok.ContextSwitch(0, a, b)
	r.begin(b, 2)
	if _, acc := r.load(b, blkA); acc.Outcome != 0 {
		t.Fatalf("b read: %+v", acc)
	}
	line := r.ms.LineAt(0, blkA.Block())
	if line == nil || !line.Meta.RPlus || !line.Meta.R {
		t.Fatalf("rule (ii) state: %v", line)
	}
	r.check()

	// b commits (its R bit releases; a's token stays in the pool).
	r.commit(b)
	r.check()
	if got := r.tok.probe(blkA.Block()); got.sum != 1 {
		t.Fatalf("after b's commit: %d tokens", got.sum)
	}

	// Switch back to a; its commit must drain the anonymous pool.
	r.tok.ContextSwitch(0, b, a)
	r.commit(a)
	r.check()
	if got := r.tok.probe(blkA.Block()); got.sum != 0 {
		t.Fatalf("leaked tokens: %d", got.sum)
	}
}

// TestHardCaseCounter: the §5.2 log-walk path is counted.
func TestHardCaseCounter(t *testing.T) {
	r := newRig(t, 2)
	reader := r.thread(0)
	writer := r.thread(1)
	r.begin(reader, 1)
	r.load(reader, blkA)
	// Anonymize the reader's token: evict, then evict again after
	// re-acquire to fuse two tokens into an anonymous (2,-).
	r.ms.EvictAll(blkA.Block())
	r.load(reader, blkA)
	r.ms.EvictAll(blkA.Block())
	if got := r.tok.HomeMeta(blkA.Block()); got != metastate.Anon(2) {
		t.Fatalf("home: %v", got)
	}
	r.begin(writer, 2)
	acc := r.store(writer, blkA, 1)
	if acc.Outcome == 0 {
		t.Fatal("write vs anonymous readers must conflict")
	}
	if r.tok.Metrics.HardCaseLookups == 0 {
		t.Fatal("anonymous readers must trigger the log-walk hard case")
	}
	if len(acc.Enemies) != 1 || acc.Enemies[0].TID != reader.TID {
		t.Fatalf("log walk must identify the reader: %+v", acc.Enemies)
	}
	r.commit(reader)
	r.mustOK(r.store(writer, blkA, 1))
	r.commit(writer)
	r.check()
}

// TestCheckBookkeepingDetectsViolations: the checker actually fails on
// corrupted state.
func TestCheckBookkeepingDetectsViolations(t *testing.T) {
	r := newRig(t, 1)
	x := r.thread(0)
	r.begin(x, 1)
	r.load(x, blkA)

	// Corrupt: inflate home debits without any log credit.
	r.tok.setHome(blkB.Block(), metastate.Anon(3))
	err := r.tok.CheckBookkeeping()
	if err == nil || !strings.Contains(err.Error(), "debits") {
		t.Fatalf("checker missed the violation: %v", err)
	}
	r.tok.setHome(blkB.Block(), metastate.Zero)
	r.check()
	r.commit(x)
}

// TestNonXactLoadFastPaths: resident non-transactional loads take the local
// fast path and never consult the global state.
func TestNonXactLoadFastPaths(t *testing.T) {
	r := newRig(t, 2)
	a := r.thread(0)
	// Warm a resident copy.
	if _, acc := r.load(a, blkA); acc.Outcome != 0 {
		t.Fatal("warm")
	}
	// Resident re-read is an L1 hit.
	if _, acc := r.load(a, blkA); acc.Outcome != 0 || acc.Latency != 1 {
		t.Fatalf("resident nonxact load: %+v", acc)
	}
	// Resident nonxact store on an M/E line with clean metabits.
	if acc := r.store(a, blkA, 9); acc.Outcome != 0 {
		t.Fatalf("nonxact store: %+v", acc)
	}
	if acc := r.store(a, blkA, 10); acc.Outcome != 0 || acc.Latency != 1 {
		t.Fatalf("resident nonxact store: %+v", acc)
	}
}
