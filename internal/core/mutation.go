package core

// Mutation selects a deliberately broken protocol rule for the schedule
// explorer's smoke test: a checker that cannot detect these seeded bugs has
// lost its teeth, and `make verify` fails. Mutations exist only for testing;
// production builds never set one.
type Mutation int

const (
	// MutNone is the correct protocol.
	MutNone Mutation = iota
	// MutNoFissionWriter breaks Table 3a's fission rule: a shared fill
	// hands the new copy zero metastate instead of replicating a writer's
	// (T,X). The bug is silent until the writer's own copy leaves the L1
	// (e.g. a page-out) and the writer re-fetches the block — the refill
	// then lets the writer acquire a reader token it already owns as
	// writer, which the bookkeeping check reports as a writer coexisting
	// with reader tokens.
	MutNoFissionWriter
	// MutSkipLogCredit breaks double-entry bookkeeping directly: a read
	// acquire debits the metastate and updates the transaction's token
	// index but skips the log credit, so the index and log disagree at the
	// very next bookkeeping check.
	MutSkipLogCredit
)

// String names the mutation (used in explore reports and CLI flags).
func (m Mutation) String() string {
	switch m {
	case MutNone:
		return "none"
	case MutNoFissionWriter:
		return "no-fission-writer"
	case MutSkipLogCredit:
		return "skip-log-credit"
	default:
		panic("core: unknown mutation")
	}
}

// Mutations lists the seeded protocol bugs, for sweeps over all of them.
func Mutations() []Mutation { return []Mutation{MutNoFissionWriter, MutSkipLogCredit} }

// MutationByName resolves a CLI name to a mutation (false for unknown).
func MutationByName(name string) (Mutation, bool) {
	for _, m := range []Mutation{MutNone, MutNoFissionWriter, MutSkipLogCredit} {
		if m.String() == name {
			return m, true
		}
	}
	return MutNone, false
}

// WithMutation seeds a protocol bug (see Mutation). Test-only.
func WithMutation(m Mutation) Option {
	return func(t *TokenTM) { t.mutation = m }
}
