package core

// TestAllocFreeAnnotations keeps the //tokentm:allocfree annotations honest
// at runtime: the table below drives every annotated function in this
// package and asserts testing.AllocsPerRun == 0 on its steady-state path.
// The table's key set must equal the annotation list the static analyzer
// sees (lint.AllocFreeFuncs), so adding an annotation without a table entry
// — or vice versa — fails the test, and an allocation the conservative AST
// scan cannot see fails AllocsPerRun.

import (
	"slices"
	"sort"
	"testing"

	"tokentm/internal/htm"
	"tokentm/internal/lint"
	"tokentm/internal/mem"
	"tokentm/internal/metastate"
)

func TestAllocFreeAnnotations(t *testing.T) {
	// Probe rig: three cores hold identified reader tokens on blkP and stay
	// in-transaction, so probe/enemy enumeration sees a populated block.
	tokP, thsP := benchRig(4)
	blkP := benchHeap.Block()
	for _, th := range thsP[1:] {
		x := &htm.Xact{TID: th.TID, Core: th.Core}
		benchBegin(tokP, th, x)
		if _, acc := tokP.Load(th, benchHeap, 0); acc.Outcome != htm.OK {
			t.Fatal("setup load conflicted")
		}
	}

	// Commit rigs: one per release path, each closure runs a whole small
	// transaction so every iteration starts from identical protocol state.
	tokF, thsF := benchRig(1)
	thF := thsF[0]
	xF := &htm.Xact{TID: thF.TID, Core: 0}
	tokS, thsS := benchRig(1, WithoutFastRelease())
	thS := thsS[0]
	xS := &htm.Xact{TID: thS.TID, Core: 0}

	smallXact := func(tok *TokenTM, th *htm.Thread, x *htm.Xact) {
		benchBegin(tok, th, x)
		for j := 0; j < benchReadBlocks; j++ {
			a := benchHeap + mem.Addr(j*mem.BlockBytes)
			if _, acc := tok.Load(th, a, 0); acc.Outcome != htm.OK {
				t.Fatal("load conflicted")
			}
		}
		for j := 0; j < benchWriteBlocks; j++ {
			a := benchHeap + mem.Addr(j*mem.BlockBytes)
			if acc := tok.Store(th, a, 1, 0); acc.Outcome != htm.OK {
				t.Fatal("store conflicted")
			}
		}
	}

	pr := probeResult{readers: make([]mem.TID, 0, 8)}
	anonMeta := metastate.Anon(3)
	enemyTIDs := []mem.TID{thsP[1].TID, thsP[2].TID, thsP[1].TID}

	entries := []struct {
		name string
		fn   func()
	}{
		{"probeResult.collect", func() {
			pr.readers = pr.readers[:0]
			pr.writer = mem.NoTID
			pr.anon = 0
			pr.collect(blkP, anonMeta)
			pr.collect(blkP, metastate.Zero)
		}},
		{"TokenTM.probe", func() {
			if p := tokP.probe(blkP); p.sum != 3 {
				t.Fatalf("want 3 reader tokens, got %d", p.sum)
			}
		}},
		{"TokenTM.enemiesOf", func() {
			if es := tokP.enemiesOf(enemyTIDs, thsP[0].TID); len(es) != 2 {
				t.Fatalf("want 2 enemies, got %d", len(es))
			}
		}},
		{"TokenTM.enemiesOf1", func() {
			if es := tokP.enemiesOf1(thsP[1].TID, thsP[0].TID); len(es) != 1 {
				t.Fatalf("want 1 enemy, got %d", len(es))
			}
		}},
		{"TokenTM.hardCaseLookup", func() {
			es, _ := tokP.hardCaseLookup(blkP, thsP[0].TID)
			if len(es) != 3 {
				t.Fatalf("want 3 enemies, got %d", len(es))
			}
		}},
		{"TokenTM.Commit", func() {
			smallXact(tokF, thF, xF)
			if _, fast := tokF.Commit(thF); !fast {
				t.Fatal("expected fast commit")
			}
			thF.Xact = nil
		}},
		{"TokenTM.softwareRelease", func() {
			smallXact(tokS, thS, xS)
			if _, fast := tokS.Commit(thS); fast {
				t.Fatal("expected software commit")
			}
			thS.Xact = nil
		}},
		{"TokenTM.releaseBlock", func() {
			benchBegin(tokS, thS, xS)
			if _, acc := tokS.Load(thS, benchHeap, 0); acc.Outcome != htm.OK {
				t.Fatal("load conflicted")
			}
			tokS.releaseBlock(thS, benchHeap.Block(), 1)
			thS.Log.Reset()
			xS.Tokens.Reset()
			xS.Active = false
			thS.Xact = nil
		}},
		{"TokenTM.Abort", func() {
			benchBegin(tokS, thS, xS)
			for j := 0; j < benchWriteBlocks; j++ {
				a := benchHeap + mem.Addr(j*mem.BlockBytes)
				if acc := tokS.Store(thS, a, 1, 0); acc.Outcome != htm.OK {
					t.Fatal("store conflicted")
				}
			}
			tokS.Abort(thS)
			thS.Xact = nil
		}},
	}

	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.name)
	}
	sort.Strings(names)
	want, err := lint.AllocFreeFuncs(".")
	if err != nil {
		t.Fatalf("scanning annotations: %v", err)
	}
	if !slices.Equal(names, want) {
		t.Fatalf("annotation/table drift:\n annotated: %v\n table:     %v", want, names)
	}

	for _, e := range entries {
		e := e
		t.Run(e.name, func(t *testing.T) {
			// Extra warm-up beyond AllocsPerRun's own: first iterations pay
			// one-time costs (map buckets, scratch capacity, log storage).
			for i := 0; i < 3; i++ {
				e.fn()
			}
			if n := testing.AllocsPerRun(100, e.fn); n != 0 {
				t.Errorf("%s allocates %.0f times per run; want 0", e.name, n)
			}
		})
	}
}
