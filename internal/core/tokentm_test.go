package core

import (
	"testing"

	"tokentm/internal/coherence"
	"tokentm/internal/htm"
	"tokentm/internal/mem"
	"tokentm/internal/metastate"
	"tokentm/internal/tmlog"
)

// rig drives the TokenTM system directly, without the scheduler, for
// protocol-level tests.
type rig struct {
	t   *testing.T
	ms  *coherence.MemSys
	st  *mem.Store
	tok *TokenTM
	ths []*htm.Thread
}

func newRig(t *testing.T, cores int, opts ...Option) *rig {
	t.Helper()
	ms := coherence.NewMemSys(cores)
	st := mem.NewStore()
	tok := New(ms, st, opts...)
	return &rig{t: t, ms: ms, st: st, tok: tok}
}

// thread creates a registered thread on the given core and marks it running
// there.
func (r *rig) thread(core int) *htm.Thread {
	id := len(r.ths)
	th := &htm.Thread{
		ID:   id,
		TID:  mem.TID(id + 1),
		Core: core,
		Log:  tmlog.New(mem.Addr(1<<40) + mem.Addr(id)<<24),
	}
	r.tok.Register(th)
	r.tok.RunningOn(core, th)
	r.ths = append(r.ths, th)
	return th
}

// begin starts a transaction on th.
func (r *rig) begin(th *htm.Thread, ts mem.Cycle) *htm.Xact {
	x := &htm.Xact{TID: th.TID, Core: th.Core, Timestamp: ts}
	x.Reset()
	x.Attempts = 1
	th.Xact = x
	r.tok.RunningOn(th.Core, th)
	r.tok.Begin(th, ts)
	return x
}

func (r *rig) load(th *htm.Thread, a mem.Addr) (uint64, htm.Access) {
	r.tok.RunningOn(th.Core, th)
	return r.tok.Load(th, a, 0)
}

func (r *rig) store(th *htm.Thread, a mem.Addr, v uint64) htm.Access {
	r.tok.RunningOn(th.Core, th)
	return r.tok.Store(th, a, v, 0)
}

func (r *rig) mustOK(acc htm.Access) {
	r.t.Helper()
	if acc.Outcome != htm.OK {
		r.t.Fatalf("access not OK: %+v", acc)
	}
}

func (r *rig) commit(th *htm.Thread) bool {
	r.tok.RunningOn(th.Core, th)
	_, fast := r.tok.Commit(th)
	th.Xact = nil
	return fast
}

func (r *rig) abort(th *htm.Thread) {
	r.tok.RunningOn(th.Core, th)
	r.tok.Abort(th)
	th.Xact = nil
}

func (r *rig) check() {
	r.t.Helper()
	if err := r.tok.CheckBookkeeping(); err != nil {
		r.t.Fatalf("bookkeeping: %v", err)
	}
}

const (
	blkA mem.Addr = 0x1000
	blkB mem.Addr = 0x2000
	blkC mem.Addr = 0x3000
	blkD mem.Addr = 0x4000
)

// TestFigure2Bookkeeping reproduces the paper's Figure 2: X holds one token
// on A and all tokens on B and D; Y holds one token on A; blocks not touched
// stay at (0,-). Both sides of the double-entry books must agree.
func TestFigure2Bookkeeping(t *testing.T) {
	r := newRig(t, 3)
	x := r.thread(0)
	y := r.thread(1)
	r.thread(2) // Z, idle

	r.begin(x, 10)
	r.begin(y, 20)

	if _, acc := r.load(x, blkA); acc.Outcome != htm.OK {
		t.Fatalf("X load A: %+v", acc)
	}
	r.mustOK(r.store(x, blkB, 1))
	r.mustOK(r.store(x, blkD, 2))
	if _, acc := r.load(y, blkA); acc.Outcome != htm.OK {
		t.Fatalf("Y load A: %+v", acc)
	}

	// X's log: one token for A, T for B, T for D.
	if got := x.Log.Tokens(blkA.Block()); got != 1 {
		t.Errorf("X tokens on A = %d", got)
	}
	if got := x.Log.Tokens(blkB.Block()); got != metastate.T {
		t.Errorf("X tokens on B = %d", got)
	}
	if got := x.Log.Tokens(blkD.Block()); got != metastate.T {
		t.Errorf("X tokens on D = %d", got)
	}
	// Y's log: one token for A.
	if got := y.Log.Tokens(blkA.Block()); got != 1 {
		t.Errorf("Y tokens on A = %d", got)
	}

	// Metastate: A has two debits, B is (T,X).
	pA := r.tok.probe(blkA.Block())
	if pA.sum != 2 {
		t.Errorf("A debits = %d, want 2", pA.sum)
	}
	pB := r.tok.probe(blkB.Block())
	if pB.writer != x.TID {
		t.Errorf("B writer = %d", pB.writer)
	}
	pF := r.tok.probe(0x99000 >> mem.BlockShift) // untouched block F
	if pF.sum != 0 {
		t.Errorf("F debits = %d", pF.sum)
	}
	r.check()

	r.commit(x)
	r.commit(y)
	r.check()
	if got := r.tok.probe(blkA.Block()); got.sum != 0 {
		t.Errorf("A after commits: %d", got.sum)
	}
}

func TestReadReadSharing(t *testing.T) {
	r := newRig(t, 2)
	x, y := r.thread(0), r.thread(1)
	r.begin(x, 1)
	r.begin(y, 2)
	if _, acc := r.load(x, blkA); acc.Outcome != htm.OK {
		t.Fatal("X read")
	}
	if _, acc := r.load(y, blkA); acc.Outcome != htm.OK {
		t.Fatal("Y read must coexist")
	}
	r.check()
	r.commit(x)
	r.commit(y)
	r.check()
}

func TestWriteConflictsDetected(t *testing.T) {
	r := newRig(t, 3)
	w := r.thread(0)
	rd := r.thread(1)
	w2 := r.thread(2)

	r.begin(w, 1)
	r.mustOK(r.store(w, blkA, 5))

	// Reader vs writer: conflict identifies the writer.
	r.begin(rd, 2)
	if _, acc := r.load(rd, blkA); acc.Outcome == htm.OK {
		t.Fatal("read of written block must conflict")
	} else if len(acc.Enemies) != 1 || acc.Enemies[0].TID != w.TID {
		t.Fatalf("enemy identification: %+v", acc.Enemies)
	}

	// Writer vs writer.
	r.begin(w2, 3)
	if acc := r.store(w2, blkA, 9); acc.Outcome == htm.OK {
		t.Fatal("write of written block must conflict")
	}

	// Non-transactional store vs writer (strong atomicity).
	idle := r.thread(1) // new thread, no transaction
	if acc := r.store(idle, blkA, 1); acc.Outcome == htm.OK {
		t.Fatal("non-transactional store must conflict with a writer")
	}
	r.abort(rd)
	r.abort(w2)
	r.commit(w)
	r.check()
}

func TestWriterVsReadersHardCase(t *testing.T) {
	r := newRig(t, 4)
	r1, r2, w := r.thread(0), r.thread(1), r.thread(2)
	r.begin(r1, 1)
	r.begin(r2, 2)
	r.begin(w, 3)
	r.load(r1, blkA)
	r.load(r2, blkA)

	acc := r.store(w, blkA, 7)
	if acc.Outcome == htm.OK {
		t.Fatal("write vs two readers must conflict")
	}
	if len(acc.Enemies) != 2 {
		t.Fatalf("want both readers identified (via hints or log walk), got %d", len(acc.Enemies))
	}
	r.commit(r1)
	r.commit(r2)
	// After the readers release, the write succeeds.
	r.mustOK(r.store(w, blkA, 7))
	r.commit(w)
	r.check()
}

// TestTimestampPolicy: an older writer forces younger readers to abort; a
// younger requester stalls and eventually self-aborts.
func TestTimestampPolicy(t *testing.T) {
	r := newRig(t, 3, WithRetryLimit(8))
	young := r.thread(0)
	old := r.thread(1)
	r.begin(old, 5) // older (smaller timestamp)
	r.begin(young, 50)

	r.load(young, blkA)
	acc := r.store(old, blkA, 1)
	if acc.Outcome != htm.Stall {
		t.Fatalf("older writer should stall: %+v", acc)
	}
	if young.Xact.AbortRequested {
		t.Fatal("a running (non-stalled) younger reader is not aborted")
	}
	// Once the younger transaction is itself stalled (waiting and wanted:
	// a possible deadlock cycle), the older requester forces it out.
	young.Xact.Stalling = true
	acc = r.store(old, blkA, 1)
	if acc.Outcome != htm.Stall || !young.Xact.AbortRequested {
		t.Fatalf("stalled younger holder must be told to abort: %+v", acc)
	}
	r.abort(young)
	r.mustOK(r.store(old, blkA, 1))

	// Younger requester stalls against the older holder, then self-aborts
	// past the retry limit.
	r.begin(young, 60)
	for i := 0; i < 20; i++ {
		r.tok.RunningOn(young.Core, young)
		_, acc = r.tok.Load(young, blkA, i)
		if acc.Outcome == htm.AbortSelf {
			break
		}
		if acc.Outcome == htm.OK {
			t.Fatal("young read should conflict")
		}
	}
	if acc.Outcome != htm.AbortSelf {
		t.Fatalf("young requester should eventually self-abort: %+v", acc)
	}
	r.abort(young)
	r.commit(old)
	r.check()
}

func TestAbortRestoresData(t *testing.T) {
	r := newRig(t, 1)
	x := r.thread(0)
	r.st.StoreWord(blkA, 111)
	r.st.StoreWord(blkA+8, 222)

	r.begin(x, 1)
	r.mustOK(r.store(x, blkA, 999))
	r.mustOK(r.store(x, blkA+8, 888))
	r.mustOK(r.store(x, blkB, 777))
	if r.st.Load(blkA) != 999 {
		t.Fatal("eager versioning writes in place")
	}
	r.abort(x)
	if r.st.Load(blkA) != 111 || r.st.Load(blkA+8) != 222 || r.st.Load(blkB) != 0 {
		t.Fatalf("abort did not restore: %d %d %d", r.st.Load(blkA), r.st.Load(blkA+8), r.st.Load(blkB))
	}
	r.check()
}

// TestEvictionMovesTokensHome: evicting a transactional line parks its
// tokens at home, revokes fast release, and software release reclaims them.
func TestEvictionMovesTokensHome(t *testing.T) {
	r := newRig(t, 1)
	x := r.thread(0)
	r.begin(x, 1)
	r.load(x, blkA)
	if !x.Xact.FastOK {
		t.Fatal("fresh transaction should be fast-eligible")
	}
	b := blkA.Block()
	r.ms.EvictAll(b)
	if x.Xact.FastOK {
		t.Fatal("eviction of a tokened line must revoke fast release")
	}
	if got := r.tok.HomeMeta(b); got != metastate.Read1(x.TID) {
		t.Fatalf("home after eviction: %v", got)
	}
	r.check()
	if fast := r.commit(x); fast {
		t.Fatal("commit must use software release")
	}
	if got := r.tok.HomeMeta(b); !got.IsZero() {
		t.Fatalf("home after release: %v", got)
	}
	r.check()
}

// TestReacquireAfterEviction: re-reading an evicted block acquires a second
// token (the paper's duplication case); both are released at commit.
func TestReacquireAfterEviction(t *testing.T) {
	r := newRig(t, 1)
	x := r.thread(0)
	r.begin(x, 1)
	r.load(x, blkA)
	r.ms.EvictAll(blkA.Block())
	r.load(x, blkA)
	if got := x.Xact.Tokens.Get(blkA.Block()); got != 2 {
		t.Fatalf("tokens after re-acquire = %d, want 2", got)
	}
	r.check()
	r.commit(x)
	r.check()
	if got := r.tok.probe(blkA.Block()); got.sum != 0 {
		t.Fatalf("leaked tokens: %d", got.sum)
	}
}

// TestWriterDupRefill: a writer whose line is evicted and refilled sees its
// (T,X) duplicated at home and in cache; release clears both.
func TestWriterDupRefill(t *testing.T) {
	r := newRig(t, 1)
	x := r.thread(0)
	r.begin(x, 1)
	r.mustOK(r.store(x, blkA, 1))
	r.ms.EvictAll(blkA.Block())
	if got := r.tok.HomeMeta(blkA.Block()); !got.IsWriter() {
		t.Fatalf("home after writer eviction: %v", got)
	}
	// Re-read: fission duplicates (T,X) onto the refill.
	if _, acc := r.load(x, blkA); acc.Outcome != htm.OK {
		t.Fatalf("own re-read: %+v", acc)
	}
	line := r.ms.LineAt(0, blkA.Block())
	if line == nil || !line.Meta.W {
		t.Fatalf("refilled line metabits: %v", line)
	}
	r.check()
	r.commit(x)
	r.check()
	if got := r.tok.probe(blkA.Block()); got.sum != 0 {
		t.Fatal("writer tokens leaked")
	}
	// And a rewrite after refill also works.
	r.begin(x, 2)
	r.mustOK(r.store(x, blkA, 3))
	r.ms.EvictAll(blkA.Block())
	r.mustOK(r.store(x, blkA, 4))
	r.commit(x)
	r.check()
}

// TestUpgradeAfterAnonymization: read, evict, re-read (two tokens, one
// anonymous at home after the second eviction), then write — the
// contention manager resolves the anonymous count as ours (§5.2) and the
// upgrade succeeds.
func TestUpgradeAfterAnonymization(t *testing.T) {
	r := newRig(t, 1)
	x := r.thread(0)
	r.begin(x, 1)
	r.load(x, blkA)
	r.ms.EvictAll(blkA.Block())
	r.load(x, blkA)
	r.ms.EvictAll(blkA.Block())
	// Home now holds (2,-): both tokens ours but anonymous.
	if got := r.tok.HomeMeta(blkA.Block()); got != metastate.Anon(2) {
		t.Fatalf("home: %v", got)
	}
	r.mustOK(r.store(x, blkA, 9))
	if got := x.Xact.Tokens.Get(blkA.Block()); got != metastate.T {
		t.Fatalf("tokens after upgrade: %d", got)
	}
	r.check()
	r.commit(x)
	r.check()
}

// TestPaging: tokens survive a page-out/page-in cycle (§5.3).
func TestPaging(t *testing.T) {
	r := newRig(t, 2)
	x := r.thread(0)
	y := r.thread(1)
	r.begin(x, 1)
	r.load(x, blkA)
	r.mustOK(r.store(x, blkB, 42))

	pageA := blkA.Page()
	pageB := blkB.Page()
	spA := r.tok.PageOut(pageA)
	spB := r.tok.PageOut(pageB)
	if x.Xact.FastOK {
		t.Fatal("page-out must revoke fast release")
	}
	// While paged out the home map is clean for those blocks.
	if !r.tok.HomeMeta(blkA.Block()).IsZero() {
		t.Fatal("paged-out metastate still resident")
	}
	if err := r.tok.PageIn(spA); err != nil {
		t.Fatal(err)
	}
	if err := r.tok.PageIn(spB); err != nil {
		t.Fatal(err)
	}
	if got := r.tok.HomeMeta(blkA.Block()); got != metastate.Read1(x.TID) {
		t.Fatalf("A metastate after page-in: %v", got)
	}
	r.check()

	// Conflict detection still works: another transaction writing A
	// conflicts with X's paged-and-restored token.
	r.begin(y, 2)
	if acc := r.store(y, blkA, 1); acc.Outcome == htm.OK {
		t.Fatal("restored token must still cause conflicts")
	}
	r.abort(y)
	r.commit(x)
	r.check()
}

// TestSysVSharedMemory: threads of two different "processes" (disjoint TID
// ranges, as the paper requires globally unique TIDs) share physical blocks
// with full conflict detection, since metastate is physical (§5.3).
func TestSysVSharedMemory(t *testing.T) {
	r := newRig(t, 2)
	p1 := r.thread(0) // process 1
	p2 := r.thread(1) // process 2 (different TID by construction)
	shared := mem.Addr(0x50000)

	r.begin(p1, 1)
	r.mustOK(r.store(p1, shared, 7))
	r.begin(p2, 2)
	if acc := r.store(p2, shared, 8); acc.Outcome == htm.OK {
		t.Fatal("cross-process conflict missed")
	}
	r.commit(p1)
	r.mustOK(r.store(p2, shared, 8))
	r.commit(p2)
	r.check()
	if r.st.Load(shared) != 8 {
		t.Fatalf("final value %d", r.st.Load(shared))
	}
}

// TestContextSwitchFlashORPath: direct protocol-level check of the §4.4
// switch machinery: tokens survive as R'/W' and release still finds them.
func TestContextSwitchFlashORPath(t *testing.T) {
	r := newRig(t, 1)
	a := r.thread(0)
	b := r.thread(0) // second thread on the same core

	r.begin(a, 1)
	r.load(a, blkA)
	r.mustOK(r.store(a, blkB, 5))

	// Switch a out, b in.
	r.tok.ContextSwitch(0, a, b)
	if a.Xact.FastOK {
		t.Fatal("switch must revoke fast release")
	}
	line := r.ms.LineAt(0, blkA.Block())
	if line == nil || !line.Meta.Rp {
		t.Fatalf("R bit should have become R': %v", line)
	}

	// b runs a transaction on other blocks, conflicts on A.
	r.begin(b, 2)
	if acc := r.store(b, blkA, 9); acc.Outcome == htm.OK {
		t.Fatal("switched-out tokens must still conflict")
	}
	r.load(b, blkC)
	r.commit(b)

	// Switch a back in; its commit must release the R'/W' tokens.
	r.tok.ContextSwitch(0, b, a)
	r.check()
	if fast := r.commit(a); fast {
		t.Fatal("post-switch commit cannot be fast")
	}
	r.check()
	if got := r.tok.probe(blkA.Block()); got.sum != 0 {
		t.Fatal("tokens leaked after post-switch release")
	}
}

// TestNonTransactionalReadOfReadBlock: nonconflicting strong-atomicity
// accesses proceed.
func TestStrongAtomicityNonConflicting(t *testing.T) {
	r := newRig(t, 2)
	x := r.thread(0)
	other := r.thread(1)
	r.begin(x, 1)
	r.load(x, blkA)
	// Non-transactional read of a read-shared block is fine.
	if _, acc := r.load(other, blkA); acc.Outcome != htm.OK {
		t.Fatalf("nonxact read vs reader: %+v", acc)
	}
	// Non-transactional write conflicts with the read token.
	if acc := r.store(other, blkA, 3); acc.Outcome == htm.OK {
		t.Fatal("nonxact write vs reader must conflict")
	}
	r.commit(x)
	r.mustOK(r.store(other, blkA, 3))
	r.check()
}
