package core

import (
	"fmt"

	"tokentm/internal/mem"
	"tokentm/internal/metastate"
)

// SavedPage is the metastate of a paged-out page. The paper's VM extension
// (§5.3) clears metastates on page initialization, saves them on page-out
// and restores them on page-in, borrowing the AS/400's tagged-storage
// technique. Transactions whose tokens live on the page keep their log
// entries; the tokens travel to disk with the metastate and are intact
// after the page returns.
type SavedPage struct {
	Page  mem.PageAddr
	Metas map[mem.BlockAddr]metastate.Packed
	// OverflowCounts carries the software-maintained counts of any
	// LimitLESS-overflowed blocks on the page.
	OverflowCounts map[mem.BlockAddr]uint32
}

// PageOut evicts every cached copy of the page's blocks (their metastate
// fuses home via the non-silent eviction path, which also revokes affected
// transactions' fast-release eligibility) and packs the home metastate into
// the 16-metabit on-disk representation.
func (t *TokenTM) PageOut(p mem.PageAddr) *SavedPage {
	sp := &SavedPage{
		Page:           p,
		Metas:          make(map[mem.BlockAddr]metastate.Packed),
		OverflowCounts: make(map[mem.BlockAddr]uint32),
	}
	first := p.Block()
	for i := 0; i < mem.BlocksPerPage; i++ {
		b := first + mem.BlockAddr(i)
		t.ms.EvictAll(b)
		m := t.home[b]
		if m.IsZero() {
			continue
		}
		packed := t.overflow.PackInto(b, m)
		sp.Metas[b] = packed
		if packed.IsOverflow() {
			if n, ok := t.overflow.Count(b); ok {
				sp.OverflowCounts[b] = n
			}
			t.overflow.Set(b, 0)
		}
		delete(t.home, b)
	}
	return sp
}

// PageIn restores a saved page's metastate, walking the page's blocks in
// ascending address order (Metas is a map; iterating it directly would make
// the restore order — and error selection — depend on map iteration order).
func (t *TokenTM) PageIn(sp *SavedPage) error {
	first := sp.Page.Block()
	for i := 0; i < mem.BlocksPerPage; i++ {
		b := first + mem.BlockAddr(i)
		packed, ok := sp.Metas[b]
		if !ok {
			continue
		}
		if packed.IsOverflow() {
			t.overflow.Set(b, sp.OverflowCounts[b])
		}
		m, err := metastate.Unpack(packed, t.overflow, b)
		if err != nil {
			return fmt.Errorf("page-in %v: %w", sp.Page, err)
		}
		if !m.Valid() {
			return fmt.Errorf("page-in %v: invalid metastate %v for %v", sp.Page, m, b)
		}
		t.setHome(b, m)
	}
	return nil
}
