// Package core implements TokenTM, the paper's primary contribution: an
// unbounded HTM whose conflict detection counts per-block transactional
// tokens with double-entry bookkeeping (§3), implemented over an unmodified
// MESI directory protocol by piggybacking metastate on coherence messages
// with metastate fission/fusion (§4.2), in-memory metabits (§4.3), and fast
// token release (§4.4).
//
// Token placement invariant maintained by this implementation: a thread's
// tokens for block b live either (a) in its own core's L1 line for b — as R
// or W bits, as R'/W' bits after a context switch, or folded into the
// anonymous R+ count — or (b) in the block's home metastate (after the line
// was evicted or invalidated, whose acks carry metastate home). Conflict
// probes fuse the home metastate with every L1 copy's metabits, exactly the
// fusion the hardware performs with invalidation-ack piggybacks.
package core

import (
	"fmt"
	"math/bits"
	"sort"

	"tokentm/internal/cache"
	"tokentm/internal/coherence"
	"tokentm/internal/htm"
	"tokentm/internal/mem"
	"tokentm/internal/metastate"
	"tokentm/internal/tmlog"
)

// TokenTM is the token-based HTM system. It implements htm.System and
// coherence.Listener.
type TokenTM struct {
	name        string
	fastRelease bool
	retryLimit  int
	// mutation, when not MutNone, disables one protocol rule so the
	// schedule explorer can prove it detects the resulting violations.
	mutation Mutation

	ms    *coherence.MemSys
	store *mem.Store

	// home is the metastate at the block's home (memory/L2 in this
	// model); blocks absent from the map are (0,-).
	home     map[mem.BlockAddr]metastate.Meta
	overflow *metastate.OverflowTable

	byTID   map[mem.TID]*htm.Thread
	threads []*htm.Thread // registered threads, sorted by TID
	running []*htm.Thread // thread currently on each core

	// Scratch storage reused by probe and enemy enumeration so the hot
	// paths allocate nothing. Results aliasing these buffers (probeResult
	// readers, enemiesOf slices) are valid only until the next probe or
	// enemy enumeration on this machine — the simulator serializes all
	// accesses, and every consumer finishes before the next access starts.
	readerScratch []mem.TID
	enemyScratch  []*htm.Xact
	tidScratch    []mem.TID

	// Metrics aggregates evaluation counters.
	Metrics htm.Metrics
	// FastCommits and SlowCommits count commit kinds (Table 6).
	FastCommits, SlowCommits uint64
}

var (
	_ htm.System         = (*TokenTM)(nil)
	_ coherence.Listener = (*TokenTM)(nil)
)

// Option configures the TokenTM system.
type Option func(*TokenTM)

// WithoutFastRelease builds the paper's TokenTM_NoFast variant: every commit
// releases tokens in software.
func WithoutFastRelease() Option {
	return func(t *TokenTM) {
		t.fastRelease = false
		t.name = "TokenTM_NoFast"
	}
}

// WithRetryLimit sets how many stalled retries a transaction tolerates
// against an older enemy before aborting itself.
func WithRetryLimit(n int) Option {
	return func(t *TokenTM) { t.retryLimit = n }
}

// New builds a TokenTM system over the given memory system and value store,
// and attaches itself as the coherence metastate listener.
func New(ms *coherence.MemSys, store *mem.Store, opts ...Option) *TokenTM {
	t := &TokenTM{
		name:        "TokenTM",
		fastRelease: true,
		retryLimit:  64,
		ms:          ms,
		store:       store,
		home:        make(map[mem.BlockAddr]metastate.Meta),
		overflow:    metastate.NewOverflowTable(),
		byTID:       make(map[mem.TID]*htm.Thread),
		running:     make([]*htm.Thread, ms.NumCores),
	}
	for _, o := range opts {
		o(t)
	}
	ms.SetListener(t)
	return t
}

// Name returns the variant name.
func (t *TokenTM) Name() string { return t.name }

// Stats exposes the variant's metrics.
func (t *TokenTM) Stats() *htm.Metrics { return &t.Metrics }

// Register introduces a thread, keeping the thread list sorted by TID so
// every walk over "all threads" (hard-case lookups, anonymous-token
// revocation, bookkeeping checks) visits them in a fixed order.
func (t *TokenTM) Register(th *htm.Thread) {
	i := sort.Search(len(t.threads), func(i int) bool { return t.threads[i].TID >= th.TID })
	if i < len(t.threads) && t.threads[i].TID == th.TID {
		t.threads[i] = th
	} else {
		t.threads = append(t.threads, nil)
		copy(t.threads[i+1:], t.threads[i:])
		t.threads[i] = th
	}
	t.byTID[th.TID] = th
}

// RunningOn records which thread occupies a core.
func (t *TokenTM) RunningOn(core int, th *htm.Thread) { t.running[core] = th }

func (t *TokenTM) curTID(core int) mem.TID {
	if th := t.running[core]; th != nil {
		return th.TID
	}
	return mem.NoTID
}

// HomeMeta returns the metastate stored at block b's home.
func (t *TokenTM) HomeMeta(b mem.BlockAddr) metastate.Meta { return t.home[b] }

func (t *TokenTM) setHome(b mem.BlockAddr, m metastate.Meta) {
	if m.IsZero() {
		delete(t.home, b)
		return
	}
	t.home[b] = m
}

func mustFuse(a, b metastate.Meta) metastate.Meta {
	m, err := metastate.Fuse(a, b)
	if err != nil {
		panic(fmt.Sprintf("tokentm: bookkeeping invariant violated: %v", err))
	}
	return m
}

func mustL1(m metastate.Meta, cur mem.TID) metastate.L1Meta {
	l, err := metastate.L1FromMeta(m, cur)
	if err != nil {
		panic(fmt.Sprintf("tokentm: %v", err))
	}
	return l
}

// CopyCreated implements coherence.Listener: metastate arrives with data.
// Shared fills perform metastate fission at the home copy; exclusive fills
// (write misses and upgrades) receive home's metastate fused with the
// invalidation acks, which CopyLost has already folded home.
func (t *TokenTM) CopyCreated(core int, b mem.BlockAddr, line *cache.Line, info coherence.FillInfo) {
	cur := t.curTID(core)
	if info.Exclusive {
		fused := mustFuse(t.home[b], line.Meta.Logical())
		t.setHome(b, metastate.Zero)
		line.Meta = mustL1(fused, cur)
		return
	}
	kept, newCopy := metastate.Fission(t.home[b])
	t.setHome(b, kept)
	if t.mutation == MutNoFissionWriter {
		newCopy = metastate.Zero
	}
	line.Meta = mustL1(newCopy, cur)
}

// CopyLost implements coherence.Listener: a copy's metastate travels home on
// the (non-silent) eviction or invalidation ack. Losing a line that carried
// a transaction's tokens revokes that transaction's fast-release
// eligibility (§4.4).
func (t *TokenTM) CopyLost(core int, b mem.BlockAddr, lmeta metastate.L1Meta, reason coherence.LossReason) {
	m := lmeta.Logical()
	if !m.IsZero() {
		t.setHome(b, mustFuse(t.home[b], m))
	}
	if lmeta.R || lmeta.W {
		if th := t.running[core]; th != nil && th.InXact() {
			th.Xact.FastOK = false
		}
	}
	if lmeta.Rp || lmeta.Wp {
		if th := t.byTID[mem.TID(lmeta.Attr)]; th != nil && th.InXact() {
			th.Xact.FastOK = false
		}
	}
	if lmeta.RPlus {
		// Anonymous tokens: conservatively revoke every transaction
		// holding tokens on this block (rare; only after context
		// switches fold counts).
		for _, th := range t.threads {
			if th.InXact() && th.Xact.Tokens.Get(b) > 0 {
				th.Xact.FastOK = false
			}
		}
	}
}

// probeResult summarizes the fused global metastate of a block. The readers
// slice is backed by the system's scratch buffer: it is valid only until the
// next probe.
type probeResult struct {
	sum     uint32
	writer  mem.TID   // NoTID if no writer
	readers []mem.TID // identified single readers (possibly with duplicates)
	anon    uint32    // anonymous reader tokens
}

// collect folds one metastate copy into the probe summary.
//
//tokentm:allocfree
func (p *probeResult) collect(b mem.BlockAddr, m metastate.Meta) {
	switch {
	case m.IsZero():
	case m.IsWriter():
		if p.writer != mem.NoTID && p.writer != m.TID {
			panic(fmt.Sprintf("tokentm: two writers on %v: X%d and X%d", b, p.writer, m.TID))
		}
		p.writer = m.TID
	case m.IsIdentified():
		p.readers = append(p.readers, m.TID)
	default:
		p.anon += m.Sum
	}
}

// probe fuses the home metastate with every L1 copy's metabits — the same
// information the hardware requester assembles from the data response and
// invalidation-ack piggybacks (§5.2). It runs on every transactional miss
// and every store, so it allocates nothing: sharers are walked as a bitmask
// and the reader list reuses the system's scratch buffer.
//
//tokentm:allocfree
func (t *TokenTM) probe(b mem.BlockAddr) probeResult {
	p := probeResult{readers: t.readerScratch[:0]}
	p.collect(b, t.home[b])
	for mask := t.ms.SharerMask(b); mask != 0; mask &= mask - 1 {
		if line := t.ms.LineAt(bits.TrailingZeros32(mask), b); line != nil {
			p.collect(b, line.Meta.Logical())
		}
	}
	t.readerScratch = p.readers[:0]
	if p.writer != mem.NoTID {
		p.sum = metastate.T
		if p.anon > 0 || len(p.readers) > 0 {
			panic(fmt.Sprintf("tokentm: writer X%d coexists with readers on %v", p.writer, b))
		}
	} else {
		p.sum = p.anon + uint32(len(p.readers))
	}
	return p
}

// enemiesOf maps identified TIDs (excluding self) to their active
// transactions, deduplicating without allocation (probe reader lists are a
// handful of entries, so the quadratic scan beats a map). The returned slice
// reuses scratch storage: it is valid only until the next enemy enumeration.
//
//tokentm:allocfree
func (t *TokenTM) enemiesOf(tids []mem.TID, self mem.TID) []*htm.Xact {
	out := t.enemyScratch[:0]
	for i, id := range tids {
		if id == self || id == mem.NoTID || containsTID(tids[:i], id) {
			continue
		}
		if th := t.byTID[id]; th != nil && th.InXact() {
			out = append(out, th.Xact)
		}
	}
	t.enemyScratch = out
	return out
}

// enemiesOf1 is enemiesOf for a single candidate TID.
//
//tokentm:allocfree
func (t *TokenTM) enemiesOf1(id, self mem.TID) []*htm.Xact {
	t.tidScratch = append(t.tidScratch[:0], id)
	return t.enemiesOf(t.tidScratch, self)
}

func containsTID(tids []mem.TID, id mem.TID) bool {
	for _, t := range tids {
		if t == id {
			return true
		}
	}
	return false
}

// hardCaseLookup implements §5.2's hardest case: when anonymous reader
// tokens hide the enemy set, the contention manager walks the logs of
// active transactions — in sorted TID order, so the walk (and the enemy
// list it builds) is identical across identical runs. The returned latency
// is proportional to the log records scanned; the slice reuses the enemy
// scratch buffer.
//
//tokentm:allocfree
func (t *TokenTM) hardCaseLookup(b mem.BlockAddr, self mem.TID) ([]*htm.Xact, mem.Cycle) {
	t.Metrics.HardCaseLookups++
	enemies := t.enemyScratch[:0]
	var lat mem.Cycle
	for _, th := range t.threads {
		if !th.InXact() || th.TID == self {
			continue
		}
		lat += mem.Cycle(th.Log.Len()) * htm.LogWalkPerRecordCycles
		if th.Xact.Tokens.Get(b) > 0 {
			enemies = append(enemies, th.Xact)
		}
	}
	t.enemyScratch = enemies
	return enemies, lat
}

// conflict traps to the software contention manager and applies the
// timestamp policy, recording abort attribution (winner, block, kind) on
// every loser.
func (t *TokenTM) conflict(req *htm.Xact, b mem.BlockAddr, enemies []*htm.Xact, retries int, lat mem.Cycle, kind htm.ConflictKind) htm.Access {
	t.Metrics.Conflicts++
	t.Metrics.CountConflict(kind)
	lat += htm.ConflictTrapCycles
	abort, dec := htm.ResolveTimestamp(req, enemies, retries, t.retryLimit)
	htm.ApplyResolution(req, enemies, abort, dec, b, kind)
	if dec == htm.DecideAbortSelf {
		return htm.Access{Outcome: htm.AbortSelf, Latency: lat, Enemies: enemies, Kind: kind}
	}
	t.Metrics.Stalls++
	return htm.Access{Outcome: htm.Stall, Latency: lat, Enemies: enemies, Kind: kind}
}

// logWrite simulates appending a record to the thread's in-memory log. The
// cache state is updated with real accesses, but the core only stalls for a
// fraction of the raw miss time: log stores drain through the store buffer
// off the critical path. The residual stall is the transaction's log-stall
// time.
func (t *TokenTM) logWrite(th *htm.Thread, addr mem.Addr, size int) mem.Cycle {
	var raw mem.Cycle
	first := addr.Block()
	last := (addr + mem.Addr(size) - 1).Block()
	for b := first; b <= last; b++ {
		raw += t.ms.Access(th.Core, b, true)
	}
	lat := coherence.L1HitCycles
	if raw > coherence.L1HitCycles {
		stall := (raw - coherence.L1HitCycles) / htm.LogWriteOverlap
		lat += stall
		if th.InXact() {
			th.Xact.LogStall += stall
		}
	}
	return lat
}

// Begin starts a transaction attempt; the simulator has already installed
// th.Xact.
func (t *TokenTM) Begin(th *htm.Thread, now mem.Cycle) mem.Cycle {
	return htm.BeginCycles
}

// Load performs a transactional (or strongly atomic non-transactional) read.
//
// When a copy of the block is already resident, the conflict check is purely
// local: metastate fission guarantees a transactional writer's (T,X) is
// replicated onto every copy, so readers examine and modify only their local
// metabits (§4.2). On a miss, the requester inspects the metastate fused
// from the data response, modeled here by probing the global state before
// the coherence transition.
func (t *TokenTM) Load(th *htm.Thread, addr mem.Addr, retries int) (uint64, htm.Access) {
	b := addr.Block()
	core := th.Core
	x := th.Xact
	if x != nil && x.AbortRequested {
		return 0, htm.Access{Outcome: htm.AbortSelf}
	}

	line := t.ms.LineAt(core, b)
	if line == nil {
		// Miss: the requester sees the metastate arriving with the data;
		// model the check on the fused global state before the fill.
		p := t.probe(b)
		self := mem.NoTID
		if x != nil {
			self = x.TID
		}
		if p.writer != mem.NoTID && p.writer != self {
			enemies := t.enemiesOf1(p.writer, self)
			return 0, t.conflict(x, b, enemies, retries, coherence.L1HitCycles, htm.KindReadVsWriter)
		}
		lat := t.ms.Access(core, b, false)
		line = t.ms.LineAt(core, b)
		if x == nil {
			return t.store.Load(addr), htm.Access{Latency: lat}
		}
		lat += t.acquireRead(th, line, b)
		return t.store.Load(addr), htm.Access{Latency: lat}
	}

	// Resident copy: local metabits carry the whole truth about writers.
	if x == nil {
		if line.Meta.Wp {
			enemies := t.enemiesOf1(mem.TID(line.Meta.Attr), mem.NoTID)
			return 0, t.conflict(nil, b, enemies, retries, coherence.L1HitCycles, htm.KindNonXact)
		}
		lat := t.ms.Access(core, b, false)
		return t.store.Load(addr), htm.Access{Latency: lat}
	}
	if line.Meta.Wp && mem.TID(line.Meta.Attr) != x.TID {
		enemies := t.enemiesOf1(mem.TID(line.Meta.Attr), x.TID)
		return 0, t.conflict(x, b, enemies, retries, coherence.L1HitCycles, htm.KindReadVsWriter)
	}
	lat := t.ms.Access(core, b, false)
	lat += t.acquireRead(th, line, b)
	return t.store.Load(addr), htm.Access{Latency: lat}
}

// acquireRead applies the local read-acquire rules and logs any new token.
func (t *TokenTM) acquireRead(th *htm.Thread, line *cache.Line, b mem.BlockAddr) mem.Cycle {
	x := th.Xact
	res := line.Meta.AcquireRead(x.TID)
	if !res.OK {
		panic(fmt.Sprintf("tokentm: read acquire failed after pre-check on %v: %+v", b, res))
	}
	var lat mem.Cycle
	if res.TokensAcquired > 0 {
		x.Tokens.Add(b, res.TokensAcquired)
		if t.mutation != MutSkipLogCredit {
			rAddr, rSize := th.Log.AppendToken(b, res.TokensAcquired)
			lat += t.logWrite(th, rAddr, rSize)
		}
	}
	x.ReadSet[b] = struct{}{}
	return lat
}

// Store performs a transactional (or strongly atomic non-transactional)
// write.
func (t *TokenTM) Store(th *htm.Thread, addr mem.Addr, val uint64, retries int) htm.Access {
	b := addr.Block()
	core := th.Core
	x := th.Xact
	if x != nil && x.AbortRequested {
		return htm.Access{Outcome: htm.AbortSelf}
	}

	// Fast paths on a writable resident copy. Holding M/E means no other
	// core has a copy, and any foreign tokens would have blocked the
	// transition that granted us write permission, so the local metabits
	// are authoritative.
	if line := t.ms.LineAt(core, b); line != nil && line.State.CanWrite() {
		if x != nil && line.Meta.W {
			lat := t.ms.Access(core, b, true)
			t.store.StoreWord(addr, val)
			return htm.Access{Latency: lat}
		}
		if x == nil && line.Meta.IsZero() {
			lat := t.ms.Access(core, b, true)
			t.store.StoreWord(addr, val)
			return htm.Access{Latency: lat}
		}
	}

	p := t.probe(b)
	if x == nil {
		// Strong atomicity: a non-transactional store conflicts with any
		// transactional tokens. A writer excludes readers (probe enforces
		// this), so the candidate set is exactly one of the two — never
		// readers plus a NoTID writer sentinel.
		if p.sum > 0 {
			var enemies []*htm.Xact
			if p.writer != mem.NoTID {
				enemies = t.enemiesOf1(p.writer, mem.NoTID)
			} else {
				enemies = t.enemiesOf(p.readers, mem.NoTID)
			}
			if uint32(len(enemies)) < minNonWriter(p) {
				more, walkLat := t.hardCaseLookup(b, mem.NoTID)
				enemies = more
				return t.conflict(nil, b, enemies, retries, coherence.L1HitCycles+walkLat, htm.KindNonXact)
			}
			return t.conflict(nil, b, enemies, retries, coherence.L1HitCycles, htm.KindNonXact)
		}
		lat := t.ms.Access(core, b, true)
		t.store.StoreWord(addr, val)
		return htm.Access{Latency: lat}
	}

	mine := x.Tokens.Get(b)
	var needed uint32
	switch {
	case p.writer == x.TID:
		needed = 0
	case p.writer != mem.NoTID:
		return t.conflict(x, b, t.enemiesOf1(p.writer, x.TID), retries, coherence.L1HitCycles, htm.KindWriteVsWriter)
	default:
		others := p.sum - mine
		if others > 0 {
			enemies := t.enemiesOf(p.readers, x.TID)
			var walkLat mem.Cycle
			if uint32(len(enemies)) < others {
				// Unknown readers hide in anonymous counts: §5.2's
				// hardest case.
				enemies, walkLat = t.hardCaseLookup(b, x.TID)
			}
			return t.conflict(x, b, enemies, retries, coherence.L1HitCycles+walkLat, htm.KindWriteVsReaders)
		}
		needed = metastate.T - mine
	}

	lat := t.ms.Access(core, b, true)
	line := t.ms.LineAt(core, b)
	// The pre-check proved every outstanding debit is ours, so the write
	// takes all remaining tokens; the contention manager resolves the
	// anonymous-count-is-all-mine case in software (§5.2). The coherence
	// upgrade folded every other copy's metastate home (CopyLost), and the
	// (T,X) metabits we set now assert all T debits locally — so the homed
	// share (e.g. our own reader token stranded by an earlier eviction or
	// page-out) is absorbed into the claim, not left to double-count.
	t.setHome(b, metastate.Zero)
	line.Meta = metastate.L1Meta{W: true, Attr: uint16(x.TID)}

	if _, seen := x.WriteSet[b]; !seen {
		old := t.readBlock(b)
		rAddr, rSize := th.Log.AppendData(b, needed, old)
		lat += t.logWrite(th, rAddr, rSize)
		x.WriteSet[b] = struct{}{}
	} else if needed != 0 {
		panic("tokentm: rewritten block missing tokens")
	}
	x.Tokens.Add(b, needed)
	t.store.StoreWord(addr, val)
	return htm.Access{Latency: lat}
}

// minNonWriter returns the number of token holders a non-transactional
// conflict must identify (the writer counts as one, readers as their sum).
func minNonWriter(p probeResult) uint32 {
	if p.writer != mem.NoTID {
		return 1
	}
	return p.sum
}

func (t *TokenTM) readBlock(b mem.BlockAddr) (out [mem.WordsPerBlock]uint64) {
	base := b.Addr()
	for i := range out {
		out[i] = t.store.Load(base + mem.Addr(i*mem.WordBytes))
	}
	return out
}

func (t *TokenTM) writeBlock(b mem.BlockAddr, words [mem.WordsPerBlock]uint64) {
	base := b.Addr()
	for i, w := range words {
		t.store.StoreWord(base+mem.Addr(i*mem.WordBytes), w)
	}
}

// Commit ends th's transaction. If fast release is enabled and still legal,
// tokens are returned by flash-clearing the L1's R/W columns and resetting
// the log pointer, in constant time. Otherwise the software handler walks
// the log, releasing tokens block by block with real (simulated) memory
// accesses.
//
//tokentm:allocfree
func (t *TokenTM) Commit(th *htm.Thread) (mem.Cycle, bool) {
	x := th.Xact
	if t.fastRelease && x.FastOK {
		t.ms.L1s[th.Core].FlashClearRW()
		th.Log.Reset()
		x.Tokens.Reset()
		x.Active = false
		t.FastCommits++
		return htm.FastCommitCycles, true
	}
	lat := t.softwareRelease(th)
	x.Active = false
	t.SlowCommits++
	return lat, false
}

// softwareRelease walks the log, charging the trap handler per record plus
// the memory accesses to read the log and touch each block's metastate.
//
//tokentm:allocfree
func (t *TokenTM) softwareRelease(th *htm.Thread) mem.Cycle {
	x := th.Xact
	core := th.Core
	var lat mem.Cycle
	offset := 0
	for _, rec := range th.Log.Records() {
		lat += htm.ReleaseRecordCycles
		lat += t.ms.Access(core, (th.Log.Base() + mem.Addr(offset)).Block(), false)
		offset += rec.Bytes()
	}
	// Release in ascending block order — TokenSet keeps its block list
	// sorted, so the simulated access sequence (and therefore cache state
	// and cycle totals) is identical across identical runs.
	for _, b := range x.Tokens.Blocks() {
		lat += t.ms.Access(core, b, false)
		t.releaseBlock(th, b, x.Tokens.Get(b))
	}
	th.Log.Reset()
	x.Tokens.Reset()
	return lat
}

// releaseBlock credits total tokens for block b back to the metastate,
// looking first in the thread's own L1 line (R/W bits, post-context-switch
// R'/W' bits, anonymous R+ counts) and then at home. Anonymous tokens are
// fungible, so greedy decrementing preserves the bookkeeping invariant.
//
//tokentm:allocfree
func (t *TokenTM) releaseBlock(th *htm.Thread, b mem.BlockAddr, total uint32) {
	me := th.TID
	line := t.ms.LineAt(th.Core, b)

	if total == metastate.T {
		// Writer release: clear every copy of (T,me) — the line and a
		// possible home duplicate created by fission.
		cleared := false
		if line != nil && (line.Meta.W || (line.Meta.Wp && mem.TID(line.Meta.Attr) == me)) {
			line.Meta.W = false
			line.Meta.Wp = false
			cleared = true
		}
		if h := t.home[b]; h.IsWriter() && h.TID == me {
			t.setHome(b, metastate.Zero)
			cleared = true
		}
		if !cleared {
			panic(fmt.Sprintf("tokentm: writer release found no tokens for X%d on %v", me, b))
		}
		return
	}

	remaining := total
	if line != nil && remaining > 0 {
		if line.Meta.R {
			line.Meta.R = false
			remaining--
		} else if line.Meta.Rp && !line.Meta.RPlus && mem.TID(line.Meta.Attr) == me {
			line.Meta.Rp = false
			remaining--
		}
		if remaining > 0 && line.Meta.RPlus {
			take := remaining
			if uint32(line.Meta.Attr) < take {
				take = uint32(line.Meta.Attr)
			}
			line.Meta.Attr -= uint16(take)
			if line.Meta.Attr == 0 {
				line.Meta.RPlus = false
			}
			remaining -= take
		}
	}
	if remaining > 0 {
		h := t.home[b]
		switch {
		case h.IsIdentified() && h.TID == me && h.Sum == 1:
			t.setHome(b, metastate.Zero)
			remaining--
		case !h.IsWriter() && h.TID == mem.NoTID && h.Sum > 0:
			take := remaining
			if h.Sum < take {
				take = h.Sum
			}
			t.setHome(b, metastate.Anon(h.Sum-take))
			remaining -= take
		}
	}
	if remaining > 0 {
		panic(fmt.Sprintf("tokentm: release lost %d tokens for X%d on %v", remaining, me, b))
	}
}

// Abort unrolls the transaction: the log is walked in reverse restoring
// pre-transaction data, then all tokens are released.
//
//tokentm:allocfree
func (t *TokenTM) Abort(th *htm.Thread) mem.Cycle {
	x := th.Xact
	core := th.Core
	var lat mem.Cycle
	offset := th.Log.Bytes()
	// Walk newest-first: restore old data for store records.
	recs := th.Log.Records()
	for i := len(recs) - 1; i >= 0; i-- {
		rec := recs[i]
		offset -= rec.Bytes()
		lat += htm.AbortRecordCycles
		lat += t.ms.Access(core, (th.Log.Base() + mem.Addr(offset)).Block(), false)
		if rec.Kind == tmlog.DataRecord {
			lat += t.ms.Access(core, rec.Block, true)
			t.writeBlock(rec.Block, rec.Old)
		}
	}
	// Ascending block order, matching softwareRelease's determinism rule.
	for _, b := range x.Tokens.Blocks() {
		lat += t.ms.Access(core, b, false)
		t.releaseBlock(th, b, x.Tokens.Get(b))
	}
	th.Log.Reset()
	x.Tokens.Reset()
	x.Active = false
	t.Metrics.Aborts++
	return lat
}

// ContextSwitch swaps threads on a core using the constant-time flash-OR:
// the departing thread's R/W bits become R'/W' bits, freeing the columns for
// the incoming thread, at the cost of the departing transaction's
// fast-release eligibility (§4.4).
func (t *TokenTM) ContextSwitch(core int, out, in *htm.Thread) mem.Cycle {
	t.ms.L1s[core].FlashOR()
	if out != nil && out.InXact() {
		out.Xact.FastOK = false
	}
	t.running[core] = in
	return htm.CtxSwitchCycles
}
