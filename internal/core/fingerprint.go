package core

import (
	"tokentm/internal/statehash"
)

// FingerprintTo mixes TokenTM's protocol state: the home metastate image (in
// ascending block order; setHome deletes zero entries, so presence is
// canonical), the LimitLESS overflow table, and which transactional thread
// occupies each core (curTID drives how the R/W columns are interpreted).
// Metrics and commit counters are measurement, not protocol state.
func (t *TokenTM) FingerprintTo(h *statehash.Hash) {
	h.Mark('H')
	blocks := sortedBlocks(t.home)
	h.Int(len(blocks))
	for _, b := range blocks {
		h.U64(uint64(b))
		t.home[b].FingerprintTo(h)
	}
	t.overflow.FingerprintTo(h)
	h.Mark('R')
	for core := range t.running {
		h.U16(uint16(t.curTID(core)))
	}
}
