package core

import (
	"fmt"
	"sort"

	"tokentm/internal/cache"
	"tokentm/internal/mem"
	"tokentm/internal/metastate"
)

// sortedBlocks returns m's keys in ascending block order, so checker walks
// (and therefore which violation is reported first when several coexist)
// are deterministic.
func sortedBlocks[V any](m map[mem.BlockAddr]V) []mem.BlockAddr {
	keys := make([]mem.BlockAddr, 0, len(m))
	for b := range m {
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// CheckBookkeeping verifies TokenTM's double-entry bookkeeping invariant
// (§3.2): for every block, the tokens debited from the (distributed)
// metastate equal the tokens credited to the active transactions' logs.
// A writer's (T,X) may legally appear on several copies (fission replicates
// it); it is counted once.
//
// The checker is O(total metastate), intended for tests and debug builds.
func (t *TokenTM) CheckBookkeeping() error {
	debits := make(map[mem.BlockAddr]uint32)
	writers := make(map[mem.BlockAddr]mem.TID)

	addMeta := func(b mem.BlockAddr, m metastate.Meta) error {
		switch {
		case m.IsZero():
		case m.IsWriter():
			if w, ok := writers[b]; ok && w != m.TID {
				return fmt.Errorf("block %v: two writers X%d and X%d", b, w, m.TID)
			}
			writers[b] = m.TID
		default:
			debits[b] += m.Sum
		}
		return nil
	}

	for _, b := range sortedBlocks(t.home) {
		if err := addMeta(b, t.home[b]); err != nil {
			return err
		}
	}
	for c := range t.ms.L1s {
		var err error
		t.ms.L1s[c].VisitValid(func(l *cache.Line) {
			if !l.Meta.Valid() {
				err = fmt.Errorf("core %d block %v: invalid metabits %v", c, l.Block, l.Meta)
				return
			}
			if e := addMeta(l.Block, l.Meta.Logical()); e != nil && err == nil {
				err = e
			}
		})
		if err != nil {
			return err
		}
	}
	for _, b := range sortedBlocks(writers) {
		if debits[b] != 0 {
			return fmt.Errorf("block %v: writer X%d coexists with %d reader tokens", b, writers[b], debits[b])
		}
		debits[b] = metastate.T
	}

	credits := make(map[mem.BlockAddr]uint32)
	for _, th := range t.threads {
		if !th.InXact() {
			if th.Log.Len() != 0 {
				return fmt.Errorf("thread X%d: %d log records with no active transaction", th.TID, th.Log.Len())
			}
			continue
		}
		perLog := make(map[mem.BlockAddr]uint32)
		for _, rec := range th.Log.Records() {
			perLog[rec.Block] += rec.Tokens
			credits[rec.Block] += rec.Tokens
		}
		var err error
		th.Xact.Tokens.Visit(func(b mem.BlockAddr, n uint32) {
			if perLog[b] != n && err == nil {
				err = fmt.Errorf("thread X%d block %v: token index %d != log credits %d", th.TID, b, n, perLog[b])
			}
		})
		if err != nil {
			return err
		}
		for _, b := range sortedBlocks(perLog) {
			if th.Xact.Tokens.Get(b) != perLog[b] {
				return fmt.Errorf("thread X%d block %v: log credits %d missing from index", th.TID, b, perLog[b])
			}
		}
	}

	for _, b := range sortedBlocks(debits) {
		if credits[b] != debits[b] {
			return fmt.Errorf("block %v: metastate debits %d != log credits %d", b, debits[b], credits[b])
		}
	}
	for _, b := range sortedBlocks(credits) {
		if debits[b] != credits[b] {
			return fmt.Errorf("block %v: log credits %d != metastate debits %d", b, credits[b], debits[b])
		}
	}
	return nil
}
