package harness_test

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tokentm/internal/harness"
)

// fakeRun derives a deterministic Outcome from the job parameters alone,
// so tests can predict results without a simulator.
func fakeRun(j harness.Job) (harness.Outcome, error) {
	c := uint64(len(j.Workload))*1000 + uint64(j.Seed)
	return harness.Outcome{Cycles: c, Commits: c / 10, Aborts: c % 7}, nil
}

func grid(n int) []harness.Job {
	var jobs []harness.Job
	for i := 0; i < n; i++ {
		jobs = append(jobs, harness.Job{Workload: fmt.Sprintf("w%d", i), Variant: "V", Scale: 0.5, Seed: int64(i)})
	}
	return jobs
}

func TestSweepReturnsResultsInJobOrder(t *testing.T) {
	jobs := grid(32)
	r := &harness.Runner{Run: fakeRun, Parallel: 8}
	results := r.Sweep(jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, res := range results {
		if res.Job != jobs[i] {
			t.Fatalf("result %d is for job %v, want %v", i, res.Job, jobs[i])
		}
		want, _ := fakeRun(jobs[i])
		if !reflect.DeepEqual(res.Outcome, want) {
			t.Fatalf("result %d outcome %+v, want %+v", i, res.Outcome, want)
		}
		if !res.OK() || res.WallNS < 0 {
			t.Fatalf("result %d not ok: %+v", i, res)
		}
	}
	if r.Executed() != int64(len(jobs)) {
		t.Fatalf("executed %d, want %d", r.Executed(), len(jobs))
	}
}

func TestSweepIsolatesPanics(t *testing.T) {
	run := func(j harness.Job) (harness.Outcome, error) {
		if j.Seed == 3 {
			panic("simulated machine exploded")
		}
		if j.Seed == 5 {
			return harness.Outcome{}, fmt.Errorf("plain failure")
		}
		return fakeRun(j)
	}
	r := &harness.Runner{Run: run, Parallel: 4}
	results := r.Sweep(grid(8))
	for i, res := range results {
		switch i {
		case 3:
			if res.OK() || !strings.Contains(res.Err, "simulated machine exploded") {
				t.Fatalf("panicking job: %+v", res)
			}
			if !strings.Contains(res.Stack, "goroutine") {
				t.Fatalf("no stack attached: %q", res.Stack)
			}
		case 5:
			if res.OK() || res.Err != "plain failure" || res.Stack != "" {
				t.Fatalf("failing job: %+v", res)
			}
		default:
			if !res.OK() {
				t.Fatalf("healthy job %d failed: %s", i, res.Err)
			}
		}
	}
}

// TestCacheMakesSweepsResumable pre-populates the cache with part of the
// grid and counts executed jobs on the re-run: only the missing jobs
// execute, and served results are marked cached.
func TestCacheMakesSweepsResumable(t *testing.T) {
	jobs := grid(10)
	cache := &harness.Cache{Dir: t.TempDir(), Version: "v-test"}

	// First, an "interrupted" sweep that completed only the first 6 jobs.
	first := &harness.Runner{Run: fakeRun, Parallel: 2, Cache: cache}
	first.Sweep(jobs[:6])
	if first.Executed() != 6 {
		t.Fatalf("first sweep executed %d", first.Executed())
	}

	// The re-run of the full grid executes only the 4 missing jobs.
	second := &harness.Runner{Run: fakeRun, Parallel: 2, Cache: cache}
	results := second.Sweep(jobs)
	if second.Executed() != 4 {
		t.Fatalf("resumed sweep executed %d jobs, want 4", second.Executed())
	}
	for i, res := range results {
		if want, _ := fakeRun(jobs[i]); !reflect.DeepEqual(res.Outcome, want) {
			t.Fatalf("result %d corrupted by cache: %+v", i, res)
		}
		if cached := i < 6; res.Cached != cached {
			t.Fatalf("result %d cached=%v, want %v", i, res.Cached, cached)
		}
	}

	// A third run executes nothing at all.
	third := &harness.Runner{Run: fakeRun, Parallel: 2, Cache: cache}
	third.Sweep(jobs)
	if third.Executed() != 0 {
		t.Fatalf("fully cached sweep executed %d jobs", third.Executed())
	}
}

func TestCacheKeyedByCodeVersion(t *testing.T) {
	dir := t.TempDir()
	jobs := grid(3)
	r1 := &harness.Runner{Run: fakeRun, Parallel: 1, Cache: &harness.Cache{Dir: dir, Version: "rev-a"}}
	r1.Sweep(jobs)
	r2 := &harness.Runner{Run: fakeRun, Parallel: 1, Cache: &harness.Cache{Dir: dir, Version: "rev-b"}}
	r2.Sweep(jobs)
	if r2.Executed() != int64(len(jobs)) {
		t.Fatalf("version change did not invalidate cache: executed %d", r2.Executed())
	}
}

func TestCacheDoesNotServeFailures(t *testing.T) {
	cache := &harness.Cache{Dir: t.TempDir(), Version: "v"}
	boom := func(harness.Job) (harness.Outcome, error) { return harness.Outcome{}, fmt.Errorf("boom") }
	r := &harness.Runner{Run: boom, Parallel: 1, Cache: cache}
	r.Sweep(grid(1))
	if _, ok := cache.Get(grid(1)[0]); ok {
		t.Fatal("failed result landed in the cache")
	}
}

// TestJSONByteStableAcrossParallelism is the determinism contract: the
// deterministic JSON document is byte-identical whether the sweep ran on
// one worker or many, with or without cache hits.
func TestJSONByteStableAcrossParallelism(t *testing.T) {
	jobs := grid(24)
	emit := func(r *harness.Runner) []byte {
		var buf bytes.Buffer
		if err := harness.WriteJSON(&buf, "v-test", r.Sweep(jobs), harness.JSONOptions{}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := emit(&harness.Runner{Run: fakeRun, Parallel: 1})
	parallel := emit(&harness.Runner{Run: fakeRun, Parallel: 8})
	cached := emit(&harness.Runner{Run: fakeRun, Parallel: 8, Cache: &harness.Cache{Dir: t.TempDir(), Version: "v"}})
	if !bytes.Equal(serial, parallel) {
		t.Fatal("JSON differs between parallel=1 and parallel=8")
	}
	if !bytes.Equal(serial, cached) {
		t.Fatal("JSON differs when served from cache")
	}
	if !bytes.Contains(serial, []byte(harness.SweepSchema)) {
		t.Fatalf("missing schema marker in %s", serial)
	}
}

func TestProgressReportsEveryJob(t *testing.T) {
	var buf bytes.Buffer
	safe := &syncWriter{w: &buf}
	r := &harness.Runner{Run: fakeRun, Parallel: 4, Progress: safe}
	r.Sweep(grid(9))
	if got := strings.Count(buf.String(), "harness: ["); got != 9 {
		t.Fatalf("%d progress lines for 9 jobs:\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "[9/9]") {
		t.Fatalf("no final count line:\n%s", buf.String())
	}
}

// syncWriter serializes writes: Runner already locks around Progress
// writes, but the race detector should see the buffer as ours.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestVerifyCatchesSeedDependence(t *testing.T) {
	// Healthy run: commits independent of seed, fast+slow == commits.
	healthy := func(j harness.Job) (harness.Outcome, error) {
		return harness.Outcome{Cycles: uint64(j.Seed) * 100, Commits: 50, FastCommits: 30, SlowCommits: 20}, nil
	}
	r := &harness.Runner{Run: healthy, Parallel: 1}
	if err := r.Verify(harness.Job{Workload: "w", Variant: "V"}, 1, 2); err != nil {
		t.Fatalf("healthy verify failed: %v", err)
	}

	// Commit count leaking seed dependence.
	leaky := func(j harness.Job) (harness.Outcome, error) {
		return harness.Outcome{Commits: uint64(50 + j.Seed)}, nil
	}
	r = &harness.Runner{Run: leaky, Parallel: 1}
	if err := r.Verify(harness.Job{Workload: "w", Variant: "V"}, 1, 2); err == nil {
		t.Fatal("seed-dependent commits not caught")
	}

	// Fast/slow split that does not account for every commit.
	unbalanced := func(j harness.Job) (harness.Outcome, error) {
		return harness.Outcome{Commits: 50, FastCommits: 30, SlowCommits: 10}, nil
	}
	r = &harness.Runner{Run: unbalanced, Parallel: 1}
	if err := r.Verify(harness.Job{Workload: "w", Variant: "V"}, 1, 2); err == nil {
		t.Fatal("unbalanced fast/slow split not caught")
	}

	// Same seed twice is a verification bug, not a pass.
	r = &harness.Runner{Run: healthy, Parallel: 1}
	if err := r.Verify(harness.Job{Workload: "w", Variant: "V"}, 3, 3); err == nil {
		t.Fatal("identical seeds accepted")
	}

	// A panicking run fails verification instead of crashing it.
	r = &harness.Runner{Run: func(harness.Job) (harness.Outcome, error) { panic("bad") }, Parallel: 1}
	if err := r.Verify(harness.Job{Workload: "w", Variant: "V"}, 1, 2); err == nil {
		t.Fatal("panicking run passed verification")
	}
}

func TestVerifyCatchesCrossRunNondeterminism(t *testing.T) {
	// A RunFunc whose cycles drift between calls at the same seed models a
	// simulator leaking unordered state (e.g. map-iteration access order)
	// into its timing. Commits stay seed-invariant, so only the identity
	// gate can catch this.
	calls := 0
	flaky := func(j harness.Job) (harness.Outcome, error) {
		calls++
		return harness.Outcome{Cycles: 1000 + uint64(calls), Commits: 50, FastCommits: 30, SlowCommits: 20}, nil
	}
	r := &harness.Runner{Run: flaky, Parallel: 1}
	if err := r.Verify(harness.Job{Workload: "w", Variant: "V"}, 1, 2); err == nil {
		t.Fatal("cross-run nondeterminism not caught")
	}

	// Extra-map differences must also fail identity: canonical JSON sorts
	// keys, so equal maps pass and differing values fail.
	calls = 0
	extraFlaky := func(j harness.Job) (harness.Outcome, error) {
		calls++
		return harness.Outcome{Cycles: 1000, Commits: 50,
			Extra: map[string]float64{"hard_case_lookups": float64(calls)}}, nil
	}
	r = &harness.Runner{Run: extraFlaky, Parallel: 1}
	if err := r.Verify(harness.Job{Workload: "w", Variant: "V"}, 1, 2); err == nil {
		t.Fatal("extra-map nondeterminism not caught")
	}
}

func TestHistoryAccumulatesAcrossSweeps(t *testing.T) {
	r := &harness.Runner{Run: fakeRun, Parallel: 2, KeepHistory: true}
	r.Sweep(grid(4))
	r.Sweep(grid(6)[4:])
	hist := r.History()
	if len(hist) != 6 {
		t.Fatalf("history holds %d results", len(hist))
	}
	for i, res := range hist {
		if res.Job != grid(6)[i] {
			t.Fatalf("history out of order at %d: %+v", i, res.Job)
		}
	}
}

func TestGridRowMajorOrder(t *testing.T) {
	jobs := harness.Grid([]string{"A", "B"}, []string{"x", "y"}, 1, []int64{1, 2})
	if len(jobs) != 8 {
		t.Fatalf("grid size %d", len(jobs))
	}
	want := harness.Job{Workload: "A", Variant: "y", Scale: 1, Seed: 2}
	if jobs[3] != want {
		t.Fatalf("jobs[3] = %+v, want %+v", jobs[3], want)
	}
}

func TestVerifyCatchesBrokenConservation(t *testing.T) {
	// A breakdown whose buckets sum to the core clocks passes.
	conserving := func(j harness.Job) (harness.Outcome, error) {
		return harness.Outcome{
			Cycles: 1000, Commits: 50, FastCommits: 30, SlowCommits: 20,
			Breakdown:    map[string]uint64{"useful": 700, "read_stall": 250, "commit": 50},
			CoreCycleSum: 1000,
		}, nil
	}
	r := &harness.Runner{Run: conserving, Parallel: 1}
	if err := r.Verify(harness.Job{Workload: "w", Variant: "V"}, 1, 2); err != nil {
		t.Fatalf("conserving breakdown failed verify: %v", err)
	}

	// One unattributed cycle must fail loudly.
	leaking := func(j harness.Job) (harness.Outcome, error) {
		return harness.Outcome{
			Cycles: 1000, Commits: 50, FastCommits: 30, SlowCommits: 20,
			Breakdown:    map[string]uint64{"useful": 700, "read_stall": 250, "commit": 49},
			CoreCycleSum: 1000,
		}, nil
	}
	r = &harness.Runner{Run: leaking, Parallel: 1}
	if err := r.Verify(harness.Job{Workload: "w", Variant: "V"}, 1, 2); err == nil {
		t.Fatal("unattributed cycle not caught")
	}

	// Runs that report no breakdown (older producers) are not penalized.
	bare := func(j harness.Job) (harness.Outcome, error) {
		return harness.Outcome{Cycles: 1000, Commits: 50, FastCommits: 30, SlowCommits: 20}, nil
	}
	r = &harness.Runner{Run: bare, Parallel: 1}
	if err := r.Verify(harness.Job{Workload: "w", Variant: "V"}, 1, 2); err != nil {
		t.Fatalf("breakdown-less outcome failed verify: %v", err)
	}
}
