// Package harness turns the experiment grid of the paper's evaluation
// (§6.1: workloads × HTM variants × perturbation seeds) into a job system.
//
// Each simulated machine is self-contained and deterministic by seed, so
// the grid is embarrassingly parallel across real cores. The harness runs
// every Job on its own machine in its own goroutine (a worker pool sized to
// GOMAXPROCS by default), isolates panics (a crashing simulation marks its
// job failed with the stack attached instead of killing the sweep), caches
// results on disk keyed by job parameters and code version (so interrupted
// sweeps resume without redoing finished work), and aggregates results in
// job order — output is byte-stable regardless of goroutine scheduling.
//
// The package is deliberately independent of the root tokentm package: the
// simulation to run arrives as a RunFunc, so harness has no import cycle
// with the experiment definitions that use it.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Job identifies one cell of the experiment grid. The zero scale means 1
// (full Table 5 transaction counts). Jobs are cache keys: two jobs with
// equal fields and equal code versions are the same experiment.
type Job struct {
	// Workload names a workload.Spec (e.g. "Delaunay").
	Workload string `json:"workload"`
	// Variant names an HTM variant (e.g. "TokenTM").
	Variant string `json:"variant"`
	// Scale shrinks transaction counts for quick runs (0 or 1 = full).
	Scale float64 `json:"scale"`
	// Seed perturbs backoffs and generators.
	Seed int64 `json:"seed"`
}

// String renders the job compactly for progress lines and errors.
func (j Job) String() string {
	return fmt.Sprintf("%s/%s scale=%g seed=%d", j.Workload, j.Variant, j.Scale, j.Seed)
}

// Outcome is the deterministic, seed-reproducible measurement of one job:
// the metrics every later consumer (tables, figures, BENCH files) needs.
type Outcome struct {
	// Cycles is the simulated makespan.
	Cycles uint64 `json:"cycles"`
	// Commits is the number of committed transactions.
	Commits uint64 `json:"commits"`
	// Aborts is the number of transactional aborts.
	Aborts uint64 `json:"aborts"`
	// FastCommits/SlowCommits split TokenTM commits by release path
	// (both 0 for LogTM-SE variants).
	FastCommits uint64 `json:"fast_commits"`
	SlowCommits uint64 `json:"slow_commits"`
	// Extra carries variant-specific counters (false conflicts, hard-case
	// lookups, ...) without widening the schema per variant.
	Extra map[string]float64 `json:"extra,omitempty"`
	// Breakdown is the machine-wide cycle attribution, bucket name → cycles
	// (attr.Bucket names; every bucket present, zero or not). Its values
	// must sum to CoreCycleSum — Verify enforces this conservation.
	Breakdown map[string]uint64 `json:"breakdown,omitempty"`
	// CoreCycleSum is the sum of all per-core clocks after the run (the
	// denominator of the breakdown's percentages).
	CoreCycleSum uint64 `json:"core_cycle_sum,omitempty"`
}

// Result is a Job plus its Outcome, or its failure.
type Result struct {
	Job     Job     `json:"job"`
	Outcome Outcome `json:"outcome"`
	// WallNS is host wall-clock time for the run in nanoseconds. It is 0
	// for cache hits and excluded from deterministic output (see
	// WriteJSON): only simulated metrics are byte-stable across hosts and
	// parallelism levels.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Cached reports that the result was served from the on-disk cache.
	Cached bool `json:"cached,omitempty"`
	// Err is non-empty if the job failed (an error or a panic).
	Err string `json:"err,omitempty"`
	// Stack is the goroutine stack for a panicking job.
	Stack string `json:"stack,omitempty"`
	// Trace optionally attaches a failed job's event ring (JSON lines), as
	// dumped by trace.Tracer.DumpJSON.
	Trace string `json:"trace,omitempty"`
}

// OK reports whether the job succeeded.
func (r Result) OK() bool { return r.Err == "" }

// RunFunc executes one job on a fresh simulated machine and reports its
// measurements. Implementations must be safe to call from multiple
// goroutines at once: every call must build its own machine and share no
// mutable state with other calls.
type RunFunc func(Job) (Outcome, error)

// Runner executes sweeps of jobs.
type Runner struct {
	// Run executes one job. Required.
	Run RunFunc
	// Parallel is the worker-pool size; 0 means runtime.GOMAXPROCS(0).
	Parallel int
	// Cache, when non-nil, serves previously computed results and stores
	// new ones, making interrupted sweeps resumable.
	Cache *Cache
	// Progress, when non-nil, receives one line per finished job
	// (conventionally os.Stderr).
	Progress io.Writer

	// KeepHistory retains every Result from every Sweep (in submission
	// order) for a combined report; see History.
	KeepHistory bool

	executed atomic.Int64
	progMu   sync.Mutex
	history  []Result
}

// Executed returns the number of jobs actually run (cache misses) so far.
func (r *Runner) Executed() int64 { return r.executed.Load() }

// History returns all results from all sweeps so far, in submission order.
// Only populated when KeepHistory is set.
func (r *Runner) History() []Result { return append([]Result(nil), r.history...) }

// Workers resolves the effective pool size.
func (r *Runner) Workers() int {
	if r.Parallel > 0 {
		return r.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Sweep runs every job and returns results in job order (index i of the
// returned slice is jobs[i]), regardless of completion order — so sweep
// output is deterministic at any parallelism. Failed jobs are returned,
// not dropped: check Result.OK.
func (r *Runner) Sweep(jobs []Job) []Result {
	if r.Run == nil {
		panic("harness: Runner.Run is nil")
	}
	results := make([]Result, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	var done atomic.Int64
	for w := 0; w < r.Workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = r.runJob(jobs[i])
				r.report(results[i], int(done.Add(1)), len(jobs))
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if r.KeepHistory {
		r.history = append(r.history, results...)
	}
	return results
}

// runJob serves one job from the cache or executes it with panic isolation.
func (r *Runner) runJob(j Job) Result {
	if r.Cache != nil {
		if res, ok := r.Cache.Get(j); ok {
			res.Cached = true
			return res
		}
	}
	r.executed.Add(1)
	start := time.Now()
	res := Result{Job: j}
	res.Outcome, res.Err, res.Stack = safeRun(r.Run, j)
	res.WallNS = time.Since(start).Nanoseconds()
	if r.Cache != nil && res.OK() {
		// Cache writes are best-effort: a full disk degrades to re-running
		// jobs, not to failing the sweep.
		_ = r.Cache.Put(res)
	}
	return res
}

// safeRun calls run with panic isolation: a panicking simulation becomes a
// failed result carrying the stack, and the sweep continues.
func safeRun(run RunFunc, j Job) (out Outcome, errStr, stack string) {
	defer func() {
		if p := recover(); p != nil {
			out = Outcome{}
			errStr = fmt.Sprintf("panic: %v", p)
			stack = string(debug.Stack())
		}
	}()
	o, err := run(j)
	if err != nil {
		return Outcome{}, err.Error(), ""
	}
	return o, "", ""
}

// report writes one progress line per finished job.
func (r *Runner) report(res Result, done, total int) {
	if r.Progress == nil {
		return
	}
	status := fmt.Sprintf("cycles=%d commits=%d", res.Outcome.Cycles, res.Outcome.Commits)
	switch {
	case !res.OK():
		status = "FAILED: " + res.Err
	case res.Cached:
		status += " (cached)"
	default:
		status += fmt.Sprintf(" (%.2fs)", float64(res.WallNS)/1e9)
	}
	r.progMu.Lock()
	fmt.Fprintf(r.Progress, "harness: [%d/%d] %s %s\n", done, total, res.Job, status)
	r.progMu.Unlock()
}

// Grid builds the full job list for workloads × variants × seeds in
// row-major order (workload outermost, seed innermost) — the canonical job
// order every emitter and aggregator assumes.
func Grid(workloads, variants []string, scale float64, seeds []int64) []Job {
	jobs := make([]Job, 0, len(workloads)*len(variants)*len(seeds))
	for _, w := range workloads {
		for _, v := range variants {
			for _, s := range seeds {
				jobs = append(jobs, Job{Workload: w, Variant: v, Scale: scale, Seed: s})
			}
		}
	}
	return jobs
}

// CodeVersion identifies the code that produced a result, for cache keying:
// the module's VCS revision when built with version control stamping, else
// "dev". Results cached under one version are invisible to another.
func CodeVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if rev != "" {
			return rev + dirty
		}
	}
	return "dev"
}
