package harness_test

// These tests drive the harness with the real simulator (the root tokentm
// package). They pin the two contracts the whole subsystem rests on:
//
//   - determinism: one (workload, variant, seed) cell always produces the
//     same metrics, which is what makes content-keyed caching sound — this
//     pins the min-time-ordering contract of internal/sim's scheduler;
//   - isolation: simulated machines share no mutable state, which is what
//     makes the grid embarrassingly parallel — run with -race to let the
//     detector prove it over a parallel sweep.

import (
	"bytes"
	"reflect"
	"testing"

	"tokentm"
	"tokentm/internal/harness"
)

// raceScale keeps real-simulator tests quick; correctness is scale-free.
const raceScale = 0.004

func TestDeterminismGuard(t *testing.T) {
	job := harness.Job{Workload: "Radiosity", Variant: string(tokentm.VariantTokenTM), Scale: 0.01, Seed: 7}
	a, err := tokentm.ExperimentRun(job)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tokentm.ExperimentRun(job)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Fatalf("same job, different cycles: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.Commits != b.Commits {
		t.Fatalf("same job, different commits: %d vs %d", a.Commits, b.Commits)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same job, different outcome:\n%+v\n%+v", a, b)
	}
	if a.Commits == 0 || a.Cycles == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
}

// TestSweepParallelMatchesSerial runs an 8-job sweep at parallelism 4 on
// real machines and checks it equals the serial sweep result-for-result.
// Under -race this also proves the machines share no mutable state.
func TestSweepParallelMatchesSerial(t *testing.T) {
	workloads := []string{"Barnes", "Cholesky", "Radiosity", "Raytrace"}
	variants := []string{string(tokentm.VariantTokenTM), string(tokentm.VariantLogTMSE4xH3)}
	jobs := harness.Grid(workloads, variants, raceScale, []int64{1})
	if len(jobs) != 8 {
		t.Fatalf("grid size %d, want 8", len(jobs))
	}

	serial := tokentm.NewRunner(tokentm.SweepOptions{Parallel: 1}).Sweep(jobs)
	parallel := tokentm.NewRunner(tokentm.SweepOptions{Parallel: 4}).Sweep(jobs)
	for i := range jobs {
		if !serial[i].OK() || !parallel[i].OK() {
			t.Fatalf("job %s failed: %q / %q", jobs[i], serial[i].Err, parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Outcome, parallel[i].Outcome) {
			t.Fatalf("job %s diverges across parallelism:\nserial   %+v\nparallel %+v",
				jobs[i], serial[i].Outcome, parallel[i].Outcome)
		}
	}
}

func TestSweepJSONByteIdenticalAcrossParallelism(t *testing.T) {
	jobs := harness.Grid(
		[]string{"Barnes", "Radiosity"},
		[]string{string(tokentm.VariantTokenTM), string(tokentm.VariantLogTMSEPerf)},
		raceScale, []int64{1, 2})
	emit := func(par int) []byte {
		r := tokentm.NewRunner(tokentm.SweepOptions{Parallel: par})
		var buf bytes.Buffer
		if err := harness.WriteJSON(&buf, "v-test", r.Sweep(jobs), harness.JSONOptions{}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(emit(1), emit(4)) {
		t.Fatal("simulator sweep JSON differs between parallel=1 and parallel=4")
	}
}

func TestVerifyPassesOnRealMachine(t *testing.T) {
	r := tokentm.NewRunner(tokentm.SweepOptions{})
	job := harness.Job{Workload: "Barnes", Variant: string(tokentm.VariantTokenTM), Scale: 0.01}
	if err := r.Verify(job, 1, 2); err != nil {
		t.Fatalf("verify on healthy simulator: %v", err)
	}
}
