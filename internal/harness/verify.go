package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Verify is a cheap correctness gate with two halves.
//
// Identity: one (workload, variant, scale, seed) tuple names exactly one
// execution, so running the seedA job twice must produce byte-identical
// canonical JSON — cycles included. This is the cross-run determinism
// contract (DESIGN.md); a mismatch means some simulated-access order leaked
// in from an unordered source (Go map iteration is the classic culprit).
//
// Invariance: the same job at a second seed cross-checks the metrics that
// must be seed-invariant. Seeds only perturb backoffs and generator draws —
// every workload still commits the same number of transactions, and on
// TokenTM every commit takes exactly one of the two release paths:
//
//   - commit counts must match across seeds;
//   - fast + slow release commits must account for every commit (when the
//     variant splits them, i.e. the counts are nonzero);
//   - the cycle-attribution breakdown, when reported, must sum exactly to
//     the core clocks (no simulated cycle escapes classification);
//   - all runs must succeed (the RunFunc is expected to fold deeper
//     invariants, like TokenTM's token-bookkeeping balance, into its error).
//
// Verify bypasses the cache deliberately: a verification that reads stale
// results verifies nothing.
func (r *Runner) Verify(j Job, seedA, seedB int64) error {
	if seedA == seedB {
		return fmt.Errorf("harness: verify needs two distinct seeds, got %d twice", seedA)
	}
	ja, jb := j, j
	ja.Seed, jb.Seed = seedA, seedB
	var outs [3]Outcome
	for i, job := range []Job{ja, ja, jb} {
		out, errStr, _ := safeRun(r.Run, job)
		if errStr != "" {
			return fmt.Errorf("harness: verify %s: %s", job, errStr)
		}
		if split := out.FastCommits + out.SlowCommits; split != 0 && split != out.Commits {
			return fmt.Errorf("harness: verify %s: fast %d + slow %d != commits %d",
				job, out.FastCommits, out.SlowCommits, out.Commits)
		}
		// Cycle conservation: the attribution buckets must account for
		// every simulated cycle on every core (summation is
		// order-independent, so map iteration is safe here).
		if len(out.Breakdown) > 0 {
			var sum uint64
			for _, v := range out.Breakdown {
				sum += v
			}
			if sum != out.CoreCycleSum {
				return fmt.Errorf("harness: verify %s: breakdown buckets sum to %d cycles but core clocks sum to %d",
					job, sum, out.CoreCycleSum)
			}
		}
		outs[i] = out
	}
	b0, err := canonicalOutcome(outs[0])
	if err != nil {
		return fmt.Errorf("harness: verify %s: %w", ja, err)
	}
	b1, err := canonicalOutcome(outs[1])
	if err != nil {
		return fmt.Errorf("harness: verify %s: %w", ja, err)
	}
	if !bytes.Equal(b0, b1) {
		return fmt.Errorf("harness: verify %s: two identical runs diverged:\n  run1: %s\n  run2: %s",
			ja, b0, b1)
	}
	if outs[0].Commits != outs[2].Commits {
		return fmt.Errorf("harness: verify %s: commit count depends on seed (%d at seed %d, %d at seed %d)",
			j, outs[0].Commits, seedA, outs[2].Commits, seedB)
	}
	return nil
}

// canonicalOutcome renders an Outcome as canonical JSON bytes for identity
// comparison: encoding/json sorts map keys, so equal outcomes always encode
// equally.
func canonicalOutcome(o Outcome) ([]byte, error) {
	b, err := json.Marshal(o)
	if err != nil {
		return nil, fmt.Errorf("marshal outcome: %w", err)
	}
	return b, nil
}
