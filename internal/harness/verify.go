package harness

import "fmt"

// Verify is a cheap correctness gate: it runs the same job at two different
// seeds and cross-checks the metrics that must be seed-invariant. Seeds
// only perturb backoffs and generator draws — every workload still commits
// the same number of transactions, and on TokenTM every commit takes
// exactly one of the two release paths — so any divergence means the
// simulator (or the cache key feeding it) is broken:
//
//   - commit counts must match across seeds;
//   - fast + slow release commits must account for every commit (when the
//     variant splits them, i.e. the counts are nonzero);
//   - both runs must succeed (the RunFunc is expected to fold deeper
//     invariants, like TokenTM's token-bookkeeping balance, into its error).
//
// Verify bypasses the cache deliberately: a verification that reads stale
// results verifies nothing.
func (r *Runner) Verify(j Job, seedA, seedB int64) error {
	if seedA == seedB {
		return fmt.Errorf("harness: verify needs two distinct seeds, got %d twice", seedA)
	}
	ja, jb := j, j
	ja.Seed, jb.Seed = seedA, seedB
	var outs [2]Outcome
	for i, job := range []Job{ja, jb} {
		out, errStr, _ := safeRun(r.Run, job)
		if errStr != "" {
			return fmt.Errorf("harness: verify %s: %s", job, errStr)
		}
		if split := out.FastCommits + out.SlowCommits; split != 0 && split != out.Commits {
			return fmt.Errorf("harness: verify %s: fast %d + slow %d != commits %d",
				job, out.FastCommits, out.SlowCommits, out.Commits)
		}
		outs[i] = out
	}
	if outs[0].Commits != outs[1].Commits {
		return fmt.Errorf("harness: verify %s: commit count depends on seed (%d at seed %d, %d at seed %d)",
			j, outs[0].Commits, seedA, outs[1].Commits, seedB)
	}
	return nil
}
