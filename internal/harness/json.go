package harness

import (
	"encoding/json"
	"io"
)

// SweepSchema versions the JSON document WriteJSON emits.
const SweepSchema = "tokentm-harness/v1"

// SweepDoc is the machine-readable record of a sweep, written as
// BENCH_experiments.json by `make bench` and by cmd/experiments -json.
type SweepDoc struct {
	Schema string `json:"schema"`
	// CodeVersion is the CodeVersion() of the producing binary.
	CodeVersion string `json:"code_version"`
	// Parallel and WallNS describe the producing run (worker count, total
	// host wall-clock). Both are omitted in deterministic mode.
	Parallel int   `json:"parallel,omitempty"`
	WallNS   int64 `json:"wall_ns,omitempty"`
	// Jobs holds per-job results in job (submission) order.
	Jobs []Result `json:"jobs"`
}

// JSONOptions controls WriteJSON.
type JSONOptions struct {
	// Timing includes host wall-clock and worker-count fields. Leave it
	// false for deterministic output: without timing, the emitted bytes
	// depend only on job parameters and code, not on the host, the
	// parallelism level, or cache hits — sweeps at -parallel=1 and
	// -parallel=N emit identical documents.
	Timing bool
	// Parallel and WallNS annotate the document when Timing is set.
	Parallel int
	WallNS   int64
}

// WriteJSON emits results as an indented SweepDoc.
func WriteJSON(w io.Writer, version string, results []Result, opts JSONOptions) error {
	doc := SweepDoc{Schema: SweepSchema, CodeVersion: version, Jobs: make([]Result, len(results))}
	copy(doc.Jobs, results)
	if opts.Timing {
		doc.Parallel = opts.Parallel
		doc.WallNS = opts.WallNS
	} else {
		for i := range doc.Jobs {
			doc.Jobs[i].WallNS = 0
			doc.Jobs[i].Cached = false
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
