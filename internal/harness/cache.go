package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Cache is a content-keyed on-disk result store. The key is a hash of the
// job's parameters and the code version, so re-running a sweep only
// executes jobs whose inputs changed: an interrupted sweep resumes where it
// stopped, and a code change invalidates everything at once.
//
// Layout: one file per result, Dir/<hex key>.json, each holding the
// Result JSON (including the Job, which Get cross-checks against the
// requested job to guard against hash collisions and hand-edited files).
// Files are written via a temporary file and rename, so a sweep killed
// mid-write never leaves a truncated entry behind.
type Cache struct {
	// Dir is the cache directory (created on first Put).
	Dir string
	// Version is the code version mixed into every key; see CodeVersion.
	Version string
}

// key derives the content hash of a job under this cache's code version.
func (c *Cache) key(j Job) string {
	h := sha256.New()
	// %.17g round-trips every float64 exactly.
	fmt.Fprintf(h, "v1|%s|%s|%s|%.17g|%d", c.Version, j.Workload, j.Variant, j.Scale, j.Seed)
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// path returns the cache file for a job.
func (c *Cache) path(j Job) string {
	return filepath.Join(c.Dir, c.key(j)+".json")
}

// Get returns the cached result for j, if present and intact.
func (c *Cache) Get(j Job) (Result, bool) {
	data, err := os.ReadFile(c.path(j))
	if err != nil {
		return Result{}, false
	}
	var res Result
	if json.Unmarshal(data, &res) != nil || res.Job != j || !res.OK() {
		return Result{}, false
	}
	return res, true
}

// Put stores a result atomically (write-to-temp then rename).
func (c *Cache) Put(res Result) error {
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(res)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.Dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(res.Job))
}
