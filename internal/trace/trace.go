// Package trace records structured HTM events for debugging and analysis.
// A Tracer wraps any htm.System as a transparent decorator: every begin,
// access outcome, commit, abort and context switch is appended to a bounded
// ring buffer that can be dumped as text. cmd/tokentm-sim exposes it via
// the -trace flag.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"tokentm/internal/htm"
	"tokentm/internal/mem"
	"tokentm/internal/statehash"
)

// Kind classifies trace events.
type Kind int

// Event kinds.
const (
	EvBegin Kind = iota
	EvLoad
	EvStore
	EvConflict
	EvAbortSelf
	EvCommitFast
	EvCommitSlow
	EvAbort
	EvCtxSwitch
)

// hasAddr reports whether events of this kind carry a meaningful Addr.
// Address 0 is a legal block address, so presence is a property of the kind,
// not of the value (DumpJSON relies on this to emit addr explicitly).
func (k Kind) hasAddr() bool {
	switch k {
	case EvLoad, EvStore, EvConflict, EvAbortSelf:
		return true
	case EvBegin, EvCommitFast, EvCommitSlow, EvAbort, EvCtxSwitch:
		return false
	default:
		return false
	}
}

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case EvBegin:
		return "begin"
	case EvLoad:
		return "load"
	case EvStore:
		return "store"
	case EvConflict:
		return "conflict"
	case EvAbortSelf:
		return "abort-self"
	case EvCommitFast:
		return "commit-fast"
	case EvCommitSlow:
		return "commit-slow"
	case EvAbort:
		return "abort"
	case EvCtxSwitch:
		return "ctx-switch"
	default:
		return "?"
	}
}

// Event is one recorded HTM event.
type Event struct {
	Seq     uint64
	Kind    Kind
	TID     mem.TID
	Core    int
	Addr    mem.Addr
	Latency mem.Cycle
	// Conflict classifies the conflict for EvConflict/EvAbortSelf events
	// (KindNone otherwise).
	Conflict htm.ConflictKind
	// Enemies lists conflicting TIDs for EvConflict.
	Enemies []mem.TID
}

// String renders the event as one line.
func (e Event) String() string {
	s := fmt.Sprintf("#%-6d %-11s tid=%-5d core=%-2d", e.Seq, e.Kind, e.TID, e.Core)
	if e.Kind.hasAddr() {
		s += fmt.Sprintf(" addr=%v", e.Addr)
	}
	if e.Latency > 0 {
		s += fmt.Sprintf(" lat=%d", e.Latency)
	}
	if e.Conflict != htm.KindNone {
		s += fmt.Sprintf(" conflict=%s", e.Conflict)
	}
	if len(e.Enemies) > 0 {
		s += fmt.Sprintf(" enemies=%v", e.Enemies)
	}
	return s
}

// Tracer is a bounded ring buffer of events.
//
// A Tracer is bound to exactly one simulated machine: it is not
// synchronized, and simulated machines are single-goroutine worlds, so
// sharing one Tracer between the machines of a parallel sweep would
// interleave unrelated event streams and race on the ring. Wrap enforces
// the contract by panicking when a Tracer is attached to a second system;
// build one Tracer per machine instead.
type Tracer struct {
	events []Event
	next   int
	seq    uint64
	full   bool
	bound  htm.System
}

// NewTracer returns a tracer keeping the most recent capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{events: make([]Event, capacity)}
}

// Record appends an event.
func (t *Tracer) Record(e Event) {
	e.Seq = t.seq
	t.seq++
	t.events[t.next] = e
	t.next++
	if t.next == len(t.events) {
		t.next = 0
		t.full = true
	}
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t.full {
		return len(t.events)
	}
	return t.next
}

// Total returns the number of events ever recorded.
func (t *Tracer) Total() uint64 { return t.seq }

// Reset returns the tracer to its empty, unbound state so it can be reused
// with a new machine (e.g. across a harness retry of a failed job): events,
// sequence numbers and the machine binding are cleared; capacity is kept.
func (t *Tracer) Reset() {
	clear(t.events)
	t.next = 0
	t.seq = 0
	t.full = false
	t.bound = nil
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if !t.full {
		return append([]Event(nil), t.events[:t.next]...)
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Dump writes the retained events as text.
func (t *Tracer) Dump(w io.Writer) {
	for _, e := range t.Events() {
		fmt.Fprintln(w, e.String())
	}
}

// jsonEvent is the wire form of an Event: the kind as its symbolic name.
// Addr is a pointer so that presence is explicit — block address 0 and
// "this event kind has no address" are different facts, and latency is
// always emitted because a genuine 0-cycle latency must not read as absent.
type jsonEvent struct {
	Seq      uint64    `json:"seq"`
	Kind     string    `json:"kind"`
	TID      mem.TID   `json:"tid"`
	Core     int       `json:"core"`
	Addr     *mem.Addr `json:"addr,omitempty"`
	Latency  mem.Cycle `json:"latency"`
	Conflict string    `json:"conflict,omitempty"`
	Enemies  []mem.TID `json:"enemies,omitempty"`
}

// DumpJSON writes the retained events oldest-first as one indented JSON
// array, so harness failure reports can attach the event ring of a failed
// job in machine-readable form.
func (t *Tracer) DumpJSON(w io.Writer) error {
	events := t.Events()
	out := make([]jsonEvent, len(events))
	for i, e := range events {
		out[i] = jsonEvent{
			Seq: e.Seq, Kind: e.Kind.String(), TID: e.TID, Core: e.Core,
			Latency: e.Latency, Enemies: e.Enemies,
		}
		if e.Kind.hasAddr() {
			addr := e.Addr
			out[i].Addr = &addr
		}
		if e.Conflict != htm.KindNone {
			out[i].Conflict = e.Conflict.String()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// System decorates an htm.System with tracing.
type System struct {
	inner  htm.System
	tracer *Tracer
}

var _ htm.System = (*System)(nil)

// Wrap returns sys decorated with tr. A Tracer observes exactly one
// machine's HTM: wrapping a second system with the same Tracer panics (see
// the Tracer contract).
func Wrap(sys htm.System, tr *Tracer) *System {
	if tr.bound != nil && tr.bound != sys {
		panic("trace: Tracer already bound to another htm.System; use one Tracer per machine")
	}
	tr.bound = sys
	return &System{inner: sys, tracer: tr}
}

// Name returns the wrapped variant's name.
func (s *System) Name() string { return s.inner.Name() }

// FingerprintTo forwards to the wrapped system when it participates in
// machine fingerprinting, so tracing a machine never changes its state hash.
func (s *System) FingerprintTo(h *statehash.Hash) {
	if f, ok := s.inner.(htm.Fingerprinter); ok {
		f.FingerprintTo(h)
	}
}

// Stats exposes the wrapped variant's metrics.
func (s *System) Stats() *htm.Metrics { return s.inner.Stats() }

// Register forwards registration.
func (s *System) Register(th *htm.Thread) { s.inner.Register(th) }

// RunningOn forwards the running-thread notification.
func (s *System) RunningOn(core int, th *htm.Thread) { s.inner.RunningOn(core, th) }

// Begin traces a transaction begin.
func (s *System) Begin(th *htm.Thread, now mem.Cycle) mem.Cycle {
	lat := s.inner.Begin(th, now)
	s.tracer.Record(Event{Kind: EvBegin, TID: th.TID, Core: th.Core, Latency: lat})
	return lat
}

func tids(xs []*htm.Xact) []mem.TID {
	var out []mem.TID
	for _, x := range xs {
		out = append(out, x.TID)
	}
	return out
}

// Load traces a load and its outcome.
func (s *System) Load(th *htm.Thread, addr mem.Addr, retries int) (uint64, htm.Access) {
	v, acc := s.inner.Load(th, addr, retries)
	s.record(EvLoad, th, addr, acc)
	return v, acc
}

// Store traces a store and its outcome.
func (s *System) Store(th *htm.Thread, addr mem.Addr, val uint64, retries int) htm.Access {
	acc := s.inner.Store(th, addr, val, retries)
	s.record(EvStore, th, addr, acc)
	return acc
}

func (s *System) record(kind Kind, th *htm.Thread, addr mem.Addr, acc htm.Access) {
	switch acc.Outcome {
	case htm.OK:
		s.tracer.Record(Event{Kind: kind, TID: th.TID, Core: th.Core, Addr: addr, Latency: acc.Latency})
	case htm.Stall:
		s.tracer.Record(Event{Kind: EvConflict, TID: th.TID, Core: th.Core, Addr: addr, Latency: acc.Latency, Conflict: acc.Kind, Enemies: tids(acc.Enemies)})
	case htm.AbortSelf:
		s.tracer.Record(Event{Kind: EvAbortSelf, TID: th.TID, Core: th.Core, Addr: addr, Conflict: acc.Kind})
	}
}

// Commit traces a commit, distinguishing fast and software release.
func (s *System) Commit(th *htm.Thread) (mem.Cycle, bool) {
	lat, fast := s.inner.Commit(th)
	kind := EvCommitSlow
	if fast {
		kind = EvCommitFast
	}
	s.tracer.Record(Event{Kind: kind, TID: th.TID, Core: th.Core, Latency: lat})
	return lat, fast
}

// Abort traces an abort.
func (s *System) Abort(th *htm.Thread) mem.Cycle {
	lat := s.inner.Abort(th)
	s.tracer.Record(Event{Kind: EvAbort, TID: th.TID, Core: th.Core, Latency: lat})
	return lat
}

// ContextSwitch traces a context switch.
func (s *System) ContextSwitch(core int, out, in *htm.Thread) mem.Cycle {
	lat := s.inner.ContextSwitch(core, out, in)
	e := Event{Kind: EvCtxSwitch, Core: core, Latency: lat}
	if in != nil {
		e.TID = in.TID
	}
	s.tracer.Record(e)
	return lat
}
