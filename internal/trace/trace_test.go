package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tokentm/internal/core"
	"tokentm/internal/mem"
	"tokentm/internal/sim"
)

func TestRingBuffer(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record(Event{Kind: EvLoad, TID: mem.TID(i)})
	}
	if tr.Len() != 4 || tr.Total() != 6 {
		t.Fatalf("len=%d total=%d", tr.Len(), tr.Total())
	}
	evs := tr.Events()
	// Oldest retained is seq 2.
	if evs[0].Seq != 2 || evs[3].Seq != 5 {
		t.Fatalf("ring order: %+v", evs)
	}
	// Unfilled tracer.
	tr2 := NewTracer(8)
	tr2.Record(Event{Kind: EvBegin})
	if tr2.Len() != 1 || tr2.Events()[0].Seq != 0 {
		t.Fatal("partial ring")
	}
	// Default capacity.
	if NewTracer(0).Len() != 0 {
		t.Fatal("default tracer")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{EvBegin, EvLoad, EvStore, EvConflict, EvAbortSelf, EvCommitFast, EvCommitSlow, EvAbort, EvCtxSwitch, Kind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty name for %d", int(k))
		}
	}
	if Kind(99).String() != "?" {
		t.Fatal("unknown kind")
	}
}

// TestWrappedSystemEndToEnd runs a real simulation through the tracing
// decorator and checks the event stream tells the story.
func TestWrappedSystemEndToEnd(t *testing.T) {
	m := sim.New(sim.Config{Cores: 2, Seed: 3})
	tr := NewTracer(4096)
	m.SetHTM(Wrap(core.New(m.Mem, m.Store), tr))
	const a mem.Addr = 0x1000
	for i := 0; i < 2; i++ {
		m.Spawn(func(tc *sim.Ctx) {
			for k := 0; k < 10; k++ {
				tc.Atomic(func(tx *sim.Tx) {
					tx.Store(a, tx.Load(a)+1)
					tx.Work(300)
				})
			}
		})
	}
	m.Run()
	if m.Store.Load(a) != 20 {
		t.Fatalf("traced run broke semantics: %d", m.Store.Load(a))
	}

	counts := map[Kind]int{}
	for _, e := range tr.Events() {
		counts[e.Kind]++
	}
	if counts[EvBegin] < 20 || counts[EvCommitFast] != 20 {
		t.Fatalf("begin/commit counts: %v", counts)
	}
	if counts[EvLoad] == 0 || counts[EvStore] == 0 {
		t.Fatalf("access events missing: %v", counts)
	}
	// Contended increments should show at least one conflict or abort.
	if counts[EvConflict]+counts[EvAbort] == 0 {
		t.Fatalf("no contention events: %v", counts)
	}

	var buf bytes.Buffer
	tr.Dump(&buf)
	out := buf.String()
	for _, want := range []string{"begin", "commit-fast", "tid="} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q", want)
		}
	}
}

func TestDecoratorTransparency(t *testing.T) {
	m := sim.New(sim.Config{Cores: 1})
	inner := core.New(m.Mem, m.Store)
	w := Wrap(inner, NewTracer(16))
	if w.Name() != inner.Name() || w.Stats() != inner.Stats() {
		t.Fatal("decorator must be transparent")
	}
	if lat := w.ContextSwitch(0, nil, nil); lat == 0 {
		t.Fatal("context switch latency")
	}
}

// TestTracerBoundToOneMachine pins the contract the parallel sweep harness
// depends on: a Tracer observes exactly one machine's HTM, so event rings
// from concurrent machines can never interleave.
func TestTracerBoundToOneMachine(t *testing.T) {
	m1 := sim.New(sim.Config{Cores: 1})
	m2 := sim.New(sim.Config{Cores: 1})
	tr := NewTracer(16)
	sys1 := core.New(m1.Mem, m1.Store)
	Wrap(sys1, tr)

	// Re-wrapping the same system is idempotent and allowed.
	Wrap(sys1, tr)

	// Wrapping a second machine's system with the same Tracer panics.
	defer func() {
		if recover() == nil {
			t.Fatal("wrapping a second system with a bound Tracer must panic")
		}
	}()
	Wrap(core.New(m2.Mem, m2.Store), tr)
}

func TestDumpJSON(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(Event{Kind: EvBegin, TID: 3, Core: 1})
	tr.Record(Event{Kind: EvConflict, TID: 3, Core: 1, Addr: 0x1000, Latency: 20, Enemies: []mem.TID{7}})
	tr.Record(Event{Kind: EvCommitFast, TID: 3, Core: 1, Latency: 4})

	var buf bytes.Buffer
	if err := tr.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 3 {
		t.Fatalf("%d events", len(events))
	}
	if events[0]["kind"] != "begin" || events[1]["kind"] != "conflict" || events[2]["kind"] != "commit-fast" {
		t.Fatalf("kinds: %v", events)
	}
	if events[1]["latency"].(float64) != 20 {
		t.Fatalf("conflict latency: %v", events[1])
	}
	if events[0]["seq"].(float64) != 0 || events[2]["seq"].(float64) != 2 {
		t.Fatalf("sequence numbers: %v", events)
	}
	enemies := events[1]["enemies"].([]any)
	if len(enemies) != 1 || enemies[0].(float64) != 7 {
		t.Fatalf("enemies: %v", events[1])
	}
}

// TestDumpJSONAddrZero pins the presence semantics the old schema got
// wrong: block address 0 on an access event must appear in the JSON as an
// explicit "addr": 0 (presence by event kind, not by value), a genuine
// 0-cycle latency must still be emitted, and kinds without an address must
// omit the key entirely.
func TestDumpJSONAddrZero(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(Event{Kind: EvLoad, TID: 2, Core: 0, Addr: 0, Latency: 0})
	tr.Record(Event{Kind: EvBegin, TID: 2, Core: 0, Latency: 0})

	var buf bytes.Buffer
	if err := tr.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("%d events", len(events))
	}
	load, begin := events[0], events[1]
	addr, ok := load["addr"]
	if !ok {
		t.Fatalf("load at address 0 lost its addr field: %s", buf.String())
	}
	if string(addr) != "0" {
		t.Fatalf("load addr = %s, want 0", addr)
	}
	lat, ok := load["latency"]
	if !ok {
		t.Fatalf("0-cycle latency omitted: %s", buf.String())
	}
	if string(lat) != "0" {
		t.Fatalf("load latency = %s, want 0", lat)
	}
	if _, ok := begin["addr"]; ok {
		t.Fatalf("begin event must not carry addr: %s", buf.String())
	}
	if _, ok := begin["latency"]; !ok {
		t.Fatalf("begin event lost latency: %s", buf.String())
	}
}

// TestTracerReset pins the reuse path: Reset returns a bound, full tracer
// to its empty state, after which it can legally wrap a different machine's
// system (the thing Wrap's binding check forbids without Reset).
func TestTracerReset(t *testing.T) {
	run := func(tr *Tracer) uint64 {
		m := sim.New(sim.Config{Cores: 1})
		m.SetHTM(Wrap(core.New(m.Mem, m.Store), tr))
		m.Spawn(func(tc *sim.Ctx) {
			tc.Atomic(func(tx *sim.Tx) {
				tx.Store(0x40, tx.Load(0x40)+1)
			})
		})
		m.Run()
		return m.Store.Load(0x40)
	}

	tr := NewTracer(8)
	if got := run(tr); got != 1 {
		t.Fatalf("first machine: counter = %d", got)
	}
	if tr.Total() == 0 {
		t.Fatal("first machine recorded nothing")
	}

	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Fatalf("after Reset: len=%d total=%d, want 0/0", tr.Len(), tr.Total())
	}

	// Without Reset this second Wrap would panic (TestTracerBoundToOneMachine).
	if got := run(tr); got != 1 {
		t.Fatalf("second machine: counter = %d", got)
	}
	evs := tr.Events()
	if len(evs) == 0 || evs[0].Seq != 0 {
		t.Fatalf("second machine's events must restart at seq 0: %+v", evs)
	}
}
