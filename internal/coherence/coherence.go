// Package coherence implements the simulated memory system: per-core
// private L1 caches kept coherent by a directory-based MESI protocol at the
// shared L2 banks, with non-silent evictions, over the tiled interconnect
// (paper §4, §6.1).
//
// TokenTM deliberately makes no changes to coherence states, transitions or
// semantics; it only piggybacks metastate on existing messages. This package
// mirrors that split: it owns residency, permissions and timing, and invokes
// a Listener at the points where metastate travels with data — when an L1
// copy is created (fission or fused exclusive delivery) and when a copy is
// lost (eviction or invalidation, whose acks carry the metastate home).
package coherence

import (
	"math/bits"

	"tokentm/internal/cache"
	"tokentm/internal/interconnect"
	"tokentm/internal/mem"
	"tokentm/internal/metastate"
)

// Latency parameters (cycles) for the memory hierarchy.
const (
	L1HitCycles  mem.Cycle = 1
	L2HitCycles  mem.Cycle = 12
	DirCycles    mem.Cycle = 2
	DRAMCycles   mem.Cycle = 150
	L1FillCycles mem.Cycle = 1
)

// LossReason says why an L1 copy disappeared.
type LossReason int

// Loss reasons reported to the Listener.
const (
	// LossEvict is a capacity/conflict eviction chosen by the L1's
	// replacement policy. Evictions are non-silent: the directory is
	// notified and the metastate travels home with the (data) writeback.
	LossEvict LossReason = iota
	// LossInvalidate is an invalidation caused by another core's
	// exclusive request; the ack carries the metastate to the requester,
	// which fuses it (the paper's §5.2 hint mechanism).
	LossInvalidate
)

// FillInfo describes how a new L1 copy was produced.
type FillInfo struct {
	// Exclusive is true for write fills/upgrades: all other copies were
	// invalidated and their metastate (plus home's) fused into this copy.
	Exclusive bool
	// FromOwner is the core that forwarded the data, or -1 if the data
	// came from the home L2 bank or memory.
	FromOwner int
	// Upgrade is true when the core already held a Shared copy and only
	// permissions changed (the line and its metabits are retained).
	Upgrade bool
}

// Listener observes copy lifecycle events to move metastate with data.
type Listener interface {
	// CopyCreated runs after a fill or upgrade; the listener initializes
	// line.Meta (fission for shared fills, home-drain for exclusive ones).
	CopyCreated(core int, b mem.BlockAddr, line *cache.Line, info FillInfo)
	// CopyLost runs when a valid copy leaves an L1; meta is the line's
	// metabits at the time of loss.
	CopyLost(core int, b mem.BlockAddr, meta metastate.L1Meta, reason LossReason)
}

// nopListener is used when no listener is attached.
type nopListener struct{}

func (nopListener) CopyCreated(int, mem.BlockAddr, *cache.Line, FillInfo)     {}
func (nopListener) CopyLost(int, mem.BlockAddr, metastate.L1Meta, LossReason) {}

// Stats counts memory-system events.
type Stats struct {
	L1Hits        uint64
	L1Misses      uint64
	L2Hits        uint64
	MemAccesses   uint64
	Invalidations uint64
	Writebacks    uint64
	Upgrades      uint64
	Forwards      uint64
	// Evictions counts L1 replacement-policy victims (capacity/conflict
	// evictions chosen by LRU). The schedule explorer's state fingerprints
	// exclude LRU ordering, which is sound only while this stays zero.
	Evictions uint64
}

// dirEntry tracks one block's L1 copies.
type dirEntry struct {
	sharers uint32 // bitmask over cores
	owner   int8   // core with E/M copy, or -1
}

// MemSys is the full simulated memory system for NumCores cores.
type MemSys struct {
	NumCores int
	L1s      []*cache.Cache
	l2banks  []*cache.Cache
	noc      *interconnect.NoC
	// dir is the directory, paged by block-address upper bits: entries live
	// inline in fixed pages instead of one heap allocation per block, and
	// workload regions are dense so a page amortizes its map insert across
	// dirPageBlocks neighbors. lastKey/lastPage short-circuit the page
	// lookup for the repeated same-block probes within one access.
	dir      map[mem.BlockAddr]*dirPage
	lastKey  mem.BlockAddr
	lastPage *dirPage
	listener Listener
	Stats    Stats
}

// dirPageBlocks is the directory page size in blocks (power of two).
const dirPageBlocks = 128

// dirPage holds the entries for one aligned group of dirPageBlocks blocks.
// Untouched entries read as {sharers: 0, owner: -1}, exactly what the
// map-based directory materialized lazily.
type dirPage [dirPageBlocks]dirEntry

// NewMemSys builds the memory system with the paper's cache geometry.
func NewMemSys(numCores int) *MemSys {
	m := &MemSys{
		NumCores: numCores,
		noc:      interconnect.New(),
		dir:      make(map[mem.BlockAddr]*dirPage),
		listener: nopListener{},
	}
	for i := 0; i < numCores; i++ {
		m.L1s = append(m.L1s, cache.New(cache.L1Config))
	}
	for i := 0; i < interconnect.L2Banks; i++ {
		m.l2banks = append(m.l2banks, cache.New(cache.L2BankConfig))
	}
	return m
}

// SetListener attaches the metastate listener (the HTM system).
func (m *MemSys) SetListener(l Listener) { m.listener = l }

func (m *MemSys) entry(b mem.BlockAddr) *dirEntry {
	key := b / dirPageBlocks
	p := m.lastPage
	if p == nil || m.lastKey != key {
		var ok bool
		p, ok = m.dir[key]
		if !ok {
			p = new(dirPage)
			for i := range p {
				p[i].owner = -1
			}
			m.dir[key] = p
		}
		m.lastKey, m.lastPage = key, p
	}
	return &p[b%dirPageBlocks]
}

// SharerMask returns the bitmask of cores currently holding a copy of b
// (bit c set means core c has a copy). This is the allocation-free form of
// Sharers, for latency-bearing probe loops.
func (m *MemSys) SharerMask(b mem.BlockAddr) uint32 {
	key := b / dirPageBlocks
	if m.lastPage != nil && m.lastKey == key {
		return m.lastPage[b%dirPageBlocks].sharers
	}
	if p, ok := m.dir[key]; ok {
		m.lastKey, m.lastPage = key, p
		return p[b%dirPageBlocks].sharers
	}
	return 0
}

// Sharers returns the cores currently holding a copy of b, in core order
// (diagnostics and tests; hot paths walk SharerMask instead).
func (m *MemSys) Sharers(b mem.BlockAddr) []int {
	var out []int
	for mask := m.SharerMask(b); mask != 0; mask &= mask - 1 {
		out = append(out, bits.TrailingZeros32(mask))
	}
	return out
}

// LineAt returns core's L1 line for b without disturbing LRU state.
func (m *MemSys) LineAt(core int, b mem.BlockAddr) *cache.Line {
	return m.L1s[core].Peek(b)
}

// HasCopy reports whether core's L1 holds b.
func (m *MemSys) HasCopy(core int, b mem.BlockAddr) bool {
	return m.L1s[core].Peek(b) != nil
}

// Access performs a load (write=false) or store (write=true) by core to
// block b, updating residency and permissions and returning the latency.
// The Listener hooks fire for every copy created or lost.
func (m *MemSys) Access(core int, b mem.BlockAddr, write bool) mem.Cycle {
	l1 := m.L1s[core]
	line := l1.Lookup(b)
	if line != nil {
		if !write && line.State.CanRead() {
			m.Stats.L1Hits++
			return L1HitCycles
		}
		if write && line.State.CanWrite() {
			m.Stats.L1Hits++
			line.State = cache.Modified
			return L1HitCycles
		}
		if write && line.State == cache.Shared {
			// Upgrade: invalidate the other sharers, keep our line.
			m.Stats.L1Misses++
			m.Stats.Upgrades++
			lat := L1HitCycles + m.requestLatency(core, b, 0) + DirCycles
			lat += m.invalidateOthers(core, b)
			line.State = cache.Modified
			e := m.entry(b)
			e.owner = int8(core)
			m.listener.CopyCreated(core, b, line, FillInfo{Exclusive: true, FromOwner: -1, Upgrade: true})
			return lat
		}
	}

	// Full miss.
	m.Stats.L1Misses++
	lat := L1HitCycles + m.requestLatency(core, b, 0) + DirCycles
	e := m.entry(b)

	fromOwner := -1
	if e.owner >= 0 && int(e.owner) != core {
		// Forward from the current E/M owner.
		owner := int(e.owner)
		m.Stats.Forwards++
		lat += m.noc.Latency(interconnect.BankTile(interconnect.BankOf(b)), interconnect.CoreTile(owner), 0)
		lat += L1HitCycles
		lat += m.noc.CoreToCore(owner, core, mem.BlockBytes)
		fromOwner = owner
		if write {
			// Owner's copy is invalidated; its metastate rides the ack.
			m.loseCopy(owner, b, LossInvalidate)
		} else {
			// Owner downgrades to Shared and writes back; its line and
			// metabits stay in place.
			ol := m.L1s[owner].Peek(b)
			if ol != nil && ol.State == cache.Modified {
				m.Stats.Writebacks++
				m.l2Fill(b)
			}
			if ol != nil {
				ol.State = cache.Shared
			}
			e.owner = -1
		}
	} else {
		// Data comes from the home bank (L2) or memory.
		bank := interconnect.BankOf(b)
		if m.l2banks[bank].Lookup(b) != nil {
			m.Stats.L2Hits++
			lat += L2HitCycles
		} else {
			m.Stats.MemAccesses++
			lat += L2HitCycles + m.noc.BankToMem(bank, b, 0) + DRAMCycles +
				m.noc.BankToMem(bank, b, mem.BlockBytes)
			m.l2Fill(b)
		}
		lat += m.noc.BankToCore(bank, core, mem.BlockBytes)
	}

	if write {
		lat += m.invalidateOthers(core, b)
	}

	// Install the line, evicting a victim non-silently if necessary.
	state := cache.Shared
	if write {
		state = cache.Modified
	} else if e.sharers == 0 && e.owner < 0 {
		state = cache.Exclusive
	}
	victim, evicted := l1.Insert(b, state)
	if evicted {
		m.Stats.Evictions++
		m.retire(core, victim, LossEvict)
	}
	lat += L1FillCycles
	e = m.entry(b) // victim retirement may have touched the map
	e.sharers |= 1 << uint(core)
	if state == cache.Modified || state == cache.Exclusive {
		e.owner = int8(core)
	}
	newLine := l1.Peek(b)
	m.listener.CopyCreated(core, b, newLine, FillInfo{Exclusive: write, FromOwner: fromOwner})
	return lat
}

// requestLatency is the cost of the request message from core to b's home
// bank.
func (m *MemSys) requestLatency(core int, b mem.BlockAddr, payload int) mem.Cycle {
	return m.noc.CoreToBank(core, interconnect.BankOf(b), payload)
}

// invalidateOthers removes all other cores' copies of b, charging the
// longest invalidation round trip (invalidations are sent in parallel).
func (m *MemSys) invalidateOthers(requester int, b mem.BlockAddr) mem.Cycle {
	e := m.entry(b)
	bankTile := interconnect.BankTile(interconnect.BankOf(b))
	var worst mem.Cycle
	for c := 0; c < m.NumCores; c++ {
		if c == requester || e.sharers&(1<<uint(c)) == 0 {
			continue
		}
		m.Stats.Invalidations++
		rt := m.noc.Latency(bankTile, interconnect.CoreTile(c), 0) + L1HitCycles +
			m.noc.CoreToCore(c, requester, 0)
		if rt > worst {
			worst = rt
		}
		m.loseCopy(c, b, LossInvalidate)
	}
	if int(e.owner) != requester {
		e.owner = -1
	}
	return worst
}

// loseCopy invalidates core's copy of b and fires the listener.
func (m *MemSys) loseCopy(core int, b mem.BlockAddr, reason LossReason) {
	old, ok := m.L1s[core].Invalidate(b)
	if !ok {
		return
	}
	if old.State == cache.Modified {
		m.Stats.Writebacks++
		m.l2Fill(b)
	}
	e := m.entry(b)
	e.sharers &^= 1 << uint(core)
	if int(e.owner) == core {
		e.owner = -1
	}
	m.listener.CopyLost(core, b, old.Meta, reason)
}

// retire handles a victim chosen by L1 replacement (non-silent eviction).
func (m *MemSys) retire(core int, victim cache.Line, reason LossReason) {
	if victim.State == cache.Modified {
		m.Stats.Writebacks++
		m.l2Fill(victim.Block)
	}
	e := m.entry(victim.Block)
	e.sharers &^= 1 << uint(core)
	if int(e.owner) == core {
		e.owner = -1
	}
	m.listener.CopyLost(core, victim.Block, victim.Meta, reason)
}

// l2Fill caches b in its home L2 bank (timing only; L2 victims are silent
// because home metastate lives at memory in this model).
func (m *MemSys) l2Fill(b mem.BlockAddr) {
	bank := m.l2banks[interconnect.BankOf(b)]
	if bank.Lookup(b) == nil {
		bank.Insert(b, cache.Shared)
	}
}

// EvictAll removes every L1 copy of block b, reporting each loss as an
// eviction (used by the paging model before a page leaves memory).
func (m *MemSys) EvictAll(b mem.BlockAddr) {
	for c := 0; c < m.NumCores; c++ {
		m.loseCopy(c, b, LossEvict)
	}
	bank := m.l2banks[interconnect.BankOf(b)]
	bank.Invalidate(b)
}

// FlushCore invalidates every line in core's L1 (used by tests and the
// paging model); each loss is reported as an eviction.
func (m *MemSys) FlushCore(core int) {
	var blocks []mem.BlockAddr
	m.L1s[core].VisitValid(func(l *cache.Line) { blocks = append(blocks, l.Block) })
	for _, b := range blocks {
		m.loseCopy(core, b, LossEvict)
	}
}
