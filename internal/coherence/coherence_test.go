package coherence

import (
	"testing"

	"tokentm/internal/cache"
	"tokentm/internal/mem"
	"tokentm/internal/metastate"
)

// recorder captures listener callbacks.
type recorder struct {
	created []string
	lost    []string
	fills   []FillInfo
}

func (r *recorder) CopyCreated(core int, b mem.BlockAddr, line *cache.Line, info FillInfo) {
	r.created = append(r.created, eventKey(core, b))
	r.fills = append(r.fills, info)
}

func (r *recorder) CopyLost(core int, b mem.BlockAddr, m metastate.L1Meta, reason LossReason) {
	r.lost = append(r.lost, eventKey(core, b))
}

func eventKey(core int, b mem.BlockAddr) string {
	return string(rune('A'+core)) + ":" + b.String()
}

func newSys() (*MemSys, *recorder) {
	m := NewMemSys(4)
	r := &recorder{}
	m.SetListener(r)
	return m, r
}

func TestReadMissThenHit(t *testing.T) {
	m, r := newSys()
	const b mem.BlockAddr = 100
	lat1 := m.Access(0, b, false)
	if lat1 <= L1HitCycles {
		t.Fatalf("miss latency too small: %d", lat1)
	}
	if m.Stats.MemAccesses != 1 || m.Stats.L1Misses != 1 {
		t.Fatalf("stats: %+v", m.Stats)
	}
	if len(r.created) != 1 || r.fills[0].Exclusive {
		t.Fatalf("fill events: %v %v", r.created, r.fills)
	}
	// First reader with no other sharers gets Exclusive (MESI).
	if l := m.LineAt(0, b); l == nil || l.State != cache.Exclusive {
		t.Fatalf("line state: %v", l)
	}
	lat2 := m.Access(0, b, false)
	if lat2 != L1HitCycles {
		t.Fatalf("hit latency: %d", lat2)
	}
	if m.Stats.L1Hits != 1 {
		t.Fatalf("hit not counted")
	}
}

func TestSilentEToMUpgrade(t *testing.T) {
	m, _ := newSys()
	const b mem.BlockAddr = 7
	m.Access(0, b, false) // E
	lat := m.Access(0, b, true)
	if lat != L1HitCycles {
		t.Fatalf("E->M should be an L1 hit, got %d", lat)
	}
	if l := m.LineAt(0, b); l.State != cache.Modified {
		t.Fatalf("state after E->M: %v", l.State)
	}
}

func TestSharedReaders(t *testing.T) {
	m, _ := newSys()
	const b mem.BlockAddr = 7
	m.Access(0, b, false)
	m.Access(1, b, false)
	m.Access(2, b, false)
	if got := m.Sharers(b); len(got) != 3 {
		t.Fatalf("sharers: %v", got)
	}
	// Second read should be an L2 hit, not memory.
	if m.Stats.MemAccesses != 1 {
		t.Fatalf("memory touched %d times", m.Stats.MemAccesses)
	}
	for c := 0; c < 3; c++ {
		if l := m.LineAt(c, b); l == nil || !l.State.CanRead() {
			t.Fatalf("core %d lost its copy", c)
		}
	}
	// Core 0's copy was downgraded from E to S when core 1 read.
	if l := m.LineAt(0, b); l.State != cache.Shared {
		t.Fatalf("core 0 state: %v", l.State)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m, r := newSys()
	const b mem.BlockAddr = 9
	m.Access(0, b, false)
	m.Access(1, b, false)
	m.Access(2, b, true) // write: invalidates 0 and 1
	if m.HasCopy(0, b) || m.HasCopy(1, b) {
		t.Fatal("sharers not invalidated")
	}
	if l := m.LineAt(2, b); l == nil || l.State != cache.Modified {
		t.Fatalf("writer state: %v", l)
	}
	if got := m.Sharers(b); len(got) != 1 || got[0] != 2 {
		t.Fatalf("sharers after write: %v", got)
	}
	if len(r.lost) < 2 {
		t.Fatalf("invalidation events: %v", r.lost)
	}
	if m.Stats.Invalidations != 2 {
		t.Fatalf("invalidations: %d", m.Stats.Invalidations)
	}
	// The write fill must be exclusive.
	last := r.fills[len(r.fills)-1]
	if !last.Exclusive {
		t.Fatal("write fill not exclusive")
	}
}

func TestUpgradeKeepsLine(t *testing.T) {
	m, r := newSys()
	const b mem.BlockAddr = 11
	m.Access(0, b, false)
	m.Access(1, b, false) // both shared now
	m.L1s[0].Peek(b).Meta = metastate.L1Meta{R: true, Attr: 1}
	m.Access(0, b, true) // S->M upgrade
	l := m.LineAt(0, b)
	if l == nil || l.State != cache.Modified {
		t.Fatalf("upgrade state: %v", l)
	}
	if !l.Meta.R {
		t.Fatal("upgrade must retain the line's metabits")
	}
	if m.HasCopy(1, b) {
		t.Fatal("other sharer not invalidated on upgrade")
	}
	last := r.fills[len(r.fills)-1]
	if !last.Exclusive || !last.Upgrade {
		t.Fatalf("upgrade fill info: %+v", last)
	}
	if m.Stats.Upgrades != 1 {
		t.Fatal("upgrade not counted")
	}
}

func TestOwnerForwarding(t *testing.T) {
	m, r := newSys()
	const b mem.BlockAddr = 13
	m.Access(0, b, true) // core 0 owns M
	m.Access(1, b, false)
	// Data must have been forwarded from core 0, which downgrades to S.
	if m.Stats.Forwards != 1 {
		t.Fatalf("forwards: %d", m.Stats.Forwards)
	}
	if l := m.LineAt(0, b); l == nil || l.State != cache.Shared {
		t.Fatalf("owner after downgrade: %v", l)
	}
	if m.Stats.Writebacks != 1 {
		t.Fatalf("M downgrade must write back: %d", m.Stats.Writebacks)
	}
	fi := r.fills[len(r.fills)-1]
	if fi.FromOwner != 0 || fi.Exclusive {
		t.Fatalf("fill info: %+v", fi)
	}
}

func TestWriteStealsFromOwner(t *testing.T) {
	m, _ := newSys()
	const b mem.BlockAddr = 15
	m.Access(0, b, true)
	m.Access(1, b, true)
	if m.HasCopy(0, b) {
		t.Fatal("old owner keeps a copy after remote write")
	}
	if l := m.LineAt(1, b); l == nil || l.State != cache.Modified {
		t.Fatalf("new owner: %v", l)
	}
}

// TestNonSilentEviction fills one L1 set beyond capacity and checks the
// victim's CopyLost event fires and the directory forgets the copy.
func TestNonSilentEviction(t *testing.T) {
	m, r := newSys()
	sets := mem.BlockAddr(m.L1s[0].Sets())
	assoc := m.L1s[0].Assoc()
	for i := 0; i <= assoc; i++ {
		m.Access(0, sets*mem.BlockAddr(i)+1, false)
	}
	if got := m.L1s[0].CountValid(); got != assoc {
		t.Fatalf("valid lines: %d", got)
	}
	if len(r.lost) != 1 {
		t.Fatalf("eviction events: %v", r.lost)
	}
	// The victim (LRU: first inserted) is gone from the directory.
	if m.HasCopy(0, sets*0+1) {
		t.Fatal("victim still resident")
	}
	if got := m.Sharers(sets*0 + 1); len(got) != 0 {
		t.Fatalf("directory remembers victim: %v", got)
	}
}

func TestFlushCore(t *testing.T) {
	m, r := newSys()
	for i := 0; i < 5; i++ {
		m.Access(0, mem.BlockAddr(100+i), true)
	}
	m.FlushCore(0)
	if m.L1s[0].CountValid() != 0 {
		t.Fatal("flush incomplete")
	}
	if len(r.lost) != 5 {
		t.Fatalf("flush events: %d", len(r.lost))
	}
	if m.Stats.Writebacks != 5 {
		t.Fatalf("flush writebacks: %d", m.Stats.Writebacks)
	}
}

func TestLatencyOrdering(t *testing.T) {
	m, _ := newSys()
	const b mem.BlockAddr = 21
	memLat := m.Access(0, b, false) // memory fetch
	m.FlushCore(0)
	l2Lat := m.Access(0, b, false) // now in L2
	hitLat := m.Access(0, b, false)
	if !(hitLat < l2Lat && l2Lat < memLat) {
		t.Fatalf("latency ordering violated: hit=%d l2=%d mem=%d", hitLat, l2Lat, memLat)
	}
}
