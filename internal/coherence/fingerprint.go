package coherence

import (
	"sort"

	"tokentm/internal/mem"
	"tokentm/internal/statehash"
)

// FingerprintTo mixes the memory system's logical state: the directory (in
// ascending block order, skipping entries with no copies — the directory
// lazily materializes empty entries, which must not distinguish states) and
// every cache's content. Stats are measurement, not state, and are excluded.
func (m *MemSys) FingerprintTo(h *statehash.Hash) {
	keys := make([]mem.BlockAddr, 0, len(m.dir))
	for k := range m.dir {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	h.Mark('D')
	for _, k := range keys {
		p := m.dir[k]
		for i := range p {
			e := &p[i]
			if e.sharers == 0 && e.owner < 0 {
				continue // untouched or emptied entry: not state
			}
			h.U64(uint64(k*dirPageBlocks) + uint64(i))
			h.U32(e.sharers)
			h.Int(int(e.owner))
		}
	}
	h.Mark('d')
	for i, c := range m.L1s {
		h.Mark('1')
		h.Int(i)
		c.FingerprintTo(h)
	}
	for i, c := range m.l2banks {
		h.Mark('2')
		h.Int(i)
		c.FingerprintTo(h)
	}
}
