package coherence

import (
	"sort"

	"tokentm/internal/mem"
	"tokentm/internal/statehash"
)

// FingerprintTo mixes the memory system's logical state: the directory (in
// ascending block order, skipping entries with no copies — the directory
// lazily materializes empty entries, which must not distinguish states) and
// every cache's content. Stats are measurement, not state, and are excluded.
func (m *MemSys) FingerprintTo(h *statehash.Hash) {
	blocks := make([]mem.BlockAddr, 0, len(m.dir))
	for b := range m.dir {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	h.Mark('D')
	for _, b := range blocks {
		e := m.dir[b]
		if e.sharers == 0 && e.owner < 0 {
			continue // lazily materialized empty entry: not state
		}
		h.U64(uint64(b))
		h.U32(e.sharers)
		h.Int(int(e.owner))
	}
	h.Mark('d')
	for i, c := range m.L1s {
		h.Mark('1')
		h.Int(i)
		c.FingerprintTo(h)
	}
	for i, c := range m.l2banks {
		h.Mark('2')
		h.Int(i)
		c.FingerprintTo(h)
	}
}
