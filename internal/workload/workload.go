// Package workload provides synthetic transactional workload generators
// calibrated to the paper's Table 5: the same transaction counts and
// read/write-set size distributions (average and maximum, in 64-byte
// blocks) as the STAMP and SPLASH programs the paper measures, with
// per-workload contention models.
//
// The real benchmarks are not reproducible here (they are C/SPARC programs
// run under Simics), but the performance effects the paper studies depend on
// transaction footprint, frequency and contention, which these generators
// reproduce by construction; the regenerated Table 5 validates the
// calibration.
package workload

import (
	"math"
	"math/rand"
	"sync"

	"tokentm/internal/mem"
	"tokentm/internal/randstream"
	"tokentm/internal/sim"
)

// Spec describes one workload.
type Spec struct {
	Name  string
	Input string
	// Suite is "SPLASH" (small, carefully-tuned critical sections) or
	// "STAMP" (naive TM programs with large transactions).
	Suite string

	// NumXacts is the paper's dynamic transaction count (Table 5).
	NumXacts int
	// AvgRead/AvgWrite and MaxRead/MaxWrite are Table 5's read/write-set
	// sizes in blocks.
	AvgRead, AvgWrite float64
	MaxRead, MaxWrite int

	// TailP is the probability of a heavy-tail transaction whose set size
	// is drawn near the maximum (Raytrace and Genome have rare huge
	// transactions; Delaunay's are uniformly large).
	TailP float64

	// HotBlocks is the size of the contended hot region; SharedFrac is
	// the fraction of accesses directed at it. Together they set the
	// conflict rate.
	HotBlocks  int
	SharedFrac float64

	// PoolBlocks is the size of the weakly-shared main data region.
	PoolBlocks int

	// InsideWork and OutsideWork are compute cycles per transactional
	// access and between transactions: SPLASH programs spend little time
	// in transactions, STAMP programs most of it.
	InsideWork  mem.Cycle
	OutsideWork mem.Cycle

	// ScanTailReads models workloads whose rare huge transactions are
	// read-only scans of shared immutable data (Raytrace's scene BVH,
	// Genome's sequence segments): their reads come from a dedicated
	// region that writes never touch, so they do not serialize writers.
	ScanTailReads bool
}

// heapBase places workload data low in the address space, well below logs.
const heapBase mem.Addr = 1 << 20

// Specs returns the eight workloads of Table 5 in the paper's order.
func Specs() []Spec {
	return []Spec{
		{
			Name: "Barnes", Input: "512 bodies", Suite: "SPLASH",
			NumXacts: 2553, AvgRead: 6.1, AvgWrite: 4.2, MaxRead: 42, MaxWrite: 39,
			TailP: 0.02, HotBlocks: 128, SharedFrac: 0.10, PoolBlocks: 8192,
			InsideWork: 40, OutsideWork: 3000,
		},
		{
			Name: "Cholesky", Input: "tk14.0", Suite: "SPLASH",
			NumXacts: 60203, AvgRead: 2.4, AvgWrite: 1.7, MaxRead: 6, MaxWrite: 4,
			TailP: 0, HotBlocks: 256, SharedFrac: 0.06, PoolBlocks: 16384,
			InsideWork: 25, OutsideWork: 900,
		},
		{
			Name: "Radiosity", Input: "batch", Suite: "SPLASH",
			NumXacts: 21786, AvgRead: 1.8, AvgWrite: 1.5, MaxRead: 25, MaxWrite: 24,
			TailP: 0.01, HotBlocks: 96, SharedFrac: 0.12, PoolBlocks: 8192,
			InsideWork: 45, OutsideWork: 1500,
		},
		{
			Name: "Raytrace", Input: "teapot", Suite: "SPLASH",
			NumXacts: 47783, AvgRead: 5.1, AvgWrite: 2.0, MaxRead: 594, MaxWrite: 4,
			TailP: 0.004, HotBlocks: 192, SharedFrac: 0.08, PoolBlocks: 16384,
			InsideWork: 25, OutsideWork: 1200, ScanTailReads: true,
		},
		{
			Name: "Delaunay", Input: "gen2.2-m30", Suite: "STAMP",
			NumXacts: 16384, AvgRead: 51.4, AvgWrite: 38.8, MaxRead: 507, MaxWrite: 345,
			TailP: 0.05, HotBlocks: 2048, SharedFrac: 0.01, PoolBlocks: 1048576,
			InsideWork: 300, OutsideWork: 400,
		},
		{
			Name: "Genome", Input: "g1024-s32-n65536", Suite: "STAMP",
			NumXacts: 100115, AvgRead: 14.5, AvgWrite: 2.1, MaxRead: 768, MaxWrite: 18,
			TailP: 0.003, HotBlocks: 1024, SharedFrac: 0.03, PoolBlocks: 65536,
			InsideWork: 100, OutsideWork: 300, ScanTailReads: true,
		},
		{
			Name: "Vacation-Low", Input: "low contention", Suite: "STAMP",
			NumXacts: 16399, AvgRead: 70.7, AvgWrite: 18.1, MaxRead: 162, MaxWrite: 75,
			TailP: 0.02, HotBlocks: 4096, SharedFrac: 0.02, PoolBlocks: 524288,
			InsideWork: 150, OutsideWork: 400,
		},
		{
			Name: "Vacation-High", Input: "high contention", Suite: "STAMP",
			NumXacts: 16399, AvgRead: 99.1, AvgWrite: 18.6, MaxRead: 331, MaxWrite: 80,
			TailP: 0.03, HotBlocks: 512, SharedFrac: 0.06, PoolBlocks: 65536,
			InsideWork: 150, OutsideWork: 400,
		},
	}
}

// Names returns the workload names in Table 5 order: the canonical
// workload axis for a harness job grid.
func Names() []string {
	specs := Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// byName is the lazily built name -> Spec index behind ByName, so the
// harness's per-job lookups don't rebuild the spec list each time.
var byName map[string]Spec
var byNameOnce sync.Once

// ByName returns the spec with the given name.
func ByName(name string) (Spec, bool) {
	byNameOnce.Do(func() {
		specs := Specs()
		byName = make(map[string]Spec, len(specs))
		for _, s := range specs {
			byName[s.Name] = s
		}
	})
	s, ok := byName[name]
	return s, ok
}

// setSizer draws read/write-set sizes matching a target mean and max: a
// geometric body plus a uniform heavy tail with probability TailP. The
// geometric's mean is solved so the mixture hits the target.
type setSizer struct {
	mean   float64
	max    int
	tailP  float64
	tailLo float64 // log-uniform tail lower bound
	geomP  float64 // success probability of the geometric body
}

func newSetSizer(mean float64, max int, tailP float64) setSizer {
	if max < 1 {
		max = 1
	}
	if mean < 1 {
		mean = 1
	}
	// The heavy tail is log-uniform on [tailLo, max]: most tail
	// transactions are a few times the mean, rare ones approach the
	// maximum (matching the paper's Table 6, where software-release
	// transactions average well below the Table 5 maxima).
	tailLo := 2 * mean
	if tailLo >= float64(max) {
		tailLo = float64(max) / 2
	}
	if tailLo < 2 {
		tailLo = 2
	}
	tailMean := (float64(max) - tailLo) / math.Log(float64(max)/tailLo)
	bodyMean := mean
	if tailP > 0 && tailMean > mean {
		bodyMean = (mean - tailP*tailMean) / (1 - tailP)
		if bodyMean < 1 {
			bodyMean = 1
		}
	}
	// Solve for the geometric success probability whose max-clamped mean
	// E[min(X,m)] = (1-(1-p)^m)/p equals bodyMean, by bisection.
	clampedMean := func(p float64) float64 {
		return (1 - math.Pow(1-p, float64(max))) / p
	}
	lo, hi := 1e-9, 1.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if clampedMean(mid) > bodyMean {
			lo = mid
		} else {
			hi = mid
		}
	}
	return setSizer{mean: mean, max: max, tailP: tailP, tailLo: tailLo, geomP: (lo + hi) / 2}
}

// draw samples one set size in [1, max], reporting heavy-tail draws.
func (s setSizer) draw(rng *rand.Rand) (int, bool) {
	if s.tailP > 0 && rng.Float64() < s.tailP {
		n := int(s.tailLo * math.Pow(float64(s.max)/s.tailLo, rng.Float64()))
		if n > s.max {
			n = s.max
		}
		if n < 2 {
			n = 2
		}
		return n, true
	}
	// Geometric with success probability geomP, clamped.
	n := 1
	if s.geomP < 1 {
		u := rng.Float64()
		n = 1 + int(math.Log(1-u)/math.Log(1-s.geomP))
	}
	if n > s.max {
		n = s.max
	}
	if n < 1 {
		n = 1
	}
	return n, false
}

// Build spawns the workload's threads on machine m. scale in (0,1] shrinks
// the transaction count for fast runs; seed perturbs the generators.
func (s Spec) Build(m *sim.Machine, threads int, scale float64, seed int64) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	total := int(float64(s.NumXacts) * scale)
	if total < threads {
		total = threads
	}
	perThread := total / threads

	hotBase := heapBase
	poolBase := hotBase + mem.Addr(s.HotBlocks)*mem.BlockBytes
	scanBase := poolBase + mem.Addr(s.PoolBlocks)*mem.BlockBytes
	scanBlocks := 4 * s.PoolBlocks

	rs := newSetSizer(s.AvgRead, s.MaxRead, s.TailP)
	ws := newSetSizer(s.AvgWrite, s.MaxWrite, s.TailP)

	for t := 0; t < threads; t++ {
		rng := randstream.New(seed*7919 + int64(t)*104729 + 1)
		m.Spawn(func(tc *sim.Ctx) {
			for i := 0; i < perThread; i++ {
				nr, rTail := rs.draw(rng)
				nw, _ := ws.draw(rng)
				if s.ScanTailReads && rTail {
					// Read-only scan of shared immutable data plus a
					// small ordinary write set.
					start := mem.Addr(rng.Intn(scanBlocks - nr))
					writes := s.pickBlocks(rng, nw, hotBase, poolBase)
					tc.Atomic(func(tx *sim.Tx) {
						for j := 0; j < nr; j++ {
							tx.Load(scanBase + (start+mem.Addr(j))*mem.BlockBytes)
							tx.Work(s.InsideWork)
						}
						for _, a := range writes {
							tx.Store(a, tx.Load(a)+1)
						}
					})
					tc.Work(s.OutsideWork)
					continue
				}
				// Written blocks overlap the read set where possible
				// (read-modify-writes); excess writes hit fresh blocks.
				n := nr
				if nw > n {
					n = nw
				}
				blocks := s.pickBlocks(rng, n, hotBase, poolBase)
				tc.Atomic(func(tx *sim.Tx) {
					for j, a := range blocks {
						var v uint64
						if j < nr {
							v = tx.Load(a)
						}
						tx.Work(s.InsideWork)
						if j < nw {
							tx.Store(a, v+1)
						}
					}
				})
				tc.Work(s.OutsideWork)
			}
		})
	}
}

// pickBlocks selects n distinct block addresses: SharedFrac of them from the
// contended hot region, the rest from the weakly-shared pool.
func (s Spec) pickBlocks(rng *rand.Rand, n int, hotBase, poolBase mem.Addr) []mem.Addr {
	out := make([]mem.Addr, 0, n)
	seen := make(map[mem.Addr]bool, n)
	for len(out) < n {
		var a mem.Addr
		if rng.Float64() < s.SharedFrac {
			a = hotBase + mem.Addr(rng.Intn(s.HotBlocks))*mem.BlockBytes
		} else {
			a = poolBase + mem.Addr(rng.Intn(s.PoolBlocks))*mem.BlockBytes
		}
		if seen[a] {
			continue
		}
		seen[a] = true
		out = append(out, a)
	}
	return out
}
