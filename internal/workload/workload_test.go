package workload

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"tokentm/internal/core"
	"tokentm/internal/sim"
)

func TestSpecsMatchTable5(t *testing.T) {
	specs := Specs()
	if len(specs) != 8 {
		t.Fatalf("want 8 workloads, got %d", len(specs))
	}
	// Spot-check the paper's numbers survived transcription.
	want := map[string]struct {
		n          int
		avgR, avgW float64
		maxR, maxW int
	}{
		"Barnes":        {2553, 6.1, 4.2, 42, 39},
		"Cholesky":      {60203, 2.4, 1.7, 6, 4},
		"Radiosity":     {21786, 1.8, 1.5, 25, 24},
		"Raytrace":      {47783, 5.1, 2.0, 594, 4},
		"Delaunay":      {16384, 51.4, 38.8, 507, 345},
		"Genome":        {100115, 14.5, 2.1, 768, 18},
		"Vacation-Low":  {16399, 70.7, 18.1, 162, 75},
		"Vacation-High": {16399, 99.1, 18.6, 331, 80},
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected workload %q", s.Name)
		}
		if s.NumXacts != w.n || s.AvgRead != w.avgR || s.AvgWrite != w.avgW ||
			s.MaxRead != w.maxR || s.MaxWrite != w.maxW {
			t.Errorf("%s parameters drifted from Table 5: %+v", s.Name, s)
		}
	}
	if _, ok := ByName("Delaunay"); !ok {
		t.Error("ByName lookup failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName false positive")
	}
}

// TestSetSizerCalibration: sampled means should track the Table 5 targets
// within ~20% and never exceed the max.
func TestSetSizerCalibration(t *testing.T) {
	for _, s := range Specs() {
		rng := rand.New(rand.NewSource(1))
		sz := newSetSizer(s.AvgRead, s.MaxRead, s.TailP)
		const n = 200000
		sum := 0
		for i := 0; i < n; i++ {
			v, _ := sz.draw(rng)
			if v < 1 || v > s.MaxRead {
				t.Fatalf("%s: size %d outside [1,%d]", s.Name, v, s.MaxRead)
			}
			sum += v
		}
		mean := float64(sum) / n
		if math.Abs(mean-s.AvgRead)/s.AvgRead > 0.20 {
			t.Errorf("%s: sampled read mean %.2f vs target %.2f", s.Name, mean, s.AvgRead)
		}
	}
}

// TestBuildRunsAndMeasures runs a small scaled workload end to end on
// TokenTM and checks the measured footprints resemble the spec.
func TestBuildRunsAndMeasures(t *testing.T) {
	spec, _ := ByName("Cholesky")
	m := sim.New(sim.Config{Cores: 8, RetryLimit: 8})
	tok := core.New(m.Mem, m.Store)
	m.SetHTM(tok)
	spec.Build(m, 8, 0.01, 1)
	m.Run()
	if len(m.Commits) == 0 {
		t.Fatal("no commits")
	}
	var rsum, wsum float64
	for _, r := range m.Commits {
		rsum += float64(r.ReadBlocks)
		wsum += float64(r.WriteBlocks)
		if r.ReadBlocks > spec.MaxRead {
			t.Fatalf("read set %d exceeds Table 5 max %d", r.ReadBlocks, spec.MaxRead)
		}
	}
	n := float64(len(m.Commits))
	if math.Abs(rsum/n-spec.AvgRead) > 1.5 {
		t.Errorf("measured avg read set %.2f vs target %.2f", rsum/n, spec.AvgRead)
	}
	if math.Abs(wsum/n-spec.AvgWrite) > 1.5 {
		t.Errorf("measured avg write set %.2f vs target %.2f", wsum/n, spec.AvgWrite)
	}
	if err := tok.CheckBookkeeping(); err != nil {
		t.Fatal(err)
	}
}

// TestScaling: scale cuts the transaction count proportionally.
func TestScaling(t *testing.T) {
	spec, _ := ByName("Radiosity")
	m := sim.New(sim.Config{Cores: 4, RetryLimit: 8})
	m.SetHTM(core.New(m.Mem, m.Store))
	spec.Build(m, 4, 0.002, 1)
	m.Run()
	want := int(float64(spec.NumXacts)*0.002) / 4 * 4
	if len(m.Commits) != want {
		t.Fatalf("commits %d, want %d", len(m.Commits), want)
	}
}

func TestNamesMatchSpecs(t *testing.T) {
	names := Names()
	specs := Specs()
	if len(names) != len(specs) {
		t.Fatalf("%d names for %d specs", len(names), len(specs))
	}
	seen := make(map[string]bool, len(names))
	for i, s := range specs {
		if names[i] != s.Name {
			t.Fatalf("names[%d]=%q, spec %q", i, names[i], s.Name)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate workload name %q — ByName's index would drop one", s.Name)
		}
		seen[s.Name] = true
		// The lazily built index must serve the exact spec, not a stale or
		// partial copy.
		got, ok := ByName(names[i])
		if !ok {
			t.Fatalf("ByName misses %q", names[i])
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("ByName(%q) = %+v, Specs()[%d] = %+v", names[i], got, i, s)
		}
	}
}
