package eccmeta

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFreedBitsArithmetic(t *testing.T) {
	// The paper's claim: 72*4 - 256 - 10 = 22 bits, enough for 16
	// metabits + 6 SECDED check bits.
	if FreedBits != 22 {
		t.Fatalf("freed bits = %d, want 22", FreedBits)
	}
	if MetaBits+MetaCheckBits != FreedBits {
		t.Fatalf("metabits %d + check %d != freed %d", MetaBits, MetaCheckBits, FreedBits)
	}
	// SECDED capacity: 2^(c-1) >= data + c must hold for both codes.
	if 1<<(GroupCheckBits-1) < GroupDataBits+GroupCheckBits {
		t.Error("group code has too few check bits")
	}
	if 1<<(MetaCheckBits-1) < MetaBits+MetaCheckBits {
		t.Error("meta code has too few check bits")
	}
}

func TestCleanRoundTrip(t *testing.T) {
	f := func(d0, d1, d2, d3 uint64, meta uint16) bool {
		cw := EncodeGroup([4]uint64{d0, d1, d2, d3}, meta)
		data, m, err := DecodeGroup(cw)
		return err == nil && data == [4]uint64{d0, d1, d2, d3} && m == meta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSingleDataErrorCorrected flips each of the 256 data bits in turn and
// verifies correction.
func TestSingleDataErrorCorrected(t *testing.T) {
	orig := [4]uint64{0xdeadbeefcafef00d, 0x0123456789abcdef, ^uint64(0), 0}
	const meta = 0xa5f3
	for i := 0; i < GroupDataBits; i++ {
		cw := EncodeGroup(orig, meta)
		cw.FlipDataBit(i)
		data, m, err := DecodeGroup(cw)
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if data != orig || m != meta {
			t.Fatalf("bit %d not corrected: %x %x", i, data, m)
		}
	}
}

// TestSingleMetaErrorCorrected flips each of the 16 metabits in turn.
func TestSingleMetaErrorCorrected(t *testing.T) {
	orig := [4]uint64{1, 2, 3, 4}
	const meta = 0x5a5a
	for i := 0; i < MetaBits; i++ {
		cw := EncodeGroup(orig, meta)
		cw.FlipMetaBit(i)
		data, m, err := DecodeGroup(cw)
		if err != nil {
			t.Fatalf("metabit %d: %v", i, err)
		}
		if data != orig || m != meta {
			t.Fatalf("metabit %d not corrected: %x %x", i, data, m)
		}
	}
}

// TestDoubleErrorsDetected injects random double-bit errors in each field
// and verifies they are detected (never silently miscorrected).
func TestDoubleErrorsDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	orig := [4]uint64{0x1111, 0x2222, 0x3333, 0x4444}
	const meta = 0x0f0f
	for trial := 0; trial < 500; trial++ {
		cw := EncodeGroup(orig, meta)
		i := rng.Intn(GroupDataBits)
		j := rng.Intn(GroupDataBits)
		for j == i {
			j = rng.Intn(GroupDataBits)
		}
		cw.FlipDataBit(i)
		cw.FlipDataBit(j)
		if _, _, err := DecodeGroup(cw); !errors.Is(err, ErrDoubleError) {
			t.Fatalf("data double error (%d,%d) not detected: %v", i, j, err)
		}
	}
	for trial := 0; trial < 200; trial++ {
		cw := EncodeGroup(orig, meta)
		i := rng.Intn(MetaBits)
		j := rng.Intn(MetaBits)
		for j == i {
			j = rng.Intn(MetaBits)
		}
		cw.FlipMetaBit(i)
		cw.FlipMetaBit(j)
		if _, _, err := DecodeGroup(cw); !errors.Is(err, ErrDoubleError) {
			t.Fatalf("meta double error (%d,%d) not detected: %v", i, j, err)
		}
	}
}

// TestCheckBitErrorHarmless flips stored check bits; the data must still
// decode intact.
func TestCheckBitErrorHarmless(t *testing.T) {
	orig := [4]uint64{9, 8, 7, 6}
	const meta = 0xbead
	for i := 0; i < GroupCheckBits; i++ {
		cw := EncodeGroup(orig, meta)
		cw.DataCheck ^= 1 << i
		data, m, err := DecodeGroup(cw)
		if err != nil || data != orig || m != meta {
			t.Fatalf("data check bit %d: %v %x %x", i, err, data, m)
		}
	}
	for i := 0; i < MetaCheckBits; i++ {
		cw := EncodeGroup(orig, meta)
		cw.MetaCheck ^= 1 << i
		data, m, err := DecodeGroup(cw)
		if err != nil || data != orig || m != meta {
			t.Fatalf("meta check bit %d: %v %x %x", i, err, data, m)
		}
	}
}

// TestErrorFieldIndependence: an error in the data field never disturbs the
// metabits and vice versa, because they are independent codewords.
func TestErrorFieldIndependence(t *testing.T) {
	orig := [4]uint64{0xaaaa, 0xbbbb, 0xcccc, 0xdddd}
	const meta = 0x1234
	cw := EncodeGroup(orig, meta)
	cw.FlipDataBit(100)
	cw.FlipMetaBit(3)
	data, m, err := DecodeGroup(cw)
	if err != nil {
		t.Fatal(err)
	}
	if data != orig || m != meta {
		t.Fatalf("independent single errors not both corrected: %x %x", data, m)
	}
}
