// Package eccmeta models how TokenTM stores 16 metabits per 64-byte memory
// block inside standard ECC DRAM, following the S3.mp recoding technique the
// paper cites (§4.3).
//
// Standard DRAM protects each 64-bit word with a (72,64) SECDED code: 8
// check bits per word, 32 check bits for a 4-word group. Regrouping four
// words into one 256-bit codeword needs only 10 check bits for SECDED
// (2^9 > 256+10 requires 10 bits including the overall parity), freeing
// 288 - 256 - 10 = 22 bits. Those 22 bits form an independent codeword
// carrying 16 metabits protected by their own 6-bit SECDED code
// (2^5 > 16+6).
//
// This package implements real Hamming SECDED encoders/decoders at both
// granularities and the MetaDRAM container that the memory controller model
// uses, so the claimed storage trick is demonstrated bit-for-bit, including
// single-error correction and double-error detection on the metabits.
package eccmeta

import (
	"errors"
	"fmt"
	"math/bits"
)

// Layout constants for the recoded codeword (§4.3).
const (
	// GroupDataBits is the data payload of a regrouped codeword: four
	// 64-bit words.
	GroupDataBits = 256
	// GroupCheckBits protects the 256 data bits with SECDED.
	GroupCheckBits = 10
	// MetaBits is the per-block metastate payload.
	MetaBits = 16
	// MetaCheckBits protects the metabits with SECDED.
	MetaCheckBits = 6
	// FreedBits is the independent codeword freed by regrouping:
	// 4*72 - 256 - 10 = 22 = 16 + 6.
	FreedBits = 4*72 - GroupDataBits - GroupCheckBits
)

// ErrDoubleError reports an uncorrectable (double-bit) error.
var ErrDoubleError = errors.New("eccmeta: uncorrectable double-bit error")

// secded implements an extended Hamming code over a dataBits-bit payload
// held in a []uint64 (little-endian bit order). checkBits includes the
// overall parity bit.
type secded struct {
	dataBits  int
	checkBits int // including overall parity
}

// codeBits is the total codeword length.
func (c secded) codeBits() int { return c.dataBits + c.checkBits }

// Positions: we place the codeword in "Hamming order": positions 1..n where
// positions that are powers of two hold check bits, everything else holds
// data bits, plus an overall parity bit at position 0.

// ham computes the Hamming check bits for data: the XOR of the codeword
// positions of all set data bits, where positions that are powers of two are
// reserved for the check bits themselves.
func (c secded) ham(data []uint64) uint32 {
	var checks uint32
	pos := 1
	di := 0
	for di < c.dataBits {
		if bits.OnesCount(uint(pos)) == 1 { // power of two: check position
			pos++
			continue
		}
		if data[di/64]>>(di%64)&1 == 1 {
			checks ^= uint32(pos)
		}
		pos++
		di++
	}
	return checks & (1<<(c.checkBits-1) - 1)
}

// dataParity returns the parity of the data bits.
func (c secded) dataParity(data []uint64) uint32 {
	var p uint32
	full := c.dataBits / 64
	for i := 0; i < full; i++ {
		p ^= uint32(bits.OnesCount64(data[i]))
	}
	if rem := c.dataBits % 64; rem != 0 {
		p ^= uint32(bits.OnesCount64(data[full] & (1<<rem - 1)))
	}
	return p & 1
}

// Encode computes the check bits for data (length ceil(dataBits/64) words).
// The returned check word packs: bit i = Hamming check bit for mask 2^i, and
// the top bit (bit checkBits-1) is the overall parity over data bits and
// Hamming check bits, making the full codeword's parity even.
func (c secded) Encode(data []uint64) uint32 {
	checks := c.ham(data)
	parity := (uint32(bits.OnesCount32(checks)) ^ c.dataParity(data)) & 1
	return checks | parity<<(c.checkBits-1)
}

// Decode checks data against stored checks, correcting a single-bit error in
// the data in place. It reports whether a correction happened and returns
// ErrDoubleError for uncorrectable errors. Single-bit errors confined to the
// check bits are ignored (the data is intact).
func (c secded) Decode(data []uint64, stored uint32) (corrected bool, err error) {
	hamMask := uint32(1<<(c.checkBits-1)) - 1
	storedHam := stored & hamMask
	syndrome := c.ham(data) ^ storedHam
	// Received-word parity: data bits, stored Hamming bits and the stored
	// parity bit together must have even parity.
	recvParity := c.dataParity(data) ^
		uint32(bits.OnesCount32(storedHam))&1 ^
		stored>>(c.checkBits-1)&1
	parityOdd := recvParity == 1
	switch {
	case syndrome == 0 && !parityOdd:
		return false, nil
	case syndrome == 0 && parityOdd:
		// Error in the overall parity bit itself; data intact.
		return false, nil
	case parityOdd:
		// Single-bit error at codeword position `syndrome`.
		if bits.OnesCount32(syndrome) == 1 {
			// The flipped bit is a Hamming check bit; data intact.
			return false, nil
		}
		di, ok := c.dataIndexOfPosition(int(syndrome))
		if !ok {
			return false, fmt.Errorf("eccmeta: syndrome %d outside codeword", syndrome)
		}
		data[di/64] ^= 1 << (di % 64)
		return true, nil
	default:
		// Nonzero syndrome with even parity: double error.
		return false, ErrDoubleError
	}
}

// dataIndexOfPosition maps a Hamming codeword position to its data bit index.
func (c secded) dataIndexOfPosition(pos int) (int, bool) {
	if pos <= 0 || pos > c.codeBits() {
		return 0, false
	}
	di := 0
	for p := 1; p <= pos; p++ {
		if bits.OnesCount(uint(p)) == 1 {
			continue
		}
		if p == pos {
			return di, true
		}
		di++
	}
	return 0, false
}

var (
	groupCode = secded{dataBits: GroupDataBits, checkBits: GroupCheckBits}
	metaCode  = secded{dataBits: MetaBits, checkBits: MetaCheckBits}
)

// Codeword is one recoded 288-bit DRAM beat group: 256 data bits, 16
// metabits, and the two SECDED check fields.
type Codeword struct {
	Data      [4]uint64
	DataCheck uint32
	Meta      uint16
	MetaCheck uint32
}

// EncodeGroup builds a codeword from four data words and 16 metabits.
func EncodeGroup(data [4]uint64, meta uint16) Codeword {
	cw := Codeword{Data: data, Meta: meta}
	cw.DataCheck = groupCode.Encode(data[:])
	m := []uint64{uint64(meta)}
	cw.MetaCheck = metaCode.Encode(m)
	return cw
}

// DecodeGroup verifies and (if needed) corrects the codeword, returning the
// data words and metabits.
func DecodeGroup(cw Codeword) (data [4]uint64, meta uint16, err error) {
	data = cw.Data
	if _, err = groupCode.Decode(data[:], cw.DataCheck); err != nil {
		return data, 0, fmt.Errorf("data field: %w", err)
	}
	m := []uint64{uint64(cw.Meta)}
	if _, err = metaCode.Decode(m, cw.MetaCheck); err != nil {
		return data, 0, fmt.Errorf("meta field: %w", err)
	}
	return data, uint16(m[0]), nil
}

// FlipDataBit injects a data-bit error (for tests and fault-injection).
func (cw *Codeword) FlipDataBit(i int) { cw.Data[i/64] ^= 1 << (i % 64) }

// FlipMetaBit injects a metabit error.
func (cw *Codeword) FlipMetaBit(i int) { cw.Meta ^= 1 << i }
