package cache

import (
	"sort"

	"tokentm/internal/statehash"
)

// FingerprintTo mixes the cache's logical content: per set, the valid lines
// sorted by block address with their coherence state and metabits.
//
// The LRU timestamps (Line.used, the global tick) and the physical way a
// line occupies are deliberately excluded: they are replacement-policy
// state, invisible to the protocol until an eviction consults them. Two
// schedules that touched the same blocks in different orders therefore merge
// — which is sound exactly while no replacement eviction occurs. The
// explorer guards that assumption by checking the memory system's eviction
// count stays zero for its (deliberately tiny) programs.
func (c *Cache) FingerprintTo(h *statehash.Hash) {
	scratch := make([]Line, 0, 8)
	for si, s := range c.sets {
		scratch = scratch[:0]
		for i := range s {
			if s[i].State != Invalid {
				scratch = append(scratch, s[i])
			}
		}
		if len(scratch) == 0 {
			continue
		}
		sort.Slice(scratch, func(i, j int) bool { return scratch[i].Block < scratch[j].Block })
		h.Mark('S')
		h.Int(si)
		h.Int(len(scratch))
		for _, l := range scratch {
			h.U64(uint64(l.Block))
			h.U64(uint64(l.State))
			l.Meta.FingerprintTo(h)
		}
	}
}
