// Package cache models the set-associative caches of the simulated CMP:
// per-core private 32 KB 4-way L1s whose lines carry TokenTM's sparse
// metabits (with flash-clear and flash-OR circuits, §4.4), and the shared
// 8 MB 8-way 32-bank L2 (§6.1).
package cache

import (
	"fmt"

	"tokentm/internal/mem"
	"tokentm/internal/metastate"
)

// CohState is a line's MESI coherence state.
type CohState uint8

// MESI states.
const (
	Invalid CohState = iota
	Shared
	Exclusive
	Modified
)

// String returns the single-letter MESI name.
func (s CohState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return "?"
	}
}

// CanRead reports whether the state grants read permission.
func (s CohState) CanRead() bool { return s != Invalid }

// CanWrite reports whether the state grants write permission.
func (s CohState) CanWrite() bool { return s == Exclusive || s == Modified }

// Line is one cache line: tag, coherence state, and (in L1s) the TokenTM
// metabits that travel with the block.
type Line struct {
	Block mem.BlockAddr
	State CohState
	Meta  metastate.L1Meta
	used  uint64 // LRU timestamp
}

// Cache is a set-associative cache. It tracks residency, replacement and
// per-line metabits; data values live in the simulator's global store.
//
// Sets materialize lazily on first touch: the modeled geometry (set count,
// associativity, replacement) is exactly that of the eager layout, but a
// run only pays host memory — and the zeroing of it — for the sets its
// footprint actually reaches. The 8 MB L2's line array dominated a
// machine's construction cost; small sweep runs touch a few percent of it.
type Cache struct {
	name    string
	sets    [][]Line
	setMask uint64
	tick    uint64
	assoc   int
	// arena is the current allocation chunk; newSet carves fixed-capacity
	// set slices from it, so *Line pointers handed out stay valid forever.
	arena []Line
}

// Config sizes a cache.
type Config struct {
	Name      string
	SizeBytes int
	Assoc     int
}

// L1Config is the paper's private L1: 32 KB, 4-way, 64 B blocks.
var L1Config = Config{Name: "L1", SizeBytes: 32 << 10, Assoc: 4}

// L2BankConfig is one of the 32 L2 banks: 8 MB total, 8-way.
var L2BankConfig = Config{Name: "L2bank", SizeBytes: (8 << 20) / 32, Assoc: 8}

// New builds a cache from a configuration.
func New(cfg Config) *Cache {
	nlines := cfg.SizeBytes / mem.BlockBytes
	nsets := nlines / cfg.Assoc
	if nsets == 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d must be a power of two", cfg.Name, nsets))
	}
	return &Cache{
		name:    cfg.Name,
		sets:    make([][]Line, nsets),
		setMask: uint64(nsets - 1),
		assoc:   cfg.Assoc,
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

func (c *Cache) set(b mem.BlockAddr) []Line {
	idx := uint64(b) & c.setMask
	if s := c.sets[idx]; s != nil {
		return s
	}
	return c.newSet(idx)
}

// chunkLines is the arena granularity; a multiple of every associativity.
const chunkLines = 512

// newSet materializes one set's lines on first touch.
func (c *Cache) newSet(idx uint64) []Line {
	if len(c.arena) < c.assoc {
		c.arena = make([]Line, chunkLines)
	}
	s := c.arena[:c.assoc:c.assoc]
	c.arena = c.arena[c.assoc:]
	c.sets[idx] = s
	return s
}

// Lookup returns the line holding block b, or nil. It refreshes LRU state.
func (c *Cache) Lookup(b mem.BlockAddr) *Line {
	s := c.set(b)
	for i := range s {
		if s[i].State != Invalid && s[i].Block == b {
			c.tick++
			s[i].used = c.tick
			return &s[i]
		}
	}
	return nil
}

// Peek returns the line holding block b without touching LRU state.
func (c *Cache) Peek(b mem.BlockAddr) *Line {
	s := c.set(b)
	for i := range s {
		if s[i].State != Invalid && s[i].Block == b {
			return &s[i]
		}
	}
	return nil
}

// Insert places block b with the given state, returning the victim line's
// previous contents if a valid line had to be evicted. The caller must have
// ensured b is not already present.
func (c *Cache) Insert(b mem.BlockAddr, state CohState) (victim Line, evicted bool) {
	s := c.set(b)
	c.tick++
	// Prefer an invalid way.
	vi := 0
	for i := range s {
		if s[i].State == Invalid {
			s[i] = Line{Block: b, State: state, used: c.tick}
			return Line{}, false
		}
		if s[i].used < s[vi].used {
			vi = i
		}
	}
	victim = s[vi]
	s[vi] = Line{Block: b, State: state, used: c.tick}
	return victim, true
}

// Invalidate removes block b, returning its prior contents.
func (c *Cache) Invalidate(b mem.BlockAddr) (old Line, ok bool) {
	if l := c.Peek(b); l != nil {
		old = *l
		l.State = Invalid
		l.Meta = metastate.L1Zero
		return old, true
	}
	return Line{}, false
}

// FlashClearRW applies the fast-token-release flash clear to every line: a
// constant-time hardware operation over the R and W metabit columns.
func (c *Cache) FlashClearRW() {
	for _, s := range c.sets {
		for i := range s {
			if s[i].State != Invalid {
				s[i].Meta.FlashClearRW()
			}
		}
	}
}

// FlashOR applies the context-switch flash-OR (R'|=R, W'|=W, clear R and W)
// to every line: the paper's two flash-OR circuits per cache block.
func (c *Cache) FlashOR() {
	for _, s := range c.sets {
		for i := range s {
			if s[i].State != Invalid {
				s[i].Meta.FlashOR()
			}
		}
	}
}

// VisitValid calls fn for every valid line.
func (c *Cache) VisitValid(fn func(*Line)) {
	for _, s := range c.sets {
		for i := range s {
			if s[i].State != Invalid {
				fn(&s[i])
			}
		}
	}
}

// CountValid returns the number of valid lines.
func (c *Cache) CountValid() int {
	n := 0
	c.VisitValid(func(*Line) { n++ })
	return n
}
