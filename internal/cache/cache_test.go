package cache

import (
	"testing"

	"tokentm/internal/mem"
	"tokentm/internal/metastate"
)

func TestGeometry(t *testing.T) {
	l1 := New(L1Config)
	if l1.Sets() != 128 || l1.Assoc() != 4 {
		t.Fatalf("L1 geometry: %d sets x %d ways", l1.Sets(), l1.Assoc())
	}
	l2 := New(L2BankConfig)
	if l2.Sets()*l2.Assoc()*mem.BlockBytes != (8<<20)/32 {
		t.Fatalf("L2 bank capacity wrong")
	}
}

func TestLookupInsertInvalidate(t *testing.T) {
	c := New(L1Config)
	if c.Lookup(5) != nil {
		t.Fatal("empty cache lookup")
	}
	if _, ev := c.Insert(5, Shared); ev {
		t.Fatal("no eviction expected")
	}
	l := c.Lookup(5)
	if l == nil || l.Block != 5 || l.State != Shared {
		t.Fatalf("lookup after insert: %+v", l)
	}
	old, ok := c.Invalidate(5)
	if !ok || old.Block != 5 {
		t.Fatal("invalidate")
	}
	if c.Lookup(5) != nil {
		t.Fatal("lookup after invalidate")
	}
	if _, ok := c.Invalidate(5); ok {
		t.Fatal("double invalidate")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(L1Config)
	sets := mem.BlockAddr(c.Sets())
	// Fill one set completely: blocks mapping to set 0.
	for i := 0; i < c.Assoc(); i++ {
		if _, ev := c.Insert(sets*mem.BlockAddr(i), Shared); ev {
			t.Fatal("premature eviction")
		}
	}
	// Touch block 0 so it is most recently used.
	c.Lookup(0)
	// Insert one more: the LRU victim must be set*1 (oldest untouched).
	victim, ev := c.Insert(sets*mem.BlockAddr(c.Assoc()), Shared)
	if !ev {
		t.Fatal("expected eviction")
	}
	if victim.Block != sets {
		t.Fatalf("victim = %v, want %v", victim.Block, sets)
	}
	if c.Lookup(0) == nil {
		t.Fatal("MRU block evicted")
	}
}

func TestFlashOps(t *testing.T) {
	c := New(L1Config)
	c.Insert(1, Shared)
	c.Insert(2, Modified)
	c.Lookup(1).Meta = metastate.L1Meta{R: true, Attr: 9}
	c.Lookup(2).Meta = metastate.L1Meta{W: true, Attr: 9}

	c.FlashOR()
	if !c.Lookup(1).Meta.Rp || c.Lookup(1).Meta.R {
		t.Fatal("flash-OR on R")
	}
	if !c.Lookup(2).Meta.Wp || c.Lookup(2).Meta.W {
		t.Fatal("flash-OR on W")
	}

	c.Lookup(1).Meta = metastate.L1Meta{R: true, Attr: 9}
	c.Lookup(2).Meta = metastate.L1Meta{W: true, Attr: 9}
	c.FlashClearRW()
	if c.Lookup(1).Meta.R || c.Lookup(2).Meta.W {
		t.Fatal("flash clear")
	}
}

func TestVisitAndCount(t *testing.T) {
	c := New(L1Config)
	for i := 0; i < 10; i++ {
		c.Insert(mem.BlockAddr(i), Exclusive)
	}
	if c.CountValid() != 10 {
		t.Fatalf("CountValid = %d", c.CountValid())
	}
	c.Invalidate(3)
	if c.CountValid() != 9 {
		t.Fatalf("CountValid after invalidate = %d", c.CountValid())
	}
}

func TestCohStateHelpers(t *testing.T) {
	if Invalid.CanRead() || Invalid.CanWrite() {
		t.Error("invalid permissions")
	}
	if !Shared.CanRead() || Shared.CanWrite() {
		t.Error("shared permissions")
	}
	if !Exclusive.CanWrite() || !Modified.CanWrite() || !Modified.CanRead() {
		t.Error("exclusive/modified permissions")
	}
	names := map[CohState]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", CohState(9): "?"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("state name %v", s)
		}
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 3 * 64, Assoc: 1})
}
