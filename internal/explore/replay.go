package explore

import (
	"tokentm/internal/core"
	"tokentm/internal/htm"
	"tokentm/internal/mem"
	"tokentm/internal/sim"
	"tokentm/internal/trace"
)

// ReplayResult is one forced re-execution of a serialized schedule.
type ReplayResult struct {
	Schedule    string
	Steps       int
	Violation   *Violation
	Fingerprint uint64 // zero when the run ends in a violation
	Commits     []htm.CommitRecord
	CoreTimes   []mem.Cycle
	Aborts      int
}

// Replay re-executes a serialized schedule (from a Violation or
// FormatSchedule) on a fresh machine, following the default min-time
// schedule past the end of the recorded prefix. Because execution is
// deterministic given the decision sequence, replaying a counterexample
// reproduces its violation exactly; a non-nil tracer captures the protocol
// event stream for diagnosis.
func Replay(prog *Program, variant string, mut core.Mutation, schedule string, seed int64, maxSteps int, tr *trace.Tracer) (*ReplayResult, error) {
	ds, err := ParseSchedule(schedule)
	if err != nil {
		return nil, err
	}
	if maxSteps <= 0 {
		maxSteps = DefaultOptions(variant).MaxSteps
	}
	i := 0
	rr := runSchedule(prog, variant, mut, runOpts{
		seed:     seed,
		maxSteps: maxSteps,
		// The recorded prefix already respected the original budgets;
		// forced replay only needs budgets large enough to honor it.
		preempts:  len(ds),
		bounces:   len(ds),
		checkStep: true,
		tracer:    tr,
	}, func(m *sim.Machine, tok *core.TokenTM, choices []sim.CoreChoice, st *runState) (Decision, bool) {
		if i < len(ds) {
			d := ds[i]
			i++
			return d, true
		}
		return Decision{Kind: DecRun, Core: (sim.MinTimePicker{}).Pick(choices)}, true
	})
	return &ReplayResult{
		Schedule:    FormatSchedule(rr.schedule),
		Steps:       rr.steps,
		Violation:   rr.violation,
		Fingerprint: rr.fingerprint,
		Commits:     rr.commits,
		CoreTimes:   rr.coreTimes,
		Aborts:      rr.aborts,
	}, nil
}
