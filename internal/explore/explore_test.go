package explore

import (
	"testing"

	"tokentm/internal/core"
)

// TestExhaustiveAllVariants is the acceptance gate: exhaustive mode fully
// enumerates every standard 2-core/3-thread/2-block program for every HTM
// variant within the CI budget, with every invariant holding.
func TestExhaustiveAllVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration sweep is minutes of work; run without -short")
	}
	for _, prog := range StandardPrograms() {
		for _, variant := range Variants {
			prog, variant := prog, variant
			t.Run(prog.Name+"/"+variant, func(t *testing.T) {
				t.Parallel()
				r := Explore(prog, DefaultOptions(variant))
				t.Logf("schedules=%d steps=%d states=%d pruned(seen)=%d pruned(sleep)=%d maxDepth=%d commits=%d aborts=%d",
					r.Schedules, r.Steps, r.DistinctStates, r.PrunedVisited, r.PrunedSleep, r.MaxDepth, r.Commits, r.Aborts)
				if !r.Complete {
					t.Fatalf("enumeration incomplete within %d schedules", r.Schedules)
				}
				for _, v := range r.Violations {
					t.Errorf("violation %s at step %d: %s\n  replay: %s", v.Kind, v.Step, v.Message, v.Schedule)
				}
				if r.Evictions != 0 {
					t.Errorf("%d cache evictions — fingerprint pruning assumes eviction-free programs (LRU state is excluded from the hash)", r.Evictions)
				}
			})
		}
	}
}

// TestMutationsDetected is the checker's self-test: each seeded protocol bug
// must produce a violation with a replayable counterexample, and the replay
// must reproduce it exactly.
func TestMutationsDetected(t *testing.T) {
	for _, target := range mutationTargets() {
		target := target
		t.Run(target.mut.String(), func(t *testing.T) {
			t.Parallel()
			mc := CheckMutation(target.mut, target.prog, DefaultBudget())
			if !mc.Detected {
				t.Fatalf("mutation %s on %s not detected in %d schedules", target.mut, target.prog, mc.Schedules)
			}
			v := mc.Violation
			t.Logf("detected after %d schedules: [%s] %s\n  replay: %s", mc.Schedules, v.Kind, v.Message, v.Schedule)
			rr, err := Replay(ProgramByName(target.prog), "TokenTM", target.mut, v.Schedule, DefaultBudget().Seed, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if rr.Violation == nil {
				t.Fatalf("replaying counterexample %q reproduced no violation", v.Schedule)
			}
			if rr.Violation.Kind != v.Kind || rr.Violation.Message != v.Message {
				t.Fatalf("replay produced [%s] %q, exploration produced [%s] %q",
					rr.Violation.Kind, rr.Violation.Message, v.Kind, v.Message)
			}
			// The correct protocol survives the same schedule.
			clean, err := Replay(ProgramByName(target.prog), "TokenTM", core.MutNone, v.Schedule, DefaultBudget().Seed, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if clean.Violation != nil {
				t.Fatalf("unmutated protocol violates on the same schedule: [%s] %s", clean.Violation.Kind, clean.Violation.Message)
			}
		})
	}
}

// TestSleepSetEquivalence checks the commuting-siblings rule against plain
// enumeration on the program built for it: pruning must not change the
// verdict, must actually fire, and must only shrink the explored space.
func TestSleepSetEquivalence(t *testing.T) {
	prog := ProgramByName("disjoint-lanes")
	on := DefaultOptions("TokenTM")
	off := on
	off.SleepSets = false
	ron := Explore(prog, on)
	roff := Explore(prog, off)
	t.Logf("sleep sets on: schedules=%d states=%d prunedSleep=%d; off: schedules=%d states=%d",
		ron.Schedules, ron.DistinctStates, ron.PrunedSleep, roff.Schedules, roff.DistinctStates)
	if !ron.Complete || !roff.Complete {
		t.Fatalf("incomplete enumeration: on=%v off=%v", ron.Complete, roff.Complete)
	}
	if ron.TotalViolations != roff.TotalViolations {
		t.Fatalf("sleep sets changed the verdict: %d violations with, %d without", ron.TotalViolations, roff.TotalViolations)
	}
	if ron.PrunedSleep == 0 {
		t.Fatal("sleep-set rule never fired on the disjoint-footprint program")
	}
	if ron.Schedules >= roff.Schedules {
		t.Fatalf("sleep sets did not shrink the tree: %d vs %d schedules", ron.Schedules, roff.Schedules)
	}
}

// TestSwarmDeterministic re-runs the seeded random swarm and expects
// identical summaries: same schedules, states, and verdicts.
func TestSwarmDeterministic(t *testing.T) {
	prog := ProgramByName("incr-cross")
	o := DefaultOptions("TokenTM")
	o.Mode = ModeSwarm
	o.MaxSchedules = 50
	o.Seed = 7
	a := Explore(prog, o)
	b := Explore(prog, o)
	if a.Schedules != b.Schedules || a.Steps != b.Steps || a.DistinctStates != b.DistinctStates ||
		a.Commits != b.Commits || a.Aborts != b.Aborts || a.TotalViolations != b.TotalViolations {
		t.Fatalf("swarm runs diverged:\n%+v\n%+v", a, b)
	}
	if a.TotalViolations != 0 {
		t.Fatalf("swarm found %d violations in the unmutated protocol: %+v", a.TotalViolations, a.Violations)
	}
}

// TestExploreDeterministic re-runs the exhaustive exploration of one cell
// and expects an identical summary — the property CI's BENCH_explore.json
// diff rests on.
func TestExploreDeterministic(t *testing.T) {
	prog := ProgramByName("writer-reread")
	o := DefaultOptions("TokenTM")
	a := Explore(prog, o)
	b := Explore(prog, o)
	if a.Schedules != b.Schedules || a.Steps != b.Steps || a.DistinctStates != b.DistinctStates ||
		a.PrunedVisited != b.PrunedVisited || a.PrunedSleep != b.PrunedSleep ||
		a.MaxDepth != b.MaxDepth || a.Commits != b.Commits || a.Aborts != b.Aborts {
		t.Fatalf("explorations diverged:\n%+v\n%+v", a, b)
	}
}
