package explore

import (
	"fmt"
	"strconv"
	"strings"
)

// DecisionKind classifies one scheduling decision.
type DecisionKind int

// Decision kinds.
const (
	// DecRun steps one thread turn on a core.
	DecRun DecisionKind = iota
	// DecPreempt forces an involuntary context switch on a core (the
	// adversary's quantum expiry), consuming one preemption budget unit.
	DecPreempt
	// DecBounce pages the program's page out and immediately back in (the
	// §5.3 virtualization adversary), consuming one bounce budget unit.
	DecBounce
)

// Decision is one node of a schedule: what the scheduler (or the adversary)
// does at one decision point.
type Decision struct {
	Kind DecisionKind
	Core int // DecRun, DecPreempt
}

// String renders the compact schedule token: R<core>, P<core>, or B.
func (d Decision) String() string {
	switch d.Kind {
	case DecRun:
		return "R" + strconv.Itoa(d.Core)
	case DecPreempt:
		return "P" + strconv.Itoa(d.Core)
	case DecBounce:
		return "B"
	default:
		panic("explore: unknown decision kind")
	}
}

// FormatSchedule serializes a decision sequence as a dot-joined compact
// string — the replayable counterexample format.
func FormatSchedule(ds []Decision) string {
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = d.String()
	}
	return strings.Join(parts, ".")
}

// ParseSchedule parses FormatSchedule's output.
func ParseSchedule(s string) ([]Decision, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ".")
	out := make([]Decision, 0, len(parts))
	for i, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("explore: empty schedule token at %d", i)
		}
		switch p[0] {
		case 'B':
			if p != "B" {
				return nil, fmt.Errorf("explore: bad bounce token %q", p)
			}
			out = append(out, Decision{Kind: DecBounce})
		case 'R', 'P':
			n, err := strconv.Atoi(p[1:])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("explore: bad schedule token %q", p)
			}
			k := DecRun
			if p[0] == 'P' {
				k = DecPreempt
			}
			out = append(out, Decision{Kind: k, Core: n})
		default:
			return nil, fmt.Errorf("explore: bad schedule token %q", p)
		}
	}
	return out, nil
}
