package explore

import (
	"math/rand"
	"sort"

	"tokentm/internal/core"
	"tokentm/internal/sim"
)

// Exploration modes.
const (
	// ModeExhaustive walks the full decision tree depth-first with
	// fingerprint and commuting-siblings pruning.
	ModeExhaustive = "exhaustive"
	// ModeSwarm samples schedules uniformly at random from the decision
	// tree, with a distinct machine seed per schedule.
	ModeSwarm = "swarm"
)

// Options parameterizes an exploration.
type Options struct {
	Variant  string
	Mutation core.Mutation
	Mode     string
	// MaxSchedules caps executed schedules (pruned re-executions
	// included); hitting it leaves Complete=false.
	MaxSchedules int
	// MaxSteps is the per-schedule livelock bound (DecRun decisions).
	MaxSteps int
	// BranchDepth bounds where exhaustive mode introduces nondeterminism:
	// decisions past this index follow the default min-time schedule.
	// Decision trees of the timed machine are infinite in depth — an
	// adversary can stretch backoff/retry loops forever, and every retry
	// advances a clock, minting a fresh state — so exhaustive enumeration
	// is over the schedules that branch within this prefix (0 = unbounded,
	// for programs known to converge).
	BranchDepth int
	// Preempts / Bounces are per-schedule adversary budgets.
	Preempts int
	Bounces  int
	// SleepSets enables the commuting-siblings pruning rule.
	SleepSets bool
	// Seed drives machine backoff jitter; in swarm mode it also seeds the
	// schedule sampler, and schedule s runs its machine with Seed+s.
	Seed int64
	// StopOnViolation stops at the first counterexample (mutation smoke).
	StopOnViolation bool
}

// DefaultOptions is the CI exploration budget for a variant.
func DefaultOptions(variant string) Options {
	return Options{
		Variant:      variant,
		Mode:         ModeExhaustive,
		MaxSchedules: 30000,
		MaxSteps:     4000,
		BranchDepth:  12,
		Preempts:     1,
		Bounces:      1,
		SleepSets:    true,
	}
}

// Result summarizes one program × variant exploration.
type Result struct {
	Program  string `json:"program"`
	Variant  string `json:"variant"`
	Mutation string `json:"mutation"`
	Mode     string `json:"mode"`
	// Schedules counts full program executions, including ones abandoned
	// at a pruned decision point.
	Schedules int `json:"schedules"`
	// Steps totals DecRun decisions across all executions.
	Steps uint64 `json:"steps"`
	// DistinctStates counts distinct (fingerprint, budgets) decision
	// points seen; in swarm mode states recur across samples.
	DistinctStates int `json:"distinct_states"`
	// PrunedVisited counts executions abandoned at an already-seen state;
	// PrunedSleep counts sibling decisions skipped as commuting.
	PrunedVisited int `json:"pruned_visited"`
	PrunedSleep   int `json:"pruned_sleep"`
	// Complete reports full enumeration (always false for swarm).
	Complete bool `json:"complete"`
	// MaxDepth is the longest schedule executed (decision count).
	MaxDepth int `json:"max_depth"`
	// Commits / Aborts / Evictions total over completed executions.
	Commits   int    `json:"commits"`
	Aborts    int    `json:"aborts"`
	Evictions uint64 `json:"evictions"`
	// TotalViolations counts violating executions; Violations keeps the
	// first counterexample per distinct kind+message.
	TotalViolations int         `json:"total_violations"`
	Violations      []Violation `json:"violations"`
}

// maxViolations caps distinct counterexamples kept per Result.
const maxViolations = 8

// stateKey identifies a decision point for pruning: two points with equal
// machine fingerprints but different remaining adversary budgets or branch
// allowance still have different futures, so both are part of the key.
type stateKey struct {
	fp       uint64
	preempts int
	bounces  int
	branch   int // remaining branching decisions (BranchDepth - index)
}

// Explore runs the configured exploration of prog and returns its summary.
func Explore(prog *Program, opts Options) *Result {
	if opts.Mode == "" {
		opts.Mode = ModeExhaustive
	}
	res := &Result{
		Program:  prog.Name,
		Variant:  opts.Variant,
		Mutation: opts.Mutation.String(),
		Mode:     opts.Mode,
	}
	switch opts.Mode {
	case ModeExhaustive:
		exploreDFS(prog, opts, res)
	case ModeSwarm:
		exploreSwarm(prog, opts, res)
	default:
		panic("explore: unknown mode " + opts.Mode)
	}
	sortViolations(res.Violations)
	return res
}

// exploreDFS enumerates the decision tree depth-first. Each iteration fully
// re-executes the program (stateless model checking): the recorded decision
// prefix on the stack is forced, then the first fresh decision point either
// prunes (state already seen) or pushes a new frame whose alternatives are
// explored across subsequent iterations.
func exploreDFS(prog *Program, opts Options, res *Result) {
	type node struct {
		alts []Decision
		next int
	}
	var stack []node
	seen := make(map[stateKey]struct{})
	budgetHit := false

	for {
		if res.Schedules >= opts.MaxSchedules {
			budgetHit = true
			break
		}
		res.Schedules++
		dec := 0
		forced := len(stack)
		rr := runSchedule(prog, opts.Variant, opts.Mutation, runOpts{
			seed:      opts.Seed,
			maxSteps:  opts.MaxSteps,
			preempts:  opts.Preempts,
			bounces:   opts.Bounces,
			checkStep: true,
		}, func(m *sim.Machine, tok *core.TokenTM, choices []sim.CoreChoice, st *runState) (Decision, bool) {
			i := dec
			dec++
			if i < forced {
				// Replay the recorded prefix; re-execution is
				// deterministic, so the same decision points recur.
				n := &stack[i]
				return n.alts[n.next], true
			}
			branchLeft := 0
			if opts.BranchDepth > 0 {
				branchLeft = opts.BranchDepth - i
				if branchLeft <= 0 {
					// Past the branching prefix: extend with the
					// default schedule, introducing no new frames.
					return Decision{Kind: DecRun, Core: (sim.MinTimePicker{}).Pick(choices)}, true
				}
			}
			key := stateKey{fp: m.Fingerprint(), preempts: st.PreemptsLeft, bounces: st.BouncesLeft, branch: branchLeft}
			if _, dup := seen[key]; dup {
				res.PrunedVisited++
				return Decision{}, false
			}
			seen[key] = struct{}{}
			alts := enumerate(m, tok, choices, st)
			stack = append(stack, node{alts: alts})
			return alts[0], true
		})
		accumulate(res, &rr)
		if len(rr.schedule) > res.MaxDepth {
			res.MaxDepth = len(rr.schedule)
		}
		if rr.violation != nil && opts.StopOnViolation {
			break
		}

		// Backtrack: advance the deepest frame that still has an untried
		// alternative, discarding commuting siblings if enabled.
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			advanced := false
			for top.next+1 < len(top.alts) {
				top.next++
				if opts.SleepSets && commutesWithTried(prog, top.alts, top.next) {
					res.PrunedSleep++
					continue
				}
				advanced = true
				break
			}
			if advanced {
				break
			}
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			res.Complete = true
			break
		}
	}
	if budgetHit {
		res.Complete = false
	}
	res.DistinctStates = len(seen)
}

// exploreSwarm samples MaxSchedules random walks of the decision tree, one
// machine seed per walk. No pruning: DistinctStates reports coverage.
func exploreSwarm(prog *Program, opts Options, res *Result) {
	rng := rand.New(rand.NewSource(opts.Seed))
	seen := make(map[stateKey]struct{})
	for s := 0; s < opts.MaxSchedules; s++ {
		res.Schedules++
		rr := runSchedule(prog, opts.Variant, opts.Mutation, runOpts{
			seed:      opts.Seed + int64(s),
			maxSteps:  opts.MaxSteps,
			preempts:  opts.Preempts,
			bounces:   opts.Bounces,
			checkStep: true,
		}, func(m *sim.Machine, tok *core.TokenTM, choices []sim.CoreChoice, st *runState) (Decision, bool) {
			seen[stateKey{fp: m.Fingerprint(), preempts: st.PreemptsLeft, bounces: st.BouncesLeft}] = struct{}{}
			alts := enumerate(m, tok, choices, st)
			return alts[rng.Intn(len(alts))], true
		})
		accumulate(res, &rr)
		if len(rr.schedule) > res.MaxDepth {
			res.MaxDepth = len(rr.schedule)
		}
		if rr.violation != nil && opts.StopOnViolation {
			break
		}
	}
	res.DistinctStates = len(seen)
}

// accumulate folds one execution's outcome into the summary.
func accumulate(res *Result, rr *runResult) {
	res.Steps += uint64(rr.steps)
	res.Commits += len(rr.commits)
	res.Aborts += rr.aborts
	res.Evictions += rr.evictions
	if rr.violation == nil {
		return
	}
	res.TotalViolations++
	for _, v := range res.Violations {
		if v.Kind == rr.violation.Kind && v.Message == rr.violation.Message {
			return
		}
	}
	if len(res.Violations) < maxViolations {
		res.Violations = append(res.Violations, *rr.violation)
	}
}

// enumerate lists the decisions available at a decision point, default
// schedule first: the min-time core's run, the other runnable cores in core
// order, then adversary preemptions and the page bounce under budget.
func enumerate(m *sim.Machine, tok *core.TokenTM, choices []sim.CoreChoice, st *runState) []Decision {
	def := (sim.MinTimePicker{}).Pick(choices)
	alts := make([]Decision, 0, 2*len(choices)+1)
	alts = append(alts, Decision{Kind: DecRun, Core: def})
	for _, c := range choices {
		if c.Core != def {
			alts = append(alts, Decision{Kind: DecRun, Core: c.Core})
		}
	}
	if st.PreemptsLeft > 0 {
		for _, c := range choices {
			if m.CanPreempt(c.Core) {
				alts = append(alts, Decision{Kind: DecPreempt, Core: c.Core})
			}
		}
	}
	if st.BouncesLeft > 0 && tok != nil {
		alts = append(alts, Decision{Kind: DecBounce})
	}
	return alts
}

// commutesWithTried reports whether alts[j] is a run decision that commutes
// with every earlier (already-explored) sibling, so exploring it would only
// revisit reordered interleavings of independent steps. Soundness rests on
// static footprints: a core's footprint is the union of blocks its pinned
// threads ever touch, so two cores with disjoint footprints can never
// conflict, stall, or draw backoff randomness against each other, and a step
// on one cannot change what a step on the other does. Adversary siblings
// (preempt/bounce) never commute — they mutate scheduler or metastate
// structures that any run can observe.
func commutesWithTried(prog *Program, alts []Decision, j int) bool {
	if alts[j].Kind != DecRun {
		return false
	}
	for i := 0; i < j; i++ {
		if alts[i].Kind != DecRun {
			return false
		}
		if !coresIndependent(prog, alts[i].Core, alts[j].Core) {
			return false
		}
	}
	return true
}

// coresIndependent reports disjoint static footprints for the two cores and
// no third core sharing blocks with both, so the order of one step on each
// cannot be observed by anything.
func coresIndependent(prog *Program, a, b int) bool {
	fa, fb := coreFootprint(prog, a), coreFootprint(prog, b)
	if fa&fb != 0 {
		return false
	}
	for c := 0; c < prog.Cores; c++ {
		if c == a || c == b {
			continue
		}
		fc := coreFootprint(prog, c)
		if fa&fc != 0 && fb&fc != 0 {
			return false
		}
	}
	return true
}

// coreFootprint is the bitset of program blocks the core's pinned threads
// (thread i runs on core i % Cores) ever access. Programs fit one page, so
// block indices fit a word.
func coreFootprint(prog *Program, c int) uint64 {
	var fp uint64
	for i, tp := range prog.Threads {
		if i%prog.Cores != c {
			continue
		}
		for _, txn := range tp.Txns {
			for _, op := range txn {
				if op.Kind == OpLoad || op.Kind == OpIncr {
					fp |= 1 << uint(op.Block)
				}
			}
		}
	}
	return fp
}

// sortViolations orders a result's counterexamples deterministically.
func sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Kind != vs[j].Kind {
			return vs[i].Kind < vs[j].Kind
		}
		return vs[i].Message < vs[j].Message
	})
}
