package explore

import (
	"reflect"
	"testing"

	"tokentm/internal/core"
	"tokentm/internal/sim"
	"tokentm/internal/trace"
)

// TestScheduleRoundTrip checks FormatSchedule/ParseSchedule are inverses.
func TestScheduleRoundTrip(t *testing.T) {
	ds := []Decision{
		{Kind: DecRun, Core: 0},
		{Kind: DecRun, Core: 13},
		{Kind: DecPreempt, Core: 1},
		{Kind: DecBounce},
		{Kind: DecRun, Core: 2},
	}
	s := FormatSchedule(ds)
	if s != "R0.R13.P1.B.R2" {
		t.Fatalf("FormatSchedule = %q", s)
	}
	back, err := ParseSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, back) {
		t.Fatalf("round trip: %v != %v", back, ds)
	}
	if got, err := ParseSchedule(""); err != nil || got != nil {
		t.Fatalf("empty schedule: %v, %v", got, err)
	}
	for _, bad := range []string{"R", "Rx", "P-1", "BB", "R0..R1", "Q3"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
}

// TestReplayByteIdentical re-runs a serialized schedule twice and demands
// identical outcomes: same decisions, commit records, core times, and state
// fingerprint. This is the property that makes counterexamples trustworthy.
func TestReplayByteIdentical(t *testing.T) {
	// A schedule-budget truncation must report Complete=false, so a CI
	// budget that silently stops enumerating can't masquerade as a proof.
	prog := ProgramByName("upgrade-duel")
	o := DefaultOptions("TokenTM")
	o.MaxSchedules = 40
	if r := Explore(prog, o); r.Complete || r.Schedules > 40 {
		t.Fatalf("budget of 40 gave complete=%v schedules=%d", r.Complete, r.Schedules)
	}
	// Any syntactically valid schedule replays; use a handcrafted one mixing
	// all decision kinds, plus the default extension past its end.
	schedule := "R0.R1.R0.P0.R0.B.R1.R0"
	for _, variant := range Variants {
		if variant != "TokenTM" && variant != "TokenTM_NoFast" {
			continue // bounce decisions need a TokenTM system
		}
		a, err := Replay(prog, variant, core.MutNone, schedule, 0, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Replay(prog, variant, core.MutNone, schedule, 0, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a.Violation != nil {
			t.Fatalf("%s: schedule violates: %+v", variant, a.Violation)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: replays diverged:\n%+v\n%+v", variant, a, b)
		}
		if a.Fingerprint == 0 {
			t.Fatalf("%s: completed replay has no fingerprint", variant)
		}
		if len(a.Commits) != prog.Txns() {
			t.Fatalf("%s: %d commit records for %d transactions", variant, len(a.Commits), prog.Txns())
		}
	}
}

// TestReplayTraced wires a counterexample replay through trace.Tracer — the
// diagnosis path — and expects the protocol event stream to be captured.
func TestReplayTraced(t *testing.T) {
	tr := trace.NewTracer(1024)
	rr, err := Replay(ProgramByName("incr-cross"), "TokenTM", core.MutSkipLogCredit, "R0", 0, 0, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Violation == nil {
		t.Fatal("seeded bug produced no violation under replay")
	}
	if rr.Violation.Kind != "bookkeeping" {
		t.Fatalf("violation kind = %s, want bookkeeping", rr.Violation.Kind)
	}
	if tr.Len() == 0 {
		t.Fatal("tracer captured no events")
	}
}

// TestExplorerReportsDeadlock checks the deadlock path end to end: a
// program whose threads interleave lock-free cannot deadlock, so drive the
// machine into one directly and check the structured report the explorer
// would record.
func TestExplorerReportsDeadlock(t *testing.T) {
	m := sim.New(sim.Config{Cores: 2})
	m.SetHTM(core.New(m.Mem, m.Store))
	m.Spawn(func(tc *sim.Ctx) { tc.Lock(1); tc.Lock(2); tc.Unlock(2); tc.Unlock(1) })
	m.Spawn(func(tc *sim.Ctx) { tc.Lock(2); tc.Lock(1); tc.Unlock(1); tc.Unlock(2) })
	defer m.Kill()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a deadlock panic")
		}
		err, ok := r.(*sim.DeadlockError)
		if !ok {
			t.Fatalf("panic value %T, want *sim.DeadlockError", r)
		}
		if len(err.Threads) != 2 {
			t.Fatalf("deadlock report has %d threads, want 2", len(err.Threads))
		}
	}()
	m.Run()
}
