package explore

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"

	"tokentm/internal/core"
)

// Format identifies the sweep JSON document version.
const Format = "tokentm-explore/v1"

// Budget is the sweep-wide exploration budget, recorded in the JSON so a
// diff against a checked-in document compares like with like.
type Budget struct {
	MaxSchedules int   `json:"max_schedules"`
	MaxSteps     int   `json:"max_steps"`
	BranchDepth  int   `json:"branch_depth"`
	Preempts     int   `json:"preempts"`
	Bounces      int   `json:"bounces"`
	Seed         int64 `json:"seed"`
}

// DefaultBudget is the CI sweep budget.
func DefaultBudget() Budget {
	o := DefaultOptions("")
	return Budget{
		MaxSchedules: o.MaxSchedules,
		MaxSteps:     o.MaxSteps,
		BranchDepth:  o.BranchDepth,
		Preempts:     o.Preempts,
		Bounces:      o.Bounces,
		Seed:         o.Seed,
	}
}

// MutationCheck is one seeded-bug smoke result: exploring the program with
// the protocol mutation enabled must surface a violation, proving the
// checker's invariants have teeth.
type MutationCheck struct {
	Mutation  string     `json:"mutation"`
	Program   string     `json:"program"`
	Variant   string     `json:"variant"`
	Detected  bool       `json:"detected"`
	Schedules int        `json:"schedules"`
	Violation *Violation `json:"violation,omitempty"`
}

// SweepResult is the full standard sweep: every program x variant explored
// exhaustively, plus the mutation smoke checks. Fully deterministic — no
// wall-clock fields — so CI regenerates and byte-diffs it.
type SweepResult struct {
	Format         string          `json:"format"`
	Budget         Budget          `json:"budget"`
	Results        []*Result       `json:"results"`
	MutationChecks []MutationCheck `json:"mutation_checks"`
}

// mutationTargets pairs each seeded bug with the standard program shaped to
// expose it: skip-log-credit trips on any token acquire, no-fission-writer
// needs a writer whose line leaves the L1 (page bounce) and is re-read.
func mutationTargets() []struct {
	mut  core.Mutation
	prog string
} {
	return []struct {
		mut  core.Mutation
		prog string
	}{
		{core.MutSkipLogCredit, "incr-cross"},
		{core.MutNoFissionWriter, "writer-reread"},
	}
}

// CheckMutation explores prog under the seeded bug, stopping at the first
// counterexample.
func CheckMutation(mut core.Mutation, progName string, b Budget) MutationCheck {
	prog := ProgramByName(progName)
	if prog == nil {
		panic("explore: unknown mutation target program " + progName)
	}
	opts := optionsFromBudget("TokenTM", b)
	opts.Mutation = mut
	opts.StopOnViolation = true
	r := Explore(prog, opts)
	mc := MutationCheck{
		Mutation:  mut.String(),
		Program:   progName,
		Variant:   "TokenTM",
		Detected:  len(r.Violations) > 0,
		Schedules: r.Schedules,
	}
	if mc.Detected {
		v := r.Violations[0]
		mc.Violation = &v
	}
	return mc
}

func optionsFromBudget(variant string, b Budget) Options {
	return Options{
		Variant:      variant,
		Mode:         ModeExhaustive,
		MaxSchedules: b.MaxSchedules,
		MaxSteps:     b.MaxSteps,
		BranchDepth:  b.BranchDepth,
		Preempts:     b.Preempts,
		Bounces:      b.Bounces,
		SleepSets:    true,
		Seed:         b.Seed,
	}
}

// StandardSweep explores every standard program under every variant
// exhaustively within the budget, then runs the mutation smoke checks.
func StandardSweep(b Budget) *SweepResult {
	sw := &SweepResult{Format: Format, Budget: b}
	for _, prog := range StandardPrograms() {
		for _, variant := range Variants {
			sw.Results = append(sw.Results, Explore(prog, optionsFromBudget(variant, b)))
		}
	}
	for _, t := range mutationTargets() {
		sw.MutationChecks = append(sw.MutationChecks, CheckMutation(t.mut, t.prog, b))
	}
	return sw
}

// WriteJSON writes the sweep document with stable formatting.
func WriteJSON(w io.Writer, sw *SweepResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sw)
}

// WriteTable renders the sweep as a human-readable report.
func WriteTable(w io.Writer, sw *SweepResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "program\tvariant\tschedules\tstates\tpruned(seen)\tpruned(sleep)\tcomplete\tmax-depth\tviolations")
	for _, r := range sw.Results {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%v\t%d\t%d\n",
			r.Program, r.Variant, r.Schedules, r.DistinctStates,
			r.PrunedVisited, r.PrunedSleep, r.Complete, r.MaxDepth, r.TotalViolations)
	}
	tw.Flush()
	for _, r := range sw.Results {
		for _, v := range r.Violations {
			fmt.Fprintf(w, "VIOLATION %s/%s %s at step %d: %s\n  replay: %s\n",
				r.Program, r.Variant, v.Kind, v.Step, v.Message, v.Schedule)
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "mutation smoke (seeded protocol bugs must be detected):")
	for _, mc := range sw.MutationChecks {
		status := "DETECTED"
		if !mc.Detected {
			status = "MISSED"
		}
		fmt.Fprintf(w, "  %-18s on %-14s %s after %d schedules", mc.Mutation, mc.Program, status, mc.Schedules)
		if mc.Violation != nil {
			fmt.Fprintf(w, " (%s: %s)\n    replay: %s\n", mc.Violation.Kind, mc.Violation.Message, mc.Violation.Schedule)
		} else {
			fmt.Fprintln(w)
		}
	}
}

// Failures summarizes everything wrong with a sweep: protocol violations in
// unmutated runs, incomplete enumerations, and missed mutations. Empty means
// the sweep is green.
func (sw *SweepResult) Failures() []string {
	var out []string
	for _, r := range sw.Results {
		if r.TotalViolations > 0 {
			out = append(out, fmt.Sprintf("%s/%s: %d violating schedules (first: %s)",
				r.Program, r.Variant, r.TotalViolations, r.Violations[0].Message))
		}
		if !r.Complete {
			out = append(out, fmt.Sprintf("%s/%s: enumeration incomplete within %d schedules",
				r.Program, r.Variant, r.Schedules))
		}
	}
	for _, mc := range sw.MutationChecks {
		if !mc.Detected {
			out = append(out, fmt.Sprintf("mutation %s on %s: NOT detected — checker has lost its teeth",
				mc.Mutation, mc.Program))
		}
	}
	return out
}
