// Package explore is a stateless model checker for the simulated HTM
// variants: it drives sim.Machine through many distinct schedules of small
// transactional programs — including adversarial context-switch preemptions
// and page-out/page-in events — and checks the protocol invariants after
// every step: token conservation (metastate debits == log credits),
// metastate validity (Tables 3a/3b closure), serializability of the
// committed history, and deadlock/livelock freedom within a retry bound.
//
// Each schedule is one full re-execution of the program (stateless model
// checking); the explorer forces a decision prefix and extends it, walking
// the decision tree depth-first with state-fingerprint pruning and a
// commuting-siblings (sleep-set style) rule, or sampling it randomly (swarm
// mode). Every explored schedule serializes to a compact replayable string,
// so a failure is a counterexample anyone can re-run under trace.
package explore

import (
	"fmt"

	"tokentm/internal/core"
	"tokentm/internal/htm"
	"tokentm/internal/logtmse"
	"tokentm/internal/mem"
	"tokentm/internal/sig"
	"tokentm/internal/sim"
)

// programBase is the first block of the page all program blocks live on, so
// one PageOut/PageIn adversary action virtualizes the whole working set.
const programBase mem.Addr = 0x40000

// OpKind is one transactional operation kind in the program DSL.
type OpKind int

// Program operations.
const (
	// OpLoad reads the block (joins the read set).
	OpLoad OpKind = iota
	// OpIncr is a read-modify-write: load the block's word, add Delta,
	// store it back (joins read and write sets).
	OpIncr
	// OpWork burns Cycles of in-transaction computation.
	OpWork
)

// Op is one operation of a transaction body.
type Op struct {
	Kind   OpKind
	Block  int       // program-block index (OpLoad, OpIncr)
	Delta  uint64    // increment (OpIncr)
	Cycles mem.Cycle // computation (OpWork)
}

// Txn is one transaction: its body operations, executed in order.
type Txn []Op

// ThreadProg is the per-thread program: a sequence of transactions.
type ThreadProg struct {
	Txns []Txn
}

// Program is a small transactional program for schedule exploration.
type Program struct {
	Name    string
	Cores   int
	Threads []ThreadProg
	Blocks  int // number of distinct program blocks
}

// BlockAddr maps a program-block index to its simulated address.
func (p *Program) BlockAddr(i int) mem.Addr {
	return programBase + mem.Addr(i)*mem.BlockBytes
}

// Page returns the page holding every program block (the adversary's
// page-bounce target). All programs must fit one page.
func (p *Program) Page() mem.PageAddr {
	if p.Blocks > mem.BlocksPerPage {
		panic(fmt.Sprintf("explore: program %s uses %d blocks, page holds %d", p.Name, p.Blocks, mem.BlocksPerPage))
	}
	return programBase.Page()
}

// Txns returns the total transaction count across threads.
func (p *Program) Txns() int {
	n := 0
	for _, t := range p.Threads {
		n += len(t.Txns)
	}
	return n
}

// StandardPrograms are the checked-in exploration subjects. The acceptance
// configuration — 2 cores, 3 threads, 2 blocks — is deliberately tiny so
// exhaustive mode terminates, yet it covers the protocol's interesting
// pairings: write/write conflicts, read-to-write upgrades, a writer whose
// line leaves the L1 mid-transaction, and multi-thread cores (so preemption
// is schedulable).
func StandardPrograms() []*Program {
	return []*Program{
		// Two incrementing threads and one reader over two blocks, with
		// opposite block orders — the classic conflict/deadlock shape.
		{
			Name:   "incr-cross",
			Cores:  2,
			Blocks: 2,
			Threads: []ThreadProg{
				{Txns: []Txn{{{Kind: OpIncr, Block: 0, Delta: 1}, {Kind: OpIncr, Block: 1, Delta: 10}}}},
				{Txns: []Txn{{{Kind: OpIncr, Block: 1, Delta: 100}, {Kind: OpIncr, Block: 0, Delta: 1000}}}},
				{Txns: []Txn{{{Kind: OpLoad, Block: 0}, {Kind: OpLoad, Block: 1}}}},
			},
		},
		// Read-to-write upgrades on a shared block: both writers first read
		// it, then increment — the dueling-upgrade livelock shape.
		{
			Name:   "upgrade-duel",
			Cores:  2,
			Blocks: 2,
			Threads: []ThreadProg{
				{Txns: []Txn{{{Kind: OpLoad, Block: 0}, {Kind: OpWork, Cycles: 20}, {Kind: OpIncr, Block: 0, Delta: 1}}}},
				{Txns: []Txn{{{Kind: OpLoad, Block: 0}, {Kind: OpWork, Cycles: 20}, {Kind: OpIncr, Block: 0, Delta: 2}}}},
				{Txns: []Txn{{{Kind: OpIncr, Block: 1, Delta: 4}}}},
			},
		},
		// A writer that stores, computes, then re-reads its own block: the
		// shape where a mid-transaction page bounce forces the writer's
		// metastate home and back, exercising fission on the refill (§5.3).
		{
			Name:   "writer-reread",
			Cores:  2,
			Blocks: 2,
			Threads: []ThreadProg{
				{Txns: []Txn{{{Kind: OpIncr, Block: 0, Delta: 1}, {Kind: OpWork, Cycles: 30}, {Kind: OpLoad, Block: 0}}}},
				{Txns: []Txn{{{Kind: OpIncr, Block: 1, Delta: 7}}}},
				{Txns: []Txn{{{Kind: OpLoad, Block: 1}}}},
			},
		},
		// Per-core footprints are disjoint (core 0's threads touch only
		// block 0, core 1's only block 1), so cross-core run decisions
		// commute and the sleep-set rule collapses the interleaving space;
		// the same-core pair still conflicts on block 0.
		{
			Name:   "disjoint-lanes",
			Cores:  2,
			Blocks: 2,
			Threads: []ThreadProg{
				{Txns: []Txn{{{Kind: OpIncr, Block: 0, Delta: 1}, {Kind: OpWork, Cycles: 15}}}},
				{Txns: []Txn{{{Kind: OpIncr, Block: 1, Delta: 5}}}},
				{Txns: []Txn{{{Kind: OpIncr, Block: 0, Delta: 9}}}},
			},
		},
	}
}

// ProgramByName resolves a standard program (nil when unknown).
func ProgramByName(name string) *Program {
	for _, p := range StandardPrograms() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Variants are the five evaluated HTM systems, in the paper's order.
var Variants = []string{"TokenTM", "TokenTM_NoFast", "LogTM-SE_Perf", "LogTM-SE_2xH3", "LogTM-SE_4xH3"}

// buildHTM constructs the named variant over m, optionally seeding a
// protocol mutation (TokenTM variants only; mutations target the token
// protocol). The second return is the TokenTM instance for bookkeeping
// checks and paging, nil for the LogTM-SE variants.
func buildHTM(m *sim.Machine, variant string, mut core.Mutation) (htm.System, *core.TokenTM) {
	switch variant {
	case "TokenTM":
		t := core.New(m.Mem, m.Store, core.WithRetryLimit(retryLimit), core.WithMutation(mut))
		return t, t
	case "TokenTM_NoFast":
		t := core.New(m.Mem, m.Store, core.WithoutFastRelease(), core.WithRetryLimit(retryLimit), core.WithMutation(mut))
		return t, t
	case "LogTM-SE_Perf":
		return logtmse.New(m.Mem, m.Store, sig.KindPerfect, retryLimit), nil
	case "LogTM-SE_2xH3":
		return logtmse.New(m.Mem, m.Store, sig.Kind2xH3, retryLimit), nil
	case "LogTM-SE_4xH3":
		return logtmse.New(m.Mem, m.Store, sig.Kind4xH3, retryLimit), nil
	}
	panic("explore: unknown variant " + variant)
}
