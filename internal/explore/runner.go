package explore

import (
	"fmt"
	"sort"

	"tokentm/internal/core"
	"tokentm/internal/htm"
	"tokentm/internal/mem"
	"tokentm/internal/sim"
	"tokentm/internal/trace"
)

// retryLimit bounds stalled retries inside explored machines. Past the
// limit the contention manager forces a resolution, so every correct
// schedule terminates and the livelock step bound can be tight.
const retryLimit = 8

// explQuantum is the scheduling quantum of explored machines (cycles).
const explQuantum = 400

// Violation is one invariant failure, carrying the replayable schedule that
// produced it.
type Violation struct {
	// Kind is one of: deadlock, livelock, crash, bookkeeping,
	// serializability, memory, conservation, commits.
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// Step is the decision index at which the failure surfaced (equal to
	// the schedule length for end-of-run checks).
	Step int `json:"step"`
	// Schedule is the FormatSchedule counterexample; replay it with
	// `tokentm-explore -replay`.
	Schedule string `json:"schedule"`
}

// runState is the mutable budget/progress view the chooser sees at each
// decision point.
type runState struct {
	Steps        int
	PreemptsLeft int
	BouncesLeft  int
}

// chooser picks the decision at each decision point. Returning ok=false
// abandons the run (the explorer uses this when fingerprint pruning proves
// the continuation was already explored).
type chooser func(m *sim.Machine, tok *core.TokenTM, choices []sim.CoreChoice, st *runState) (Decision, bool)

// runOpts parameterizes one schedule execution.
type runOpts struct {
	seed      int64
	maxSteps  int
	preempts  int
	bounces   int
	checkStep bool // per-step CheckBookkeeping (TokenTM variants only)
	tracer    *trace.Tracer
}

// runResult is one schedule's outcome.
type runResult struct {
	schedule    []Decision
	steps       int
	abandoned   bool // chooser bailed out (pruned continuation)
	violation   *Violation
	fingerprint uint64 // final machine state (zero when abandoned/violated)
	commits     []htm.CommitRecord
	coreTimes   []mem.Cycle
	aborts      int
	evictions   uint64
}

// journalEntry records one committed transaction's observed reads and final
// writes; re-initialized inside the atomic body so aborted attempts reset it.
type journalEntry struct {
	thread int
	reads  map[mem.Addr]uint64
	writes map[mem.Addr]uint64
}

// runSchedule executes prog on a fresh machine, consulting choose at every
// decision point and checking invariants after every step and at the end.
func runSchedule(prog *Program, variant string, mut core.Mutation, o runOpts, choose chooser) runResult {
	// The quantum matters on multi-thread cores: without it a preempted
	// transaction never reruns (min-time scheduling never rotates a busy
	// core's run queue), so younger enemies would retry against its tokens
	// forever — a starvation livelock of the scheduling model, not the
	// protocol. A quantum restores fairness and also exercises the
	// FlashOR context-switch path in ordinary schedules.
	m := sim.New(sim.Config{Cores: prog.Cores, Seed: o.seed, Quantum: explQuantum})
	sys, tok := buildHTM(m, variant, mut)
	if o.tracer != nil {
		m.SetHTM(trace.Wrap(sys, o.tracer))
	} else {
		m.SetHTM(sys)
	}
	journals := spawnProgram(m, prog)
	// Unwind any threads still parked on their grant channels when the run
	// is abandoned mid-schedule, so pruned executions leak no goroutines.
	defer m.Kill()

	res := runResult{}
	st := &runState{PreemptsLeft: o.preempts, BouncesLeft: o.bounces}
	vio := func(kind, msg string) *Violation {
		return &Violation{Kind: kind, Message: msg, Step: len(res.schedule), Schedule: FormatSchedule(res.schedule)}
	}
	for m.Live() > 0 {
		if res.steps >= o.maxSteps {
			res.violation = vio("livelock", fmt.Sprintf(
				"no termination within %d steps (retry limit %d)", o.maxSteps, retryLimit))
			return res
		}
		choices := m.RunnableCores()
		if len(choices) == 0 {
			res.violation = vio("deadlock", m.DeadlockReport().Error())
			return res
		}
		d, ok := choose(m, tok, choices, st)
		if !ok {
			res.abandoned = true
			return res
		}
		res.schedule = append(res.schedule, d)
		if err := applyDecision(m, tok, prog, d, st, &res); err != nil {
			kind := "crash"
			if _, isDeadlock := err.(*sim.DeadlockError); isDeadlock {
				kind = "deadlock"
			}
			res.violation = vio(kind, err.Error())
			return res
		}
		if o.checkStep && tok != nil {
			if err := tok.CheckBookkeeping(); err != nil {
				res.violation = vio("bookkeeping", err.Error())
				return res
			}
		}
	}
	res.fingerprint = m.Fingerprint()
	res.commits = append([]htm.CommitRecord(nil), m.Commits...)
	res.coreTimes = m.CoreTimes()
	for _, th := range m.Threads() {
		res.aborts += th.AbortCount
	}
	res.evictions = m.Mem.Stats.Evictions
	res.violation = endChecks(m, tok, prog, journals, vio)
	return res
}

// applyDecision performs one decision, converting any panic out of the
// machine (deadlock, protocol self-checks, mutation fallout) into an error
// so the explorer records it as a counterexample instead of dying.
func applyDecision(m *sim.Machine, tok *core.TokenTM, prog *Program, d Decision, st *runState, res *runResult) (err error) {
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case error:
				err = e
			default:
				err = fmt.Errorf("%v", r)
			}
		}
	}()
	switch d.Kind {
	case DecRun:
		m.StepOn(d.Core)
		res.steps++
		st.Steps++
	case DecPreempt:
		if st.PreemptsLeft <= 0 {
			return fmt.Errorf("explore: preemption budget exhausted")
		}
		if !m.Preempt(d.Core) {
			return fmt.Errorf("explore: preempt on core %d is a no-op", d.Core)
		}
		st.PreemptsLeft--
	case DecBounce:
		if st.BouncesLeft <= 0 {
			return fmt.Errorf("explore: bounce budget exhausted")
		}
		if tok == nil {
			return fmt.Errorf("explore: page bounce requires a TokenTM variant")
		}
		sp := tok.PageOut(prog.Page())
		if e := tok.PageIn(sp); e != nil {
			return fmt.Errorf("page-in after bounce: %w", e)
		}
		st.BouncesLeft--
	default:
		return fmt.Errorf("explore: unknown decision kind %d", d.Kind)
	}
	return nil
}

// spawnProgram spawns prog's threads (thread i pinned to core i % Cores by
// the machine) with commit journaling for the serializability oracle.
func spawnProgram(m *sim.Machine, prog *Program) [][]journalEntry {
	journals := make([][]journalEntry, len(prog.Threads))
	for i := range prog.Threads {
		i := i
		tp := prog.Threads[i]
		m.Spawn(func(tc *sim.Ctx) {
			for _, txn := range tp.Txns {
				txn := txn
				var entry journalEntry
				tc.Atomic(func(tx *sim.Tx) {
					entry = journalEntry{
						thread: i,
						reads:  make(map[mem.Addr]uint64),
						writes: make(map[mem.Addr]uint64),
					}
					for _, op := range txn {
						switch op.Kind {
						case OpLoad:
							a := prog.BlockAddr(op.Block)
							recordRead(&entry, a, tx.Load(a))
						case OpIncr:
							a := prog.BlockAddr(op.Block)
							v := tx.Load(a)
							recordRead(&entry, a, v)
							nv := v + op.Delta
							tx.Store(a, nv)
							entry.writes[a] = nv
						case OpWork:
							tx.Work(op.Cycles)
						}
					}
				})
				journals[i] = append(journals[i], entry)
			}
		})
	}
	return journals
}

// recordRead journals the first observed value of a, unless the transaction
// already wrote it (then the read sees its own write, not prior commits).
func recordRead(e *journalEntry, a mem.Addr, v uint64) {
	if _, wrote := e.writes[a]; wrote {
		return
	}
	if _, read := e.reads[a]; !read {
		e.reads[a] = v
	}
}

// endChecks validates the completed run: every transaction committed, the
// committed history is serializable in commit order, final memory matches
// the serial replay, and the token books balance.
func endChecks(m *sim.Machine, tok *core.TokenTM, prog *Program, journals [][]journalEntry, vio func(kind, msg string) *Violation) *Violation {
	for i, th := range m.Threads() {
		if want := len(prog.Threads[i].Txns); len(th.Commits) != want {
			return vio("commits", fmt.Sprintf(
				"thread %d committed %d of %d transactions", i, len(th.Commits), want))
		}
	}
	// Merge the per-thread journals along the true commit order and replay
	// them sequentially against a reference memory.
	next := make([]int, len(journals))
	ref := make(map[mem.Addr]uint64)
	for ci, rec := range m.Commits {
		e := journals[rec.Thread][next[rec.Thread]]
		next[rec.Thread]++
		for _, a := range sortedAddrs(e.reads) {
			if ref[a] != e.reads[a] {
				return vio("serializability", fmt.Sprintf(
					"commit %d (thread %d) read %v=%d, serial replay has %d",
					ci, e.thread, a, e.reads[a], ref[a]))
			}
		}
		for _, a := range sortedAddrs(e.writes) {
			ref[a] = e.writes[a]
		}
	}
	for i := 0; i < prog.Blocks; i++ {
		a := prog.BlockAddr(i)
		if got := m.Store.Load(a); got != ref[a] {
			return vio("memory", fmt.Sprintf(
				"final memory %v=%d, serial replay has %d", a, got, ref[a]))
		}
	}
	if tok != nil {
		if err := tok.CheckBookkeeping(); err != nil {
			return vio("bookkeeping", err.Error())
		}
	}
	if err := m.CheckConservation(); err != nil {
		return vio("conservation", err.Error())
	}
	return nil
}

// sortedAddrs returns the map's keys in address order, for deterministic
// replay messages and reference updates.
func sortedAddrs(ms map[mem.Addr]uint64) []mem.Addr {
	out := make([]mem.Addr, 0, len(ms))
	for a := range ms {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
