// Package plot renders the evaluation's figures as ASCII bar charts, so
// cmd/experiments can regenerate Figure 1 and Figure 5 as figures, not just
// tables. Bars carry 95% confidence whiskers when available.
package plot

import (
	"fmt"
	"io"
	"strings"
)

// Series is one bar group member (an HTM variant in Figures 1/5).
type Series struct {
	Name string
}

// Bar is one measured value with an optional confidence half-width.
type Bar struct {
	Value float64
	CI    float64
}

// BarChart is a grouped horizontal bar chart: one group per benchmark, one
// bar per series.
type BarChart struct {
	Title  string
	YLabel string
	Series []Series
	Groups []string
	// Bars[g][s] is the bar for group g, series s.
	Bars [][]Bar
	// Width is the maximum bar length in characters (default 50).
	Width int
	// Reference draws a vertical guide at this value (e.g. 1.0 for
	// speedups normalized to a baseline); 0 disables it.
	Reference float64
}

// Render writes the chart.
func (c *BarChart) Render(w io.Writer) {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	maxVal := c.Reference
	for _, g := range c.Bars {
		for _, b := range g {
			if v := b.Value + b.CI; v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	scale := float64(width) / maxVal

	nameW := 0
	for _, s := range c.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}

	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
		fmt.Fprintln(w, strings.Repeat("=", len(c.Title)))
	}
	refCol := -1
	if c.Reference > 0 {
		refCol = int(c.Reference*scale + 0.5)
	}
	for gi, group := range c.Groups {
		fmt.Fprintf(w, "%s\n", group)
		for si, s := range c.Series {
			if gi >= len(c.Bars) || si >= len(c.Bars[gi]) {
				continue
			}
			b := c.Bars[gi][si]
			fmt.Fprintf(w, "  %-*s |%s %.3f%s\n", nameW, s.Name, renderBar(b, scale, width, refCol), b.Value, renderCI(b))
		}
	}
	if c.YLabel != "" {
		fmt.Fprintf(w, "(%s; '|' marks %.2g)\n", c.YLabel, c.Reference)
	}
}

// renderBar draws one bar with an optional reference tick.
func renderBar(b Bar, scale float64, width, refCol int) string {
	n := int(b.Value*scale + 0.5)
	if n > width {
		n = width
	}
	row := make([]byte, width+1)
	for i := range row {
		switch {
		case i < n:
			row[i] = '#'
		case i == refCol && refCol >= n:
			row[i] = '|'
		default:
			row[i] = ' '
		}
	}
	return string(row)
}

func renderCI(b Bar) string {
	if b.CI <= 0 {
		return ""
	}
	return fmt.Sprintf(" ±%.3f", b.CI)
}
