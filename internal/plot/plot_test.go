package plot

import (
	"bytes"
	"strings"
	"testing"
)

func chart() *BarChart {
	return &BarChart{
		Title:     "Figure X",
		YLabel:    "speedup vs baseline",
		Series:    []Series{{Name: "TokenTM"}, {Name: "LogTM-SE_2xH3"}},
		Groups:    []string{"Delaunay", "Genome"},
		Bars:      [][]Bar{{{Value: 1.0, CI: 0.1}, {Value: 0.2}}, {{Value: 0.95}, {Value: 0.8, CI: 0.05}}},
		Width:     20,
		Reference: 1.0,
	}
}

func TestRenderContainsEverything(t *testing.T) {
	var buf bytes.Buffer
	chart().Render(&buf)
	out := buf.String()
	for _, want := range []string{"Figure X", "Delaunay", "Genome", "TokenTM", "LogTM-SE_2xH3", "±0.100", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBarLengthsScale(t *testing.T) {
	var buf bytes.Buffer
	chart().Render(&buf)
	lines := strings.Split(buf.String(), "\n")
	var full, small string
	for _, l := range lines {
		if strings.Contains(l, "TokenTM") && strings.Contains(l, "1.000") {
			full = l
		}
		if strings.Contains(l, "2xH3") && strings.Contains(l, "0.200") {
			small = l
		}
	}
	if full == "" || small == "" {
		t.Fatalf("bars not found:\n%s", buf.String())
	}
	if strings.Count(full, "#") <= strings.Count(small, "#") {
		t.Fatal("bigger value must draw a longer bar")
	}
}

func TestReferenceGuide(t *testing.T) {
	var buf bytes.Buffer
	chart().Render(&buf)
	if !strings.Contains(buf.String(), "|") {
		t.Fatal("reference guide missing")
	}
}

func TestDegenerateChart(t *testing.T) {
	c := &BarChart{Groups: []string{"g"}, Series: []Series{{Name: "s"}}, Bars: [][]Bar{{{Value: 0}}}}
	var buf bytes.Buffer
	c.Render(&buf) // must not panic or divide by zero
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestClampOverflowBar(t *testing.T) {
	c := &BarChart{
		Groups:    []string{"g"},
		Series:    []Series{{Name: "a"}, {Name: "b"}},
		Bars:      [][]Bar{{{Value: 5}, {Value: 1}}},
		Width:     10,
		Reference: 1,
	}
	var buf bytes.Buffer
	c.Render(&buf)
	for _, l := range strings.Split(buf.String(), "\n") {
		if n := strings.Count(l, "#"); n > 11 {
			t.Fatalf("bar exceeds width: %q", l)
		}
	}
}
