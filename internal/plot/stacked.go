package plot

import (
	"fmt"
	"io"
	"strings"
)

// stackFills is the fill-character palette for stacked segments, in series
// order (wraps if there are more series than characters).
var stackFills = []byte{'#', '=', ':', '+', 'x', 'o', '.', '%', '*', '@', '~', '-'}

// fillChar returns series si's fill character.
func fillChar(si int) byte { return stackFills[si%len(stackFills)] }

// Stacked is a horizontal stacked bar chart: one bar per group, one segment
// per series, rendering the Figure 7–9 execution-time breakdowns in ASCII.
type Stacked struct {
	Title string
	// XLabel captions the value axis (e.g. "% of LogTM-SE_Perf cycles").
	XLabel string
	// Series are the stack segments, bottom-up in the paper's figures,
	// left-to-right here.
	Series []string
	// Groups label the bars (one per variant, or per workload).
	Groups []string
	// Values[g][s] is group g's value for series s. Missing entries are 0.
	Values [][]float64
	// Width is the length in characters of the longest bar (default 60).
	Width int
	// Normalize scales every bar to full width, showing composition rather
	// than comparative magnitude.
	Normalize bool
}

// Render writes the chart followed by a fill-character legend.
func (c *Stacked) Render(w io.Writer) {
	width := c.Width
	if width <= 0 {
		width = 60
	}
	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
		fmt.Fprintln(w, strings.Repeat("=", len(c.Title)))
	}
	var maxTotal float64
	for _, vals := range c.Values {
		if t := sum(vals); t > maxTotal {
			maxTotal = t
		}
	}
	nameW := 0
	for _, g := range c.Groups {
		if len(g) > nameW {
			nameW = len(g)
		}
	}
	for gi, group := range c.Groups {
		var vals []float64
		if gi < len(c.Values) {
			vals = c.Values[gi]
		}
		total := sum(vals)
		denom := maxTotal
		if c.Normalize {
			denom = total
		}
		var scale float64
		if denom > 0 {
			scale = float64(width) / denom
		}
		fmt.Fprintf(w, "%-*s |%s| %.1f\n", nameW, group, renderStack(vals, scale, width), total)
	}
	if c.XLabel != "" {
		fmt.Fprintf(w, "(%s)\n", c.XLabel)
	}
	c.renderLegend(w)
}

// renderStack draws one bar. Segment boundaries are placed by rounding the
// *cumulative* value, so the drawn segment widths always sum to the bar's
// rounded total — no drift from per-segment rounding.
func renderStack(vals []float64, scale float64, width int) string {
	row := make([]byte, 0, width)
	cum := 0.0
	pos := 0
	for si, v := range vals {
		cum += v
		end := int(cum*scale + 0.5)
		if end > width {
			end = width
		}
		for ; pos < end; pos++ {
			row = append(row, fillChar(si))
		}
	}
	for ; pos < width; pos++ {
		row = append(row, ' ')
	}
	return string(row)
}

// renderLegend maps fill characters to series names.
func (c *Stacked) renderLegend(w io.Writer) {
	if len(c.Series) == 0 {
		return
	}
	parts := make([]string, len(c.Series))
	for i, s := range c.Series {
		parts[i] = fmt.Sprintf("%c %s", fillChar(i), s)
	}
	fmt.Fprintf(w, "legend: %s\n", strings.Join(parts, "  "))
}

func sum(vals []float64) float64 {
	var t float64
	for _, v := range vals {
		t += v
	}
	return t
}
