// Package lcs reproduces the paper's Table 1: an analysis of long-running
// critical sections (LCS) in four lock-based server workloads.
//
// The paper instruments real AOLServer, Apache, BerkeleyDB and BIND binaries
// with DTrace, recording critical sections that make blocking system calls
// or context switch while holding a lock. Those binaries (and Solaris) are
// not reproducible here, so this package substitutes synthetic server models
// whose critical sections perform the same blocking activities the paper
// describes — Apache forks processes under a lock, BIND waits for network
// messages holding a socket lock, AOLServer and BerkeleyDB call the
// allocator ('sbrk') and flush log buffers to disk — calibrated so the
// probe-layer measurements land near the published numbers.
package lcs

import (
	"math/rand"

	"tokentm/internal/core"
	"tokentm/internal/mem"
	"tokentm/internal/sim"
	"tokentm/internal/stats"
)

// CyclesPerMs converts simulated cycles to milliseconds at the modeled
// 1 GHz clock.
const CyclesPerMs = 1_000_000

// Model describes one lock-based server workload.
type Model struct {
	Name string
	// Activity is the blocking activity the paper observed inside the
	// longest critical sections.
	Activity string

	Threads  int
	Cores    int
	Requests int // per thread

	// LCSProb is the probability a request's critical section blocks.
	LCSProb float64
	// BlockBase is the typical blocking time (cycles); BlockJitter a
	// uniform spread; TailP/TailMax a rare long tail.
	BlockBase, BlockJitter mem.Cycle
	TailP                  float64
	TailMax                mem.Cycle
	// OutsideWork is per-request non-critical computation.
	OutsideWork mem.Cycle
	// ShortCS is the duration of the common non-blocking critical
	// section.
	ShortCS mem.Cycle
}

// Models returns the four workloads of Table 1.
//
// Calibration targets (paper): avg / max LCS duration and % of execution
// time: AOLServer 0.1/0.7 ms 0.1%; Apache 49.6/70.5 ms 1.4%; BerkeleyDB
// 0.1/0.2 ms 0.01%; BIND 0.2/1.8 ms 2.2%.
func Models() []Model {
	return []Model{
		{
			Name: "AOLServer", Activity: "allocator sbrk calls, log flushes",
			Threads: 8, Cores: 4, Requests: 500,
			LCSProb: 0.06, BlockBase: 70 * CyclesPerMs / 1000, BlockJitter: 80 * CyclesPerMs / 1000,
			TailP: 0.03, TailMax: 700 * CyclesPerMs / 1000,
			OutsideWork: 3500 * CyclesPerMs / 1000, ShortCS: 2000,
		},
		{
			Name: "Apache", Activity: "forks processes while holding a lock",
			Threads: 8, Cores: 4, Requests: 400,
			LCSProb: 0.01, BlockBase: 41 * CyclesPerMs, BlockJitter: 12 * CyclesPerMs,
			TailP: 0.25, TailMax: 70 * CyclesPerMs,
			OutsideWork: 16 * CyclesPerMs, ShortCS: 3000,
		},
		{
			Name: "BerkeleyDB", Activity: "disk log-buffer flushes",
			Threads: 8, Cores: 4, Requests: 600,
			LCSProb: 0.004, BlockBase: 80 * CyclesPerMs / 1000, BlockJitter: 50 * CyclesPerMs / 1000,
			TailP: 0.12, TailMax: 200 * CyclesPerMs / 1000,
			OutsideWork: 2 * CyclesPerMs, ShortCS: 1500,
		},
		{
			Name: "BIND", Activity: "waits for network messages on a socket lock",
			Threads: 8, Cores: 4, Requests: 500,
			LCSProb: 0.10, BlockBase: 150 * CyclesPerMs / 1000, BlockJitter: 120 * CyclesPerMs / 1000,
			TailP: 0.015, TailMax: 1800 * CyclesPerMs / 1000,
			OutsideWork: 900 * CyclesPerMs / 1000, ShortCS: 1800,
		},
	}
}

// Probes is the DTrace-like instrumentation layer: it records every
// critical section's duration and whether it blocked (syscall or context
// switch) while holding the lock.
type Probes struct {
	durations []mem.Cycle // blocking (long-running) critical sections
	shortCS   int
}

// enter/exit bracket a critical section.
func (p *Probes) record(duration mem.Cycle, blocked bool) {
	if blocked {
		p.durations = append(p.durations, duration)
	} else {
		p.shortCS++
	}
}

// Report is one row of Table 1.
type Report struct {
	Name     string
	Activity string
	// AvgMs and MaxMs are the LCS durations; PctTime is the share of
	// total execution time spent in LCS.
	AvgMs, MaxMs float64
	PctTime      float64
	// Events is the number of long-running critical sections observed.
	Events int
}

// Run executes the model under the probe layer and reports its Table 1 row.
func Run(m Model, seed int64) Report {
	mach := sim.New(sim.Config{Cores: m.Cores, Seed: seed, Quantum: 2 * CyclesPerMs, RetryLimit: 8})
	mach.SetHTM(core.New(mach.Mem, mach.Store))

	probes := &Probes{}
	const lockID = 1
	counterAddr := mem.Addr(0x1000)

	for t := 0; t < m.Threads; t++ {
		rng := rand.New(rand.NewSource(seed*1000003 + int64(t)))
		mach.Spawn(func(tc *sim.Ctx) {
			for i := 0; i < m.Requests; i++ {
				tc.Work(m.OutsideWork)
				tc.Lock(lockID)
				entered := tc.Now()
				blocked := false
				if rng.Float64() < m.LCSProb {
					// Long-running critical section: blocking activity
					// while holding the lock.
					d := m.BlockBase
					if m.BlockJitter > 0 {
						d += mem.Cycle(rng.Int63n(int64(m.BlockJitter)))
					}
					if m.TailP > 0 && rng.Float64() < m.TailP {
						d = m.TailMax - mem.Cycle(rng.Int63n(int64(m.TailMax/10)))
					}
					tc.Syscall(d)
					blocked = true
				} else {
					tc.Work(m.ShortCS)
				}
				// Shared update under the lock.
				v := tc.Load(counterAddr)
				tc.Store(counterAddr, v+1)
				left := tc.Now()
				tc.Unlock(lockID)
				probes.record(left-entered, blocked)
			}
		})
	}
	makespan := mach.Run()

	rep := Report{Name: m.Name, Activity: m.Activity, Events: len(probes.durations)}
	var sample stats.Sample
	var sum mem.Cycle
	for _, d := range probes.durations {
		sample.Add(float64(d))
		sum += d
	}
	if sample.N() > 0 {
		rep.AvgMs = sample.Mean() / CyclesPerMs
		rep.MaxMs = sample.Max() / CyclesPerMs
	}
	totalTime := float64(makespan) * float64(m.Cores)
	if totalTime > 0 {
		rep.PctTime = 100 * float64(sum) / totalTime
	}
	return rep
}

// Table1 runs all four models and returns their rows in the paper's order.
func Table1(seed int64) []Report {
	var out []Report
	for _, m := range Models() {
		out = append(out, Run(m, seed))
	}
	return out
}
