package lcs

import (
	"math"
	"testing"
)

// paper holds Table 1's published values.
var paper = map[string]struct {
	avgMs, maxMs, pct float64
}{
	"AOLServer":  {0.1, 0.7, 0.1},
	"Apache":     {49.6, 70.5, 1.4},
	"BerkeleyDB": {0.1, 0.2, 0.01},
	"BIND":       {0.2, 1.8, 2.2},
}

func TestModelsCoverTable1(t *testing.T) {
	ms := Models()
	if len(ms) != 4 {
		t.Fatalf("want 4 models, got %d", len(ms))
	}
	for _, m := range ms {
		if _, ok := paper[m.Name]; !ok {
			t.Errorf("unexpected model %q", m.Name)
		}
		if m.Activity == "" {
			t.Errorf("%s: missing blocking-activity description", m.Name)
		}
	}
}

// TestCalibration: each model's probe measurements land near the paper's
// row (loose tolerances; these are synthetic substitutes).
func TestCalibration(t *testing.T) {
	for _, r := range Table1(1) {
		want := paper[r.Name]
		if r.Events < 10 {
			t.Errorf("%s: too few LCS events (%d) for stable statistics", r.Name, r.Events)
		}
		if rel(r.AvgMs, want.avgMs) > 0.5 {
			t.Errorf("%s: avg %.2f ms vs paper %.2f ms", r.Name, r.AvgMs, want.avgMs)
		}
		if rel(r.MaxMs, want.maxMs) > 0.5 {
			t.Errorf("%s: max %.2f ms vs paper %.2f ms", r.Name, r.MaxMs, want.maxMs)
		}
		if rel(r.PctTime, want.pct) > 0.6 {
			t.Errorf("%s: pct %.3f%% vs paper %.2f%%", r.Name, r.PctTime, want.pct)
		}
	}
}

// TestOrderingMatchesPaper: the qualitative story — Apache and BIND spend
// significant time in LCS; AOLServer and BerkeleyDB have many short ones.
func TestOrderingMatchesPaper(t *testing.T) {
	rows := map[string]Report{}
	for _, r := range Table1(2) {
		rows[r.Name] = r
	}
	if rows["Apache"].AvgMs < 10*rows["BIND"].AvgMs {
		t.Error("Apache's fork-under-lock sections should dwarf BIND's")
	}
	if rows["BIND"].PctTime < rows["BerkeleyDB"].PctTime {
		t.Error("BIND should spend a larger share of time in LCS than BerkeleyDB")
	}
	if rows["AOLServer"].MaxMs <= rows["AOLServer"].AvgMs {
		t.Error("AOLServer should have a duration tail")
	}
}

func TestDeterminism(t *testing.T) {
	a := Run(Models()[0], 7)
	b := Run(Models()[0], 7)
	if a != b {
		t.Fatalf("same seed must reproduce: %+v vs %+v", a, b)
	}
}

func rel(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}
