// Package interconnect models the paper's on-chip network: a packet-switched
// tiled topology of 8 clusters (4 cores each) with 64-byte links, connecting
// cores, the 32 address-interleaved L2 cache banks, and 4 on-chip memory
// controllers (§6.1).
//
// The model is latency-oriented: each message is charged a per-hop router
// cost over the Manhattan distance between tiles plus link serialization for
// its payload. Adaptive routing and buffering are abstracted as a fixed
// per-hop cost; bank and memory-controller occupancy is modeled by the
// coherence layer.
package interconnect

import "tokentm/internal/mem"

// Topology constants (paper §6.1).
const (
	// Clusters is the number of tiles; clusters are arranged 4x2.
	Clusters = 8
	// CoresPerCluster groups 4 cores on one tile.
	CoresPerCluster = 4
	// Cores is the total core count.
	Cores = Clusters * CoresPerCluster
	// L2Banks is the number of block-interleaved shared L2 banks.
	L2Banks = 32
	// MemControllers is the number of on-chip memory controllers.
	MemControllers = 4
	// LinkBytes is the link width: one 64-byte block per flit group.
	LinkBytes = 64
	// gridW and gridH arrange the 8 clusters in a 4x2 grid.
	gridW = 4
	gridH = 2
)

// Latency parameters (cycles).
const (
	// HopCycles is the router+link traversal cost per hop.
	HopCycles mem.Cycle = 3
	// FlitCycles is the serialization cost per LinkBytes of payload
	// beyond the head flit.
	FlitCycles mem.Cycle = 1
)

// NoC computes message latencies over the tiled topology.
type NoC struct{}

// New returns the network model.
func New() *NoC { return &NoC{} }

// CoreTile returns the tile (cluster) of a core.
func CoreTile(core int) int { return core / CoresPerCluster }

// BankTile returns the tile hosting an L2 bank; banks are distributed
// round-robin over the tiles (4 banks per tile).
func BankTile(bank int) int { return bank % Clusters }

// MemTile returns the tile attaching a memory controller; controllers sit on
// tiles 0, 3, 4 and 7 (the grid corners).
func MemTile(ctrl int) int {
	corners := [MemControllers]int{0, gridW - 1, gridW, 2*gridW - 1}
	return corners[ctrl%MemControllers]
}

// BankOf returns the home L2 bank of a block (interleaved by block address).
func BankOf(b mem.BlockAddr) int { return int(uint64(b) % L2Banks) }

// CtrlOf returns the memory controller serving a block.
func CtrlOf(b mem.BlockAddr) int { return int(uint64(b) % MemControllers) }

// Hops returns the Manhattan distance between two tiles in the 4x2 grid.
func Hops(fromTile, toTile int) int {
	fx, fy := fromTile%gridW, fromTile/gridW
	tx, ty := toTile%gridW, toTile/gridW
	dx, dy := fx-tx, fy-ty
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Latency returns the network traversal cost of a message of payloadBytes
// between two tiles. Control messages (payloadBytes == 0) are a single head
// flit; data messages add serialization flits. Metastate piggybacks on data
// and ack messages as extra payload bits and is charged no extra flits —
// this is the paper's "add message payloads, don't change the protocol"
// design point.
func (n *NoC) Latency(fromTile, toTile, payloadBytes int) mem.Cycle {
	hops := Hops(fromTile, toTile)
	lat := mem.Cycle(hops) * HopCycles
	if payloadBytes > 0 {
		flits := (payloadBytes + LinkBytes - 1) / LinkBytes
		lat += mem.Cycle(flits) * FlitCycles
	}
	return lat
}

// CoreToBank is the latency of a request message from a core to a bank.
func (n *NoC) CoreToBank(core, bank, payloadBytes int) mem.Cycle {
	return n.Latency(CoreTile(core), BankTile(bank), payloadBytes)
}

// BankToCore is the latency of a response from a bank to a core.
func (n *NoC) BankToCore(bank, core, payloadBytes int) mem.Cycle {
	return n.Latency(BankTile(bank), CoreTile(core), payloadBytes)
}

// CoreToCore is the latency of a forwarded message (e.g. owner-to-requester
// data forward or an invalidation).
func (n *NoC) CoreToCore(from, to, payloadBytes int) mem.Cycle {
	return n.Latency(CoreTile(from), CoreTile(to), payloadBytes)
}

// BankToMem is the round-trip cost between an L2 bank and the memory
// controller serving block b, excluding DRAM access time.
func (n *NoC) BankToMem(bank int, b mem.BlockAddr, payloadBytes int) mem.Cycle {
	return n.Latency(BankTile(bank), MemTile(CtrlOf(b)), payloadBytes)
}
