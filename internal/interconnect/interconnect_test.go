package interconnect

import (
	"testing"

	"tokentm/internal/mem"
)

func TestTopologyConstants(t *testing.T) {
	if Cores != 32 || Clusters != 8 || CoresPerCluster != 4 {
		t.Fatal("paper topology: 32 cores in 8 clusters of 4")
	}
	if L2Banks != 32 || MemControllers != 4 {
		t.Fatal("paper topology: 32 L2 banks, 4 memory controllers")
	}
}

func TestTileMapping(t *testing.T) {
	for c := 0; c < Cores; c++ {
		if tile := CoreTile(c); tile < 0 || tile >= Clusters {
			t.Fatalf("core %d tile %d out of range", c, tile)
		}
	}
	if CoreTile(0) != 0 || CoreTile(3) != 0 || CoreTile(4) != 1 || CoreTile(31) != 7 {
		t.Fatal("core tile mapping")
	}
	for b := 0; b < L2Banks; b++ {
		if tile := BankTile(b); tile < 0 || tile >= Clusters {
			t.Fatalf("bank %d tile %d out of range", b, tile)
		}
	}
	for m := 0; m < MemControllers; m++ {
		if tile := MemTile(m); tile < 0 || tile >= Clusters {
			t.Fatalf("memctrl %d tile %d out of range", m, tile)
		}
	}
}

func TestHops(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},
		{0, 4, 1}, // directly below in the 4x2 grid
		{0, 7, 4}, // opposite corner
		{3, 4, 4},
	}
	for _, c := range cases {
		if got := Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Hops(c.b, c.a); got != c.want {
			t.Errorf("Hops not symmetric for (%d,%d)", c.a, c.b)
		}
	}
}

func TestLatencyMonotonicity(t *testing.T) {
	n := New()
	// More hops cost more.
	if n.Latency(0, 7, 0) <= n.Latency(0, 1, 0) {
		t.Error("latency should grow with distance")
	}
	// Payload costs more than control.
	if n.Latency(0, 3, 64) <= n.Latency(0, 3, 0) {
		t.Error("data messages should cost more than control messages")
	}
	// Local messages are cheapest but data still serializes.
	if n.Latency(2, 2, 0) != 0 {
		t.Error("same-tile control message should be free of hop cost")
	}
	if n.Latency(2, 2, 64) != FlitCycles {
		t.Error("same-tile data message costs serialization only")
	}
}

func TestBlockInterleaving(t *testing.T) {
	seen := map[int]bool{}
	for b := 0; b < 256; b++ {
		bank := BankOf(mem.BlockAddr(0x1000 + b))
		if bank < 0 || bank >= L2Banks {
			t.Fatalf("bank out of range: %d", bank)
		}
		seen[bank] = true
	}
	if len(seen) != L2Banks {
		t.Errorf("interleaving should touch all banks, got %d", len(seen))
	}
	for b := 0; b < 64; b++ {
		if c := CtrlOf(mem.BlockAddr(b)); c < 0 || c >= MemControllers {
			t.Fatalf("memctrl out of range: %d", c)
		}
	}
}
