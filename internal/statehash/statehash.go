// Package statehash provides the streaming 64-bit FNV-1a hash the schedule
// explorer uses to fingerprint simulated machine state. It is dependency-free
// so every simulation package (mem, cache, coherence, tmlog, htm, core, sim)
// can expose a FingerprintTo method without import cycles.
//
// The hash is not cryptographic; it is a cheap, deterministic summary used
// for state-equality pruning. Callers must feed fields in a fixed order and
// must never feed map iterations directly (collect-then-sort first), so that
// equal logical states always produce equal sums.
package statehash

// FNV-1a 64-bit parameters.
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Hash is a streaming FNV-1a 64-bit hash. The zero value is not ready; use
// New so every fingerprint starts from the standard offset basis.
type Hash struct {
	sum uint64
}

// New returns a hash initialized with the FNV-1a offset basis.
func New() *Hash {
	return &Hash{sum: offset64}
}

// Sum returns the current hash value.
func (h *Hash) Sum() uint64 { return h.sum }

// U64 mixes an unsigned 64-bit value, one byte at a time (FNV-1a order).
func (h *Hash) U64(v uint64) {
	s := h.sum
	for i := 0; i < 8; i++ {
		s ^= v & 0xff
		s *= prime64
		v >>= 8
	}
	h.sum = s
}

// U32 mixes an unsigned 32-bit value.
func (h *Hash) U32(v uint32) { h.U64(uint64(v)) }

// U16 mixes an unsigned 16-bit value.
func (h *Hash) U16(v uint16) { h.U64(uint64(v)) }

// Int mixes a signed integer (two's-complement widened to 64 bits, so -1
// and ^uint64(0) collide only with each other).
func (h *Hash) Int(v int) { h.U64(uint64(int64(v))) }

// I64 mixes a signed 64-bit value.
func (h *Hash) I64(v int64) { h.U64(uint64(v)) }

// Bool mixes a boolean as one byte.
func (h *Hash) Bool(v bool) {
	if v {
		h.U64(1)
	} else {
		h.U64(0)
	}
}

// Str mixes a string length-prefixed, so ("ab","c") and ("a","bc") differ.
func (h *Hash) Str(s string) {
	h.Int(len(s))
	sum := h.sum
	for i := 0; i < len(s); i++ {
		sum ^= uint64(s[i])
		sum *= prime64
	}
	h.sum = sum
}

// Mark mixes a small structural tag, separating adjacent variable-length
// sections of a fingerprint (the same role as Str's length prefix).
func (h *Hash) Mark(tag uint64) { h.U64(tag) }
