package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.N() != 0 || s.CI95() != 0 || s.Var() != 0 {
		t.Fatal("zero-value sample")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 || s.Mean() != 5 || s.Sum() != 40 {
		t.Fatalf("n=%d mean=%f sum=%f", s.N(), s.Mean(), s.Sum())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min=%f max=%f", s.Min(), s.Max())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-9 {
		t.Fatalf("var=%f", s.Var())
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ci := func(n int) float64 {
		var s Sample
		for i := 0; i < n; i++ {
			s.Add(rng.NormFloat64())
		}
		return s.CI95()
	}
	small, large := ci(5), ci(5000)
	if large >= small {
		t.Fatalf("CI should shrink with n: %f vs %f", small, large)
	}
}

func TestCI95SmallN(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	// df=1: t=12.706, sd=sqrt(2), half-width = 12.706*sqrt(2)/sqrt(2).
	want := 12.706
	if math.Abs(s.CI95()-want) > 1e-6 {
		t.Fatalf("CI95=%f want %f", s.CI95(), want)
	}
}

// Property: Welford mean matches a direct sum within tolerance.
func TestWelfordMatchesDirect(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		var sum float64
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			s.Add(x)
			sum += x
			n++
		}
		if n == 0 {
			return s.N() == 0
		}
		want := sum / float64(n)
		scale := math.Max(1, math.Abs(want))
		return math.Abs(s.Mean()-want)/scale < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {125, 5}, {-1, 1},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%.0f = %f, want %f", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
	// Input must not be modified.
	if xs[0] != 5 {
		t.Error("Percentile mutated input")
	}
}

func TestString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(2)
	s.Add(3)
	if got := s.String(); got == "" {
		t.Error("empty String")
	}
}

func TestSampleMedianAndPercentile(t *testing.T) {
	// Edge cases first: empty and single-observation samples.
	var empty Sample
	if empty.Median() != 0 || empty.Percentile(95) != 0 {
		t.Fatalf("empty sample: median=%f p95=%f", empty.Median(), empty.Percentile(95))
	}
	var one Sample
	one.Add(42)
	if one.Median() != 42 || one.Percentile(0) != 42 || one.Percentile(100) != 42 {
		t.Fatalf("single sample: median=%f", one.Median())
	}

	var s Sample
	for _, x := range []float64{9, 1, 7, 3, 5} { // unsorted on purpose
		s.Add(x)
	}
	if s.Median() != 5 {
		t.Fatalf("odd-n median=%f", s.Median())
	}
	if s.Percentile(0) != 1 || s.Percentile(100) != 9 {
		t.Fatalf("extremes: %f..%f", s.Percentile(0), s.Percentile(100))
	}
	// p25 of {1,3,5,7,9} interpolates at position 1.0 exactly.
	if s.Percentile(25) != 3 {
		t.Fatalf("p25=%f", s.Percentile(25))
	}

	var even Sample
	for _, x := range []float64{4, 2, 8, 6} {
		even.Add(x)
	}
	if even.Median() != 5 {
		t.Fatalf("even-n median=%f", even.Median())
	}
	// Order statistics must not disturb the running moments.
	if even.Mean() != 5 || even.N() != 4 {
		t.Fatalf("moments disturbed: mean=%f n=%d", even.Mean(), even.N())
	}
}

// TestEmptySampleMinMaxNaN pins the empty-sample contract: Min and Max
// return NaN (not a fake 0 observation) until the first Add.
func TestEmptySampleMinMaxNaN(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatalf("empty sample: min=%f max=%f, want NaN/NaN", s.Min(), s.Max())
	}
	s.Add(0)
	if s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("after Add(0): min=%f max=%f, want 0/0", s.Min(), s.Max())
	}
}

// TestPercentileCacheInvalidation checks the sorted cache: percentiles stay
// correct when Adds and Percentile calls interleave.
func TestPercentileCacheInvalidation(t *testing.T) {
	var s Sample
	for _, x := range []float64{9, 1, 5} {
		s.Add(x)
	}
	if got := s.Median(); got != 5 {
		t.Fatalf("median of {9,1,5} = %f", got)
	}
	// The cache must be invalidated by this Add, and vals must be unharmed
	// by the earlier in-place sort of the cache.
	s.Add(3)
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 after Add = %f", got)
	}
	if got := s.Percentile(100); got != 9 {
		t.Fatalf("p100 after Add = %f", got)
	}
	if got := s.Median(); got != 4 {
		t.Fatalf("median of {9,1,5,3} = %f", got)
	}
}
