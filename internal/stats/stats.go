// Package stats provides the small statistics toolkit the evaluation
// harness needs: running means, standard deviations, and the 95% confidence
// intervals the paper reports as error bars from multiple pseudo-randomly
// perturbed simulations (§6.1).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations with Welford's online algorithm. It also
// retains the raw observations, so order statistics (Median, Percentile)
// are available alongside the running moments.
type Sample struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
	vals []float64
	// sorted caches a sorted copy of vals for order statistics; Add
	// invalidates it, so report paths asking for several percentiles sort
	// once instead of once per call.
	sorted []float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.vals = append(s.vals, x)
	s.sorted = s.sorted[:0]
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.sum += x
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean (0 with no observations).
func (s *Sample) Mean() float64 { return s.mean }

// Min returns the smallest observation, or NaN with no observations — a
// real 0 observation and an empty sample must stay distinguishable.
func (s *Sample) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN with no observations.
func (s *Sample) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Var returns the unbiased sample variance.
func (s *Sample) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Var()) }

// tTable holds two-sided 95% Student-t critical values for small degrees of
// freedom; beyond the table the normal approximation 1.96 is used.
var tTable = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
}

// CI95 returns the half-width of the 95% confidence interval of the mean.
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	df := s.n - 1
	t := 1.96
	if df < len(tTable) {
		t = tTable[df]
	}
	return t * s.StdDev() / math.Sqrt(float64(s.n))
}

// Percentile returns the p-th percentile (0..100) of the observations with
// linear interpolation; 0 with no observations, the single observation
// with one. The sorted view is cached across calls and invalidated by Add.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if len(s.sorted) != len(s.vals) {
		s.sorted = append(s.sorted[:0], s.vals...)
		sort.Float64s(s.sorted)
	}
	return percentileSorted(s.sorted, p)
}

// Median returns the 50th percentile of the observations.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// String formats the sample as "mean ± ci (n=..)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.3g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.n)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation; xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted interpolates the p-th percentile of an ascending slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
